// Unit tests for the modeled timer: controlled firing, flow control via
// TickAck, cancellation, bounded rounds and the fairness cap on consecutive
// skipped rounds.
#include <gtest/gtest.h>

#include "core/systest.h"
#include "core/timer.h"

namespace {

using systest::CancelTimer;
using systest::Machine;
using systest::MachineId;
using systest::Runtime;
using systest::RuntimeOptions;
using systest::TickAck;
using systest::TimerMachine;
using systest::TimerTick;

struct Observed {
  int ticks = 0;
  std::uint64_t last_tag = 0;
};
Observed* g_observed = nullptr;

class TickTarget final : public Machine {
 public:
  explicit TickTarget(int cancel_after) : cancel_after_(cancel_after) {
    State("Run").On<TimerTick>(&TickTarget::OnTick);
    SetStart("Run");
  }

 private:
  void OnTick(const TimerTick& tick) {
    ++g_observed->ticks;
    g_observed->last_tag = tick.tag;
    if (cancel_after_ > 0 && g_observed->ticks >= cancel_after_) {
      Send<CancelTimer>(tick.timer);
      return;  // deliberately do not ack: the timer must be cancellable
    }
    Send<TickAck>(tick.timer);
  }
  int cancel_after_;
};

/// Runs one deterministic round-robin execution to quiescence or bound.
void RunOnce(const systest::Harness& harness, std::uint64_t max_steps = 5'000) {
  systest::RoundRobinStrategy strategy;
  strategy.PrepareIteration(0, max_steps);
  RuntimeOptions options;
  options.max_steps = max_steps;
  Runtime rt(strategy, options);
  harness(rt);
  while (rt.Steps() < max_steps && rt.Step()) {
  }
}

class TimerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    observed_ = Observed{};
    g_observed = &observed_;
  }
  void TearDown() override { g_observed = nullptr; }
  Observed observed_;
};

TEST_F(TimerFixture, BoundedTimerDeliversAtMostMaxRounds) {
  RunOnce([](Runtime& rt) {
    auto target = rt.CreateMachine<TickTarget>("Target", 0);
    rt.CreateMachine<TimerMachine>("Timer", target, /*max_rounds=*/6,
                                   /*tag=*/7);
  });
  EXPECT_LE(g_observed->ticks, 6);
  EXPECT_GT(g_observed->ticks, 0) << "fairness cap forces some firings";
  EXPECT_EQ(g_observed->last_tag, 7u);
}

TEST_F(TimerFixture, FairnessCapGuaranteesFiringDensity) {
  // Round-robin NondetBool alternates true/false; with the fairness cap the
  // timer must fire at least once per (kMaxConsecutiveSkips + 1) rounds.
  RunOnce([](Runtime& rt) {
    auto target = rt.CreateMachine<TickTarget>("Target", 0);
    rt.CreateMachine<TimerMachine>("Timer", target, /*max_rounds=*/20);
  });
  EXPECT_GE(g_observed->ticks, 20 / 4);
}

TEST_F(TimerFixture, CancelStopsUnboundedTimer) {
  // An unbounded timer would run to the step bound; cancellation after two
  // ticks must let the system quiesce well before it.
  systest::RoundRobinStrategy strategy;
  strategy.PrepareIteration(0, 100'000);
  RuntimeOptions options;
  options.max_steps = 100'000;
  Runtime rt(strategy, options);
  auto target = rt.CreateMachine<TickTarget>("Target", /*cancel_after=*/2);
  rt.CreateMachine<TimerMachine>("Timer", target, /*max_rounds=*/0);
  while (rt.Steps() < 100'000 && rt.Step()) {
  }
  EXPECT_LT(rt.Steps(), 1'000u) << "system must quiesce after cancellation";
  EXPECT_EQ(g_observed->ticks, 2);
}

TEST_F(TimerFixture, OneTickInFlightUntilAcked) {
  // A target that never acks: the timer must deliver exactly one tick and
  // then stay disabled (quiescence), instead of flooding the queue.
  class NoAck final : public Machine {
   public:
    NoAck() {
      State("Run").On<TimerTick>(&NoAck::OnTick);
      SetStart("Run");
    }

   private:
    void OnTick(const TimerTick&) { ++g_observed->ticks; }
  };
  RunOnce([](Runtime& rt) {
    auto target = rt.CreateMachine<NoAck>("NoAck");
    rt.CreateMachine<TimerMachine>("Timer", target, /*max_rounds=*/0);
  });
  EXPECT_EQ(g_observed->ticks, 1);
}

}  // namespace
