// Tests for the exploration subsystem: budget sharding with disjoint seed
// ranges, portfolio assignment, per-strategy determinism (same seed ==
// identical trace), the parallel first-bug-wins engine whose winning trace
// replays on the calling thread, and trace serialize/deserialize/replay
// round-trips (in memory and through a file).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>

#include "api/strategy_registry.h"
#include "core/systest.h"
#include "corpus/trace_corpus.h"
#include "explore/parallel_engine.h"
#include "samplerepl/harness.h"

namespace {

using systest::BugKind;
using systest::Event;
using systest::Harness;
using systest::Machine;
using systest::MachineId;
using systest::Runtime;
using systest::StrategyRegistry;
using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;
using systest::Trace;
using systest::explore::ExplorationPlan;
using systest::explore::ParallelOptions;
using systest::explore::ParallelTestingEngine;
using systest::explore::ParallelTestReport;
using systest::explore::WorkerAssignment;

// ---------------------------------------------------------------------------
// Shared micro harness: two racers, a referee asserting arrival order.

struct ArrivalEvent final : Event {
  explicit ArrivalEvent(int who) : who(who) {}
  int who;
};

class Referee final : public Machine {
 public:
  Referee() {
    State("Run").On<ArrivalEvent>(&Referee::OnArrival);
    SetStart("Run");
  }

 private:
  void OnArrival(const ArrivalEvent& arrival) {
    if (first_ == 0) {
      first_ = arrival.who;
      Assert(first_ == 1, "racer 2 arrived first");
    }
  }
  int first_ = 0;
};

class Racer final : public Machine {
 public:
  Racer(MachineId referee, int who) : referee_(referee), who_(who) {
    State("Run").OnEntry(&Racer::OnStart);
    SetStart("Run");
  }

 private:
  void OnStart() { Send<ArrivalEvent>(referee_, who_); }
  MachineId referee_;
  int who_;
};

Harness RaceHarness() {
  return [](Runtime& rt) {
    auto referee = rt.CreateMachine<Referee>("Referee");
    rt.CreateMachine<Racer>("Racer1", referee, 1);
    rt.CreateMachine<Racer>("Racer2", referee, 2);
  };
}

TestConfig RaceConfig() {
  TestConfig config;
  config.iterations = 4'000;
  config.max_steps = 100;
  config.seed = 1;
  config.strategy = "random";
  return config;
}

// ---------------------------------------------------------------------------
// ExplorationPlan.

TEST(ExplorationPlan, ShardPartitionsBudgetIntoDisjointSeedRanges) {
  TestConfig config = RaceConfig();
  config.iterations = 10;  // uneven split across 4 workers
  config.seed = 100;
  const ExplorationPlan plan = ExplorationPlan::Shard(config, 4);
  ASSERT_EQ(plan.WorkerCount(), 4u);

  std::uint64_t total = 0;
  std::uint64_t expected_next = config.seed;
  for (const WorkerAssignment& a : plan.Workers()) {
    EXPECT_EQ(a.seed, expected_next) << "ranges must be contiguous/disjoint";
    EXPECT_EQ(a.strategy, config.strategy);
    expected_next = a.seed + a.iterations;
    total += a.iterations;
  }
  EXPECT_EQ(total, config.iterations);
  // 10 = 3 + 3 + 2 + 2: remainder spread over the first workers.
  EXPECT_EQ(plan.Workers()[0].iterations, 3u);
  EXPECT_EQ(plan.Workers()[3].iterations, 2u);
}

TEST(ExplorationPlan, ShardIsDeterministic) {
  const TestConfig config = RaceConfig();
  const ExplorationPlan a = ExplorationPlan::Shard(config, 8);
  const ExplorationPlan b = ExplorationPlan::Shard(config, 8);
  ASSERT_EQ(a.WorkerCount(), b.WorkerCount());
  for (std::size_t i = 0; i < a.WorkerCount(); ++i) {
    EXPECT_EQ(a.Workers()[i].seed, b.Workers()[i].seed);
    EXPECT_EQ(a.Workers()[i].iterations, b.Workers()[i].iterations);
  }
}

TEST(ExplorationPlan, PortfolioRacesComplementaryStrategies) {
  const ExplorationPlan plan = ExplorationPlan::Portfolio(RaceConfig(), 6);
  ASSERT_EQ(plan.WorkerCount(), 6u);
  // Worker 0 keeps the random baseline; the rotation must include PCT and
  // delay-bounded at more than one budget.
  EXPECT_EQ(plan.Workers()[0].strategy.str(), "random");
  std::set<std::pair<std::string, int>> combos;
  for (const WorkerAssignment& a : plan.Workers()) {
    combos.insert({a.strategy.str(), a.strategy_budget});
  }
  EXPECT_GE(combos.size(), 5u);
  EXPECT_TRUE(combos.contains({"pct", 2}));
  EXPECT_TRUE(combos.contains({"delay-bounded", 2}));
}

// ---------------------------------------------------------------------------
// Determinism: same seed => identical trace, for every strategy kind.

TEST(Determinism, SameSeedYieldsIdenticalTracePerStrategy) {
  const TestConfig config = RaceConfig();
  for (const char* name : {"random", "pct", "round-robin", "delay-bounded"}) {
    for (const std::uint64_t iteration : {0ULL, 1ULL, 17ULL}) {
      Trace traces[2];
      for (int run = 0; run < 2; ++run) {
        const auto strategy =
            StrategyRegistry::Instance().Create(name, /*seed=*/42, /*budget=*/2);
        strategy->PrepareIteration(iteration, config.max_steps);
        Runtime runtime(*strategy,
                        systest::MakeRuntimeOptions(config, false));
        try {
          systest::StepToCompletion(runtime, RaceHarness(), config.max_steps);
        } catch (const systest::BugFound&) {
          // The racers' bug may fire; the recorded prefix must still match.
        }
        traces[run] = runtime.GetTrace();
      }
      EXPECT_EQ(traces[0], traces[1])
          << "strategy " << name << " iteration " << iteration;
      EXPECT_FALSE(traces[0].Empty());
    }
  }
}

// ---------------------------------------------------------------------------
// ParallelTestingEngine.

TEST(ParallelEngine, FindsBugAndWinningTraceReplaysOnMainThread) {
  ParallelOptions options;
  options.threads = 4;
  ParallelTestingEngine engine(RaceConfig(), RaceHarness(), options);
  const ParallelTestReport report = engine.Run();

  ASSERT_TRUE(report.aggregate.bug_found);
  EXPECT_EQ(report.aggregate.bug_kind, BugKind::kSafety);
  ASSERT_GE(report.winning_worker, 0);
  EXPECT_TRUE(report.workers[static_cast<std::size_t>(report.winning_worker)]
                  .won);
  EXPECT_TRUE(report.replay_verified);

  // Independently replay the winning trace through the serial engine.
  TestingEngine serial(RaceConfig(), RaceHarness());
  const TestReport replayed = serial.Replay(report.aggregate.bug_trace);
  ASSERT_TRUE(replayed.bug_found);
  EXPECT_EQ(replayed.bug_kind, report.aggregate.bug_kind);
  EXPECT_EQ(replayed.bug_message, report.aggregate.bug_message);
}

TEST(ParallelEngine, SingleWorkerMatchesSerialEngine) {
  // One worker gets the whole budget at the original base seed, so the
  // parallel engine must find exactly the bug the serial engine finds.
  ParallelOptions options;
  options.threads = 1;
  ParallelTestingEngine parallel(RaceConfig(), RaceHarness(), options);
  const ParallelTestReport preport = parallel.Run();

  TestingEngine serial(RaceConfig(), RaceHarness());
  const TestReport sreport = serial.Run();

  ASSERT_TRUE(preport.aggregate.bug_found);
  ASSERT_TRUE(sreport.bug_found);
  EXPECT_EQ(preport.aggregate.bug_trace, sreport.bug_trace);
  EXPECT_EQ(preport.aggregate.bug_iteration, sreport.bug_iteration);
}

TEST(ParallelEngine, PortfolioModeFindsBug) {
  ParallelOptions options;
  options.threads = 6;
  options.portfolio = true;
  ParallelTestingEngine engine(RaceConfig(), RaceHarness(), options);
  const ParallelTestReport report = engine.Run();
  ASSERT_TRUE(report.aggregate.bug_found);
  EXPECT_TRUE(report.replay_verified);
  ASSERT_EQ(report.workers.size(), 6u);
  EXPECT_FALSE(report.BreakdownTable().empty());
}

TEST(ParallelEngine, CleanHarnessExhaustsWholeBudget) {
  TestConfig config = RaceConfig();
  config.iterations = 500;
  ParallelOptions options;
  options.threads = 3;
  // Only racer 1: no ordering bug to find.
  ParallelTestingEngine engine(
      config,
      [](Runtime& rt) {
        auto referee = rt.CreateMachine<Referee>("Referee");
        rt.CreateMachine<Racer>("Racer1", referee, 1);
      },
      options);
  const ParallelTestReport report = engine.Run();
  EXPECT_FALSE(report.aggregate.bug_found);
  EXPECT_EQ(report.winning_worker, -1);
  EXPECT_EQ(report.aggregate.executions, 500u);
  std::uint64_t per_worker = 0;
  for (const auto& w : report.workers) per_worker += w.executions;
  EXPECT_EQ(per_worker, 500u);
}

// Stateful exploration across workers: all of them hammer ONE shared
// sharded visited set (this binary runs under TSan in CI, so this is also
// the data-race guard for ShardedFingerprintSet).
TEST(ParallelEngine, StatefulWorkersShareOneVisitedSet) {
  TestConfig config = RaceConfig();
  config.iterations = 2'000;
  config.stateful = true;
  ParallelOptions options;
  options.threads = 4;
  options.verify_replay = false;
  // Only racer 1: clean harness, so every worker burns its whole slice
  // through the shared set.
  ParallelTestingEngine engine(
      config,
      [](Runtime& rt) {
        auto referee = rt.CreateMachine<Referee>("Referee");
        rt.CreateMachine<Racer>("Racer1", referee, 1);
      },
      options);
  const ParallelTestReport report = engine.Run();
  EXPECT_FALSE(report.aggregate.bug_found);
  EXPECT_TRUE(report.aggregate.stateful);
  EXPECT_GT(report.aggregate.distinct_states, 0u);
  // The two-machine race has a handful of reachable states; the union must
  // be tiny even though 2000 executions were fingerprinted.
  EXPECT_LT(report.aggregate.distinct_states, 64u);
  EXPECT_GT(report.aggregate.fingerprint_hits, 0u);
}

// Tiered sharded set under concurrency: a tiny per-shard hot level forces
// constant compaction (and k-way merges) INSIDE the shard locks while four
// samplerepl workers hammer the set. This binary runs under TSan in CI, so
// this is the data-race guard for the tiered back level — runs, blooms and
// stats must stay shard-private. samplerepl generates thousands of distinct
// states, so shards genuinely compact (the race harness above would not).
TEST(ParallelEngine, TieredShardsCompactUnderConcurrentWorkers) {
  TestConfig config;
  config.iterations = 2'000;
  config.max_steps = 300;
  config.seed = 31;
  config.strategy = "random";
  config.stateful = true;
  config.max_visited_hot = 256;  // 4 entries per shard before compaction
  ParallelOptions options;
  options.threads = 4;
  options.verify_replay = false;
  ParallelTestingEngine engine(
      config, samplerepl::MakeHarness(samplerepl::HarnessOptions{}), options);
  const ParallelTestReport report = engine.Run();
  EXPECT_FALSE(report.aggregate.bug_found);
  EXPECT_TRUE(report.aggregate.stateful);
  EXPECT_GT(report.aggregate.distinct_states, 256u);
  EXPECT_GT(report.aggregate.visited.compactions, 0u);
  // Size() (the global atomic) and the per-shard occupancy must agree.
  EXPECT_EQ(report.aggregate.visited.hot_entries +
                report.aggregate.visited.run_entries,
            report.aggregate.distinct_states);
  EXPECT_EQ(report.aggregate.visited_budget, config.max_visited);
}

// Execution recycling under the parallel engine: every worker seals its
// first samplerepl execution and reset-reuses ONE Runtime (and one
// thread-affine event arena) for its remaining 1000 iterations. This binary
// runs under TSan in CI, so this is the data-race guard for the recycling
// plane: the arena TLS arm/disarm protocol, per-worker sealed setup
// prototypes, and the recycled Runtimes' strict thread-affinity.
TEST(ParallelEngine, RecyclingWorkersStayIsolatedUnderTsan) {
  TestConfig config;
  config.iterations = 4'000;  // 4 workers x 1000 recycled executions
  config.max_steps = 300;
  config.seed = 31;
  config.strategy = "random";
  ParallelOptions options;
  options.threads = 4;
  options.verify_replay = false;
  ParallelTestingEngine engine(
      config, samplerepl::MakeHarness(samplerepl::HarnessOptions{}), options);
  const ParallelTestReport report = engine.Run();
  EXPECT_FALSE(report.aggregate.bug_found);
  EXPECT_EQ(report.aggregate.executions, 4'000u);
  std::uint64_t per_worker = 0;
  for (const auto& w : report.workers) per_worker += w.executions;
  EXPECT_EQ(per_worker, 4'000u);
}

// Parallel fault injection: the whole fleet explores crash/restart
// schedules on the samplerepl crash-recovery scenario, the winning fault
// trace is replayed on the calling thread, and per-worker fault counters
// merge into the aggregate. This binary runs under TSan in CI, so this is
// also the data-race guard for the fault plane's per-worker state.
TEST(ParallelEngine, FaultInjectionAcrossWorkersReplaysWinningTrace) {
  samplerepl::HarnessOptions hopts;
  hopts.crashable_nodes = true;
  hopts.liveness_monitor = false;
  TestConfig config = samplerepl::DefaultConfig();
  config.iterations = 20'000;
  config.max_crashes = 1;
  config.max_restarts = 1;
  ParallelOptions options;
  options.threads = 4;
  ParallelTestingEngine engine(config, samplerepl::MakeHarness(hopts),
                               options);
  for (const WorkerAssignment& a : engine.Plan().Workers()) {
    EXPECT_EQ(a.max_crashes, 1u);  // shards carry the fault budgets
    EXPECT_TRUE(a.FaultsEnabled());
  }
  const ParallelTestReport report = engine.Run();
  ASSERT_TRUE(report.aggregate.bug_found);
  EXPECT_EQ(report.aggregate.bug_kind, BugKind::kSafety);
  EXPECT_TRUE(report.replay_verified)
      << "fault schedule did not reproduce on the calling thread";
  EXPECT_TRUE(report.aggregate.faults);
  EXPECT_GT(report.aggregate.injected_faults.crashes, 0u);
  EXPECT_TRUE(report.aggregate.bug_trace.HasFaultDecisions());
  std::uint64_t merged = 0;
  for (const auto& w : report.workers) merged += w.injected_faults.crashes;
  EXPECT_EQ(report.aggregate.injected_faults.crashes, merged);
}

// Parallel partition injection: a bug only a partition-and-heal schedule can
// expose, hunted by the whole fleet, with the winning v3 trace replayed
// bit-for-bit on the calling thread. This binary runs under TSan in CI, so
// this is also the data-race guard for the partition plane's per-worker
// state.
//
// Micro system: a Loader paces Pings to a partitionable Store via self-sent
// Ticks, then sends a Probe; the Store replies with its count and the Loader
// asserts nothing was lost. Only a partition installed during the ping
// window AND healed before the probe can violate the assert, so the winning
// trace is guaranteed to carry partition decisions.
namespace partition_bug {

struct Ping final : Event {};
struct Tick final : Event {};
struct Probe final : Event {};
struct CountReply final : Event {
  explicit CountReply(int count) : count(count) {}
  int count;
};

class Store final : public Machine {
 public:
  explicit Store(MachineId loader) : loader_(loader) {
    State("Run").On<Ping>(&Store::OnPing).On<Probe>(&Store::OnProbe);
    SetStart("Run");
  }

 private:
  void OnPing(const Ping&) { ++count_; }
  void OnProbe(const Probe&) { Send<CountReply>(loader_, count_); }
  MachineId loader_;
  int count_ = 0;
};

class Loader final : public Machine {
 public:
  Loader(MachineId store, int pings) : store_(store), pings_(pings) {
    State("Run")
        .OnEntry(&Loader::Kick)
        .On<Tick>(&Loader::OnTick)
        .On<CountReply>(&Loader::OnReply);
    SetStart("Run");
  }

 private:
  void Kick() { Step(); }
  void OnTick(const Tick&) { Step(); }
  void Step() {
    if (sent_ < pings_) {
      Send<Ping>(store_);
      ++sent_;
      Send<Tick>(Id());
    } else {
      Send<Probe>(store_);
    }
  }
  void OnReply(const CountReply& reply) {
    Assert(reply.count == pings_, "partition lost a delivery");
  }
  MachineId store_;
  int pings_;
  int sent_ = 0;
};

Harness MakeHarness() {
  return [](Runtime& rt) {
    // The store is created first so the loader id exists for its reply; the
    // harness wires the cycle with a forward id (ids are sequential from 1).
    const MachineId store = rt.CreateMachine<Store>("Store", MachineId{2});
    rt.CreateMachine<Loader>("Loader", store, 4);
    rt.SetPartitionable(store);
  };
}

}  // namespace partition_bug

TEST(ParallelEngine, PartitionInjectionAcrossWorkersReplaysWinningTrace) {
  TestConfig config;
  config.iterations = 20'000;
  config.max_steps = 200;
  config.seed = 1;
  config.strategy = "random";
  config.max_partitions = 1;
  ParallelOptions options;
  options.threads = 4;
  ParallelTestingEngine engine(config, partition_bug::MakeHarness(), options);
  for (const WorkerAssignment& a : engine.Plan().Workers()) {
    EXPECT_EQ(a.max_partitions, 1u);  // shards carry the partition budget
    EXPECT_TRUE(a.FaultsEnabled());
  }
  const ParallelTestReport report = engine.Run();
  ASSERT_TRUE(report.aggregate.bug_found);
  EXPECT_EQ(report.aggregate.bug_kind, BugKind::kSafety);
  EXPECT_TRUE(report.replay_verified)
      << "partition schedule did not reproduce bit-for-bit on the calling "
         "thread";
  ASSERT_TRUE(report.aggregate.bug_trace.HasPartitionDecisions());
  EXPECT_EQ(report.aggregate.bug_trace.Serialize().rfind("systest-trace v3 ",
                                                         0),
            0u);
  EXPECT_GT(report.aggregate.injected_faults.partitions, 0u);
  std::uint64_t merged = 0;
  for (const auto& w : report.workers) merged += w.injected_faults.partitions;
  EXPECT_EQ(report.aggregate.injected_faults.partitions, merged);

  // Independent serial replay of the winning trace, NO fault configuration.
  TestConfig replay_config = config;
  replay_config.max_partitions = 0;
  TestingEngine serial(replay_config, partition_bug::MakeHarness());
  const TestReport replayed = serial.Replay(report.aggregate.bug_trace);
  ASSERT_TRUE(replayed.bug_found);
  EXPECT_EQ(replayed.bug_message, report.aggregate.bug_message);
}

// Shared trace corpus across workers: the whole fleet feeds ONE striped
// TraceCorpus while mutate workers concurrently sample it. This binary runs
// under TSan in CI, so this is also the data-race guard for the corpus's
// striped shards (concurrent Add vs Sample vs Stats).
TEST(ParallelEngine, WorkersFeedAndSampleOneSharedCorpus) {
  samplerepl::HarnessOptions hopts;
  hopts.crashable_nodes = true;
  hopts.liveness_monitor = false;
  TestConfig config = samplerepl::DefaultConfig();
  config.iterations = 800;
  config.max_crashes = 1;
  config.max_restarts = 1;
  config.stateful = true;
  config.strategy = "mutate";
  config.corpus_mutation = true;
  config.stop_on_first_bug = false;

  systest::corpus::TraceCorpus corpus;
  const systest::corpus::ScopedActiveCorpus active(&corpus);
  ParallelOptions options;
  options.threads = 4;
  options.verify_replay = false;
  options.corpus = &corpus;
  ParallelTestingEngine engine(config, samplerepl::MakeHarness(hopts),
                               options);
  const ParallelTestReport report = engine.Run();

  EXPECT_TRUE(report.aggregate.stateful);
  const systest::corpus::CorpusStats stats = corpus.Stats();
  EXPECT_GT(stats.added, 0u) << "no worker ever fed the shared corpus";
  EXPECT_GT(stats.sampled, 0u) << "no mutate worker ever sampled it";
  EXPECT_EQ(stats.entries, corpus.Size());
  // Workers rediscover each other's schedules; dedup must have fired and the
  // store can never exceed what was actually added.
  EXPECT_LE(stats.entries, stats.added + stats.loaded);
}

// Portfolio in a corpus-fed run converts every third worker to the mutate
// strategy while worker 0 keeps the random baseline.
TEST(ExplorationPlan, PortfolioConvertsEveryThirdWorkerToMutate) {
  TestConfig config = RaceConfig();
  config.stateful = true;
  config.corpus_mutation = true;
  const ExplorationPlan plan = ExplorationPlan::Portfolio(config, 9);
  EXPECT_EQ(plan.Workers()[0].strategy.str(), "random");
  int mutate_workers = 0;
  for (const WorkerAssignment& a : plan.Workers()) {
    if (a.worker % 3 == 2) {
      EXPECT_EQ(a.strategy.str(), "mutate") << "worker " << a.worker;
      ++mutate_workers;
    } else {
      EXPECT_NE(a.strategy.str(), "mutate") << "worker " << a.worker;
    }
  }
  EXPECT_EQ(mutate_workers, 3);
  // Without the flag, no worker mutates.
  const ExplorationPlan plain = ExplorationPlan::Portfolio(RaceConfig(), 9);
  for (const WorkerAssignment& a : plain.Workers()) {
    EXPECT_NE(a.strategy.str(), "mutate");
  }
}

// Portfolio with partitions budgeted dedicates every other faulted worker to
// partition-and-heal schedules exclusively.
TEST(ExplorationPlan, PortfolioDedicatesPartitionHeavyWorkers) {
  TestConfig config = RaceConfig();
  config.max_crashes = 2;
  config.drop_probability_den = 8;
  config.max_partitions = 1;
  const ExplorationPlan plan = ExplorationPlan::Portfolio(config, 8);
  for (const WorkerAssignment& a : plan.Workers()) {
    if (a.worker % 2 == 1) {
      EXPECT_FALSE(a.FaultsEnabled());  // fault-free half
    } else if (a.worker % 4 == 2) {
      // Partition-heavy: the whole fault budget drives partitions.
      EXPECT_EQ(a.max_crashes, 0u);
      EXPECT_EQ(a.drop_probability_den, 0u);
      EXPECT_EQ(a.max_partitions, 1u);
    } else {
      EXPECT_EQ(a.max_crashes, 2u);  // mixed-fault workers keep everything
      EXPECT_EQ(a.max_partitions, 1u);
    }
  }
}

// Portfolio with faults configured races fault-heavy workers against
// fault-free ones.
TEST(ExplorationPlan, PortfolioAlternatesFaultHeavyAndFaultFreeWorkers) {
  TestConfig config = RaceConfig();
  config.max_crashes = 2;
  config.drop_probability_den = 8;
  const ExplorationPlan plan = ExplorationPlan::Portfolio(config, 6);
  int with_faults = 0;
  int without = 0;
  for (const WorkerAssignment& a : plan.Workers()) {
    if (a.FaultsEnabled()) {
      EXPECT_EQ(a.worker % 2, 0);
      EXPECT_EQ(a.max_crashes, 2u);
      EXPECT_EQ(a.drop_probability_den, 8u);
      ++with_faults;
    } else {
      EXPECT_EQ(a.worker % 2, 1);
      ++without;
    }
  }
  EXPECT_EQ(with_faults, 3);
  EXPECT_EQ(without, 3);
  // Without faults configured, portfolio assigns none anywhere.
  const ExplorationPlan plain = ExplorationPlan::Portfolio(RaceConfig(), 6);
  for (const WorkerAssignment& a : plain.Workers()) {
    EXPECT_FALSE(a.FaultsEnabled());
  }
}

// ---------------------------------------------------------------------------
// Trace serialization.

TEST(TraceSerialization, SerializeDeserializeReplayRoundTrips) {
  TestingEngine engine(RaceConfig(), RaceHarness());
  const TestReport report = engine.Run();
  ASSERT_TRUE(report.bug_found);

  const std::string text = report.bug_trace.Serialize();
  EXPECT_EQ(text.rfind("systest-trace v1 ", 0), 0u) << text;
  const Trace restored = Trace::Deserialize(text);
  EXPECT_EQ(restored, report.bug_trace);

  const TestReport replayed = engine.Replay(restored);
  ASSERT_TRUE(replayed.bug_found);
  EXPECT_EQ(replayed.bug_message, report.bug_message);
}

TEST(TraceSerialization, FileRoundTripReplays) {
  TestingEngine engine(RaceConfig(), RaceHarness());
  const TestReport report = engine.Run();
  ASSERT_TRUE(report.bug_found);

  const std::string path =
      (std::filesystem::temp_directory_path() / "systest_roundtrip.trace")
          .string();
  report.bug_trace.SaveFile(path);
  const Trace loaded = Trace::LoadFile(path);
  std::filesystem::remove(path);
  EXPECT_EQ(loaded, report.bug_trace);
  EXPECT_TRUE(engine.Replay(loaded).bug_found);
}

TEST(TraceSerialization, EmptyTraceRoundTrips) {
  const Trace empty;
  const Trace restored = Trace::Deserialize(empty.Serialize());
  EXPECT_TRUE(restored.Empty());
}

TEST(TraceSerialization, DeserializeRejectsMalformedInput) {
  EXPECT_THROW(Trace::Deserialize(""), std::invalid_argument);
  EXPECT_THROW(Trace::Deserialize("not-a-trace v1 0\n\n"),
               std::invalid_argument);
  EXPECT_THROW(Trace::Deserialize("systest-trace v9 0\n\n"),
               std::invalid_argument);
  EXPECT_THROW(Trace::Deserialize("systest-trace v1 3\ns1;s2\n"),
               std::invalid_argument);  // count mismatch
  EXPECT_THROW(Trace::LoadFile("/nonexistent/path/x.trace"),
               std::runtime_error);
}

}  // namespace
