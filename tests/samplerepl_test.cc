// Tests for the §2.2 example replication system: the fixed system passes
// systematic testing, and each re-introduced bug is found with the expected
// violation kind (safety for non-unique replica counting, liveness for the
// missing counter reset).
#include <gtest/gtest.h>

#include "core/systest.h"
#include "samplerepl/harness.h"

namespace {

using samplerepl::HarnessOptions;
using samplerepl::MakeHarness;
using systest::BugKind;
using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;

TestConfig BaseConfig(systest::StrategyName strategy) {
  TestConfig config;
  config.iterations = 20'000;
  config.max_steps = 2'000;
  config.seed = 2016;
  config.strategy = strategy;
  config.strategy_budget = 2;
  return config;
}

TEST(SampleRepl, FixedSystemPassesSystematicTesting) {
  HarnessOptions options;  // no bugs enabled
  TestConfig config = BaseConfig("random");
  config.iterations = 3'000;
  const TestReport report =
      TestingEngine(config, MakeHarness(options)).Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
  EXPECT_EQ(report.executions, 3'000u);
}

TEST(SampleRepl, NonUniqueReplicaCountIsSafetyBug) {
  HarnessOptions options;
  options.bugs.non_unique_replica_count = true;
  const TestReport report =
      TestingEngine(BaseConfig("random"), MakeHarness(options))
          .Run();
  ASSERT_TRUE(report.bug_found) << report.Summary();
  EXPECT_EQ(report.bug_kind, BugKind::kSafety);
  EXPECT_NE(report.bug_message.find("distinct up-to-date replicas"),
            std::string::npos);
}

TEST(SampleRepl, MissingCounterResetIsLivenessBug) {
  HarnessOptions options;
  options.bugs.no_counter_reset = true;
  const TestReport report =
      TestingEngine(BaseConfig("random"), MakeHarness(options))
          .Run();
  ASSERT_TRUE(report.bug_found) << report.Summary();
  EXPECT_EQ(report.bug_kind, BugKind::kLiveness);
}

TEST(SampleRepl, PctFindsBothBugs) {
  for (const bool safety : {true, false}) {
    HarnessOptions options;
    options.bugs.non_unique_replica_count = safety;
    options.bugs.no_counter_reset = !safety;
    const TestReport report =
        TestingEngine(BaseConfig("pct"), MakeHarness(options))
            .Run();
    ASSERT_TRUE(report.bug_found) << report.Summary();
    EXPECT_EQ(report.bug_kind,
              safety ? BugKind::kSafety : BugKind::kLiveness);
  }
}

TEST(SampleRepl, BugTraceReplaysDeterministically) {
  HarnessOptions options;
  options.bugs.non_unique_replica_count = true;
  TestingEngine engine(BaseConfig("random"), MakeHarness(options));
  const TestReport report = engine.Run();
  ASSERT_TRUE(report.bug_found);
  const TestReport replay = engine.Replay(report.bug_trace);
  ASSERT_TRUE(replay.bug_found);
  EXPECT_EQ(replay.bug_message, report.bug_message);
  // The readable trace names the machines involved in the violation.
  EXPECT_NE(replay.execution_log.find("Server"), std::string::npos);
  EXPECT_NE(replay.execution_log.find("StorageNode"), std::string::npos);
}

TEST(SampleRepl, SingleRequestMasksLivenessBug) {
  // The counter-reset bug needs at least two client requests to manifest —
  // with one request the system quiesces cleanly. This mirrors the paper's
  // point that harness scenarios determine which bugs are reachable.
  HarnessOptions options;
  options.bugs.no_counter_reset = true;
  options.num_requests = 1;
  TestConfig config = BaseConfig("random");
  config.iterations = 2'000;
  const TestReport report =
      TestingEngine(config, MakeHarness(options)).Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

}  // namespace
