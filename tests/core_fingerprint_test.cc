// Stateful-exploration tests: fingerprint determinism (same seed => same
// fingerprint sequence, serial and across 1-vs-N exploration workers),
// byte-identical traces with stateful off vs on (fingerprinting must never
// perturb scheduling), collision safety of the default hashable state view,
// the incremental-vs-recompute cross-check, engine pruning/stats, the
// max_visited cap, and the new TestConfig::Validate rules.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "chaintable/memory_table.h"
#include "core/systest.h"
#include "explore/parallel_engine.h"
#include "explore/sharded_fingerprint_set.h"
#include "mtable/tables_machine.h"
#include "samplerepl/harness.h"

namespace {

using systest::Event;
using systest::Fingerprint;
using systest::Machine;
using systest::MachineId;
using systest::StateHasher;
using systest::TestConfig;
using systest::TestingEngine;

struct Ball final : Event {
  explicit Ball(int n) : n(n) {}
  int n;
};

struct Tick final : Event {};

/// Ping-pong with nondeterministic choices, so schedules vary per seed while
/// the default-view state space stays tiny (ball position + queue contents).
class Paddle final : public Machine {
 public:
  explicit Paddle(int rounds) : rounds_(rounds) {
    State("Play").OnEntry(&Paddle::OnStart).On<Ball>(&Paddle::OnBall);
    SetStart("Play");
  }
  void SetPeer(MachineId peer) { peer_ = peer; }
  void Serve() { serve_ = true; }

 private:
  void OnStart() {
    if (serve_) Send<Ball>(peer_, 0);
  }
  void OnBall(const Ball& ball) {
    if (ball.n >= rounds_) return;
    if (NondetBool()) (void)NondetInt(5);
    Send<Ball>(peer_, ball.n + 1);
  }

  MachineId peer_;
  int rounds_;
  bool serve_ = false;
};

systest::Harness PingPongHarness(int rounds) {
  return [rounds](systest::Runtime& rt) {
    auto a = rt.CreateMachine<Paddle>("A", rounds);
    auto b = rt.CreateMachine<Paddle>("B", rounds);
    static_cast<Paddle*>(rt.FindMachine(a))->SetPeer(b);
    auto* pb = static_cast<Paddle*>(rt.FindMachine(b));
    pb->SetPeer(a);
    pb->Serve();
  };
}

/// Two-state machine driven between its states by Tick gotos.
class TwoState final : public Machine {
 public:
  TwoState() {
    State("A").OnGoto<Tick>("B");
    State("B").OnGoto<Tick>("A");
    SetStart("A");
  }
};

/// Machine whose semantic state is a counter invisible to the default view.
class Counter final : public Machine {
 public:
  Counter() {
    State("Run").On<Tick>(&Counter::OnTick);
    SetStart("Run");
  }
  void FingerprintPayload(StateHasher& hasher) const override {
    hasher.Mix(static_cast<std::uint64_t>(count_));
  }
  /// Harness-setup mutation (the SetPeer pattern): must be visible to the
  /// very first fingerprint even though it happens after CreateMachine.
  void Prime(int value) { count_ = value; }

 private:
  void OnTick(const Tick&) { ++count_; }
  int count_ = 0;
};

systest::RuntimeOptions StatefulOptions(std::uint64_t max_steps = 500) {
  systest::RuntimeOptions options;
  options.max_steps = max_steps;
  options.stateful = true;
  options.record_fingerprint_trail = true;
  return options;
}

/// Steps a stateful runtime to quiescence with NO visited set (no pruning)
/// and returns the full fingerprint trail.
std::vector<Fingerprint> FullTrail(const systest::Harness& harness,
                                   systest::SchedulingStrategy& strategy,
                                   std::uint64_t iteration,
                                   std::uint64_t max_steps) {
  strategy.PrepareIteration(iteration, max_steps);
  systest::Runtime rt(strategy, StatefulOptions(max_steps));
  harness(rt);
  while (rt.Steps() < max_steps && rt.Step()) {
  }
  return rt.FingerprintTrail();
}

// ---------------------------------------------------------------------------
// Default hashable state view: collision safety.

TEST(FingerprintView, DifferentStatesNeverHashEqual) {
  systest::RoundRobinStrategy strategy(0);
  strategy.PrepareIteration(0, 100);
  systest::Runtime rt(strategy, StatefulOptions(100));
  const MachineId id = rt.CreateMachine<TwoState>("m");
  while (rt.Step()) {
  }
  const Machine* machine = rt.FindMachine(id);
  ASSERT_EQ(machine->CurrentStateName(), "A");
  const Fingerprint in_a = machine->ComputeStateFingerprint(false);

  rt.SendEvent<Tick>(id);
  ASSERT_TRUE(rt.Step());
  ASSERT_EQ(machine->CurrentStateName(), "B");
  const Fingerprint in_b = machine->ComputeStateFingerprint(false);
  EXPECT_NE(in_a, in_b)
      << "same machine, different current state, identical fingerprint";
}

TEST(FingerprintView, DifferentMachinesSameStateNeverHashEqual) {
  systest::RoundRobinStrategy strategy(0);
  strategy.PrepareIteration(0, 100);
  systest::Runtime rt(strategy, StatefulOptions(100));
  const MachineId a = rt.CreateMachine<TwoState>("a");
  const MachineId b = rt.CreateMachine<TwoState>("b");
  while (rt.Step()) {
  }
  EXPECT_EQ(rt.FindMachine(a)->CurrentStateName(),
            rt.FindMachine(b)->CurrentStateName());
  EXPECT_NE(rt.FindMachine(a)->ComputeStateFingerprint(false),
            rt.FindMachine(b)->ComputeStateFingerprint(false))
      << "machine identity must be part of the state view";
}

TEST(FingerprintView, QueuedEventTypesDistinguishStates) {
  systest::RoundRobinStrategy strategy(0);
  strategy.PrepareIteration(0, 100);
  systest::Runtime rt(strategy, StatefulOptions(100));
  const MachineId id = rt.CreateMachine<TwoState>("m");
  while (rt.Step()) {
  }
  const Machine* machine = rt.FindMachine(id);
  const Fingerprint idle = machine->ComputeStateFingerprint(false);
  rt.SendEvent<Tick>(id);
  const Fingerprint with_tick = machine->ComputeStateFingerprint(false);
  EXPECT_NE(idle, with_tick);
}

TEST(FingerprintView, PayloadHookOnlyCountsWhenEnabled) {
  systest::RoundRobinStrategy strategy(0);
  strategy.PrepareIteration(0, 100);
  systest::Runtime rt(strategy, StatefulOptions(100));
  const MachineId id = rt.CreateMachine<Counter>("c");
  while (rt.Step()) {
  }
  const Machine* machine = rt.FindMachine(id);
  const Fingerprint structural = machine->ComputeStateFingerprint(false);
  const Fingerprint with_payload = machine->ComputeStateFingerprint(true);

  rt.SendEvent<Tick>(id);
  ASSERT_TRUE(rt.Step());  // counter increments; state and queue end unchanged

  EXPECT_EQ(machine->ComputeStateFingerprint(false), structural)
      << "default view must not see the counter";
  EXPECT_NE(machine->ComputeStateFingerprint(true), with_payload)
      << "payload view must see the counter";
}

TEST(FingerprintView, SetupTimeMutationReachesTheInitialFingerprint) {
  auto initial_fp = [](int primed) {
    systest::RoundRobinStrategy strategy(0);
    strategy.PrepareIteration(0, 100);
    systest::RuntimeOptions options = StatefulOptions(100);
    options.fingerprint_payloads = true;
    systest::Runtime rt(strategy, options);
    const MachineId id = rt.CreateMachine<Counter>("c");
    // Post-Create, pre-step mutation — the SetPeer harness pattern.
    static_cast<Counter*>(rt.FindMachine(id))->Prime(primed);
    const Fingerprint fp = rt.ExecutionFingerprint();
    EXPECT_EQ(fp, rt.RecomputeExecutionFingerprint());
    return fp;
  };
  EXPECT_NE(initial_fp(5), initial_fp(9))
      << "contribution was hashed before harness setup finished";
}

// ---------------------------------------------------------------------------
// Incremental maintenance matches a from-scratch recompute at every step.

TEST(FingerprintIncremental, MatchesRecomputeEveryStepOnSampleRepl) {
  const systest::Harness harness =
      samplerepl::MakeHarness(samplerepl::HarnessOptions{});
  systest::RandomStrategy strategy(2016);
  strategy.PrepareIteration(0, 2000);
  systest::Runtime rt(strategy, StatefulOptions(2000));
  harness(rt);
  EXPECT_EQ(rt.ExecutionFingerprint(), rt.RecomputeExecutionFingerprint());
  while (rt.Steps() < 2000 && rt.Step()) {
    ASSERT_EQ(rt.ExecutionFingerprint(), rt.RecomputeExecutionFingerprint())
        << "incremental fingerprint diverged at step " << rt.Steps();
  }
}

// ---------------------------------------------------------------------------
// Fingerprinting must not perturb scheduling: identical traces on vs off.

TEST(FingerprintIdentity, StatefulRuntimeProducesIdenticalTraces) {
  const systest::Harness harness = PingPongHarness(6);
  for (const std::uint64_t iteration : {0ull, 2ull}) {
    systest::RandomStrategy off_strategy(7);
    off_strategy.PrepareIteration(iteration, 500);
    systest::RuntimeOptions off_options;
    off_options.max_steps = 500;
    systest::Runtime off(off_strategy, off_options);
    harness(off);
    while (off.Steps() < 500 && off.Step()) {
    }

    systest::RandomStrategy on_strategy(7);
    on_strategy.PrepareIteration(iteration, 500);
    systest::Runtime on(on_strategy, StatefulOptions(500));
    harness(on);
    while (on.Steps() < 500 && on.Step()) {
    }

    EXPECT_EQ(off.GetTrace().ToString(), on.GetTrace().ToString());
    EXPECT_TRUE(off.FingerprintTrail().empty());
    EXPECT_EQ(on.FingerprintTrail().size(), on.Steps());
  }
}

// ---------------------------------------------------------------------------
// Determinism: same seed => same fingerprint sequence, run after run.

using TrailMap = std::map<std::uint64_t, std::vector<Fingerprint>>;

TrailMap SerialTrails(const TestConfig& config, const systest::Harness& harness) {
  TrailMap trails;
  TestingEngine engine(config, harness);
  engine.SetIterationCallback(
      [&trails](std::uint64_t iteration, const systest::ExecutionResult& r) {
        trails[iteration] = r.fingerprint_trail;
      });
  (void)engine.Run();
  return trails;
}

TestConfig StatefulConfig() {
  TestConfig config;
  config.strategy = "random";
  config.seed = 7;
  config.iterations = 12;
  config.max_steps = 500;
  config.stateful = true;
  config.record_fingerprint_trail = true;
  config.stop_on_first_bug = false;
  return config;
}

TEST(FingerprintDeterminism, SameSeedSameSequenceAcrossRuns) {
  const systest::Harness harness = PingPongHarness(6);
  const TrailMap first = SerialTrails(StatefulConfig(), harness);
  const TrailMap second = SerialTrails(StatefulConfig(), harness);
  ASSERT_EQ(first.size(), 12u);
  EXPECT_EQ(first, second);
  bool any_nonempty = false;
  for (const auto& [iteration, trail] : first) any_nonempty |= !trail.empty();
  EXPECT_TRUE(any_nonempty);
}

TEST(FingerprintDeterminism, OneWorkerExploreMatchesSerialExactly) {
  const systest::Harness harness = PingPongHarness(6);
  const TrailMap serial = SerialTrails(StatefulConfig(), harness);

  systest::explore::ParallelOptions options;
  options.threads = 1;
  options.verify_replay = false;
  TrailMap parallel;
  std::mutex mutex;
  options.on_iteration = [&](int /*worker*/, std::uint64_t iteration,
                             const systest::ExecutionResult& r) {
    const std::lock_guard<std::mutex> lock(mutex);
    parallel[iteration] = r.fingerprint_trail;
  };
  systest::explore::ParallelTestingEngine engine(StatefulConfig(), harness,
                                                 options);
  (void)engine.Run();
  EXPECT_EQ(serial, parallel);
}

TEST(FingerprintDeterminism, NWorkerTrailsArePrefixesOfTheirSeedsFullTrails) {
  const systest::Harness harness = PingPongHarness(6);
  const TestConfig config = StatefulConfig();

  systest::explore::ParallelOptions options;
  options.threads = 2;
  options.verify_replay = false;
  // (worker, local iteration) -> trail.
  std::map<std::pair<int, std::uint64_t>, std::vector<Fingerprint>> trails;
  std::mutex mutex;
  options.on_iteration = [&](int worker, std::uint64_t iteration,
                             const systest::ExecutionResult& r) {
    const std::lock_guard<std::mutex> lock(mutex);
    trails[{worker, iteration}] = r.fingerprint_trail;
  };
  systest::explore::ParallelTestingEngine engine(config, harness, options);
  const auto report = engine.Run();

  ASSERT_EQ(report.workers.size(), 2u);
  ASSERT_FALSE(trails.empty());
  for (const auto& [key, trail] : trails) {
    const auto& assignment =
        report.workers[static_cast<std::size_t>(key.first)].assignment;
    systest::RandomStrategy strategy(assignment.seed);
    const std::vector<Fingerprint> full =
        FullTrail(harness, strategy, key.second, config.max_steps);
    // Shared-set pruning may truncate a worker's execution at any point
    // (cross-worker timing), but it can never CHANGE the sequence: every
    // observed trail is a prefix of the full deterministic trail.
    ASSERT_LE(trail.size(), full.size());
    EXPECT_TRUE(std::equal(trail.begin(), trail.end(), full.begin()))
        << "worker " << key.first << " iteration " << key.second;
  }
}

// ---------------------------------------------------------------------------
// Engine pruning and stats.

TEST(StatefulEngine, PrunesReconvergedExecutionsAndReportsStats) {
  const systest::Harness harness = PingPongHarness(6);
  TestConfig config = StatefulConfig();
  config.iterations = 100;
  const systest::TestReport report = TestingEngine(config, harness).Run();
  EXPECT_FALSE(report.bug_found);
  EXPECT_TRUE(report.stateful);
  EXPECT_GT(report.distinct_states, 0u);
  EXPECT_GT(report.pruned_executions, 0u);
  EXPECT_GT(report.fingerprint_hits, 0u);
  EXPECT_GT(report.FingerprintHitRate(), 0.0);
  EXPECT_NE(report.Summary().find("stateful"), std::string::npos);
}

TEST(StatefulEngine, StatelessRunsCarryNoFingerprintState) {
  const systest::Harness harness = PingPongHarness(6);
  TestConfig config = StatefulConfig();
  config.stateful = false;
  bool saw_iteration = false;
  TestingEngine engine(config, harness);
  engine.SetIterationCallback(
      [&](std::uint64_t, const systest::ExecutionResult& r) {
        saw_iteration = true;
        EXPECT_TRUE(r.fingerprint_trail.empty());
        EXPECT_FALSE(r.pruned);
      });
  const systest::TestReport report = engine.Run();
  EXPECT_TRUE(saw_iteration);
  EXPECT_FALSE(report.stateful);
  EXPECT_EQ(report.distinct_states, 0u);
  EXPECT_EQ(report.Summary().find("stateful"), std::string::npos);
}

TEST(StatefulEngine, MaxVisitedCapsTheSet) {
  const systest::Harness harness = PingPongHarness(6);
  TestConfig config = StatefulConfig();
  config.iterations = 50;
  config.max_visited = 3;
  const systest::TestReport report = TestingEngine(config, harness).Run();
  EXPECT_LE(report.distinct_states, 3u);
}

TEST(StatefulEngine, ParallelWorkersShareTheVisitedSet) {
  const systest::Harness harness = PingPongHarness(6);
  TestConfig config = StatefulConfig();
  config.iterations = 200;
  systest::explore::ParallelOptions options;
  options.threads = 4;
  options.verify_replay = false;
  systest::explore::ParallelTestingEngine engine(config, harness, options);
  const auto report = engine.Run();
  EXPECT_TRUE(report.aggregate.stateful);
  EXPECT_GT(report.aggregate.distinct_states, 0u);
  EXPECT_GT(report.aggregate.pruned_executions, 0u);
  // The shared set holds the union, far below the sum of per-worker traffic.
  EXPECT_LE(report.aggregate.distinct_states,
            report.aggregate.fingerprint_hits +
                report.aggregate.fingerprint_misses);
  std::uint64_t worker_pruned = 0;
  for (const auto& w : report.workers) worker_pruned += w.pruned_executions;
  EXPECT_EQ(worker_pruned, report.aggregate.pruned_executions);
}

// ---------------------------------------------------------------------------
// Visited-set implementations.

TEST(VisitedSets, FingerprintSetInsertAndFreeze) {
  systest::FingerprintSet set(2);
  EXPECT_TRUE(set.Insert(1));
  EXPECT_FALSE(set.Insert(1));
  EXPECT_TRUE(set.Insert(2));
  EXPECT_EQ(set.Size(), 2u);
  // Frozen: unseen states stay novel-but-unrecorded, known ones still hit.
  EXPECT_TRUE(set.Insert(3));
  EXPECT_TRUE(set.Insert(3));
  EXPECT_FALSE(set.Insert(2));
  EXPECT_EQ(set.Size(), 2u);
}

TEST(VisitedSets, ShardedSetMatchesSerialSemantics) {
  systest::explore::ShardedFingerprintSet set(1024);
  for (Fingerprint fp = 0; fp < 300; ++fp) {
    EXPECT_TRUE(set.Insert(fp * 0x9e3779b97f4a7c15ull));
  }
  for (Fingerprint fp = 0; fp < 300; ++fp) {
    EXPECT_FALSE(set.Insert(fp * 0x9e3779b97f4a7c15ull));
  }
  EXPECT_EQ(set.Size(), 300u);
}

// ---------------------------------------------------------------------------
// mtable differential-store-row payload: InMemoryChainTable keeps an
// incrementally-maintained XOR-of-row-hashes digest, and TablesMachine mixes
// all three of its tables (plus logical time) into its fingerprint payload.

chaintable::WriteOp MakeWrite(chaintable::WriteKind kind, std::string row,
                              std::string value,
                              chaintable::Etag etag = chaintable::kAnyEtag) {
  chaintable::WriteOp op;
  op.kind = kind;
  op.row.key = {"p", std::move(row)};
  op.row.properties = {{"v", std::move(value)}};
  op.etag = etag;
  return op;
}

TEST(TableContentHash, EveryMutationKindMovesTheDigest) {
  chaintable::InMemoryChainTable table;
  const std::uint64_t empty = table.ContentHash();

  ASSERT_TRUE(table.ExecuteWrite(
      MakeWrite(chaintable::WriteKind::kInsert, "r1", "a")).Ok());
  const std::uint64_t after_insert = table.ContentHash();
  EXPECT_NE(after_insert, empty);

  ASSERT_TRUE(table.ExecuteWrite(
      MakeWrite(chaintable::WriteKind::kReplace, "r1", "b")).Ok());
  const std::uint64_t after_replace = table.ContentHash();
  EXPECT_NE(after_replace, after_insert);

  ASSERT_TRUE(table.ExecuteWrite(
      MakeWrite(chaintable::WriteKind::kMerge, "r1", "c")).Ok());
  EXPECT_NE(table.ContentHash(), after_replace);

  ASSERT_TRUE(table.ExecuteWrite(
      MakeWrite(chaintable::WriteKind::kInsertOrReplace, "r2", "d")).Ok());
  EXPECT_NE(table.ContentHash(), after_replace);
}

TEST(TableContentHash, DeleteRestoresTheExactPriorDigest) {
  // XOR removal is exact: deleting a row must return the digest to its value
  // before that row existed — no residue, no recompute.
  chaintable::InMemoryChainTable table;
  ASSERT_TRUE(table.ExecuteWrite(
      MakeWrite(chaintable::WriteKind::kInsert, "r1", "a")).Ok());
  const std::uint64_t with_r1 = table.ContentHash();

  ASSERT_TRUE(table.ExecuteWrite(
      MakeWrite(chaintable::WriteKind::kInsert, "r2", "b")).Ok());
  EXPECT_NE(table.ContentHash(), with_r1);

  ASSERT_TRUE(table.ExecuteWrite(
      MakeWrite(chaintable::WriteKind::kDelete, "r2", "")).Ok());
  EXPECT_EQ(table.ContentHash(), with_r1);
}

TEST(TableContentHash, FailedWritesLeaveTheDigestUntouched) {
  chaintable::InMemoryChainTable table;
  ASSERT_TRUE(table.ExecuteWrite(
      MakeWrite(chaintable::WriteKind::kInsert, "r1", "a")).Ok());
  const std::uint64_t before = table.ContentHash();
  // AlreadyExists, NotFound, ConditionNotMet: all rejected, digest constant.
  EXPECT_FALSE(table.ExecuteWrite(
      MakeWrite(chaintable::WriteKind::kInsert, "r1", "x")).Ok());
  EXPECT_FALSE(table.ExecuteWrite(
      MakeWrite(chaintable::WriteKind::kReplace, "missing", "x")).Ok());
  EXPECT_FALSE(table.ExecuteWrite(
      MakeWrite(chaintable::WriteKind::kDelete, "r1", "", /*etag=*/999)).Ok());
  EXPECT_EQ(table.ContentHash(), before);
}

TEST(TablesMachinePayload, InitialRowsReachTheFingerprint) {
  // Two TablesMachines whose STRUCTURAL views are identical (same name, same
  // id, same start state, empty queues) but whose seeded tables differ: only
  // the payload view may tell them apart.
  auto fingerprint = [](std::string seed_value, bool payloads) {
    systest::RoundRobinStrategy strategy(0);
    strategy.PrepareIteration(0, 10);
    systest::Runtime rt(strategy, StatefulOptions(10));
    std::vector<chaintable::TableRow> rows;
    rows.push_back({{"p", "r1"}, {{"v", std::move(seed_value)}}});
    const MachineId id = rt.CreateMachine<mtable::TablesMachine>("T", rows);
    return rt.FindMachine(id)->ComputeStateFingerprint(payloads);
  };
  EXPECT_EQ(fingerprint("a", false), fingerprint("b", false))
      << "structural view should not see table contents";
  EXPECT_NE(fingerprint("a", true), fingerprint("b", true))
      << "payload view must see the differential store-row digest";
}

// ---------------------------------------------------------------------------
// Validate() rules for the new knobs.

TEST(StatefulConfigValidate, RejectsPayloadsWithoutStateful) {
  TestConfig config;
  config.fingerprint_payloads = true;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config.stateful = true;
  EXPECT_NO_THROW(config.Validate());
}

TEST(StatefulConfigValidate, RejectsStatefulWithZeroCap) {
  TestConfig config;
  config.stateful = true;
  config.max_visited = 0;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config.max_visited = 1;
  EXPECT_NO_THROW(config.Validate());
}

}  // namespace
