// Unit tests for the TestingEngine, scheduling strategies, trace recording
// and deterministic replay.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/systest.h"

namespace {

using systest::BugKind;
using systest::Event;
using systest::Machine;
using systest::MachineId;
using systest::PctStrategy;
using systest::RandomStrategy;
using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;
using systest::Trace;

struct Go final : Event {};

// Two racers each send Go to a referee; the referee asserts that racer A
// arrives first. Under any exploring scheduler, the opposite order must be
// found quickly — a minimal "ordering bug".
struct ArrivalEvent final : Event {
  explicit ArrivalEvent(int who) : who(who) {}
  int who;
};

class Referee final : public Machine {
 public:
  Referee() {
    State("Run").On<ArrivalEvent>(&Referee::OnArrival);
    SetStart("Run");
  }

 private:
  void OnArrival(const ArrivalEvent& arrival) {
    if (first_ == 0) {
      first_ = arrival.who;
      Assert(first_ == 1, "racer 2 arrived first");
    }
  }
  int first_ = 0;
};

class Racer final : public Machine {
 public:
  Racer(MachineId referee, int who) : referee_(referee), who_(who) {
    State("Run").OnEntry(&Racer::OnStart);
    SetStart("Run");
  }

 private:
  void OnStart() { Send<ArrivalEvent>(referee_, who_); }
  MachineId referee_;
  int who_;
};

systest::Harness RaceHarness() {
  return [](systest::Runtime& rt) {
    auto referee = rt.CreateMachine<Referee>("Referee");
    rt.CreateMachine<Racer>("Racer1", referee, 1);
    rt.CreateMachine<Racer>("Racer2", referee, 2);
  };
}

TEST(TestingEngine, RandomSchedulerFindsOrderingBug) {
  TestConfig config;
  config.iterations = 1'000;
  config.seed = 1;
  config.strategy = "random";
  TestingEngine engine(config, RaceHarness());
  const TestReport report = engine.Run();
  ASSERT_TRUE(report.bug_found);
  EXPECT_EQ(report.bug_kind, BugKind::kSafety);
  EXPECT_GT(report.ndc, 0u);
  EXPECT_GE(report.bug_iteration, 1u);
}

TEST(TestingEngine, PctSchedulerFindsOrderingBug) {
  TestConfig config;
  config.iterations = 1'000;
  config.seed = 1;
  config.strategy = "pct";
  config.strategy_budget = 2;
  TestingEngine engine(config, RaceHarness());
  const TestReport report = engine.Run();
  ASSERT_TRUE(report.bug_found);
  EXPECT_EQ(report.bug_kind, BugKind::kSafety);
}

TEST(TestingEngine, ReplayReproducesTheSameBug) {
  TestConfig config;
  config.iterations = 1'000;
  config.seed = 7;
  TestingEngine engine(config, RaceHarness());
  const TestReport report = engine.Run();
  ASSERT_TRUE(report.bug_found);

  const TestReport replayed = engine.Replay(report.bug_trace);
  ASSERT_TRUE(replayed.bug_found);
  EXPECT_EQ(replayed.bug_kind, report.bug_kind);
  EXPECT_EQ(replayed.bug_message, report.bug_message);
  EXPECT_EQ(replayed.ndc, report.ndc);
  // The replay runs with readable logging; the log must mention the racers.
  EXPECT_NE(replayed.execution_log.find("Racer2"), std::string::npos);
}

TEST(TestingEngine, TraceRoundTripsThroughText) {
  TestConfig config;
  config.iterations = 1'000;
  config.seed = 7;
  TestingEngine engine(config, RaceHarness());
  const TestReport report = engine.Run();
  ASSERT_TRUE(report.bug_found);

  const Trace parsed = Trace::Parse(report.bug_trace.ToString());
  EXPECT_EQ(parsed, report.bug_trace);
  const TestReport replayed = engine.Replay(parsed);
  EXPECT_TRUE(replayed.bug_found);
}

TEST(TestingEngine, SameSeedIsDeterministic) {
  TestConfig config;
  config.iterations = 200;
  config.seed = 42;
  const TestReport a = TestingEngine(config, RaceHarness()).Run();
  const TestReport b = TestingEngine(config, RaceHarness()).Run();
  ASSERT_EQ(a.bug_found, b.bug_found);
  EXPECT_EQ(a.bug_iteration, b.bug_iteration);
  EXPECT_EQ(a.bug_trace, b.bug_trace);
}

TEST(TestingEngine, CleanProgramReportsNoBug) {
  TestConfig config;
  config.iterations = 200;
  config.seed = 3;
  TestingEngine engine(config, [](systest::Runtime& rt) {
    auto referee = rt.CreateMachine<Referee>("Referee");
    rt.CreateMachine<Racer>("Racer1", referee, 1);  // only racer 1: no race
  });
  const TestReport report = engine.Run();
  EXPECT_FALSE(report.bug_found);
  EXPECT_EQ(report.executions, 200u);
  EXPECT_GT(report.total_steps, 0u);
}

// ---------------------------------------------------------------------------
// Nondet choice coverage: the engine must explore both branches of a
// controlled boolean choice and all values of an integer choice.

struct Mark final : Event {};

std::set<std::uint64_t>* g_seen = nullptr;

class Chooser final : public Machine {
 public:
  Chooser() {
    State("Run").OnEntry(&Chooser::OnStart);
    SetStart("Run");
  }

 private:
  void OnStart() { g_seen->insert(NondetInt(5)); }
};

TEST(TestingEngine, NondetIntExploresAllValues) {
  std::set<std::uint64_t> seen;
  g_seen = &seen;
  TestConfig config;
  config.iterations = 200;
  config.seed = 11;
  TestingEngine engine(config, [](systest::Runtime& rt) {
    rt.CreateMachine<Chooser>("Chooser");
  });
  const TestReport report = engine.Run();
  g_seen = nullptr;
  EXPECT_FALSE(report.bug_found);
  EXPECT_EQ(seen.size(), 5u) << "all 5 values of NondetInt(5) explored";
}

// ---------------------------------------------------------------------------
// Strategy unit behavior.

TEST(Strategies, RandomIsSeedDeterministic) {
  RandomStrategy a(99), b(99);
  a.PrepareIteration(4, 100);
  b.PrepareIteration(4, 100);
  const MachineId ids[] = {MachineId{1}, MachineId{2}, MachineId{3}};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Next(ids, i).value, b.Next(ids, i).value);
    EXPECT_EQ(a.NextInt(7), b.NextInt(7));
  }
}

TEST(Strategies, PctPrefersOneMachineBetweenChangePoints) {
  PctStrategy strategy(5, 0);  // no change points: pure priority
  strategy.PrepareIteration(0, 100);
  const MachineId ids[] = {MachineId{1}, MachineId{2}, MachineId{3}};
  const MachineId first = strategy.Next(ids, 0);
  for (int i = 1; i < 20; ++i) {
    EXPECT_EQ(strategy.Next(ids, i).value, first.value)
        << "without change points PCT must keep scheduling the highest "
           "priority machine";
  }
}

TEST(Strategies, PctChangePointChangesSchedule) {
  // With a demotion budget, the preferred machine must change at some step.
  PctStrategy strategy(5, 3);
  strategy.PrepareIteration(0, 50);
  const MachineId ids[] = {MachineId{1}, MachineId{2}, MachineId{3}};
  std::set<std::uint64_t> scheduled;
  for (int i = 0; i < 50; ++i) {
    scheduled.insert(strategy.Next(ids, i).value);
  }
  EXPECT_GT(scheduled.size(), 1u);
}

TEST(Strategies, TraceParseRejectsGarbage) {
  EXPECT_THROW(Trace::Parse("x1"), std::invalid_argument);
  EXPECT_THROW(Trace::Parse("i3"), std::invalid_argument);   // missing bound
  EXPECT_THROW(Trace::Parse("s;b1"), std::invalid_argument); // empty number
}

}  // namespace
