// Tests for the shared machine-declaration registry, event-type interning
// and the event queue — the hot-path machinery behind the runtime overhaul.
#include <gtest/gtest.h>

#include <typeindex>

#include "core/event_queue.h"
#include "core/systest.h"

namespace {

using systest::Event;
using systest::Machine;
using systest::MachineId;
using systest::Monitor;

struct RegProbe final : Event {};
struct RegOther final : Event {};

class RegMachineA final : public Machine {
 public:
  RegMachineA() {
    State("One").On<RegProbe>(&RegMachineA::OnProbe).Ignore<RegOther>();
    State("Two").On<RegProbe>(&RegMachineA::OnProbe);
    SetStart("One");
  }

 private:
  void OnProbe(const RegProbe&) {}
};

class RegMachineB final : public Machine {
 public:
  RegMachineB() {
    State("Only").On<RegProbe>(&RegMachineB::OnProbe);
    SetStart("Only");
  }

 private:
  void OnProbe(const RegProbe&) {}
};

/// Per-instance state graphs (mirrors fabric's AggregatorMachine): must NOT
/// share a registry decl.
class RegUnsharedMachine final : public Machine {
 public:
  static constexpr bool kShareStateDecls = false;

  explicit RegUnsharedMachine(bool alt) {
    if (alt) {
      State("Alt").On<RegProbe>(&RegUnsharedMachine::OnProbe);
      SetStart("Alt");
    } else {
      State("Base").On<RegProbe>(&RegUnsharedMachine::OnProbe);
      SetStart("Base");
    }
  }

 private:
  void OnProbe(const RegProbe&) {}
};

TEST(DeclRegistry, TwoRuntimesInDifferentOrdersShareOneDeclPerType) {
  systest::RoundRobinStrategy s1, s2;
  s1.PrepareIteration(0, 100);
  s2.PrepareIteration(0, 100);
  systest::Runtime rt1(s1), rt2(s2);

  // Opposite creation orders across the two runtimes.
  const MachineId a1 = rt1.CreateMachine<RegMachineA>("A");
  const MachineId b1 = rt1.CreateMachine<RegMachineB>("B");
  const MachineId b2 = rt2.CreateMachine<RegMachineB>("B");
  const MachineId a2 = rt2.CreateMachine<RegMachineA>("A");

  const auto* decl_a1 = rt1.FindMachine(a1)->StateDecls();
  const auto* decl_a2 = rt2.FindMachine(a2)->StateDecls();
  const auto* decl_b1 = rt1.FindMachine(b1)->StateDecls();
  const auto* decl_b2 = rt2.FindMachine(b2)->StateDecls();

  ASSERT_NE(decl_a1, nullptr);
  EXPECT_EQ(decl_a1, decl_a2);  // one decl per type, process-wide
  EXPECT_EQ(decl_b1, decl_b2);
  EXPECT_NE(decl_a1, decl_b1);  // and per TYPE, not global

  // The registry hands out exactly the same pointer.
  EXPECT_EQ(systest::detail::DeclRegistry::FindMachineDecl(
                std::type_index(typeid(RegMachineA))),
            decl_a1);

  // Compiled content: states are name-sorted, tables populated.
  EXPECT_EQ(decl_a1->states.size(), 2u);
  EXPECT_EQ(decl_a1->states[0].name, "One");
  EXPECT_EQ(decl_a1->states[1].name, "Two");
  EXPECT_TRUE(
      decl_a1->states[0].ignores.Contains(systest::EventTypeIdOf<RegOther>()));
  EXPECT_GE(decl_a1->states[0].dispatch.size(), 1u);
}

TEST(DeclRegistry, OptedOutTypeGetsPerInstanceDecls) {
  systest::RoundRobinStrategy strategy;
  strategy.PrepareIteration(0, 100);
  systest::Runtime rt(strategy);
  const MachineId base = rt.CreateMachine<RegUnsharedMachine>("base", false);
  const MachineId alt = rt.CreateMachine<RegUnsharedMachine>("alt", true);

  const auto* base_decl = rt.FindMachine(base)->StateDecls();
  const auto* alt_decl = rt.FindMachine(alt)->StateDecls();
  ASSERT_NE(base_decl, nullptr);
  ASSERT_NE(alt_decl, nullptr);
  EXPECT_NE(base_decl, alt_decl);
  EXPECT_EQ(base_decl->states[0].name, "Base");
  EXPECT_EQ(alt_decl->states[0].name, "Alt");
  // Never published to the shared registry.
  EXPECT_EQ(systest::detail::DeclRegistry::FindMachineDecl(
                std::type_index(typeid(RegUnsharedMachine))),
            nullptr);
}

TEST(DeclRegistry, SecondInstanceSkipsDeclarationBuildButBehavesTheSame) {
  systest::RoundRobinStrategy strategy;
  strategy.PrepareIteration(0, 100);
  systest::Runtime rt(strategy);
  const MachineId first = rt.CreateMachine<RegMachineA>("first");
  const std::size_t count_after_first =
      systest::detail::DeclRegistry::MachineDeclCount();
  const MachineId second = rt.CreateMachine<RegMachineA>("second");
  EXPECT_EQ(systest::detail::DeclRegistry::MachineDeclCount(),
            count_after_first);

  rt.SendEvent<RegProbe>(first);
  rt.SendEvent<RegProbe>(second);
  while (rt.Step()) {
  }
  EXPECT_EQ(rt.FindMachine(second)->CurrentStateName(), "One");
}

TEST(EventTypeIds, StampedAndInternedConsistently) {
  const auto ev = systest::MakeEvent<RegProbe>();
  EXPECT_EQ(ev->TypeId(), systest::EventTypeIdOf<RegProbe>());
  EXPECT_NE(systest::EventTypeIdOf<RegProbe>(),
            systest::EventTypeIdOf<RegOther>());
  EXPECT_NE(systest::EventTypeIdOf<RegProbe>(), systest::kInvalidEventTypeId);

  // Hand-constructed events (no MakeEvent) intern lazily to the same id.
  const RegOther other;
  EXPECT_EQ(other.TypeId(), systest::EventTypeIdOf<RegOther>());
}

TEST(EventQueue, FifoRemoveAtAndCompaction) {
  systest::detail::EventQueue q;
  EXPECT_TRUE(q.Empty());
  for (int i = 0; i < 100; ++i) {
    q.PushBack(systest::MakeEvent<RegProbe>());
    q.PushBack(systest::MakeEvent<RegOther>());
    EXPECT_EQ(q.Size(), 2u);
    // Remove the second (out-of-order receive pattern), then the first.
    auto second = q.RemoveAt(1);
    EXPECT_EQ(second->TypeId(), systest::EventTypeIdOf<RegOther>());
    auto front = q.PopFront();
    EXPECT_EQ(front->TypeId(), systest::EventTypeIdOf<RegProbe>());
    EXPECT_TRUE(q.Empty());
  }
  // Steady producer/consumer with queue never draining: buffer must not grow
  // without bound (compaction), and order must hold.
  q.PushBack(systest::MakeEvent<RegProbe>());
  for (int i = 0; i < 10'000; ++i) {
    q.PushBack(systest::MakeEvent<RegOther>());
    (void)q.PopFront();
  }
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_EQ(q.PopFront()->TypeId(), systest::EventTypeIdOf<RegOther>());
}

}  // namespace
