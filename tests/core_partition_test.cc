// Partition-plane tests (fault plane v2): trace format v3 (partition
// install/heal decisions) with full backward compatibility to v1/v2,
// partition semantics in the runtime (isolation drops traffic both ways,
// self-sends stay exempt, heal restores connectivity), budget enforcement,
// PCT-style pre-sampled fault placement, fingerprint integration, the
// TestConfig::Validate partition rules, and bit-for-bit replay of partition
// schedules WITHOUT any fault configuration — including the acceptance
// criterion: a saved trace from the samplerepl partition scenario replays
// on the main thread with no fault flags.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/systest.h"
#include "samplerepl/harness.h"

namespace {

using systest::Decision;
using systest::DeliveryFault;
using systest::DeliveryFaultContext;
using systest::Event;
using systest::FaultContext;
using systest::FaultDecision;
using systest::Machine;
using systest::MachineId;
using systest::RandomStrategy;
using systest::RoundRobinStrategy;
using systest::Runtime;
using systest::RuntimeOptions;
using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;
using systest::Trace;

// ---------------------------------------------------------------------------
// Trace format v3

Trace FaultFreeTrace() {
  Trace t;
  t.RecordSchedule(1);
  t.RecordBool(true);
  t.RecordInt(2, 5);
  t.RecordSchedule(3);
  return t;
}

Trace FaultTrace() {
  Trace t = FaultFreeTrace();
  t.RecordCrash(2, 7);
  t.RecordRestart(2, 11);
  t.RecordDrop(4, 3);
  t.RecordDuplicate(6, 1);
  t.RecordSchedule(2);
  return t;
}

Trace PartitionTrace() {
  Trace t = FaultFreeTrace();
  t.RecordPartition(2, 7);
  t.RecordHeal(2, 11);
  t.RecordSchedule(2);
  return t;
}

TEST(TraceV3, PartitionTraceSerializesAsV3AndRoundTrips) {
  const Trace original = PartitionTrace();
  ASSERT_TRUE(original.HasPartitionDecisions());
  ASSERT_TRUE(original.HasFaultDecisions());
  const std::string serialized = original.Serialize();
  EXPECT_EQ(serialized, "systest-trace v3 7\ns1;b1;i2/5;s3;p2/7;h2/11;s2\n");
  const Trace reloaded = Trace::Deserialize(serialized);
  EXPECT_EQ(reloaded, original);
  EXPECT_TRUE(reloaded.HasPartitionDecisions());
}

TEST(TraceV3, PartitionTagsParseAndPrint) {
  const Trace t = PartitionTrace();
  const std::string text = t.ToString();
  EXPECT_EQ(text, "s1;b1;i2/5;s3;p2/7;h2/11;s2");
  EXPECT_EQ(Trace::Parse(text), t);
  EXPECT_EQ(t.DescribeFaults(), "part m2@s7; heal m2@s11");
}

TEST(TraceV3, PartitionFreeFaultTraceStaysV2Bytes) {
  // The version floor: a fault trace WITHOUT partitions must keep producing
  // the exact v2 bytes the pre-partition writer produced, so fault-on but
  // partition-off runs are indistinguishable from before.
  const Trace t = FaultTrace();
  ASSERT_TRUE(t.HasFaultDecisions());
  ASSERT_FALSE(t.HasPartitionDecisions());
  EXPECT_EQ(t.Serialize(),
            "systest-trace v2 9\ns1;b1;i2/5;s3;c2/7;r2/11;d4/3;u6/1;s2\n");
}

TEST(TraceV3, HandWrittenV1AndV2FilesStillLoad) {
  const Trace v1 = Trace::Deserialize("systest-trace v1 4\ns1;b1;i2/5;s3\n");
  EXPECT_EQ(v1, FaultFreeTrace());
  const Trace v2 = Trace::Deserialize(
      "systest-trace v2 9\ns1;b1;i2/5;s3;c2/7;r2/11;d4/3;u6/1;s2\n");
  EXPECT_EQ(v2, FaultTrace());
  EXPECT_FALSE(v2.HasPartitionDecisions());
}

TEST(TraceV3, RejectsPartitionTagsUnderOldHeaders) {
  // No v1 or v2 writer ever produced partition tags; such files are corrupt.
  EXPECT_THROW(Trace::Deserialize("systest-trace v1 1\np2/7\n"),
               std::invalid_argument);
  EXPECT_THROW(Trace::Deserialize("systest-trace v2 1\np2/7\n"),
               std::invalid_argument);
  EXPECT_THROW(Trace::Deserialize("systest-trace v1 1\nh2/11\n"),
               std::invalid_argument);
  EXPECT_THROW(Trace::Deserialize("systest-trace v2 1\nh2/11\n"),
               std::invalid_argument);
  // The tags themselves still need well-formed coordinates.
  EXPECT_THROW(Trace::Parse("p2"), std::invalid_argument);
  EXPECT_THROW(Trace::Parse("h"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Partition semantics in the runtime
//
// Micro system: a Pacer machine sends one Ping per step to a Counter
// (pacing itself with self-sent Ticks, which are exempt from the partition
// like the rest of the delivery fault plane), so the isolation window maps
// directly onto a contiguous run of lost pings.

struct Ping final : Event {
  explicit Ping(int n) : n(n) {}
  int n;
};
struct Tick final : Event {};

class Counter final : public Machine {
 public:
  Counter() {
    State("Run").On<Ping>(&Counter::OnPing);
    SetStart("Run");
  }
  int pings = 0;

 private:
  void OnPing(const Ping&) { ++pings; }
};

class Pacer final : public Machine {
 public:
  Pacer(MachineId to, int total) : to_(to), total_(total) {
    State("Run").OnEntry(&Pacer::Kick).On<Tick>(&Pacer::OnTick);
    SetStart("Run");
  }
  int sent = 0;

 private:
  void Kick() { Step(); }
  void OnTick(const Tick&) { Step(); }
  void Step() {
    if (sent >= total_) return;
    Send<Ping>(to_, sent);
    ++sent;
    if (sent < total_) Send<Tick>(Id());
  }
  MachineId to_;
  int total_;
};

/// Deterministic partition script layered over round-robin scheduling.
class ScriptedPartitionStrategy final : public systest::SchedulingStrategy {
 public:
  struct StepFault {
    std::uint64_t step;
    FaultDecision::Kind kind;
    MachineId machine;
  };

  void PrepareIteration(std::uint64_t iteration,
                        std::uint64_t max_steps) override {
    rr_.PrepareIteration(iteration, max_steps);
  }
  MachineId Next(std::span<const MachineId> enabled,
                 std::uint64_t step) override {
    return rr_.Next(enabled, step);
  }
  bool NextBool() override { return rr_.NextBool(); }
  std::uint64_t NextInt(std::uint64_t bound) override {
    return rr_.NextInt(bound);
  }
  FaultDecision NextFault(const FaultContext& ctx) override {
    for (const StepFault& f : step_faults) {
      if (f.step == ctx.step) return {f.kind, f.machine};
    }
    return {};
  }
  [[nodiscard]] std::string Name() const override { return "scripted-part"; }

  std::vector<StepFault> step_faults;

 private:
  RoundRobinStrategy rr_;
};

/// Counter is machine 1 (partitionable), Pacer is machine 2.
systest::Harness PacedPair(int pings, bool partitionable = true) {
  return [pings, partitionable](Runtime& rt) {
    const MachineId counter = rt.CreateMachine<Counter>("Counter");
    rt.CreateMachine<Pacer>("Pacer", counter, pings);
    if (partitionable) rt.SetPartitionable(counter);
  };
}

Counter& CounterAt(Runtime& rt) {
  return *static_cast<Counter*>(rt.FindMachine(MachineId{1}));
}
Pacer& PacerAt(Runtime& rt) {
  return *static_cast<Pacer*>(rt.FindMachine(MachineId{2}));
}

TEST(PartitionPlane, UnhealedPartitionDropsAllTrafficButMachineKeepsRunning) {
  ScriptedPartitionStrategy strategy;
  strategy.step_faults = {{0, FaultDecision::Kind::kPartition, MachineId{1}}};
  RuntimeOptions options;
  options.max_partitions = 1;
  Runtime rt(strategy, options);
  PacedPair(4)(rt);
  while (rt.Step()) {
  }
  // Every ping vanished at the partition; the pacer's self-sent Ticks were
  // exempt, so it still paced its whole send loop.
  EXPECT_EQ(CounterAt(rt).pings, 0);
  EXPECT_EQ(PacerAt(rt).sent, 4);
  EXPECT_TRUE(rt.FindMachine(MachineId{1})->Partitioned());
  EXPECT_FALSE(rt.FindMachine(MachineId{1})->Crashed());
  EXPECT_EQ(rt.GetFaultStats().partitions, 1u);
  EXPECT_EQ(rt.GetFaultStats().heals, 0u);
  EXPECT_TRUE(rt.GetTrace().HasPartitionDecisions());
}

TEST(PartitionPlane, HealRestoresDeliveryAfterTheIsolationWindow) {
  ScriptedPartitionStrategy strategy;
  strategy.step_faults = {{0, FaultDecision::Kind::kPartition, MachineId{1}},
                          {3, FaultDecision::Kind::kHeal, MachineId{1}}};
  RuntimeOptions options;
  options.max_partitions = 1;
  Runtime rt(strategy, options);
  PacedPair(6)(rt);
  while (rt.Step()) {
  }
  // Pings sent while the partition was installed are lost forever; pings
  // sent after the heal arrive. The window is steps [0, 3), so at least one
  // ping was lost and at least one got through.
  const int delivered = CounterAt(rt).pings;
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, 6);
  EXPECT_FALSE(rt.FindMachine(MachineId{1})->Partitioned());
  EXPECT_EQ(rt.GetFaultStats().partitions, 1u);
  EXPECT_EQ(rt.GetFaultStats().heals, 1u);
  const std::string faults = rt.GetTrace().DescribeFaults();
  EXPECT_NE(faults.find("part m1@"), std::string::npos) << faults;
  EXPECT_NE(faults.find("heal m1@"), std::string::npos) << faults;
}

TEST(PartitionPlane, PartitionBudgetIsEnforcedPerExecution) {
  const TestConfig config = [] {
    TestConfig c;
    c.iterations = 50;
    c.max_steps = 200;
    c.strategy = "random";
    c.seed = 13;
    c.max_partitions = 1;
    c.fault_odds_den = 2;  // aggressive odds: partitions fire almost always
    return c;
  }();
  config.Validate();
  std::uint64_t max_partitions_seen = 0;
  TestingEngine engine(config, PacedPair(5));
  engine.SetIterationCallback(
      [&](std::uint64_t, const systest::ExecutionResult& result) {
        max_partitions_seen =
            std::max(max_partitions_seen, result.faults.partitions);
        EXPECT_LE(result.faults.partitions, 1u);
        // A heal can only follow an install.
        EXPECT_LE(result.faults.heals, result.faults.partitions);
      });
  const TestReport report = engine.Run();
  EXPECT_TRUE(report.faults);
  EXPECT_EQ(max_partitions_seen, 1u);
  EXPECT_GT(report.injected_faults.partitions, 0u);
}

TEST(PartitionPlane, NoPartitionableMachinesMeansNoFaultQueries) {
  // Budget set but nothing opted in: behavior (and the RNG stream) must be
  // bit-for-bit identical to a partition-free run.
  TestConfig config;
  config.iterations = 4;
  config.max_steps = 200;
  config.strategy = "random";
  config.seed = 3;
  std::vector<std::string> plain_traces;
  {
    TestingEngine engine(config, PacedPair(3, /*partitionable=*/false));
    engine.SetIterationCallback(
        [&](std::uint64_t, const systest::ExecutionResult& result) {
          plain_traces.push_back(result.trace.ToString());
        });
    (void)engine.Run();
  }
  config.max_partitions = 2;
  std::vector<std::string> partition_traces;
  {
    TestingEngine engine(config, PacedPair(3, /*partitionable=*/false));
    engine.SetIterationCallback(
        [&](std::uint64_t, const systest::ExecutionResult& result) {
          partition_traces.push_back(result.trace.ToString());
        });
    (void)engine.Run();
  }
  EXPECT_EQ(plain_traces, partition_traces);
}

// ---------------------------------------------------------------------------
// Fingerprint integration

TEST(PartitionPlane, PartitionChangesExecutionFingerprint) {
  auto run_to = [](bool partition, std::uint64_t steps) {
    ScriptedPartitionStrategy strategy;
    if (partition) {
      strategy.step_faults = {
          {1, FaultDecision::Kind::kPartition, MachineId{1}}};
    }
    RuntimeOptions options;
    options.max_partitions = 1;  // SAME options both runs: budgets aligned
    options.stateful = true;
    auto rt = std::make_unique<Runtime>(strategy, options);
    PacedPair(2)(*rt);
    for (std::uint64_t i = 0; i < steps && rt->Step(); ++i) {
    }
    return rt->ExecutionFingerprint();
  };
  EXPECT_NE(run_to(true, 4), run_to(false, 4));
}

TEST(PartitionPlane, IncrementalFingerprintMatchesRecomputeUnderPartitions) {
  ScriptedPartitionStrategy strategy;
  strategy.step_faults = {{1, FaultDecision::Kind::kPartition, MachineId{1}},
                          {4, FaultDecision::Kind::kHeal, MachineId{1}}};
  RuntimeOptions options;
  options.max_partitions = 1;
  options.stateful = true;
  options.fingerprint_payloads = true;
  Runtime rt(strategy, options);
  PacedPair(4)(rt);
  do {
    ASSERT_EQ(rt.ExecutionFingerprint(), rt.RecomputeExecutionFingerprint())
        << "at step " << rt.Steps();
  } while (rt.Step());
}

// ---------------------------------------------------------------------------
// Pre-sampled fault placement (PCT-style)

TEST(FaultPlacement, SamplingIsSortedSeedStableAndSized) {
  auto sample = [](std::uint64_t seed) {
    RandomStrategy strategy(seed);
    strategy.SetFaultPlacementPoints(3);
    strategy.PrepareIteration(0, 500);
    const auto span = strategy.PlacedFaultPoints();
    return std::vector<std::uint64_t>(span.begin(), span.end());
  };
  const std::vector<std::uint64_t> a = sample(7);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  for (const std::uint64_t p : a) EXPECT_LT(p, 500u);
  EXPECT_EQ(a, sample(7));  // same seed, same placement
  EXPECT_NE(a, sample(8));  // different seed, (almost surely) different
}

TEST(FaultPlacement, DestructiveFaultsFireOnlyAtSampledPoints) {
  // With placement armed the geometric per-step roll is off: every crash or
  // partition in the execution must land exactly on a sampled point.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    RandomStrategy strategy(seed);
    strategy.SetFaultPlacementPoints(2);
    // Sample from a window the execution is guaranteed to cover: the
    // pacer's self-driven loop alone runs 12 pings deep regardless of what
    // the partition suppresses.
    strategy.PrepareIteration(0, 12);
    const auto span = strategy.PlacedFaultPoints();
    const std::vector<std::uint64_t> points(span.begin(), span.end());
    RuntimeOptions options;
    options.max_crashes = 1;
    options.max_partitions = 1;
    options.fault_odds_den = 2;  // would fire nearly every step if geometric
    Runtime rt(strategy, options);
    PacedPair(12)(rt);
    rt.SetCrashable(MachineId{1});
    while (rt.Step()) {
    }
    std::vector<std::uint64_t> fired;
    for (const Decision& d : rt.GetTrace().Decisions()) {
      if (d.kind == Decision::Kind::kCrash ||
          d.kind == Decision::Kind::kPartition) {
        fired.push_back(d.bound);
      }
    }
    // Placement bounds fault depth: never more destructive faults than
    // sampled points. A point pends while no candidate is eligible (e.g.
    // the lone machine is already isolated), so a fault fires AT its point
    // or later — and the first one, with a candidate eligible from step 0,
    // fires exactly on the first point.
    ASSERT_FALSE(fired.empty()) << "seed " << seed;
    ASSERT_LE(fired.size(), points.size()) << "seed " << seed;
    EXPECT_EQ(fired.front(), points.front()) << "seed " << seed;
    for (std::size_t i = 0; i < fired.size(); ++i) {
      EXPECT_GE(fired[i], points[i]) << "seed " << seed;
    }
  }
}

TEST(FaultPlacement, UnarmedStrategyKeepsGeometricPlacement) {
  // A strategy that never samples (placement points configured but
  // PrepareIteration never called SampleFaultPlacement — here: the scripted
  // strategy) keeps its own NextFault behavior untouched.
  ScriptedPartitionStrategy strategy;
  strategy.SetFaultPlacementPoints(4);
  strategy.step_faults = {{0, FaultDecision::Kind::kPartition, MachineId{1}}};
  RuntimeOptions options;
  options.max_partitions = 1;
  Runtime rt(strategy, options);
  PacedPair(3)(rt);
  while (rt.Step()) {
  }
  EXPECT_EQ(rt.GetFaultStats().partitions, 1u);
  EXPECT_TRUE(strategy.PlacedFaultPoints().empty());
}

// ---------------------------------------------------------------------------
// Validate rules

TEST(PartitionPlane, ValidateRejectsBrokenPartitionConfigs) {
  TestConfig config;
  config.strategy = "random";
  config.Validate();

  TestConfig heal_every_step = config;
  heal_every_step.max_partitions = 1;
  heal_every_step.partition_heal_den = 1;
  EXPECT_THROW(heal_every_step.Validate(), std::invalid_argument);

  TestConfig placement_without_faults = config;
  placement_without_faults.fault_placement_points = 2;
  EXPECT_THROW(placement_without_faults.Validate(), std::invalid_argument);

  TestConfig ok = config;
  ok.max_partitions = 2;
  ok.partition_heal_den = 4;
  ok.fault_placement_points = 2;
  ok.Validate();  // no throw

  TestConfig heals_off = config;
  heals_off.max_partitions = 1;
  heals_off.partition_heal_den = 0;  // partitions last the whole execution
  heals_off.Validate();              // no throw
}

// ---------------------------------------------------------------------------
// Replay: the trace alone defines the partition schedule

TEST(PartitionPlane, PartitionScheduleReplaysFromTheTraceAlone) {
  Trace recorded;
  int recorded_pings = 0;
  {
    ScriptedPartitionStrategy strategy;
    strategy.step_faults = {{0, FaultDecision::Kind::kPartition, MachineId{1}},
                            {3, FaultDecision::Kind::kHeal, MachineId{1}}};
    RuntimeOptions options;
    options.max_partitions = 1;
    Runtime rt(strategy, options);
    PacedPair(6)(rt);
    while (rt.Step()) {
    }
    recorded = rt.GetTrace();
    recorded_pings = CounterAt(rt).pings;
    ASSERT_EQ(rt.GetFaultStats().partitions, 1u);
    ASSERT_EQ(rt.GetFaultStats().heals, 1u);
  }
  {
    systest::ReplayStrategy strategy(recorded);
    strategy.PrepareIteration(0, 10'000);
    RuntimeOptions options;  // NO partition budget, NO heal odds
    options.replay_faults = true;
    Runtime rt(strategy, options);
    PacedPair(6)(rt);
    while (rt.Step()) {
    }
    EXPECT_EQ(CounterAt(rt).pings, recorded_pings);
    EXPECT_EQ(rt.GetFaultStats().partitions, 1u);
    EXPECT_EQ(rt.GetFaultStats().heals, 1u);
    EXPECT_EQ(rt.GetTrace(), recorded);  // bit-for-bit re-record
  }
}

TEST(PartitionPlane, SavedSampleReplTraceReplaysWithoutFaultFlags) {
  // The acceptance criterion: explore the samplerepl partition scenario,
  // save a partition-carrying witness trace to disk, reload it and replay
  // on the main thread with NO fault configuration — the re-recorded trace
  // must be bit-for-bit identical.
  samplerepl::HarnessOptions hopts;
  hopts.partitionable_nodes = true;
  hopts.liveness_monitor = false;
  const systest::Harness harness = samplerepl::MakeHarness(hopts);

  TestConfig explore = samplerepl::DefaultConfig();
  explore.iterations = 20;
  explore.max_partitions = 1;
  Trace witness;
  TestingEngine engine(explore, harness);
  engine.SetIterationCallback(
      [&](std::uint64_t, const systest::ExecutionResult& result) {
        if (witness.Empty() && result.trace.HasPartitionDecisions()) {
          witness = result.trace;
        }
      });
  (void)engine.Run();
  ASSERT_TRUE(witness.HasPartitionDecisions())
      << "no execution drew a partition in the budget";

  // Through the on-disk v3 format, like `systest_run --trace-out/--replay`.
  const std::string path =
      (std::filesystem::temp_directory_path() / "systest_partition.trace")
          .string();
  witness.SaveFile(path);
  const Trace loaded = Trace::LoadFile(path);
  std::filesystem::remove(path);
  ASSERT_EQ(loaded, witness);
  EXPECT_EQ(loaded.Serialize().rfind("systest-trace v3 ", 0), 0u);

  systest::ReplayStrategy strategy(loaded);
  strategy.PrepareIteration(0, explore.max_steps);
  RuntimeOptions options;  // NO fault flags of any kind
  options.replay_faults = true;
  options.max_steps = explore.max_steps;
  Runtime rt(strategy, options);
  systest::StepToCompletion(rt, harness, explore.max_steps);
  EXPECT_GT(rt.GetFaultStats().partitions, 0u);
  EXPECT_EQ(rt.GetTrace(), loaded);  // bit-for-bit
}

}  // namespace
