// Trace format v1 <-> v2 compatibility (fault plane satellite): v1 files
// written before the fault plane existed still load; fault-free traces still
// serialize as byte-identical v1 (the on-disk golden guard backing the PR 2
// golden-trace tests); traces carrying fault decisions serialize as v2 and
// round-trip; corrupt mixtures are rejected.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/trace.h"

namespace {

using systest::Decision;
using systest::Trace;

Trace FaultFreeTrace() {
  Trace t;
  t.RecordSchedule(1);
  t.RecordBool(true);
  t.RecordInt(2, 5);
  t.RecordSchedule(3);
  return t;
}

Trace FaultTrace() {
  Trace t = FaultFreeTrace();
  t.RecordCrash(2, 7);
  t.RecordRestart(2, 11);
  t.RecordDrop(4, 3);
  t.RecordDuplicate(6, 1);
  t.RecordSchedule(2);
  return t;
}

TEST(TraceV2, HandWrittenV1FileStillLoads) {
  // Byte-for-byte what a pre-fault-plane writer produced.
  const std::string v1 = "systest-trace v1 4\ns1;b1;i2/5;s3\n";
  const Trace loaded = Trace::Deserialize(v1);
  EXPECT_EQ(loaded, FaultFreeTrace());
  EXPECT_FALSE(loaded.HasFaultDecisions());
  // And it re-serializes to the identical v1 bytes.
  EXPECT_EQ(loaded.Serialize(), v1);
}

TEST(TraceV2, FaultFreeTraceSerializesAsV1Bytes) {
  const std::string serialized = FaultFreeTrace().Serialize();
  EXPECT_EQ(serialized, "systest-trace v1 4\ns1;b1;i2/5;s3\n");
}

TEST(TraceV2, FaultTraceSerializesAsV2AndRoundTrips) {
  const Trace original = FaultTrace();
  const std::string serialized = original.Serialize();
  EXPECT_EQ(serialized.rfind("systest-trace v2 9", 0), 0u);
  const Trace reloaded = Trace::Deserialize(serialized);
  EXPECT_EQ(reloaded, original);
  EXPECT_TRUE(reloaded.HasFaultDecisions());
}

TEST(TraceV2, FaultTagsParseAndPrint) {
  const Trace t = FaultTrace();
  const std::string text = t.ToString();
  EXPECT_EQ(text, "s1;b1;i2/5;s3;c2/7;r2/11;d4/3;u6/1;s2");
  EXPECT_EQ(Trace::Parse(text), t);
  EXPECT_EQ(t.DescribeFaults(),
            "crash m2@s7; restart m2@s11; drop #4->m3; dup #6->m1");
  EXPECT_EQ(FaultFreeTrace().DescribeFaults(), "");
}

TEST(TraceV2, RejectsFaultDecisionsUnderV1Header) {
  // No v1 writer ever produced fault tags; such a file is corrupt.
  EXPECT_THROW(Trace::Deserialize("systest-trace v1 1\nc2/7\n"),
               std::invalid_argument);
}

TEST(TraceV2, RejectsUnknownVersionsAndBadTags) {
  // v3 (partition decisions) is accepted since the partition plane landed;
  // the first genuinely unknown version is v4.
  EXPECT_THROW(Trace::Deserialize("systest-trace v4 0\n\n"),
               std::invalid_argument);
  EXPECT_THROW(Trace::Parse("c2"), std::invalid_argument);  // missing '/'
  EXPECT_THROW(Trace::Parse("x2/7"), std::invalid_argument);
}

TEST(TraceV2, EmptyTraceStaysV1) {
  EXPECT_EQ(Trace{}.Serialize(), "systest-trace v1 0\n\n");
  EXPECT_EQ(Trace::Deserialize("systest-trace v1 0\n\n"), Trace{});
}

}  // namespace
