// Engine configuration behaviors: time budgets, continuing past the first
// bug, readable-trace production, deadlock reporting toggle, and the
// cascade-loop guard.
#include <gtest/gtest.h>

#include "core/systest.h"

namespace {

using systest::BugKind;
using systest::Event;
using systest::Machine;
using systest::Runtime;
using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;

struct Spark final : Event {};

// Fails on a coin flip: roughly half of all executions hit the bug.
class CoinFlipper final : public Machine {
 public:
  CoinFlipper() {
    State("Run").OnEntry(&CoinFlipper::OnStart);
    SetStart("Run");
  }

 private:
  void OnStart() { Assert(!NondetBool(), "flipped heads"); }
};

systest::Harness CoinHarness() {
  return [](Runtime& rt) { rt.CreateMachine<CoinFlipper>("CoinFlipper"); };
}

TEST(EngineConfig, StopOnFirstBugFalseKeepsExploring) {
  TestConfig config;
  config.iterations = 100;
  config.seed = 5;
  config.stop_on_first_bug = false;
  const TestReport report = TestingEngine(config, CoinHarness()).Run();
  EXPECT_TRUE(report.bug_found);
  EXPECT_EQ(report.executions, 100u)
      << "with stop_on_first_bug=false the engine runs the whole budget";
  // The report keeps the FIRST bug it saw.
  EXPECT_GE(report.bug_iteration, 1u);
  EXPECT_LE(report.bug_iteration, 10u) << "a fair coin fails early";
}

TEST(EngineConfig, TimeBudgetStopsEarly) {
  TestConfig config;
  config.iterations = 1'000'000'000;  // would run forever without the budget
  config.seed = 5;
  config.time_budget_seconds = 0.05;
  TestingEngine engine(config, [](Runtime& rt) {
    rt.CreateMachine<CoinFlipper>("CoinFlipper");
  });
  // Make the harness unfailing so only the clock can stop it.
  TestConfig clean = config;
  class NoOp final : public Machine {
   public:
    NoOp() {
      State("Run");
      SetStart("Run");
    }
  };
  const TestReport report =
      TestingEngine(clean, [](Runtime& rt) { rt.CreateMachine<NoOp>("NoOp"); })
          .Run();
  EXPECT_FALSE(report.bug_found);
  EXPECT_LT(report.executions, 1'000'000'000u);
  EXPECT_LT(report.total_seconds, 5.0);
}

TEST(EngineConfig, ReadableTraceOnBugIsPopulated) {
  TestConfig config;
  config.iterations = 100;
  config.seed = 5;
  config.readable_trace_on_bug = true;
  const TestReport report = TestingEngine(config, CoinHarness()).Run();
  ASSERT_TRUE(report.bug_found);
  EXPECT_NE(report.execution_log.find("CoinFlipper"), std::string::npos);
  EXPECT_NE(report.execution_log.find("start"), std::string::npos);
}

// A machine that blocks forever in Receive: with deadlock reporting off the
// execution must end quietly.
class Blocker final : public Machine {
 public:
  Blocker() {
    State("Run").OnEntry(&Blocker::Protocol);
    SetStart("Run");
  }

 private:
  systest::Task Protocol() { (void)co_await Receive<Spark>(); }
};

TEST(EngineConfig, DeadlockReportingCanBeDisabled) {
  TestConfig config;
  config.iterations = 10;
  config.seed = 1;
  config.report_deadlock = false;
  const TestReport report =
      TestingEngine(config,
                    [](Runtime& rt) { rt.CreateMachine<Blocker>("Blocker"); })
          .Run();
  EXPECT_FALSE(report.bug_found);

  config.report_deadlock = true;
  const TestReport strict =
      TestingEngine(config,
                    [](Runtime& rt) { rt.CreateMachine<Blocker>("Blocker"); })
          .Run();
  ASSERT_TRUE(strict.bug_found);
  EXPECT_EQ(strict.bug_kind, BugKind::kDeadlock);
}

// A raise loop that never yields must be caught by the cascade guard instead
// of hanging the engine.
struct Loop final : Event {};
class RaiseLooper final : public Machine {
 public:
  RaiseLooper() {
    State("Run").OnEntry(&RaiseLooper::OnStart).On<Loop>(&RaiseLooper::OnLoop);
    SetStart("Run");
  }

 private:
  void OnStart() { Raise<Loop>(); }
  void OnLoop(const Loop&) { Raise<Loop>(); }
};

TEST(EngineConfig, RaiseLoopIsCaughtByCascadeGuard) {
  TestConfig config;
  config.iterations = 1;
  config.seed = 1;
  const TestReport report =
      TestingEngine(config, [](Runtime& rt) {
        rt.CreateMachine<RaiseLooper>("RaiseLooper");
      }).Run();
  ASSERT_TRUE(report.bug_found);
  EXPECT_EQ(report.bug_kind, BugKind::kHarnessError);
  EXPECT_NE(report.bug_message.find("cascade"), std::string::npos);
}

}  // namespace
