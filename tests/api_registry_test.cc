// Tests for the scenario/strategy registries and ParamMap: duplicate-name
// rejection, tag filtering, parameter round-trips, helpful unknown-name
// errors, and — the catalog's health check — every built-in scenario
// constructing and running a short exploration through TestSession.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "api/param_map.h"
#include "api/scenario_registry.h"
#include "api/session.h"
#include "api/strategy_registry.h"

namespace {

using systest::StrategyRegistry;
using systest::api::ParamMap;
using systest::api::Scenario;
using systest::api::ScenarioRegistry;
using systest::api::SessionConfig;
using systest::api::SessionReport;
using systest::api::TestSession;

// ---------------------------------------------------------------------------
// ScenarioRegistry.

TEST(ScenarioRegistry, ListsEveryBuiltinScenario) {
  const auto names = ScenarioRegistry::Instance().Names();
  const std::set<std::string> set(names.begin(), names.end());
  // Every name the pre-registry CLI knew must still be registered.
  for (const char* name :
       {"race", "samplerepl-safety", "samplerepl-liveness", "samplerepl-fixed",
        "fabric-failover", "fabric-pipeline", "mtable-backupnewstream",
        "vnext-liveness",
        // New with the registry:
        "chaintable-lost-update", "chaintable-cas", "vnext-fixed"}) {
    EXPECT_TRUE(set.contains(name)) << name;
  }
}

TEST(ScenarioRegistry, RejectsDuplicateNames) {
  Scenario dup;
  dup.name = "race";  // already registered by src/api/scenarios.cc
  dup.description = "imposter";
  dup.make = [](const ParamMap&) { return systest::Harness{}; };
  EXPECT_THROW(ScenarioRegistry::Instance().Register(std::move(dup)),
               std::logic_error);
}

TEST(ScenarioRegistry, RejectsUnnamedAndFactorylessScenarios) {
  Scenario unnamed;
  unnamed.make = [](const ParamMap&) { return systest::Harness{}; };
  EXPECT_THROW(ScenarioRegistry::Instance().Register(std::move(unnamed)),
               std::logic_error);

  Scenario factoryless;
  factoryless.name = "no-factory";
  EXPECT_THROW(ScenarioRegistry::Instance().Register(std::move(factoryless)),
               std::logic_error);
}

TEST(ScenarioRegistry, UnknownNameErrorListsRegisteredScenarios) {
  try {
    (void)ScenarioRegistry::Instance().Get("definitely-not-registered");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("definitely-not-registered"), std::string::npos);
    EXPECT_NE(what.find("race"), std::string::npos)
        << "the error should list registered scenarios: " << what;
  }
}

TEST(ScenarioRegistry, TagFilteringSelectsByDomainAndDefectClass) {
  const auto& registry = ScenarioRegistry::Instance();

  std::set<std::string> samplerepl;
  for (const Scenario* s : registry.WithTag("samplerepl")) {
    samplerepl.insert(s->name);
  }
  EXPECT_EQ(samplerepl,
            (std::set<std::string>{
                "samplerepl-safety", "samplerepl-liveness", "samplerepl-fixed",
                "samplerepl-node-crash", "samplerepl-partition-heal"}));

  for (const Scenario* s : registry.WithTag("buggy")) {
    EXPECT_FALSE(s->HasTag("fixed")) << s->name;
  }
  EXPECT_FALSE(registry.WithTag("buggy").empty());
  EXPECT_FALSE(registry.WithTag("liveness").empty());
  EXPECT_FALSE(registry.WithTag("partition").empty());
  EXPECT_FALSE(registry.WithTag("crash-recovery").empty());
  EXPECT_TRUE(registry.WithTag("no-such-tag").empty());
}

// ---------------------------------------------------------------------------
// StrategyRegistry.

TEST(StrategyRegistry, BuiltinsAreRegistered) {
  const auto& registry = StrategyRegistry::Instance();
  for (const char* name : {"random", "pct", "round-robin", "delay-bounded"}) {
    EXPECT_TRUE(registry.Has(name)) << name;
  }
  EXPECT_EQ(registry.Create("pct", 7, 3)->Name(), "pct(3)");
}

TEST(StrategyRegistry, BudgetSuffixOverridesConfiguredBudget) {
  const auto& registry = StrategyRegistry::Instance();
  EXPECT_EQ(registry.Create("pct(5)", 7, 2)->Name(), "pct(5)");
  EXPECT_EQ(registry.Create("delay-bounded(9)", 7, 2)->Name(),
            "delay-bounded(9)");
  // An oversized suffix must keep the documented invalid_argument contract
  // (std::stoi alone would leak std::out_of_range with message "stoi").
  try {
    (void)registry.Create("pct(99999999999)", 7, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("pct(99999999999)"),
              std::string::npos)
        << error.what();
  }
}

TEST(StrategyRegistry, UnknownNameErrorListsRegisteredStrategies) {
  try {
    (void)StrategyRegistry::Instance().Create("simulated-annealing", 0, 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("simulated-annealing"), std::string::npos);
    EXPECT_NE(what.find("random"), std::string::npos) << what;
    EXPECT_NE(what.find("delay-bounded"), std::string::npos) << what;
  }
}

TEST(StrategyRegistry, DeprecatedEnumShimStillConstructs) {
  const auto strategy = systest::MakeStrategy(systest::StrategyKind::kPct,
                                              /*seed=*/1, /*budget=*/4);
  EXPECT_EQ(strategy->Name(), "pct(4)");
}

TEST(StrategyRegistry, RejectsDuplicateAndMalformedRegistrations) {
  auto factory = [](std::uint64_t seed, int) {
    return std::make_unique<systest::RandomStrategy>(seed);
  };
  EXPECT_THROW(StrategyRegistry::Instance().Register("random", "dup", factory),
               std::logic_error);
  EXPECT_THROW(StrategyRegistry::Instance().Register("", "empty", factory),
               std::logic_error);
  EXPECT_THROW(
      StrategyRegistry::Instance().Register("bad(name)", "paren", factory),
      std::logic_error);
}

// ---------------------------------------------------------------------------
// ParamMap.

TEST(ParamMap, TypedGettersWithDefaults) {
  ParamMap params;
  params.ParseAssign("writers=3");
  params.ParseAssign("blind=true");
  params.ParseAssign("rate=2.5");
  params.ParseAssign("label=hot-path");

  EXPECT_EQ(params.GetUint("writers", 1), 3u);
  EXPECT_EQ(params.GetUint("absent", 7), 7u);
  EXPECT_TRUE(params.GetBool("blind"));
  EXPECT_FALSE(params.GetBool("absent", false));
  EXPECT_DOUBLE_EQ(params.GetDouble("rate"), 2.5);
  EXPECT_EQ(params.GetString("label"), "hot-path");
  EXPECT_EQ(params.GetInt("writers"), 3);
}

TEST(ParamMap, RoundTripsThroughToString) {
  ParamMap params;
  params.Set("b", "2");
  params.Set("a", "1");
  params.Set("zz-top", "yes");
  EXPECT_EQ(params.ToString(), "a=1,b=2,zz-top=yes");  // sorted keys
  EXPECT_EQ(ParamMap::Parse(params.ToString()), params);
  EXPECT_EQ(ParamMap::Parse(""), ParamMap{});
}

TEST(ParamMap, RejectsMalformedInput) {
  ParamMap params;
  EXPECT_THROW(params.ParseAssign("no-equals"), std::invalid_argument);
  EXPECT_THROW(params.ParseAssign("=value"), std::invalid_argument);
  params.Set("n", "twelve");
  EXPECT_THROW((void)params.GetUint("n"), std::invalid_argument);
  params.Set("b", "maybe");
  EXPECT_THROW((void)params.GetBool("b"), std::invalid_argument);
  // std::stoull would wrap "-1" to 2^64-1; a negative count is always a
  // caller mistake and must be rejected, not turned into ~1.8e19 machines.
  params.Set("neg", "-1");
  EXPECT_THROW((void)params.GetUint("neg"), std::invalid_argument);
  EXPECT_EQ(params.GetInt("neg"), -1);  // the signed getter still accepts it
}

// ---------------------------------------------------------------------------
// TestConfig::Validate.

TEST(TestConfigValidate, RejectsConfigurationsThatExploreNothing) {
  systest::TestConfig config;
  config.Validate();  // defaults are fine

  systest::TestConfig zero_iters = config;
  zero_iters.iterations = 0;
  EXPECT_THROW(zero_iters.Validate(), std::invalid_argument);

  systest::TestConfig zero_steps = config;
  zero_steps.max_steps = 0;
  EXPECT_THROW(zero_steps.Validate(), std::invalid_argument);

  systest::TestConfig negative_budget = config;
  negative_budget.time_budget_seconds = -1;
  EXPECT_THROW(negative_budget.Validate(), std::invalid_argument);

  systest::TestConfig hot_threshold = config;
  hot_threshold.max_steps = 100;
  hot_threshold.liveness_temperature_threshold = 101;
  EXPECT_THROW(hot_threshold.Validate(), std::invalid_argument);

  systest::TestConfig no_strategy = config;
  no_strategy.strategy = "";
  EXPECT_THROW(no_strategy.Validate(), std::invalid_argument);
}

TEST(TestConfigValidate, TestSessionFailsFastOnMisconfiguration) {
  SessionConfig config;
  config.scenario = "race";
  config.iterations = 0;
  EXPECT_THROW(TestSession(config).Run(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Catalog health: every registered scenario constructs its harness with
// default parameters and survives a short exploration through TestSession.
// Catches scenarios that break at static-init, at harness construction, or
// on their first scheduling steps.

TEST(ScenarioCatalog, EveryScenarioConstructsAndRunsTenIterations) {
  for (const Scenario* scenario : ScenarioRegistry::Instance().All()) {
    SCOPED_TRACE(scenario->name);
    ASSERT_TRUE(scenario->default_config != nullptr) << scenario->name;
    SessionConfig config;
    config.scenario = scenario->name;
    config.iterations = 10;
    const SessionReport report = TestSession(config).Run();
    EXPECT_EQ(report.scenario, scenario->name);
    EXPECT_EQ(report.mode, "serial");
    EXPECT_GE(report.report.executions, 1u);
    EXPECT_GT(report.report.total_steps, 0u);
  }
}

}  // namespace
