// Regression tests for the scheduling-strategy fixes: PCT must consume
// change points at the step they were placed (re-selecting after a demotion
// without advancing the step), and delay-bounded scheduling must drain every
// delay point due at a step instead of silently burning budget on
// duplicates.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "core/strategy.h"

namespace {

using systest::DelayBoundedStrategy;
using systest::MachineId;
using systest::MakeStrategy;
using systest::PctStrategy;
using systest::RoundRobinStrategy;
using systest::StrategyKind;

TEST(PctStrategy, DemotionsFireAtTheirOwnSteps) {
  // Find a seed whose two change points land on ADJACENT steps k, k+1 with
  // k >= 1 (placement is a pure function of the seed, so this scan is
  // deterministic). The old implementation re-selected with step+1 after the
  // demotion at k, which prematurely consumed the k+1 point: both demotions
  // fired at step k and step k+1 saw no change.
  constexpr std::uint64_t kMaxSteps = 50;
  std::optional<std::uint64_t> found_seed;
  std::uint64_t k = 0;
  for (std::uint64_t seed = 0; seed < 10'000 && !found_seed; ++seed) {
    PctStrategy probe(seed, 2);
    probe.PrepareIteration(0, kMaxSteps);
    const auto points = probe.ChangePoints();
    if (points.size() == 2 && points[0] >= 1 && points[1] == points[0] + 1) {
      found_seed = seed;
      k = points[0];
    }
  }
  ASSERT_TRUE(found_seed.has_value())
      << "no seed with adjacent change points in scan range";

  PctStrategy strategy(*found_seed, 2);
  strategy.PrepareIteration(0, kMaxSteps);
  const MachineId ids[] = {MachineId{1}, MachineId{2}, MachineId{3}};

  // Up to the first change point the same leader runs every step.
  const MachineId leader = strategy.Next(ids, 0);
  for (std::uint64_t step = 1; step < k; ++step) {
    ASSERT_EQ(strategy.Next(ids, step).value, leader.value);
  }
  // Step k: exactly ONE demotion — a new leader, not two demotions at once.
  const MachineId second = strategy.Next(ids, k);
  EXPECT_NE(second.value, leader.value);
  // Step k+1: the second change point fires HERE, demoting the new leader.
  const MachineId third = strategy.Next(ids, k + 1);
  EXPECT_NE(third.value, second.value);
  EXPECT_NE(third.value, leader.value);
  // Budget exhausted: the final leader is stable from now on.
  for (std::uint64_t step = k + 2; step < kMaxSteps; ++step) {
    EXPECT_EQ(strategy.Next(ids, step).value, third.value);
  }
}

TEST(PctStrategy, DuplicateChangePointsEachDemote) {
  // max_steps = 1 forces every sampled change point onto step 0; each must
  // demote the re-selected leader in turn, so with budget 2 and 3 machines
  // the step-0 pick is the machine with the LOWEST original priority.
  PctStrategy strategy(7, 2);
  strategy.PrepareIteration(0, 1);
  ASSERT_EQ(strategy.ChangePoints().size(), 2u);
  ASSERT_EQ(strategy.ChangePoints()[0], 0u);
  ASSERT_EQ(strategy.ChangePoints()[1], 0u);

  const MachineId ids[] = {MachineId{1}, MachineId{2}, MachineId{3}};
  const MachineId first = strategy.Next(ids, 0);
  // Both points consumed at step 0; later steps keep the same leader.
  EXPECT_TRUE(strategy.ChangePoints().empty());
  EXPECT_EQ(strategy.Next(ids, 1).value, first.value);
}

TEST(DelayBoundedStrategy, DrainsAllDelayPointsDueAtAStep) {
  // max_steps = 1 forces all sampled delay points to 0 (duplicates). With a
  // budget of 3 every one of them must be consumed at step 0, advancing the
  // cursor by 3 — the old code consumed one per call and stranded the rest.
  DelayBoundedStrategy strategy(11, 3);
  strategy.PrepareIteration(0, 1);
  const MachineId ids[] = {MachineId{1}, MachineId{2}, MachineId{3},
                           MachineId{4}};
  EXPECT_EQ(strategy.Next(ids, 0).value, ids[3].value);
  // Budget exhausted: the cursor no longer moves.
  EXPECT_EQ(strategy.Next(ids, 1).value, ids[3].value);
  EXPECT_EQ(strategy.Next(ids, 2).value, ids[3].value);
}

TEST(RoundRobinStrategy, SeedOffsetsRotationForShardedWorkers) {
  // Sharded parallel workers hold disjoint seed ranges; round-robin must
  // honour them so worker w's iteration i covers the rotation position the
  // serial engine would reach at global iteration (seed_offset + i) —
  // otherwise every worker replays worker 0's schedules.
  const MachineId ids[] = {MachineId{1}, MachineId{2}, MachineId{3}};

  RoundRobinStrategy w0(0), w1(1);
  w0.PrepareIteration(0, 100);
  w1.PrepareIteration(0, 100);
  EXPECT_NE(w0.Next(ids, 0).value, w1.Next(ids, 0).value)
      << "workers with different seeds must start at different rotations";

  // Worker 1's iteration 0 equals the serial engine's iteration 1.
  RoundRobinStrategy serial(0);
  serial.PrepareIteration(1, 100);
  RoundRobinStrategy sharded(1);
  sharded.PrepareIteration(0, 100);
  for (int step = 0; step < 9; ++step) {
    EXPECT_EQ(sharded.Next(ids, step).value, serial.Next(ids, step).value);
  }

  // The factory must forward the seed.
  const auto made = MakeStrategy(StrategyKind::kRoundRobin, 2, 0);
  made->PrepareIteration(0, 100);
  RoundRobinStrategy direct(2);
  direct.PrepareIteration(0, 100);
  EXPECT_EQ(made->Next(ids, 0).value, direct.Next(ids, 0).value);
}

TEST(DelayBoundedStrategy, PastDuePointsAreNotLost) {
  // Points sampled at earlier steps than the first scheduling call must all
  // be consumed on that call, not trickled out one per step.
  DelayBoundedStrategy strategy(3, 2);
  strategy.PrepareIteration(0, 4);
  const MachineId ids[] = {MachineId{1}, MachineId{2}, MachineId{3},
                           MachineId{4}};
  // Jump straight to the last step: every sampled point (< 4) is now due.
  const MachineId pick = strategy.Next(ids, 3);
  EXPECT_EQ(pick.value, ids[2].value);  // cursor advanced by the full budget
  EXPECT_EQ(strategy.Next(ids, 3).value, pick.value);
}

}  // namespace
