// Coverage-heatmap tests (src/obs): unvisited declared states are called out
// by name, per-event-type deliveries are named through the intern table,
// fault-placement deciles account for every injected fault, and — the merge
// contract the parallel engine relies on — the fleet aggregate is exactly the
// sum of the per-worker reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "api/reporters.h"
#include "api/session.h"
#include "core/systest.h"
#include "obs/campaign.h"
#include "obs/coverage.h"
#include "obs/metrics.h"
#include "samplerepl/harness.h"

namespace {

using systest::Event;
using systest::Machine;
using systest::api::SessionConfig;
using systest::api::SessionReport;
using systest::api::TestSession;
using systest::obs::CampaignMetrics;
using systest::obs::CoverageReport;
using systest::obs::FaultKind;
using systest::obs::MetricsRegistry;
using systest::obs::WorkerObs;

// ---------------------------------------------------------------------------
// A machine with a declared state no execution ever drives it into.

struct Nudge final : Event {};

class Hopper final : public Machine {
 public:
  Hopper() {
    State("Idle").OnEntry(&Hopper::OnStart).On<Nudge>(&Hopper::OnNudge);
    State("Busy");
    State("Drained");  // declared, never entered
    SetStart("Idle");
  }

 private:
  void OnStart() { Send<Nudge>(Id()); }
  void OnNudge(const Nudge&) { Goto("Busy"); }
};

systest::Harness HopperHarness() {
  return [](systest::Runtime& rt) { rt.CreateMachine<Hopper>("Hopper"); };
}

CoverageReport RunHopperOnce(std::uint64_t seed) {
  systest::TestConfig config;
  config.max_steps = 100;
  MetricsRegistry registry;
  CampaignMetrics metrics(registry);
  WorkerObs obs(metrics, /*worker_index=*/0, /*coverage_enabled=*/true);
  systest::RandomStrategy strategy(seed);
  (void)systest::RunOneExecution(config, HopperHarness(), strategy,
                                 /*iteration=*/0, /*visited=*/nullptr, &obs);
  return obs.TakeCoverage();
}

/// Flattens a report to "machine.State" -> visits for order-free comparison.
std::map<std::string, std::uint64_t> StateVisits(const CoverageReport& r) {
  std::map<std::string, std::uint64_t> out;
  for (const systest::obs::MachineCoverage& m : r.machines) {
    for (std::size_t i = 0; i < m.state_names.size(); ++i) {
      out[m.machine + "." + m.state_names[i]] += m.state_visits[i];
    }
  }
  return out;
}

std::map<std::string, std::uint64_t> Deliveries(const CoverageReport& r) {
  return {r.event_deliveries.begin(), r.event_deliveries.end()};
}

bool AnyEndsWith(const std::vector<std::string>& names,
                 const std::string& suffix) {
  return std::any_of(names.begin(), names.end(), [&](const std::string& s) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
  });
}

TEST(Coverage, FlagsDeclaredButUnvisitedStates) {
  const CoverageReport report = RunHopperOnce(1);
  EXPECT_EQ(report.executions, 1u);
  ASSERT_EQ(report.machines.size(), 1u);
  const std::map<std::string, std::uint64_t> visits = StateVisits(report);
  ASSERT_EQ(visits.size(), 3u);  // all three DECLARED states are reported
  for (const auto& [state, count] : visits) {
    if (state.find(".Drained") != std::string::npos) {
      EXPECT_EQ(count, 0u) << state;
    } else {
      EXPECT_GE(count, 1u) << state;
    }
  }
  const std::vector<std::string> unvisited = report.UnvisitedStates();
  ASSERT_EQ(unvisited.size(), 1u);
  EXPECT_TRUE(AnyEndsWith(unvisited, ".Drained")) << unvisited[0];

  // Both renderings surface the gap explicitly.
  const std::string text = report.Render();
  EXPECT_NE(text.find("UNVISITED"), std::string::npos);
  EXPECT_NE(text.find("Drained"), std::string::npos);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"unvisited_states\""), std::string::npos);
  EXPECT_NE(json.find("Drained"), std::string::npos);

  // The self-send was a real delivery, named through the intern table.
  const std::map<std::string, std::uint64_t> deliveries = Deliveries(report);
  ASSERT_TRUE(deliveries.count("Nudge"));
  EXPECT_EQ(deliveries.at("Nudge"), 1u);
}

TEST(Coverage, MergeSumsByMachineAndEventName) {
  const CoverageReport a = RunHopperOnce(1);
  CoverageReport b = RunHopperOnce(2);
  b.fault_placements[0][3] = 7;  // exercise the fault-grid cells too

  CoverageReport merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.executions, a.executions + b.executions);

  std::map<std::string, std::uint64_t> expected_visits = StateVisits(a);
  for (const auto& [state, count] : StateVisits(b)) {
    expected_visits[state] += count;
  }
  EXPECT_EQ(StateVisits(merged), expected_visits);

  std::map<std::string, std::uint64_t> expected_deliveries = Deliveries(a);
  for (const auto& [name, count] : Deliveries(b)) {
    expected_deliveries[name] += count;
  }
  EXPECT_EQ(Deliveries(merged), expected_deliveries);
  EXPECT_EQ(merged.fault_placements[0][3], 7u);

  // Commutativity: the reverse merge order agrees.
  CoverageReport reversed;
  reversed.Merge(b);
  reversed.Merge(a);
  EXPECT_EQ(StateVisits(reversed), StateVisits(merged));
  EXPECT_EQ(Deliveries(reversed), Deliveries(merged));
}

// ---------------------------------------------------------------------------
// Session-level contracts.

TEST(Coverage, ParallelAggregateEqualsSumOfWorkerReports) {
  SessionConfig config;
  config.scenario = "samplerepl-fixed";
  config.threads = 4;
  config.seed = 9;
  config.iterations = 12;
  config.coverage = true;
  SessionReport out = TestSession(std::move(config)).Run();
  ASSERT_NE(out.report.coverage, nullptr);
  ASSERT_EQ(out.workers.size(), 4u);

  std::uint64_t worker_executions = 0;
  std::map<std::string, std::uint64_t> worker_visits;
  std::map<std::string, std::uint64_t> worker_deliveries;
  for (const systest::explore::WorkerReport& w : out.workers) {
    ASSERT_NE(w.coverage, nullptr);
    worker_executions += w.coverage->executions;
    for (const auto& [state, count] : StateVisits(*w.coverage)) {
      worker_visits[state] += count;
    }
    for (const auto& [name, count] : Deliveries(*w.coverage)) {
      worker_deliveries[name] += count;
    }
  }
  EXPECT_EQ(out.report.coverage->executions, worker_executions);
  EXPECT_EQ(out.report.coverage->executions, out.report.executions);
  EXPECT_EQ(StateVisits(*out.report.coverage), worker_visits);
  EXPECT_EQ(Deliveries(*out.report.coverage), worker_deliveries);
}

TEST(Coverage, FaultPlacementDecilesAccountForEveryInjectedFault) {
  SessionConfig config;
  config.scenario = "samplerepl-node-crash";
  config.seed = 2016;
  config.iterations = 50;
  config.coverage = true;
  SessionReport out = TestSession(std::move(config)).Run();
  ASSERT_NE(out.report.coverage, nullptr);
  const CoverageReport& coverage = *out.report.coverage;

  auto row_total = [&coverage](FaultKind kind) {
    std::uint64_t total = 0;
    for (std::size_t d = 0; d < systest::obs::kStepDeciles; ++d) {
      total += coverage.fault_placements[static_cast<std::size_t>(kind)][d];
    }
    return total;
  };
  const systest::Runtime::FaultStats& injected = out.report.injected_faults;
  EXPECT_EQ(row_total(FaultKind::kCrash), injected.crashes);
  EXPECT_EQ(row_total(FaultKind::kRestart), injected.restarts);
  EXPECT_EQ(row_total(FaultKind::kDrop), injected.drops);
  EXPECT_EQ(row_total(FaultKind::kDuplicate), injected.duplications);
  EXPECT_GT(injected.crashes, 0u);  // the scenario arms crash/restart budgets

  // The modeled storage node declares a deployment-fidelity Recovering state
  // no harness drives — exactly what the heatmap exists to surface.
  EXPECT_TRUE(AnyEndsWith(coverage.UnvisitedStates(), ".Recovering"));
}

TEST(Coverage, JsonReporterEmitsCoverageAndPerWorkerWallTime) {
  SessionConfig config;
  config.scenario = "samplerepl-fixed";
  config.threads = 2;
  config.seed = 4;
  config.iterations = 6;
  config.stateful = true;
  config.coverage = true;
  systest::api::JsonReporter reporter(stderr);
  TestSession session(std::move(config));
  session.AddObserver(&reporter);
  (void)session.Run();
  const std::string& json = reporter.Last();
  // Satellite contracts: per-worker wall time and the saturation flag are
  // machine-detectable in CI smoke JSON, coverage rides along structurally.
  EXPECT_NE(json.find("\"seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"workers\":["), std::string::npos);
  EXPECT_NE(json.find("\"visited_set_saturated\":"), std::string::npos);
  EXPECT_NE(json.find("\"coverage\":{"), std::string::npos);
  EXPECT_NE(json.find("\"event_deliveries\""), std::string::npos);
}

}  // namespace
