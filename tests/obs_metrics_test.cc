// Metrics-plane tests (src/obs): TLS-sharded counter aggregation under real
// writer threads (this binary is also run under TSan by CI), histogram
// bucket-edge semantics, registry snapshots, campaign-snapshot determinism
// under fixed seeds, the monitor's exact final sample and JSONL output — and
// the guard that matters most: the execution probe adds NO scheduling
// perturbation, so traces are byte-identical with the metrics plane on.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "core/systest.h"
#include "obs/campaign.h"
#include "obs/metrics.h"
#include "samplerepl/harness.h"

namespace {

using systest::api::IterationInfo;
using systest::api::RunObserver;
using systest::api::SessionConfig;
using systest::api::SessionReport;
using systest::api::TestSession;
using systest::obs::CampaignMetrics;
using systest::obs::Counter;
using systest::obs::Gauge;
using systest::obs::Histogram;
using systest::obs::MetricsRegistry;
using systest::obs::MetricsSnapshot;
using systest::obs::WorkerObs;

// ---------------------------------------------------------------------------
// Instruments.

TEST(Counter, AggregatesAcrossEightWriterThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
  counter.Add(42);
  EXPECT_EQ(counter.Value(), kThreads * kPerThread + 42);
}

TEST(Gauge, LastWriterWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0u);
  gauge.Set(7);
  gauge.Set(3);
  EXPECT_EQ(gauge.Value(), 3u);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  // Bounds {1, 2, 4} declare four buckets: v<=1, v<=2, v<=4, overflow.
  Histogram hist({1, 2, 4});
  ASSERT_EQ(hist.BucketCount(), 4u);
  EXPECT_EQ(hist.BucketOf(0), 0u);
  EXPECT_EQ(hist.BucketOf(1), 0u);  // edge values land in their own bucket
  EXPECT_EQ(hist.BucketOf(2), 1u);
  EXPECT_EQ(hist.BucketOf(3), 2u);
  EXPECT_EQ(hist.BucketOf(4), 2u);
  EXPECT_EQ(hist.BucketOf(5), 3u);  // past the last bound -> overflow
  hist.Record(0);
  hist.Record(1);
  hist.Record(2);
  hist.Record(3);
  hist.Record(4);
  hist.Record(5);
  hist.Record(1'000'000);
  EXPECT_EQ(hist.BucketCounts(), (std::vector<std::uint64_t>{2, 1, 2, 2}));
  EXPECT_EQ(hist.Count(), 7u);
}

TEST(Histogram, AggregatesAcrossEightWriterThreads) {
  Histogram hist({10, 100});
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<std::uint64_t>(t));  // all <= 10 -> bucket 0
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(hist.Count(), kThreads * kPerThread);
  EXPECT_EQ(hist.BucketCounts()[0], kThreads * kPerThread);
}

TEST(MetricsRegistry, StableReferencesAndSortedSnapshot) {
  MetricsRegistry registry;
  Counter& zeta = registry.GetCounter("zeta");
  registry.GetCounter("alpha").Add(1);
  EXPECT_EQ(&registry.GetCounter("zeta"), &zeta);
  zeta.Add(3);
  registry.GetGauge("mid").Set(7);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.values.size(), 3u);
  EXPECT_EQ(snapshot.values[0].name, "alpha");
  EXPECT_EQ(snapshot.values[1].name, "mid");
  EXPECT_EQ(snapshot.values[2].name, "zeta");
  EXPECT_EQ(snapshot.ValueOf("zeta"), 3u);
  EXPECT_EQ(snapshot.ValueOf("mid"), 7u);
  EXPECT_EQ(snapshot.ValueOf("absent", 99), 99u);
  EXPECT_EQ(snapshot.Find("absent"), nullptr);
}

// ---------------------------------------------------------------------------
// The probe must not perturb scheduling: traces byte-identical with obs on.

std::string ExecutionTrace(std::uint64_t iteration, bool with_obs) {
  systest::TestConfig config;
  config.max_steps = 2'000;
  const systest::Harness harness =
      samplerepl::MakeHarness(samplerepl::HarnessOptions{});
  systest::RandomStrategy strategy(42);
  MetricsRegistry registry;
  CampaignMetrics metrics(registry);
  WorkerObs obs(metrics, /*worker_index=*/0, /*coverage_enabled=*/true);
  const systest::ExecutionResult result = systest::RunOneExecution(
      config, harness, strategy, iteration, /*visited=*/nullptr,
      with_obs ? &obs : nullptr);
  return result.trace.ToString();
}

TEST(ExecutionProbe, TracesByteIdenticalWithMetricsEnabled) {
  for (std::uint64_t iteration = 0; iteration < 5; ++iteration) {
    EXPECT_EQ(ExecutionTrace(iteration, false), ExecutionTrace(iteration, true))
        << "iteration " << iteration;
  }
}

/// Collects the serialized trace of every completed execution.
class TraceCollector final : public RunObserver {
 public:
  [[nodiscard]] bool WantsIterations() const override { return true; }
  void OnIteration(const IterationInfo& info) override {
    traces.push_back(info.result.trace.ToString());
  }
  std::vector<std::string> traces;
};

std::vector<std::string> SessionTraces(bool observability) {
  SessionConfig config;
  config.scenario = "samplerepl-fixed";
  config.seed = 5;
  config.iterations = 5;
  if (observability) {
    config.metrics = true;
    config.coverage = true;
  }
  TraceCollector collector;
  TestSession session(std::move(config));
  session.AddObserver(&collector);
  (void)session.Run();
  return collector.traces;
}

TEST(ExecutionProbe, SessionTracesByteIdenticalWithObservabilityOn) {
  const std::vector<std::string> plain = SessionTraces(false);
  ASSERT_EQ(plain.size(), 5u);
  EXPECT_EQ(plain, SessionTraces(true));
}

// ---------------------------------------------------------------------------
// Campaign snapshots: deterministic under fixed seeds, exact at the end.

MetricsSnapshot FixedSeedSnapshot() {
  SessionConfig config;
  config.scenario = "samplerepl-fixed";
  config.seed = 11;
  config.iterations = 25;
  config.metrics = true;
  return TestSession(std::move(config)).Run().metrics;
}

TEST(CampaignMetrics, SnapshotDeterministicUnderFixedSeed) {
  const MetricsSnapshot a = FixedSeedSnapshot();
  const MetricsSnapshot b = FixedSeedSnapshot();
  ASSERT_EQ(a.values.size(), b.values.size());
  ASSERT_FALSE(a.values.empty());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i].name, b.values[i].name);
    EXPECT_EQ(a.values[i].value, b.values[i].value) << a.values[i].name;
    EXPECT_EQ(a.values[i].bucket_counts, b.values[i].bucket_counts)
        << a.values[i].name;
  }
  EXPECT_EQ(a.ValueOf("executions"), 25u);
  EXPECT_GT(a.ValueOf("steps"), 0u);
  EXPECT_GT(a.ValueOf("deliveries"), 0u);
  // Per-event-type delivery counters resolved names via the intern table.
  EXPECT_GT(a.ValueOf("deliveries_by_type.ClientReq"), 0u);
  EXPECT_EQ(a.ValueOf("worker.0.executions"), 25u);
}

TEST(CampaignMonitor, FinalSampleIsExactAndJsonlParses) {
  const std::string jsonl_path =
      ::testing::TempDir() + "obs_metrics_test_series.jsonl";
  std::remove(jsonl_path.c_str());
  SessionConfig config;
  config.scenario = "samplerepl-fixed";
  config.seed = 3;
  config.iterations = 10;
  config.metrics_out = jsonl_path;
  SessionReport out = TestSession(std::move(config)).Run();

  // The closing sample is taken after the engine returned: exact totals.
  ASSERT_FALSE(out.samples.empty());
  const systest::obs::MetricsSample& last = out.samples.back();
  EXPECT_TRUE(last.final_sample);
  EXPECT_EQ(last.executions, out.report.executions);
  EXPECT_EQ(last.steps, out.report.total_steps);
  EXPECT_EQ(out.metrics.ValueOf("executions"), out.report.executions);

  // Every JSONL line is one object carrying the headline fields.
  std::FILE* file = std::fopen(jsonl_path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char line[8192];
  int lines = 0;
  std::string last_line;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    ++lines;
    last_line = line;
    EXPECT_EQ(line[0], '{');
    EXPECT_NE(last_line.find("\"executions\":"), std::string::npos);
  }
  std::fclose(file);
  EXPECT_GE(lines, 1);
  EXPECT_NE(last_line.find("\"final\":true"), std::string::npos);
  std::remove(jsonl_path.c_str());
}

TEST(CampaignMetrics, ParallelWorkersFlushIntoSharedInstruments) {
  SessionConfig config;
  config.scenario = "samplerepl-fixed";
  config.threads = 4;
  config.seed = 17;
  config.iterations = 12;
  config.metrics = true;
  SessionReport out = TestSession(std::move(config)).Run();
  EXPECT_EQ(out.metrics.ValueOf("executions"), out.report.executions);
  EXPECT_EQ(out.metrics.ValueOf("steps"), out.report.total_steps);
  // Each worker's private counter sums back to the campaign total.
  std::uint64_t per_worker = 0;
  for (const systest::explore::WorkerReport& w : out.workers) {
    per_worker += out.metrics.ValueOf(
        "worker." + std::to_string(w.assignment.worker) + ".executions");
  }
  EXPECT_EQ(per_worker, out.report.executions);
}

}  // namespace
