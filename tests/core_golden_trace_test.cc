// Golden-trace regression tests: the exact decision sequence produced for a
// fixed seed is part of the runtime's contract — performance work on the
// scheduler hot path (shared machine declarations, interned event ids,
// incremental enabled-set tracking) must be bit-for-bit invisible here. The
// expected strings below were captured before that refactor landed; any
// divergence means the serialized-execution semantics changed.
//
// Regenerate (after an INTENTIONAL semantic change only) with:
//   GOLDEN_PRINT=1 ./build/core_golden_trace_test
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "core/systest.h"
#include "samplerepl/harness.h"

namespace {

using systest::Event;
using systest::Machine;
using systest::MachineId;

struct GoldenBall final : Event {
  explicit GoldenBall(int n) : n(n) {}
  int n;
};

/// Ping-pong with controlled nondeterminism on both the bool and the int
/// paths, so a golden trace covers every Decision::Kind.
class GoldenPaddle final : public Machine {
 public:
  explicit GoldenPaddle(int rounds) : rounds_(rounds) {
    State("Play").OnEntry(&GoldenPaddle::OnStart).On<GoldenBall>(&GoldenPaddle::OnBall);
    SetStart("Play");
  }

  void SetPeer(MachineId peer) { peer_ = peer; }
  void Serve() { serve_ = true; }

 private:
  void OnStart() {
    if (serve_) {
      Send<GoldenBall>(peer_, 0);
    }
  }
  void OnBall(const GoldenBall& ball) {
    if (ball.n >= rounds_) return;
    if (NondetBool()) {
      (void)NondetInt(5);
    }
    Send<GoldenBall>(peer_, ball.n + 1);
  }

  MachineId peer_;
  int rounds_;
  bool serve_ = false;
};

systest::Harness PingPongHarness(int rounds) {
  return [rounds](systest::Runtime& rt) {
    auto a = rt.CreateMachine<GoldenPaddle>("A", rounds);
    auto b = rt.CreateMachine<GoldenPaddle>("B", rounds);
    auto* pa = static_cast<GoldenPaddle*>(rt.FindMachine(a));
    auto* pb = static_cast<GoldenPaddle*>(rt.FindMachine(b));
    pa->SetPeer(b);
    pb->SetPeer(a);
    pb->Serve();
  };
}

/// Runs `harness` once for the given 0-based iteration and returns the full
/// decision trace, whether or not the execution found a bug.
std::string TraceOf(const systest::Harness& harness,
                    systest::SchedulingStrategy& strategy,
                    std::uint64_t iteration, std::uint64_t max_steps) {
  strategy.PrepareIteration(iteration, max_steps);
  systest::RuntimeOptions options;
  options.max_steps = max_steps;
  systest::Runtime rt(strategy, options);
  try {
    const bool hit_bound = !systest::StepToCompletion(rt, harness, max_steps);
    (void)hit_bound;
  } catch (const systest::BugFound&) {
    // The trace up to the violation is still the golden artifact.
  }
  return rt.GetTrace().ToString();
}

/// FNV-1a 64-bit, for goldens too long to inline verbatim.
std::string Fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

bool PrintMode() { return std::getenv("GOLDEN_PRINT") != nullptr; }

void CheckGolden(const char* label, const std::string& actual,
                 const std::string& expected) {
  if (PrintMode()) {
    std::printf("GOLDEN %s = %s\n", label, actual.c_str());
    return;
  }
  EXPECT_EQ(actual, expected) << label;
}

// ---------------------------------------------------------------------------
// Ping-pong goldens: every strategy, two iterations each (iteration 0 and 2,
// so PrepareIteration re-derivation is covered too).

TEST(GoldenTrace, PingPongRandom) {
  systest::RandomStrategy strategy(7);
  const systest::Harness harness = PingPongHarness(6);
  CheckGolden("random_it0", TraceOf(harness, strategy, 0, 500),
              "s1;s2;s1;b0;s2;b0;s1;b1;i3/5;s2;b1;i0/5;s1;b1;i0/5;s2;b0;s1");
  CheckGolden("random_it2", TraceOf(harness, strategy, 2, 500),
              "s1;s2;s1;b0;s2;b0;s1;b0;s2;b0;s1;b0;s2;b0;s1");
}

TEST(GoldenTrace, PingPongPct) {
  systest::PctStrategy strategy(7, 2);
  const systest::Harness harness = PingPongHarness(6);
  CheckGolden("pct_it0", TraceOf(harness, strategy, 0, 500),
              "s1;s2;s1;b1;i2/5;s2;b0;s1;b1;i3/5;s2;b0;s1;b1;i0/5;s2;b0;s1");
  CheckGolden("pct_it2", TraceOf(harness, strategy, 2, 500),
              "s2;s1;s1;b1;i0/5;s2;b0;s1;b0;s2;b1;i2/5;s1;b0;s2;b0;s1");
}

TEST(GoldenTrace, PingPongDelayBounded) {
  systest::DelayBoundedStrategy strategy(7, 2);
  const systest::Harness harness = PingPongHarness(6);
  CheckGolden("db_it0", TraceOf(harness, strategy, 0, 500),
              "s1;s2;s1;b0;s2;b0;s1;b1;i2/5;s2;b0;s1;b1;i3/5;s2;b0;s1");
  CheckGolden("db_it2", TraceOf(harness, strategy, 2, 500),
              "s1;s2;s1;b0;s2;b0;s1;b1;i0/5;s2;b0;s1;b0;s2;b1;i2/5;s1");
}

TEST(GoldenTrace, PingPongRoundRobin) {
  systest::RoundRobinStrategy strategy(3);
  const systest::Harness harness = PingPongHarness(6);
  CheckGolden("rr_it0", TraceOf(harness, strategy, 0, 500),
              "s2;s1;s1;b1;i1/5;s2;b1;i3/5;s1;b1;i0/5;s2;b1;i2/5;s1;b1;i4/5;s2;"
              "b1;i1/5;s1");
  CheckGolden("rr_it2", TraceOf(harness, strategy, 2, 500),
              "s2;s1;s1;b1;i1/5;s2;b1;i3/5;s1;b1;i0/5;s2;b1;i2/5;s1;b1;i4/5;s2;"
              "b1;i1/5;s1");
}

// ---------------------------------------------------------------------------
// Real-harness goldens (samplerepl, the paper's §2.2 example): traces are a
// few KB, so assert length + FNV-1a fingerprint instead of the full text.

struct HarnessGolden {
  std::size_t size;
  const char* fnv;
};

void CheckHarnessGolden(const char* label, const std::string& actual,
                        const HarnessGolden& expected) {
  if (PrintMode()) {
    std::printf("GOLDEN %s : size=%zu fnv=%s\n", label, actual.size(),
                Fnv1a(actual).c_str());
    return;
  }
  EXPECT_EQ(actual.size(), expected.size) << label;
  EXPECT_EQ(Fnv1a(actual), expected.fnv) << label;
}

TEST(GoldenTrace, SampleReplClean) {
  const systest::Harness harness =
      samplerepl::MakeHarness(samplerepl::HarnessOptions{});
  {
    systest::RandomStrategy strategy(2016);
    CheckHarnessGolden("samplerepl_random", TraceOf(harness, strategy, 0, 2000),
                       {543, "330a1ff9c4fddfe7"});
  }
  {
    systest::PctStrategy strategy(2016, 2);
    CheckHarnessGolden("samplerepl_pct", TraceOf(harness, strategy, 0, 2000),
                       {8296, "97470e6a0ffe6631"});
  }
  {
    systest::DelayBoundedStrategy strategy(2016, 2);
    CheckHarnessGolden("samplerepl_db", TraceOf(harness, strategy, 0, 2000),
                       {8657, "88e5a3e7f0b9913c"});
  }
  {
    systest::RoundRobinStrategy strategy(5);
    CheckHarnessGolden("samplerepl_rr", TraceOf(harness, strategy, 0, 2000),
                       {417, "bf0a786a79230889"});
  }
}

TEST(GoldenTrace, SampleReplBuggy) {
  samplerepl::HarnessOptions options;
  options.bugs.non_unique_replica_count = true;
  const systest::Harness harness = samplerepl::MakeHarness(options);
  systest::RandomStrategy strategy(2016);
  // Scan a few iterations so the golden covers a bug-terminated trace too.
  std::string combined;
  for (std::uint64_t it = 0; it < 8; ++it) {
    combined += TraceOf(harness, strategy, it, 2000);
    combined += '|';
  }
  CheckHarnessGolden("samplerepl_buggy_random", combined,
                     {3656, "476cf8364f416f59"});
}

}  // namespace
