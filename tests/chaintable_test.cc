// Unit tests for the IChainTable specification and its reference
// implementation (InMemoryChainTable): etag semantics, conditional writes,
// filters, atomic and cursor queries.
#include <gtest/gtest.h>

#include "chaintable/memory_table.h"

namespace {

using chaintable::Etag;
using chaintable::Filter;
using chaintable::InMemoryChainTable;
using chaintable::kAnyEtag;
using chaintable::OpResult;
using chaintable::Properties;
using chaintable::TableCode;
using chaintable::TableKey;
using chaintable::TableRow;
using chaintable::WriteKind;
using chaintable::WriteOp;

WriteOp MakeWrite(WriteKind kind, std::string partition, std::string row,
                  Properties props = {}, Etag etag = kAnyEtag) {
  WriteOp op;
  op.kind = kind;
  op.row.key = {std::move(partition), std::move(row)};
  op.row.properties = std::move(props);
  op.etag = etag;
  return op;
}

TEST(MemoryTable, InsertThenRetrieve) {
  InMemoryChainTable table;
  const OpResult w = table.ExecuteWrite(
      MakeWrite(WriteKind::kInsert, "P", "r", {{"a", "1"}}));
  ASSERT_EQ(w.code, TableCode::kOk);
  EXPECT_NE(w.etag, chaintable::kInvalidEtag);

  const OpResult r = table.Retrieve({"P", "r"});
  ASSERT_EQ(r.code, TableCode::kOk);
  EXPECT_EQ(r.row->properties.at("a"), "1");
  EXPECT_EQ(r.row_etag, w.etag);
}

TEST(MemoryTable, InsertDuplicateFails) {
  InMemoryChainTable table;
  table.ExecuteWrite(MakeWrite(WriteKind::kInsert, "P", "r"));
  const OpResult w = table.ExecuteWrite(MakeWrite(WriteKind::kInsert, "P", "r"));
  EXPECT_EQ(w.code, TableCode::kAlreadyExists);
}

TEST(MemoryTable, ReplaceHonorsEtag) {
  InMemoryChainTable table;
  const OpResult w1 = table.ExecuteWrite(
      MakeWrite(WriteKind::kInsert, "P", "r", {{"a", "1"}}));
  const OpResult ok = table.ExecuteWrite(
      MakeWrite(WriteKind::kReplace, "P", "r", {{"a", "2"}}, w1.etag));
  ASSERT_EQ(ok.code, TableCode::kOk);
  // The original etag is now stale.
  const OpResult stale = table.ExecuteWrite(
      MakeWrite(WriteKind::kReplace, "P", "r", {{"a", "3"}}, w1.etag));
  EXPECT_EQ(stale.code, TableCode::kConditionNotMet);
  // Match-any still works.
  const OpResult any = table.ExecuteWrite(
      MakeWrite(WriteKind::kReplace, "P", "r", {{"a", "4"}}, kAnyEtag));
  EXPECT_EQ(any.code, TableCode::kOk);
  EXPECT_EQ(table.Retrieve({"P", "r"}).row->properties.at("a"), "4");
}

TEST(MemoryTable, ReplaceMissingRowIsNotFound) {
  InMemoryChainTable table;
  const OpResult w = table.ExecuteWrite(MakeWrite(WriteKind::kReplace, "P", "r"));
  EXPECT_EQ(w.code, TableCode::kNotFound);
}

TEST(MemoryTable, MergeCombinesProperties) {
  InMemoryChainTable table;
  table.ExecuteWrite(MakeWrite(WriteKind::kInsert, "P", "r", {{"a", "1"}}));
  const OpResult m = table.ExecuteWrite(
      MakeWrite(WriteKind::kMerge, "P", "r", {{"b", "2"}}));
  ASSERT_EQ(m.code, TableCode::kOk);
  const OpResult r = table.Retrieve({"P", "r"});
  EXPECT_EQ(r.row->properties.at("a"), "1");
  EXPECT_EQ(r.row->properties.at("b"), "2");
}

TEST(MemoryTable, DeleteHonorsEtagAndRemoves) {
  InMemoryChainTable table;
  const OpResult w = table.ExecuteWrite(MakeWrite(WriteKind::kInsert, "P", "r"));
  const OpResult stale = table.ExecuteWrite(
      MakeWrite(WriteKind::kDelete, "P", "r", {}, w.etag + 1'000));
  EXPECT_EQ(stale.code, TableCode::kConditionNotMet);
  const OpResult del = table.ExecuteWrite(
      MakeWrite(WriteKind::kDelete, "P", "r", {}, w.etag));
  EXPECT_EQ(del.code, TableCode::kOk);
  EXPECT_EQ(table.Retrieve({"P", "r"}).code, TableCode::kNotFound);
}

TEST(MemoryTable, EtagsNeverRepeatAcrossDeleteAndReinsert) {
  InMemoryChainTable table;
  const OpResult w1 = table.ExecuteWrite(MakeWrite(WriteKind::kInsert, "P", "r"));
  table.ExecuteWrite(MakeWrite(WriteKind::kDelete, "P", "r"));
  const OpResult w2 = table.ExecuteWrite(MakeWrite(WriteKind::kInsert, "P", "r"));
  EXPECT_NE(w1.etag, w2.etag);
  // A pre-delete etag must not match the recreated row.
  const OpResult stale = table.ExecuteWrite(
      MakeWrite(WriteKind::kReplace, "P", "r", {}, w1.etag));
  EXPECT_EQ(stale.code, TableCode::kConditionNotMet);
}

TEST(MemoryTable, StridedEtagsStayInResidueClass) {
  InMemoryChainTable a(1, 3);
  InMemoryChainTable b(2, 3);
  for (int i = 0; i < 5; ++i) {
    const auto wa = a.ExecuteWrite(
        MakeWrite(WriteKind::kInsert, "P", "r" + std::to_string(i)));
    const auto wb = b.ExecuteWrite(
        MakeWrite(WriteKind::kInsert, "P", "r" + std::to_string(i)));
    EXPECT_EQ(wa.etag % 3, 1u);
    EXPECT_EQ(wb.etag % 3, 2u);
  }
}

TEST(MemoryTable, QueryAtomicSortsAndFilters) {
  InMemoryChainTable table;
  table.ExecuteWrite(MakeWrite(WriteKind::kInsert, "P1", "r2", {{"v", "x"}}));
  table.ExecuteWrite(MakeWrite(WriteKind::kInsert, "P0", "r1", {{"v", "y"}}));
  table.ExecuteWrite(MakeWrite(WriteKind::kInsert, "P0", "r0", {{"v", "x"}}));

  const auto all = table.ExecuteQueryAtomic(Filter{});
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].row.key, (TableKey{"P0", "r0"}));
  EXPECT_EQ(all[2].row.key, (TableKey{"P1", "r2"}));

  Filter by_partition;
  by_partition.partition = "P0";
  EXPECT_EQ(table.ExecuteQueryAtomic(by_partition).size(), 2u);

  Filter by_value;
  by_value.property_equals = {"v", "x"};
  EXPECT_EQ(table.ExecuteQueryAtomic(by_value).size(), 2u);

  Filter by_range;
  by_range.partition = "P0";
  by_range.row_from = "r1";
  by_range.row_to = "r2";
  const auto ranged = table.ExecuteQueryAtomic(by_range);
  ASSERT_EQ(ranged.size(), 1u);
  EXPECT_EQ(ranged[0].row.key.row, "r1");
}

TEST(MemoryTable, QueryAboveActsAsCursor) {
  InMemoryChainTable table;
  for (const char* row : {"r0", "r1", "r2"}) {
    table.ExecuteWrite(MakeWrite(WriteKind::kInsert, "P", row));
  }
  Filter filter;
  filter.partition = "P";
  std::optional<TableKey> cursor;
  std::vector<std::string> seen;
  for (;;) {
    const auto next = table.QueryAbove(filter, cursor);
    if (!next) break;
    seen.push_back(next->row.key.row);
    cursor = next->row.key;
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"r0", "r1", "r2"}));
}

TEST(MemoryTable, QueryAboveSeesConcurrentInsertAheadOfCursor) {
  InMemoryChainTable table;
  table.ExecuteWrite(MakeWrite(WriteKind::kInsert, "P", "r0"));
  table.ExecuteWrite(MakeWrite(WriteKind::kInsert, "P", "r3"));
  Filter filter;
  filter.partition = "P";
  auto first = table.QueryAbove(filter, std::nullopt);
  ASSERT_TRUE(first.has_value());
  // A row inserted ahead of the cursor is visible to the next call — the
  // "current state" semantics streaming queries build on.
  table.ExecuteWrite(MakeWrite(WriteKind::kInsert, "P", "r1"));
  auto second = table.QueryAbove(filter, first->row.key);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->row.key.row, "r1");
}

TEST(MemoryTable, MutationCountBumpsOnlyOnSuccess) {
  InMemoryChainTable table;
  const auto before = table.MutationCount();
  table.ExecuteWrite(MakeWrite(WriteKind::kReplace, "P", "missing"));
  EXPECT_EQ(table.MutationCount(), before) << "failed writes do not mutate";
  table.ExecuteWrite(MakeWrite(WriteKind::kInsert, "P", "r"));
  EXPECT_EQ(table.MutationCount(), before + 1);
  table.Retrieve({"P", "r"});
  EXPECT_EQ(table.MutationCount(), before + 1) << "reads do not mutate";
}

}  // namespace
