// Fault-plane tests: scheduler-controlled machine crash/restart and message
// drop/duplication. Covers the crash/restart semantics (halt-style wipe,
// OnCrash/OnRestart hooks, restart-to-initial-state), budget enforcement,
// the delivery faults (drop, duplication via the event-clone registry),
// trace v2 recording, bit-for-bit replay of fault schedules WITHOUT any
// fault configuration, fingerprint integration, the prune_run knob and the
// TestConfig::Validate fault rules.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/systest.h"
#include "samplerepl/harness.h"

namespace {

using systest::BugKind;
using systest::Decision;
using systest::DeliveryFault;
using systest::DeliveryFaultContext;
using systest::Event;
using systest::FaultContext;
using systest::FaultDecision;
using systest::Machine;
using systest::MachineId;
using systest::RoundRobinStrategy;
using systest::Runtime;
using systest::RuntimeOptions;
using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;
using systest::Trace;

struct Ping final : Event {
  explicit Ping(int n) : n(n) {}
  int n;
};

/// Event with a non-copyable member: never registered for cloning, so the
/// fault plane must not offer it for duplication.
struct Uncopyable final : Event {
  Uncopyable() : token(std::make_unique<int>(7)) {}
  std::unique_ptr<int> token;
};

/// Counts everything that happens to it, so tests can observe crash wipes,
/// restarts and duplicated deliveries.
class Prober final : public Machine {
 public:
  Prober() {
    State("Run")
        .On<Ping>(&Prober::OnPing)
        .On<Uncopyable>(&Prober::OnUncopyable);
    SetStart("Run");
  }

  void SetPeer(MachineId peer) { peer_ = peer; }
  void SetSendOnStart(int count) { send_on_start_ = count; }

  int pings_handled = 0;
  int uncopyables_handled = 0;
  int starts = 0;
  int crashes_seen = 0;
  int restarts_seen = 0;
  std::uint64_t volatile_counter = 0;  // reset by OnCrash (in-memory state)
  std::uint64_t durable_counter = 0;   // survives crashes

 protected:
  void OnCrash() override {
    ++crashes_seen;
    volatile_counter = 0;
  }
  void OnRestart() override { ++restarts_seen; }

 private:
  void OnPing(const Ping&) {
    ++pings_handled;
    ++volatile_counter;
    ++durable_counter;
  }
  void OnUncopyable(const Uncopyable&) { ++uncopyables_handled; }

  MachineId peer_;
  int send_on_start_ = 0;
};

// Entry hook counted separately so restart-to-initial-state is observable.
class Restartable final : public Machine {
 public:
  Restartable() {
    State("Boot").OnEntry(&Restartable::OnBoot);
    SetStart("Boot");
  }
  int boots = 0;
  int restarts_seen = 0;

 protected:
  void OnRestart() override { ++restarts_seen; }

 private:
  void OnBoot() { ++boots; }
};

/// Deterministic fault script layered over round-robin scheduling: crashes /
/// restarts / delivery faults fire exactly where the test says.
class ScriptedFaultStrategy final : public systest::SchedulingStrategy {
 public:
  struct StepFault {
    std::uint64_t step;
    FaultDecision::Kind kind;
    MachineId machine;
  };
  struct DeliveryScript {
    std::uint64_t ordinal;
    DeliveryFault fault;
  };

  void PrepareIteration(std::uint64_t iteration,
                        std::uint64_t max_steps) override {
    rr_.PrepareIteration(iteration, max_steps);
  }
  MachineId Next(std::span<const MachineId> enabled,
                 std::uint64_t step) override {
    return rr_.Next(enabled, step);
  }
  bool NextBool() override { return rr_.NextBool(); }
  std::uint64_t NextInt(std::uint64_t bound) override {
    return rr_.NextInt(bound);
  }
  FaultDecision NextFault(const FaultContext& ctx) override {
    for (const StepFault& f : step_faults) {
      if (f.step == ctx.step) return {f.kind, f.machine};
    }
    return {};
  }
  DeliveryFault NextDeliveryFault(const DeliveryFaultContext& ctx) override {
    for (const DeliveryScript& d : delivery_faults) {
      if (d.ordinal == ctx.ordinal) {
        // Honor the runtime's own gating: a duplication the runtime did not
        // offer (no clone, budget out) must not be forced.
        if (d.fault == DeliveryFault::kDuplicate && !ctx.duplicate_allowed) {
          return DeliveryFault::kNone;
        }
        return d.fault;
      }
    }
    return DeliveryFault::kNone;
  }
  [[nodiscard]] std::string Name() const override { return "scripted-fault"; }

  std::vector<StepFault> step_faults;
  std::vector<DeliveryScript> delivery_faults;

 private:
  RoundRobinStrategy rr_;
};

/// Two probers ping-ponging `rounds` times; A (id 1) is crashable.
systest::Harness ProberPair(int rounds, bool crashable = true) {
  return [rounds, crashable](Runtime& rt) {
    const MachineId a = rt.CreateMachine<Prober>("A");
    const MachineId b = rt.CreateMachine<Prober>("B");
    if (crashable) rt.SetCrashable(a);
    for (int i = 0; i < rounds; ++i) {
      rt.SendEvent<Ping>(a, i);
      rt.SendEvent<Ping>(b, i);
    }
  };
}

Prober& ProberAt(Runtime& rt, std::uint64_t id) {
  return *static_cast<Prober*>(rt.FindMachine(MachineId{id}));
}

// ---------------------------------------------------------------------------
// Crash / restart semantics

TEST(FaultPlane, CrashWipesQueueAndDisablesMachine) {
  ScriptedFaultStrategy strategy;
  strategy.step_faults = {{0, FaultDecision::Kind::kCrash, MachineId{1}}};
  RuntimeOptions options;
  options.max_crashes = 1;
  Runtime rt(strategy, options);
  ProberPair(3)(rt);

  ASSERT_EQ(rt.FindMachine(MachineId{1})->QueueLength(), 3u);
  while (rt.Step()) {
  }
  const Prober& a = ProberAt(rt, 1);
  EXPECT_TRUE(a.Crashed());
  EXPECT_EQ(a.pings_handled, 0);  // crashed at step 0: queue wiped unhandled
  EXPECT_EQ(a.crashes_seen, 1);
  EXPECT_EQ(a.QueueLength(), 0u);
  EXPECT_EQ(ProberAt(rt, 2).pings_handled, 3);  // B unaffected
  EXPECT_EQ(rt.GetFaultStats().crashes, 1u);
}

TEST(FaultPlane, DeliveriesToCrashedMachineAreDropped) {
  ScriptedFaultStrategy strategy;
  strategy.step_faults = {{0, FaultDecision::Kind::kCrash, MachineId{1}}};
  RuntimeOptions options;
  options.max_crashes = 1;
  Runtime rt(strategy, options);
  ProberPair(1)(rt);
  while (rt.Step()) {
  }
  // Post-crash sends vanish silently, like sends to a halted machine.
  rt.SendEvent<Ping>(MachineId{1}, 99);
  EXPECT_EQ(ProberAt(rt, 1).QueueLength(), 0u);
}

TEST(FaultPlane, RestartRunsStartEntryWithDurableState) {
  ScriptedFaultStrategy strategy;
  strategy.step_faults = {{2, FaultDecision::Kind::kCrash, MachineId{1}},
                          {4, FaultDecision::Kind::kRestart, MachineId{1}}};
  RuntimeOptions options;
  options.max_crashes = 1;
  options.max_restarts = 1;
  Runtime rt(strategy, options);
  rt.CreateMachine<Restartable>("R");
  rt.SetCrashable(MachineId{1});
  // Keep a second machine stepping so the scheduler reaches steps 2 and 4.
  const MachineId b = rt.CreateMachine<Prober>("B");
  for (int i = 0; i < 8; ++i) rt.SendEvent<Ping>(b, i);
  while (rt.Step()) {
  }
  auto& r = *static_cast<Restartable*>(rt.FindMachine(MachineId{1}));
  EXPECT_FALSE(r.Crashed());
  EXPECT_EQ(r.boots, 2);  // initial start + post-restart start
  EXPECT_EQ(r.restarts_seen, 1);
  EXPECT_EQ(r.RestartCount(), 1u);
  EXPECT_EQ(rt.GetFaultStats().restarts, 1u);
}

TEST(FaultPlane, OnCrashSeparatesVolatileFromDurableState) {
  ScriptedFaultStrategy strategy;
  // Steps 0/1 start A and B; step 2 lets A handle one ping; the crash lands
  // at the step-3 boundary with state to lose.
  strategy.step_faults = {{3, FaultDecision::Kind::kCrash, MachineId{1}}};
  RuntimeOptions options;
  options.max_crashes = 1;
  Runtime rt(strategy, options);
  ProberPair(2)(rt);
  while (rt.Step()) {
  }
  const Prober& a = ProberAt(rt, 1);
  EXPECT_GT(a.durable_counter, 0u);      // survives the crash
  EXPECT_EQ(a.volatile_counter, 0u);     // wiped by OnCrash
}

TEST(FaultPlane, CrashBudgetIsEnforcedPerExecution) {
  const TestConfig config = [] {
    TestConfig c;
    c.iterations = 50;
    c.max_steps = 200;
    c.strategy = "random";
    c.seed = 11;
    c.max_crashes = 1;
    c.max_restarts = 1;
    c.fault_odds_den = 2;  // aggressive odds: faults fire almost every run
    return c;
  }();
  config.Validate();
  std::uint64_t max_crashes_seen = 0;
  TestingEngine engine(config, ProberPair(5));
  engine.SetIterationCallback(
      [&](std::uint64_t, const systest::ExecutionResult& result) {
        max_crashes_seen = std::max(max_crashes_seen, result.faults.crashes);
        EXPECT_LE(result.faults.crashes, 1u);
        EXPECT_LE(result.faults.restarts, 1u);
      });
  const TestReport report = engine.Run();
  EXPECT_TRUE(report.faults);
  EXPECT_EQ(max_crashes_seen, 1u);  // odds 1/2: some execution crashed
  EXPECT_GT(report.injected_faults.crashes, 0u);
}

TEST(FaultPlane, NoCrashableMachinesMeansNoFaultQueries) {
  // Budgets set but nothing opted in: behavior (and the RNG stream) must be
  // bit-for-bit identical to a fault-free run.
  TestConfig config;
  config.iterations = 4;
  config.max_steps = 200;
  config.strategy = "random";
  config.seed = 3;
  std::vector<std::string> plain_traces;
  {
    TestingEngine engine(config, ProberPair(3, /*crashable=*/false));
    engine.SetIterationCallback(
        [&](std::uint64_t, const systest::ExecutionResult& result) {
          plain_traces.push_back(result.trace.ToString());
        });
    (void)engine.Run();
  }
  config.max_crashes = 2;
  config.max_restarts = 2;
  std::vector<std::string> fault_traces;
  {
    TestingEngine engine(config, ProberPair(3, /*crashable=*/false));
    engine.SetIterationCallback(
        [&](std::uint64_t, const systest::ExecutionResult& result) {
          fault_traces.push_back(result.trace.ToString());
        });
    (void)engine.Run();
  }
  EXPECT_EQ(plain_traces, fault_traces);
}

// ---------------------------------------------------------------------------
// Delivery faults

TEST(FaultPlane, DropLosesExactlyTheScriptedDelivery) {
  ScriptedFaultStrategy strategy;
  strategy.delivery_faults = {{1, DeliveryFault::kDrop}};
  RuntimeOptions options;
  options.drop_probability_den = 4;  // enables the choice point
  Runtime rt(strategy, options);
  // Machine-to-machine traffic: A sends B three pings via a relay machine
  // pattern — simplest is B sending to A. Use harness-built pair but drive
  // sends from a machine: the harness SendEvents are NOT eligible (no
  // sender), so route through a sender machine.
  const MachineId a = rt.CreateMachine<Prober>("A");
  struct Sender final : Machine {
    explicit Sender(MachineId to) : to(to) {
      State("S").OnEntry(&Sender::Go);
      SetStart("S");
    }
    void Go() {
      for (int i = 0; i < 3; ++i) Send<Ping>(to, i);
    }
    MachineId to;
  };
  rt.CreateMachine<Sender>("S", a);
  while (rt.Step()) {
  }
  // Ordinal 1 (the second machine-to-machine delivery) was dropped.
  EXPECT_EQ(ProberAt(rt, 1).pings_handled, 2);
  EXPECT_EQ(rt.GetFaultStats().drops, 1u);
  EXPECT_TRUE(rt.GetTrace().HasFaultDecisions());
}

TEST(FaultPlane, DuplicationDeliversTwiceAndSkipsUncopyableEvents) {
  ScriptedFaultStrategy strategy;
  strategy.delivery_faults = {{0, DeliveryFault::kDuplicate},
                              {1, DeliveryFault::kDuplicate}};
  RuntimeOptions options;
  options.max_duplications = 8;
  Runtime rt(strategy, options);
  const MachineId a = rt.CreateMachine<Prober>("A");
  struct Sender final : Machine {
    explicit Sender(MachineId to) : to(to) {
      State("S").OnEntry(&Sender::Go);
      SetStart("S");
    }
    void Go() {
      Send<Ping>(to, 0);        // ordinal 0: duplicated
      Send<Uncopyable>(to);     // ordinal 1: no clone fn -> not offered
    }
    MachineId to;
  };
  rt.CreateMachine<Sender>("S", a);
  while (rt.Step()) {
  }
  const Prober& pa = ProberAt(rt, 1);
  EXPECT_EQ(pa.pings_handled, 2);        // one send, two deliveries
  EXPECT_EQ(pa.uncopyables_handled, 1);  // uncopyable never duplicated
  EXPECT_EQ(rt.GetFaultStats().duplications, 1u);
}

TEST(FaultPlane, SelfSendsAndHarnessSendsAreExempt) {
  // Drop EVERYTHING eligible: self-sends and harness setup sends must still
  // arrive or the machinery would break internal control flow.
  struct SelfLooper final : Machine {
    SelfLooper() {
      State("S").OnEntry(&SelfLooper::Kick).On<Ping>(&SelfLooper::OnPing);
      SetStart("S");
    }
    void Kick() { Send<Ping>(Id(), 0); }
    void OnPing(const Ping& p) {
      ++handled;
      if (p.n < 3) Send<Ping>(Id(), p.n + 1);
    }
    int handled = 0;
  };
  ScriptedFaultStrategy strategy;
  for (std::uint64_t i = 0; i < 64; ++i) {
    strategy.delivery_faults.push_back({i, DeliveryFault::kDrop});
  }
  RuntimeOptions options;
  options.drop_probability_den = 2;
  Runtime rt(strategy, options);
  rt.CreateMachine<SelfLooper>("L");
  rt.SendEvent<Ping>(MachineId{1}, 0);  // harness send: exempt
  while (rt.Step()) {
  }
  auto& looper = *static_cast<SelfLooper*>(rt.FindMachine(MachineId{1}));
  // Two full chains (harness kick + entry kick), nothing dropped: 8 pings.
  EXPECT_EQ(looper.handled, 8);
  EXPECT_EQ(rt.GetFaultStats().drops, 0u);
}

// ---------------------------------------------------------------------------
// Trace v2 + replay

TEST(FaultPlane, FaultDecisionsRecordedAndSerializedAsV2) {
  ScriptedFaultStrategy strategy;
  strategy.step_faults = {{1, FaultDecision::Kind::kCrash, MachineId{1}},
                          {3, FaultDecision::Kind::kRestart, MachineId{1}}};
  RuntimeOptions options;
  options.max_crashes = 1;
  options.max_restarts = 1;
  Runtime rt(strategy, options);
  ProberPair(3)(rt);
  while (rt.Step()) {
  }
  const Trace& trace = rt.GetTrace();
  ASSERT_TRUE(trace.HasFaultDecisions());
  const std::string serialized = trace.Serialize();
  EXPECT_EQ(serialized.rfind("systest-trace v2 ", 0), 0u);
  // Round-trips exactly, including the fault decisions.
  const Trace reloaded = Trace::Deserialize(serialized);
  EXPECT_EQ(reloaded, trace);
  EXPECT_EQ(trace.DescribeFaults(), "crash m1@s1; restart m1@s3");
}

TEST(FaultPlane, ReplayReappliesFaultScheduleWithoutFaultConfig) {
  // Explore with faults until the samplerepl crash-recovery bug fires, then
  // replay the witness through a config with NO fault fields set: the trace
  // alone must reproduce the same bug at the same step count, and the
  // re-recorded trace must be bit-identical (the acceptance criterion).
  samplerepl::HarnessOptions hopts;
  hopts.crashable_nodes = true;
  hopts.liveness_monitor = false;
  const systest::Harness harness = samplerepl::MakeHarness(hopts);

  TestConfig explore = samplerepl::DefaultConfig();
  explore.iterations = 5'000;
  explore.max_crashes = 1;
  explore.max_restarts = 1;
  TestingEngine explorer(explore, harness);
  const TestReport found = explorer.Run();
  ASSERT_TRUE(found.bug_found) << "crash-recovery bug not found in budget";
  ASSERT_EQ(found.bug_kind, BugKind::kSafety);
  ASSERT_TRUE(found.bug_trace.HasFaultDecisions());

  TestConfig replay_config = samplerepl::DefaultConfig();  // NO fault fields
  TestingEngine replayer(replay_config, harness);
  const TestReport replayed = replayer.Replay(found.bug_trace);
  EXPECT_TRUE(replayed.bug_found);
  EXPECT_EQ(replayed.bug_kind, found.bug_kind);
  EXPECT_EQ(replayed.bug_message, found.bug_message);
  EXPECT_EQ(replayed.bug_steps, found.bug_steps);
  EXPECT_EQ(replayed.bug_trace, found.bug_trace);  // bit-for-bit
  EXPECT_TRUE(replayed.faults);
  std::uint64_t recorded_crashes = 0;
  for (const Decision& d : found.bug_trace.Decisions()) {
    if (d.kind == Decision::Kind::kCrash) ++recorded_crashes;
  }
  EXPECT_EQ(replayed.injected_faults.crashes, recorded_crashes);
}

TEST(FaultPlane, DropAndDuplicationReplayFromTheTraceAlone) {
  // Record an execution with one drop and one duplication, then replay it
  // through a runtime with NO fault budgets (replay_faults only): the same
  // deliveries must be dropped/duplicated and the re-recorded trace must be
  // identical.
  struct Sender final : Machine {
    explicit Sender(MachineId to) : to(to) {
      State("S").OnEntry(&Sender::Go);
      SetStart("S");
    }
    void Go() {
      for (int i = 0; i < 4; ++i) Send<Ping>(to, i);
    }
    MachineId to;
  };
  auto harness = [](Runtime& rt) {
    const MachineId a = rt.CreateMachine<Prober>("A");
    rt.CreateMachine<Sender>("S", a);
  };

  Trace recorded;
  int recorded_pings = 0;
  {
    ScriptedFaultStrategy strategy;
    strategy.delivery_faults = {{0, DeliveryFault::kDuplicate},
                                {2, DeliveryFault::kDrop}};
    RuntimeOptions options;
    options.drop_probability_den = 4;
    options.max_duplications = 1;
    Runtime rt(strategy, options);
    harness(rt);
    while (rt.Step()) {
    }
    recorded = rt.GetTrace();
    recorded_pings = ProberAt(rt, 1).pings_handled;
    ASSERT_EQ(rt.GetFaultStats().drops, 1u);
    ASSERT_EQ(rt.GetFaultStats().duplications, 1u);
    ASSERT_EQ(recorded_pings, 4);  // 4 sent + 1 dup - 1 drop
  }
  {
    systest::ReplayStrategy strategy(recorded);
    strategy.PrepareIteration(0, 10'000);
    RuntimeOptions options;  // NO fault budgets
    options.replay_faults = true;
    Runtime rt(strategy, options);
    harness(rt);
    while (rt.Step()) {
    }
    EXPECT_EQ(ProberAt(rt, 1).pings_handled, recorded_pings);
    EXPECT_EQ(rt.GetFaultStats().drops, 1u);
    EXPECT_EQ(rt.GetFaultStats().duplications, 1u);
    EXPECT_EQ(rt.GetTrace(), recorded);  // bit-for-bit re-record
  }
}

TEST(FaultPlane, ReplayOfFaultFreeTraceStillWorksThroughFaultAwarePath) {
  // The replay runtime always runs with replay_faults on; a fault-free trace
  // must replay exactly as before.
  TestConfig config;
  config.iterations = 1;
  config.max_steps = 200;
  config.strategy = "random";
  config.seed = 9;
  TestingEngine engine(config, ProberPair(3, /*crashable=*/false));
  std::string trace_text;
  engine.SetIterationCallback(
      [&](std::uint64_t, const systest::ExecutionResult& result) {
        trace_text = result.trace.ToString();
      });
  (void)engine.Run();
  const TestReport replayed =
      TestingEngine(config, ProberPair(3, /*crashable=*/false))
          .Replay(Trace::Parse(trace_text));
  EXPECT_FALSE(replayed.bug_found);
  EXPECT_FALSE(replayed.faults);
  // Clean replays re-record the decisions they consumed so callers can check
  // the round trip; a faithful replay reproduces the input bit-for-bit.
  EXPECT_EQ(replayed.bug_trace, Trace::Parse(trace_text));
}

// ---------------------------------------------------------------------------
// Fingerprint integration

TEST(FaultPlane, CrashChangesExecutionFingerprint) {
  auto run_to = [](bool crash, std::uint64_t steps) {
    ScriptedFaultStrategy strategy;
    if (crash) {
      strategy.step_faults = {{1, FaultDecision::Kind::kCrash, MachineId{1}}};
    }
    RuntimeOptions options;
    options.max_crashes = 1;  // SAME options both runs: budget hash aligned
    options.stateful = true;
    auto rt = std::make_unique<Runtime>(strategy, options);
    ProberPair(2)(*rt);
    for (std::uint64_t i = 0; i < steps && rt->Step(); ++i) {
    }
    return rt->ExecutionFingerprint();
  };
  EXPECT_NE(run_to(true, 4), run_to(false, 4));
}

TEST(FaultPlane, IncrementalFingerprintMatchesRecomputeUnderFaults) {
  ScriptedFaultStrategy strategy;
  strategy.step_faults = {{1, FaultDecision::Kind::kCrash, MachineId{1}},
                          {3, FaultDecision::Kind::kRestart, MachineId{1}}};
  RuntimeOptions options;
  options.max_crashes = 1;
  options.max_restarts = 1;
  options.stateful = true;
  options.fingerprint_payloads = true;
  Runtime rt(strategy, options);
  ProberPair(3)(rt);
  do {
    ASSERT_EQ(rt.ExecutionFingerprint(), rt.RecomputeExecutionFingerprint())
        << "at step " << rt.Steps();
  } while (rt.Step());
}

// ---------------------------------------------------------------------------
// prune_run knob (ROADMAP follow-up)

TEST(FaultPlane, PruneRunKnobControlsPruningAggressiveness) {
  TestConfig config;
  config.iterations = 60;
  config.max_steps = 300;
  config.strategy = "random";
  config.seed = 5;
  config.stateful = true;
  config.prune_run = 1;  // prune at the FIRST revisited state
  const TestReport aggressive =
      TestingEngine(config, ProberPair(3, false)).Run();
  config.prune_run = 1'000'000;  // effectively never prune
  const TestReport lenient = TestingEngine(config, ProberPair(3, false)).Run();
  EXPECT_GT(aggressive.pruned_executions, 0u);
  EXPECT_EQ(lenient.pruned_executions, 0u);
  EXPECT_GE(aggressive.pruned_executions, lenient.pruned_executions);
}

// ---------------------------------------------------------------------------
// Validate rules

TEST(FaultPlane, ValidateRejectsBrokenFaultConfigs) {
  TestConfig config;
  config.strategy = "random";
  config.Validate();

  TestConfig restarts_only = config;
  restarts_only.max_restarts = 1;
  EXPECT_THROW(restarts_only.Validate(), std::invalid_argument);

  TestConfig drop_all = config;
  drop_all.drop_probability_den = 1;
  EXPECT_THROW(drop_all.Validate(), std::invalid_argument);

  TestConfig degenerate_odds = config;
  degenerate_odds.max_crashes = 1;
  degenerate_odds.fault_odds_den = 1;
  EXPECT_THROW(degenerate_odds.Validate(), std::invalid_argument);

  TestConfig zero_prune = config;
  zero_prune.stateful = true;
  zero_prune.prune_run = 0;
  EXPECT_THROW(zero_prune.Validate(), std::invalid_argument);

  TestConfig ok = config;
  ok.max_crashes = 2;
  ok.max_restarts = 2;
  ok.drop_probability_den = 16;
  ok.max_duplications = 3;
  ok.Validate();  // no throw
}

}  // namespace
