// Tests for the Azure Service Fabric case study (§5): the fixed model
// converges under failover, the promote-during-copy model bug fires the §5
// role assertion, and the CScale-like pipeline's configuration race is
// detected.
#include <gtest/gtest.h>

#include "core/systest.h"
#include "fabric/harness.h"

namespace {

using fabric::FailoverOptions;
using fabric::MakeFailoverHarness;
using fabric::MakePipelineHarness;
using fabric::PipelineOptions;
using systest::BugKind;
using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;

TestConfig Config(systest::StrategyName strategy, std::uint64_t iterations) {
  TestConfig config = fabric::DefaultConfig(strategy);
  config.iterations = iterations;
  return config;
}

TEST(FabricFailover, FixedModelConvergesUnderDoubleFailover) {
  FailoverOptions options;  // no bugs
  const TestReport report =
      TestingEngine(Config("random", 10'000),
                    MakeFailoverHarness(options))
          .Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

TEST(FabricFailover, FixedModelConvergesUnderPct) {
  FailoverOptions options;
  const TestReport report =
      TestingEngine(Config("pct", 10'000),
                    MakeFailoverHarness(options))
          .Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

TEST(FabricFailover, PromoteDuringCopyFiresRoleAssertion) {
  FailoverOptions options;
  options.bugs.promote_during_copy = true;
  const TestReport report =
      TestingEngine(Config("random", 100'000),
                    MakeFailoverHarness(options))
          .Run();
  ASSERT_TRUE(report.bug_found) << report.Summary();
  EXPECT_EQ(report.bug_kind, BugKind::kSafety);
  EXPECT_NE(report.bug_message.find(
                "only a secondary can be promoted to an active secondary"),
            std::string::npos);
}

TEST(FabricFailover, SingleFailureAlsoConverges) {
  FailoverOptions options;
  options.failures = 1;
  const TestReport report =
      TestingEngine(Config("random", 5'000),
                    MakeFailoverHarness(options))
          .Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

TEST(FabricFailover, FiveReplicasConverge) {
  FailoverOptions options;
  options.replicas = 5;
  const TestReport report =
      TestingEngine(Config("random", 3'000),
                    MakeFailoverHarness(options))
          .Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

TEST(FabricFailover, BugTraceReplaysDeterministically) {
  FailoverOptions options;
  options.bugs.promote_during_copy = true;
  TestingEngine engine(Config("random", 100'000),
                       MakeFailoverHarness(options));
  const TestReport report = engine.Run();
  ASSERT_TRUE(report.bug_found);
  const TestReport replay = engine.Replay(report.bug_trace);
  ASSERT_TRUE(replay.bug_found);
  EXPECT_EQ(replay.bug_message, report.bug_message);
}

TEST(FabricPipeline, FixedAggregatorHandlesConfigRace) {
  PipelineOptions options;
  const TestReport report =
      TestingEngine(Config("random", 5'000),
                    MakePipelineHarness(options))
          .Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

TEST(FabricPipeline, UnguardedConfigIsNullDereference) {
  PipelineOptions options;
  options.bugs.unguarded_pipeline_config = true;
  const TestReport report =
      TestingEngine(Config("random", 100'000),
                    MakePipelineHarness(options))
          .Run();
  ASSERT_TRUE(report.bug_found) << report.Summary();
  EXPECT_NE(report.bug_message.find("null dereference"), std::string::npos);
}

}  // namespace
