// Execution-recycling regression tests: ExecutionRunner's reset-and-reuse
// path (Runtime::SealForReuse / ResetForNextExecution + the event arena) is
// a pure performance optimization — every observable of every execution
// must be bit-for-bit identical to the fresh-Runtime-per-iteration path:
// decision traces, step counts, bug reports, fault schedules, fingerprint
// hit/miss streams, prune points. These tests run the same seeded budgets
// through both paths and compare execution by execution, across the plain,
// faulted, partitioned, stateful-pruned, and mid-execution-create regimes.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "api/scenario_registry.h"
#include "api/strategy_registry.h"
#include "core/systest.h"
#include "samplerepl/harness.h"

namespace {

using systest::BugKind;
using systest::Event;
using systest::ExecutionResult;
using systest::ExecutionRunner;
using systest::FingerprintSet;
using systest::Machine;
using systest::MachineId;
using systest::TestConfig;

TestConfig SmallConfig(std::uint64_t iterations) {
  TestConfig config;
  config.iterations = iterations;
  config.max_steps = 300;
  config.seed = 77;
  config.strategy = "random";
  return config;
}

struct BudgetOutcome {
  std::vector<ExecutionResult> results;
  bool recycled = false;  ///< runner: did the reuse path actually engage?
};

/// Runs `iterations` executions through an ExecutionRunner (the recycling
/// path under test).
BudgetOutcome RunRecycled(const TestConfig& config,
                          const systest::Harness& harness,
                          std::uint64_t iterations) {
  BudgetOutcome out;
  const auto strategy = systest::StrategyRegistry::Instance().Create(
      config.strategy, config.seed, config.strategy_budget);
  FingerprintSet visited(static_cast<std::size_t>(config.max_visited));
  systest::VisitedSet* visited_ptr = config.stateful ? &visited : nullptr;
  ExecutionRunner runner(config, harness, *strategy, nullptr);
  for (std::uint64_t i = 0; i < iterations; ++i) {
    out.results.push_back(runner.RunOne(i, visited_ptr));
  }
  out.recycled = runner.Recycling();
  return out;
}

/// Runs the same budget through the pre-existing fresh-Runtime path.
BudgetOutcome RunFresh(const TestConfig& config,
                       const systest::Harness& harness,
                       std::uint64_t iterations) {
  BudgetOutcome out;
  const auto strategy = systest::StrategyRegistry::Instance().Create(
      config.strategy, config.seed, config.strategy_budget);
  FingerprintSet visited(static_cast<std::size_t>(config.max_visited));
  systest::VisitedSet* visited_ptr = config.stateful ? &visited : nullptr;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    out.results.push_back(systest::RunOneExecution(config, harness, *strategy,
                                                   i, visited_ptr, nullptr));
  }
  return out;
}

/// Full per-execution comparison — the recycling contract.
void ExpectBitForBit(const BudgetOutcome& recycled,
                     const BudgetOutcome& fresh) {
  ASSERT_EQ(recycled.results.size(), fresh.results.size());
  for (std::size_t i = 0; i < recycled.results.size(); ++i) {
    const ExecutionResult& r = recycled.results[i];
    const ExecutionResult& f = fresh.results[i];
    EXPECT_EQ(r.trace, f.trace) << "iteration " << i;
    EXPECT_EQ(r.steps, f.steps) << "iteration " << i;
    EXPECT_EQ(r.hit_step_bound, f.hit_step_bound) << "iteration " << i;
    EXPECT_EQ(r.bug_found, f.bug_found) << "iteration " << i;
    EXPECT_EQ(r.bug_kind, f.bug_kind) << "iteration " << i;
    EXPECT_EQ(r.bug_message, f.bug_message) << "iteration " << i;
    EXPECT_EQ(r.pruned, f.pruned) << "iteration " << i;
    EXPECT_EQ(r.fingerprint_hits, f.fingerprint_hits) << "iteration " << i;
    EXPECT_EQ(r.fingerprint_misses, f.fingerprint_misses) << "iteration " << i;
    EXPECT_EQ(r.faults, f.faults) << "iteration " << i;
    EXPECT_EQ(r.fingerprint_trail, f.fingerprint_trail) << "iteration " << i;
  }
}

TEST(RecycleTest, SampleReplHarnessEngagesRecycling) {
  const TestConfig config = SmallConfig(3);
  const auto harness = samplerepl::MakeHarness(samplerepl::HarnessOptions{});
  const BudgetOutcome out = RunRecycled(config, harness, 3);
  EXPECT_TRUE(out.recycled)
      << "every samplerepl harness machine/monitor declares kReusableRuntime, "
         "so the seal must succeed";
}

TEST(RecycleTest, PlainBudgetIsBitForBit) {
  const TestConfig config = SmallConfig(200);
  const auto harness = samplerepl::MakeHarness(samplerepl::HarnessOptions{});
  const BudgetOutcome recycled = RunRecycled(config, harness, 200);
  ASSERT_TRUE(recycled.recycled);
  ExpectBitForBit(recycled, RunFresh(config, harness, 200));
}

TEST(RecycleTest, CrashRestartBudgetIsBitForBit) {
  // Reuse after a machine crashed (and possibly restarted) mid-execution:
  // the reset must restore crashed/restart state AND the sealed crashable
  // baseline, or the next execution's fault plane diverges.
  TestConfig config = SmallConfig(300);
  config.max_crashes = 2;
  config.max_restarts = 2;
  config.drop_probability_den = 16;
  config.max_duplications = 2;
  config.fault_odds_den = 8;
  samplerepl::HarnessOptions options;
  options.crashable_nodes = true;
  options.liveness_monitor = false;
  const auto harness = samplerepl::MakeHarness(options);
  const BudgetOutcome recycled = RunRecycled(config, harness, 300);
  ASSERT_TRUE(recycled.recycled);
  systest::Runtime::FaultStats total;
  bool crashed_at_end = false;
  for (const ExecutionResult& result : recycled.results) {
    total += result.faults;
    crashed_at_end |= result.faults.crashes > result.faults.restarts;
  }
  // The comparison only proves the crash path if crashes actually fired —
  // including executions that END with a machine still crashed.
  ASSERT_GT(total.crashes, 0u);
  ASSERT_GT(total.restarts, 0u);
  ASSERT_TRUE(crashed_at_end);
  ExpectBitForBit(recycled, RunFresh(config, harness, 300));
}

TEST(RecycleTest, PartitionBudgetIsBitForBit) {
  // Reuse after executions that end with a partition still installed: the
  // reset must clear partitioned_ flags and the partition counters.
  TestConfig config = SmallConfig(300);
  config.max_partitions = 2;
  config.partition_heal_den = 0;  // heals off: installed partitions persist
  config.fault_odds_den = 8;
  samplerepl::HarnessOptions options;
  options.partitionable_nodes = true;
  options.liveness_monitor = false;
  const auto harness = samplerepl::MakeHarness(options);
  const BudgetOutcome recycled = RunRecycled(config, harness, 300);
  ASSERT_TRUE(recycled.recycled);
  systest::Runtime::FaultStats total;
  bool partitioned_at_end = false;
  for (const ExecutionResult& result : recycled.results) {
    total += result.faults;
    partitioned_at_end |= result.faults.partitions > result.faults.heals;
  }
  ASSERT_GT(total.partitions, 0u);
  ASSERT_TRUE(partitioned_at_end);
  ExpectBitForBit(recycled, RunFresh(config, harness, 300));
}

TEST(RecycleTest, StatefulPrunedBudgetIsBitForBit) {
  // Stateful exploration recycles too: the world fingerprint after a reset
  // must equal the post-harness fingerprint of a fresh Runtime (same initial
  // visited-set insert), and mid-execution prunes must fire at the same
  // step with the same hit/miss stream.
  TestConfig config = SmallConfig(250);
  config.stateful = true;
  config.fingerprint_payloads = true;
  config.prune_run = 10;
  config.record_fingerprint_trail = true;
  const auto harness = samplerepl::MakeHarness(samplerepl::HarnessOptions{});
  const BudgetOutcome recycled = RunRecycled(config, harness, 250);
  ASSERT_TRUE(recycled.recycled);
  std::uint64_t pruned = 0;
  for (const ExecutionResult& result : recycled.results) {
    pruned += result.pruned ? 1 : 0;
  }
  ASSERT_GT(pruned, 0u) << "prune_run too large to exercise mid-execution "
                           "pruning under reuse";
  ExpectBitForBit(recycled, RunFresh(config, harness, 250));
}

TEST(RecycleTest, RecycledBugTraceReplays) {
  // A witness found on the recycled path must replay through the ordinary
  // (never-recycled, logging-on) replay engine.
  TestConfig config = SmallConfig(2'000);
  samplerepl::HarnessOptions options;
  options.bugs.non_unique_replica_count = true;  // §2.2 safety bug
  const auto harness = samplerepl::MakeHarness(options);
  const BudgetOutcome out = RunRecycled(config, harness, 2'000);
  ASSERT_TRUE(out.recycled);
  const ExecutionResult* bug = nullptr;
  for (const ExecutionResult& result : out.results) {
    if (result.bug_found) {
      bug = &result;
      break;
    }
  }
  ASSERT_NE(bug, nullptr) << "budget too small to find the seeded safety bug";
  EXPECT_EQ(bug->bug_kind, BugKind::kSafety);
  systest::TestingEngine replayer(config, harness);
  const systest::TestReport replayed = replayer.Replay(bug->trace);
  EXPECT_TRUE(replayed.bug_found);
  EXPECT_EQ(replayed.bug_kind, bug->bug_kind);
  EXPECT_EQ(replayed.bug_message, bug->bug_message);
}

TEST(RecycleTest, EveryRegisteredScenarioRecyclesBitForBit) {
  // Cross-domain sweep: every scenario in the catalog (samplerepl, vnext,
  // mtable, fabric, chaintable, race) must (a) engage the recycling path —
  // all of their harness-time machines/monitors opt in — and (b) stay
  // bit-for-bit against the fresh path under its own default config,
  // including the scenarios whose defaults budget fault-plane crashes.
  for (const systest::api::Scenario* scenario :
       systest::api::ScenarioRegistry::Instance().All()) {
    SCOPED_TRACE(scenario->name);
    const systest::Harness harness = scenario->make(systest::api::ParamMap{});
    TestConfig config = scenario->default_config();
    config.iterations = 10;
    const BudgetOutcome recycled = RunRecycled(config, harness, 10);
    EXPECT_TRUE(recycled.recycled)
        << scenario->name << ": a harness-time machine or monitor lost its "
        << "kReusableRuntime opt-in";
    ExpectBitForBit(recycled, RunFresh(config, harness, 10));
  }
}

// ---- opt-in contract ----

struct PokeEvent final : Event {};

/// Deliberately NOT kReusableRuntime: one such machine anywhere in the
/// harness must veto the seal for the whole Runtime.
class NonReusableMachine final : public Machine {
 public:
  NonReusableMachine() {
    State("Idle").OnEntry(&NonReusableMachine::OnStart).Ignore<PokeEvent>();
    SetStart("Idle");
  }

 private:
  void OnStart() { Send<PokeEvent>(Id()); }
};

TEST(RecycleTest, NonReusableMachineVetoesTheSeal) {
  const TestConfig config = SmallConfig(20);
  const systest::Harness harness = [](systest::Runtime& rt) {
    rt.CreateMachine<NonReusableMachine>("Legacy");
  };
  const BudgetOutcome recycled = RunRecycled(config, harness, 20);
  EXPECT_FALSE(recycled.recycled);
  ExpectBitForBit(recycled, RunFresh(config, harness, 20));
}

/// Reusable machine that creates a fresh child machine mid-execution every
/// run — the reset must truncate the children so ids realign, and the next
/// execution's Create must observe the identical id sequence.
class SpawnerMachine final : public Machine {
 public:
  static constexpr bool kReusableRuntime = true;

  SpawnerMachine() {
    State("Run").OnEntry(&SpawnerMachine::OnStart).On<PokeEvent>(
        &SpawnerMachine::OnPoke);
    SetStart("Run");
  }

 private:
  void OnReset() override { spawned_ = 0; }

  void OnStart() { Send<PokeEvent>(Id()); }
  void OnPoke() {
    if (spawned_ < 2 && NondetBool()) {
      ++spawned_;
      const MachineId child =
          Create<NonReusableMachine>("Child");  // mid-execution: reusability
      Send<PokeEvent>(child);                   // of children is irrelevant
      Send<PokeEvent>(Id());
    }
  }

  int spawned_ = 0;
};

TEST(RecycleTest, MidExecutionMachinesAreTruncatedAndIdsRealign) {
  const TestConfig config = SmallConfig(100);
  const systest::Harness harness = [](systest::Runtime& rt) {
    rt.CreateMachine<SpawnerMachine>("Spawner");
  };
  const BudgetOutcome recycled = RunRecycled(config, harness, 100);
  ASSERT_TRUE(recycled.recycled)
      << "only HARNESS-time machines participate in the seal; mid-execution "
         "creates must not veto it";
  ExpectBitForBit(recycled, RunFresh(config, harness, 100));
}

}  // namespace
