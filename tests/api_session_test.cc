// TestSession facade tests: parity with the engines it subsumes, replay,
// parallel/portfolio modes, observers and reporters — plus the golden-trace
// guard proving the facade adds NO scheduling perturbation: the PR 2 golden
// traces (captured before the API layer existed, see
// tests/core_golden_trace_test.cc) must be byte-identical when the same
// seeds are driven through TestSession.
//
// This file also registers its own scenario through the public
// SYSTEST_REGISTER_SCENARIO macro — the exact path a third-party harness
// author takes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/reporters.h"
#include "api/scenario_registry.h"
#include "api/session.h"
#include "core/systest.h"

namespace {

using systest::Event;
using systest::Machine;
using systest::MachineId;
using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;
using systest::api::IterationInfo;
using systest::api::ParamMap;
using systest::api::RunObserver;
using systest::api::Scenario;
using systest::api::ScenarioRegistry;
using systest::api::SessionConfig;
using systest::api::SessionReport;
using systest::api::TestSession;

// ---------------------------------------------------------------------------
// The golden ping-pong harness (identical to core_golden_trace_test.cc),
// registered as a scenario via the public macro.

struct GoldenBall final : Event {
  explicit GoldenBall(int n) : n(n) {}
  int n;
};

class GoldenPaddle final : public Machine {
 public:
  explicit GoldenPaddle(int rounds) : rounds_(rounds) {
    State("Play").OnEntry(&GoldenPaddle::OnStart).On<GoldenBall>(&GoldenPaddle::OnBall);
    SetStart("Play");
  }

  void SetPeer(MachineId peer) { peer_ = peer; }
  void Serve() { serve_ = true; }

 private:
  void OnStart() {
    if (serve_) {
      Send<GoldenBall>(peer_, 0);
    }
  }
  void OnBall(const GoldenBall& ball) {
    if (ball.n >= rounds_) return;
    if (NondetBool()) {
      (void)NondetInt(5);
    }
    Send<GoldenBall>(peer_, ball.n + 1);
  }

  MachineId peer_;
  int rounds_;
  bool serve_ = false;
};

SYSTEST_REGISTER_SCENARIO(test_golden_pingpong) {
  Scenario s;
  s.name = "test-golden-pingpong";
  s.description = "golden-trace ping-pong harness (test-only)";
  s.tags = {"test"};
  s.params = {{"rounds", "ping-pong rounds (default 6)"}};
  s.make = [](const ParamMap& params) -> systest::Harness {
    const int rounds = static_cast<int>(params.GetUint("rounds", 6));
    return [rounds](systest::Runtime& rt) {
      auto a = rt.CreateMachine<GoldenPaddle>("A", rounds);
      auto b = rt.CreateMachine<GoldenPaddle>("B", rounds);
      auto* pa = static_cast<GoldenPaddle*>(rt.FindMachine(a));
      auto* pb = static_cast<GoldenPaddle*>(rt.FindMachine(b));
      pa->SetPeer(b);
      pb->SetPeer(a);
      pb->Serve();
    };
  };
  s.default_config = [] {
    TestConfig config;
    config.iterations = 3;
    config.max_steps = 500;
    config.seed = 7;
    return config;
  };
  return s;
}

// ---------------------------------------------------------------------------
// Observers used throughout.

/// Collects the serialized trace of every completed execution.
class TraceCollector final : public RunObserver {
 public:
  [[nodiscard]] bool WantsIterations() const override { return true; }
  void OnIteration(const IterationInfo& info) override {
    traces_.push_back(info.result.trace.ToString());
  }
  [[nodiscard]] const std::vector<std::string>& Traces() const {
    return traces_;
  }

 private:
  std::vector<std::string> traces_;
};

class LifecycleProbe final : public RunObserver {
 public:
  int starts = 0, iterations = 0, bugs = 0, finishes = 0;
  std::string mode;

  void OnStart(const systest::api::SessionStartInfo& info) override {
    ++starts;
    mode = info.mode;
  }
  [[nodiscard]] bool WantsIterations() const override { return true; }
  void OnIteration(const IterationInfo&) override { ++iterations; }
  void OnBug(const TestReport&) override { ++bugs; }
  void OnFinish(const SessionReport&) override { ++finishes; }
};

/// FNV-1a 64-bit (same as core_golden_trace_test.cc).
std::string Fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

std::vector<std::string> SessionTraces(SessionConfig config) {
  TraceCollector collector;
  TestSession session(std::move(config));
  session.AddObserver(&collector);
  (void)session.Run();
  return collector.Traces();
}

// ---------------------------------------------------------------------------
// Golden-trace guard: the PR 2 goldens, driven through TestSession.

TEST(GoldenThroughSession, PingPongRandom) {
  SessionConfig config;
  config.scenario = "test-golden-pingpong";
  config.strategy = "random";  // seed 7 from the scenario default
  const auto traces = SessionTraces(config);
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0],
            "s1;s2;s1;b0;s2;b0;s1;b1;i3/5;s2;b1;i0/5;s1;b1;i0/5;s2;b0;s1");
  EXPECT_EQ(traces[2], "s1;s2;s1;b0;s2;b0;s1;b0;s2;b0;s1;b0;s2;b0;s1");
}

TEST(GoldenThroughSession, PingPongPct) {
  SessionConfig config;
  config.scenario = "test-golden-pingpong";
  config.strategy = "pct";
  config.strategy_budget = 2;
  const auto traces = SessionTraces(config);
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0],
            "s1;s2;s1;b1;i2/5;s2;b0;s1;b1;i3/5;s2;b0;s1;b1;i0/5;s2;b0;s1");
  EXPECT_EQ(traces[2],
            "s2;s1;s1;b1;i0/5;s2;b0;s1;b0;s2;b1;i2/5;s1;b0;s2;b0;s1");
}

TEST(GoldenThroughSession, PingPongDelayBounded) {
  SessionConfig config;
  config.scenario = "test-golden-pingpong";
  config.strategy = "delay-bounded(2)";  // budget via the name suffix
  const auto traces = SessionTraces(config);
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0],
            "s1;s2;s1;b0;s2;b0;s1;b1;i2/5;s2;b0;s1;b1;i3/5;s2;b0;s1");
  EXPECT_EQ(traces[2],
            "s1;s2;s1;b0;s2;b0;s1;b1;i0/5;s2;b0;s1;b0;s2;b1;i2/5;s1");
}

TEST(GoldenThroughSession, PingPongRoundRobin) {
  SessionConfig config;
  config.scenario = "test-golden-pingpong";
  config.strategy = "round-robin";
  config.seed = 3;
  const auto traces = SessionTraces(config);
  ASSERT_EQ(traces.size(), 3u);
  const std::string expected =
      "s2;s1;s1;b1;i1/5;s2;b1;i3/5;s1;b1;i0/5;s2;b1;i2/5;s1;b1;i4/5;s2;"
      "b1;i1/5;s1";
  EXPECT_EQ(traces[0], expected);
  EXPECT_EQ(traces[2], expected);
}

TEST(GoldenThroughSession, SampleReplCleanFingerprints) {
  struct Row {
    const char* strategy;
    std::uint64_t seed;
    std::size_t size;
    const char* fnv;
  };
  // The PR 2 goldens from core_golden_trace_test.cc, captured pre-refactor.
  const Row rows[] = {
      {"random", 2016, 543, "330a1ff9c4fddfe7"},
      {"pct(2)", 2016, 8296, "97470e6a0ffe6631"},
      {"delay-bounded(2)", 2016, 8657, "88e5a3e7f0b9913c"},
      {"round-robin", 5, 417, "bf0a786a79230889"},
  };
  for (const Row& row : rows) {
    SCOPED_TRACE(row.strategy);
    SessionConfig config;
    config.scenario = "samplerepl-fixed";
    config.strategy = row.strategy;
    config.seed = row.seed;
    config.iterations = 1;
    config.max_steps = 2000;
    const auto traces = SessionTraces(config);
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_EQ(traces[0].size(), row.size);
    EXPECT_EQ(Fnv1a(traces[0]), row.fnv);
  }
}

TEST(GoldenThroughSession, SampleReplBuggyFingerprint) {
  SessionConfig config;
  config.scenario = "samplerepl-safety";
  config.strategy = "random";
  config.seed = 2016;
  config.iterations = 8;
  config.max_steps = 2000;
  config.stop_on_first_bug = false;  // scan all 8 like the golden capture
  const auto traces = SessionTraces(config);
  ASSERT_EQ(traces.size(), 8u);
  std::string combined;
  for (const std::string& trace : traces) {
    combined += trace;
    combined += '|';
  }
  EXPECT_EQ(combined.size(), 3656u);
  EXPECT_EQ(Fnv1a(combined), "476cf8364f416f59");
}

// ---------------------------------------------------------------------------
// Parity: a serial TestSession must equal TestingEngine exactly.

TEST(SessionParity, SerialSessionMatchesTestingEngineBitForBit) {
  const Scenario& scenario = ScenarioRegistry::Instance().Get("race");
  const TestConfig config = scenario.default_config();
  const TestReport direct =
      TestingEngine(config, scenario.make(ParamMap{})).Run();

  SessionConfig sc;
  sc.scenario = "race";
  const SessionReport session = TestSession(sc).Run();

  ASSERT_TRUE(direct.bug_found);
  ASSERT_TRUE(session.report.bug_found);
  EXPECT_EQ(session.report.bug_kind, direct.bug_kind);
  EXPECT_EQ(session.report.bug_message, direct.bug_message);
  EXPECT_EQ(session.report.bug_iteration, direct.bug_iteration);
  EXPECT_EQ(session.report.ndc, direct.ndc);
  EXPECT_EQ(session.report.bug_steps, direct.bug_steps);
  EXPECT_EQ(session.report.executions, direct.executions);
  EXPECT_EQ(session.report.total_steps, direct.total_steps);
  EXPECT_EQ(session.report.bug_trace, direct.bug_trace);
  EXPECT_EQ(session.report.strategy_name, direct.strategy_name);
}

TEST(SessionParity, ReplayReproducesTheRecordedBug) {
  SessionConfig explore;
  explore.scenario = "race";
  const SessionReport found = TestSession(explore).Run();
  ASSERT_TRUE(found.report.bug_found);

  SessionConfig replay;
  replay.scenario = "race";
  replay.replay_trace = found.report.bug_trace;
  const SessionReport replayed = TestSession(replay).Run();
  EXPECT_EQ(replayed.mode, "replay");
  ASSERT_TRUE(replayed.report.bug_found);
  EXPECT_TRUE(replayed.replay_verified);
  EXPECT_EQ(replayed.report.bug_message, found.report.bug_message);
  EXPECT_EQ(replayed.report.bug_kind, found.report.bug_kind);
}

// ---------------------------------------------------------------------------
// Parallel and portfolio modes through the facade.

TEST(SessionModes, ParallelSessionFindsBugAndVerifiesReplay) {
  SessionConfig config;
  config.scenario = "race";
  config.threads = 4;
  const SessionReport report = TestSession(config).Run();
  EXPECT_EQ(report.mode, "parallel");
  ASSERT_EQ(report.workers.size(), 4u);
  ASSERT_TRUE(report.report.bug_found);
  EXPECT_GE(report.winning_worker, 0);
  EXPECT_TRUE(report.replay_verified);
  EXPECT_FALSE(report.plan.empty());
  EXPECT_FALSE(report.BreakdownTable().empty());
}

TEST(SessionModes, PortfolioSessionRacesTheRotation) {
  SessionConfig config;
  config.scenario = "race";
  config.strategy = "portfolio";
  config.threads = 6;
  const SessionReport report = TestSession(config).Run();
  EXPECT_EQ(report.mode, "portfolio");
  ASSERT_EQ(report.workers.size(), 6u);
  ASSERT_TRUE(report.report.bug_found);
  EXPECT_TRUE(report.replay_verified);
}

// ---------------------------------------------------------------------------
// Observers and reporters.

TEST(SessionObservers, LifecycleHooksFireInOrder) {
  LifecycleProbe probe;
  SessionConfig config;
  config.scenario = "race";
  TestSession session(config);
  session.AddObserver(&probe);
  const SessionReport report = session.Run();
  EXPECT_EQ(probe.starts, 1);
  EXPECT_EQ(probe.mode, "serial");
  EXPECT_EQ(probe.iterations,
            static_cast<int>(report.report.executions));
  EXPECT_EQ(probe.bugs, 1);
  EXPECT_EQ(probe.finishes, 1);
}

TEST(SessionObservers, ParallelIterationEventsAreSerialized) {
  LifecycleProbe probe;
  SessionConfig config;
  config.scenario = "samplerepl-fixed";
  config.iterations = 64;
  config.threads = 4;
  TestSession session(config);
  session.AddObserver(&probe);
  const SessionReport report = session.Run();
  EXPECT_FALSE(report.report.bug_found);
  EXPECT_EQ(probe.iterations, 64);
  EXPECT_EQ(probe.bugs, 0);
}

TEST(SessionReporters, JsonReporterEmitsMachineReadableSummary) {
  systest::api::JsonReporter reporter(stdout);
  SessionConfig config;
  config.scenario = "race";
  TestSession session(config);
  session.AddObserver(&reporter);
  (void)session.Run();
  const std::string& json = reporter.Last();
  EXPECT_NE(json.find("\"scenario\":\"race\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"mode\":\"serial\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"bug_found\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bug_kind\":\"safety\""), std::string::npos) << json;
}

TEST(SessionReporters, JsonEscapesControlCharacters) {
  EXPECT_EQ(systest::api::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// A scenario whose name-adjacent prose embeds quotes and a backslash — the
// JSON reporter must emit it escaped, not as broken raw JSON.
SYSTEST_REGISTER_SCENARIO(test_quoted_description) {
  Scenario s;
  s.name = "test-quoted-description";
  s.description = "says \"hello\" with a \\backslash (test-only)";
  s.tags = {"test"};
  s.params = {{"rounds", "ping-pong rounds (default 6)"}};
  s.make = [](const ParamMap& params) -> systest::Harness {
    const int rounds = static_cast<int>(params.GetUint("rounds", 6));
    return [rounds](systest::Runtime& rt) {
      auto a = rt.CreateMachine<GoldenPaddle>("A", rounds);
      auto b = rt.CreateMachine<GoldenPaddle>("B", rounds);
      static_cast<GoldenPaddle*>(rt.FindMachine(a))->SetPeer(b);
      auto* pb = static_cast<GoldenPaddle*>(rt.FindMachine(b));
      pb->SetPeer(a);
      pb->Serve();
    };
  };
  s.default_config = [] {
    TestConfig config;
    config.iterations = 1;
    config.max_steps = 500;
    return config;
  };
  return s;
}

TEST(SessionReporters, JsonReporterEscapesQuotedDescriptions) {
  systest::api::JsonReporter reporter(stdout);
  SessionConfig config;
  config.scenario = "test-quoted-description";
  TestSession session(config);
  session.AddObserver(&reporter);
  (void)session.Run();
  const std::string& json = reporter.Last();
  EXPECT_NE(json.find("\"description\":\"says \\\"hello\\\" with a "
                      "\\\\backslash (test-only)\""),
            std::string::npos)
      << json;
  // Structural sanity: an even number of unescaped quotes means the
  // embedded quotes did not break the object.
  int unescaped_quotes = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '"' && (i == 0 || json[i - 1] != '\\')) ++unescaped_quotes;
  }
  EXPECT_EQ(unescaped_quotes % 2, 0) << json;
}

TEST(SessionReporters, StatefulSessionEmitsDedupFields) {
  systest::api::JsonReporter reporter(stdout);
  SessionConfig config;
  config.scenario = "samplerepl-fixed";
  config.iterations = 50;
  config.stateful = true;
  TestSession session(config);
  session.AddObserver(&reporter);
  const SessionReport report = session.Run();
  EXPECT_TRUE(report.report.stateful);
  EXPECT_GT(report.report.distinct_states, 0u);
  const std::string& json = reporter.Last();
  EXPECT_NE(json.find("\"distinct_states\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pruned_executions\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fingerprint_hit_rate\":"), std::string::npos) << json;
}

TEST(SessionOverrides, StatefulKnobsFlowThroughResolveConfig) {
  SessionConfig config;
  config.scenario = "samplerepl-fixed";
  config.stateful = true;
  config.fingerprint_payloads = true;
  config.max_visited = 1234;
  config.prune_run = 3;
  const TestConfig tc = TestSession(config).ResolveConfig();
  EXPECT_TRUE(tc.stateful);
  EXPECT_TRUE(tc.fingerprint_payloads);
  EXPECT_EQ(tc.max_visited, 1234u);
  EXPECT_EQ(tc.prune_run, 3u);
}

TEST(SessionOverrides, FaultKnobsFlowThroughResolveConfig) {
  SessionConfig config;
  config.scenario = "samplerepl-fixed";
  config.max_crashes = 2;
  config.max_restarts = 1;
  config.drop_probability_den = 32;
  config.max_duplications = 4;
  config.fault_odds_den = 8;
  const TestConfig tc = TestSession(config).ResolveConfig();
  EXPECT_TRUE(tc.FaultsEnabled());
  EXPECT_EQ(tc.max_crashes, 2u);
  EXPECT_EQ(tc.max_restarts, 1u);
  EXPECT_EQ(tc.drop_probability_den, 32u);
  EXPECT_EQ(tc.max_duplications, 4u);
  EXPECT_EQ(tc.fault_odds_den, 8u);
  // And the crash-recovery scenario carries its own fault defaults.
  SessionConfig scenario_default;
  scenario_default.scenario = "samplerepl-node-crash";
  const TestConfig sd = TestSession(scenario_default).ResolveConfig();
  EXPECT_EQ(sd.max_crashes, 1u);
  EXPECT_EQ(sd.max_restarts, 1u);
}

TEST(SessionReporters, FaultSessionEmitsInjectedFaultFieldsAndSchedule) {
  systest::api::JsonReporter reporter(stdout);
  SessionConfig config;
  config.scenario = "samplerepl-node-crash";
  config.iterations = 5'000;  // the seeded default finds the bug well within
  TestSession session(config);
  session.AddObserver(&reporter);
  const SessionReport report = session.Run();
  ASSERT_TRUE(report.report.bug_found);
  EXPECT_TRUE(report.report.faults);
  EXPECT_GT(report.report.injected_faults.crashes, 0u);
  const std::string& json = reporter.Last();
  EXPECT_NE(json.find("\"faults\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"injected_crashes\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"injected_restarts\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"injected_drops\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"injected_duplications\":"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"bug_fault_schedule\":\"crash m"), std::string::npos)
      << json;

  // Replay the fault witness through a session with NO fault configuration:
  // the trace alone reproduces the violation.
  SessionConfig replay;
  replay.scenario = "samplerepl-node-crash";
  replay.replay_trace = report.report.bug_trace;
  const SessionReport replayed = TestSession(replay).Run();
  EXPECT_TRUE(replayed.replay_verified);
  EXPECT_EQ(replayed.report.bug_message, report.report.bug_message);
  EXPECT_EQ(replayed.report.bug_trace, report.report.bug_trace);
}

// ---------------------------------------------------------------------------
// Scenario parameters flow into the harness factory.

TEST(SessionParams, ParamsReachTheHarnessFactory) {
  SessionConfig config;
  config.scenario = "test-golden-pingpong";
  config.params.Set("rounds", "1");  // far fewer scheduling points
  config.iterations = 1;
  TraceCollector short_run;
  TestSession session(config);
  session.AddObserver(&short_run);
  (void)session.Run();
  ASSERT_EQ(short_run.Traces().size(), 1u);

  SessionConfig long_config;
  long_config.scenario = "test-golden-pingpong";
  long_config.iterations = 1;  // default rounds=6
  TraceCollector long_run;
  TestSession long_session(long_config);
  long_session.AddObserver(&long_run);
  (void)long_session.Run();
  ASSERT_EQ(long_run.Traces().size(), 1u);
  EXPECT_LT(short_run.Traces()[0].size(), long_run.Traces()[0].size());
}

TEST(SessionParams, MaxStepsOverrideRescalesLivenessThreshold) {
  // fabric pins liveness_temperature_threshold=4000 against max_steps=5000;
  // shrinking max_steps below the threshold must rescale it instead of
  // tripping Validate() (the pre-registry CLI allowed such quick runs).
  SessionConfig config;
  config.scenario = "fabric-failover";
  config.max_steps = 1000;
  config.iterations = 50;
  const SessionReport report = TestSession(config).Run();  // must not throw
  EXPECT_GE(report.report.executions, 1u);
}

TEST(SessionParams, UndeclaredParamIsRejected) {
  SessionConfig config;
  config.scenario = "race";
  config.params.Set("not-a-param", "1");
  EXPECT_THROW(TestSession(config).Run(), std::invalid_argument);
}

}  // namespace
