// Tests for the Azure Storage vNext case study: unit tests of the real
// ExtentManager component, and systematic tests that reproduce (and verify
// the fix of) the ExtentNodeLivenessViolation bug of paper §3.6.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/systest.h"
#include "vnext/extent_center.h"
#include "vnext/extent_manager.h"
#include "vnext/harness.h"

namespace {

using systest::BugKind;
using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;
using vnext::DriverOptions;
using vnext::ExtentCenter;
using vnext::ExtentManager;
using vnext::ExtentManagerOptions;
using vnext::ExtentRecord;
using vnext::HeartbeatMessage;
using vnext::MakeExtentRepairHarness;
using vnext::Message;
using vnext::NodeId;
using vnext::RepairRequestMessage;
using vnext::SyncReportMessage;

// ---------------------------------------------------------------------------
// ExtentCenter unit tests.

TEST(ExtentCenter, SyncReportAttributesAndRemoves) {
  ExtentCenter center;
  center.ApplySyncReport(1, {{10, 1}, {11, 1}});
  center.ApplySyncReport(2, {{10, 1}});
  EXPECT_EQ(center.ReplicaCount(10), 2u);
  EXPECT_EQ(center.ReplicaCount(11), 1u);
  // Node 1's next report no longer lists extent 11: it must be dropped.
  center.ApplySyncReport(1, {{10, 1}});
  EXPECT_EQ(center.ReplicaCount(11), 0u);
  EXPECT_EQ(center.ReplicaCount(10), 2u);
}

TEST(ExtentCenter, RemoveNodeDeletesAllRecords) {
  ExtentCenter center;
  center.ApplySyncReport(1, {{10, 1}, {11, 1}});
  center.ApplySyncReport(2, {{10, 1}});
  center.RemoveNode(1);
  EXPECT_EQ(center.ReplicaCount(10), 1u);
  EXPECT_EQ(center.ReplicaCount(11), 0u);
  EXPECT_FALSE(center.HasReplicaAt(10, 1));
  EXPECT_TRUE(center.HasReplicaAt(10, 2));
}

TEST(ExtentCenter, ExtentsBelowTargetAndLocations) {
  ExtentCenter center;
  center.ApplySyncReport(1, {{10, 1}});
  center.ApplySyncReport(2, {{10, 1}});
  center.ApplySyncReport(3, {{20, 1}});
  const auto below = center.ExtentsBelow(2);
  ASSERT_EQ(below.size(), 1u);
  EXPECT_EQ(below[0], 20u);
  const auto locations = center.ReplicaLocations(10);
  EXPECT_EQ(locations, (std::vector<NodeId>{1, 2}));
}

TEST(ExtentCenter, RecordsAtBuildsSyncReports) {
  ExtentCenter center;
  center.AddOrUpdate(5, {100, 7});
  center.AddOrUpdate(5, {101, 3});
  center.AddOrUpdate(6, {100, 7});
  const auto records = center.RecordsAt(5);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].extent, 100u);
  EXPECT_EQ(records[0].version, 7u);
  EXPECT_EQ(records[1].extent, 101u);
}

// ---------------------------------------------------------------------------
// ExtentManager unit tests: a scripted network engine captures repairs.

class CapturingNetwork final : public vnext::NetworkEngine {
 public:
  void SendMessage(NodeId destination,
                   std::shared_ptr<const Message> message) override {
    sent.emplace_back(destination, std::move(message));
  }
  std::vector<std::pair<NodeId, std::shared_ptr<const Message>>> sent;
};

ExtentManagerOptions FixedOptions() {
  ExtentManagerOptions options;
  options.fix_stale_sync_report = true;
  return options;
}

TEST(ExtentManager, HeartbeatRegistersNode) {
  ExtentManager manager(FixedOptions());
  EXPECT_FALSE(manager.KnowsNode(1));
  manager.ProcessMessage(HeartbeatMessage(1));
  EXPECT_TRUE(manager.KnowsNode(1));
}

TEST(ExtentManager, SilentNodeExpiresAndRecordsAreDeleted) {
  ExtentManager manager(FixedOptions());
  manager.ProcessMessage(HeartbeatMessage(1));
  manager.ProcessMessage(SyncReportMessage(1, {{10, 1}}));
  EXPECT_EQ(manager.Center().ReplicaCount(10), 1u);
  for (int i = 0; i < 4; ++i) {
    manager.ProcessExpirationTick();
  }
  EXPECT_FALSE(manager.KnowsNode(1));
  EXPECT_EQ(manager.Center().ReplicaCount(10), 0u);
}

TEST(ExtentManager, HeartbeatsKeepNodeAlive) {
  ExtentManager manager(FixedOptions());
  manager.ProcessMessage(HeartbeatMessage(1));
  for (int i = 0; i < 10; ++i) {
    manager.ProcessExpirationTick();
    manager.ProcessMessage(HeartbeatMessage(1));
  }
  EXPECT_TRUE(manager.KnowsNode(1));
}

TEST(ExtentManager, RepairTickSchedulesMissingReplicas) {
  ExtentManager manager(FixedOptions());
  CapturingNetwork network;
  manager.SetNetworkEngine(&network);
  manager.ProcessMessage(HeartbeatMessage(1));
  manager.ProcessMessage(HeartbeatMessage(2));
  manager.ProcessMessage(HeartbeatMessage(3));
  manager.ProcessMessage(SyncReportMessage(1, {{10, 1}}));
  manager.ProcessRepairTick();
  // Extent 10 has 1 of 3 replicas: repair must go to the first node without
  // one (node 2), copying from node 1.
  ASSERT_EQ(network.sent.size(), 1u);
  EXPECT_EQ(network.sent[0].first, 2u);
  const auto& repair =
      static_cast<const RepairRequestMessage&>(*network.sent[0].second);
  EXPECT_EQ(repair.extent, 10u);
  EXPECT_EQ(repair.source, 1u);
}

TEST(ExtentManager, NoRepairWhenReplicasAtTarget) {
  ExtentManager manager(FixedOptions());
  CapturingNetwork network;
  manager.SetNetworkEngine(&network);
  for (NodeId node : {1, 2, 3}) {
    manager.ProcessMessage(HeartbeatMessage(node));
    manager.ProcessMessage(SyncReportMessage(node, {{10, 1}}));
  }
  manager.ProcessRepairTick();
  EXPECT_TRUE(network.sent.empty());
}

TEST(ExtentManager, NoRepairWithoutSurvivingSource) {
  ExtentManager manager(FixedOptions());
  CapturingNetwork network;
  manager.SetNetworkEngine(&network);
  manager.ProcessMessage(HeartbeatMessage(1));
  manager.ProcessMessage(SyncReportMessage(1, {{10, 1}}));
  for (int i = 0; i < 4; ++i) manager.ProcessExpirationTick();
  manager.ProcessRepairTick();
  EXPECT_TRUE(network.sent.empty()) << "no replica left to copy from";
}

// The mechanism of the §3.6 bug, unit-tested in isolation: a sync report from
// an expired EN resurrects its ExtentCenter records (buggy) or is dropped
// (fixed).
TEST(ExtentManager, StaleSyncReportResurrectsRecordsWhenUnfixed) {
  ExtentManagerOptions buggy;  // fix_stale_sync_report = false
  ExtentManager manager(buggy);
  manager.ProcessMessage(HeartbeatMessage(1));
  manager.ProcessMessage(SyncReportMessage(1, {{10, 1}}));
  for (int i = 0; i < 4; ++i) manager.ProcessExpirationTick();
  ASSERT_EQ(manager.Center().ReplicaCount(10), 0u);
  // Step (iv) of the paper's buggy sequence: the stale report arrives.
  manager.ProcessMessage(SyncReportMessage(1, {{10, 1}}));
  EXPECT_EQ(manager.Center().ReplicaCount(10), 1u)
      << "unfixed manager resurrected the expired node's records";
  EXPECT_FALSE(manager.KnowsNode(1))
      << "...while the node is absent from ExtentNodeMap, so the expiration "
         "loop will never clean it up again";
}

TEST(ExtentManager, StaleSyncReportDroppedWhenFixed) {
  ExtentManager manager(FixedOptions());
  manager.ProcessMessage(HeartbeatMessage(1));
  manager.ProcessMessage(SyncReportMessage(1, {{10, 1}}));
  for (int i = 0; i < 4; ++i) manager.ProcessExpirationTick();
  manager.ProcessMessage(SyncReportMessage(1, {{10, 1}}));
  EXPECT_EQ(manager.Center().ReplicaCount(10), 0u);
}

// ---------------------------------------------------------------------------
// Systematic tests: the harness of Fig. 4.

DriverOptions BuggyScenario() {
  DriverOptions options;
  options.manager.fix_stale_sync_report = false;
  return options;
}

DriverOptions FixedScenario() {
  DriverOptions options;
  options.manager.fix_stale_sync_report = true;
  return options;
}

TEST(VNextSystematic, RandomSchedulerFindsLivenessViolation) {
  TestConfig config = vnext::DefaultConfig("random");
  config.iterations = 5'000;
  const TestReport report =
      TestingEngine(config, MakeExtentRepairHarness(BuggyScenario())).Run();
  ASSERT_TRUE(report.bug_found) << report.Summary();
  EXPECT_EQ(report.bug_kind, BugKind::kLiveness);
  EXPECT_NE(report.bug_message.find("RepairMonitor"), std::string::npos);
}

TEST(VNextSystematic, PctSchedulerFindsLivenessViolation) {
  TestConfig config = vnext::DefaultConfig("pct");
  config.iterations = 5'000;
  const TestReport report =
      TestingEngine(config, MakeExtentRepairHarness(BuggyScenario())).Run();
  ASSERT_TRUE(report.bug_found) << report.Summary();
  EXPECT_EQ(report.bug_kind, BugKind::kLiveness);
}

TEST(VNextSystematic, FixedManagerPassesSystematicTesting) {
  TestConfig config = vnext::DefaultConfig("random");
  config.iterations = 300;  // each execution runs to the step bound
  const TestReport report =
      TestingEngine(config, MakeExtentRepairHarness(FixedScenario())).Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

TEST(VNextSystematic, Scenario1ReplicationPasses) {
  // Scenario 1 (§3.4): one initial replica, no failure; the ExtMgr must
  // replicate the extent to the target count — the monitor starts hot and
  // must go cold.
  DriverOptions options = FixedScenario();
  options.initial_replicas = 1;
  TestConfig config = vnext::DefaultConfig("random");
  config.max_crashes = 0;  // pure replication, no failure
  config.iterations = 300;
  const TestReport report =
      TestingEngine(config, MakeExtentRepairHarness(options)).Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

TEST(VNextSystematic, BugTraceReplaysDeterministically) {
  TestConfig config = vnext::DefaultConfig("random");
  config.iterations = 5'000;
  TestingEngine engine(config, MakeExtentRepairHarness(BuggyScenario()));
  const TestReport report = engine.Run();
  ASSERT_TRUE(report.bug_found);
  const TestReport replay = engine.Replay(report.bug_trace);
  ASSERT_TRUE(replay.bug_found);
  EXPECT_EQ(replay.bug_kind, BugKind::kLiveness);
  EXPECT_EQ(replay.bug_message, report.bug_message);
  // The readable trace must show the resurrection ingredients: a sync report
  // reaching the ExtentManager and the repair monitor staying hot.
  EXPECT_NE(replay.execution_log.find("SyncReport"), std::string::npos);
}

}  // namespace
