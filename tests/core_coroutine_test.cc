// Pins the coroutine-parameter rules the codebase relies on, including the
// GCC 12.x workaround documented in core/task.h: arguments to functions
// called inside a co_await expression must be named locals (or trivially
// copyable values); non-trivial temporaries in the co_await full-expression
// get bitwise-copied by GCC 12 and end up self-referencing dead frames.
//
// These tests assert the SAFE patterns work. (The broken patterns are
// documented in task.h; we do not test them because they crash rather than
// fail an assertion.)
#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "core/systest.h"

namespace {

using systest::Machine;
using systest::MachineId;
using systest::Runtime;
using systest::Task;
using systest::TaskOf;

struct Payload {
  std::string a;
  std::string b;
};
using PayloadVariant = std::variant<int, Payload>;

struct Carry final : systest::Event {
  Carry(MachineId from, PayloadVariant v) : from(from), v(std::move(v)) {}
  MachineId from;
  PayloadVariant v;
};
struct Reply final : systest::Event {
  explicit Reply(int x) : x(x) {}
  int x;
};

std::string g_observed;

class EchoMachine final : public Machine {
 public:
  EchoMachine() {
    State("S").On<Carry>(&EchoMachine::OnCarry);
    SetStart("S");
  }

 private:
  void OnCarry(const Carry& carry) {
    if (const auto* payload = std::get_if<Payload>(&carry.v)) {
      g_observed = payload->a + "/" + payload->b;
    }
    Send<Reply>(carry.from, 42);
  }
};

class ProtocolMachine final : public Machine {
 public:
  explicit ProtocolMachine(MachineId echo) : echo_(echo) {
    State("S").OnEntry(&ProtocolMachine::Run);
    SetStart("S");
  }

 private:
  // Awaited coroutine following the codebase rule: const& + trivial params.
  TaskOf<int> RoundTrip(const PayloadVariant& v) {
    Send<Carry>(echo_, Id(), v);
    auto reply = co_await Receive<Reply>();
    co_return reply->x;
  }

  Task Run() {
    for (int i = 0; i < 3; ++i) {
      // Hoist the non-trivial argument into a named local (the GCC 12 safe
      // pattern), then await.
      PayloadVariant v = Payload{"partition" + std::to_string(i),
                                 "row-key-longer-than-sso-buffer-" +
                                     std::to_string(i)};
      const int x = co_await RoundTrip(v);
      Assert(x == 42, "echo reply");
    }
    Halt();
  }

  MachineId echo_;
};

TEST(CoroutineRules, NamedLocalArgumentsSurviveNestedAwaits) {
  g_observed.clear();
  systest::TestConfig config;
  config.iterations = 50;
  config.seed = 5;
  systest::TestingEngine engine(config, [](Runtime& rt) {
    auto echo = rt.CreateMachine<EchoMachine>("Echo");
    rt.CreateMachine<ProtocolMachine>("Protocol", echo);
  });
  const auto report = engine.Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
  EXPECT_EQ(g_observed, "partition2/row-key-longer-than-sso-buffer-2");
}

// Deep nesting: values propagate through three levels of TaskOf.
class DeepMachine final : public Machine {
 public:
  DeepMachine() {
    State("S").OnEntry(&DeepMachine::Run);
    SetStart("S");
  }

 private:
  TaskOf<std::string> Leaf(const std::string& s) {
    co_return s + "!";
  }
  TaskOf<std::string> Middle(const std::string& s) {
    std::string decorated = "<" + s + ">";
    std::string leafed = co_await Leaf(decorated);
    co_return leafed;
  }
  Task Run() {
    std::string input = "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string out = co_await Middle(input);
    Assert(out == "<abcdefghijklmnopqrstuvwxyz0123456789>!", "deep value");
    Halt();
  }
};

TEST(CoroutineRules, DeepNestingPropagatesStringsIntact) {
  systest::TestConfig config;
  config.iterations = 5;
  config.seed = 9;
  systest::TestingEngine engine(config, [](Runtime& rt) {
    rt.CreateMachine<DeepMachine>("Deep");
  });
  const auto report = engine.Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

}  // namespace
