// Tiered visited-set tests (core/fingerprint.h TieredFingerprintSet): the
// load-bearing property is that the tiered set is OBSERVATIONALLY IDENTICAL
// to the flat FingerprintSet — same Insert() verdict for every fingerprint in
// any stream under the same total budget, no matter how often the hot level
// compacts — so engine prune decisions (and therefore traces and reports)
// cannot depend on the tiering. Pinned three ways: randomized stream
// equivalence against the flat reference at boundary hot sizes, engine-level
// bit-for-bit report/trail equality on samplerepl and vnext with compaction
// forced vs disabled, and spill round-trips that serve probes from
// mmap-ed disk runs. Plus the new TestConfig::Validate rules.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <random>
#include <vector>

#include "core/systest.h"
#include "explore/sharded_fingerprint_set.h"
#include "samplerepl/harness.h"
#include "vnext/harness.h"

namespace {

using systest::Fingerprint;
using systest::FingerprintSet;
using systest::TestConfig;
using systest::TestingEngine;
using systest::TieredFingerprintSet;
using systest::TieredOptions;
using systest::VisitedStats;

/// Duplicate-heavy fingerprint stream: values drawn from a bounded domain so
/// revisits are common, hashed up so they spread across shards/probe chains
/// like real fingerprints. Deterministic per seed.
std::vector<Fingerprint> MakeStream(std::uint64_t seed, std::size_t length,
                                    std::uint64_t domain) {
  std::mt19937_64 rng(seed);
  std::vector<Fingerprint> stream;
  stream.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    const std::uint64_t raw = rng() % domain;
    stream.push_back(raw * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull);
  }
  return stream;
}

void ExpectStreamEquivalence(const std::vector<Fingerprint>& stream,
                             std::size_t max_entries, std::size_t hot) {
  FingerprintSet flat(max_entries);
  TieredFingerprintSet tiered({max_entries, hot, std::string{}});
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(flat.Insert(stream[i]), tiered.Insert(stream[i]))
        << "diverged at element " << i << " (hot=" << hot
        << ", budget=" << max_entries << ")";
  }
  EXPECT_EQ(flat.Size(), tiered.Size());
}

TEST(TieredEquivalence, MatchesFlatVerdictsAtBoundaryHotSizes) {
  const std::vector<Fingerprint> stream = MakeStream(11, 6000, 1500);
  // hot=1 compacts on every novel state; hot=2/3 exercise tiny runs plus
  // repeated k-way merges; hot just below/at/above the budget exercises the
  // freeze boundary interacting with compaction; huge hot never compacts.
  for (const std::size_t hot : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                std::size_t{127}, std::size_t{1499},
                                std::size_t{1500}, std::size_t{1501},
                                std::size_t{1u << 20}}) {
    for (const std::size_t budget :
         {std::size_t{1}, std::size_t{64}, std::size_t{1000},
          std::size_t{1500}, std::size_t{1u << 20}}) {
      ExpectStreamEquivalence(stream, budget, hot);
    }
  }
}

TEST(TieredEquivalence, ShardedTieredMatchesFlatSingleThreaded) {
  const std::vector<Fingerprint> stream = MakeStream(12, 4000, 900);
  // Unbounded budget: the sharded set's global count enforcement is
  // check-then-insert (approximate under concurrency), so exact freeze-point
  // equivalence is only guaranteed single-threaded below the cap — which is
  // what this pins: shard routing + per-shard compaction change no verdicts.
  FingerprintSet flat(1u << 20);
  TieredOptions options;
  options.max_entries = 1u << 20;
  options.hot_entries = 256;  // 4 per shard: constant per-shard compaction
  systest::explore::ShardedFingerprintSet sharded(options);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(flat.Insert(stream[i]), sharded.Insert(stream[i]))
        << "diverged at element " << i;
  }
  EXPECT_EQ(flat.Size(), sharded.Size());
  const VisitedStats stats = sharded.Stats();
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_EQ(stats.hot_entries + stats.run_entries, sharded.Size());
}

TEST(TieredCompaction, CompactsMergesAndKeepsMembershipExact) {
  TieredFingerprintSet set({1u << 20, 64, std::string{}});
  // 64 * kMaxRuns novel states: enough to trigger at least one k-way merge.
  const std::size_t n = 64 * TieredFingerprintSet::kMaxRuns;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(set.Insert(i * 0x9e3779b97f4a7c15ull + 1));
  }
  EXPECT_EQ(set.Size(), n);
  const VisitedStats stats = set.Stats();
  EXPECT_GE(stats.compactions, TieredFingerprintSet::kMaxRuns);
  EXPECT_GE(stats.merges, 1u);
  EXPECT_LT(stats.runs, TieredFingerprintSet::kMaxRuns);
  EXPECT_EQ(stats.hot_entries + stats.run_entries, n);
  // Every state remains a hit, wherever compaction moved it.
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FALSE(set.Insert(i * 0x9e3779b97f4a7c15ull + 1)) << i;
    ASSERT_TRUE(set.Contains(i * 0x9e3779b97f4a7c15ull + 1)) << i;
  }
}

TEST(TieredCompaction, FreezesAtTotalBudgetLikeFlat) {
  TieredFingerprintSet set({10, 4, std::string{}});  // compacts twice en route
  for (Fingerprint fp = 1; fp <= 10; ++fp) ASSERT_TRUE(set.Insert(fp));
  EXPECT_EQ(set.Size(), 10u);
  // Frozen: known states hit, unseen states are reported novel uncounted.
  for (Fingerprint fp = 1; fp <= 10; ++fp) ASSERT_FALSE(set.Insert(fp));
  EXPECT_TRUE(set.Insert(999));
  EXPECT_TRUE(set.Insert(999));  // still not recorded
  EXPECT_EQ(set.Size(), 10u);
}

/// Per-iteration fingerprint trails + end report: everything about a stateful
/// run that pruning decisions could perturb.
struct StatefulRunOutcome {
  std::map<std::uint64_t, std::vector<Fingerprint>> trails;
  std::map<std::uint64_t, bool> pruned;
  systest::TestReport report;
};

StatefulRunOutcome RunStateful(const systest::Harness& harness,
                               TestConfig config, std::uint64_t hot) {
  config.max_visited_hot = hot;
  config.record_fingerprint_trail = true;
  config.stop_on_first_bug = false;
  StatefulRunOutcome outcome;
  TestingEngine engine(config, harness);
  engine.SetIterationCallback(
      [&outcome](std::uint64_t i, const systest::ExecutionResult& r) {
        outcome.trails[i] = r.fingerprint_trail;
        outcome.pruned[i] = r.pruned;
      });
  outcome.report = engine.Run();
  return outcome;
}

void ExpectEngineEquivalence(const systest::Harness& harness,
                             TestConfig config) {
  // Hot = total budget: never compacts, i.e. the historical flat behavior.
  // Hot = 32: compacts constantly. Identical seeds must give bit-identical
  // prune decisions, trails and aggregate stats either way.
  const StatefulRunOutcome flat = RunStateful(harness, config, config.max_visited);
  const StatefulRunOutcome tiered = RunStateful(harness, config, 32);
  EXPECT_GT(tiered.report.visited.compactions, 0u);
  EXPECT_EQ(flat.report.visited.compactions, 0u);
  EXPECT_EQ(flat.report.executions, tiered.report.executions);
  EXPECT_EQ(flat.report.pruned_executions, tiered.report.pruned_executions);
  EXPECT_EQ(flat.report.fingerprint_hits, tiered.report.fingerprint_hits);
  EXPECT_EQ(flat.report.fingerprint_misses, tiered.report.fingerprint_misses);
  EXPECT_EQ(flat.report.distinct_states, tiered.report.distinct_states);
  EXPECT_EQ(flat.report.total_steps, tiered.report.total_steps);
  ASSERT_EQ(flat.trails.size(), tiered.trails.size());
  for (const auto& [iteration, trail] : flat.trails) {
    EXPECT_EQ(tiered.pruned.at(iteration), flat.pruned.at(iteration))
        << "iteration " << iteration;
    EXPECT_EQ(tiered.trails.at(iteration), trail) << "iteration " << iteration;
  }
}

TEST(TieredEngineEquivalence, SampleReplRunsBitForBitIdentical) {
  samplerepl::HarnessOptions options;
  const systest::Harness harness = samplerepl::MakeHarness(options);
  TestConfig config;
  config.strategy = "random";
  config.seed = 7;
  config.iterations = 40;
  config.max_steps = 500;
  config.stateful = true;
  ExpectEngineEquivalence(harness, config);
}

TEST(TieredEngineEquivalence, VNextRunsBitForBitIdentical) {
  vnext::DriverOptions options;
  const systest::Harness harness = vnext::MakeExtentRepairHarness(options);
  TestConfig config = vnext::DefaultConfig("random");
  config.seed = 7;
  config.iterations = 25;
  config.max_steps = 400;
  config.stateful = true;
  config.fingerprint_payloads = true;
  ExpectEngineEquivalence(harness, config);
}

TEST(TieredSpill, RoundTripsRunsThroughDisk) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "systest-tiered-spill-test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::size_t n = 64 * TieredFingerprintSet::kMaxRuns * 2;
  {
    TieredFingerprintSet set({1u << 20, 64, dir.string()});
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(set.Insert(i * 0x9e3779b97f4a7c15ull + 1));
    }
    const VisitedStats stats = set.Stats();
    EXPECT_GT(stats.spilled_runs, 0u);
    EXPECT_EQ(stats.spilled_runs, stats.runs);  // every run went to disk
    EXPECT_GT(stats.spilled_bytes, 0u);
    // The spill files are live on disk while the set serves from them.
    EXPECT_FALSE(std::filesystem::is_empty(dir));
    // Every membership probe below the hot level is answered from mmap.
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_FALSE(set.Insert(i * 0x9e3779b97f4a7c15ull + 1)) << i;
    }
    EXPECT_EQ(set.Size(), n);
  }
  // Destruction unlinks the run files: the spill dir is left empty.
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

TEST(TieredSpill, FallsBackToMemoryWhenDirUnusable) {
  // Nonexistent directory: every spill fails, the set silently keeps runs in
  // memory and stays exact.
  TieredFingerprintSet set(
      {1u << 20, 16, "/nonexistent-systest-spill-dir/sub"});
  for (Fingerprint fp = 1; fp <= 200; ++fp) ASSERT_TRUE(set.Insert(fp));
  for (Fingerprint fp = 1; fp <= 200; ++fp) ASSERT_FALSE(set.Insert(fp));
  const VisitedStats stats = set.Stats();
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_EQ(stats.spilled_runs, 0u);
  EXPECT_EQ(stats.spilled_bytes, 0u);
}

TEST(TieredConfigValidate, RejectsStatefulWithZeroHotLevel) {
  TestConfig config;
  config.stateful = true;
  config.max_visited_hot = 0;
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config.max_visited_hot = 1;
  EXPECT_NO_THROW(config.Validate());
}

TEST(TieredConfigValidate, RejectsSpillDirWithoutStateful) {
  TestConfig config;
  config.visited_spill_dir = "/tmp/spill";
  EXPECT_THROW(config.Validate(), std::invalid_argument);
  config.stateful = true;
  EXPECT_NO_THROW(config.Validate());
}

TEST(TieredStats, CountsHotHitsAndBloomTraffic) {
  TieredFingerprintSet set({1u << 20, 64, std::string{}});
  for (Fingerprint fp = 1; fp <= 200; ++fp) set.Insert(fp);  // compacts 3x
  for (Fingerprint fp = 1; fp <= 200; ++fp) set.Insert(fp);  // all hits
  const VisitedStats stats = set.Stats();
  EXPECT_GT(stats.hot_hits, 0u);
  EXPECT_GT(stats.run_probes, 0u);
  EXPECT_GT(stats.bloom_true_positives, 0u);
  // Exactness invariant: every run probe resolves to a definite answer.
  EXPECT_EQ(stats.run_probes,
            stats.bloom_true_positives + stats.bloom_false_positives);
  // 200 states, all still tracked.
  EXPECT_EQ(stats.hot_entries + stats.run_entries, 200u);
}

}  // namespace
