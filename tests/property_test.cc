// Cross-cutting property tests, parameterized over every buggy harness in
// the repository: the engine's replay and determinism guarantees must hold
// regardless of the system under test.
//
//  P1. Trace replay fidelity: replaying a recorded buggy trace reproduces
//      the same violation message with the same number of nondeterministic
//      choices.
//  P2. Textual round-trip: serializing the trace to its string form and
//      parsing it back yields an equivalent, still-replayable trace.
//  P3. Seed determinism: two engines with identical configuration find the
//      bug in the same iteration with identical traces.
//  P4. Seed sensitivity: the search is genuinely randomized — across several
//      seeds the buggy execution is not always literally the same trace.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/systest.h"
#include "fabric/harness.h"
#include "mtable/harness.h"
#include "samplerepl/harness.h"
#include "vnext/harness.h"

namespace {

using systest::Harness;
using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;
using systest::Trace;

struct HarnessCase {
  const char* name;
  Harness (*make)();
  TestConfig (*config)();
};

TestConfig SmallConfig() {
  TestConfig config;
  config.iterations = 50'000;
  config.max_steps = 2'000;
  config.seed = 2016;
  config.time_budget_seconds = 30;
  return config;
}

Harness SampleReplSafety() {
  samplerepl::HarnessOptions options;
  options.bugs.non_unique_replica_count = true;
  return samplerepl::MakeHarness(options);
}

Harness SampleReplLiveness() {
  samplerepl::HarnessOptions options;
  options.bugs.no_counter_reset = true;
  return samplerepl::MakeHarness(options);
}

Harness VNextBuggy() {
  vnext::DriverOptions options;  // bug on by default
  return vnext::MakeExtentRepairHarness(options);
}

TestConfig VNextConfig() {
  TestConfig config = vnext::DefaultConfig("random");
  config.iterations = 5'000;
  config.time_budget_seconds = 30;
  return config;
}

Harness MTableInsertBehind() {
  mtable::MigrationHarnessOptions options;
  options.bugs = EnableBug(mtable::MTableBugId::kInsertBehindMigrator);
  return mtable::MakeMigrationHarness(options);
}

Harness MTableSwitchFromPopulated() {
  mtable::MigrationHarnessOptions options;
  options.bugs =
      EnableBug(mtable::MTableBugId::kEnsurePartitionSwitchedFromPopulated);
  return mtable::MakeMigrationHarness(options);
}

TestConfig MTableConfig() {
  TestConfig config = mtable::DefaultConfig("random");
  config.time_budget_seconds = 30;
  return config;
}

Harness FabricPromote() {
  fabric::FailoverOptions options;
  options.bugs.promote_during_copy = true;
  return fabric::MakeFailoverHarness(options);
}

Harness FabricPipeline() {
  fabric::PipelineOptions options;
  options.bugs.unguarded_pipeline_config = true;
  return fabric::MakePipelineHarness(options);
}

TestConfig FabricConfig() {
  TestConfig config = fabric::DefaultConfig("random");
  config.time_budget_seconds = 30;
  return config;
}

const HarnessCase kCases[] = {
    {"SampleReplSafety", &SampleReplSafety, &SmallConfig},
    {"SampleReplLiveness", &SampleReplLiveness, &SmallConfig},
    {"VNextLiveness", &VNextBuggy, &VNextConfig},
    {"MTableInsertBehindMigrator", &MTableInsertBehind, &MTableConfig},
    {"MTableEnsureSwitched", &MTableSwitchFromPopulated, &MTableConfig},
    {"FabricPromoteDuringCopy", &FabricPromote, &FabricConfig},
    {"FabricPipelineNullRef", &FabricPipeline, &FabricConfig},
};

class BuggyHarnessProperty : public ::testing::TestWithParam<HarnessCase> {};

TEST_P(BuggyHarnessProperty, ReplayReproducesViolationExactly) {  // P1
  const HarnessCase& test_case = GetParam();
  TestingEngine engine(test_case.config(), test_case.make());
  const TestReport report = engine.Run();
  ASSERT_TRUE(report.bug_found) << report.Summary();

  const TestReport replay = engine.Replay(report.bug_trace);
  ASSERT_TRUE(replay.bug_found) << "replay lost the violation";
  EXPECT_EQ(replay.bug_kind, report.bug_kind);
  EXPECT_EQ(replay.bug_message, report.bug_message);
  EXPECT_EQ(replay.ndc, report.ndc);
  EXPECT_EQ(replay.bug_steps, report.bug_steps);
}

TEST_P(BuggyHarnessProperty, TraceSurvivesTextRoundTrip) {  // P2
  const HarnessCase& test_case = GetParam();
  TestingEngine engine(test_case.config(), test_case.make());
  const TestReport report = engine.Run();
  ASSERT_TRUE(report.bug_found);

  const Trace parsed = Trace::Parse(report.bug_trace.ToString());
  EXPECT_EQ(parsed, report.bug_trace);
  const TestReport replay = engine.Replay(parsed);
  EXPECT_TRUE(replay.bug_found);
  EXPECT_EQ(replay.bug_message, report.bug_message);
}

TEST_P(BuggyHarnessProperty, IdenticalSeedsAreDeterministic) {  // P3
  const HarnessCase& test_case = GetParam();
  const TestReport a =
      TestingEngine(test_case.config(), test_case.make()).Run();
  const TestReport b =
      TestingEngine(test_case.config(), test_case.make()).Run();
  ASSERT_TRUE(a.bug_found);
  ASSERT_TRUE(b.bug_found);
  EXPECT_EQ(a.bug_iteration, b.bug_iteration);
  EXPECT_EQ(a.bug_message, b.bug_message);
  EXPECT_EQ(a.bug_trace, b.bug_trace);
}

TEST_P(BuggyHarnessProperty, DifferentSeedsExploreDifferentSchedules) {  // P4
  const HarnessCase& test_case = GetParam();
  std::set<std::string> traces;
  for (const std::uint64_t seed : {1ull, 99ull, 777ull}) {
    TestConfig config = test_case.config();
    config.seed = seed;
    const TestReport report =
        TestingEngine(config, test_case.make()).Run();
    if (report.bug_found) {
      traces.insert(report.bug_trace.ToString());
    }
  }
  EXPECT_GE(traces.size(), 2u)
      << "three seeds produced at most one distinct buggy schedule — the "
         "search does not look randomized";
}

INSTANTIATE_TEST_SUITE_P(
    AllBuggyHarnesses, BuggyHarnessProperty, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<HarnessCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
