// Parameterized workload/topology sweeps: the fixed systems must stay clean
// and the paper bugs must stay findable as the harness dimensions change —
// protocol correctness cannot be an artifact of one particular workload
// size. (The paper's harnesses parameterize the same dimensions: number of
// nodes/services, operations per service, replica targets.)
#include <gtest/gtest.h>

#include <string>

#include "core/systest.h"
#include "mtable/harness.h"
#include "samplerepl/harness.h"
#include "vnext/harness.h"

namespace {

using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;

// ---------------------------------------------------------------------------
// vNext: vary the number of extent nodes (the replica target stays 3, so
// larger clusters add bystander nodes and heartbeat traffic).

class VNextTopologySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VNextTopologySweep, FixedManagerRepairsAtEveryClusterSize) {
  vnext::DriverOptions options;
  options.manager.fix_stale_sync_report = true;
  options.num_nodes = GetParam();
  options.initial_replicas = 3;
  TestConfig config = vnext::DefaultConfig("random");
  config.iterations = 150;
  // Repair latency grows superlinearly with cluster size (every extra node
  // adds two producer timers competing for the Extent Manager's queue), so
  // the bounded-infinite bound must scale with it — the same bound-choice
  // sensitivity the ablation_liveness_bound bench quantifies.
  config.max_steps = 3'000 * GetParam();
  config.liveness_temperature_threshold = config.max_steps * 2 / 5;
  const TestReport report =
      TestingEngine(config, vnext::MakeExtentRepairHarness(options)).Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

TEST_P(VNextTopologySweep, BuggyManagerIsCaughtAtEveryClusterSize) {
  vnext::DriverOptions options;
  options.manager.fix_stale_sync_report = false;
  options.num_nodes = GetParam();
  options.initial_replicas = 3;
  TestConfig config = vnext::DefaultConfig("random");
  config.iterations = 3'000;
  config.max_steps = 3'000 * GetParam();
  config.liveness_temperature_threshold = config.max_steps * 2 / 5;
  config.time_budget_seconds = 60;
  const TestReport report =
      TestingEngine(config, vnext::MakeExtentRepairHarness(options)).Run();
  EXPECT_TRUE(report.bug_found) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, VNextTopologySweep,
                         ::testing::Values(3, 4, 6),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "nodes" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// MigratingTable: vary services x ops; the fixed protocol must pass the
// differential checker for every mix.

struct MTableWorkload {
  int services;
  int ops;
};

class MTableWorkloadSweep : public ::testing::TestWithParam<MTableWorkload> {};

TEST_P(MTableWorkloadSweep, FixedProtocolPassesDifferentialTesting) {
  mtable::MigrationHarnessOptions options;
  options.num_services = GetParam().services;
  options.ops_per_service = GetParam().ops;
  TestConfig config = mtable::DefaultConfig("random");
  config.iterations = 800;
  config.time_budget_seconds = 60;
  const TestReport report =
      TestingEngine(config, mtable::MakeMigrationHarness(options)).Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, MTableWorkloadSweep,
    ::testing::Values(MTableWorkload{1, 8}, MTableWorkload{2, 6},
                      MTableWorkload{3, 4}, MTableWorkload{4, 3}),
    [](const ::testing::TestParamInfo<MTableWorkload>& info) {
      return "s" + std::to_string(info.param.services) + "x" +
             std::to_string(info.param.ops);
    });

// Single-partition workload: the per-partition protocol must degenerate
// cleanly (no cross-partition interleavings to hide behind).
TEST(MTableWorkloadEdge, SinglePartitionFixedPasses) {
  mtable::MigrationHarnessOptions options;
  options.partitions = {"P0"};
  TestConfig config = mtable::DefaultConfig("random");
  config.iterations = 1'500;
  config.time_budget_seconds = 60;
  const TestReport report =
      TestingEngine(config, mtable::MakeMigrationHarness(options)).Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

// Empty initial data set: migration of nothing must still converge (state
// rows, sweep, verification).
TEST(MTableWorkloadEdge, EmptyInitialTableFixedPasses) {
  mtable::MigrationHarnessOptions options;
  options.initial_rows = {
      // one marker row so initial_rows is non-empty but trivial
  };
  options.ops_per_service = 2;
  TestConfig config = mtable::DefaultConfig("random");
  config.iterations = 1'000;
  const TestReport report =
      TestingEngine(config, mtable::MakeMigrationHarness(options)).Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

// ---------------------------------------------------------------------------
// SampleRepl: vary replica target and request count; bugs must remain
// findable and the fixed server clean.

struct ReplShape {
  std::size_t nodes;
  std::size_t target;
  std::size_t requests;
};

class SampleReplShapeSweep : public ::testing::TestWithParam<ReplShape> {};

TEST_P(SampleReplShapeSweep, FixedServerPasses) {
  samplerepl::HarnessOptions options;
  options.num_nodes = GetParam().nodes;
  options.replica_target = GetParam().target;
  options.num_requests = GetParam().requests;
  TestConfig config;
  config.iterations = 1'000;
  config.max_steps = 4'000;
  config.seed = 2016;
  const TestReport report =
      TestingEngine(config, samplerepl::MakeHarness(options)).Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

TEST_P(SampleReplShapeSweep, NonUniqueCountBugFound) {
  samplerepl::HarnessOptions options;
  options.bugs.non_unique_replica_count = true;
  options.num_nodes = GetParam().nodes;
  options.replica_target = GetParam().target;
  options.num_requests = GetParam().requests;
  TestConfig config;
  config.iterations = 50'000;
  config.max_steps = 4'000;
  config.seed = 2016;
  config.time_budget_seconds = 30;
  const TestReport report =
      TestingEngine(config, samplerepl::MakeHarness(options)).Run();
  EXPECT_TRUE(report.bug_found) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SampleReplShapeSweep,
    ::testing::Values(ReplShape{3, 3, 1}, ReplShape{3, 3, 3},
                      ReplShape{4, 3, 2}, ReplShape{5, 5, 2}),
    [](const ::testing::TestParamInfo<ReplShape>& info) {
      return "n" + std::to_string(info.param.nodes) + "t" +
             std::to_string(info.param.target) + "r" +
             std::to_string(info.param.requests);
    });

}  // namespace
