// Coverage-guided exploration tests: TraceCorpus store semantics (dedup,
// energy weighting and decay, eviction at the cap, persistence round-trip),
// MutationStrategy seed-stable determinism and tolerant prefix replay, and
// the session-level acceptance loop — a corpus saved by one run is reloaded
// by the next (--corpus-dir), and a mutated execution replays bit-for-bit
// through a session carrying no fault flags.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "api/session.h"
#include "core/systest.h"
#include "corpus/mutation_strategy.h"
#include "corpus/trace_corpus.h"

namespace {

using systest::ExecutionResult;
using systest::TestConfig;
using systest::TestingEngine;
using systest::Trace;
using systest::api::SessionConfig;
using systest::api::SessionReport;
using systest::api::TestSession;
using systest::corpus::CorpusEntrySnapshot;
using systest::corpus::MutationStrategy;
using systest::corpus::TraceCorpus;

/// A distinct synthetic trace per `tag` (schedule + bool + int decisions).
Trace MakeTrace(std::uint64_t tag, std::size_t length = 6) {
  Trace trace;
  for (std::size_t i = 0; i < length; ++i) {
    trace.RecordSchedule(1 + (tag + i) % 5);
    trace.RecordBool((tag + i) % 2 == 0);
  }
  trace.RecordInt(tag % 7, 7);
  return trace;
}

/// Fresh per-test scratch directory under the gtest temp root.
std::string ScratchDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("corpus_test_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

// ---------------------------------------------------------------------------
// TraceCorpus store semantics.

TEST(TraceCorpus, AddDeduplicatesByContent) {
  TraceCorpus corpus;
  EXPECT_TRUE(corpus.Add(MakeTrace(1), /*new_states=*/3, /*heat=*/0));
  EXPECT_TRUE(corpus.Add(MakeTrace(2), 1, 0));
  // Same decisions again — a different execution can rediscover the same
  // schedule; the corpus must keep exactly one copy.
  EXPECT_FALSE(corpus.Add(MakeTrace(1), 5, 0));
  EXPECT_EQ(corpus.Size(), 2u);
  const auto stats = corpus.Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.added, 2u);
  EXPECT_EQ(stats.duplicates, 1u);
}

TEST(TraceCorpus, EnergyRewardsDiscoveryAndDecaysWithSpawns) {
  // Base weight grows with discoveries, heat counts 4x, and the harmonic
  // decay in `spawned` always leaves at least weight 1.
  EXPECT_GT(TraceCorpus::Energy(10, 0, 0), TraceCorpus::Energy(1, 0, 0));
  EXPECT_GT(TraceCorpus::Energy(0, 5, 0), TraceCorpus::Energy(5, 0, 0));
  EXPECT_GT(TraceCorpus::Energy(10, 0, 0), TraceCorpus::Energy(10, 0, 50));
  EXPECT_GE(TraceCorpus::Energy(0, 0, 1'000'000), 1u);
}

TEST(TraceCorpus, SampleReturnsStoredTracesAndDecaysThem) {
  TraceCorpus corpus;
  const Trace stored = MakeTrace(42);
  ASSERT_TRUE(corpus.Add(stored, 2, 0));

  const auto sampled = corpus.Sample(/*draw_shard=*/7, /*draw_entry=*/13);
  ASSERT_TRUE(sampled.has_value());
  EXPECT_EQ(*sampled, stored);

  // Each sample bumps the entry's spawned count, shrinking its energy.
  const std::vector<CorpusEntrySnapshot> before = corpus.Snapshot();
  ASSERT_EQ(before.size(), 1u);
  for (int i = 0; i < 8; ++i) (void)corpus.Sample(i, i);
  const std::vector<CorpusEntrySnapshot> after = corpus.Snapshot();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_GT(after[0].spawned, before[0].spawned);
  EXPECT_LT(after[0].energy, before[0].energy);
  EXPECT_EQ(corpus.Stats().sampled, 9u);
}

TEST(TraceCorpus, EmptyCorpusSamplesNothing) {
  TraceCorpus corpus;
  EXPECT_FALSE(corpus.Sample(0, 0).has_value());
  EXPECT_EQ(corpus.Stats().sampled, 0u);
}

TEST(TraceCorpus, CapEvictsOnlyForStrictlyHigherEnergy) {
  // The ctor clamps the cap to the shard count (16).
  TraceCorpus corpus(/*max_entries=*/16);
  for (std::uint64_t tag = 0; tag < 64; ++tag) {
    (void)corpus.Add(MakeTrace(tag), /*new_states=*/1 + tag, 0);
  }
  EXPECT_LE(corpus.Size(), 16u);
  const auto stats = corpus.Stats();
  // Later traces carry monotonically higher energy, so at least some of the
  // full shards must have replaced their minimum-energy entry.
  EXPECT_GT(stats.evicted, 0u);
  EXPECT_EQ(stats.entries, corpus.Size());
}

// ---------------------------------------------------------------------------
// Persistence: SaveDir / LoadDir round-trip.

TEST(TraceCorpusPersistence, RoundTripRestoresTracesAndEnergy) {
  const std::string dir = ScratchDir("roundtrip");
  TraceCorpus first;
  ASSERT_TRUE(first.Add(MakeTrace(1), 3, 1));
  ASSERT_TRUE(first.Add(MakeTrace(2), 1, 0));
  (void)first.Sample(0, 0);  // spawned counts must survive the round-trip
  ASSERT_EQ(first.SaveDir(dir), 2u);

  TraceCorpus second;
  ASSERT_EQ(second.LoadDir(dir), 2u);
  EXPECT_EQ(second.Size(), 2u);
  EXPECT_EQ(second.Stats().loaded, 2u);

  auto key = [](const CorpusEntrySnapshot& s) { return s.hash; };
  std::vector<CorpusEntrySnapshot> a = first.Snapshot();
  std::vector<CorpusEntrySnapshot> b = second.Snapshot();
  std::sort(a.begin(), a.end(),
            [&](const auto& x, const auto& y) { return key(x) < key(y); });
  std::sort(b.begin(), b.end(),
            [&](const auto& x, const auto& y) { return key(x) < key(y); });
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].hash, b[i].hash);
    EXPECT_EQ(a[i].new_states, b[i].new_states);
    EXPECT_EQ(a[i].heat, b[i].heat);
    EXPECT_EQ(a[i].spawned, b[i].spawned);
    EXPECT_EQ(a[i].energy, b[i].energy);
    EXPECT_EQ(a[i].decisions, b[i].decisions);
  }
}

TEST(TraceCorpusPersistence, MissingDirectoryLoadsColdNotThrows) {
  TraceCorpus corpus;
  EXPECT_EQ(corpus.LoadDir(ScratchDir("never_created")), 0u);
  EXPECT_EQ(corpus.Size(), 0u);
}

TEST(TraceCorpusPersistence, ReloadIntoNonEmptyCorpusSkipsDuplicates) {
  const std::string dir = ScratchDir("dups");
  TraceCorpus saver;
  ASSERT_TRUE(saver.Add(MakeTrace(1), 1, 0));
  ASSERT_TRUE(saver.Add(MakeTrace(2), 1, 0));
  (void)saver.SaveDir(dir);

  TraceCorpus loader;
  ASSERT_TRUE(loader.Add(MakeTrace(1), 1, 0));  // already holds one of them
  EXPECT_EQ(loader.LoadDir(dir), 1u);
  EXPECT_EQ(loader.Size(), 2u);
  EXPECT_EQ(loader.Stats().duplicates, 1u);
}

// ---------------------------------------------------------------------------
// MutationStrategy: determinism and prefix replay.

TEST(MutationStrategy, SameSeedSameCorpusSameExecutions) {
  // Two independently loaded corpora with identical content, two strategy
  // instances with the same seed: every mutated execution must be identical.
  const std::string dir = ScratchDir("determinism");
  TraceCorpus seed_corpus;
  ASSERT_TRUE(seed_corpus.Add(MakeTrace(1, 10), 4, 0));
  ASSERT_TRUE(seed_corpus.Add(MakeTrace(2, 8), 2, 1));
  ASSERT_EQ(seed_corpus.SaveDir(dir), 2u);

  auto run = [&dir]() {
    TraceCorpus corpus;
    corpus.LoadDir(dir);
    MutationStrategy strategy(/*seed=*/2016, &corpus);
    TestConfig config;
    config.iterations = 20;
    config.max_steps = 500;
    config.stateful = true;
    config.stop_on_first_bug = false;
    const systest::api::Scenario& scenario =
        systest::api::ScenarioRegistry::Instance().Get("samplerepl-fixed");
    const systest::Harness harness = scenario.make(systest::api::ParamMap{});
    systest::FingerprintSet visited(1u << 16);
    std::vector<std::string> traces;
    for (std::uint64_t i = 0; i < config.iterations; ++i) {
      const ExecutionResult r =
          systest::RunOneExecution(config, harness, strategy, i, &visited);
      traces.push_back(r.trace.ToString());
    }
    return traces;
  };
  const std::vector<std::string> first = run();
  const std::vector<std::string> second = run();
  ASSERT_EQ(first.size(), 20u);
  EXPECT_EQ(first, second);
}

TEST(MutationStrategy, NullCorpusDegradesToPureRandom) {
  MutationStrategy strategy(7, nullptr);
  strategy.PrepareIteration(0, 100);
  EXPECT_EQ(strategy.CurrentMutator(), MutationStrategy::Mutator::kNone);
  EXPECT_FALSE(strategy.PrefixActive());
  EXPECT_EQ(strategy.PruneHoldoffSteps(), 0u);
  const systest::MachineId picks[] = {1, 2, 3};
  // Choice points must all answer without a corpus.
  (void)strategy.Next(picks, 0);
  (void)strategy.NextBool();
  EXPECT_LT(strategy.NextInt(5), 5u);
}

TEST(MutationStrategy, PrefixComesFromTheSampledTrace) {
  TraceCorpus corpus;
  ASSERT_TRUE(corpus.Add(MakeTrace(3, 12), 6, 0));
  MutationStrategy strategy(11, &corpus);
  bool saw_prefix = false;
  for (std::uint64_t i = 0; i < 32 && !saw_prefix; ++i) {
    strategy.PrepareIteration(i, 200);
    if (strategy.PrefixActive()) {
      saw_prefix = true;
      EXPECT_NE(strategy.CurrentMutator(), MutationStrategy::Mutator::kNone);
      EXPECT_GT(strategy.PrefixSize(), 0u);
    }
  }
  EXPECT_TRUE(saw_prefix) << "no iteration ever replayed a corpus prefix";
  EXPECT_GT(corpus.Stats().sampled, 0u);
}

// ---------------------------------------------------------------------------
// Acceptance: corpus persists across sessions, and a mutated execution
// replays bit-for-bit through a session with no fault flags.

TEST(CorpusSession, SavedCorpusIsReloadedByTheNextRun) {
  const std::string dir = ScratchDir("session_reload");

  SessionConfig first;
  first.scenario = "samplerepl-fixed";
  first.strategy = "mutate";
  first.corpus_dir = dir;
  first.iterations = 200;
  first.seed = 2016;
  const SessionReport seeded = TestSession(first).Run();
  EXPECT_TRUE(seeded.corpus_on);
  EXPECT_TRUE(seeded.report.stateful) << "corpus must force stateful";
  ASSERT_GT(seeded.corpus.added, 0u) << "no interesting traces were fed";
  ASSERT_TRUE(std::filesystem::exists(std::filesystem::path(dir) /
                                      "corpus.index"));

  SessionConfig second;
  second.scenario = "samplerepl-fixed";
  second.strategy = "mutate";
  second.corpus_dir = dir;
  second.iterations = 50;
  second.seed = 99;  // different seed: the corpus is the shared memory
  const SessionReport resumed = TestSession(second).Run();
  EXPECT_TRUE(resumed.corpus_on);
  EXPECT_GT(resumed.corpus.loaded, 0u) << "second run did not reload";
  EXPECT_GT(resumed.corpus.sampled, 0u) << "mutate never sampled the corpus";
}

TEST(CorpusSession, MutatedExecutionReplaysBitForBitWithoutFaultFlags) {
  const std::string dir = ScratchDir("session_replay");

  // Seed the corpus with a fault-heavy exploration (crash/restart armed).
  SessionConfig seed_run;
  seed_run.scenario = "samplerepl-node-crash";
  seed_run.strategy = "mutate";
  seed_run.corpus_dir = dir;
  seed_run.iterations = 150;
  seed_run.seed = 2016;
  seed_run.stop_on_first_bug = false;
  (void)TestSession(seed_run).Run();

  // Second run mutates the reloaded corpus; capture every completed (not
  // pruned, not buggy) execution's trace — those ran to quiescence, so their
  // decision list is complete and must replay exactly.
  class Collector final : public systest::api::RunObserver {
   public:
    [[nodiscard]] bool WantsIterations() const override { return true; }
    void OnIteration(const systest::api::IterationInfo& info) override {
      if (!info.result.pruned && !info.result.bug_found &&
          !info.result.hit_step_bound) {
        traces.push_back(info.result.trace);
      }
    }
    std::vector<Trace> traces;
  };
  Collector collector;
  SessionConfig mutate_run;
  mutate_run.scenario = "samplerepl-node-crash";
  mutate_run.strategy = "mutate";
  mutate_run.corpus_dir = dir;
  mutate_run.iterations = 60;
  mutate_run.seed = 4096;
  mutate_run.stop_on_first_bug = false;
  TestSession session(mutate_run);
  session.AddObserver(&collector);
  const SessionReport mutated = session.Run();
  EXPECT_GT(mutated.corpus.loaded, 0u);
  ASSERT_FALSE(collector.traces.empty()) << "no completed executions";

  // Replay the first few on the main thread with NO fault configuration:
  // the trace alone must reproduce the identical decision sequence.
  std::size_t checked = 0;
  for (const Trace& trace : collector.traces) {
    if (checked == 3) break;
    ++checked;
    SessionConfig replay;
    replay.scenario = "samplerepl-node-crash";
    replay.replay_trace = trace;
    const SessionReport replayed = TestSession(replay).Run();
    EXPECT_FALSE(replayed.report.bug_found)
        << "clean execution diverged on replay: "
        << replayed.report.bug_message;
    EXPECT_EQ(replayed.report.bug_trace, trace)
        << "replay was not bit-for-bit";
  }
  EXPECT_GT(checked, 0u);
}

TEST(CorpusSession, ResolveConfigArmsCorpusForMutateAndDirOnly) {
  SessionConfig by_strategy;
  by_strategy.scenario = "samplerepl-fixed";
  by_strategy.strategy = "mutate";
  EXPECT_TRUE(TestSession(by_strategy).ResolveConfig().corpus_mutation);
  EXPECT_TRUE(TestSession(by_strategy).ResolveConfig().stateful);

  SessionConfig by_dir;
  by_dir.scenario = "samplerepl-fixed";
  by_dir.corpus_dir = ScratchDir("arm_by_dir");
  EXPECT_TRUE(TestSession(by_dir).ResolveConfig().corpus_mutation);

  SessionConfig off;
  off.scenario = "samplerepl-fixed";
  EXPECT_FALSE(TestSession(off).ResolveConfig().corpus_mutation);

  // Replay mode never arms, even with a corpus_dir configured.
  SessionConfig replaying;
  replaying.scenario = "samplerepl-fixed";
  replaying.corpus_dir = ScratchDir("arm_replay");
  replaying.replay_trace = MakeTrace(1);
  EXPECT_FALSE(TestSession(replaying).ResolveConfig().corpus_mutation);
}

}  // namespace
