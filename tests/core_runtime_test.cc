// Unit tests for the SysTest core runtime: machine semantics (send, raise,
// goto, defer, ignore, halt, receive), monitor semantics, and end-of-execution
// property checks.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/systest.h"

namespace {

using systest::BugFound;
using systest::BugKind;
using systest::Event;
using systest::Harness;
using systest::Machine;
using systest::MachineId;
using systest::Monitor;
using systest::RoundRobinStrategy;
using systest::Runtime;
using systest::RuntimeOptions;
using systest::Task;
using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;

// ---------------------------------------------------------------------------
// Events shared by the test machines.

struct Ping final : Event {
  explicit Ping(int n) : n(n) {}
  int n;
};
struct Pong final : Event {
  explicit Pong(int n) : n(n) {}
  int n;
};
struct Kick final : Event {};
struct Stop final : Event {};
struct Probe final : Event {};

// Shared observation channel for assertions. Reset per test.
struct Observations {
  std::vector<std::string> log;
  int counter = 0;
};
Observations* g_obs = nullptr;

class ObservationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    obs_ = std::make_unique<Observations>();
    g_obs = obs_.get();
  }
  void TearDown() override { g_obs = nullptr; }
  std::unique_ptr<Observations> obs_;
};

/// Runs one deterministic (round-robin) execution of `harness` until
/// quiescence or `max_steps`. Returns steps taken.
std::uint64_t RunDeterministic(const Harness& harness,
                               std::uint64_t max_steps = 10'000) {
  RoundRobinStrategy strategy;
  strategy.PrepareIteration(0, max_steps);
  RuntimeOptions options;
  options.max_steps = max_steps;
  Runtime rt(strategy, options);
  harness(rt);
  while (rt.Steps() < max_steps && rt.Step()) {
  }
  rt.CheckTermination(rt.Steps() >= max_steps);
  return rt.Steps();
}

// ---------------------------------------------------------------------------
// Ping-pong: basic send/handle across two machines.

class Ponger final : public Machine {
 public:
  Ponger() {
    State("Run").On<Ping>(&Ponger::OnPing);
    SetStart("Run");
  }

 private:
  void OnPing(const Ping& ping) {
    g_obs->log.push_back("ping" + std::to_string(ping.n));
    Send<Pong>(pinger_, ping.n);
  }

 public:
  MachineId pinger_;
};

class Pinger final : public Machine {
 public:
  explicit Pinger(int rounds) : rounds_(rounds) {
    State("Run").OnEntry(&Pinger::OnStart).On<Pong>(&Pinger::OnPong);
    SetStart("Run");
  }
  MachineId ponger_;

 private:
  void OnStart() { Send<Ping>(ponger_, 0); }
  void OnPong(const Pong& pong) {
    g_obs->log.push_back("pong" + std::to_string(pong.n));
    if (pong.n + 1 < rounds_) {
      Send<Ping>(ponger_, pong.n + 1);
    }
  }
  int rounds_;
};

TEST_F(ObservationFixture, PingPongDeliversInOrder) {
  RunDeterministic([](Runtime& rt) {
    // Two-phase wiring: create both, then fix up ids via direct access.
    auto ponger_id = rt.CreateMachine<Ponger>("Ponger");
    auto pinger_id = rt.CreateMachine<Pinger>("Pinger", 3);
    static_cast<Ponger*>(rt.FindMachine(ponger_id))->pinger_ = pinger_id;
    static_cast<Pinger*>(rt.FindMachine(pinger_id))->ponger_ = ponger_id;
  });
  ASSERT_EQ(g_obs->log.size(), 6u);
  EXPECT_EQ(g_obs->log[0], "ping0");
  EXPECT_EQ(g_obs->log[1], "pong0");
  EXPECT_EQ(g_obs->log[4], "ping2");
  EXPECT_EQ(g_obs->log[5], "pong2");
}

// ---------------------------------------------------------------------------
// Raise: handled before queued events, in the same step.

class Raiser final : public Machine {
 public:
  Raiser() {
    State("Run")
        .On<Kick>(&Raiser::OnKick)
        .On<Probe>(&Raiser::OnProbe)
        .On<Stop>(&Raiser::OnStop);
    SetStart("Run");
  }

 private:
  void OnKick(const Kick&) {
    Send<Stop>(Id());  // queued
    Raise<Probe>();    // must run before Stop
  }
  void OnProbe(const Probe&) { g_obs->log.push_back("probe"); }
  void OnStop(const Stop&) { g_obs->log.push_back("stop"); }
};

TEST_F(ObservationFixture, RaisedEventBeatsQueuedEvent) {
  RunDeterministic([](Runtime& rt) {
    auto id = rt.CreateMachine<Raiser>("Raiser");
    rt.SendEvent<Kick>(id);
  });
  ASSERT_EQ(g_obs->log.size(), 2u);
  EXPECT_EQ(g_obs->log[0], "probe");
  EXPECT_EQ(g_obs->log[1], "stop");
}

// ---------------------------------------------------------------------------
// Goto: exit and entry actions run in order; OnGoto transitions directly.

class Walker final : public Machine {
 public:
  Walker() {
    State("A")
        .OnEntry(&Walker::EnterA)
        .OnExit(&Walker::ExitA)
        .On<Kick>(&Walker::OnKickA)
        .OnGoto<Probe>("C");
    State("B").OnEntry(&Walker::EnterB).On<Stop>(&Walker::OnStopB);
    State("C").OnEntry(&Walker::EnterC);
    SetStart("A");
  }

 private:
  void EnterA() { g_obs->log.push_back("enterA"); }
  void ExitA() { g_obs->log.push_back("exitA"); }
  void OnKickA(const Kick&) { Goto("B"); }
  void EnterB() { g_obs->log.push_back("enterB"); }
  void OnStopB(const Stop&) { g_obs->log.push_back("stopB"); }
  void EnterC() { g_obs->log.push_back("enterC"); }
};

TEST_F(ObservationFixture, GotoRunsExitThenEntry) {
  RunDeterministic([](Runtime& rt) {
    auto id = rt.CreateMachine<Walker>("Walker");
    rt.SendEvent<Kick>(id);
    rt.SendEvent<Stop>(id);
  });
  ASSERT_EQ(g_obs->log.size(), 4u);
  EXPECT_EQ(g_obs->log[0], "enterA");
  EXPECT_EQ(g_obs->log[1], "exitA");
  EXPECT_EQ(g_obs->log[2], "enterB");
  EXPECT_EQ(g_obs->log[3], "stopB");
}

TEST_F(ObservationFixture, DeclaredGotoTransitionsWithoutHandler) {
  RunDeterministic([](Runtime& rt) {
    auto id = rt.CreateMachine<Walker>("Walker");
    rt.SendEvent<Probe>(id);  // OnGoto<Probe>("C")
  });
  ASSERT_EQ(g_obs->log.size(), 3u);
  EXPECT_EQ(g_obs->log[1], "exitA");
  EXPECT_EQ(g_obs->log[2], "enterC");
}

// ---------------------------------------------------------------------------
// Defer and Ignore.

class Deferrer final : public Machine {
 public:
  Deferrer() {
    State("First")
        .Defer<Probe>()
        .Ignore<Stop>()
        .On<Kick>(&Deferrer::OnKick);
    State("Second").OnEntry(&Deferrer::EnterSecond).On<Probe>(&Deferrer::OnProbe);
    SetStart("First");
  }

 private:
  void OnKick(const Kick&) { Goto("Second"); }
  void EnterSecond() { g_obs->log.push_back("second"); }
  void OnProbe(const Probe&) { g_obs->log.push_back("probe"); }
};

TEST_F(ObservationFixture, DeferredEventIsHandledAfterTransition) {
  RunDeterministic([](Runtime& rt) {
    auto id = rt.CreateMachine<Deferrer>("Deferrer");
    rt.SendEvent<Probe>(id);  // deferred in First
    rt.SendEvent<Stop>(id);   // ignored in First
    rt.SendEvent<Kick>(id);   // transitions to Second
  });
  ASSERT_EQ(g_obs->log.size(), 2u);
  EXPECT_EQ(g_obs->log[0], "second");
  EXPECT_EQ(g_obs->log[1], "probe");
}

// ---------------------------------------------------------------------------
// Unhandled events are a bug.

class NoHandler final : public Machine {
 public:
  NoHandler() {
    State("Run");
    SetStart("Run");
  }
};

TEST_F(ObservationFixture, UnhandledEventIsReported) {
  try {
    RunDeterministic([](Runtime& rt) {
      auto id = rt.CreateMachine<NoHandler>("NoHandler");
      rt.SendEvent<Kick>(id);
    });
    FAIL() << "expected BugFound";
  } catch (const BugFound& bug) {
    EXPECT_EQ(bug.Kind(), BugKind::kUnhandledEvent);
    EXPECT_NE(std::string(bug.what()).find("Kick"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Halt: events to halted machines are dropped silently.

class Halter final : public Machine {
 public:
  Halter() {
    State("Run").On<Kick>(&Halter::OnKick).On<Probe>(&Halter::OnProbe);
    SetStart("Run");
  }

 private:
  void OnKick(const Kick&) {
    g_obs->log.push_back("kick");
    Halt();
  }
  void OnProbe(const Probe&) { g_obs->log.push_back("probe"); }
};

TEST_F(ObservationFixture, HaltedMachineDropsSubsequentEvents) {
  RunDeterministic([](Runtime& rt) {
    auto id = rt.CreateMachine<Halter>("Halter");
    rt.SendEvent<Kick>(id);
    rt.SendEvent<Probe>(id);  // must be dropped, not unhandled
  });
  ASSERT_EQ(g_obs->log.size(), 1u);
  EXPECT_EQ(g_obs->log[0], "kick");
}

TEST_F(ObservationFixture, HaltEventHaltsMachine) {
  RunDeterministic([](Runtime& rt) {
    auto id = rt.CreateMachine<Halter>("Halter");
    rt.SendEvent(id, systest::MakeEvent<systest::HaltEvent>());
    rt.SendEvent<Probe>(id);
  });
  EXPECT_TRUE(g_obs->log.empty());
}

// ---------------------------------------------------------------------------
// Receive: coroutine handlers block for specific events; others stay queued.

class Receiver final : public Machine {
 public:
  Receiver() {
    State("Run").OnEntry(&Receiver::Protocol).On<Stop>(&Receiver::OnStop);
    SetStart("Run");
  }

 private:
  Task Protocol() {
    auto ping = co_await Receive<Ping>();
    g_obs->log.push_back("got-ping" + std::to_string(ping->n));
    auto pong = co_await Receive<Pong>();
    g_obs->log.push_back("got-pong" + std::to_string(pong->n));
  }
  void OnStop(const Stop&) { g_obs->log.push_back("stop"); }
};

TEST_F(ObservationFixture, ReceiveDequeuesOnlyMatchingEvents) {
  RunDeterministic([](Runtime& rt) {
    auto id = rt.CreateMachine<Receiver>("Receiver");
    // Pong arrives before Ping, but the protocol waits for Ping first: the
    // Pong must stay queued and be delivered to the second Receive.
    rt.SendEvent<Pong>(id, 7);
    rt.SendEvent<Ping>(id, 3);
    rt.SendEvent<Stop>(id);
  });
  ASSERT_EQ(g_obs->log.size(), 3u);
  EXPECT_EQ(g_obs->log[0], "got-ping3");
  EXPECT_EQ(g_obs->log[1], "got-pong7");
  EXPECT_EQ(g_obs->log[2], "stop");  // handled after the coroutine finished
}

// Nested coroutines: a handler co_awaits a sub-task that itself receives.
class NestedReceiver final : public Machine {
 public:
  NestedReceiver() {
    State("Run").OnEntry(&NestedReceiver::Protocol);
    SetStart("Run");
  }

 private:
  systest::TaskOf<int> ReceiveTwo() {
    auto a = co_await Receive<Ping>();
    auto b = co_await Receive<Ping>();
    co_return a->n + b->n;
  }
  Task Protocol() {
    const int sum = co_await ReceiveTwo();
    g_obs->counter = sum;
  }
};

TEST_F(ObservationFixture, NestedTasksPropagateValues) {
  RunDeterministic([](Runtime& rt) {
    auto id = rt.CreateMachine<NestedReceiver>("NestedReceiver");
    rt.SendEvent<Ping>(id, 20);
    rt.SendEvent<Ping>(id, 22);
  });
  EXPECT_EQ(g_obs->counter, 42);
}

class AnyReceiver final : public Machine {
 public:
  AnyReceiver() {
    State("Run").OnEntry(&AnyReceiver::Protocol).Ignore<Pong>();
    SetStart("Run");
  }

 private:
  Task Protocol() {
    auto ev = co_await ReceiveAny<Ping, Stop>();
    g_obs->log.push_back(ev->Name());
  }
};

TEST_F(ObservationFixture, ReceiveAnyTakesFirstMatching) {
  RunDeterministic([](Runtime& rt) {
    auto id = rt.CreateMachine<AnyReceiver>("AnyReceiver");
    rt.SendEvent<Pong>(id, 1);  // not in the wait set — stays queued
    rt.SendEvent<Stop>(id);
  });
  ASSERT_EQ(g_obs->log.size(), 1u);
  EXPECT_EQ(g_obs->log[0], "Stop");
}

// ---------------------------------------------------------------------------
// Deadlock: a machine blocked in Receive at quiescence.

class Starver final : public Machine {
 public:
  Starver() {
    State("Run").OnEntry(&Starver::Protocol);
    SetStart("Run");
  }

 private:
  Task Protocol() {
    (void)co_await Receive<Ping>();  // never sent
  }
};

TEST_F(ObservationFixture, BlockedReceiveAtQuiescenceIsDeadlock) {
  try {
    RunDeterministic(
        [](Runtime& rt) { rt.CreateMachine<Starver>("Starver"); });
    FAIL() << "expected BugFound";
  } catch (const BugFound& bug) {
    EXPECT_EQ(bug.Kind(), BugKind::kDeadlock);
  }
}

// ---------------------------------------------------------------------------
// Monitors: safety assertion and hot-at-quiescence liveness.

struct Observed final : Event {};
struct Progress final : Event {};

class CountingMonitor final : public Monitor {
 public:
  explicit CountingMonitor(int limit) : limit_(limit) {
    State("Run").On<Observed>(&CountingMonitor::OnObserved);
    SetStart("Run");
  }

 private:
  void OnObserved() {
    ++count_;
    Assert(count_ <= limit_, "observed too many notifications");
  }
  int limit_;
  int count_ = 0;
};

class Notifier final : public Machine {
 public:
  explicit Notifier(int times) : times_(times) {
    State("Run").OnEntry(&Notifier::OnStart);
    SetStart("Run");
  }

 private:
  void OnStart() {
    for (int i = 0; i < times_; ++i) {
      Notify<CountingMonitor, Observed>();
    }
  }
  int times_;
};

TEST_F(ObservationFixture, SafetyMonitorAssertFires) {
  try {
    RunDeterministic([](Runtime& rt) {
      rt.RegisterMonitor<CountingMonitor>("CountingMonitor", 2);
      rt.CreateMachine<Notifier>("Notifier", 3);
    });
    FAIL() << "expected BugFound";
  } catch (const BugFound& bug) {
    EXPECT_EQ(bug.Kind(), BugKind::kSafety);
    EXPECT_NE(std::string(bug.what()).find("too many"), std::string::npos);
  }
}

TEST_F(ObservationFixture, SafetyMonitorWithinLimitPasses) {
  EXPECT_NO_THROW(RunDeterministic([](Runtime& rt) {
    rt.RegisterMonitor<CountingMonitor>("CountingMonitor", 3);
    rt.CreateMachine<Notifier>("Notifier", 3);
  }));
}

class HotColdMonitor final : public Monitor {
 public:
  HotColdMonitor() {
    State("Cold").Cold().On<Observed>(&HotColdMonitor::ToHot).Ignore<Progress>();
    State("Hot").Hot().On<Progress>(&HotColdMonitor::ToCold).Ignore<Observed>();
    SetStart("Cold");
  }

 private:
  void ToHot() { Goto("Hot"); }
  void ToCold() { Goto("Cold"); }
};

class HotDriver final : public Machine {
 public:
  explicit HotDriver(bool make_progress) : make_progress_(make_progress) {
    State("Run").OnEntry(&HotDriver::OnStart);
    SetStart("Run");
  }

 private:
  void OnStart() {
    Notify<HotColdMonitor, Observed>();
    if (make_progress_) {
      Notify<HotColdMonitor, Progress>();
    }
  }
  bool make_progress_;
};

TEST_F(ObservationFixture, HotMonitorAtQuiescenceIsLivenessBug) {
  try {
    RunDeterministic([](Runtime& rt) {
      rt.RegisterMonitor<HotColdMonitor>("HotColdMonitor");
      rt.CreateMachine<HotDriver>("HotDriver", false);
    });
    FAIL() << "expected BugFound";
  } catch (const BugFound& bug) {
    EXPECT_EQ(bug.Kind(), BugKind::kLiveness);
  }
}

TEST_F(ObservationFixture, ColdMonitorAtQuiescencePasses) {
  EXPECT_NO_THROW(RunDeterministic([](Runtime& rt) {
    rt.RegisterMonitor<HotColdMonitor>("HotColdMonitor");
    rt.CreateMachine<HotDriver>("HotDriver", true);
  }));
}

// ---------------------------------------------------------------------------
// Machine-level Assert.

class SelfAsserter final : public Machine {
 public:
  SelfAsserter() {
    State("Run").OnEntry(&SelfAsserter::OnStart);
    SetStart("Run");
  }

 private:
  void OnStart() { Assert(false, "boom"); }
};

TEST_F(ObservationFixture, MachineAssertIsSafetyBug) {
  try {
    RunDeterministic(
        [](Runtime& rt) { rt.CreateMachine<SelfAsserter>("SelfAsserter"); });
    FAIL() << "expected BugFound";
  } catch (const BugFound& bug) {
    EXPECT_EQ(bug.Kind(), BugKind::kSafety);
    EXPECT_NE(std::string(bug.what()).find("boom"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Runtime stats (feeds the Table 1 bench).

TEST_F(ObservationFixture, StatsCountStatesAndHandlers) {
  RoundRobinStrategy strategy;
  strategy.PrepareIteration(0, 100);
  Runtime rt(strategy, {});
  rt.CreateMachine<Walker>("Walker");
  const auto stats = rt.GetStats();
  EXPECT_EQ(stats.machines, 1u);
  EXPECT_EQ(stats.states, 3u);
  EXPECT_GE(stats.action_handlers, 5u);
  EXPECT_EQ(stats.declared_transitions, 1u);  // OnGoto<Probe>
}

}  // namespace
