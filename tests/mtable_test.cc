// Tests for the Live Table Migration case study (§4): the fixed
// MigratingTable survives systematic differential testing against the
// reference table, and every re-introduced Table 2 bug is detected.
#include <gtest/gtest.h>

#include "core/systest.h"
#include "mtable/bugs.h"
#include "mtable/harness.h"

namespace {

using mtable::EnableBug;
using mtable::MigrationHarnessOptions;
using mtable::MakeMigrationHarness;
using mtable::MTableBugId;
using systest::BugKind;
using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;

TestConfig Config(systest::StrategyName strategy, std::uint64_t iterations) {
  TestConfig config = mtable::DefaultConfig(strategy);
  config.iterations = iterations;
  return config;
}

TEST(MTableFixed, SurvivesDifferentialTestingRandom) {
  MigrationHarnessOptions options;  // no bugs
  const TestReport report =
      TestingEngine(Config("random", 4'000),
                    MakeMigrationHarness(options))
          .Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
  EXPECT_EQ(report.executions, 4'000u);
}

TEST(MTableFixed, SurvivesDifferentialTestingPct) {
  MigrationHarnessOptions options;
  const TestReport report =
      TestingEngine(Config("pct", 4'000),
                    MakeMigrationHarness(options))
          .Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

TEST(MTableFixed, SurvivesWithBiggerWorkload) {
  MigrationHarnessOptions options;
  options.num_services = 3;
  options.ops_per_service = 6;
  const TestReport report =
      TestingEngine(Config("random", 1'500),
                    MakeMigrationHarness(options))
          .Run();
  EXPECT_FALSE(report.bug_found) << report.Summary();
}

// One parameterized sweep over all eleven Table 2 bugs: each must be found
// by the random scheduler within the budget.
class MTableBugSweep : public ::testing::TestWithParam<MTableBugId> {};

TEST_P(MTableBugSweep, RandomSchedulerFindsBug) {
  MigrationHarnessOptions options;
  options.bugs = EnableBug(GetParam());
  TestConfig config = Config("random", 100'000);
  config.time_budget_seconds = 60;
  const TestReport report =
      TestingEngine(config, MakeMigrationHarness(options)).Run();
  ASSERT_TRUE(report.bug_found)
      << ToString(GetParam()) << ": " << report.Summary();
  EXPECT_EQ(report.bug_kind, BugKind::kSafety);
}

INSTANTIATE_TEST_SUITE_P(
    AllBugs, MTableBugSweep, ::testing::ValuesIn(mtable::kAllMTableBugs),
    [](const ::testing::TestParamInfo<MTableBugId>& info) {
      return std::string(ToString(info.param));
    });

TEST(MTableBugs, BugTraceReplaysDeterministically) {
  MigrationHarnessOptions options;
  options.bugs = EnableBug(MTableBugId::kInsertBehindMigrator);
  TestingEngine engine(Config("random", 100'000),
                       MakeMigrationHarness(options));
  const TestReport report = engine.Run();
  ASSERT_TRUE(report.bug_found);
  const TestReport replay = engine.Replay(report.bug_trace);
  ASSERT_TRUE(replay.bug_found);
  EXPECT_EQ(replay.bug_message, report.bug_message);
  EXPECT_EQ(replay.ndc, report.ndc);
}

// A scripted custom test case (the paper's mechanism for bugs whose
// triggering inputs are rare under the default distribution): a delete in a
// different partition right after an operation in another one pins
// DeletePrimaryKey deterministically enough to find it fast.
TEST(MTableBugs, CustomTestCasePinsDeletePrimaryKey) {
  using mtable::ScriptedOp;
  MigrationHarnessOptions options;
  options.bugs = EnableBug(MTableBugId::kDeletePrimaryKey);
  ScriptedOp touch_p0;
  touch_p0.kind = ScriptedOp::Kind::kRetrieve;
  touch_p0.partition = 0;
  touch_p0.row = 0;
  ScriptedOp delete_p1;
  delete_p1.kind = ScriptedOp::Kind::kDelete;
  delete_p1.partition = 1;
  delete_p1.row = 0;
  options.scripts = {{touch_p0, delete_p1}};
  options.num_services = 1;
  TestConfig config = Config("random", 20'000);
  const TestReport report =
      TestingEngine(config, MakeMigrationHarness(options)).Run();
  ASSERT_TRUE(report.bug_found) << report.Summary();
  EXPECT_LE(report.bug_iteration, 1'000u)
      << "the custom test case should trigger the bug quickly";
}

}  // namespace
