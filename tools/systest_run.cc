// systest_run — command-line driver for the SysTest scenario registry.
//
// Entirely registry-driven: scenarios self-register from their domains
// (SYSTEST_REGISTER_SCENARIO) and strategies from StrategyRegistry, so this
// file carries no per-domain includes and no hardcoded harness table. Every
// run goes through the TestSession facade (serial, sharded-parallel,
// portfolio or replay alike).
//
// Examples:
//   systest_run --list
//   systest_run --list --tag buggy --json
//   systest_run --scenario samplerepl-safety --threads 4 --iterations 20000
//   systest_run --scenario race --strategy portfolio --trace-out bug.trace
//   systest_run --scenario race --replay bug.trace
//   systest_run --scenario chaintable-lost-update --param writers=3 --param ops=2
//   systest_run --all --iterations 50 --json        # CI smoke sweep
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "api/reporters.h"
#include "api/scenario_registry.h"
#include "api/session.h"
#include "api/strategy_registry.h"

namespace {

using systest::StrategyRegistry;
using systest::api::JsonEscape;
using systest::api::ParamMap;
using systest::api::ParamSpec;
using systest::api::Scenario;
using systest::api::ScenarioRegistry;
using systest::api::SessionConfig;
using systest::api::SessionReport;
using systest::api::TestSession;

// ---------------------------------------------------------------------------
// Argument parsing.

struct Options {
  std::string scenario;
  std::string tag;        // with --list: filter; without: run all matching
  bool all = false;       // run every registered scenario
  std::string strategy;   // empty = scenario default
  int threads = 0;        // 0 = serial (portfolio auto-fields workers)
  std::uint64_t seed = 0;
  bool seed_set = false;
  std::uint64_t iterations = 0;  // 0 = scenario default
  std::uint64_t max_steps = 0;   // 0 = scenario default
  int budget = -1;               // <0 = scenario default
  double time_budget = -1;       // <0 = scenario default
  std::vector<std::string> params;
  std::string trace_out;
  std::string replay;
  // Coverage-guided exploration: persist/load the trace corpus here. With
  // --all / --tag the path is a per-scenario SUBDIRECTORY (corpora from
  // different scenarios must never mix — their traces replay different
  // machines).
  std::string corpus_dir;
  long long corpus_max = -1;  // <0 = library default
  bool verbose = false;
  bool list = false;
  bool json = false;
  bool stateful = false;
  bool fingerprint_stats = false;  // implies --stateful
  // Tiered visited set (core/fingerprint.h). Each implies --stateful.
  long long max_visited = -1;      // total distinct-state budget; <0 = default
  long long max_visited_hot = -1;  // hot-level capacity; <0 = default
  std::string visited_spill_dir;   // spill compacted runs here; "" = RAM
  // Fault plane. Each budget flag overrides exactly the field it names and
  // implies --faults; bare --faults arms crash/restart 1/1 only when the
  // resolved config would otherwise have no faults. Replay needs NONE of
  // these: the failure schedule is read from the trace.
  bool faults = false;
  long long max_crashes = -1;   // <0 = not set
  long long max_restarts = -1;
  long long drop_den = -1;
  long long max_dups = -1;
  // Network partitions ride the same plane: bare --partitions arms a budget
  // of 1 only when the resolved config has none; the budget/odds flags
  // override exactly the field they name and imply --partitions.
  bool partitions = false;
  long long max_partitions = -1;
  long long heal_den = -1;
  long long fault_points = -1;  // pre-sampled fault placement points
  // Observability (README "Observability"). Any of these arms the metrics
  // plane for the session; replay runs never observe.
  bool progress = false;               // live one-line telemetry on stderr
  std::string metrics_out;             // JSONL time-series path
  std::uint64_t metrics_interval = 0;  // ms; 0 = session default
  bool coverage = false;               // end-of-run coverage heatmaps
};

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s --scenario <name> [options]\n"
      "       %s --tag <tag> | --all [options]     run every matching scenario\n"
      "       %s --list [--tag <tag>] [--json]\n"
      "\n"
      "options:\n"
      "  --scenario <name>  registered scenario (--harness is a deprecated\n"
      "                     alias); see --list\n"
      "  --param k=v        scenario parameter (repeatable; see --list)\n"
      "  --strategy <s>     registered strategy (budget suffix allowed, e.g.\n"
      "                     pct(5)), or portfolio to race the rotation\n"
      "  --threads <n>      worker threads (default: serial engine;\n"
      "                     portfolio defaults to max(6, hardware threads))\n"
      "  --seed <n>         base seed (default: scenario default)\n"
      "  --iterations <n>   total execution budget, sharded across workers\n"
      "  --max-steps <n>    per-execution scheduling step bound\n"
      "  --budget <n>       PCT priority change points / delay budget\n"
      "  --time-budget <s>  wall-clock budget in seconds\n"
      "  --trace-out <f>    write the winning bug trace to <f> (with --all /\n"
      "                     --tag: one file per scenario, name suffixed)\n"
      "  --replay <f>       replay a saved trace instead of exploring\n"
      "  --faults           enable scheduler-controlled fault injection;\n"
      "                     arms crash/restart 1/1 only if neither the\n"
      "                     scenario nor a flag below configures any fault\n"
      "  --max-crashes <n>  per-execution machine-crash budget (implies\n"
      "                     --faults)\n"
      "  --max-restarts <n> per-execution restart budget (implies --faults)\n"
      "  --drop-den <n>     drop each delivery with probability 1/n\n"
      "                     (implies --faults)\n"
      "  --max-dups <n>     per-execution message-duplication budget\n"
      "                     (implies --faults)\n"
      "  --partitions       enable scheduler-controlled network partitions;\n"
      "                     arms a budget of 1 only if neither the scenario\n"
      "                     nor --max-partitions configures one\n"
      "  --max-partitions <n>  per-execution partition budget (implies\n"
      "                     --partitions)\n"
      "  --heal-den <n>     heal each active partition with probability 1/n\n"
      "                     per step; 0 = partitions never heal (implies\n"
      "                     --partitions)\n"
      "  --fault-points <n> pre-sample <n> destructive-fault placement points\n"
      "                     from the step budget (PCT-style) instead of\n"
      "                     geometric per-step odds\n"
      "  --stateful         fingerprint visited program states and prune\n"
      "                     executions that reconverge to them\n"
      "  --max-visited <n>  total distinct-state budget across both levels\n"
      "                     of the tiered visited set (default 1M; implies\n"
      "                     --stateful)\n"
      "  --max-visited-hot <n>  exact hot-level capacity; reaching it\n"
      "                     compacts the hot front into a sorted run behind\n"
      "                     a bloom filter (default 1M; implies --stateful)\n"
      "  --visited-spill-dir <d>  write compacted runs to <d> as mmap-able\n"
      "                     files instead of keeping them in RAM (implies\n"
      "                     --stateful)\n"
      "  --corpus-dir <d>   persist the trace corpus of interesting schedules\n"
      "                     to <d> and reload it next run; arms the corpus\n"
      "                     and implies --stateful (with --all / --tag: one\n"
      "                     subdirectory per scenario). Pair with\n"
      "                     --strategy mutate (or portfolio) to exploit it\n"
      "  --corpus-max <n>   cap on stored corpus entries (default 1024)\n"
      "  --progress         live one-line progress telemetry on stderr\n"
      "                     (exec/s, distinct states, prune %%, faults, ETA,\n"
      "                     per-worker rates)\n"
      "  --metrics-out <f>  append a JSONL metrics sample to <f> every\n"
      "                     interval (with --all / --tag: one file per\n"
      "                     scenario, name suffixed)\n"
      "  --metrics-interval <ms>  sampling interval (default 250)\n"
      "  --coverage         print/emit the end-of-run coverage heatmap\n"
      "                     (state visits, unvisited declared states, event\n"
      "                     deliveries, fault placements)\n"
      "  --fingerprint-stats  print the detailed dedup breakdown after the\n"
      "                     run (implies --stateful)\n"
      "  --json             machine-readable output (one JSON line per run)\n"
      "  --verbose          include the readable execution log on a bug\n",
      argv0, argv0, argv0);
}

bool ParseArgs(int argc, char** argv, Options& options) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: %s requires a value\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--list") {
      options.list = true;
    } else if (arg == "--all") {
      options.all = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--stateful") {
      options.stateful = true;
    } else if (arg == "--max-visited") {
      if (!(value = need_value(i))) return false;
      options.max_visited = std::atoll(value);
      options.stateful = true;
    } else if (arg == "--max-visited-hot") {
      if (!(value = need_value(i))) return false;
      options.max_visited_hot = std::atoll(value);
      options.stateful = true;
    } else if (arg == "--visited-spill-dir") {
      if (!(value = need_value(i))) return false;
      options.visited_spill_dir = value;
      options.stateful = true;
    } else if (arg == "--faults") {
      options.faults = true;
    } else if (arg == "--max-crashes") {
      if (!(value = need_value(i))) return false;
      options.max_crashes = std::atoll(value);
      options.faults = true;
    } else if (arg == "--max-restarts") {
      if (!(value = need_value(i))) return false;
      options.max_restarts = std::atoll(value);
      options.faults = true;
    } else if (arg == "--drop-den") {
      if (!(value = need_value(i))) return false;
      options.drop_den = std::atoll(value);
      options.faults = true;
    } else if (arg == "--max-dups") {
      if (!(value = need_value(i))) return false;
      options.max_dups = std::atoll(value);
      options.faults = true;
    } else if (arg == "--partitions") {
      options.partitions = true;
    } else if (arg == "--max-partitions") {
      if (!(value = need_value(i))) return false;
      options.max_partitions = std::atoll(value);
      options.partitions = true;
    } else if (arg == "--heal-den") {
      if (!(value = need_value(i))) return false;
      options.heal_den = std::atoll(value);
      options.partitions = true;
    } else if (arg == "--corpus-dir") {
      if (!(value = need_value(i))) return false;
      options.corpus_dir = value;
    } else if (arg == "--corpus-max") {
      if (!(value = need_value(i))) return false;
      options.corpus_max = std::atoll(value);
    } else if (arg == "--fault-points") {
      if (!(value = need_value(i))) return false;
      options.fault_points = std::atoll(value);
    } else if (arg == "--progress") {
      options.progress = true;
    } else if (arg == "--coverage") {
      options.coverage = true;
    } else if (arg == "--metrics-out") {
      if (!(value = need_value(i))) return false;
      options.metrics_out = value;
    } else if (arg == "--metrics-interval") {
      if (!(value = need_value(i))) return false;
      options.metrics_interval = std::strtoull(value, nullptr, 10);
    } else if (arg == "--fingerprint-stats") {
      options.fingerprint_stats = true;
      options.stateful = true;
    } else if (arg == "--scenario" || arg == "--harness") {
      if (!(value = need_value(i))) return false;
      options.scenario = value;
    } else if (arg == "--tag") {
      if (!(value = need_value(i))) return false;
      options.tag = value;
    } else if (arg == "--param") {
      if (!(value = need_value(i))) return false;
      options.params.emplace_back(value);
    } else if (arg == "--strategy") {
      if (!(value = need_value(i))) return false;
      options.strategy = value;
    } else if (arg == "--threads") {
      if (!(value = need_value(i))) return false;
      options.threads = std::atoi(value);
    } else if (arg == "--seed") {
      if (!(value = need_value(i))) return false;
      options.seed = std::strtoull(value, nullptr, 10);
      options.seed_set = true;
    } else if (arg == "--iterations") {
      if (!(value = need_value(i))) return false;
      options.iterations = std::strtoull(value, nullptr, 10);
    } else if (arg == "--max-steps") {
      if (!(value = need_value(i))) return false;
      options.max_steps = std::strtoull(value, nullptr, 10);
    } else if (arg == "--budget") {
      if (!(value = need_value(i))) return false;
      options.budget = std::atoi(value);
    } else if (arg == "--time-budget") {
      if (!(value = need_value(i))) return false;
      options.time_budget = std::atof(value);
    } else if (arg == "--trace-out") {
      if (!(value = need_value(i))) return false;
      options.trace_out = value;
    } else if (arg == "--replay") {
      if (!(value = need_value(i))) return false;
      options.replay = value;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "error: unknown argument %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// --list: produced entirely from the registries.

std::string JoinTags(const Scenario& scenario) {
  std::string out;
  for (const std::string& tag : scenario.tags) {
    if (!out.empty()) out += ',';
    out += tag;
  }
  return out;
}

void PrintList(const Options& options) {
  const auto scenarios = options.tag.empty()
                             ? ScenarioRegistry::Instance().All()
                             : ScenarioRegistry::Instance().WithTag(options.tag);
  if (options.json) {
    std::string json = "{\"scenarios\":[";
    bool first = true;
    for (const Scenario* s : scenarios) {
      if (!first) json += ',';
      first = false;
      json += "{\"name\":\"" + JsonEscape(s->name) + "\",\"description\":\"" +
              JsonEscape(s->description) + "\",\"tags\":[";
      for (std::size_t i = 0; i < s->tags.size(); ++i) {
        if (i > 0) json += ',';
        json += '"' + JsonEscape(s->tags[i]) + '"';
      }
      json += "],\"params\":[";
      for (std::size_t i = 0; i < s->params.size(); ++i) {
        if (i > 0) json += ',';
        json += "{\"name\":\"" + JsonEscape(s->params[i].name) +
                "\",\"help\":\"" + JsonEscape(s->params[i].help) + "\"}";
      }
      json += "]}";
    }
    json += "],\"strategies\":[";
    bool sfirst = true;
    for (const auto& entry : StrategyRegistry::Instance().All()) {
      if (!sfirst) json += ',';
      sfirst = false;
      json += "{\"name\":\"" + JsonEscape(entry.name) + "\",\"description\":\"" +
              JsonEscape(entry.description) + "\"}";
    }
    json += "]}";
    std::printf("%s\n", json.c_str());
    return;
  }
  std::printf("registered scenarios%s:\n",
              options.tag.empty() ? "" : (" [tag=" + options.tag + "]").c_str());
  for (const Scenario* s : scenarios) {
    std::printf("  %-26s %s\n", s->name.c_str(), s->description.c_str());
    std::printf("  %-26s   tags: %s\n", "", JoinTags(*s).c_str());
    for (const ParamSpec& p : s->params) {
      std::printf("  %-26s   --param %s=...  %s\n", "", p.name.c_str(),
                  p.help.c_str());
    }
  }
  std::printf("\nregistered strategies (plus 'portfolio' to race them):\n");
  for (const auto& entry : StrategyRegistry::Instance().All()) {
    std::printf("  %-26s %s\n", entry.name.c_str(), entry.description.c_str());
  }
}

// ---------------------------------------------------------------------------
// Running one scenario through the TestSession facade.

SessionConfig BuildSessionConfig(const std::string& scenario,
                                 const Options& options) {
  SessionConfig config;
  config.scenario = scenario;
  config.strategy = options.strategy;
  config.threads = options.threads;
  for (const std::string& assign : options.params) {
    config.params.ParseAssign(assign);
  }
  if (options.seed_set) config.seed = options.seed;
  if (options.iterations > 0) config.iterations = options.iterations;
  if (options.max_steps > 0) config.max_steps = options.max_steps;
  if (options.budget >= 0) config.strategy_budget = options.budget;
  if (options.time_budget >= 0) config.time_budget_seconds = options.time_budget;
  if (options.stateful) config.stateful = true;
  if (options.max_visited >= 0) {
    config.max_visited = static_cast<std::uint64_t>(options.max_visited);
  }
  if (options.max_visited_hot >= 0) {
    config.max_visited_hot =
        static_cast<std::uint64_t>(options.max_visited_hot);
  }
  if (!options.visited_spill_dir.empty()) {
    config.visited_spill_dir = options.visited_spill_dir;
  }
  if (options.faults && options.replay.empty()) {
    // Each flag overrides exactly the budget it names; scenarios that carry
    // their own fault defaults keep everything untouched. Bare --faults only
    // arms crash/restart 1/1 when the RESOLVED config would otherwise have
    // no faults at all (SessionConfig::faults). Replay mode needs none of
    // this — the trace is the schedule.
    config.faults = true;
    if (options.max_crashes >= 0) {
      config.max_crashes = static_cast<std::uint64_t>(options.max_crashes);
    }
    if (options.max_restarts >= 0) {
      config.max_restarts = static_cast<std::uint64_t>(options.max_restarts);
    }
    if (options.drop_den >= 0) {
      config.drop_probability_den =
          static_cast<std::uint64_t>(options.drop_den);
    }
    if (options.max_dups >= 0) {
      config.max_duplications = static_cast<std::uint64_t>(options.max_dups);
    }
  }
  if (options.partitions && options.replay.empty()) {
    // Same shape as the crash-plane flags: bare --partitions only arms a
    // budget when the resolved config has none; replay derives the whole
    // partition schedule from the trace.
    config.partitions = true;
    if (options.max_partitions >= 0) {
      config.max_partitions =
          static_cast<std::uint64_t>(options.max_partitions);
    }
    if (options.heal_den >= 0) {
      config.partition_heal_den = static_cast<std::uint64_t>(options.heal_den);
    }
  }
  if (options.fault_points >= 0 && options.replay.empty()) {
    config.fault_placement_points = static_cast<int>(options.fault_points);
  }
  if (options.replay.empty()) {
    config.corpus_dir = options.corpus_dir;
    if (options.corpus_max >= 0) {
      config.corpus_max = static_cast<std::uint64_t>(options.corpus_max);
    }
  }
  config.readable_trace_on_bug = options.verbose;
  config.replay_file = options.replay;
  config.progress = options.progress;
  config.metrics_out = options.metrics_out;
  if (options.metrics_interval > 0) {
    config.metrics_interval_ms = options.metrics_interval;
  }
  config.coverage = options.coverage;
  return config;
}

/// With --all / --tag sweeps, "m.jsonl" becomes "m.<scenario>.jsonl" so each
/// scenario's time-series survives instead of the last run clobbering all.
std::string PerScenarioPath(const std::string& path,
                            const std::string& scenario) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "." + scenario;
  }
  return path.substr(0, dot) + "." + scenario + path.substr(dot);
}

int RunOne(const std::string& scenario, const Options& options,
           bool multi_scenario) {
  SessionConfig config = BuildSessionConfig(scenario, options);
  if (multi_scenario && !config.metrics_out.empty()) {
    config.metrics_out = PerScenarioPath(config.metrics_out, scenario);
  }
  if (multi_scenario && !config.corpus_dir.empty()) {
    // A subdirectory, not a name suffix: the corpus path is a directory, and
    // corpora from different scenarios must never mix (their traces replay
    // different machines).
    config.corpus_dir += "/" + scenario;
  }
  std::string trace_out = options.trace_out;
  if (multi_scenario && !trace_out.empty()) {
    // Same fan-out as metrics: "bug.trace" becomes "bug.<scenario>.trace" so
    // each scenario's witness survives the sweep.
    trace_out = PerScenarioPath(trace_out, scenario);
  }
  TestSession session(std::move(config));
  systest::api::HumanReporter human(stdout, options.verbose);
  systest::api::JsonReporter json(stdout);
  if (options.json) {
    session.AddObserver(&json);
  } else {
    session.AddObserver(&human);
  }

  const SessionReport report = session.Run();

  // Gated on the REPORT's stateful flag, not the requested one: replay mode
  // never dedups, so printing zeros there would read as a measurement.
  if (options.fingerprint_stats && !options.json && report.report.stateful) {
    const systest::TestReport& r = report.report;
    std::printf(
        "fingerprint stats:\n"
        "  distinct states     %llu\n"
        "  pruned executions   %llu of %llu\n"
        "  fingerprint hits    %llu\n"
        "  fingerprint misses  %llu\n"
        "  hit rate            %.2f%%\n",
        static_cast<unsigned long long>(r.distinct_states),
        static_cast<unsigned long long>(r.pruned_executions),
        static_cast<unsigned long long>(r.executions),
        static_cast<unsigned long long>(r.fingerprint_hits),
        static_cast<unsigned long long>(r.fingerprint_misses),
        r.FingerprintHitRate() * 100.0);
    std::printf(
        "  hot entries         %llu\n"
        "  run entries         %llu in %llu runs\n"
        "  compactions         %llu (%llu merges)\n"
        "  spilled             %llu runs, %llu bytes\n"
        "  bloom probes        %llu true-positive, %llu false-positive\n",
        static_cast<unsigned long long>(r.visited.hot_entries),
        static_cast<unsigned long long>(r.visited.run_entries),
        static_cast<unsigned long long>(r.visited.runs),
        static_cast<unsigned long long>(r.visited.compactions),
        static_cast<unsigned long long>(r.visited.merges),
        static_cast<unsigned long long>(r.visited.spilled_runs),
        static_cast<unsigned long long>(r.visited.spilled_bytes),
        static_cast<unsigned long long>(r.visited.bloom_true_positives),
        static_cast<unsigned long long>(r.visited.bloom_false_positives));
  }

  if (!options.replay.empty()) {
    if (!report.replay_verified) return 1;  // reporter already explained
    return 0;
  }

  if (!trace_out.empty()) {
    // Status goes to stderr in --json mode so stdout stays one JSON line
    // per run.
    std::FILE* status = options.json ? stderr : stdout;
    if (report.report.bug_found) {
      report.report.bug_trace.SaveFile(trace_out);
      std::fprintf(status, "bug trace written to %s (replay with --replay)\n",
                   trace_out.c_str());
    } else {
      std::fprintf(status, "no bug found; %s not written\n",
                   trace_out.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, options)) {
    PrintUsage(argv[0]);
    return 2;
  }
  if (options.list) {
    PrintList(options);
    return 0;
  }

  std::vector<std::string> targets;
  if (!options.scenario.empty()) {
    targets.push_back(options.scenario);
  } else if (options.all || !options.tag.empty()) {
    const auto scenarios =
        options.all ? ScenarioRegistry::Instance().All()
                    : ScenarioRegistry::Instance().WithTag(options.tag);
    for (const Scenario* s : scenarios) targets.push_back(s->name);
    if (targets.empty()) {
      std::fprintf(stderr, "error: no scenario carries tag '%s'\n",
                   options.tag.c_str());
      return 2;
    }
  } else {
    PrintUsage(argv[0]);
    return 2;
  }
  int exit_code = 0;
  for (const std::string& target : targets) {
    if (targets.size() > 1 && !options.json) {
      std::printf("=== %s ===\n", target.c_str());
    }
    try {
      const int code = RunOne(target, options, targets.size() > 1);
      if (code != 0) exit_code = code;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      exit_code = 2;
    }
    if (targets.size() > 1 && !options.json) std::printf("\n");
  }
  return exit_code;
}
