// systest_run — command-line driver for the SysTest exploration subsystem.
//
// Runs any registered harness under a chosen scheduling strategy, serially
// or sharded across worker threads (optionally as a strategy portfolio),
// writes the winning bug trace to disk, and replays previously saved traces.
//
// Examples:
//   systest_run --list
//   systest_run --harness samplerepl-safety --threads 4 --iterations 20000
//   systest_run --harness race --strategy portfolio --threads 6 \
//       --trace-out bug.trace
//   systest_run --harness race --replay bug.trace
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/systest.h"
#include "explore/parallel_engine.h"
#include "fabric/harness.h"
#include "mtable/harness.h"
#include "samplerepl/harness.h"
#include "vnext/harness.h"

namespace {

using systest::StrategyKind;
using systest::TestConfig;
using systest::TestReport;

// ---------------------------------------------------------------------------
// The built-in micro harness: two racers and a referee asserting arrival
// order — the minimal ordering bug every exploring scheduler finds quickly.

struct ArrivalEvent final : systest::Event {
  explicit ArrivalEvent(int who) : who(who) {}
  int who;
};

class Referee final : public systest::Machine {
 public:
  Referee() {
    State("Run").On<ArrivalEvent>(&Referee::OnArrival);
    SetStart("Run");
  }

 private:
  void OnArrival(const ArrivalEvent& arrival) {
    if (first_ == 0) {
      first_ = arrival.who;
      Assert(first_ == 1, "racer 2 arrived first");
    }
  }
  int first_ = 0;
};

class Racer final : public systest::Machine {
 public:
  Racer(systest::MachineId referee, int who) : referee_(referee), who_(who) {
    State("Run").OnEntry(&Racer::OnStart);
    SetStart("Run");
  }

 private:
  void OnStart() { Send<ArrivalEvent>(referee_, who_); }
  systest::MachineId referee_;
  int who_;
};

systest::Harness RaceHarness() {
  return [](systest::Runtime& rt) {
    auto referee = rt.CreateMachine<Referee>("Referee");
    rt.CreateMachine<Racer>("Racer1", referee, 1);
    rt.CreateMachine<Racer>("Racer2", referee, 2);
  };
}

// ---------------------------------------------------------------------------
// Harness registry.

struct HarnessEntry {
  const char* name;
  const char* description;
  std::function<systest::Harness()> make;
  std::function<TestConfig(StrategyKind)> default_config;
};

TestConfig SampleReplConfig(StrategyKind strategy) {
  TestConfig config;
  config.iterations = 100'000;
  config.max_steps = 2'000;
  config.seed = 2016;
  config.strategy = strategy;
  config.strategy_budget = 2;
  return config;
}

TestConfig RaceConfig(StrategyKind strategy) {
  TestConfig config;
  config.iterations = 10'000;
  config.max_steps = 100;
  config.seed = 1;
  config.strategy = strategy;
  return config;
}

const std::vector<HarnessEntry>& Registry() {
  static const std::vector<HarnessEntry> entries = {
      {"race", "micro ordering-bug harness (two racers, one referee)",
       [] { return RaceHarness(); }, RaceConfig},
      {"samplerepl-safety",
       "§2.2 example, seeded safety bug (non-unique replica count)",
       [] {
         samplerepl::HarnessOptions options;
         options.bugs.non_unique_replica_count = true;
         return samplerepl::MakeHarness(options);
       },
       SampleReplConfig},
      {"samplerepl-liveness",
       "§2.2 example, seeded liveness bug (no replica counter reset)",
       [] {
         samplerepl::HarnessOptions options;
         options.bugs.no_counter_reset = true;
         return samplerepl::MakeHarness(options);
       },
       SampleReplConfig},
      {"samplerepl-fixed", "§2.2 example with both bugs fixed (control)",
       [] { return samplerepl::MakeHarness({}); }, SampleReplConfig},
      {"fabric-failover",
       "§5 Service Fabric failover, promote-during-copy role assertion",
       [] {
         fabric::FailoverOptions options;
         options.bugs.promote_during_copy = true;
         return fabric::MakeFailoverHarness(options);
       },
       fabric::DefaultConfig},
      {"fabric-pipeline",
       "§5 CScale-like pipeline, unguarded configuration dereference",
       [] {
         fabric::PipelineOptions options;
         options.bugs.unguarded_pipeline_config = true;
         return fabric::MakePipelineHarness(options);
       },
       fabric::DefaultConfig},
      {"mtable-backupnewstream",
       "§4 MigratingTable, QueryStreamedBackUpNewStream (marquee §6.2 bug)",
       [] {
         mtable::MigrationHarnessOptions options;
         options.bugs.query_streamed_backup_new_stream = true;
         return mtable::MakeMigrationHarness(options);
       },
       mtable::DefaultConfig},
      {"vnext-liveness",
       "§3 vNext extent repair, ExtentNodeLivenessViolation (stale sync report)",
       [] {
         vnext::DriverOptions options;
         options.manager.fix_stale_sync_report = false;
         return vnext::MakeExtentRepairHarness(options);
       },
       vnext::DefaultConfig},
  };
  return entries;
}

const HarnessEntry* FindHarness(const std::string& name) {
  for (const HarnessEntry& entry : Registry()) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

void PrintHarnessList() {
  std::printf("available harnesses:\n");
  for (const HarnessEntry& entry : Registry()) {
    std::printf("  %-24s %s\n", entry.name, entry.description);
  }
}

// ---------------------------------------------------------------------------
// Argument parsing.

struct Options {
  std::string harness;
  std::string strategy = "random";
  int threads = 1;
  bool threads_set = false;
  bool portfolio = false;
  std::uint64_t seed = 0;
  bool seed_set = false;
  std::uint64_t iterations = 0;  // 0 = harness default
  std::uint64_t max_steps = 0;   // 0 = harness default
  int budget = -1;               // <0 = harness default
  double time_budget = -1;       // <0 = harness default
  std::string trace_out;
  std::string replay;
  bool verbose = false;
  bool list = false;
};

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s --harness <name> [options]\n"
      "       %s --list\n"
      "\n"
      "options:\n"
      "  --strategy <s>     random | pct | round-robin | delay-bounded |\n"
      "                     portfolio (race all of the above across workers)\n"
      "  --threads <n>      worker threads (default 1 = serial engine;\n"
      "                     portfolio defaults to the hardware thread count)\n"
      "  --seed <n>         base seed (default: harness default)\n"
      "  --iterations <n>   total execution budget, sharded across workers\n"
      "  --max-steps <n>    per-execution scheduling step bound\n"
      "  --budget <n>       PCT priority change points / delay budget\n"
      "  --time-budget <s>  wall-clock budget in seconds\n"
      "  --trace-out <f>    write the winning bug trace to <f>\n"
      "  --replay <f>       replay a saved trace instead of exploring\n"
      "  --verbose          include the readable execution log on a bug\n",
      argv0, argv0);
}

bool ParseArgs(int argc, char** argv, Options& options) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: %s requires a value\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--list") {
      options.list = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--harness") {
      if (!(value = need_value(i))) return false;
      options.harness = value;
    } else if (arg == "--strategy") {
      if (!(value = need_value(i))) return false;
      options.strategy = value;
    } else if (arg == "--threads") {
      if (!(value = need_value(i))) return false;
      options.threads = std::atoi(value);
      options.threads_set = true;
    } else if (arg == "--seed") {
      if (!(value = need_value(i))) return false;
      options.seed = std::strtoull(value, nullptr, 10);
      options.seed_set = true;
    } else if (arg == "--iterations") {
      if (!(value = need_value(i))) return false;
      options.iterations = std::strtoull(value, nullptr, 10);
    } else if (arg == "--max-steps") {
      if (!(value = need_value(i))) return false;
      options.max_steps = std::strtoull(value, nullptr, 10);
    } else if (arg == "--budget") {
      if (!(value = need_value(i))) return false;
      options.budget = std::atoi(value);
    } else if (arg == "--time-budget") {
      if (!(value = need_value(i))) return false;
      options.time_budget = std::atof(value);
    } else if (arg == "--trace-out") {
      if (!(value = need_value(i))) return false;
      options.trace_out = value;
    } else if (arg == "--replay") {
      if (!(value = need_value(i))) return false;
      options.replay = value;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "error: unknown argument %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

bool ParseStrategy(const std::string& name, StrategyKind& kind) {
  if (name == "random") {
    kind = StrategyKind::kRandom;
  } else if (name == "pct") {
    kind = StrategyKind::kPct;
  } else if (name == "round-robin") {
    kind = StrategyKind::kRoundRobin;
  } else if (name == "delay-bounded") {
    kind = StrategyKind::kDelayBounded;
  } else {
    return false;
  }
  return true;
}

void PrintBugTail(const TestReport& report) {
  if (report.execution_log.empty()) return;
  const std::string& log = report.execution_log;
  const std::size_t from = log.size() > 2'000 ? log.size() - 2'000 : 0;
  std::printf("\nreadable trace (tail):\n%s\n", log.substr(from).c_str());
}

int RunReplay(const HarnessEntry& entry, const Options& options,
              const TestConfig& config) {
  systest::Trace trace;
  try {
    trace = systest::Trace::LoadFile(options.replay);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  std::printf("replaying %s (%zu decisions) on harness %s...\n",
              options.replay.c_str(), trace.Size(), entry.name);
  systest::TestingEngine engine(config, entry.make());
  const TestReport report = engine.Replay(trace);
  std::printf("%s\n", report.Summary().c_str());
  if (options.verbose) PrintBugTail(report);
  if (!report.bug_found) {
    std::fprintf(stderr, "replay did NOT reproduce a violation\n");
    return 1;
  }
  if (report.bug_kind == systest::BugKind::kReplayDivergence) {
    std::fprintf(stderr,
                 "replay DIVERGED (wrong harness or harness options?)\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, options)) {
    PrintUsage(argv[0]);
    return 2;
  }
  if (options.list) {
    PrintHarnessList();
    return 0;
  }
  if (options.harness.empty()) {
    PrintUsage(argv[0]);
    return 2;
  }
  const HarnessEntry* entry = FindHarness(options.harness);
  if (entry == nullptr) {
    std::fprintf(stderr, "error: unknown harness %s\n",
                 options.harness.c_str());
    PrintHarnessList();
    return 2;
  }

  StrategyKind kind = StrategyKind::kRandom;
  if (options.strategy == "portfolio") {
    options.portfolio = true;
    // A one-worker "portfolio" degenerates to plain random; without an
    // explicit --threads, field enough workers for the whole rotation even
    // on small machines (the workers are compute-bound but independent, so
    // oversubscription just time-slices them).
    if (!options.threads_set) {
      options.threads =
          static_cast<int>(std::max(6u, std::thread::hardware_concurrency()));
    }
  } else if (!ParseStrategy(options.strategy, kind)) {
    std::fprintf(stderr, "error: unknown strategy %s\n",
                 options.strategy.c_str());
    return 2;
  }

  TestConfig config = entry->default_config(kind);
  if (options.seed_set) config.seed = options.seed;
  if (options.iterations > 0) config.iterations = options.iterations;
  if (options.max_steps > 0) config.max_steps = options.max_steps;
  if (options.budget >= 0) config.strategy_budget = options.budget;
  if (options.time_budget >= 0) config.time_budget_seconds = options.time_budget;
  config.readable_trace_on_bug = options.verbose;

  if (!options.replay.empty()) {
    return RunReplay(*entry, options, config);
  }

  TestReport final_report;
  if (options.threads > 1 || options.portfolio) {
    systest::explore::ParallelOptions popts;
    popts.threads = options.threads > 0 ? options.threads : 0;
    popts.portfolio = options.portfolio;
    systest::explore::ParallelTestingEngine engine(config, entry->make(),
                                                   popts);
    std::printf("exploration plan (%d workers):\n%s",
                engine.Threads(), engine.Plan().Describe().c_str());
    systest::explore::ParallelTestReport report = engine.Run();
    std::printf("\n%s\n", report.BreakdownTable().c_str());
    std::printf("%s\n", report.aggregate.Summary().c_str());
    if (report.aggregate.bug_found) {
      std::printf("winning worker: w%d (%s); main-thread replay %s\n",
                  report.winning_worker,
                  report.aggregate.strategy_name.c_str(),
                  report.replay_verified ? "REPRODUCED the violation"
                                         : "did not reproduce (!)");
    }
    final_report = std::move(report.aggregate);
  } else {
    systest::TestingEngine engine(config, entry->make());
    final_report = engine.Run();
    std::printf("%s\n", final_report.Summary().c_str());
  }

  if (options.verbose && final_report.bug_found) PrintBugTail(final_report);

  if (!options.trace_out.empty()) {
    if (final_report.bug_found) {
      try {
        final_report.bug_trace.SaveFile(options.trace_out);
        std::printf("bug trace written to %s (replay with --replay)\n",
                    options.trace_out.c_str());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
      }
    } else {
      std::printf("no bug found; %s not written\n", options.trace_out.c_str());
    }
  }
  return 0;
}
