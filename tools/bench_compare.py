#!/usr/bin/env python3
"""Compare a bench JSON-lines run against a committed baseline.

Both inputs are the format every SysTest bench emits under --json (and the
format committed in BENCH_baseline.json / BENCH_pr*.json): one JSON object
per line with at least

    {"bench": "...", "executions_per_sec": ..., "steps_per_sec": ...}

Non-JSON lines and rows without a "bench" key (e.g. the "_meta" header) are
skipped, so the files can be `tee`d straight from CI runs.

Gating policy: only the benches named by --gate FAIL the comparison, and only
on a throughput regression worse than --fail-over percent. Everything else is
printed as advisory context. Rationale: shared CI runners are noisy and sized
differently from the box that recorded the baseline, so gating every row
would flake constantly — but the two serialized-core rows (samplerepl_exec,
pingpong_steps) are stable enough that losing a quarter of their throughput
means a real hot-path regression, not noise.

Exit status: 0 when no gated bench regressed past the threshold, 1 otherwise.
"""

import argparse
import json
import sys

METRICS = ("executions_per_sec", "steps_per_sec")

# Metrics only some benches emit (e.g. stateful_dedup rows carry the
# fingerprint hit_rate and distinct_states since the tiered visited set).
# Compared ONLY when both sides have the field, and NEVER gated: they track
# exploration quality, not throughput, and their point in CI is visibility —
# the vnext/samplerepl hit-rate recovery rows drifting down is the early
# signal that the tiered set stopped recovering pruning at scale.
ADVISORY_METRICS = ("hit_rate", "distinct_states")


def load_rows(path):
    """bench name -> first row seen for it (later duplicates ignored)."""
    rows = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            name = obj.get("bench")
            if name and name not in rows:
                rows[name] = obj
    return rows


def main():
    parser = argparse.ArgumentParser(
        description="compare bench JSON lines against a baseline")
    parser.add_argument("baseline", help="committed baseline JSON-lines file")
    parser.add_argument("current", help="this run's JSON-lines file")
    parser.add_argument(
        "--fail-over", type=float, default=25.0, metavar="PCT",
        help="fail a GATED bench when it regresses more than PCT%% "
             "(default: 25)")
    parser.add_argument(
        "--gate", default="samplerepl_exec,pingpong_steps", metavar="NAMES",
        help="comma-separated bench names that fail the run; all other "
             "benches are advisory (default: %(default)s)")
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)
    gates = {name.strip() for name in args.gate.split(",") if name.strip()}

    failures = []
    print(f"bench comparison: {args.current} vs baseline {args.baseline}")
    print(f"gated (fail over -{args.fail_over:.0f}%): "
          f"{', '.join(sorted(gates)) or '(none)'}")
    for name in sorted(set(baseline) | set(current)):
        gated = name in gates
        tag = "GATE" if gated else "info"
        if name not in baseline:
            print(f"  [info] {name:<28} new bench (no baseline row)")
            continue
        if name not in current:
            # A gated bench silently vanishing from the run would make the
            # gate vacuous — treat that as a failure too.
            print(f"  [{tag}] {name:<28} MISSING from current run")
            if gated:
                failures.append((name, "missing", 0.0))
            continue
        for metric in METRICS:
            base_value = float(baseline[name].get(metric) or 0.0)
            cur_value = float(current[name].get(metric) or 0.0)
            if base_value <= 0.0:
                continue
            delta = (cur_value - base_value) / base_value * 100.0
            print(f"  [{tag}] {name:<28} {metric:<20} "
                  f"{base_value:>14.1f} -> {cur_value:>14.1f}  ({delta:+7.1f}%)")
            if gated and delta < -args.fail_over:
                failures.append((name, metric, delta))
        for metric in ADVISORY_METRICS:
            if metric not in baseline[name] or metric not in current[name]:
                continue
            base_value = float(baseline[name][metric])
            cur_value = float(current[name][metric])
            if base_value <= 0.0:
                continue
            delta = (cur_value - base_value) / base_value * 100.0
            print(f"  [info] {name:<28} {metric:<20} "
                  f"{base_value:>14.4f} -> {cur_value:>14.4f}  "
                  f"({delta:+7.1f}%)")

    if failures:
        print("\nFAIL: gated bench regressed past the threshold:")
        for name, metric, delta in failures:
            detail = metric if delta == 0.0 else f"{metric} {delta:+.1f}%"
            print(f"  {name}: {detail}")
        return 1
    print("\nOK: no gated regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
