// Quickstart: systematically test the paper's sec. 2.2 example - a client, a
// server and three storage nodes replicating a value - through the
// TestSession front door. The whole run is one call:
//
//   systest::api::TestSession({.scenario = "samplerepl-safety"}).Run();
//
// Scenarios are looked up in the process-wide registry (`systest_run --list`
// shows all of them); the same SessionConfig drives serial, parallel,
// portfolio and replay testing.
//
// Usage: quickstart [safety|liveness|fixed]
#include <cstdio>
#include <string>

#include "api/session.h"

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "safety";
  if (mode != "safety" && mode != "liveness" && mode != "fixed") {
    std::fprintf(stderr, "usage: %s [safety|liveness|fixed]\n", argv[0]);
    return 2;
  }

  // The 5-line quickstart: pick a registered scenario, run it.
  systest::api::SessionConfig config;
  config.scenario = "samplerepl-" + mode;
  config.readable_trace_on_bug = true;
  if (mode == "fixed") config.iterations = 5'000;
  const systest::api::SessionReport session =
      systest::api::TestSession(config).Run();

  const systest::TestReport& report = session.report;
  std::printf("scenario=%s: %s\n", session.scenario.c_str(),
              report.Summary().c_str());

  if (report.bug_found) {
    std::printf("\nreplayable trace (%zu decisions):\n  %s\n",
                report.bug_trace.Size(),
                report.bug_trace.ToString().substr(0, 160).c_str());
    // Show the tail of the readable execution log - the part of the
    // schedule that exhibits the bug.
    const std::string& log = report.execution_log;
    const std::size_t from = log.size() > 1'500 ? log.size() - 1'500 : 0;
    std::printf("\nreadable trace (tail):\n%s\n", log.substr(from).c_str());
  }
  return 0;
}
