// Quickstart: systematically test the paper's §2.2 example — a client, a
// server and three storage nodes replicating a value — and find both seeded
// bugs: a safety violation (the server acknowledges before three DISTINCT
// replicas exist) and a liveness violation (the replica counter is never
// reset, so the second request is never acknowledged).
//
// Usage: quickstart [safety|liveness|fixed]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/systest.h"
#include "samplerepl/harness.h"

namespace {

void Run(const std::string& mode) {
  samplerepl::HarnessOptions options;
  if (mode == "safety") {
    options.bugs.non_unique_replica_count = true;
  } else if (mode == "liveness") {
    options.bugs.no_counter_reset = true;
  }

  systest::TestConfig config;
  config.iterations = mode == "fixed" ? 5'000 : 100'000;
  config.max_steps = 2'000;
  config.seed = 2016;
  config.strategy = systest::StrategyKind::kRandom;
  config.readable_trace_on_bug = true;

  std::printf("mode=%s: exploring up to %llu executions...\n", mode.c_str(),
              static_cast<unsigned long long>(config.iterations));
  systest::TestingEngine engine(config, samplerepl::MakeHarness(options));
  const systest::TestReport report = engine.Run();
  std::printf("%s\n", report.Summary().c_str());

  if (report.bug_found) {
    std::printf("\nreplayable trace (%zu decisions):\n  %s\n",
                report.bug_trace.Size(),
                report.bug_trace.ToString().substr(0, 160).c_str());
    // Show the tail of the readable execution log — the part of the
    // schedule that exhibits the bug.
    const std::string& log = report.execution_log;
    const std::size_t from = log.size() > 1'500 ? log.size() - 1'500 : 0;
    std::printf("\nreadable trace (tail):\n%s\n", log.substr(from).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "safety";
  if (mode != "safety" && mode != "liveness" && mode != "fixed") {
    std::fprintf(stderr, "usage: %s [safety|liveness|fixed]\n", argv[0]);
    return 2;
  }
  Run(mode);
  return 0;
}
