// Azure Service Fabric model (§5): a replicated counter service runs on the
// modeled Fabric cluster; the driver fails the primary twice at
// nondeterministic times. In buggy mode the cluster may elect the secondary
// that is still waiting for its state copy and then promote it — firing the
// paper's assertion that "only a secondary can be promoted to an active
// secondary". The pipeline mode races a CScale-like aggregator's
// configuration against its input records.
//
// Usage: fabric_failover [buggy|fixed|pipeline|pipeline-buggy]
#include <cstdio>
#include <string>

#include "core/systest.h"
#include "fabric/harness.h"

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "buggy";

  systest::TestConfig config =
      fabric::DefaultConfig(systest::StrategyKind::kRandom);
  systest::TestReport report;

  if (mode == "pipeline" || mode == "pipeline-buggy") {
    fabric::PipelineOptions options;
    options.bugs.unguarded_pipeline_config = (mode == "pipeline-buggy");
    if (mode == "pipeline") config.iterations = 10'000;
    report = systest::TestingEngine(config,
                                    fabric::MakePipelineHarness(options))
                 .Run();
  } else {
    fabric::FailoverOptions options;
    options.bugs.promote_during_copy = (mode == "buggy");
    if (mode == "fixed") config.iterations = 10'000;
    report = systest::TestingEngine(config,
                                    fabric::MakeFailoverHarness(options))
                 .Run();
  }
  std::printf("mode=%s\n%s\n", mode.c_str(), report.Summary().c_str());
  return 0;
}
