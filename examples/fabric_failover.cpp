// Azure Service Fabric model (sec. 5): a replicated counter service runs on
// the modeled Fabric cluster; the driver fails the primary twice at
// nondeterministic times. In buggy mode the cluster may elect the secondary
// that is still waiting for its state copy and then promote it - firing the
// paper's assertion that "only a secondary can be promoted to an active
// secondary". The pipeline mode races a CScale-like aggregator's
// configuration against its input records.
//
// Usage: fabric_failover [buggy|fixed|pipeline|pipeline-buggy]
#include <cstdio>
#include <string>

#include "api/session.h"

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "buggy";

  systest::api::SessionConfig config;
  if (mode == "buggy") {
    config.scenario = "fabric-failover";
  } else if (mode == "fixed") {
    config.scenario = "fabric-failover-fixed";
    config.iterations = 10'000;
  } else if (mode == "pipeline-buggy") {
    config.scenario = "fabric-pipeline";
  } else if (mode == "pipeline") {
    config.scenario = "fabric-pipeline-fixed";
    config.iterations = 10'000;
  } else {
    std::fprintf(stderr,
                 "usage: %s [buggy|fixed|pipeline|pipeline-buggy]\n", argv[0]);
    return 2;
  }

  const systest::api::SessionReport session =
      systest::api::TestSession(config).Run();
  std::printf("mode=%s scenario=%s\n%s\n", mode.c_str(),
              session.scenario.c_str(), session.report.Summary().c_str());
  return 0;
}
