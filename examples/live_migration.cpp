// Live Table Migration (§4): services keep reading and writing through
// MigratingTable while a migrator moves the data set from the old to the new
// backend table. The Tables machine checks every logical operation against a
// reference table at its linearization point. This example re-introduces one
// of the paper's Table 2 bugs (by name) and lets the engine find it — or
// runs the fixed protocol to show it surviving differential testing.
//
// Usage: live_migration [<BugName>|fixed|list]
#include <cstdio>
#include <string>

#include "core/systest.h"
#include "mtable/harness.h"

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "QueryStreamedBackUpNewStream";

  if (mode == "list") {
    for (const mtable::MTableBugId id : mtable::kAllMTableBugs) {
      std::printf("%s\n", std::string(ToString(id)).c_str());
    }
    return 0;
  }

  mtable::MigrationHarnessOptions options;
  bool found_name = mode == "fixed";
  for (const mtable::MTableBugId id : mtable::kAllMTableBugs) {
    if (mode == ToString(id)) {
      options.bugs = EnableBug(id);
      found_name = true;
    }
  }
  if (!found_name) {
    std::fprintf(stderr,
                 "unknown bug '%s' (try 'list', a Table 2 bug name, or "
                 "'fixed')\n",
                 mode.c_str());
    return 2;
  }

  systest::TestConfig config =
      mtable::DefaultConfig(systest::StrategyKind::kRandom);
  config.time_budget_seconds = 60;
  if (mode == "fixed") {
    config.iterations = 10'000;
  }

  std::printf("workload: %d services x %d nondeterministic operations, "
              "2 partitions, migrator concurrent\nmode=%s\n\n",
              options.num_services, options.ops_per_service, mode.c_str());
  systest::TestingEngine engine(config,
                                mtable::MakeMigrationHarness(options));
  const systest::TestReport report = engine.Run();
  std::printf("%s\n", report.Summary().c_str());
  if (report.bug_found) {
    std::printf("\ntrace is replayable: re-running it reproduces the exact "
                "divergence:\n");
    const systest::TestReport replay = engine.Replay(report.bug_trace);
    std::printf("  replay: %s\n", replay.Summary().c_str());
  }
  return 0;
}
