// Live Table Migration (sec. 4): services keep reading and writing through
// MigratingTable while a migrator moves the data set from the old to the new
// backend table. The Tables machine checks every logical operation against a
// reference table at its linearization point. This example re-introduces one
// of the paper's Table 2 bugs (by name, via the scenario's bug=<Name>
// parameter) and lets the engine find it - or runs the fixed protocol to
// show it surviving differential testing.
//
// Usage: live_migration [<BugName>|fixed|list]
#include <cstdio>
#include <string>

#include "api/session.h"
#include "mtable/bugs.h"

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "QueryStreamedBackUpNewStream";

  if (mode == "list") {
    for (const mtable::MTableBugId id : mtable::kAllMTableBugs) {
      std::printf("%s\n", std::string(ToString(id)).c_str());
    }
    return 0;
  }

  systest::api::SessionConfig config;
  config.scenario = "mtable-migration";
  config.time_budget_seconds = 60;
  if (mode == "fixed") {
    config.iterations = 10'000;
  } else {
    config.params.Set("bug", mode);  // TestSession rejects unknown bug names
  }

  std::printf("workload: 2 services x 4 nondeterministic operations, "
              "2 partitions, migrator concurrent\nmode=%s\n\n", mode.c_str());
  try {
    const systest::api::SessionReport session =
        systest::api::TestSession(config).Run();
    const systest::TestReport& report = session.report;
    std::printf("%s\n", report.Summary().c_str());
    if (report.bug_found) {
      std::printf("\ntrace is replayable: re-running it reproduces the exact "
                  "divergence:\n");
      systest::api::SessionConfig replay = config;
      replay.replay_trace = report.bug_trace;
      const systest::api::SessionReport replayed =
          systest::api::TestSession(replay).Run();
      std::printf("  replay: %s\n", replayed.report.Summary().c_str());
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s (try 'list')\n", error.what());
    return 2;
  }
  return 0;
}
