// The paper's flagship case study (§3): the Azure Storage vNext Extent
// Manager, whose stale-sync-report bug made extent replicas silently
// unrepairable. The real (C++) ExtentManager is wrapped in a machine and
// driven by modeled extent nodes, timers and a failure-injecting testing
// driver; the RepairMonitor liveness monitor flags executions in which a
// lost replica is never repaired.
//
// Usage: extent_repair [buggy|fixed]
#include <cstdio>
#include <string>

#include "core/systest.h"
#include "vnext/harness.h"

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "buggy";

  vnext::DriverOptions options;
  options.manager.fix_stale_sync_report = (mode == "fixed");

  systest::TestConfig config =
      vnext::DefaultConfig(systest::StrategyKind::kRandom);
  if (mode == "fixed") {
    config.iterations = 1'000;
  }

  std::printf(
      "Scenario 2 (sec. 3.4): three extent nodes hold the extent; the driver\n"
      "fails one at a nondeterministic time and launches a replacement.\n"
      "RepairMonitor must eventually return to its cold state.\n"
      "fix_stale_sync_report=%s\n\n",
      mode == "fixed" ? "true" : "false");

  systest::TestingEngine engine(config,
                                vnext::MakeExtentRepairHarness(options));
  const systest::TestReport report = engine.Run();
  std::printf("%s\n", report.Summary().c_str());

  if (report.bug_found) {
    std::printf(
        "\nThe paper's sequence (sec. 3.6): the EN expiration loop removes a\n"
        "silent node and deletes its ExtentCenter records; a stale sync\n"
        "report from that node then RESURRECTS the records, so the repair\n"
        "loop believes all replicas are healthy while one is gone.\n"
        "Replaying the recorded trace reproduces it deterministically:\n");
    const systest::TestReport replay = engine.Replay(report.bug_trace);
    std::printf("  replay: %s\n", replay.Summary().c_str());
  }
  return report.bug_found && mode == "fixed" ? 1 : 0;
}
