// The paper's flagship case study (sec. 3): the Azure Storage vNext Extent
// Manager, whose stale-sync-report bug made extent replicas silently
// unrepairable. The real (C++) ExtentManager is wrapped in a machine and
// driven by modeled extent nodes, timers and a failure-injecting testing
// driver; the RepairMonitor liveness monitor flags executions in which a
// lost replica is never repaired.
//
// Usage: extent_repair [buggy|fixed]
#include <cstdio>
#include <string>

#include "api/session.h"

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "buggy";

  systest::api::SessionConfig config;
  config.scenario = mode == "fixed" ? "vnext-fixed" : "vnext-liveness";
  if (mode == "fixed") config.iterations = 1'000;

  std::printf(
      "Scenario 2 (sec. 3.4): three extent nodes hold the extent; the driver\n"
      "fails one at a nondeterministic time and launches a replacement.\n"
      "RepairMonitor must eventually return to its cold state.\n"
      "fix_stale_sync_report=%s\n\n",
      mode == "fixed" ? "true" : "false");

  const systest::api::SessionReport session =
      systest::api::TestSession(config).Run();
  const systest::TestReport& report = session.report;
  std::printf("%s\n", report.Summary().c_str());

  if (report.bug_found) {
    std::printf(
        "\nThe paper's sequence (sec. 3.6): the EN expiration loop removes a\n"
        "silent node and deletes its ExtentCenter records; a stale sync\n"
        "report from that node then RESURRECTS the records, so the repair\n"
        "loop believes all replicas are healthy while one is gone.\n"
        "Replaying the recorded trace reproduces it deterministically:\n");
    systest::api::SessionConfig replay;
    replay.scenario = config.scenario;
    replay.replay_trace = report.bug_trace;
    const systest::api::SessionReport replayed =
        systest::api::TestSession(replay).Run();
    std::printf("  replay: %s\n", replayed.report.Summary().c_str());
  }
  return report.bug_found && mode == "fixed" ? 1 : 0;
}
