// SysTest — §2.2 example system: modeled storage node (Fig. 1, right).
//
// The storage nodes are *modeled* components (Fig. 2): they store data in
// memory rather than on disk, and their periodic sync is driven by a modeled
// timer so the testing engine controls when syncs happen relative to
// replication traffic — which is exactly the interleaving both §2.2 bugs need.
#pragma once

#include <cstdint>

#include "core/runtime.h"
#include "core/timer.h"
#include "samplerepl/events.h"

namespace samplerepl {

class StorageNodeMachine final : public systest::Machine {
 public:
  static constexpr bool kReusableRuntime = true;

  explicit StorageNodeMachine(systest::MachineId server);

  /// Stateful exploration payload: the node's semantic state is its log.
  void FingerprintPayload(systest::StateHasher& hasher) const override {
    hasher.Mix(log_value_).Mix(empty_ ? 1 : 0);
  }

 protected:
  /// Fault plane: the node stores in MEMORY (it is a modeled component), so
  /// a crash loses the log. The safety monitor is told, since a wiped node
  /// no longer holds a replica no matter what the server believes.
  void OnCrash() override;

 private:
  void OnReset() override {
    log_value_ = 0;
    empty_ = true;
  }

  void OnReplReq(const ReplReq& request);
  void OnTimeout(const systest::TimerTick& tick);

  systest::MachineId server_;
  std::uint64_t log_value_ = 0;
  bool empty_ = true;
};

}  // namespace samplerepl
