// SysTest — §2.2 example system: the replication server (Fig. 1, middle).
//
// This is the "system under test" of the worked example: it carries the two
// intentional bugs the paper describes in §2.2, both re-introducible via
// ServerBugs so the test harness can demonstrate detection:
//   1. the server does not keep track of *unique* replicas — the replica
//      counter increments on every up-to-date sync, so the same node syncing
//      repeatedly can drive the count to the target (safety bug);
//   2. the server does not reset the replica counter after sending Ack, so
//      the second client request is never acknowledged (liveness bug).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "core/runtime.h"
#include "samplerepl/events.h"

namespace samplerepl {

/// Re-introducible bugs (paper methodology §6.2: "we added flags to allow
/// them to be individually re-introduced, for purposes of evaluation").
struct ServerBugs {
  bool non_unique_replica_count = false;  ///< bug 1 (safety)
  bool no_counter_reset = false;          ///< bug 2 (liveness)
};

class ServerMachine final : public systest::Machine {
 public:
  static constexpr bool kReusableRuntime = true;

  ServerMachine(std::size_t replica_target, ServerBugs bugs);

  /// Stateful exploration payload: the replication protocol's semantic state
  /// — the outstanding value and both replica-counting views (ROADMAP
  /// "replica counters" follow-up). Separates program states that share a
  /// control state and queue but differ in replication progress.
  void FingerprintPayload(systest::StateHasher& hasher) const override {
    hasher.Mix(data_).Mix(has_data_ ? 1 : 0).Mix(num_replicas_);
    hasher.Mix(replica_nodes_.size());
    for (const systest::MachineId node : replica_nodes_) {
      hasher.Mix(node.value);
    }
  }

  /// Wires up the storage nodes and client (the harness creates them after
  /// the server, so they are injected via an event).
  struct ConfigEvent final : systest::Event {
    ConfigEvent(systest::MachineId client,
                std::vector<systest::MachineId> nodes)
        : client(client), nodes(std::move(nodes)) {}
    systest::MachineId client;
    std::vector<systest::MachineId> nodes;
  };

 private:
  void OnReset() override {
    client_ = {};
    nodes_.clear();
    data_ = 0;
    has_data_ = false;
    num_replicas_ = 0;
    replica_nodes_.clear();
  }

  void OnConfig(const ConfigEvent& config);
  void OnClientReq(const ClientReq& request);
  void OnSync(const SyncEvent& sync);

  [[nodiscard]] bool IsUpToDate(const SyncEvent& sync) const;
  void DoSync(const SyncEvent& sync);

  std::size_t replica_target_;
  ServerBugs bugs_;
  systest::MachineId client_;
  std::vector<systest::MachineId> nodes_;
  std::uint64_t data_ = 0;
  bool has_data_ = false;
  std::size_t num_replicas_ = 0;                 // buggy counting path
  std::set<systest::MachineId> replica_nodes_;   // fixed counting path
};

}  // namespace samplerepl
