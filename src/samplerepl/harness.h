// SysTest — §2.2 example system: the P#-style test harness (Fig. 2).
//
// Assembles the server under test with the modeled environment (client,
// storage nodes, timers) and the two monitors, returning a Harness the
// TestingEngine can explore.
#pragma once

#include <cstdint>

#include "core/engine.h"
#include "samplerepl/server.h"

namespace samplerepl {

struct HarnessOptions {
  ServerBugs bugs;
  std::size_t num_nodes = 3;
  std::size_t replica_target = 3;
  std::size_t num_requests = 2;    ///< bug 2 needs at least two requests
  std::uint64_t value_space = 2;   ///< distinct payload values per request
  /// Sync-timer rounds per node. 0 (the default) models the paper's
  /// unbounded periodic timers: buggy executions then run to the engine's
  /// step bound (the "bounded infinite execution" of §2.5) while correct
  /// executions quiesce because the client cancels the timers after the last
  /// Ack.
  std::uint64_t timer_rounds = 0;
  /// Fault plane: opt the storage nodes in as crash candidates
  /// (Runtime::SetCrashable). Only meaningful when the engine runs with a
  /// crash budget.
  bool crashable_nodes = false;
  /// Fault plane: opt the storage nodes in as partition candidates
  /// (Runtime::SetPartitionable). While a node is isolated every delivery
  /// between it and any other machine — store requests, sync responses, its
  /// own timer's ticks — is silently dropped until the strategy heals it.
  /// Only meaningful when the engine runs with a partition budget.
  bool partitionable_nodes = false;
  /// Register the RequestLivenessMonitor. Crash scenarios turn it off:
  /// under unrestricted crashes "every request is eventually acked" is not
  /// a theorem (a dead quorum legitimately blocks progress), so keeping the
  /// monitor would bury the crash-recovery SAFETY bug under expected
  /// liveness reports.
  bool liveness_monitor = true;
};

/// Builds the Fig. 2 harness. The returned callable populates a fresh
/// Runtime on every testing iteration.
systest::Harness MakeHarness(const HarnessOptions& options);

/// Engine configuration tuned for this harness (the paper's 100k-execution
/// budget at the §2.2 example's scale).
systest::TestConfig DefaultConfig(systest::StrategyName strategy = {});

}  // namespace samplerepl
