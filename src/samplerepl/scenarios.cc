// Scenario registrations for the §2.2 worked example: the seeded safety bug
// (non-unique replica count), the seeded liveness bug (no counter reset) and
// the fixed control.
#include "api/scenario_registry.h"
#include "samplerepl/harness.h"

namespace samplerepl {
namespace {

using systest::api::ParamMap;
using systest::api::ParamSpec;
using systest::api::Scenario;

HarnessOptions OptionsFrom(const ParamMap& params) {
  HarnessOptions options;
  options.num_nodes = params.GetUint("nodes", options.num_nodes);
  options.replica_target =
      params.GetUint("replica-target", options.replica_target);
  options.num_requests = params.GetUint("requests", options.num_requests);
  options.value_space = params.GetUint("value-space", options.value_space);
  options.timer_rounds = params.GetUint("timer-rounds", options.timer_rounds);
  return options;
}

std::vector<ParamSpec> Params() {
  return {
      {"nodes", "storage nodes (default 3)"},
      {"replica-target", "replicas required before Ack (default 3)"},
      {"requests", "client requests (default 2; bug 2 needs at least 2)"},
      {"value-space", "distinct payload values per request (default 2)"},
      {"timer-rounds", "sync-timer rounds per node (default 0 = unbounded)"},
  };
}

Scenario Base(const char* name, const char* description, const char* extra_tag,
              ServerBugs bugs) {
  Scenario s;
  s.name = name;
  s.description = description;
  s.tags = {"samplerepl", extra_tag};
  s.tags.emplace_back(bugs.non_unique_replica_count || bugs.no_counter_reset
                          ? "buggy"
                          : "fixed");
  s.params = Params();
  s.make = [bugs](const ParamMap& params) {
    HarnessOptions options = OptionsFrom(params);
    options.bugs = bugs;
    return MakeHarness(options);
  };
  s.default_config = [] { return DefaultConfig(); };
  return s;
}

SYSTEST_REGISTER_SCENARIO(samplerepl_safety) {
  ServerBugs bugs;
  bugs.non_unique_replica_count = true;
  return Base("samplerepl-safety",
              "sec. 2.2 example, seeded safety bug (non-unique replica count)",
              "safety", bugs);
}

SYSTEST_REGISTER_SCENARIO(samplerepl_liveness) {
  ServerBugs bugs;
  bugs.no_counter_reset = true;
  return Base("samplerepl-liveness",
              "sec. 2.2 example, seeded liveness bug (no replica counter reset)",
              "liveness", bugs);
}

SYSTEST_REGISTER_SCENARIO(samplerepl_fixed) {
  return Base("samplerepl-fixed", "sec. 2.2 example with both bugs fixed (control)",
              "safety", ServerBugs{});
}

// Crash-recovery scenario (fault plane): the FIXED server under
// scheduler-controlled storage-node crashes. The server's replica accounting
// has no notion of node failure, so a node that crashes (losing its
// in-memory log) after its sync was counted stays counted — the server acks
// with fewer real replicas than the target. A genuine protocol flaw that
// only failure interleavings expose; the witness trace carries the crash
// schedule and replays without any fault flags.
SYSTEST_REGISTER_SCENARIO(samplerepl_node_crash) {
  Scenario s;
  s.name = "samplerepl-node-crash";
  s.description =
      "sec. 2.2 example, fixed server under scheduler-controlled node "
      "crashes: replica accounting ignores failures";
  s.tags = {"samplerepl", "safety", "crash-recovery", "buggy"};
  s.params = Params();
  s.make = [](const ParamMap& params) {
    HarnessOptions options = OptionsFrom(params);
    options.bugs = ServerBugs{};  // both seeded bugs FIXED
    options.crashable_nodes = true;
    // Liveness is intentionally unmonitored: under unrestricted crashes a
    // dead quorum legitimately blocks progress, and the interesting property
    // here is the SAFETY of the ack.
    options.liveness_monitor = false;
    return MakeHarness(options);
  };
  s.default_config = [] {
    systest::TestConfig config = DefaultConfig();
    config.max_crashes = 1;
    config.max_restarts = 1;
    return config;
  };
  return s;
}

// Partition scenario (fault plane): the FIXED server with the storage nodes
// opted in as partition candidates. The strategy may isolate one node at any
// step boundary (store requests, sync responses and even its own timer's
// ticks are then dropped) and heal it at a later, separately chosen point.
// Partitions can only REMOVE deliveries, so the fixed server must stay safe
// under every placement: an Ack still requires the target number of genuine
// store acknowledgements, and the safety monitor checks that ground truth.
// Liveness is intentionally unmonitored — a partition the strategy never
// heals legitimately blocks progress. The witness trace (v3) carries the
// partition-and-heal schedule and replays without any fault flags.
SYSTEST_REGISTER_SCENARIO(samplerepl_partition_heal) {
  Scenario s;
  s.name = "samplerepl-partition-heal";
  s.description =
      "sec. 2.2 example, fixed server under scheduler-controlled node "
      "partition and heal";
  s.tags = {"samplerepl", "safety", "partition", "fixed"};
  s.params = Params();
  s.make = [](const ParamMap& params) {
    HarnessOptions options = OptionsFrom(params);
    options.bugs = ServerBugs{};  // both seeded bugs FIXED
    options.partitionable_nodes = true;
    options.liveness_monitor = false;
    return MakeHarness(options);
  };
  s.default_config = [] {
    systest::TestConfig config = DefaultConfig();
    config.max_partitions = 1;  // heal odds stay at the engine default
    return config;
  };
  return s;
}

}  // namespace
}  // namespace samplerepl
