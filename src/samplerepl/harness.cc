#include "samplerepl/harness.h"

#include <vector>

#include "core/timer.h"
#include "samplerepl/client.h"
#include "samplerepl/monitors.h"
#include "samplerepl/storage_node.h"

namespace samplerepl {

systest::Harness MakeHarness(const HarnessOptions& options) {
  return [options](systest::Runtime& rt) {
    rt.RegisterMonitor<ReplicaSafetyMonitor>("ReplicaSafetyMonitor",
                                             options.replica_target);
    if (options.liveness_monitor) {
      rt.RegisterMonitor<RequestLivenessMonitor>("RequestLivenessMonitor");
    }

    const systest::MachineId server = rt.CreateMachine<ServerMachine>(
        "Server", options.replica_target, options.bugs);

    std::vector<systest::MachineId> nodes;
    std::vector<systest::MachineId> timers;
    nodes.reserve(options.num_nodes);
    timers.reserve(options.num_nodes);
    for (std::size_t i = 0; i < options.num_nodes; ++i) {
      const systest::MachineId node =
          rt.CreateMachine<StorageNodeMachine>("StorageNode", server);
      if (options.crashable_nodes) {
        rt.SetCrashable(node);
      }
      if (options.partitionable_nodes) {
        rt.SetPartitionable(node);
      }
      // Each storage node's periodic sync is driven by a modeled timer.
      timers.push_back(rt.CreateMachine<systest::TimerMachine>(
          "SyncTimer", node, options.timer_rounds));
      nodes.push_back(node);
    }
    const systest::MachineId client = rt.CreateMachine<ClientMachine>(
        "Client", server, options.num_requests, options.value_space, timers);
    rt.SendEvent<ServerMachine::ConfigEvent>(server, client, nodes);
  };
}

systest::TestConfig DefaultConfig(systest::StrategyName strategy) {
  systest::TestConfig config;
  config.iterations = 100'000;  // the paper's execution budget
  config.max_steps = 2'000;
  config.seed = 2016;
  config.strategy = std::move(strategy);
  config.strategy_budget = 2;  // the paper's PCT budget
  return config;
}

}  // namespace samplerepl
