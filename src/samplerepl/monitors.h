// SysTest — §2.2 example system: safety and liveness monitors (Fig. 2).
#pragma once

#include <cstdint>
#include <set>

#include "core/runtime.h"
#include "samplerepl/events.h"

namespace samplerepl {

/// Safety monitor (§2.4): tracks which storage nodes hold the latest value;
/// when the server issues an Ack, asserts that `replica_target` distinct
/// nodes actually replicated the data.
class ReplicaSafetyMonitor final : public systest::Monitor {
 public:
  static constexpr bool kReusableRuntime = true;

  explicit ReplicaSafetyMonitor(std::size_t replica_target);

 private:
  void OnReset() override {
    latest_value_ = 0;
    have_request_ = false;
    replicas_.clear();
  }

  void OnClientReq(const NotifyClientReq& notification);
  void OnStored(const NotifyStored& notification);
  void OnNodeWiped(const NotifyNodeWiped& notification);
  void OnAck();

  std::size_t replica_target_;
  std::uint64_t latest_value_ = 0;
  bool have_request_ = false;
  std::set<systest::MachineId> replicas_;  // nodes holding the latest value
};

/// Liveness monitor (§2.5): hot from the moment the server accepts a client
/// request until it issues the corresponding Ack. If it stays hot forever
/// (quiescence, or past the temperature threshold of a bounded-infinite
/// execution) the client is blocked and the engine reports a liveness bug.
class RequestLivenessMonitor final : public systest::Monitor {
 public:
  static constexpr bool kReusableRuntime = true;  // stateless beyond control state

  RequestLivenessMonitor();

 private:
  void OnClientReq(const NotifyClientReq& notification);
  void OnAck();
};

}  // namespace samplerepl
