#include "samplerepl/client.h"

#include "core/timer.h"

namespace samplerepl {

ClientMachine::ClientMachine(systest::MachineId server,
                             std::size_t num_requests,
                             std::uint64_t value_space,
                             std::vector<systest::MachineId> timers)
    : server_(server),
      num_requests_(num_requests),
      value_space_(value_space),
      timers_(std::move(timers)) {
  State("Driving").OnEntry(&ClientMachine::Drive);
  SetStart("Driving");
}

systest::Task ClientMachine::Drive() {
  for (std::size_t i = 0; i < num_requests_; ++i) {
    // Nondeterministically generated request payload (§2.3); +1 keeps zero
    // reserved as the storage nodes' "nothing stored" sentinel.
    const std::uint64_t value = NondetInt(value_space_) + 1 + i * value_space_;
    Send<ClientReq>(server_, value);
    (void)co_await Receive<Ack>();  // wait for ack before the next request
  }
  // All requests acknowledged: wind the system down so the execution
  // quiesces (a liveness-clean terminal state).
  for (const systest::MachineId timer : timers_) {
    Send<systest::CancelTimer>(timer);
  }
  Halt();
}

}  // namespace samplerepl
