#include "samplerepl/server.h"

#include "samplerepl/monitors.h"

namespace samplerepl {

ServerMachine::ServerMachine(std::size_t replica_target, ServerBugs bugs)
    : replica_target_(replica_target), bugs_(bugs) {
  State("WaitingConfig")
      .On<ConfigEvent>(&ServerMachine::OnConfig)
      .Defer<ClientReq>()
      .Defer<SyncEvent>();
  State("Serving")
      .On<ClientReq>(&ServerMachine::OnClientReq)
      .On<SyncEvent>(&ServerMachine::OnSync);
  SetStart("WaitingConfig");
}

void ServerMachine::OnConfig(const ConfigEvent& config) {
  client_ = config.client;
  nodes_ = config.nodes;
  Goto("Serving");
}

void ServerMachine::OnClientReq(const ClientReq& request) {
  data_ = request.value;
  has_data_ = true;
  Notify<ReplicaSafetyMonitor, NotifyClientReq>(data_);
  Notify<RequestLivenessMonitor, NotifyClientReq>(data_);
  // A new value invalidates previous replication progress.
  num_replicas_ = 0;
  replica_nodes_.clear();
  // Replicate the data to all storage nodes (Fig. 1).
  for (const systest::MachineId node : nodes_) {
    Send<ReplReq>(node, data_);
  }
}

bool ServerMachine::IsUpToDate(const SyncEvent& sync) const {
  return has_data_ && !sync.empty && sync.log_value == data_;
}

void ServerMachine::OnSync(const SyncEvent& sync) { DoSync(sync); }

void ServerMachine::DoSync(const SyncEvent& sync) {
  if (!has_data_) {
    return;  // nothing outstanding to replicate
  }
  if (!IsUpToDate(sync)) {
    // The node's log is stale: replicate again (Fig. 1's doSync).
    Send<ReplReq>(sync.node, data_);
    return;
  }
  std::size_t replicas = 0;
  if (bugs_.non_unique_replica_count) {
    // BUG 1 (paper §2.2): every up-to-date sync increments the counter, even
    // if the syncing node is already counted as a replica.
    replicas = ++num_replicas_;
  } else {
    replica_nodes_.insert(sync.node);
    replicas = replica_nodes_.size();
  }
  if (replicas == replica_target_) {
    Send<Ack>(client_);
    Notify<ReplicaSafetyMonitor, NotifyAck>();
    Notify<RequestLivenessMonitor, NotifyAck>();
    if (!bugs_.no_counter_reset) {
      num_replicas_ = 0;
      replica_nodes_.clear();
      has_data_ = false;
    }
    // BUG 2 (paper §2.2): without the reset above, the counter keeps growing
    // past the target, the `== target` test never fires again, and the next
    // client request is never acknowledged.
  }
}

}  // namespace samplerepl
