// SysTest — §2.2 example distributed storage system (paper Figs. 1-2).
//
// Events exchanged between the client, the server and the storage nodes, and
// the notifications consumed by the safety and liveness monitors.
#pragma once

#include <cstdint>

#include "core/event.h"
#include "core/strategy.h"

namespace samplerepl {

/// Client -> Server: replicate `value`.
struct ClientReq final : systest::Event {
  explicit ClientReq(std::uint64_t value) : value(value) {}
  std::uint64_t value;
};

/// Server -> Client: the data has (allegedly) been replicated 3 times.
struct Ack final : systest::Event {};

/// Server -> StorageNode: store `value`.
struct ReplReq final : systest::Event {
  explicit ReplReq(std::uint64_t value) : value(value) {}
  std::uint64_t value;
};

/// StorageNode -> Server: periodic sync carrying the node's storage log
/// (modeled as the last stored value; kNothingStored if empty).
struct SyncEvent final : systest::Event {
  SyncEvent(systest::MachineId node, std::uint64_t log_value, bool empty)
      : node(node), log_value(log_value), empty(empty) {}
  systest::MachineId node;
  std::uint64_t log_value;
  bool empty;
};

// --- Monitor notifications (paper §2.4, §2.5) ---

/// Server accepted a new client request with this value.
struct NotifyClientReq final : systest::Event {
  explicit NotifyClientReq(std::uint64_t value) : value(value) {}
  std::uint64_t value;
};

/// A storage node stored `value`.
struct NotifyStored final : systest::Event {
  NotifyStored(systest::MachineId node, std::uint64_t value)
      : node(node), value(value) {}
  systest::MachineId node;
  std::uint64_t value;
};

/// A storage node crashed and lost its in-memory log (fault plane): whatever
/// it had replicated is gone.
struct NotifyNodeWiped final : systest::Event {
  explicit NotifyNodeWiped(systest::MachineId node) : node(node) {}
  systest::MachineId node;
};

/// Server issued an Ack to the client.
struct NotifyAck final : systest::Event {};

}  // namespace samplerepl
