// SysTest — §2.2 example system: modeled client (Fig. 1, left).
//
// The client drives the system: it repeatedly sends a nondeterministically
// generated ClientReq and blocks until the matching Ack arrives (Fig. 1's
// `receive(Ack)`), written as a coroutine handler over Machine::Receive.
#pragma once

#include <cstdint>
#include <vector>

#include "core/runtime.h"
#include "core/task.h"
#include "samplerepl/events.h"

namespace samplerepl {

class ClientMachine final : public systest::Machine {
 public:
  /// All data members are fixed at construction (Drive() keeps its mutable
  /// state in coroutine locals, which the reset discards with the frame).
  static constexpr bool kReusableRuntime = true;

  /// `timers` are the modeled sync timers; the client cancels them once all
  /// requests have been acknowledged so that correct executions quiesce
  /// (failed executions keep the timers running and hit the step bound, the
  /// paper's bounded-infinite regime for liveness checking).
  ClientMachine(systest::MachineId server, std::size_t num_requests,
                std::uint64_t value_space,
                std::vector<systest::MachineId> timers);

 private:
  systest::Task Drive();

  systest::MachineId server_;
  std::size_t num_requests_;
  std::uint64_t value_space_;
  std::vector<systest::MachineId> timers_;
};

}  // namespace samplerepl
