#include "samplerepl/monitors.h"

namespace samplerepl {

ReplicaSafetyMonitor::ReplicaSafetyMonitor(std::size_t replica_target)
    : replica_target_(replica_target) {
  State("Tracking")
      .On<NotifyClientReq>(&ReplicaSafetyMonitor::OnClientReq)
      .On<NotifyStored>(&ReplicaSafetyMonitor::OnStored)
      .On<NotifyNodeWiped>(&ReplicaSafetyMonitor::OnNodeWiped)
      .On<NotifyAck>(&ReplicaSafetyMonitor::OnAck);
  SetStart("Tracking");
}

void ReplicaSafetyMonitor::OnClientReq(const NotifyClientReq& notification) {
  latest_value_ = notification.value;
  have_request_ = true;
  replicas_.clear();  // a new value invalidates all previous replicas
}

void ReplicaSafetyMonitor::OnStored(const NotifyStored& notification) {
  if (have_request_ && notification.value == latest_value_) {
    replicas_.insert(notification.node);
  }
}

void ReplicaSafetyMonitor::OnNodeWiped(const NotifyNodeWiped& notification) {
  // A crashed node lost its in-memory log: it no longer holds the latest
  // value, whatever the server's accounting says. This is the ground truth
  // the samplerepl-node-crash scenario checks the server against.
  replicas_.erase(notification.node);
}

void ReplicaSafetyMonitor::OnAck() {
  Assert(replicas_.size() >= replica_target_, [&] {
    return "server acked with only " + std::to_string(replicas_.size()) +
           " distinct up-to-date replicas (target " +
           std::to_string(replica_target_) + ")";
  });
}

RequestLivenessMonitor::RequestLivenessMonitor() {
  State("Idle")
      .Cold()
      .On<NotifyClientReq>(&RequestLivenessMonitor::OnClientReq)
      .Ignore<NotifyAck>();
  State("AwaitingAck")
      .Hot()
      .On<NotifyAck>(&RequestLivenessMonitor::OnAck)
      .Ignore<NotifyClientReq>();
  SetStart("Idle");
}

void RequestLivenessMonitor::OnClientReq(const NotifyClientReq&) {
  Goto("AwaitingAck");
}

void RequestLivenessMonitor::OnAck() { Goto("Idle"); }

}  // namespace samplerepl
