#include "samplerepl/storage_node.h"

#include "samplerepl/monitors.h"

namespace samplerepl {

StorageNodeMachine::StorageNodeMachine(systest::MachineId server)
    : server_(server) {
  State("Running")
      .On<ReplReq>(&StorageNodeMachine::OnReplReq)
      .On<systest::TimerTick>(&StorageNodeMachine::OnTimeout);
  // Deployment-fidelity state: a real storage node replays its on-disk log
  // after a crash before serving again. The modeled node stores in memory
  // (Fig. 2) and restarts straight into Running, so no harness ever drives
  // this state — the coverage heatmap flags it as unvisited, by design.
  State("Recovering");
  SetStart("Running");
}

void StorageNodeMachine::OnReplReq(const ReplReq& request) {
  log_value_ = request.value;  // `store(message.Val)` of Fig. 1
  empty_ = false;
  Notify<ReplicaSafetyMonitor, NotifyStored>(Id(), log_value_);
}

void StorageNodeMachine::OnTimeout(const systest::TimerTick& tick) {
  // Send the server the log upon timeout (Fig. 1).
  Send<SyncEvent>(server_, Id(), log_value_, empty_);
  Send<systest::TickAck>(tick.timer);
}

void StorageNodeMachine::OnCrash() {
  log_value_ = 0;
  empty_ = true;
  Notify<ReplicaSafetyMonitor, NotifyNodeWiped>(Id());
}

}  // namespace samplerepl
