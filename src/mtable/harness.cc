#include "mtable/harness.h"

#include "mtable/migrator.h"
#include "mtable/monitors.h"
#include "mtable/tables_machine.h"

namespace mtable {

namespace {

/// Launches the services and the migrator job, waits for every service and
/// the migrator to finish, then asks the Tables machine to run the final
/// verification. Owning the launches lets the driver model the job
/// scheduler of the real system: when the fault plane kills a crashable
/// migrator mid-move, the driver launches a FRESH migrator job, which must
/// converge from whatever intermediate partition state the dead one left
/// behind (the protocol's idempotence is exactly what this scenario tests).
class CompletionDriver final : public systest::Machine {
 public:
  /// Execution recycling: the services and the migrator are created
  /// mid-execution (in OnStart), so the reset truncates them away — only this
  /// driver's own bookkeeping needs restoring.
  static constexpr bool kReusableRuntime = true;

  CompletionDriver(systest::MachineId tables, MigrationHarnessOptions options)
      : tables_(tables), options_(std::move(options)),
        services_left_(options_.num_services) {
    State("Waiting")
        .OnEntry(&CompletionDriver::OnStart)
        .On<ServiceDone>(&CompletionDriver::OnServiceDone)
        .On<MigratorCrashed>(&CompletionDriver::OnMigratorCrashed)
        .On<MigrationDone>(&CompletionDriver::OnMigrationDone);
    SetStart("Waiting");
  }

 private:
  void OnReset() override {
    services_.clear();
    services_left_ = options_.num_services;
    migration_done_ = false;
  }

  void OnStart() {
    for (int i = 0; i < options_.num_services; ++i) {
      ServiceOptions service_options;
      service_options.index = i;
      service_options.num_ops = options_.ops_per_service;
      service_options.value_space = options_.value_space;
      service_options.partitions = options_.partitions;
      service_options.row_keys = options_.row_keys;
      service_options.bugs = options_.bugs;
      if (static_cast<std::size_t>(i) < options_.scripts.size()) {
        service_options.script =
            options_.scripts[static_cast<std::size_t>(i)];
      }
      services_.push_back(Create<ServiceMachine>("Service" + std::to_string(i),
                                                 tables_, Id(),
                                                 std::move(service_options)));
    }
    LaunchMigrator();
  }

  void LaunchMigrator() {
    const systest::MachineId migrator = Create<MigratorMachine>(
        "Migrator", tables_, Id(), services_, options_.partitions,
        options_.bugs);
    if (options_.crashable_migrator) {
      Rt().SetCrashable(migrator);
    }
  }

  void OnMigratorCrashed(const MigratorCrashed&) {
    // A crashed job is gone for good (the Tables machine drops responses to
    // it; services drop barrier acks to it); the replacement starts from the
    // persisted partition states.
    if (!migration_done_) {
      LaunchMigrator();
    }
  }

  void OnServiceDone(const ServiceDone&) {
    --services_left_;
    MaybeVerify();
  }
  void OnMigrationDone(const MigrationDone&) {
    migration_done_ = true;
    MaybeVerify();
  }
  void MaybeVerify() {
    if (services_left_ == 0 && migration_done_) {
      Send<VerifyTables>(tables_);
      Halt();
    }
  }

  systest::MachineId tables_;
  MigrationHarnessOptions options_;
  std::vector<systest::MachineId> services_;
  int services_left_;
  bool migration_done_ = false;
};

}  // namespace

systest::Harness MakeMigrationHarness(const MigrationHarnessOptions& options) {
  return [options](systest::Runtime& rt) {
    rt.RegisterMonitor<MigrationLivenessMonitor>("MigrationLivenessMonitor");

    std::vector<chaintable::TableRow> initial = options.initial_rows;
    if (initial.empty()) {
      for (const std::string& partition : options.partitions) {
        for (std::size_t i = 0; i < options.row_keys.size() && i < 2; ++i) {
          chaintable::TableRow row;
          row.key = {partition, options.row_keys[i]};
          row.properties = {{"val", "v" + std::to_string(i)}};
          initial.push_back(std::move(row));
        }
      }
    }

    const systest::MachineId tables =
        rt.CreateMachine<TablesMachine>("Tables", std::move(initial));
    rt.CreateMachine<CompletionDriver>("CompletionDriver", tables, options);
  };
}

systest::TestConfig DefaultConfig(systest::StrategyName strategy) {
  systest::TestConfig config;
  config.iterations = 100'000;  // the paper's execution budget
  config.max_steps = 20'000;    // executions quiesce far earlier
  config.strategy = strategy;
  config.strategy_budget = 2;
  config.seed = 2016;
  return config;
}

}  // namespace mtable
