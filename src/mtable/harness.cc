#include "mtable/harness.h"

#include "mtable/migrator.h"
#include "mtable/monitors.h"
#include "mtable/tables_machine.h"

namespace mtable {

namespace {

/// Waits for every service and the migrator to finish, then asks the Tables
/// machine to run the final verification.
class CompletionDriver final : public systest::Machine {
 public:
  CompletionDriver(systest::MachineId tables, int num_services)
      : tables_(tables), services_left_(num_services) {
    State("Waiting")
        .On<ServiceDone>(&CompletionDriver::OnServiceDone)
        .On<MigrationDone>(&CompletionDriver::OnMigrationDone);
    SetStart("Waiting");
  }

 private:
  void OnServiceDone(const ServiceDone&) {
    --services_left_;
    MaybeVerify();
  }
  void OnMigrationDone(const MigrationDone&) {
    migration_done_ = true;
    MaybeVerify();
  }
  void MaybeVerify() {
    if (services_left_ == 0 && migration_done_) {
      Send<VerifyTables>(tables_);
      Halt();
    }
  }

  systest::MachineId tables_;
  int services_left_;
  bool migration_done_ = false;
};

}  // namespace

systest::Harness MakeMigrationHarness(const MigrationHarnessOptions& options) {
  return [options](systest::Runtime& rt) {
    rt.RegisterMonitor<MigrationLivenessMonitor>("MigrationLivenessMonitor");

    std::vector<chaintable::TableRow> initial = options.initial_rows;
    if (initial.empty()) {
      for (const std::string& partition : options.partitions) {
        for (std::size_t i = 0; i < options.row_keys.size() && i < 2; ++i) {
          chaintable::TableRow row;
          row.key = {partition, options.row_keys[i]};
          row.properties = {{"val", "v" + std::to_string(i)}};
          initial.push_back(std::move(row));
        }
      }
    }

    const systest::MachineId tables =
        rt.CreateMachine<TablesMachine>("Tables", std::move(initial));
    const systest::MachineId driver = rt.CreateMachine<CompletionDriver>(
        "CompletionDriver", tables, options.num_services);

    std::vector<systest::MachineId> services;
    for (int i = 0; i < options.num_services; ++i) {
      ServiceOptions service_options;
      service_options.index = i;
      service_options.num_ops = options.ops_per_service;
      service_options.value_space = options.value_space;
      service_options.partitions = options.partitions;
      service_options.row_keys = options.row_keys;
      service_options.bugs = options.bugs;
      if (static_cast<std::size_t>(i) < options.scripts.size()) {
        service_options.script = options.scripts[static_cast<std::size_t>(i)];
      }
      services.push_back(rt.CreateMachine<ServiceMachine>(
          "Service" + std::to_string(i), tables, driver,
          std::move(service_options)));
    }
    rt.CreateMachine<MigratorMachine>("Migrator", tables, driver, services,
                                      options.partitions, options.bugs);
  };
}

systest::TestConfig DefaultConfig(systest::StrategyName strategy) {
  systest::TestConfig config;
  config.iterations = 100'000;  // the paper's execution budget
  config.max_steps = 20'000;    // executions quiesce far earlier
  config.strategy = strategy;
  config.strategy_budget = 2;
  config.seed = 2016;
  return config;
}

}  // namespace mtable
