// SysTest — Live Table Migration case study (§4).
//
// Machine base for harness participants that execute backend operations:
// implements BackendClient as an event round-trip through the Tables
// machine (request, suspend in Receive, resume with the response).
#pragma once

#include "core/runtime.h"
#include "core/task.h"
#include "mtable/migrating_table.h"
#include "mtable/protocol.h"

namespace mtable {

class BackendClientMachine : public systest::Machine, public BackendClient {
 public:
  systest::TaskOf<BackendResult> Execute(TableSel table, TableOp op,
                                         LinFn lin) override {
    const std::uint64_t id = ++request_counter_;
    Send<BackendRequest>(tables_, Id(), id, table, std::move(op),
                         std::move(lin));
    auto response = co_await Receive<BackendResponse>();
    Assert(response->request_id == id,
           "backend response out of order (one outstanding request per "
           "machine by construction)");
    co_return response->result;
  }

  [[nodiscard]] std::uint64_t ClientKey() const override { return Id().value; }

 protected:
  explicit BackendClientMachine(systest::MachineId tables) : tables_(tables) {}

  [[nodiscard]] systest::MachineId Tables() const noexcept { return tables_; }

 private:
  systest::MachineId tables_;
  std::uint64_t request_counter_ = 0;
};

}  // namespace mtable
