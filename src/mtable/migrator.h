// SysTest — Live Table Migration case study (§4): the migrator job.
//
// "A migrator job moves the data in the background" while applications keep
// operating through their MigratingTable instances. Per partition it drives
//
//   Unpopulated -> Populating -> [settling barrier] -> Populated
//     -> copy rows (insert-if-absent, recording __orig etags)
//     -> delete old rows -> Switched
//
// and finally, after a last settling barrier, sweeps remaining tombstones
// from the new table. The settling barrier models waiting out the
// configuration lease of the real system: the migrator asks every service to
// acknowledge once its in-flight logical operation has finished, which
// guarantees old-table writers and new-table writers never overlap.
//
// Bug hooks: MigrateSkipPreferOld (no settling barrier),
// MigrateSkipUseNewWithTombstones (partition marked Switched before the old
// rows are deleted) and EnsurePartitionSwitchedFromPopulated (the Populated
// precondition dropped: an Unpopulated partition is switched — i.e. its old
// rows deleted — without ever being copied).
#pragma once

#include <string>
#include <vector>

#include "mtable/backend_client_machine.h"
#include "mtable/bugs.h"

namespace mtable {

class MigratorMachine final : public BackendClientMachine {
 public:
  MigratorMachine(systest::MachineId tables, systest::MachineId driver,
                  std::vector<systest::MachineId> services,
                  std::vector<std::string> partitions, MTableBugs bugs);

 private:
  /// Fault-plane crash hook: tell the driver this job died so it can launch
  /// a replacement (crash-mid-move scenario).
  void OnCrash() override;

  systest::Task Migrate();
  systest::Task SetState(const std::string& partition, PartitionState state);
  systest::TaskOf<PartitionState> ReadState(const std::string& partition);
  systest::Task SettleAll();
  systest::Task EnsurePartitionSwitched(const std::string& partition);
  systest::Task SweepTombstones();

  systest::MachineId driver_;
  std::vector<systest::MachineId> services_;
  std::vector<std::string> partitions_;
  MTableBugs bugs_;
  std::uint64_t barrier_epoch_ = 0;
};

}  // namespace mtable
