// SysTest — Live Table Migration case study (§4, Table 2).
//
// The eleven re-introducible MigratingTable bugs evaluated in the paper's
// Table 2 (eight organic bugs found during development plus three notional
// ones, marked * there). Each flag re-introduces one bug; all flags off is
// the fixed system, which must survive systematic differential testing.
#pragma once

#include <array>
#include <string_view>

namespace mtable {

struct MTableBugs {
  /// Atomic query applies the user filter to the two backend snapshots
  /// before merging, so a non-matching new-table row fails to shadow a stale
  /// matching old-table row.
  bool query_atomic_filter_shadowing = false;

  /// Streaming query serves the new table from a snapshot taken at stream
  /// start instead of re-reading under the lock, missing rows the migrator
  /// moves into the new table mid-stream.
  bool query_streamed_lock = false;

  /// Streaming query advances a forward-only cursor over the new table and
  /// never "backs it up", missing rows whose old-table deletion it saw but
  /// whose (earlier) new-table insertion happened behind the cursor —
  /// the paper's marquee QueryStreamedBackUpNewStream bug (§6.2).
  bool query_streamed_backup_new_stream = false;

  /// In the no-tombstones regime (partition switched), delete ignores the
  /// caller's ETag and deletes unconditionally.
  bool delete_no_leave_tombstones_etag = false;

  /// Delete builds the backend key from the table's cached "current
  /// partition" instead of the operation's own partition key.
  bool delete_primary_key = false;

  /// EnsurePartitionSwitched switches a partition from any state instead of
  /// only from Populated — deleting old rows that were never copied.
  bool ensure_partition_switched_from_populated = false;

  /// Insert over a tombstone returns the tombstone's ETag instead of the
  /// newly written row's.
  bool tombstone_output_etag = false;

  /// Streaming query pushes the user filter into the backend reads,
  /// breaking shadowing (streamed sibling of the atomic bug).
  bool query_streamed_filter_shadowing = false;

  /// Writers skip the prefer-old configuration fence on old-table writes:
  /// a write that observed the pre-migration state can then commit after the
  /// migrator's populate snapshot and be deleted, uncopied, at the switch.
  bool migrate_skip_prefer_old = false;

  /// Migrator marks the partition Switched before deleting the old rows,
  /// ending the tombstone regime while old rows can still resurface.
  bool migrate_skip_use_new_with_tombstones = false;

  /// Insert takes a fast path into the old table while the partition is not
  /// yet switched — rows inserted behind the migrator are lost.
  bool insert_behind_migrator = false;
};

/// Identifiers matching the paper's Table 2 rows, for benches and tests.
enum class MTableBugId {
  kQueryAtomicFilterShadowing,
  kQueryStreamedLock,
  kQueryStreamedBackUpNewStream,
  kDeleteNoLeaveTombstonesEtag,
  kDeletePrimaryKey,
  kEnsurePartitionSwitchedFromPopulated,
  kTombstoneOutputETag,
  kQueryStreamedFilterShadowing,
  kMigrateSkipPreferOld,
  kMigrateSkipUseNewWithTombstones,
  kInsertBehindMigrator,
};

inline constexpr std::array<MTableBugId, 11> kAllMTableBugs = {
    MTableBugId::kQueryAtomicFilterShadowing,
    MTableBugId::kQueryStreamedLock,
    MTableBugId::kQueryStreamedBackUpNewStream,
    MTableBugId::kDeleteNoLeaveTombstonesEtag,
    MTableBugId::kDeletePrimaryKey,
    MTableBugId::kEnsurePartitionSwitchedFromPopulated,
    MTableBugId::kTombstoneOutputETag,
    MTableBugId::kQueryStreamedFilterShadowing,
    MTableBugId::kMigrateSkipPreferOld,
    MTableBugId::kMigrateSkipUseNewWithTombstones,
    MTableBugId::kInsertBehindMigrator,
};

constexpr std::string_view ToString(MTableBugId id) noexcept {
  switch (id) {
    case MTableBugId::kQueryAtomicFilterShadowing:
      return "QueryAtomicFilterShadowing";
    case MTableBugId::kQueryStreamedLock:
      return "QueryStreamedLock";
    case MTableBugId::kQueryStreamedBackUpNewStream:
      return "QueryStreamedBackUpNewStream";
    case MTableBugId::kDeleteNoLeaveTombstonesEtag:
      return "DeleteNoLeaveTombstonesEtag";
    case MTableBugId::kDeletePrimaryKey:
      return "DeletePrimaryKey";
    case MTableBugId::kEnsurePartitionSwitchedFromPopulated:
      return "EnsurePartitionSwitchedFromPopulated";
    case MTableBugId::kTombstoneOutputETag:
      return "TombstoneOutputETag";
    case MTableBugId::kQueryStreamedFilterShadowing:
      return "QueryStreamedFilterShadowing";
    case MTableBugId::kMigrateSkipPreferOld:
      return "MigrateSkipPreferOld";
    case MTableBugId::kMigrateSkipUseNewWithTombstones:
      return "MigrateSkipUseNewWithTombstones";
    case MTableBugId::kInsertBehindMigrator:
      return "InsertBehindMigrator";
  }
  return "?";
}

constexpr MTableBugs EnableBug(MTableBugId id) noexcept {
  MTableBugs bugs;
  switch (id) {
    case MTableBugId::kQueryAtomicFilterShadowing:
      bugs.query_atomic_filter_shadowing = true;
      break;
    case MTableBugId::kQueryStreamedLock:
      bugs.query_streamed_lock = true;
      break;
    case MTableBugId::kQueryStreamedBackUpNewStream:
      bugs.query_streamed_backup_new_stream = true;
      break;
    case MTableBugId::kDeleteNoLeaveTombstonesEtag:
      bugs.delete_no_leave_tombstones_etag = true;
      break;
    case MTableBugId::kDeletePrimaryKey:
      bugs.delete_primary_key = true;
      break;
    case MTableBugId::kEnsurePartitionSwitchedFromPopulated:
      bugs.ensure_partition_switched_from_populated = true;
      break;
    case MTableBugId::kTombstoneOutputETag:
      bugs.tombstone_output_etag = true;
      break;
    case MTableBugId::kQueryStreamedFilterShadowing:
      bugs.query_streamed_filter_shadowing = true;
      break;
    case MTableBugId::kMigrateSkipPreferOld:
      bugs.migrate_skip_prefer_old = true;
      break;
    case MTableBugId::kMigrateSkipUseNewWithTombstones:
      bugs.migrate_skip_use_new_with_tombstones = true;
      break;
    case MTableBugId::kInsertBehindMigrator:
      bugs.insert_behind_migrator = true;
      break;
  }
  return bugs;
}

}  // namespace mtable
