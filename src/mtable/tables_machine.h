// SysTest — Live Table Migration case study (§4): the Tables machine.
//
// Owns the two backend tables (old/new) AND the reference table (RT), and
// serializes all operations on them (paper Fig. 12: "a Tables machine, which
// contains the BTs and RT, and serializes all operations on these tables").
// Each backend request may carry a linearization function; the machine runs
// it atomically with the backend operation and executes the resulting
// linearization actions:
//
//  * LinWrite     — apply the logical write to the RT (resolving symbolic
//                   etag slots to RT etags) and assert the RT result code
//                   equals what the MigratingTable returns to the app;
//  * LinReadCheck — assert the RT's view of a key equals the MT's answer;
//  * LinQueryCheck— assert the RT's filtered snapshot equals the MT's;
//  * LinStream*   — streaming-window checks (see below).
//
// Streaming-window rules (the IChainTable stream contract: "each row read
// from a stream may reflect the state of the table at any time between when
// the stream was started and the row was read", §6.2): the machine keeps a
// timestamped history of every RT row since the execution began. For a
// stream with filter F started at time t0:
//  (a) emitted keys are strictly increasing (order, no duplicates);
//  (b) an emitted row (k, v) must match F and some historical RT value of k
//      within [t0, now];
//  (c) a key the stream skipped must have been absent-or-not-matching-F at
//      some time within [t0, now] — a row that matched F continuously for
//      the whole window yet was never emitted is a violation (this is what
//      catches QueryStreamedBackUpNewStream and QueryStreamedLock).
//
// On VerifyTables (sent by the driver once all services and the migrator
// are done) the machine checks the end-to-end postconditions: the merged
// backend view equals the RT, the old table is empty and the new table
// holds no tombstones.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "chaintable/memory_table.h"
#include "core/runtime.h"
#include "mtable/protocol.h"

namespace mtable {

class TablesMachine final : public systest::Machine {
 public:
  /// Execution recycling: everything an execution mutates (the three tables,
  /// the slot mirror, history, streams, logical time) is restored by OnReset,
  /// which re-runs the constructor's seeding from the retained initial rows.
  static constexpr bool kReusableRuntime = true;

  /// `initial_rows` are seeded into the old table and the RT before the
  /// execution starts (the pre-migration data set).
  explicit TablesMachine(std::vector<chaintable::TableRow> initial_rows);

  [[nodiscard]] const chaintable::InMemoryChainTable& OldTable() const {
    return old_;
  }
  [[nodiscard]] const chaintable::InMemoryChainTable& NewTable() const {
    return new_;
  }
  [[nodiscard]] const chaintable::InMemoryChainTable& ReferenceTable() const {
    return rt_;
  }
  [[nodiscard]] bool Verified() const noexcept { return verified_; }

  /// Stateful exploration payload (ROADMAP "differential-store-row"): the
  /// machine OWNS all three tables, so their contents belong in its
  /// fingerprint contribution. Each table keeps an incrementally-maintained
  /// XOR-of-row-hashes digest (InMemoryChainTable::ContentHash), so this is
  /// O(1) per call — executions that reach the same three table states and
  /// logical time dedup, regardless of how their schedules got there.
  void FingerprintPayload(systest::StateHasher& hasher) const override {
    hasher.Mix(old_.ContentHash())
        .Mix(new_.ContentHash())
        .Mix(rt_.ContentHash())
        .Mix(seq_);
  }

 private:
  void OnReset() override;

  /// Seeds `initial_rows_` into the old table, the RT and the history —
  /// shared by the constructor and OnReset.
  void SeedInitialRows();

  void OnRequest(const BackendRequest& request);
  void OnVerify(const VerifyTables& verify);

  BackendResult ExecuteOn(chaintable::IChainTable& table, const TableOp& op);
  void RunLinActions(const std::vector<LinAction>& actions,
                     systest::MachineId service);

  void ApplyLinWrite(const LinWrite& action, systest::MachineId service);
  void CheckRead(const LinReadCheck& action);
  void CheckQuery(const LinQueryCheck& action);
  void StreamStarted(const LinStreamStart& action);
  void StreamEmitted(const LinStreamEmit& action);
  void StreamEnded(const LinStreamEnd& action);

  /// Records the RT value of `key` after a successful RT mutation.
  void RecordHistory(const chaintable::TableKey& key);

  /// All values (or absences) key held in [from_seq, now], oldest first.
  [[nodiscard]] std::vector<std::optional<chaintable::Properties>>
  HistoryWindow(const chaintable::TableKey& key, std::uint64_t from_seq) const;

  /// Checks stream rule (c) for every key in (from, to) — to empty means
  /// "to the end of the key space".
  void CheckSkippedKeys(std::uint64_t stream_id,
                        const std::optional<chaintable::TableKey>& from,
                        const std::optional<chaintable::TableKey>& to);

  // Disjoint etag residue classes: virtual etags must be unique across the
  // two backend tables (see InMemoryChainTable).
  chaintable::InMemoryChainTable old_{1, 3};
  chaintable::InMemoryChainTable new_{2, 3};
  chaintable::InMemoryChainTable rt_{3, 3};

  /// (service machine id, slot) -> RT etag (the checker-side mirror of the
  /// services' MT-side etag slots).
  std::map<std::pair<std::uint64_t, int>, chaintable::Etag> rt_slots_;

  /// Logical time: bumped on every RT mutation.
  std::uint64_t seq_ = 0;
  struct HistoryEntry {
    std::uint64_t seq;
    std::optional<chaintable::Properties> value;  // nullopt: absent
  };
  std::map<chaintable::TableKey, std::vector<HistoryEntry>> history_;

  struct StreamInfo {
    chaintable::Filter filter;
    std::uint64_t start_seq = 0;
    std::optional<chaintable::TableKey> last_emitted;
    bool open = false;
  };
  std::map<std::uint64_t, StreamInfo> streams_;

  bool verified_ = false;

  /// Retained for OnReset's re-seeding.
  std::vector<chaintable::TableRow> initial_rows_;
};

}  // namespace mtable
