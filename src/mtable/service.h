// SysTest — Live Table Migration case study (§4): service machines.
//
// "Each Service machine issues a random sequence of logical operations to
// its MT" (Fig. 12). Operation kinds, keys, values and ETag modes are all
// chosen through the testing engine's controlled nondeterminism ("they used
// the P# Nondet() method to choose all of the parameters independently
// within certain limits", §4). A service can instead run a scripted
// operation sequence — the paper's "custom test case" mechanism for the
// bugs whose triggering inputs are too rare under the default distribution.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mtable/backend_client_machine.h"
#include "mtable/bugs.h"

namespace mtable {

/// One scripted logical operation (used by custom test cases).
struct ScriptedOp {
  enum class Kind {
    kInsert,
    kReplace,
    kUpsert,
    kDelete,
    kRetrieve,
    kQuery,
    kStreamScan,
  };
  Kind kind = Kind::kInsert;
  int partition = 0;  ///< index into the workload's partition list
  int row = 0;        ///< index into the workload's row-key list
  std::string value;  ///< user property "val"
  int etag_slot = -1;   ///< conditional ops: etag slot, -1 = match-any
  int out_slot = -1;    ///< writes: slot to store the new etag in
  bool filter_by_value = false;  ///< queries: add property filter val==value
};

struct ServiceOptions {
  int index = 0;
  int num_ops = 4;
  std::uint64_t value_space = 3;  ///< distinct values "v0".."v{n-1}"
  std::vector<std::string> partitions;
  std::vector<std::string> row_keys;
  MTableBugs bugs;
  std::vector<ScriptedOp> script;  ///< empty: generate ops nondeterministically
};

class ServiceMachine final : public BackendClientMachine {
 public:
  ServiceMachine(systest::MachineId tables, systest::MachineId driver,
                 ServiceOptions options);

 private:
  static constexpr int kSlots = 4;

  void OnStart();
  systest::Task OnNextOp(const NextOp& next);
  void OnBarrier(const SettleBarrier& barrier);

  systest::Task RunOp(const ScriptedOp& op);
  [[nodiscard]] ScriptedOp GenerateOp();

  systest::MachineId driver_;
  ServiceOptions options_;
  MigratingTable mt_;
  int ops_done_ = 0;

  struct Slot {
    chaintable::Etag etag = chaintable::kInvalidEtag;
    bool valid = false;
  };
  Slot slots_[kSlots];
};

}  // namespace mtable
