// SysTest — Live Table Migration case study (§4): harness assembly (Fig. 12).
#pragma once

#include <string>
#include <vector>

#include "core/engine.h"
#include "mtable/bugs.h"
#include "mtable/service.h"

namespace mtable {

struct MigrationHarnessOptions {
  MTableBugs bugs;
  int num_services = 2;
  int ops_per_service = 4;
  std::vector<std::string> partitions = {"P0", "P1"};
  std::vector<std::string> row_keys = {"r0", "r1", "r2"};
  std::uint64_t value_space = 3;
  /// Initial data set (seeded into the old table and the RT). Empty means
  /// the default: one row per (partition, row-key in {r0, r1}).
  std::vector<chaintable::TableRow> initial_rows;
  /// Optional per-service scripted operations (custom test cases). When a
  /// script is set for a service it overrides random generation.
  std::vector<std::vector<ScriptedOp>> scripts;
  /// Hand the migrator job to the fault plane (Runtime::SetCrashable): the
  /// TestConfig::max_crashes budget decides whether and where it dies
  /// mid-move; the driver then launches a FRESH migrator job that must
  /// converge from the dead one's intermediate partition state. The window
  /// closes right before MigrationDone, so a completed migration is never
  /// re-run.
  bool crashable_migrator = false;
};

/// Builds the Fig. 12 harness: Tables machine (BTs + RT + checker), service
/// machines, the migrator, the completion driver and the liveness monitor.
systest::Harness MakeMigrationHarness(const MigrationHarnessOptions& options);

/// Engine configuration tuned for this harness (executions quiesce when the
/// workload and migration complete).
systest::TestConfig DefaultConfig(systest::StrategyName strategy = {});

}  // namespace mtable
