// SysTest — Live Table Migration case study (§4): the MigratingTable.
//
// An application-facing IChainTable-like layer over the old and new backend
// tables. Each logical operation is a coroutine performing a sequence of
// backend operations through a BackendClient (in the harness: event
// round-trips through the Tables machine); at its linearization point the
// operation attaches a linearization function so the checker can apply or
// compare the logical operation against the reference table atomically.
//
// Protocol summary (see protocol.h and DESIGN.md §3):
//  * writes route by the key's observed partition state: <= Populating to
//    the old table, >= Populated to the new table (deletes leave tombstones
//    until the partition is Switched);
//  * reads with state >= Populated merge new-over-old with a new-table
//    double-check (new -> old -> new);
//  * the virtual ETag of a row is the backend etag of the write that
//    produced it; the migrator records the old etag in the __orig property
//    when copying, so conditional operations survive migration.
//
// All eleven Table 2 bugs are re-introducible through MTableBugs flags; the
// buggy code paths are marked inline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaintable/chain_table.h"
#include "core/task.h"
#include "mtable/bugs.h"
#include "mtable/protocol.h"

namespace mtable {

/// Migration state of a partition as observed by an operation: the state
/// value plus the state row's etag, which doubles as the configuration fence
/// for old-table writes.
struct StateInfo {
  PartitionState state = PartitionState::kUnpopulated;
  chaintable::Etag etag = chaintable::kInvalidEtag;  // kInvalid = row absent
};

/// Transport used by MigratingTable to reach the backend tables. The harness
/// implements it with event round-trips through the Tables machine.
class BackendClient {
 public:
  virtual ~BackendClient() = default;

  /// Executes `op` on `table`; `lin` (may be empty) runs atomically with the
  /// operation at the checker.
  ///
  /// Parameters are by value ON PURPOSE, and every call site uses the split
  /// pattern `auto t = client.Execute(...); co_await std::move(t);` — calls
  /// in a plain statement copy arguments into the coroutine frame correctly,
  /// while GCC 12 miscompiles non-trivial argument temporaries of calls made
  /// directly inside a co_await expression (see core/task.h).
  virtual systest::TaskOf<BackendResult> Execute(TableSel table, TableOp op,
                                                 LinFn lin) = 0;

  /// Stable identifier of this client, unique within the execution; used to
  /// namespace stream ids at the checker.
  [[nodiscard]] virtual std::uint64_t ClientKey() const = 0;
};

/// Outcome of a logical MigratingTable operation.
struct MtResult {
  chaintable::TableCode code = chaintable::TableCode::kInvalid;
  chaintable::Etag etag = chaintable::kInvalidEtag;   ///< writes
  std::optional<chaintable::TableRow> row;            ///< retrieve/stream
  std::vector<chaintable::TableRow> rows;             ///< atomic query

  [[nodiscard]] bool Ok() const noexcept {
    return code == chaintable::TableCode::kOk;
  }
};

class MigratingTable {
 public:
  MigratingTable(BackendClient& client, MTableBugs bugs)
      : client_(client), bugs_(bugs) {}

  MigratingTable(const MigratingTable&) = delete;
  MigratingTable& operator=(const MigratingTable&) = delete;

  /// Logical point write. `kind` one of kInsert/kReplace/kInsertOrReplace/
  /// kDelete. `cond_etag` is the caller's (virtual) etag for conditional
  /// kinds; `spec` is the service-side description forwarded to the checker.
  systest::TaskOf<MtResult> Write(chaintable::WriteKind kind,
                                  const chaintable::TableKey& key,
                                  const chaintable::Properties& props,
                                  chaintable::Etag cond_etag,
                                  const LogicalWriteSpec& spec);

  /// Logical point read.
  systest::TaskOf<MtResult> Retrieve(const chaintable::TableKey& key);

  /// Atomic filtered snapshot. filter.partition must be set.
  systest::TaskOf<MtResult> QueryAtomic(const chaintable::Filter& filter);

  /// Opens a streaming query (one open stream per MigratingTable at a time).
  /// filter.partition must be set.
  systest::TaskOf<std::uint64_t> StreamStart(const chaintable::Filter& filter);

  /// Next stream row; MtResult::row is empty at end-of-stream.
  systest::TaskOf<MtResult> StreamNext();

  /// Retries before an operation reports kInvalid (interference cap).
  static constexpr int kMaxAttempts = 25;

 private:
  systest::TaskOf<StateInfo> ReadState(const std::string& partition);

  systest::TaskOf<MtResult> WriteOld(chaintable::WriteKind kind,
                                     const chaintable::TableKey& key,
                                     const chaintable::Properties& props,
                                     chaintable::Etag cond_etag,
                                     const LogicalWriteSpec& spec,
                                     bool fenced, chaintable::Etag fence_etag);
  systest::TaskOf<MtResult> InsertNew(const chaintable::TableKey& key,
                                      const chaintable::Properties& props,
                                      const LogicalWriteSpec& spec);
  systest::TaskOf<MtResult> ReplaceNew(const chaintable::TableKey& key,
                                       const chaintable::Properties& props,
                                       chaintable::Etag cond_etag,
                                       const LogicalWriteSpec& spec);
  systest::TaskOf<MtResult> UpsertNew(const chaintable::TableKey& key,
                                      const chaintable::Properties& props,
                                      const LogicalWriteSpec& spec);
  systest::TaskOf<MtResult> DeleteNew(const chaintable::TableKey& key,
                                      chaintable::Etag cond_etag,
                                      const LogicalWriteSpec& spec,
                                      PartitionState state,
                                      const std::string& stale_partition);

  /// True iff the row (from whichever table) matches the caller's virtual
  /// etag: backend etag equality, or the recorded pre-migration etag.
  static bool MatchesVirtual(const chaintable::QueryRow& row,
                             chaintable::Etag stored);

  /// Linearizes the FAILURE of a conditional write: performs a merged read
  /// of `key` under the two-table interference guard, decides the failure
  /// code from the authoritative state (absent -> kNotFound; present with a
  /// virtual-etag mismatch -> kConditionNotMet; for inserts, present ->
  /// kAlreadyExists) and fires the checker linearization with that code.
  /// Returns kOk when the state no longer justifies a failure — the caller
  /// must retry the whole operation.
  systest::TaskOf<chaintable::TableCode> LinearizeFailure(
      const chaintable::TableKey& key, chaintable::Etag stored,
      const LogicalWriteSpec& spec, bool for_insert);

  BackendClient& client_;
  MTableBugs bugs_;

  // --- stream state (single open stream) ---
  struct StreamState {
    std::uint64_t id = 0;
    bool open = false;
    chaintable::Filter user_filter;
    std::optional<chaintable::TableKey> last_key;
    std::optional<chaintable::TableKey> new_cursor;  // bug: BackUpNewStream
    std::vector<chaintable::QueryRow> new_snapshot;  // bug: QueryStreamedLock
  };
  StreamState stream_;
  std::uint64_t next_stream_id_ = 1;

  /// Cached partition of the most recent operation — exists solely to host
  /// the DeletePrimaryKey bug (the buggy delete path reads it instead of the
  /// operation's own key).
  std::string last_partition_;
};

}  // namespace mtable
