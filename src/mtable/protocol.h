// SysTest — Live Table Migration case study (§4): protocol types and events.
//
// MigratingTable migrates a key-value data set from an "old" to a "new"
// backend table while applications keep reading and writing through MT
// instances. Our protocol (the paper's is Microsoft-internal; see DESIGN.md
// §3 for the substitution argument) migrates per partition through states
//
//   Unpopulated -> Populating -> [settling barrier] -> Populated
//     -> (copy rows old->new) -> (delete old rows) -> Switched
//
// with writes routed by the observed state (<= Populating: old table;
// >= Populated: new table, deletes leaving tombstones until Switched), reads
// merging new-over-old, and a final tombstone sweep. The settling barrier
// (the real system would wait out a configuration lease) guarantees that
// old-table writers never overlap new-table writers — which is exactly what
// the MigrateSkipPreferOld bug breaks.
//
// Differential checking (paper Fig. 12): all backend operations flow through
// the Tables machine, which owns the two backend tables AND the reference
// table (RT). Every backend request may carry a linearization function that
// the Tables machine runs atomically with the backend operation; it returns
// linearization actions (apply a logical write to the RT and compare result
// codes; compare a read/query answer against the RT; stream-window checks).
// This mirrors the paper's mechanism where "the rest of the system never
// observes the RT to be out of sync with the VT".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "chaintable/chain_table.h"
#include "core/event.h"
#include "core/strategy.h"

namespace mtable {

/// Which backend table an operation targets.
enum class TableSel : std::uint8_t { kOld, kNew };

/// Per-partition migration state, stored as a meta row in the new table.
enum class PartitionState : std::uint8_t {
  kUnpopulated = 0,  ///< migration has not touched this partition
  kPopulating = 1,   ///< migrator announced intent; settling barrier pending
  kPopulated = 2,    ///< writers must use the new table (tombstone regime)
  kSwitched = 3,     ///< old rows deleted; plain deletes allowed
};

std::string_view ToString(PartitionState state) noexcept;

// Reserved meta namespace in the new table.
inline const std::string kMetaPartition = "__meta";
/// Row key of the state row for partition `p` is kStateRowPrefix + p.
inline const std::string kStateRowPrefix = "state:";
/// Internal row properties.
inline const std::string kTombstoneProp = "__del";
inline const std::string kOrigEtagProp = "__orig";

[[nodiscard]] bool IsTombstone(const chaintable::Properties& props);
[[nodiscard]] chaintable::Properties StripMeta(const chaintable::Properties& props);
[[nodiscard]] chaintable::TableKey StateRowKey(const std::string& partition);

// ---------------------------------------------------------------------------
// Backend operations (data plane of the Tables machine).

struct TableOpWrite {
  chaintable::WriteOp op;
  /// Configuration fence (the model of the real system's config lease): when
  /// `fenced` is set, the write executes only if the fence row in the NEW
  /// table still has `fence_etag` (kInvalidEtag = "still absent"); otherwise
  /// the write fails with BackendResult::fence_failed and the writer must
  /// re-read the migration state and re-route. This is what makes the
  /// old-table write path atomic with respect to the migrator's state flip.
  bool fenced = false;
  chaintable::TableKey fence_key;
  chaintable::Etag fence_etag = chaintable::kInvalidEtag;
};
struct TableOpRetrieve {
  chaintable::TableKey key;
};
struct TableOpQueryAtomic {
  chaintable::Filter filter;
};
struct TableOpQueryAbove {
  chaintable::Filter filter;
  std::optional<chaintable::TableKey> after;
};
struct TableOpMutationCount {};

using TableOp = std::variant<TableOpWrite, TableOpRetrieve, TableOpQueryAtomic,
                             TableOpQueryAbove, TableOpMutationCount>;

std::string DescribeTableOp(const TableOp& op);

/// Result of a backend operation, as delivered back to the requester.
struct BackendResult {
  chaintable::OpResult op;                    // writes / retrieves
  std::vector<chaintable::QueryRow> rows;     // atomic queries
  std::optional<chaintable::QueryRow> above;  // QueryAbove
  std::uint64_t mutation_count = 0;           // selected table
  bool fence_failed = false;                  // fenced write rejected
  /// Mutation counters of BOTH tables, observed atomically with the
  /// operation (both tables live in the Tables machine; a real deployment
  /// would read two version etags in one batch). These power the
  /// interference guards of MigratingTable's merged reads.
  std::uint64_t mutation_count_old = 0;
  std::uint64_t mutation_count_new = 0;
};

// ---------------------------------------------------------------------------
// Linearization actions (checking plane).

/// Symbolic ETag for reference-table operations: the Tables machine resolves
/// slot references against its own per-service RT etag map, so conditional
/// operations compare like-for-like even though MT and RT etag values differ.
struct EtagRef {
  enum class Kind : std::uint8_t { kAny, kSlot } kind = Kind::kAny;
  int slot = 0;

  static EtagRef Any() { return {}; }
  static EtagRef Slot(int slot) { return {Kind::kSlot, slot}; }
};

/// The service-provided description of a logical write (what the application
/// asked for). MT protocol code decides *when* it linearizes and with what
/// result code; the what comes from the service, keeping the checker sound
/// even against a buggy MT.
struct LogicalWriteSpec {
  chaintable::WriteKind kind = chaintable::WriteKind::kInsert;
  chaintable::TableKey key;
  chaintable::Properties properties;  ///< user properties only
  EtagRef etag = EtagRef::Any();
  int out_slot = -1;  ///< RT etag slot updated on success (-1: none)
};

/// Apply the logical write to the RT and assert that the RT's result code
/// equals `expected` (the code the MT is about to return to the app).
struct LinWrite {
  LogicalWriteSpec spec;
  chaintable::TableCode expected = chaintable::TableCode::kOk;
};

/// Assert the RT's view of `key` equals `expected` (user properties; nullopt
/// means "absent").
struct LinReadCheck {
  chaintable::TableKey key;
  std::optional<chaintable::Properties> expected;
};

/// Assert the RT's filtered snapshot equals `expected` (keys + user
/// properties, ascending key order).
struct LinQueryCheck {
  chaintable::Filter filter;
  std::vector<chaintable::TableRow> expected;
};

/// Stream-window bookkeeping (see TablesMachine for the checking rules).
struct LinStreamStart {
  std::uint64_t stream = 0;
  chaintable::Filter filter;
};
struct LinStreamEmit {
  std::uint64_t stream = 0;
  chaintable::TableRow row;  ///< user properties
};
struct LinStreamEnd {
  std::uint64_t stream = 0;
};

using LinAction = std::variant<LinWrite, LinReadCheck, LinQueryCheck,
                               LinStreamStart, LinStreamEmit, LinStreamEnd>;

/// Runs atomically with the backend operation inside the Tables machine's
/// step; decides from the backend result which linearization actions fire.
using LinFn = std::function<std::vector<LinAction>(const BackendResult&)>;

// ---------------------------------------------------------------------------
// Harness events.

/// Service/migrator -> Tables machine: execute one backend operation.
struct BackendRequest final : systest::Event {
  BackendRequest(systest::MachineId reply_to, std::uint64_t request_id,
                 TableSel table, TableOp op, LinFn lin)
      : reply_to(reply_to),
        request_id(request_id),
        table(table),
        op(std::move(op)),
        lin(std::move(lin)) {}
  systest::MachineId reply_to;
  std::uint64_t request_id;
  TableSel table;
  TableOp op;
  LinFn lin;  ///< may be empty

  [[nodiscard]] std::string Name() const override {
    return std::string("BackendRequest[") +
           (table == TableSel::kOld ? "old:" : "new:") + DescribeTableOp(op) +
           "]";
  }
};

/// Tables machine -> requester: the operation's result.
struct BackendResponse final : systest::Event {
  BackendResponse(std::uint64_t request_id, BackendResult result)
      : request_id(request_id), result(std::move(result)) {}
  std::uint64_t request_id;
  BackendResult result;
};

/// Migrator -> service: settle. The service replies once its in-flight
/// logical operation (if any) has completed — the model of waiting out the
/// configuration lease.
struct SettleBarrier final : systest::Event {
  SettleBarrier(systest::MachineId migrator, std::uint64_t epoch)
      : migrator(migrator), epoch(epoch) {}
  systest::MachineId migrator;
  std::uint64_t epoch;
};

/// Service -> migrator: barrier acknowledged.
struct SettleAck final : systest::Event {
  explicit SettleAck(std::uint64_t epoch) : epoch(epoch) {}
  std::uint64_t epoch;
};

/// Service -> driver: all my operations are done.
struct ServiceDone final : systest::Event {
  explicit ServiceDone(int service_index) : service_index(service_index) {}
  int service_index;
};

/// Migrator -> driver: migration complete (all partitions switched, swept).
struct MigrationDone final : systest::Event {};

/// Crashed migrator -> driver (sent from Machine::OnCrash, i.e. by the fault
/// plane): the migrator job died mid-move. The driver launches a fresh job.
struct MigratorCrashed final : systest::Event {};

/// Driver -> Tables machine: run the final whole-table verification.
struct VerifyTables final : systest::Event {};

/// Notification for the liveness monitor: the end-to-end scenario finished.
struct NotifyVerified final : systest::Event {};

/// Service self-event driving its operation loop (one logical op per
/// handler invocation so barriers can be served between operations).
struct NextOp final : systest::Event {};

}  // namespace mtable
