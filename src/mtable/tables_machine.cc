#include "mtable/tables_machine.h"

#include <algorithm>
#include <set>

#include "mtable/migrating_table.h"  // StripMeta / IsTombstone
#include "mtable/monitors.h"

namespace mtable {

using chaintable::Etag;
using chaintable::Filter;
using chaintable::kAnyEtag;
using chaintable::OpResult;
using chaintable::Properties;
using chaintable::QueryRow;
using chaintable::TableCode;
using chaintable::TableKey;
using chaintable::TableRow;
using chaintable::WriteOp;

TablesMachine::TablesMachine(std::vector<chaintable::TableRow> initial_rows)
    : initial_rows_(std::move(initial_rows)) {
  SeedInitialRows();
  State("Serving")
      .On<BackendRequest>(&TablesMachine::OnRequest)
      .On<VerifyTables>(&TablesMachine::OnVerify);
  SetStart("Serving");
}

void TablesMachine::SeedInitialRows() {
  for (const TableRow& row : initial_rows_) {
    WriteOp op;
    op.kind = chaintable::WriteKind::kInsert;
    op.row = row;
    const OpResult old_result = old_.ExecuteWrite(op);
    const OpResult rt_result = rt_.ExecuteWrite(op);
    (void)old_result;
    (void)rt_result;
    history_[row.key].push_back(HistoryEntry{0, row.properties});
  }
}

void TablesMachine::OnReset() {
  old_.Reset(1, 3);
  new_.Reset(2, 3);
  rt_.Reset(3, 3);
  rt_slots_.clear();
  seq_ = 0;
  history_.clear();
  streams_.clear();
  verified_ = false;
  SeedInitialRows();
}

BackendResult TablesMachine::ExecuteOn(chaintable::IChainTable& table,
                                       const TableOp& op) {
  BackendResult result;
  if (const auto* write = std::get_if<TableOpWrite>(&op)) {
    if (write->fenced) {
      // Configuration fence: the write proceeds only if the fence row in the
      // NEW table is unchanged since the writer observed it (kInvalidEtag
      // means "was absent"). Checked atomically with the write — both tables
      // live inside this machine's step.
      const OpResult fence = new_.Retrieve(write->fence_key);
      const Etag current = fence.row.has_value() ? fence.row_etag
                                                 : chaintable::kInvalidEtag;
      if (current != write->fence_etag) {
        result.fence_failed = true;
        result.op.code = TableCode::kConditionNotMet;
        return result;
      }
    }
    result.op = table.ExecuteWrite(write->op);
  } else if (const auto* get = std::get_if<TableOpRetrieve>(&op)) {
    result.op = table.Retrieve(get->key);
  } else if (const auto* q = std::get_if<TableOpQueryAtomic>(&op)) {
    result.rows = table.ExecuteQueryAtomic(q->filter);
    result.op.code = TableCode::kOk;
  } else if (const auto* qa = std::get_if<TableOpQueryAbove>(&op)) {
    result.above = table.QueryAbove(qa->filter, qa->after);
    result.op.code = TableCode::kOk;
  } else {
    result.mutation_count = table.MutationCount();
    result.op.code = TableCode::kOk;
  }
  return result;
}

void TablesMachine::OnRequest(const BackendRequest& request) {
  chaintable::IChainTable& table =
      request.table == TableSel::kOld
          ? static_cast<chaintable::IChainTable&>(old_)
          : static_cast<chaintable::IChainTable&>(new_);
  BackendResult result = ExecuteOn(table, request.op);
  result.mutation_count_old = old_.MutationCount();
  result.mutation_count_new = new_.MutationCount();
  if (request.lin) {
    // The linearization function runs atomically with the backend operation:
    // nothing else can touch the tables or the RT until this step finishes.
    RunLinActions(request.lin(result), request.reply_to);
  }
  Send<BackendResponse>(request.reply_to, request.request_id,
                        std::move(result));
}

void TablesMachine::RunLinActions(const std::vector<LinAction>& actions,
                                  systest::MachineId service) {
  for (const LinAction& action : actions) {
    if (const auto* write = std::get_if<LinWrite>(&action)) {
      ApplyLinWrite(*write, service);
    } else if (const auto* read = std::get_if<LinReadCheck>(&action)) {
      CheckRead(*read);
    } else if (const auto* query = std::get_if<LinQueryCheck>(&action)) {
      CheckQuery(*query);
    } else if (const auto* start = std::get_if<LinStreamStart>(&action)) {
      StreamStarted(*start);
    } else if (const auto* emit = std::get_if<LinStreamEmit>(&action)) {
      StreamEmitted(*emit);
    } else if (const auto* end = std::get_if<LinStreamEnd>(&action)) {
      StreamEnded(*end);
    }
  }
}

void TablesMachine::ApplyLinWrite(const LinWrite& action,
                                  systest::MachineId service) {
  const LogicalWriteSpec& spec = action.spec;
  WriteOp op;
  op.kind = spec.kind;
  op.row.key = spec.key;
  op.row.properties = spec.properties;
  op.etag = kAnyEtag;
  if (spec.etag.kind == EtagRef::Kind::kSlot) {
    const auto it = rt_slots_.find({service.value, spec.etag.slot});
    // A slot that was never filled corresponds to an etag the service never
    // obtained; the harness substitutes kAny on both sides in that case, so
    // finding the slot missing here indicates a harness inconsistency.
    Assert(it != rt_slots_.end(), "RT etag slot never filled");
    op.etag = it->second;
  }
  const OpResult rt_result = rt_.ExecuteWrite(op);
  Assert(rt_result.code == action.expected, [&] {
    return "MT/RT divergence on " + std::string(ToString(spec.kind)) + " " +
           spec.key.ToString() + ": MT returned " +
           std::string(ToString(action.expected)) + " but RT returned " +
           std::string(ToString(rt_result.code));
  });
  if (rt_result.Ok()) {
    if (spec.out_slot >= 0) {
      rt_slots_[{service.value, spec.out_slot}] = rt_result.etag;
    }
    RecordHistory(spec.key);
  }
}

void TablesMachine::RecordHistory(const TableKey& key) {
  ++seq_;
  const OpResult current = rt_.Retrieve(key);
  history_[key].push_back(HistoryEntry{
      seq_, current.row.has_value()
                ? std::optional<Properties>(current.row->properties)
                : std::nullopt});
}

void TablesMachine::CheckRead(const LinReadCheck& action) {
  const OpResult rt_result = rt_.Retrieve(action.key);
  const std::optional<Properties> rt_value =
      rt_result.row.has_value()
          ? std::optional<Properties>(rt_result.row->properties)
          : std::nullopt;
  Assert(rt_value == action.expected, [&] {
    return "MT/RT divergence on Retrieve " + action.key.ToString() +
           ": MT saw " + (action.expected ? "a row" : "no row") +
           " but RT has " + (rt_value ? "a row" : "no row") +
           " (or the contents differ)";
  });
}

void TablesMachine::CheckQuery(const LinQueryCheck& action) {
  const std::vector<QueryRow> rt_rows =
      rt_.ExecuteQueryAtomic(action.filter);
  bool equal = rt_rows.size() == action.expected.size();
  if (equal) {
    for (std::size_t i = 0; i < rt_rows.size(); ++i) {
      if (rt_rows[i].row.key != action.expected[i].key ||
          rt_rows[i].row.properties != action.expected[i].properties) {
        equal = false;
        break;
      }
    }
  }
  Assert(equal, [&] {
    return "MT/RT divergence on atomic query " + action.filter.ToString() +
           ": MT returned " + std::to_string(action.expected.size()) +
           " rows, RT holds " + std::to_string(rt_rows.size()) +
           " (or contents differ)";
  });
}

void TablesMachine::StreamStarted(const LinStreamStart& action) {
  StreamInfo info;
  info.filter = action.filter;
  info.start_seq = seq_;
  info.open = true;
  streams_[action.stream] = info;
}

std::vector<std::optional<Properties>> TablesMachine::HistoryWindow(
    const TableKey& key, std::uint64_t from_seq) const {
  std::vector<std::optional<Properties>> window;
  const auto it = history_.find(key);
  if (it == history_.end()) {
    window.push_back(std::nullopt);  // never existed: absent throughout
    return window;
  }
  // Value at window start = last entry with seq <= from_seq (absent if the
  // key's first entry is later than the window start).
  std::optional<Properties> at_start;
  bool have_start = false;
  for (const HistoryEntry& entry : it->second) {
    if (entry.seq <= from_seq) {
      at_start = entry.value;
      have_start = true;
    } else {
      if (!have_start) {
        window.push_back(std::nullopt);
        have_start = true;
      } else if (window.empty()) {
        window.push_back(at_start);
      }
      window.push_back(entry.value);
    }
  }
  if (window.empty()) {
    window.push_back(have_start ? at_start : std::nullopt);
  }
  return window;
}

void TablesMachine::CheckSkippedKeys(std::uint64_t stream_id,
                                     const std::optional<TableKey>& from,
                                     const std::optional<TableKey>& to) {
  const StreamInfo& info = streams_.at(stream_id);
  // Candidate keys: everything the history has ever seen in the range.
  for (const auto& [key, entries] : history_) {
    if (from && !(key > *from)) continue;
    if (to && !(key < *to)) continue;
    const auto window = HistoryWindow(key, info.start_seq);
    const bool excusable = std::any_of(
        window.begin(), window.end(),
        [&](const std::optional<Properties>& value) {
          if (!value.has_value()) return true;  // absent at some point
          return !info.filter.Matches(TableRow{key, *value});
        });
    Assert(excusable, [&] {
      return "stream " + std::to_string(stream_id) + " skipped key " +
             key.ToString() +
             " which matched the filter for the entire stream window";
    });
  }
}

void TablesMachine::StreamEmitted(const LinStreamEmit& action) {
  auto it = streams_.find(action.stream);
  Assert(it != streams_.end() && it->second.open,
         "stream emit on unknown or closed stream");
  StreamInfo& info = it->second;
  // (a) ascending keys, no duplicates.
  Assert(!info.last_emitted || action.row.key > *info.last_emitted, [&] {
    return "stream " + std::to_string(action.stream) +
           " emitted keys out of order: " + action.row.key.ToString();
  });
  // (b) the emitted value matches the filter and some historical RT value
  // within the window.
  Assert(info.filter.Matches(action.row), [&] {
    return "stream emitted a row that does not match its filter: " +
           action.row.key.ToString();
  });
  const auto window = HistoryWindow(action.row.key, info.start_seq);
  const bool justified = std::any_of(
      window.begin(), window.end(),
      [&](const std::optional<Properties>& value) {
        return value.has_value() && *value == action.row.properties;
      });
  Assert(justified, [&] {
    return "stream " + std::to_string(action.stream) + " emitted row " +
           action.row.key.ToString() +
           " with contents the virtual table never held during the "
           "stream window";
  });
  // (c) keys between the previous emission and this one must have been
  // absent (or non-matching) at some point in the window.
  CheckSkippedKeys(action.stream, info.last_emitted,
                   std::optional<TableKey>(action.row.key));
  info.last_emitted = action.row.key;
}

void TablesMachine::StreamEnded(const LinStreamEnd& action) {
  auto it = streams_.find(action.stream);
  Assert(it != streams_.end() && it->second.open,
         "stream end on unknown or closed stream");
  CheckSkippedKeys(action.stream, it->second.last_emitted, std::nullopt);
  it->second.open = false;
}

void TablesMachine::OnVerify(const VerifyTables&) {
  // End-to-end postconditions after both the workload and the migration have
  // completed: the merged backend view must equal the RT, the old table must
  // be empty, and no tombstones may remain.
  Assert(old_.Empty(), [&] {
    return "old table not empty after migration completed: " +
           std::to_string(old_.RowCount()) + " rows left";
  });
  const std::vector<QueryRow> new_rows = new_.ExecuteQueryAtomic(Filter{});
  std::vector<TableRow> merged;
  for (const QueryRow& row : new_rows) {
    if (row.row.key.partition == kMetaPartition) continue;
    Assert(!IsTombstone(row.row.properties), [&] {
      return "tombstone row survived the sweep: " + row.row.key.ToString();
    });
    merged.push_back(TableRow{row.row.key, StripMeta(row.row.properties)});
  }
  const std::vector<QueryRow> rt_rows = rt_.ExecuteQueryAtomic(Filter{});
  bool equal = merged.size() == rt_rows.size();
  if (equal) {
    for (std::size_t i = 0; i < merged.size(); ++i) {
      if (merged[i].key != rt_rows[i].row.key ||
          merged[i].properties != rt_rows[i].row.properties) {
        equal = false;
        break;
      }
    }
  }
  if (!equal) {
    auto dump = [](const auto& rows) {
      std::string out;
      for (const auto& row : rows) {
        const TableRow* tr;
        if constexpr (std::is_same_v<std::decay_t<decltype(rows[0])>,
                                     QueryRow>) {
          tr = &row.row;
        } else {
          tr = &row;
        }
        out += " " + tr->key.ToString() + "{";
        for (const auto& [k, v] : tr->properties) out += k + "=" + v + ",";
        out += "}";
      }
      return out;
    };
    Assert(false, "final verification failed: migrated =" + dump(merged) +
                      " | reference =" + dump(rt_rows));
  }
  verified_ = true;
  Notify<MigrationLivenessMonitor, NotifyVerified>();
}

}  // namespace mtable
