#include "mtable/migrator.h"

namespace mtable {

using chaintable::Filter;
using chaintable::kAnyEtag;
using chaintable::Properties;
using chaintable::QueryRow;
using chaintable::TableCode;
using chaintable::WriteKind;
using chaintable::WriteOp;
using systest::Task;
using systest::TaskOf;

MigratorMachine::MigratorMachine(systest::MachineId tables,
                                 systest::MachineId driver,
                                 std::vector<systest::MachineId> services,
                                 std::vector<std::string> partitions,
                                 MTableBugs bugs)
    : BackendClientMachine(tables),
      driver_(driver),
      services_(std::move(services)),
      partitions_(std::move(partitions)),
      bugs_(bugs) {
  State("Migrating").OnEntry(&MigratorMachine::Migrate);
  SetStart("Migrating");
}

TaskOf<PartitionState> MigratorMachine::ReadState(
    const std::string& partition) {
  auto call1_ = Execute(
      TableSel::kNew, TableOpRetrieve{StateRowKey(partition)}, nullptr);
  BackendResult r = co_await std::move(call1_);
  if (!r.op.row.has_value()) {
    co_return PartitionState::kUnpopulated;
  }
  const auto it = r.op.row->properties.find("s");
  co_return it == r.op.row->properties.end()
      ? PartitionState::kUnpopulated
      : static_cast<PartitionState>(std::stoi(it->second));
}

Task MigratorMachine::SetState(const std::string& partition,
                               PartitionState state) {
  WriteOp op;
  op.kind = WriteKind::kInsertOrReplace;
  op.row.key = StateRowKey(partition);
  op.row.properties = Properties{
      {"s", std::to_string(static_cast<int>(state))}};
  auto call2_ = Execute(TableSel::kNew, TableOpWrite{op}, nullptr);
  BackendResult r =
      co_await std::move(call2_);
  Assert(r.op.Ok(), "migrator failed to update partition state");
}

Task MigratorMachine::SettleAll() {
  // Settling barrier: every service acknowledges once its in-flight logical
  // operation (if any) has finished. Models waiting out the config lease.
  const std::uint64_t epoch = ++barrier_epoch_;
  for (const systest::MachineId service : services_) {
    Send<SettleBarrier>(service, Id(), epoch);
  }
  for (std::size_t i = 0; i < services_.size(); ++i) {
    auto ack = co_await Receive<SettleAck>();
    Assert(ack->epoch == epoch, "settle ack from a stale epoch");
  }
}

Task MigratorMachine::EnsurePartitionSwitched(const std::string& partition) {
  PartitionState state = co_await ReadState(partition);
  if (state == PartitionState::kSwitched) {
    co_return;
  }

  if (!bugs_.ensure_partition_switched_from_populated) {
    // Correct path: a partition may only be switched from Populated; drive
    // it through the earlier states first. Each state flip rewrites the
    // state row and therefore invalidates the configuration fence of every
    // in-flight old-table write: once the Populated flip below has executed,
    // no old-table write can commit, so the populate snapshot is complete.
    // (BUG MigrateSkipPreferOld lives on the writer side: it skips the
    // fence, letting an old write land after this snapshot.)
    if (state == PartitionState::kUnpopulated) {
      co_await SetState(partition, PartitionState::kPopulating);
      state = PartitionState::kPopulating;
    }
    if (state == PartitionState::kPopulating) {
      co_await SetState(partition, PartitionState::kPopulated);
    }
    // Populate: copy every old row into the new table. Insert-if-absent
    // loses to application writes (which are newer); the __orig property
    // preserves the old backend etag so conditional operations keep working
    // across the move.
    auto call3_ = Execute(
        TableSel::kOld, TableOpQueryAtomic{Filter{.partition = partition}},
        nullptr);
    BackendResult snapshot = co_await std::move(call3_);
    for (const QueryRow& row : snapshot.rows) {
      WriteOp op;
      op.kind = WriteKind::kInsert;
      op.row.key = row.row.key;
      op.row.properties = row.row.properties;
      op.row.properties[kOrigEtagProp] = std::to_string(row.etag);
      auto call4_ = Execute(TableSel::kNew, TableOpWrite{op}, nullptr);
      BackendResult r =
          co_await std::move(call4_);
      Assert(r.op.code == TableCode::kOk ||
                 r.op.code == TableCode::kAlreadyExists,
             "migrator copy failed unexpectedly");
    }
  }
  // else: BUG EnsurePartitionSwitchedFromPopulated — the state check above
  // is skipped entirely and we fall straight through to the switch, deleting
  // old rows that were never copied.

  if (bugs_.migrate_skip_use_new_with_tombstones) {
    // BUG MigrateSkipUseNewWithTombstones: mark the partition Switched
    // before the old rows are gone. Services then issue plain (tombstone-
    // less) deletes while old rows can still resurface through merged reads.
    co_await SetState(partition, PartitionState::kSwitched);
  }

  // Delete all old rows of the partition (re-query until empty so that rows
  // a buggy writer slipped in behind the copy are removed too — which is how
  // InsertBehindMigrator loses data).
  for (;;) {
    auto call5_ = Execute(
        TableSel::kOld, TableOpQueryAtomic{Filter{.partition = partition}},
        nullptr);
    BackendResult left = co_await std::move(call5_);
    if (left.rows.empty()) {
      break;
    }
    for (const QueryRow& row : left.rows) {
      WriteOp op;
      op.kind = WriteKind::kDelete;
      op.row.key = row.row.key;
      op.etag = kAnyEtag;
      auto call6_ = Execute(TableSel::kOld, TableOpWrite{op}, nullptr);
      (void)co_await std::move(call6_);
    }
  }

  if (!bugs_.migrate_skip_use_new_with_tombstones) {
    co_await SetState(partition, PartitionState::kSwitched);
  }
}

Task MigratorMachine::SweepTombstones() {
  auto call7_ = Execute(
      TableSel::kNew, TableOpQueryAtomic{Filter{}}, nullptr);
  BackendResult all = co_await std::move(call7_);
  for (const QueryRow& row : all.rows) {
    if (!IsTombstone(row.row.properties)) {
      continue;
    }
    WriteOp op;
    op.kind = WriteKind::kDelete;
    op.row.key = row.row.key;
    op.etag = row.etag;
    // A concurrent insert-over-tombstone may beat us; that is fine — the
    // conditional delete then fails and the row (now live) stays.
    auto call8_ = Execute(TableSel::kNew, TableOpWrite{op}, nullptr);
    (void)co_await std::move(call8_);
  }
}

void MigratorMachine::OnCrash() { Send<MigratorCrashed>(driver_); }

Task MigratorMachine::Migrate() {
  for (const std::string& partition : partitions_) {
    co_await EnsurePartitionSwitched(partition);
  }
  // Settle so every in-flight operation that could still create a tombstone
  // (observed state <= Populated) finishes before the sweep.
  co_await SettleAll();
  co_await SweepTombstones();
  // Close the crash window in the same atomic segment that announces
  // completion (a no-op when this job was never crashable): the fault plane
  // can no longer kill a job whose MigrationDone is already on the wire, so
  // the driver never launches a redundant replacement.
  Rt().SetCrashable(Id(), false);
  Send<MigrationDone>(driver_);
}

}  // namespace mtable
