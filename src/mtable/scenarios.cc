// Scenario registrations for the Live Table Migration case study (§4): the
// marquee QueryStreamedBackUpNewStream bug, the fixed control, and a generic
// parameterized scenario that re-introduces any Table 2 bug by name.
#include "api/scenario_registry.h"
#include "mtable/harness.h"

namespace mtable {
namespace {

using systest::api::ParamMap;
using systest::api::ParamSpec;
using systest::api::Scenario;

MigrationHarnessOptions OptionsFrom(const ParamMap& params) {
  MigrationHarnessOptions options;
  options.num_services =
      static_cast<int>(params.GetUint("services", options.num_services));
  options.ops_per_service = static_cast<int>(
      params.GetUint("ops-per-service", options.ops_per_service));
  options.value_space = params.GetUint("value-space", options.value_space);
  return options;
}

std::vector<ParamSpec> Params() {
  return {
      {"services", "concurrent service machines (default 2)"},
      {"ops-per-service", "nondeterministic operations each (default 4)"},
      {"value-space", "distinct property values (default 3)"},
  };
}

SYSTEST_REGISTER_SCENARIO(mtable_backupnewstream) {
  Scenario s;
  s.name = "mtable-backupnewstream";
  s.description =
      "sec. 4 MigratingTable, QueryStreamedBackUpNewStream (marquee sec. 6.2 bug)";
  s.tags = {"mtable", "safety", "buggy"};
  s.params = Params();
  s.make = [](const ParamMap& params) {
    MigrationHarnessOptions options = OptionsFrom(params);
    options.bugs.query_streamed_backup_new_stream = true;
    return MakeMigrationHarness(options);
  };
  s.default_config = [] { return DefaultConfig(); };
  return s;
}

SYSTEST_REGISTER_SCENARIO(mtable_migration) {
  Scenario s;
  s.name = "mtable-migration";
  s.description =
      "sec. 4 MigratingTable differential harness; re-introduce any Table 2 "
      "bug via bug=<Name> (default: fixed protocol)";
  s.tags = {"mtable", "safety", "fixed"};
  std::vector<ParamSpec> params = Params();
  params.push_back(
      {"bug", "Table 2 bug name to re-introduce (default none; see "
              "`live_migration list`)"});
  s.params = std::move(params);
  s.make = [](const ParamMap& params) {
    MigrationHarnessOptions options = OptionsFrom(params);
    const std::string bug = params.GetString("bug");
    if (!bug.empty()) {
      bool found = false;
      for (const MTableBugId id : kAllMTableBugs) {
        if (bug == ToString(id)) {
          options.bugs = EnableBug(id);
          found = true;
          break;
        }
      }
      if (!found) {
        std::string known;
        for (const MTableBugId id : kAllMTableBugs) {
          if (!known.empty()) known += ", ";
          known += std::string(ToString(id));
        }
        throw std::invalid_argument("unknown mtable bug '" + bug +
                                    "'; Table 2 bugs: " + known);
      }
    }
    return MakeMigrationHarness(options);
  };
  s.default_config = [] { return DefaultConfig(); };
  return s;
}

}  // namespace
}  // namespace mtable
