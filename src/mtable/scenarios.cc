// Scenario registrations for the Live Table Migration case study (§4): the
// marquee QueryStreamedBackUpNewStream bug, the fixed control, and a generic
// parameterized scenario that re-introduces any Table 2 bug by name.
#include "api/scenario_registry.h"
#include "mtable/harness.h"

namespace mtable {
namespace {

using systest::api::ParamMap;
using systest::api::ParamSpec;
using systest::api::Scenario;

MigrationHarnessOptions OptionsFrom(const ParamMap& params) {
  MigrationHarnessOptions options;
  options.num_services =
      static_cast<int>(params.GetUint("services", options.num_services));
  options.ops_per_service = static_cast<int>(
      params.GetUint("ops-per-service", options.ops_per_service));
  options.value_space = params.GetUint("value-space", options.value_space);
  return options;
}

std::vector<ParamSpec> Params() {
  return {
      {"services", "concurrent service machines (default 2)"},
      {"ops-per-service", "nondeterministic operations each (default 4)"},
      {"value-space", "distinct property values (default 3)"},
  };
}

SYSTEST_REGISTER_SCENARIO(mtable_backupnewstream) {
  Scenario s;
  s.name = "mtable-backupnewstream";
  s.description =
      "sec. 4 MigratingTable, QueryStreamedBackUpNewStream (marquee sec. 6.2 bug)";
  s.tags = {"mtable", "safety", "buggy"};
  s.params = Params();
  s.make = [](const ParamMap& params) {
    MigrationHarnessOptions options = OptionsFrom(params);
    options.bugs.query_streamed_backup_new_stream = true;
    return MakeMigrationHarness(options);
  };
  s.default_config = [] { return DefaultConfig(); };
  return s;
}

// Crash-recovery scenario (fault plane): the FIXED migration protocol with
// the migrator job itself handed to the fault plane — the scheduler decides
// whether and where the job dies (SetCrashable + TestConfig::max_crashes),
// including mid-copy and mid-delete; the driver launches a fresh job that
// must converge from the persisted partition state while services keep
// operating. The differential checker and the completion liveness monitor
// judge every crash placement.
SYSTEST_REGISTER_SCENARIO(mtable_migrator_crash_mid_move) {
  Scenario s;
  s.name = "mtable-migrator-crash-mid-move";
  s.description =
      "sec. 4 fixed MigratingTable protocol under scheduler-controlled "
      "migrator-job crashes (driver relaunches the job mid-move)";
  s.tags = {"mtable", "safety", "crash-recovery", "fixed"};
  s.params = Params();
  s.make = [](const ParamMap& params) {
    MigrationHarnessOptions options = OptionsFrom(params);
    options.crashable_migrator = true;
    return MakeMigrationHarness(options);
  };
  s.default_config = [] {
    systest::TestConfig config = DefaultConfig();
    // One job crash per execution; the job never restarts in place — the
    // driver's relaunch is the recovery path.
    config.max_crashes = 1;
    config.max_restarts = 0;
    return config;
  };
  return s;
}

SYSTEST_REGISTER_SCENARIO(mtable_migration) {
  Scenario s;
  s.name = "mtable-migration";
  s.description =
      "sec. 4 MigratingTable differential harness; re-introduce any Table 2 "
      "bug via bug=<Name> (default: fixed protocol)";
  s.tags = {"mtable", "safety", "fixed"};
  std::vector<ParamSpec> params = Params();
  params.push_back(
      {"bug", "Table 2 bug name to re-introduce (default none; see "
              "`live_migration list`)"});
  s.params = std::move(params);
  s.make = [](const ParamMap& params) {
    MigrationHarnessOptions options = OptionsFrom(params);
    const std::string bug = params.GetString("bug");
    if (!bug.empty()) {
      bool found = false;
      for (const MTableBugId id : kAllMTableBugs) {
        if (bug == ToString(id)) {
          options.bugs = EnableBug(id);
          found = true;
          break;
        }
      }
      if (!found) {
        std::string known;
        for (const MTableBugId id : kAllMTableBugs) {
          if (!known.empty()) known += ", ";
          known += std::string(ToString(id));
        }
        throw std::invalid_argument("unknown mtable bug '" + bug +
                                    "'; Table 2 bugs: " + known);
      }
    }
    return MakeMigrationHarness(options);
  };
  s.default_config = [] { return DefaultConfig(); };
  return s;
}

}  // namespace
}  // namespace mtable
