#include "mtable/migrating_table.h"

#include <algorithm>
#include <map>

namespace mtable {

using chaintable::Etag;
using chaintable::Filter;
using chaintable::kAnyEtag;
using chaintable::Properties;
using chaintable::QueryRow;
using chaintable::TableCode;
using chaintable::TableKey;
using chaintable::TableRow;
using chaintable::WriteKind;
using chaintable::WriteOp;
using systest::TaskOf;

std::string_view ToString(PartitionState state) noexcept {
  switch (state) {
    case PartitionState::kUnpopulated:
      return "Unpopulated";
    case PartitionState::kPopulating:
      return "Populating";
    case PartitionState::kPopulated:
      return "Populated";
    case PartitionState::kSwitched:
      return "Switched";
  }
  return "?";
}

bool IsTombstone(const Properties& props) {
  return props.contains(kTombstoneProp);
}

Properties StripMeta(const Properties& props) {
  Properties out;
  for (const auto& [name, value] : props) {
    if (name.rfind("__", 0) != 0) {
      out.emplace(name, value);
    }
  }
  return out;
}

TableKey StateRowKey(const std::string& partition) {
  return TableKey{kMetaPartition, kStateRowPrefix + partition};
}

std::string DescribeTableOp(const TableOp& op) {
  if (const auto* write = std::get_if<TableOpWrite>(&op)) {
    return std::string(ToString(write->op.kind)) + " " +
           write->op.row.key.ToString();
  }
  if (const auto* get = std::get_if<TableOpRetrieve>(&op)) {
    return "Retrieve " + get->key.ToString();
  }
  if (const auto* q = std::get_if<TableOpQueryAtomic>(&op)) {
    return "QueryAtomic " + q->filter.ToString();
  }
  if (const auto* qa = std::get_if<TableOpQueryAbove>(&op)) {
    return "QueryAbove " + (qa->after ? qa->after->ToString() : "<begin>");
  }
  return "MutationCount";
}

bool MigratingTable::MatchesVirtual(const QueryRow& row, Etag stored) {
  if (stored == kAnyEtag || row.etag == stored) {
    return true;
  }
  auto it = row.row.properties.find(kOrigEtagProp);
  return it != row.row.properties.end() &&
         it->second == std::to_string(stored);
}

TaskOf<StateInfo> MigratingTable::ReadState(const std::string& partition) {
  auto call1_ = client_.Execute(
      TableSel::kNew, TableOpRetrieve{StateRowKey(partition)}, nullptr);
  BackendResult r = co_await std::move(call1_);
  StateInfo info;
  if (!r.op.row.has_value()) {
    co_return info;  // kUnpopulated, etag kInvalidEtag ("row absent")
  }
  info.etag = r.op.row_etag;
  const auto it = r.op.row->properties.find("s");
  if (it != r.op.row->properties.end()) {
    info.state = static_cast<PartitionState>(std::stoi(it->second));
  }
  co_return info;
}

// ---------------------------------------------------------------------------
// Point writes.

TaskOf<MtResult> MigratingTable::Write(WriteKind kind, const TableKey& key,
                                       const Properties& props, Etag cond_etag,
                                       const LogicalWriteSpec& spec) {
  // The DeletePrimaryKey bug consumes the partition cached by the PREVIOUS
  // operation, before this operation refreshes it.
  const std::string stale_partition =
      last_partition_.empty() ? key.partition : last_partition_;
  last_partition_ = key.partition;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const StateInfo state = co_await ReadState(key.partition);

    if (kind == WriteKind::kInsert && bugs_.insert_behind_migrator &&
        state.state != PartitionState::kSwitched) {
      // BUG InsertBehindMigrator: "fast path" — insert directly into the old
      // table whenever the partition has not switched yet. If the migrator
      // has already snapshotted the partition, this row is never copied, and
      // the switch step deletes it: a silently lost insert. (The fast path
      // also skips the configuration fence, like the pre-migration code it
      // was copied from.)
      co_return co_await WriteOld(kind, key, props, cond_etag, spec,
                                  /*fenced=*/false, state.etag);
    }

    if (state.state <= PartitionState::kPopulating) {
      // Old-route, under the configuration fence: the write commits only if
      // the partition state row is unchanged, which guarantees every
      // old-table write precedes the migrator's Populated flip — and hence
      // the populate snapshot. On fence failure, re-read and re-route.
      //
      // BUG MigrateSkipPreferOld drops the fence: a write that observed the
      // pre-migration state can then land after the populate snapshot and be
      // deleted, uncopied, by the switch.
      const bool fenced = !bugs_.migrate_skip_prefer_old;
      MtResult result = co_await WriteOld(kind, key, props, cond_etag, spec,
                                          fenced, state.etag);
      if (result.code == TableCode::kInvalid) {
        continue;  // fence failed: the migrator moved; re-read the state
      }
      co_return result;
    }
    switch (kind) {
      case WriteKind::kInsert:
        co_return co_await InsertNew(key, props, spec);
      case WriteKind::kReplace:
        co_return co_await ReplaceNew(key, props, cond_etag, spec);
      case WriteKind::kInsertOrReplace:
        co_return co_await UpsertNew(key, props, spec);
      case WriteKind::kDelete:
        co_return co_await DeleteNew(key, cond_etag, spec, state.state,
                                     stale_partition);
      case WriteKind::kMerge:
        co_return MtResult{};  // not part of the MigratingTable surface
    }
  }
  co_return MtResult{TableCode::kInvalid};
}

TaskOf<MtResult> MigratingTable::WriteOld(WriteKind kind, const TableKey& key,
                                          const Properties& props,
                                          Etag cond_etag,
                                          const LogicalWriteSpec& spec,
                                          bool fenced, Etag fence_etag) {
  // Old-route: the backend operation is the linearization point, and virtual
  // etags coincide with old-table backend etags. The configuration fence
  // (checked atomically by the Tables machine) ensures the migration state
  // did not move under us; the linearization fires only if the write
  // committed.
  TableOpWrite write;
  write.op.kind = kind;
  write.op.row.key = key;
  write.op.row.properties = props;
  write.op.etag = cond_etag;
  write.fenced = fenced;
  write.fence_key = StateRowKey(key.partition);
  write.fence_etag = fence_etag;
  LinFn lin = [spec](const BackendResult& r) {
    std::vector<LinAction> actions;
    if (!r.fence_failed) {
      actions.push_back(LinWrite{spec, r.op.code});
    }
    return actions;
  };
  auto call2_ = client_.Execute(TableSel::kOld, write, std::move(lin));
  BackendResult r = co_await std::move(call2_);
  if (r.fence_failed) {
    co_return MtResult{TableCode::kInvalid};  // caller re-reads and re-routes
  }
  MtResult out;
  out.code = r.op.code;
  out.etag = r.op.etag;
  co_return out;
}

TaskOf<chaintable::TableCode> MigratingTable::LinearizeFailure(
    const TableKey& key, Etag stored, const LogicalWriteSpec& spec,
    bool for_insert) {
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    auto guard0_call = client_.Execute(TableSel::kOld, TableOpMutationCount{},
                                       nullptr);
    BackendResult guard0 = co_await std::move(guard0_call);
    auto new_call =
        client_.Execute(TableSel::kNew, TableOpRetrieve{key}, nullptr);
    BackendResult rn = co_await std::move(new_call);
    auto old_call =
        client_.Execute(TableSel::kOld, TableOpRetrieve{key}, nullptr);
    BackendResult ro = co_await std::move(old_call);

    // Authoritative (merged) state of the key, raw properties retained for
    // the tombstone and __orig checks.
    std::optional<QueryRow> merged;
    if (rn.op.row.has_value()) {
      if (!IsTombstone(rn.op.row->properties)) {
        merged = QueryRow{*rn.op.row, rn.op.row_etag};
      }
    } else if (ro.op.row.has_value()) {
      merged = QueryRow{*ro.op.row, ro.op.row_etag};
    }

    TableCode code = TableCode::kOk;  // kOk = "no failure anymore: retry op"
    if (for_insert) {
      if (merged.has_value()) {
        code = TableCode::kAlreadyExists;
      }
    } else {
      if (!merged.has_value()) {
        code = TableCode::kNotFound;
      } else if (!MatchesVirtual(*merged, stored)) {
        code = TableCode::kConditionNotMet;
      }
    }

    const std::uint64_t old0 = guard0.mutation_count_old;
    const std::uint64_t new0 = guard0.mutation_count_new;
    LinFn lin = [spec, code, old0, new0](const BackendResult& r) {
      std::vector<LinAction> actions;
      if (r.mutation_count_old == old0 && r.mutation_count_new == new0 &&
          code != TableCode::kOk) {
        actions.push_back(LinWrite{spec, code});
      }
      return actions;
    };
    auto guard1_call = client_.Execute(TableSel::kNew, TableOpMutationCount{},
                                       std::move(lin));
    BackendResult guard1 = co_await std::move(guard1_call);
    if (guard1.mutation_count_old != old0 ||
        guard1.mutation_count_new != new0) {
      continue;  // interference: re-evaluate
    }
    co_return code;
  }
  co_return TableCode::kInvalid;
}

TaskOf<MtResult> MigratingTable::InsertNew(const TableKey& key,
                                           const Properties& props,
                                           const LogicalWriteSpec& spec) {
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    auto probe_call =
        client_.Execute(TableSel::kNew, TableOpRetrieve{key}, nullptr);
    BackendResult rn = co_await std::move(probe_call);
    if (rn.op.row.has_value() && IsTombstone(rn.op.row->properties)) {
      // Tombstone: resurrect by replacing it, conditioned on its backend
      // etag so a racing writer forces a retry.
      TableOpWrite write;
      write.op.kind = WriteKind::kReplace;
      write.op.row.key = key;
      write.op.row.properties = props;
      write.op.etag = rn.op.row_etag;
      LinFn lin = [spec](const BackendResult& r) {
        std::vector<LinAction> actions;
        if (r.op.Ok()) {
          actions.push_back(LinWrite{spec, TableCode::kOk});
        }
        return actions;
      };
      auto write_call =
          client_.Execute(TableSel::kNew, write, std::move(lin));
      BackendResult w = co_await std::move(write_call);
      if (w.op.Ok()) {
        MtResult out;
        out.code = TableCode::kOk;
        // BUG TombstoneOutputETag: return the tombstone's etag instead of
        // the new row's — later conditional operations using the stored
        // etag will spuriously fail.
        out.etag = bugs_.tombstone_output_etag ? rn.op.row_etag : w.op.etag;
        co_return out;
      }
      continue;  // tombstone changed under us
    }
    if (!rn.op.row.has_value()) {
      auto old_probe =
          client_.Execute(TableSel::kOld, TableOpRetrieve{key}, nullptr);
      BackendResult ro = co_await std::move(old_probe);
      if (!ro.op.row.has_value()) {
        // Absent everywhere: insert-if-absent into the new table.
        TableOpWrite write;
        write.op.kind = WriteKind::kInsert;
        write.op.row.key = key;
        write.op.row.properties = props;
        LinFn lin = [spec](const BackendResult& r) {
          std::vector<LinAction> actions;
          if (r.op.Ok()) {
            actions.push_back(LinWrite{spec, TableCode::kOk});
          }
          return actions;
        };
        auto write_call =
            client_.Execute(TableSel::kNew, write, std::move(lin));
        BackendResult w = co_await std::move(write_call);
        if (w.op.Ok()) {
          MtResult out;
          out.code = TableCode::kOk;
          out.etag = w.op.etag;
          co_return out;
        }
        continue;  // lost the race (another writer or the migrator's copy)
      }
    }
    // Some live row seems to exist: linearize the failure against the
    // guarded authoritative state (it may have vanished — then retry).
    const TableCode code =
        co_await LinearizeFailure(key, kAnyEtag, spec, /*for_insert=*/true);
    if (code == TableCode::kAlreadyExists) {
      co_return MtResult{TableCode::kAlreadyExists};
    }
    if (code == TableCode::kInvalid) {
      break;
    }
    // code == kOk: the key is authoritatively absent now; retry the insert.
  }
  co_return MtResult{TableCode::kInvalid};
}

TaskOf<MtResult> MigratingTable::ReplaceNew(const TableKey& key,
                                            const Properties& props,
                                            Etag cond_etag,
                                            const LogicalWriteSpec& spec) {
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    auto probe_call =
        client_.Execute(TableSel::kNew, TableOpRetrieve{key}, nullptr);
    BackendResult rn = co_await std::move(probe_call);
    if (rn.op.row.has_value() && !IsTombstone(rn.op.row->properties)) {
      const QueryRow current{*rn.op.row, rn.op.row_etag};
      if (MatchesVirtual(current, cond_etag)) {
        TableOpWrite write;
        write.op.kind = WriteKind::kReplace;
        write.op.row.key = key;
        write.op.row.properties = props;
        write.op.etag = rn.op.row_etag;  // CAS on the row we validated
        LinFn lin = [spec](const BackendResult& r) {
          std::vector<LinAction> actions;
          if (r.op.Ok()) {
            actions.push_back(LinWrite{spec, TableCode::kOk});
          }
          return actions;
        };
        auto write_call =
            client_.Execute(TableSel::kNew, write, std::move(lin));
        BackendResult w = co_await std::move(write_call);
        if (w.op.Ok()) {
          MtResult out;
          out.code = TableCode::kOk;
          out.etag = w.op.etag;
          co_return out;
        }
        continue;
      }
      // fall through to failure linearization
    } else if (!rn.op.row.has_value()) {
      auto old_probe =
          client_.Execute(TableSel::kOld, TableOpRetrieve{key}, nullptr);
      BackendResult ro = co_await std::move(old_probe);
      if (ro.op.row.has_value()) {
        const QueryRow current{*ro.op.row, ro.op.row_etag};
        if (MatchesVirtual(current, cond_etag)) {
          // The authoritative row lives in the old table: the replacement is
          // written to the new table (insert-if-absent races the migrator's
          // copy; losing the race means retrying against the copied row).
          TableOpWrite write;
          write.op.kind = WriteKind::kInsert;
          write.op.row.key = key;
          write.op.row.properties = props;
          LinFn lin = [spec](const BackendResult& r) {
            std::vector<LinAction> actions;
            if (r.op.Ok()) {
              actions.push_back(LinWrite{spec, TableCode::kOk});
            }
            return actions;
          };
          auto write_call =
              client_.Execute(TableSel::kNew, write, std::move(lin));
          BackendResult w = co_await std::move(write_call);
          if (w.op.Ok()) {
            MtResult out;
            out.code = TableCode::kOk;
            out.etag = w.op.etag;
            co_return out;
          }
          continue;
        }
      }
      // fall through to failure linearization
    }
    // Tombstone, absent, or mismatch: decide and linearize the failure
    // against the guarded authoritative state.
    const TableCode code =
        co_await LinearizeFailure(key, cond_etag, spec, /*for_insert=*/false);
    if (code == TableCode::kNotFound || code == TableCode::kConditionNotMet) {
      co_return MtResult{code};
    }
    if (code == TableCode::kInvalid) {
      break;
    }
    // code == kOk: the row matches again; retry the replace.
  }
  co_return MtResult{TableCode::kInvalid};
}

TaskOf<MtResult> MigratingTable::UpsertNew(const TableKey& key,
                                           const Properties& props,
                                           const LogicalWriteSpec& spec) {
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    auto call17_ = client_.Execute(TableSel::kNew, TableOpRetrieve{key}, nullptr);
    BackendResult rn =
        co_await std::move(call17_);
    WriteOp op;
    op.row.key = key;
    op.row.properties = props;
    if (rn.op.row.has_value()) {
      op.kind = WriteKind::kReplace;
      op.etag = rn.op.row_etag;
    } else {
      op.kind = WriteKind::kInsert;
    }
    LinFn lin = [spec](const BackendResult& r) {
      std::vector<LinAction> actions;
      if (r.op.Ok()) {
        actions.push_back(LinWrite{spec, TableCode::kOk});
      }
      return actions;
    };
    auto call18_ = client_.Execute(TableSel::kNew,
                                               TableOpWrite{op}, std::move(lin));
    BackendResult w = co_await std::move(call18_);
    if (w.op.Ok()) {
      MtResult out;
      out.code = TableCode::kOk;
      out.etag = w.op.etag;
      co_return out;
    }
  }
  co_return MtResult{TableCode::kInvalid};
}

TaskOf<MtResult> MigratingTable::DeleteNew(const TableKey& key, Etag cond_etag,
                                           const LogicalWriteSpec& spec,
                                           PartitionState state,
                                           const std::string& stale_partition) {
  // BUG DeletePrimaryKey: the backend key is built from the table's cached
  // "current partition" context — stale from the previous operation —
  // rather than from the operation's own primary key.
  const TableKey target{bugs_.delete_primary_key ? stale_partition
                                                 : key.partition,
                        key.row};
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    auto probe_call =
        client_.Execute(TableSel::kNew, TableOpRetrieve{target}, nullptr);
    BackendResult rn = co_await std::move(probe_call);
    if (rn.op.row.has_value() && !IsTombstone(rn.op.row->properties)) {
      const QueryRow current{*rn.op.row, rn.op.row_etag};
      const bool plain = state == PartitionState::kSwitched;
      bool matches = MatchesVirtual(current, cond_etag);
      if (plain && bugs_.delete_no_leave_tombstones_etag) {
        // BUG DeleteNoLeaveTombstonesEtag: the plain-delete path (the one
        // that does not need tombstones) forgets to honor the caller's etag.
        matches = true;
      }
      if (matches) {
        TableOpWrite write;
        write.op.row.key = target;
        write.op.etag = rn.op.row_etag;
        if (plain) {
          write.op.kind = WriteKind::kDelete;
        } else {
          // Tombstone regime: replace the row with a tombstone so the
          // shadowed old-table row cannot resurface.
          write.op.kind = WriteKind::kReplace;
          write.op.row.properties = Properties{{kTombstoneProp, "1"}};
        }
        LinFn lin = [spec](const BackendResult& r) {
          std::vector<LinAction> actions;
          if (r.op.Ok()) {
            actions.push_back(LinWrite{spec, TableCode::kOk});
          }
          return actions;
        };
        auto write_call =
            client_.Execute(TableSel::kNew, write, std::move(lin));
        BackendResult w = co_await std::move(write_call);
        if (w.op.Ok()) {
          co_return MtResult{TableCode::kOk};
        }
        continue;
      }
      // fall through to failure linearization
    } else if (!rn.op.row.has_value()) {
      auto old_probe =
          client_.Execute(TableSel::kOld, TableOpRetrieve{target}, nullptr);
      BackendResult ro = co_await std::move(old_probe);
      if (ro.op.row.has_value()) {
        const QueryRow current{*ro.op.row, ro.op.row_etag};
        if (MatchesVirtual(current, cond_etag)) {
          // Authoritative row in the old table: shadow it with a tombstone.
          TableOpWrite write;
          write.op.kind = WriteKind::kInsert;
          write.op.row.key = target;
          write.op.row.properties = Properties{{kTombstoneProp, "1"}};
          LinFn lin = [spec](const BackendResult& r) {
            std::vector<LinAction> actions;
            if (r.op.Ok()) {
              actions.push_back(LinWrite{spec, TableCode::kOk});
            }
            return actions;
          };
          auto write_call =
              client_.Execute(TableSel::kNew, write, std::move(lin));
          BackendResult w = co_await std::move(write_call);
          if (w.op.Ok()) {
            co_return MtResult{TableCode::kOk};
          }
          continue;
        }
      }
      // fall through to failure linearization
    }
    const TableCode code = co_await LinearizeFailure(target, cond_etag, spec,
                                                     /*for_insert=*/false);
    if (code == TableCode::kNotFound || code == TableCode::kConditionNotMet) {
      co_return MtResult{code};
    }
    if (code == TableCode::kInvalid) {
      break;
    }
  }
  co_return MtResult{TableCode::kInvalid};
}

// ---------------------------------------------------------------------------
// Reads.

TaskOf<MtResult> MigratingTable::Retrieve(const TableKey& key) {
  last_partition_ = key.partition;
  MtResult out;

  // Merged point read under a two-table interference guard: read both
  // tables, then confirm neither table changed across the window. When the
  // guard holds, the virtual table was constant over the whole read, so the
  // merged answer (new shadows old, tombstones mean absent) is valid at the
  // final guard op — the linearization point. On interference, retry.
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    auto guard0_call = client_.Execute(TableSel::kOld, TableOpMutationCount{},
                                       nullptr);
    BackendResult guard0 = co_await std::move(guard0_call);
    auto new_call =
        client_.Execute(TableSel::kNew, TableOpRetrieve{key}, nullptr);
    BackendResult rn = co_await std::move(new_call);
    auto old_call =
        client_.Execute(TableSel::kOld, TableOpRetrieve{key}, nullptr);
    BackendResult ro = co_await std::move(old_call);

    // Merge decision.
    std::optional<TableRow> merged_row;
    Etag merged_etag = chaintable::kInvalidEtag;
    if (rn.op.row.has_value()) {
      if (!IsTombstone(rn.op.row->properties)) {
        merged_row = TableRow{key, StripMeta(rn.op.row->properties)};
        merged_etag = rn.op.row_etag;
      }
    } else if (ro.op.row.has_value()) {
      merged_row = TableRow{key, StripMeta(ro.op.row->properties)};
      merged_etag = ro.op.row_etag;
    }

    const std::uint64_t old0 = guard0.mutation_count_old;
    const std::uint64_t new0 = guard0.mutation_count_new;
    const std::optional<TableRow> lin_row = merged_row;
    LinFn lin = [key, lin_row, old0, new0](const BackendResult& r) {
      std::vector<LinAction> actions;
      if (r.mutation_count_old == old0 && r.mutation_count_new == new0) {
        LinReadCheck check;
        check.key = key;
        if (lin_row.has_value()) {
          check.expected = lin_row->properties;
        }
        actions.push_back(check);
      }
      return actions;
    };
    auto guard1_call = client_.Execute(TableSel::kNew, TableOpMutationCount{},
                                       std::move(lin));
    BackendResult guard1 = co_await std::move(guard1_call);
    if (guard1.mutation_count_old != old0 ||
        guard1.mutation_count_new != new0) {
      continue;  // a writer or the migrator interfered: retry
    }
    if (merged_row.has_value()) {
      out.code = TableCode::kOk;
      out.row = merged_row;
      out.etag = merged_etag;
    } else {
      out.code = TableCode::kNotFound;
    }
    co_return out;
  }
  co_return MtResult{TableCode::kInvalid};
}

namespace {

/// Merges the two backend snapshots (new shadows old), drops tombstones,
/// strips meta properties and applies the user filter.
std::vector<TableRow> MergeSnapshots(const std::vector<QueryRow>& old_rows,
                                     const std::vector<QueryRow>& new_rows,
                                     const Filter& user_filter) {
  std::map<TableKey, const QueryRow*> merged;
  for (const QueryRow& row : old_rows) {
    merged[row.row.key] = &row;
  }
  for (const QueryRow& row : new_rows) {
    merged[row.row.key] = &row;  // new shadows old
  }
  std::vector<TableRow> out;
  for (const auto& [key, row] : merged) {
    if (key.partition == kMetaPartition) continue;
    if (IsTombstone(row->row.properties)) continue;
    TableRow clean{key, StripMeta(row->row.properties)};
    if (user_filter.Matches(clean)) {
      out.push_back(std::move(clean));
    }
  }
  return out;
}

}  // namespace

TaskOf<MtResult> MigratingTable::QueryAtomic(const Filter& filter) {
  last_partition_ = filter.partition.value_or(last_partition_);
  MtResult out;

  // Merged atomic query (used in every migration state — with an untouched
  // partition the new-table snapshot is empty and merging degenerates to the
  // old-table snapshot): snapshot both tables inside a double mutation-count
  // guard; if either table changed during the window, retry. When the guard
  // holds, the virtual table was constant across the window, so the merged
  // answer is valid at the final guard read — the linearization point.
  //
  // BUG QueryAtomicFilterShadowing: pushing the user filter into the backend
  // snapshots means a new-table row that does not match the filter cannot
  // shadow its stale (matching) old-table version.
  Filter backend = bugs_.query_atomic_filter_shadowing
                       ? filter
                       : Filter{.partition = filter.partition};
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    auto guard0_call = client_.Execute(TableSel::kOld, TableOpMutationCount{},
                                       nullptr);
    BackendResult guard0 = co_await std::move(guard0_call);
    auto old_call = client_.Execute(TableSel::kOld,
                                    TableOpQueryAtomic{backend}, nullptr);
    BackendResult so = co_await std::move(old_call);
    auto new_call = client_.Execute(TableSel::kNew,
                                    TableOpQueryAtomic{backend}, nullptr);
    BackendResult sn = co_await std::move(new_call);
    const std::vector<TableRow> merged =
        MergeSnapshots(so.rows, sn.rows, filter);
    const std::uint64_t old0 = guard0.mutation_count_old;
    const std::uint64_t new0 = guard0.mutation_count_new;
    LinFn lin = [filter, merged, old0, new0](const BackendResult& r) {
      std::vector<LinAction> actions;
      if (r.mutation_count_old == old0 && r.mutation_count_new == new0) {
        actions.push_back(LinQueryCheck{filter, merged});
      }
      return actions;
    };
    auto guard1_call = client_.Execute(TableSel::kNew, TableOpMutationCount{},
                                       std::move(lin));
    BackendResult guard1 = co_await std::move(guard1_call);
    if (guard1.mutation_count_old == old0 &&
        guard1.mutation_count_new == new0) {
      out.code = TableCode::kOk;
      out.rows = merged;
      co_return out;
    }
  }
  co_return MtResult{TableCode::kInvalid};
}

// ---------------------------------------------------------------------------
// Streaming queries.

TaskOf<std::uint64_t> MigratingTable::StreamStart(const Filter& filter) {
  stream_ = StreamState{};
  // Stream ids are namespaced by client so concurrent services' streams
  // cannot collide at the checker.
  stream_.id = (client_.ClientKey() << 20) | next_stream_id_++;
  stream_.open = true;
  stream_.user_filter = filter;

  const std::uint64_t id = stream_.id;
  LinFn lin = [id, filter](const BackendResult&) {
    return std::vector<LinAction>{LinStreamStart{id, filter}};
  };
  auto call38_ = client_.Execute(TableSel::kOld, TableOpMutationCount{},
                                 std::move(lin));
  (void)co_await std::move(call38_);
  if (bugs_.query_streamed_lock) {
    auto call39_ = client_.Execute(
        TableSel::kNew,
        TableOpQueryAtomic{Filter{.partition = stream_.user_filter.partition}},
        nullptr);
    // BUG QueryStreamedLock: snapshot the new table once at stream start and
    // serve all "new side" reads from the snapshot instead of re-reading
    // under the lock — rows the migrator moves into the new table
    // mid-stream are invisible.
    BackendResult snap = co_await std::move(call39_);
    stream_.new_snapshot = snap.rows;
  }
  co_return id;
}

TaskOf<MtResult> MigratingTable::StreamNext() {
  MtResult out;
  out.code = TableCode::kOk;
  if (!stream_.open) {
    out.code = TableCode::kInvalid;
    co_return out;
  }
  // BUG QueryStreamedFilterShadowing: push the user filter into the backend
  // reads; a non-matching new row then fails to shadow a matching old one.
  const Filter base = bugs_.query_streamed_filter_shadowing
                          ? stream_.user_filter
                          : Filter{.partition = stream_.user_filter.partition};

  for (int round = 0; round < 1'000; ++round) {
    auto call40_ = client_.Execute(
        TableSel::kOld, TableOpQueryAbove{base, stream_.last_key}, nullptr);
    BackendResult old_peek = co_await std::move(call40_);

    std::optional<QueryRow> new_candidate;
    if (bugs_.query_streamed_lock) {
      for (const QueryRow& row : stream_.new_snapshot) {
        if (!stream_.last_key || row.row.key > *stream_.last_key) {
          new_candidate = row;
          break;
        }
      }
    } else {
      std::optional<TableKey> after = stream_.last_key;
      if (bugs_.query_streamed_backup_new_stream) {
        // BUG QueryStreamedBackUpNewStream: a forward-only cursor over the
        // new table. A row the migrator inserts *behind* the cursor (while
        // deleting it from the old table ahead of the old cursor) is missed,
        // even though the insertion happened before the deletion (§6.2).
        if (stream_.new_cursor &&
            (!after || *stream_.new_cursor > *after)) {
          after = stream_.new_cursor;
        }
      }
      auto call41_ = client_.Execute(
          TableSel::kNew, TableOpQueryAbove{base, after}, nullptr);
      BackendResult np = co_await std::move(call41_);
      new_candidate = np.above;
      if (bugs_.query_streamed_backup_new_stream && new_candidate) {
        stream_.new_cursor = new_candidate->row.key;
      }
    }

    // Merge decision: smaller key wins; the new table shadows the old.
    std::optional<QueryRow> winner;
    if (old_peek.above && new_candidate) {
      winner = new_candidate->row.key <= old_peek.above->row.key
                   ? new_candidate
                   : old_peek.above;
    } else if (old_peek.above) {
      winner = old_peek.above;
    } else {
      winner = new_candidate;
    }

    if (!winner.has_value()) {
      const std::uint64_t id = stream_.id;
      LinFn lin = [id](const BackendResult&) {
        return std::vector<LinAction>{LinStreamEnd{id}};
      };
      auto call42_ = client_.Execute(TableSel::kOld, TableOpMutationCount{},
                                     std::move(lin));
      (void)co_await std::move(call42_);
      stream_.open = false;
      co_return out;  // row empty: end of stream
    }

    stream_.last_key = winner->row.key;
    if (winner->row.key.partition == kMetaPartition ||
        IsTombstone(winner->row.properties)) {
      continue;  // authoritatively absent: skip
    }
    TableRow clean{winner->row.key, StripMeta(winner->row.properties)};
    if (!stream_.user_filter.Matches(clean)) {
      continue;
    }
    // Emit. The linearization anchor is a fresh backend no-op so the checker
    // records the emission at a well-defined instant.
    const std::uint64_t id = stream_.id;
    LinFn lin = [id, clean](const BackendResult&) {
      return std::vector<LinAction>{LinStreamEmit{id, clean}};
    };
    auto call43_ = client_.Execute(TableSel::kOld, TableOpMutationCount{},
                                   std::move(lin));
    (void)co_await std::move(call43_);
    out.row = clean;
    out.etag = winner->etag;
    co_return out;
  }
  co_return MtResult{TableCode::kInvalid};
}

}  // namespace mtable
