// SysTest — Live Table Migration case study (§4): monitors.
#pragma once

#include "core/runtime.h"
#include "mtable/protocol.h"

namespace mtable {

/// Liveness monitor: hot from the start of the scenario until the final
/// verification succeeds. Catches protocols that get stuck — unbounded retry
/// loops, a migrator waiting on a barrier ack that never comes, a service
/// blocked on a backend response.
class MigrationLivenessMonitor final : public systest::Monitor {
 public:
  static constexpr bool kReusableRuntime = true;  // stateless beyond control state

  MigrationLivenessMonitor() {
    State("Running").Hot().On<NotifyVerified>(&MigrationLivenessMonitor::OnDone);
    State("Done").Cold().Ignore<NotifyVerified>();
    SetStart("Running");
  }

 private:
  void OnDone() { Goto("Done"); }
};

}  // namespace mtable
