#include "mtable/service.h"

namespace mtable {

using chaintable::Etag;
using chaintable::Filter;
using chaintable::kAnyEtag;
using chaintable::Properties;
using chaintable::TableCode;
using chaintable::TableKey;
using chaintable::WriteKind;
using systest::Task;

ServiceMachine::ServiceMachine(systest::MachineId tables,
                               systest::MachineId driver,
                               ServiceOptions options)
    : BackendClientMachine(tables),
      driver_(driver),
      options_(std::move(options)),
      mt_(*this, options_.bugs) {
  State("Working")
      .OnEntry(&ServiceMachine::OnStart)
      .On<NextOp>(&ServiceMachine::OnNextOp)
      .On<SettleBarrier>(&ServiceMachine::OnBarrier);
  SetStart("Working");
}

void ServiceMachine::OnStart() { Send<NextOp>(Id()); }

void ServiceMachine::OnBarrier(const SettleBarrier& barrier) {
  // Handled between logical operations by construction (each operation runs
  // inside one NextOp handler): acknowledging here tells the migrator that
  // no operation of ours is in flight.
  Send<SettleAck>(barrier.migrator, barrier.epoch);
}

ScriptedOp ServiceMachine::GenerateOp() {
  ScriptedOp op;
  // Write-heavy mix: the interesting interleavings need mutation traffic
  // concurrent with the migrator.
  switch (NondetInt(10)) {
    case 0:
    case 1:
      op.kind = ScriptedOp::Kind::kInsert;
      break;
    case 2:
    case 3:
      op.kind = ScriptedOp::Kind::kReplace;
      break;
    case 4:
      op.kind = ScriptedOp::Kind::kUpsert;
      break;
    case 5:
    case 6:
      op.kind = ScriptedOp::Kind::kDelete;
      break;
    case 7:
      op.kind = ScriptedOp::Kind::kRetrieve;
      break;
    case 8:
      op.kind = ScriptedOp::Kind::kQuery;
      break;
    default:
      op.kind = ScriptedOp::Kind::kStreamScan;
      break;
  }
  op.partition =
      static_cast<int>(NondetInt(options_.partitions.size()));
  op.row = static_cast<int>(NondetInt(options_.row_keys.size()));
  op.value = "v" + std::to_string(NondetInt(options_.value_space));
  if (op.kind == ScriptedOp::Kind::kReplace ||
      op.kind == ScriptedOp::Kind::kDelete) {
    // ETag mode: match-any, or one of the stored slots (stale slots arise
    // naturally as later writes supersede them).
    const std::uint64_t mode = NondetInt(3);
    op.etag_slot = mode == 0 ? -1 : static_cast<int>(NondetInt(kSlots));
  }
  if (op.kind != ScriptedOp::Kind::kDelete &&
      op.kind != ScriptedOp::Kind::kRetrieve &&
      op.kind != ScriptedOp::Kind::kQuery &&
      op.kind != ScriptedOp::Kind::kStreamScan) {
    op.out_slot = static_cast<int>(NondetInt(kSlots));
  }
  if (op.kind == ScriptedOp::Kind::kQuery ||
      op.kind == ScriptedOp::Kind::kStreamScan) {
    op.filter_by_value = NondetInt(2) == 1;
  }
  return op;
}

Task ServiceMachine::OnNextOp(const NextOp&) {
  if (ops_done_ >=
      (options_.script.empty() ? options_.num_ops
                               : static_cast<int>(options_.script.size()))) {
    Send<ServiceDone>(driver_, options_.index);
    co_return;
  }
  const ScriptedOp op = options_.script.empty()
                            ? GenerateOp()
                            : options_.script[static_cast<std::size_t>(ops_done_)];
  ++ops_done_;
  co_await RunOp(op);
  Send<NextOp>(Id());
}

Task ServiceMachine::RunOp(const ScriptedOp& op) {
  const TableKey key{options_.partitions[static_cast<std::size_t>(op.partition)],
                     options_.row_keys[static_cast<std::size_t>(op.row)]};
  const Properties props{{"val", op.value}};

  // Resolve the etag condition on both sides: actual MT etag for the
  // protocol, symbolic slot for the checker. An unfilled slot degrades to
  // match-any on both sides.
  Etag cond = kAnyEtag;
  EtagRef ref = EtagRef::Any();
  if (op.etag_slot >= 0 && slots_[op.etag_slot].valid) {
    cond = slots_[op.etag_slot].etag;
    ref = EtagRef::Slot(op.etag_slot);
  }

  switch (op.kind) {
    case ScriptedOp::Kind::kInsert:
    case ScriptedOp::Kind::kReplace:
    case ScriptedOp::Kind::kUpsert:
    case ScriptedOp::Kind::kDelete: {
      WriteKind kind = WriteKind::kInsert;
      if (op.kind == ScriptedOp::Kind::kReplace) kind = WriteKind::kReplace;
      if (op.kind == ScriptedOp::Kind::kUpsert) {
        kind = WriteKind::kInsertOrReplace;
      }
      if (op.kind == ScriptedOp::Kind::kDelete) kind = WriteKind::kDelete;
      LogicalWriteSpec spec;
      spec.kind = kind;
      spec.key = key;
      spec.properties = props;
      spec.etag = ref;
      spec.out_slot = op.out_slot;
      MtResult result = co_await mt_.Write(kind, key, props, cond, spec);
      Assert(result.code != TableCode::kInvalid,
             "MigratingTable write gave up (interference cap exceeded)");
      if (result.Ok() && op.out_slot >= 0) {
        slots_[op.out_slot] = Slot{result.etag, true};
      }
      break;
    }
    case ScriptedOp::Kind::kRetrieve: {
      MtResult result = co_await mt_.Retrieve(key);
      Assert(result.code != TableCode::kInvalid, "retrieve gave up");
      break;
    }
    case ScriptedOp::Kind::kQuery: {
      Filter filter;
      filter.partition = key.partition;
      if (op.filter_by_value) {
        filter.property_equals = {"val", op.value};
      }
      MtResult result = co_await mt_.QueryAtomic(filter);
      Assert(result.code != TableCode::kInvalid,
             "atomic query gave up (interference cap exceeded)");
      break;
    }
    case ScriptedOp::Kind::kStreamScan: {
      Filter filter;
      filter.partition = key.partition;
      if (op.filter_by_value) {
        filter.property_equals = {"val", op.value};
      }
      (void)co_await mt_.StreamStart(filter);
      for (;;) {
        MtResult next = co_await mt_.StreamNext();
        Assert(next.code != TableCode::kInvalid, "stream scan gave up");
        if (!next.row.has_value()) {
          break;
        }
      }
      break;
    }
  }
}

}  // namespace mtable
