#include "obs/metrics.h"

#include <algorithm>
#include <utility>

namespace systest::obs {

namespace detail {

std::uint32_t AssignShardIndex() noexcept {
  // Round-robin over the shard space: with kShards >= worker-fleet size the
  // assignment is collision-free in the common case, and merely contended
  // (never wrong) otherwise.
  static std::atomic<std::uint32_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

Histogram::Histogram(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  const std::size_t buckets = BucketCount();
  for (Shard& shard : shards_) {
    shard.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> counts(BucketCount(), 0);
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : BucketCounts()) total += c;
  return total;
}

const MetricValue* MetricsSnapshot::Find(std::string_view name) const noexcept {
  for (const MetricValue& v : values) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::ValueOf(std::string_view name,
                                       std::uint64_t fallback) const noexcept {
  const MetricValue* v = Find(name);
  return v != nullptr ? v->value : fallback;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<std::uint64_t> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::string(name), std::move(bounds))
      .first->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.values.reserve(counters_.size() + gauges_.size() +
                          histograms_.size());
  // The three maps are each name-sorted; emit counters, then gauges, then
  // histograms, then one stable merge by name for a deterministic snapshot.
  for (const auto& [name, counter] : counters_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kCounter;
    v.value = counter.Value();
    snapshot.values.push_back(std::move(v));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kGauge;
    v.value = gauge.Value();
    snapshot.values.push_back(std::move(v));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kHistogram;
    v.bucket_bounds = histogram.UpperBounds();
    v.bucket_counts = histogram.BucketCounts();
    for (const std::uint64_t c : v.bucket_counts) v.value += c;
    snapshot.values.push_back(std::move(v));
  }
  std::stable_sort(snapshot.values.begin(), snapshot.values.end(),
                   [](const MetricValue& a, const MetricValue& b) {
                     return a.name < b.name;
                   });
  return snapshot;
}

}  // namespace systest::obs
