// SysTest observability plane.
//
// CampaignMonitor: a sampling thread that turns the campaign's sharded
// instruments into a time-series while the engines run. Every interval it
// aggregates a MetricsSample (cumulative totals plus rates derived from the
// previous sample), keeps it in a bounded in-memory ring, optionally appends
// it as one JSON object per line to a JSONL file (--metrics-out), optionally
// repaints a single-line TTY progress display on stderr (--progress), and
// fans it out to observer callbacks (RunObserver::OnSnapshot). The monitor
// only ever reads relaxed atomics — workers never block on it, and a sample
// is a consistent-enough lower bound (exact after Stop(), which takes one
// final sample with all workers joined).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/campaign.h"
#include "obs/metrics.h"

namespace systest::obs {

/// One worker's slice of a sample.
struct WorkerSample {
  std::size_t worker = 0;
  std::uint64_t executions = 0;
  double exec_per_sec = 0.0;  ///< since the previous sample
};

/// One point of the campaign time-series. Totals are cumulative; *_per_sec
/// rates cover the window since the previous sample.
struct MetricsSample {
  std::uint64_t t_ms = 0;  ///< milliseconds since monitor start
  bool final_sample = false;

  std::uint64_t executions = 0;
  std::uint64_t steps = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t distinct_states = 0;
  std::uint64_t pruned_executions = 0;
  std::uint64_t fingerprint_hits = 0;
  std::uint64_t fingerprint_misses = 0;
  std::uint64_t bugs_found = 0;
  std::uint64_t faults = 0;  ///< all kinds summed

  double exec_per_sec = 0.0;
  double steps_per_sec = 0.0;
  double states_per_sec = 0.0;  ///< distinct-state discovery rate
  double prune_fraction = 0.0;  ///< pruned / executions (cumulative)
  double eta_seconds = -1.0;    ///< < 0 when unknown (no budget / no rate)

  std::vector<WorkerSample> workers;

  /// Full registry aggregation at sample time (histograms included).
  MetricsSnapshot snapshot;

  /// The JSONL representation (one line, no trailing newline).
  [[nodiscard]] std::string ToJsonLine() const;
};

struct MonitorOptions {
  std::uint64_t interval_ms = 250;
  std::string jsonl_path;     ///< empty = no file output
  bool progress = false;      ///< repaint a one-line display on stderr
  std::size_t ring_capacity = 1024;
  std::uint64_t total_executions = 0;  ///< campaign budget, for ETA (0 = none)
  std::size_t workers = 0;             ///< per-worker rate lines when > 0
};

class CampaignMonitor {
 public:
  CampaignMonitor(CampaignMetrics& metrics, MonitorOptions options);
  ~CampaignMonitor();
  CampaignMonitor(const CampaignMonitor&) = delete;
  CampaignMonitor& operator=(const CampaignMonitor&) = delete;

  /// Observer fan-out, invoked on the monitor thread for every sample. Set
  /// before Start().
  void SetSampleCallback(std::function<void(const MetricsSample&)> callback);

  void Start();
  /// Takes one final (exact, post-join) sample, flushes the JSONL file,
  /// finishes the progress line with a newline, joins the thread. Idempotent.
  void Stop();

  /// Copy of the retained ring (oldest first). Callable after Stop().
  [[nodiscard]] std::vector<MetricsSample> Samples() const;

  /// Total samples taken, including any the ring evicted.
  [[nodiscard]] std::uint64_t SampleCount() const;

 private:
  void Loop();
  MetricsSample TakeSample(bool final_sample);
  void EmitSample(const MetricsSample& sample);
  void RenderProgress(const MetricsSample& sample);

  CampaignMetrics& metrics_;
  MonitorOptions options_;
  std::vector<Counter*> worker_counters_;

  std::function<void(const MetricsSample&)> callback_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool started_ = false;
  bool stopped_ = false;
  std::thread thread_;

  std::vector<MetricsSample> ring_;  ///< bounded; oldest evicted first
  std::uint64_t samples_taken_ = 0;

  std::chrono::steady_clock::time_point start_time_;
  // Previous-sample state for rate derivation (monitor thread only).
  std::uint64_t prev_t_ms_ = 0;
  std::uint64_t prev_executions_ = 0;
  std::uint64_t prev_steps_ = 0;
  std::uint64_t prev_states_ = 0;
  std::vector<std::uint64_t> prev_worker_executions_;

  std::FILE* jsonl_ = nullptr;
  bool progress_painted_ = false;
};

}  // namespace systest::obs
