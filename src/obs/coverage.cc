#include "obs/coverage.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/event.h"
#include "core/runtime.h"

namespace systest::obs {

namespace {

void MergeMachine(std::vector<MachineCoverage>& into,
                  std::unordered_map<std::string, std::size_t>* index,
                  const MachineCoverage& from) {
  MachineCoverage* target = nullptr;
  if (index != nullptr) {
    const auto [it, inserted] = index->try_emplace(from.machine, into.size());
    if (inserted) {
      into.push_back({from.machine, from.state_names, {}});
    }
    target = &into[it->second];
  } else {
    for (MachineCoverage& m : into) {
      if (m.machine == from.machine) {
        target = &m;
        break;
      }
    }
    if (target == nullptr) {
      into.push_back({from.machine, from.state_names, {}});
      target = &into.back();
    }
  }
  if (target->state_names.size() < from.state_names.size()) {
    target->state_names = from.state_names;
  }
  if (target->state_visits.size() < from.state_visits.size()) {
    target->state_visits.resize(from.state_visits.size(), 0);
  }
  for (std::size_t i = 0; i < from.state_visits.size(); ++i) {
    target->state_visits[i] += from.state_visits[i];
  }
}

}  // namespace

std::uint64_t CoverageReport::TotalFaultPlacements() const noexcept {
  std::uint64_t total = 0;
  for (const auto& row : fault_placements) {
    for (const std::uint64_t c : row) total += c;
  }
  return total;
}

void CoverageReport::Merge(const CoverageReport& other) {
  executions += other.executions;
  for (const MachineCoverage& m : other.machines) {
    MergeMachine(machines, nullptr, m);
  }
  for (const auto& [name, count] : other.event_deliveries) {
    auto it = std::find_if(event_deliveries.begin(), event_deliveries.end(),
                           [&](const auto& e) { return e.first == name; });
    if (it == event_deliveries.end()) {
      event_deliveries.emplace_back(name, count);
    } else {
      it->second += count;
    }
  }
  for (std::size_t k = 0; k < kFaultKinds; ++k) {
    for (std::size_t d = 0; d < kStepDeciles; ++d) {
      fault_placements[k][d] += other.fault_placements[k][d];
    }
  }
  std::sort(machines.begin(), machines.end(),
            [](const MachineCoverage& a, const MachineCoverage& b) {
              return a.machine < b.machine;
            });
  std::sort(event_deliveries.begin(), event_deliveries.end());
}

std::vector<std::string> CoverageReport::UnvisitedStates() const {
  std::vector<std::string> out;
  for (const MachineCoverage& m : machines) {
    for (std::size_t i = 0; i < m.state_names.size(); ++i) {
      const std::uint64_t visits =
          i < m.state_visits.size() ? m.state_visits[i] : 0;
      if (visits == 0) {
        out.push_back(m.machine + "." + m.state_names[i]);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string CoverageReport::Render() const {
  std::string out = "coverage (over " + std::to_string(executions) +
                    " executions):\n";
  char line[256];
  for (const MachineCoverage& m : machines) {
    out += "  machine " + m.machine + ":\n";
    std::uint64_t peak = 1;
    for (const std::uint64_t v : m.state_visits) peak = std::max(peak, v);
    for (std::size_t i = 0; i < m.state_names.size(); ++i) {
      const std::uint64_t visits =
          i < m.state_visits.size() ? m.state_visits[i] : 0;
      constexpr std::size_t kBarWidth = 10;
      char bar[kBarWidth + 1];
      const std::size_t filled =
          visits == 0 ? 0
                      : std::max<std::size_t>(
                            1, static_cast<std::size_t>(visits * kBarWidth / peak));
      for (std::size_t b = 0; b < kBarWidth; ++b) {
        bar[b] = b < filled ? '#' : '.';
      }
      bar[kBarWidth] = '\0';
      std::snprintf(line, sizeof(line), "    [%s]  %-20s %12llu%s\n", bar,
                    m.state_names[i].c_str(),
                    static_cast<unsigned long long>(visits),
                    visits == 0 ? "  UNVISITED" : "");
      out += line;
    }
  }
  const std::vector<std::string> unvisited = UnvisitedStates();
  if (!unvisited.empty()) {
    out += "  unvisited declared states:";
    for (const std::string& s : unvisited) {
      out += ' ';
      out += s;
    }
    out += '\n';
  } else if (!machines.empty()) {
    out += "  all declared states visited\n";
  }
  if (!event_deliveries.empty()) {
    out += "  event deliveries:\n";
    for (const auto& [name, count] : event_deliveries) {
      std::snprintf(line, sizeof(line), "    %-28s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(count));
      out += line;
    }
  }
  if (TotalFaultPlacements() > 0) {
    out += "  fault placements by step decile (0-9):\n";
    for (std::size_t k = 0; k < kFaultKinds; ++k) {
      std::uint64_t row_total = 0;
      for (const std::uint64_t c : fault_placements[k]) row_total += c;
      if (row_total == 0) continue;
      std::snprintf(line, sizeof(line), "    %-10s [",
                    FaultKindName(static_cast<FaultKind>(k)));
      out += line;
      for (std::size_t d = 0; d < kStepDeciles; ++d) {
        std::snprintf(line, sizeof(line), "%s%llu", d == 0 ? "" : " ",
                      static_cast<unsigned long long>(fault_placements[k][d]));
        out += line;
      }
      out += "]\n";
    }
  }
  return out;
}

std::string CoverageReport::ToJson() const {
  auto escape = [](const std::string& text) {
    std::string escaped;
    escaped.reserve(text.size());
    for (const char c : text) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    return escaped;
  };
  std::string json = "{\"executions\":" + std::to_string(executions);
  json += ",\"machines\":[";
  for (std::size_t mi = 0; mi < machines.size(); ++mi) {
    const MachineCoverage& m = machines[mi];
    if (mi > 0) json += ',';
    json += "{\"machine\":\"" + escape(m.machine) + "\",\"states\":[";
    for (std::size_t i = 0; i < m.state_names.size(); ++i) {
      if (i > 0) json += ',';
      const std::uint64_t visits =
          i < m.state_visits.size() ? m.state_visits[i] : 0;
      json += "{\"state\":\"" + escape(m.state_names[i]) +
              "\",\"visits\":" + std::to_string(visits) + "}";
    }
    json += "]}";
  }
  json += "],\"unvisited_states\":[";
  const std::vector<std::string> unvisited = UnvisitedStates();
  for (std::size_t i = 0; i < unvisited.size(); ++i) {
    if (i > 0) json += ',';
    json += '"' + escape(unvisited[i]) + '"';
  }
  json += "],\"event_deliveries\":{";
  for (std::size_t i = 0; i < event_deliveries.size(); ++i) {
    if (i > 0) json += ',';
    json += '"' + escape(event_deliveries[i].first) +
            "\":" + std::to_string(event_deliveries[i].second);
  }
  json += "},\"fault_placements\":{";
  bool first_kind = true;
  for (std::size_t k = 0; k < kFaultKinds; ++k) {
    if (!first_kind) json += ',';
    first_kind = false;
    json += '"';
    json += FaultKindName(static_cast<FaultKind>(k));
    json += "\":[";
    for (std::size_t d = 0; d < kStepDeciles; ++d) {
      if (d > 0) json += ',';
      json += std::to_string(fault_placements[k][d]);
    }
    json += ']';
  }
  json += "}}";
  return json;
}

void CoverageAccumulator::AddExecution(const Runtime& runtime,
                                       const ExecutionProbe& probe) {
  ++report_.executions;
  last_new_states_ = 0;
  const std::size_t machine_count = runtime.MachineCount();
  for (std::size_t i = 1; i <= machine_count; ++i) {
    const Machine* machine = runtime.FindMachine(MachineId{i});
    if (machine == nullptr || machine->StateDecls() == nullptr) continue;
    const std::vector<std::uint64_t>& visits = machine->StateVisitCounts();
    if (visits.empty()) continue;  // coverage was off for this runtime
    const auto [it, inserted] =
        machine_index_.try_emplace(machine->DebugName(), report_.machines.size());
    if (inserted) {
      MachineCoverage cov;
      cov.machine = machine->DebugName();
      for (const systest::detail::CompiledState& state :
           machine->StateDecls()->states) {
        cov.state_names.push_back(state.name);
      }
      cov.state_visits.assign(cov.state_names.size(), 0);
      report_.machines.push_back(std::move(cov));
    }
    MachineCoverage& cov = report_.machines[it->second];
    if (cov.state_visits.size() < visits.size()) {
      cov.state_visits.resize(visits.size(), 0);
    }
    for (std::size_t s = 0; s < visits.size(); ++s) {
      // A cell going 0 -> nonzero is a state this worker reached for the
      // first time: the under-visited-state signal the corpus biases on.
      if (visits[s] != 0 && cov.state_visits[s] == 0) ++last_new_states_;
      cov.state_visits[s] += visits[s];
    }
  }
  probe.ForEachDelivery([&](std::uint32_t id, std::uint64_t count) {
    const auto [it, inserted] =
        event_index_.try_emplace(id, report_.event_deliveries.size());
    if (inserted) {
      report_.event_deliveries.emplace_back(EventTypeName(id), 0);
    }
    report_.event_deliveries[it->second].second += count;
  });
  for (std::size_t k = 0; k < kFaultKinds; ++k) {
    for (std::size_t d = 0; d < kStepDeciles; ++d) {
      report_.fault_placements[k][d] += probe.fault_deciles[k][d];
    }
  }
}

CoverageReport CoverageAccumulator::TakeReport() {
  std::sort(report_.machines.begin(), report_.machines.end(),
            [](const MachineCoverage& a, const MachineCoverage& b) {
              return a.machine < b.machine;
            });
  std::sort(report_.event_deliveries.begin(), report_.event_deliveries.end());
  machine_index_.clear();
  event_index_.clear();
  return std::exchange(report_, CoverageReport{});
}

}  // namespace systest::obs
