// SysTest observability plane.
//
// CampaignMetrics: the campaign-wide instrument set, resolved once from a
// MetricsRegistry so the per-execution flush path works on cached pointers
// instead of name lookups. WorkerObs is the per-worker handle the engines
// thread through RunOneExecution: it owns the plain ExecutionProbe the core
// Runtime writes into and flushes it into the sharded campaign instruments
// (and optionally a CoverageAccumulator) once per completed execution.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "core/event_arena.h"  // standalone: EventAllocStats only
#include "obs/coverage.h"
#include "obs/metrics.h"
#include "obs/probe.h"

namespace systest {
class Runtime;
class VisitedSet;
struct ExecutionResult;
}  // namespace systest

namespace systest::obs {

/// Standard instrument names (one schema across TTY progress, JSONL
/// time-series, and tests).
namespace names {
inline constexpr const char* kExecutions = "executions";
inline constexpr const char* kSteps = "steps";
inline constexpr const char* kDeliveries = "deliveries";
inline constexpr const char* kPrunedExecutions = "pruned_executions";
inline constexpr const char* kFingerprintHits = "fingerprint_hits";
inline constexpr const char* kFingerprintMisses = "fingerprint_misses";
inline constexpr const char* kBugsFound = "bugs_found";
inline constexpr const char* kDistinctStates = "distinct_states";
inline constexpr const char* kFaultCrashes = "faults.crashes";
inline constexpr const char* kFaultRestarts = "faults.restarts";
inline constexpr const char* kFaultDrops = "faults.drops";
inline constexpr const char* kFaultDuplications = "faults.duplications";
inline constexpr const char* kEnabledSetSize = "enabled_set_size";
inline constexpr const char* kExecutionSteps = "execution_steps";
// Event allocator telemetry (core/event_arena.h): pool free-list hit/miss
// split on the fresh path, arena bump-allocation volume on the recycled
// path. A healthy recycled campaign shows arena allocations dominating and
// pool misses flat after warmup.
inline constexpr const char* kEventPoolHits = "event_pool.hits";
inline constexpr const char* kEventPoolMisses = "event_pool.misses";
inline constexpr const char* kEventArenaAllocations = "event_arena.allocations";
inline constexpr const char* kEventArenaBytesHighWater =
    "event_arena.bytes_high_water";
// Tiered visited-set telemetry (core/fingerprint.h VisitedStats). Gauges,
// not counters: the set itself maintains the cumulative totals, so the flush
// publishes snapshots instead of deltas. Refreshed every 32nd execution per
// worker — collecting them takes every shard lock on the sharded set, which
// is too dear for every flush and pointless at sampling resolution.
inline constexpr const char* kVisitedHotHits = "visited.hot_hits";
inline constexpr const char* kVisitedRunProbes = "visited.run_probes";
inline constexpr const char* kVisitedBloomTruePositives = "visited.bloom_tp";
inline constexpr const char* kVisitedBloomFalsePositives = "visited.bloom_fp";
inline constexpr const char* kVisitedCompactions = "visited.compactions";
inline constexpr const char* kVisitedSpilledBytes = "visited.spilled_bytes";
inline constexpr const char* kVisitedHotEntries = "visited.hot_entries";
inline constexpr const char* kVisitedRunEntries = "visited.run_entries";
inline constexpr const char* kVisitedRuns = "visited.runs";
/// Prefixes: "deliveries_by_type.<Event>" and "worker.<n>.executions".
inline constexpr const char* kDeliveriesByTypePrefix = "deliveries_by_type.";
inline constexpr const char* kWorkerPrefix = "worker.";
}  // namespace names

/// The campaign's instruments, resolved once against a registry. Shared by
/// every worker (all methods and cached instruments are thread-safe).
class CampaignMetrics {
 public:
  explicit CampaignMetrics(MetricsRegistry& registry);
  CampaignMetrics(const CampaignMetrics&) = delete;
  CampaignMetrics& operator=(const CampaignMetrics&) = delete;

  [[nodiscard]] MetricsRegistry& Registry() noexcept { return registry_; }

  /// The "deliveries_by_type.<EventName>" counter for an interned event type
  /// id. Lock-free dense-array fast path (ids are small sequential ints,
  /// mirroring the event clone registry); registry-interning slow path on
  /// first sight of a type.
  [[nodiscard]] Counter& DeliveryCounterFor(std::uint32_t type_id);

  /// The "worker.<n>.executions" counter (progress reporter reads these for
  /// per-worker rates).
  [[nodiscard]] Counter& WorkerExecutions(std::size_t worker_index);

  // Campaign-wide instruments (public on purpose: the flush path and the
  // monitor read them directly).
  Counter& executions;
  Counter& steps;
  Counter& deliveries;
  Counter& pruned_executions;
  Counter& fingerprint_hits;
  Counter& fingerprint_misses;
  Counter& bugs_found;
  Gauge& distinct_states;
  Counter& fault_crashes;
  Counter& fault_restarts;
  Counter& fault_drops;
  Counter& fault_duplications;
  Counter& event_pool_hits;
  Counter& event_pool_misses;
  Counter& event_arena_allocations;
  /// Max single-execution arena footprint seen by any worker (bytes).
  Gauge& event_arena_bytes_high_water;
  // Tiered visited-set snapshots (names::kVisited*).
  Gauge& visited_hot_hits;
  Gauge& visited_run_probes;
  Gauge& visited_bloom_tp;
  Gauge& visited_bloom_fp;
  Gauge& visited_compactions;
  Gauge& visited_spilled_bytes;
  Gauge& visited_hot_entries;
  Gauge& visited_run_entries;
  Gauge& visited_runs;
  Histogram& enabled_set_size;
  Histogram& execution_steps;
  /// Fault placements by step decile, one histogram per kind; bucket index ==
  /// decile (bounds 0..8 plus overflow = decile 9).
  Histogram* fault_placement[kFaultKinds];

 private:
  MetricsRegistry& registry_;
  /// Dense EventTypeId -> Counter*; ids beyond the array fall back to the
  /// mutex path every time (harmless: real suites have dozens of types).
  static constexpr std::size_t kMaxEventTypes = 4096;
  std::atomic<Counter*> by_type_[kMaxEventTypes] = {};
  std::mutex slow_path_mutex_;
};

/// Per-worker observability handle. Not thread-safe — each worker owns one.
struct WorkerObs {
  WorkerObs(CampaignMetrics& metrics, std::size_t worker_index,
            bool coverage_enabled);

  /// Resets the probe for the next execution (keeps allocations).
  void BeginExecution() noexcept;

  /// Publishes one completed execution: probe accumulators into the sharded
  /// campaign instruments, engine-level result fields (steps, prune,
  /// fingerprint hit/miss, bug, fault counts), visited-set occupancy into
  /// the distinct-states gauge, and — when coverage is on — the runtime's
  /// state-visit arrays into the coverage accumulator.
  void FlushExecution(const Runtime& runtime, const ExecutionResult& result,
                      const VisitedSet* visited);

  /// Finished per-worker coverage report (empty when coverage was off).
  [[nodiscard]] CoverageReport TakeCoverage() { return coverage.TakeReport(); }

  /// Heatmap cells the most recent flushed execution visited first — the
  /// corpus's heat bonus (0 whenever coverage collection is off).
  [[nodiscard]] std::uint64_t LastNewStateCells() const noexcept {
    return coverage_enabled ? coverage.LastNewStates() : 0;
  }

  ExecutionProbe probe;
  CampaignMetrics& metrics;
  Counter& worker_executions;
  bool coverage_enabled = false;
  CoverageAccumulator coverage;
  /// Thread-local allocator counters as of the previous flush; FlushExecution
  /// publishes the delta, so per-execution cost is four subtractions (no
  /// step-path instrumentation — the allocator already maintains the TLS
  /// totals unconditionally).
  systest::detail::EventAllocStats last_alloc_;
  /// Flushes since the last visited.* gauge refresh (VisitedSet::Stats() on
  /// the sharded set takes all 64 shard locks, so it runs every 32nd
  /// execution, not every flush).
  std::uint32_t flushes_since_visited_stats_ = 0;
};

}  // namespace systest::obs
