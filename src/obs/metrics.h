// SysTest observability plane.
//
// MetricsRegistry: named counters, gauges and fixed-bucket histograms shared
// by every layer of a testing campaign (core runtime instrumentation, the
// exploration engines, the session's CampaignMonitor). The design constraint
// is the exploration inner loop: tens of thousands of executions per second
// per worker must be able to publish progress without serializing on a lock
// or bouncing one cache line between cores. Every instrument is therefore
// sharded: writers pay one thread-local shard-index read plus one relaxed
// atomic add on a cache line their shard effectively owns; readers (the
// sampling monitor thread, end-of-run snapshots) aggregate across shards.
// Totals are eventually consistent while workers run and exact once they
// joined — exactly the semantics a progress display and a final report need.
//
// This header is self-contained (standard library only) so core/ can depend
// on it without cycles.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace systest::obs {

namespace detail {

/// Stable per-thread shard index, assigned round-robin on first use. A plain
/// trivially-destructible thread_local, so the hot-path read compiles to one
/// TLS load with no init-guard call.
[[nodiscard]] std::uint32_t AssignShardIndex() noexcept;

inline std::uint32_t ThisThreadShard() noexcept {
  thread_local const std::uint32_t shard = AssignShardIndex();
  return shard;
}

/// Shards per instrument. Small enough that snapshot aggregation is a short
/// strided scan, large enough that a typical worker fleet (hardware threads)
/// rarely collides on one shard.
inline constexpr std::uint32_t kShards = 16;

}  // namespace detail

/// Monotonic counter. Add() is wait-free: one TLS read + one relaxed
/// fetch_add on this thread's shard line.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t n) noexcept {
    shards_[detail::ThisThreadShard() & (detail::kShards - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() noexcept { Add(1); }

  /// Sum over all shards. Exact once writers are quiescent; a consistent
  /// lower bound while they run.
  [[nodiscard]] std::uint64_t Value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[detail::kShards];
};

/// Last-writer-wins gauge (e.g. visited-set occupancy). Not sharded: gauges
/// are written once per execution at most, not once per step.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket histogram. `upper_bounds` are inclusive upper edges in
/// ascending order; one implicit overflow bucket is appended, so a histogram
/// with bounds {1, 2, 4} has four buckets: v<=1, v<=2, v<=4, v>4. Bucket
/// counts are sharded like Counter; Record is a short linear scan (bucket
/// lists are small by design) plus one relaxed add.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(std::uint64_t value) noexcept {
    AddToBucket(BucketOf(value), 1);
  }

  /// Index of the bucket `value` falls into (last index = overflow).
  [[nodiscard]] std::size_t BucketOf(std::uint64_t value) const noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    return i;
  }

  /// Bulk merge: adds `n` to bucket `bucket`. Execution probes accumulate
  /// plain per-execution bucket arrays and flush them here once per
  /// execution, so the step loop never touches an atomic.
  void AddToBucket(std::size_t bucket, std::uint64_t n) noexcept {
    shards_[detail::ThisThreadShard() & (detail::kShards - 1)]
        .buckets[bucket]
        .fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<std::uint64_t>& UpperBounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] std::size_t BucketCount() const noexcept {
    return bounds_.size() + 1;
  }
  /// Aggregated per-bucket counts (same consistency as Counter::Value).
  [[nodiscard]] std::vector<std::uint64_t> BucketCounts() const;
  /// Total observations across all buckets.
  [[nodiscard]] std::uint64_t Count() const;

 private:
  struct Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
  };
  std::vector<std::uint64_t> bounds_;
  Shard shards_[detail::kShards];
};

/// One instrument's aggregated value at snapshot time.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t value = 0;  ///< counter total / gauge value / histogram count
  // Histograms only:
  std::vector<std::uint64_t> bucket_bounds;
  std::vector<std::uint64_t> bucket_counts;
};

/// Point-in-time aggregation of every registered instrument, sorted by name.
struct MetricsSnapshot {
  std::vector<MetricValue> values;

  [[nodiscard]] const MetricValue* Find(std::string_view name) const noexcept;
  /// Counter/gauge convenience: the named value, or `fallback` when absent.
  [[nodiscard]] std::uint64_t ValueOf(std::string_view name,
                                      std::uint64_t fallback = 0) const noexcept;
};

/// Named instrument registry. Get* interns on first use (mutex-guarded) and
/// returns a stable reference — hot-path callers resolve their instruments
/// once and keep the pointer; the registry outlives every user in a session.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// `upper_bounds` applies on first creation; later lookups of the same
  /// name return the existing histogram regardless of the bounds passed.
  Histogram& GetHistogram(std::string_view name,
                          std::vector<std::uint64_t> upper_bounds);

  [[nodiscard]] MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  // Node-based maps: values never move, so returned references stay valid.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace systest::obs
