// SysTest observability plane.
//
// Coverage heatmaps: the per-scenario end-of-run report of where a testing
// budget actually went. Three views, all cheap to collect because the hot
// identifiers are dense:
//  * per-machine state-visit histograms — Machine::CurrentStateId() is an
//    index into the compiled MachineDecl's state vector, so a visit count is
//    a flat-array increment and an unvisited declared state (a state the
//    harness models but the campaign never drove the machine into) is a
//    zero in that array;
//  * per-event-type delivery counts — interned EventTypeIds, named through
//    the intern table's reverse lookup;
//  * fault-placement heatmaps — injected fault kind x step-decile, showing
//    which phase of executions the fault budgets actually perturb.
//
// Workers accumulate privately (no locks in the execution loop); reports
// merge by named machine / named event, so the parallel engine's aggregate
// is exactly the sum of its per-worker reports (pinned by tests).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/probe.h"

namespace systest {
class Runtime;
}  // namespace systest

namespace systest::obs {

/// State-visit histogram of one machine (keyed by debug name, which is
/// deterministic for a deterministic harness). `state_names` comes from the
/// compiled declaration, index = dense StateId.
struct MachineCoverage {
  std::string machine;
  std::vector<std::string> state_names;
  std::vector<std::uint64_t> state_visits;  ///< same index space as names

  [[nodiscard]] std::uint64_t TotalVisits() const noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t v : state_visits) total += v;
    return total;
  }
};

/// Mergeable end-of-run coverage report.
struct CoverageReport {
  std::uint64_t executions = 0;
  std::vector<MachineCoverage> machines;  ///< sorted by machine name
  /// (event type name, deliveries) sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> event_deliveries;
  /// Injected-fault placements: [FaultKind][step decile].
  std::uint64_t fault_placements[kFaultKinds][kStepDeciles] = {};

  [[nodiscard]] bool Empty() const noexcept {
    return executions == 0 && machines.empty() && event_deliveries.empty();
  }
  [[nodiscard]] std::uint64_t TotalFaultPlacements() const noexcept;

  /// Adds `other` into this report (visit counts by machine+state name,
  /// deliveries by event name, fault grids cell-wise). Commutative and
  /// associative, so any merge order over worker reports agrees.
  void Merge(const CoverageReport& other);

  /// "machine.State" for every declared state with zero visits, sorted.
  [[nodiscard]] std::vector<std::string> UnvisitedStates() const;

  /// Human-readable heatmap (HumanReporter --coverage).
  [[nodiscard]] std::string Render() const;

  /// JSON object (JsonReporter's "coverage" field).
  [[nodiscard]] std::string ToJson() const;
};

/// Per-worker accumulator: collects one execution at a time with hashed
/// find-or-insert (no locks — each worker owns one), hands out the finished
/// sorted report at the end.
class CoverageAccumulator {
 public:
  /// Folds one completed execution in: walks `runtime`'s machines for their
  /// state-visit arrays (sized by the Runtime when probe.coverage is set)
  /// and consumes the probe's delivery/fault accumulators.
  void AddExecution(const Runtime& runtime, const ExecutionProbe& probe);

  /// Sorted, mergeable report; the accumulator is left empty.
  [[nodiscard]] CoverageReport TakeReport();

  /// Heatmap cells (machine, state) the most recent AddExecution visited
  /// FIRST — states no prior execution of this worker had reached. This is
  /// the corpus's under-visited-state bias: a trace scoring fresh cells gets
  /// extra sampling energy (corpus/trace_corpus.h).
  [[nodiscard]] std::uint64_t LastNewStates() const noexcept {
    return last_new_states_;
  }

 private:
  CoverageReport report_;
  std::unordered_map<std::string, std::size_t> machine_index_;
  std::unordered_map<std::uint32_t, std::size_t> event_index_;  // by type id
  std::uint64_t last_new_states_ = 0;
};

}  // namespace systest::obs
