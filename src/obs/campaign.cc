#include "obs/campaign.h"

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/event.h"
#include "core/fingerprint.h"
#include "core/runtime.h"

namespace systest::obs {

namespace {

std::vector<std::uint64_t> Bounds(const std::uint64_t* edges, std::size_t n) {
  return std::vector<std::uint64_t>(edges, edges + n);
}

std::vector<std::uint64_t> DecileBounds() {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t d = 0; d + 1 < kStepDeciles; ++d) bounds.push_back(d);
  return bounds;  // {0..8}: bucket index == decile, overflow bucket == 9
}

}  // namespace

CampaignMetrics::CampaignMetrics(MetricsRegistry& registry)
    : executions(registry.GetCounter(names::kExecutions)),
      steps(registry.GetCounter(names::kSteps)),
      deliveries(registry.GetCounter(names::kDeliveries)),
      pruned_executions(registry.GetCounter(names::kPrunedExecutions)),
      fingerprint_hits(registry.GetCounter(names::kFingerprintHits)),
      fingerprint_misses(registry.GetCounter(names::kFingerprintMisses)),
      bugs_found(registry.GetCounter(names::kBugsFound)),
      distinct_states(registry.GetGauge(names::kDistinctStates)),
      fault_crashes(registry.GetCounter(names::kFaultCrashes)),
      fault_restarts(registry.GetCounter(names::kFaultRestarts)),
      fault_drops(registry.GetCounter(names::kFaultDrops)),
      fault_duplications(registry.GetCounter(names::kFaultDuplications)),
      event_pool_hits(registry.GetCounter(names::kEventPoolHits)),
      event_pool_misses(registry.GetCounter(names::kEventPoolMisses)),
      event_arena_allocations(
          registry.GetCounter(names::kEventArenaAllocations)),
      event_arena_bytes_high_water(
          registry.GetGauge(names::kEventArenaBytesHighWater)),
      visited_hot_hits(registry.GetGauge(names::kVisitedHotHits)),
      visited_run_probes(registry.GetGauge(names::kVisitedRunProbes)),
      visited_bloom_tp(registry.GetGauge(names::kVisitedBloomTruePositives)),
      visited_bloom_fp(registry.GetGauge(names::kVisitedBloomFalsePositives)),
      visited_compactions(registry.GetGauge(names::kVisitedCompactions)),
      visited_spilled_bytes(registry.GetGauge(names::kVisitedSpilledBytes)),
      visited_hot_entries(registry.GetGauge(names::kVisitedHotEntries)),
      visited_run_entries(registry.GetGauge(names::kVisitedRunEntries)),
      visited_runs(registry.GetGauge(names::kVisitedRuns)),
      enabled_set_size(registry.GetHistogram(
          names::kEnabledSetSize,
          Bounds(kEnabledSetBounds, kEnabledSetBucketCount - 1))),
      execution_steps(registry.GetHistogram(
          names::kExecutionSteps,
          Bounds(kExecutionStepsBounds, kExecutionStepsBucketCount - 1))),
      registry_(registry) {
  for (std::size_t k = 0; k < kFaultKinds; ++k) {
    fault_placement[k] = &registry.GetHistogram(
        std::string("fault_placement.") +
            FaultKindName(static_cast<FaultKind>(k)),
        DecileBounds());
  }
}

Counter& CampaignMetrics::DeliveryCounterFor(std::uint32_t type_id) {
  if (type_id < kMaxEventTypes) {
    Counter* cached = by_type_[type_id].load(std::memory_order_acquire);
    if (cached != nullptr) return *cached;
  }
  const std::lock_guard<std::mutex> lock(slow_path_mutex_);
  if (type_id < kMaxEventTypes) {
    Counter* cached = by_type_[type_id].load(std::memory_order_acquire);
    if (cached != nullptr) return *cached;
  }
  Counter& counter = registry_.GetCounter(
      std::string(names::kDeliveriesByTypePrefix) + EventTypeName(type_id));
  if (type_id < kMaxEventTypes) {
    by_type_[type_id].store(&counter, std::memory_order_release);
  }
  return counter;
}

Counter& CampaignMetrics::WorkerExecutions(std::size_t worker_index) {
  return registry_.GetCounter(std::string(names::kWorkerPrefix) +
                              std::to_string(worker_index) + ".executions");
}

WorkerObs::WorkerObs(CampaignMetrics& metrics, std::size_t worker_index,
                     bool coverage_enabled)
    : metrics(metrics),
      worker_executions(metrics.WorkerExecutions(worker_index)),
      coverage_enabled(coverage_enabled) {
  probe.coverage = coverage_enabled;
  // Baseline for the first flush's delta. Engines construct the WorkerObs on
  // the thread that runs its executions, so the TLS totals line up.
  last_alloc_ = systest::detail::ThreadEventAllocStats();
}

void WorkerObs::BeginExecution() noexcept { probe.Reset(); }

void WorkerObs::FlushExecution(const Runtime& runtime,
                               const ExecutionResult& result,
                               const VisitedSet* visited) {
  metrics.executions.Increment();
  worker_executions.Increment();
  metrics.steps.Add(result.steps);
  metrics.execution_steps.Record(result.steps);
  std::uint64_t total_deliveries = 0;
  probe.ForEachDelivery([&](std::uint32_t id, std::uint64_t count) {
    total_deliveries += count;
    metrics.DeliveryCounterFor(id).Add(count);
  });
  metrics.deliveries.Add(total_deliveries);
  std::uint64_t enabled_hist[kEnabledSetBucketCount];
  probe.FoldEnabledHistogram(enabled_hist);
  for (std::size_t b = 0; b < kEnabledSetBucketCount; ++b) {
    if (enabled_hist[b] != 0) {
      metrics.enabled_set_size.AddToBucket(b, enabled_hist[b]);
    }
  }
  if (result.pruned) metrics.pruned_executions.Increment();
  metrics.fingerprint_hits.Add(result.fingerprint_hits);
  metrics.fingerprint_misses.Add(result.fingerprint_misses);
  if (result.bug_found) metrics.bugs_found.Increment();
  metrics.fault_crashes.Add(result.faults.crashes);
  metrics.fault_restarts.Add(result.faults.restarts);
  metrics.fault_drops.Add(result.faults.drops);
  metrics.fault_duplications.Add(result.faults.duplications);
  for (std::size_t k = 0; k < kFaultKinds; ++k) {
    for (std::size_t d = 0; d < kStepDeciles; ++d) {
      if (probe.fault_deciles[k][d] != 0) {
        metrics.fault_placement[k]->AddToBucket(d, probe.fault_deciles[k][d]);
      }
    }
  }
  const systest::detail::EventAllocStats& alloc =
      systest::detail::ThreadEventAllocStats();
  metrics.event_pool_hits.Add(alloc.pool_hits - last_alloc_.pool_hits);
  metrics.event_pool_misses.Add(alloc.pool_misses - last_alloc_.pool_misses);
  metrics.event_arena_allocations.Add(alloc.arena_allocations -
                                      last_alloc_.arena_allocations);
  if (alloc.arena_bytes_high_water >
      metrics.event_arena_bytes_high_water.Value()) {
    metrics.event_arena_bytes_high_water.Set(alloc.arena_bytes_high_water);
  }
  last_alloc_ = alloc;
  if (visited != nullptr) {
    metrics.distinct_states.Set(visited->Size());
    if (flushes_since_visited_stats_++ % 32 == 0) {
      const VisitedStats stats = visited->Stats();
      metrics.visited_hot_hits.Set(stats.hot_hits);
      metrics.visited_run_probes.Set(stats.run_probes);
      metrics.visited_bloom_tp.Set(stats.bloom_true_positives);
      metrics.visited_bloom_fp.Set(stats.bloom_false_positives);
      metrics.visited_compactions.Set(stats.compactions);
      metrics.visited_spilled_bytes.Set(stats.spilled_bytes);
      metrics.visited_hot_entries.Set(stats.hot_entries);
      metrics.visited_run_entries.Set(stats.run_entries);
      metrics.visited_runs.Set(stats.runs);
    }
  }
  if (coverage_enabled) {
    coverage.AddExecution(runtime, probe);
  }
}

}  // namespace systest::obs
