// SysTest observability plane.
//
// ExecutionProbe: the per-execution scratch the core Runtime writes its
// instrumentation into. Everything here is a PLAIN field — a Runtime is
// single-threaded by construction, so the step loop pays ordinary increments
// (no atomics, no TLS) and the owning worker flushes the probe into the
// campaign-wide sharded instruments (obs/campaign.h) once per execution.
// With no probe attached (RuntimeOptions::probe == nullptr, the default) the
// instrumentation points are one dead pointer-null branch each, following
// the fault plane's cheap-when-off pattern, and scheduling is bit-for-bit
// unchanged either way: the probe only observes, it never consumes
// randomness or perturbs a choice point.
//
// Self-contained (standard library only) so core/ can include it freely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace systest::obs {

/// Inclusive upper edges of the enabled-set-size histogram (plus an implicit
/// overflow bucket). Shared between the probe's plain per-execution array
/// and the registry histogram it flushes into.
inline constexpr std::uint64_t kEnabledSetBounds[] = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32};
inline constexpr std::size_t kEnabledSetBucketCount =
    sizeof(kEnabledSetBounds) / sizeof(kEnabledSetBounds[0]) + 1;

namespace detail {

/// The per-step enabled-set counts are accumulated RAW (one slot per exact
/// size, clamped into a shared tail slot) and folded into histogram buckets
/// once per execution: the scheduling hot path is a branchless clamp + one
/// increment, no bounds scan. Slot kEnabledRawSlots-1 holds every size past
/// the last bound, i.e. exactly the overflow bucket.
inline constexpr std::size_t kEnabledRawSlots =
    static_cast<std::size_t>(kEnabledSetBounds[kEnabledSetBucketCount - 2]) + 2;

/// Per-type delivery counts below this id use the fixed fast array.
inline constexpr std::size_t kDeliveryFastSlots = 64;

/// Bucket of an exact raw size (sizes >= kEnabledRawSlots-1 = overflow).
constexpr std::size_t EnabledBucketOf(std::size_t size) noexcept {
  std::size_t bucket = 0;
  while (bucket + 1 < kEnabledSetBucketCount &&
         size > kEnabledSetBounds[bucket]) {
    ++bucket;
  }
  return bucket;
}

}  // namespace detail

/// Inclusive upper edges of the steps-per-execution histogram.
inline constexpr std::uint64_t kExecutionStepsBounds[] = {10, 30, 100, 300, 1'000, 3'000, 10'000};
inline constexpr std::size_t kExecutionStepsBucketCount =
    sizeof(kExecutionStepsBounds) / sizeof(kExecutionStepsBounds[0]) + 1;

/// Fault-placement heatmap axes: injected fault kind x step decile (which
/// tenth of the step bound the fault landed in).
enum class FaultKind : std::uint8_t {
  kCrash = 0,
  kRestart = 1,
  kDrop = 2,
  kDuplicate = 3,
  kPartition = 4,
  kHeal = 5,
};
inline constexpr std::size_t kFaultKinds = 6;
inline constexpr std::size_t kStepDeciles = 10;

[[nodiscard]] constexpr const char* FaultKindName(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
  }
  return "?";
}

struct ExecutionProbe {
  /// Also collect coverage inputs (per-machine state visits are accumulated
  /// inside each Machine; this flag makes Attach size the visit arrays).
  bool coverage = false;

  // ---- Per-execution accumulators (reset per execution) ----
  /// Deliveries (dup clones included) by interned EventTypeId. The first
  /// kDeliveryFastSlots ids live in a fixed array so the per-delivery hot
  /// path is one compare-against-immediate + one indexed increment; a
  /// harness with more distinct event types than that (rare) spills the
  /// tail ids into a grown vector. The execution's delivery total is
  /// derived at flush time, never counted separately.
  std::uint64_t deliveries_fast[detail::kDeliveryFastSlots] = {};
  std::vector<std::uint64_t> deliveries_spill;
  /// Enabled-set size per scheduling step, raw (see detail::kEnabledRawSlots;
  /// bucketed by EnabledHistogram once per execution).
  std::uint64_t enabled_raw[detail::kEnabledRawSlots] = {};
  /// Fault placements: [kind][decile of the step bound].
  std::uint64_t fault_deciles[kFaultKinds][kStepDeciles] = {};

  void Reset() noexcept {
    for (std::uint64_t& c : deliveries_fast) c = 0;
    for (std::uint64_t& c : deliveries_spill) c = 0;
    for (std::uint64_t& c : enabled_raw) c = 0;
    for (auto& row : fault_deciles) {
      for (std::uint64_t& c : row) c = 0;
    }
  }

  void CountDelivery(std::uint32_t type_id) {
    if (type_id < detail::kDeliveryFastSlots) [[likely]] {
      ++deliveries_fast[type_id];
      return;
    }
    const std::uint32_t spill = type_id - detail::kDeliveryFastSlots;
    if (spill >= deliveries_spill.size()) [[unlikely]] {
      deliveries_spill.resize(spill + 1, 0);
    }
    ++deliveries_spill[spill];
  }

  /// Invokes fn(EventTypeId, count) for every type with >= 1 delivery.
  template <typename Fn>
  void ForEachDelivery(Fn&& fn) const {
    for (std::uint32_t id = 0; id < detail::kDeliveryFastSlots; ++id) {
      if (deliveries_fast[id] != 0) fn(id, deliveries_fast[id]);
    }
    for (std::uint32_t i = 0; i < deliveries_spill.size(); ++i) {
      if (deliveries_spill[i] != 0) {
        fn(detail::kDeliveryFastSlots + i, deliveries_spill[i]);
      }
    }
  }

  void CountEnabled(std::size_t enabled) noexcept {
    // Branchless clamp (compiles to a cmov) + one increment.
    const std::size_t slot = enabled < detail::kEnabledRawSlots - 1
                                 ? enabled
                                 : detail::kEnabledRawSlots - 1;
    ++enabled_raw[slot];
  }

  /// Folds the raw per-size counts into histogram buckets (flush time; the
  /// caller owns the fixed bucket array so short executions don't pay an
  /// allocation per flush).
  void FoldEnabledHistogram(
      std::uint64_t (&buckets)[kEnabledSetBucketCount]) const noexcept {
    for (std::uint64_t& b : buckets) b = 0;
    for (std::size_t size = 0; size + 1 < detail::kEnabledRawSlots; ++size) {
      buckets[detail::EnabledBucketOf(size)] += enabled_raw[size];
    }
    buckets[kEnabledSetBucketCount - 1] +=
        enabled_raw[detail::kEnabledRawSlots - 1];
  }

  void CountFault(FaultKind kind, std::uint64_t step,
                  std::uint64_t max_steps) noexcept {
    std::size_t decile =
        max_steps == 0 ? 0
                       : static_cast<std::size_t>(step * kStepDeciles / max_steps);
    if (decile >= kStepDeciles) decile = kStepDeciles - 1;
    ++fault_deciles[static_cast<std::size_t>(kind)][decile];
  }
};

}  // namespace systest::obs
