#include "obs/monitor.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace systest::obs {

namespace {

void AppendNumber(std::string& out, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out += buf;
}

std::string FormatRate(double rate) {
  char buf[48];
  if (rate >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.1fk", rate / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", rate);
  }
  return buf;
}

}  // namespace

std::string MetricsSample::ToJsonLine() const {
  std::string json = "{\"t_ms\":" + std::to_string(t_ms);
  json += ",\"final\":";
  json += final_sample ? "true" : "false";
  json += ",\"executions\":" + std::to_string(executions);
  json += ",\"steps\":" + std::to_string(steps);
  json += ",\"deliveries\":" + std::to_string(deliveries);
  json += ",\"distinct_states\":" + std::to_string(distinct_states);
  json += ",\"pruned_executions\":" + std::to_string(pruned_executions);
  json += ",\"fingerprint_hits\":" + std::to_string(fingerprint_hits);
  json += ",\"fingerprint_misses\":" + std::to_string(fingerprint_misses);
  json += ",\"bugs_found\":" + std::to_string(bugs_found);
  json += ",\"faults\":" + std::to_string(faults);
  json += ",\"exec_per_sec\":";
  AppendNumber(json, exec_per_sec);
  json += ",\"steps_per_sec\":";
  AppendNumber(json, steps_per_sec);
  json += ",\"states_per_sec\":";
  AppendNumber(json, states_per_sec);
  json += ",\"prune_fraction\":";
  AppendNumber(json, prune_fraction);
  json += ",\"eta_seconds\":";
  AppendNumber(json, eta_seconds);
  json += ",\"workers\":[";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (i > 0) json += ',';
    json += "{\"worker\":" + std::to_string(workers[i].worker);
    json += ",\"executions\":" + std::to_string(workers[i].executions);
    json += ",\"exec_per_sec\":";
    AppendNumber(json, workers[i].exec_per_sec);
    json += '}';
  }
  json += "],\"histograms\":{";
  bool first = true;
  for (const MetricValue& v : snapshot.values) {
    if (v.kind != MetricValue::Kind::kHistogram) continue;
    if (v.value == 0) continue;  // keep lines short: skip untouched histograms
    if (!first) json += ',';
    first = false;
    json += '"' + v.name + "\":[";
    for (std::size_t i = 0; i < v.bucket_counts.size(); ++i) {
      if (i > 0) json += ',';
      json += std::to_string(v.bucket_counts[i]);
    }
    json += ']';
  }
  json += "}}";
  return json;
}

CampaignMonitor::CampaignMonitor(CampaignMetrics& metrics,
                                 MonitorOptions options)
    : metrics_(metrics), options_(std::move(options)) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  if (options_.interval_ms == 0) options_.interval_ms = 1;
  worker_counters_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    worker_counters_.push_back(&metrics_.WorkerExecutions(w));
  }
  prev_worker_executions_.assign(options_.workers, 0);
}

CampaignMonitor::~CampaignMonitor() { Stop(); }

void CampaignMonitor::SetSampleCallback(
    std::function<void(const MetricsSample&)> callback) {
  callback_ = std::move(callback);
}

void CampaignMonitor::Start() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (started_) return;
    started_ = true;
  }
  if (!options_.jsonl_path.empty()) {
    jsonl_ = std::fopen(options_.jsonl_path.c_str(), "w");
    if (jsonl_ == nullptr) {
      std::fprintf(stderr, "systest: cannot open metrics output '%s'\n",
                   options_.jsonl_path.c_str());
    }
  }
  start_time_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { Loop(); });
}

void CampaignMonitor::Stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // All workers have joined by the time the session stops the monitor, so
  // this closing sample is exact.
  EmitSample(TakeSample(/*final_sample=*/true));
  if (progress_painted_) {
    std::fputc('\n', stderr);
    std::fflush(stderr);
    progress_painted_ = false;
  }
  if (jsonl_ != nullptr) {
    std::fclose(jsonl_);
    jsonl_ = nullptr;
  }
}

std::vector<MetricsSample> CampaignMonitor::Samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_;
}

std::uint64_t CampaignMonitor::SampleCount() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return samples_taken_;
}

void CampaignMonitor::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    EmitSample(TakeSample(/*final_sample=*/false));
    lock.lock();
  }
}

MetricsSample CampaignMonitor::TakeSample(bool final_sample) {
  MetricsSample s;
  s.final_sample = final_sample;
  s.t_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
  s.executions = metrics_.executions.Value();
  s.steps = metrics_.steps.Value();
  s.deliveries = metrics_.deliveries.Value();
  s.distinct_states = metrics_.distinct_states.Value();
  s.pruned_executions = metrics_.pruned_executions.Value();
  s.fingerprint_hits = metrics_.fingerprint_hits.Value();
  s.fingerprint_misses = metrics_.fingerprint_misses.Value();
  s.bugs_found = metrics_.bugs_found.Value();
  s.faults = metrics_.fault_crashes.Value() + metrics_.fault_restarts.Value() +
             metrics_.fault_drops.Value() + metrics_.fault_duplications.Value();
  s.snapshot = metrics_.Registry().Snapshot();

  const std::uint64_t dt_ms = s.t_ms > prev_t_ms_ ? s.t_ms - prev_t_ms_ : 0;
  const double dt = dt_ms / 1000.0;
  if (dt > 0.0) {
    s.exec_per_sec = (s.executions - prev_executions_) / dt;
    s.steps_per_sec = (s.steps - prev_steps_) / dt;
    s.states_per_sec =
        s.distinct_states >= prev_states_
            ? (s.distinct_states - prev_states_) / dt
            : 0.0;
  }
  if (s.executions > 0) {
    s.prune_fraction =
        static_cast<double>(s.pruned_executions) / s.executions;
  }
  if (options_.total_executions > s.executions && s.exec_per_sec > 0.0) {
    s.eta_seconds =
        (options_.total_executions - s.executions) / s.exec_per_sec;
  } else if (options_.total_executions != 0 &&
             s.executions >= options_.total_executions) {
    s.eta_seconds = 0.0;
  }
  s.workers.reserve(worker_counters_.size());
  for (std::size_t w = 0; w < worker_counters_.size(); ++w) {
    WorkerSample ws;
    ws.worker = w;
    ws.executions = worker_counters_[w]->Value();
    if (dt > 0.0) {
      ws.exec_per_sec = (ws.executions - prev_worker_executions_[w]) / dt;
    }
    prev_worker_executions_[w] = ws.executions;
    s.workers.push_back(ws);
  }
  prev_t_ms_ = s.t_ms;
  prev_executions_ = s.executions;
  prev_steps_ = s.steps;
  prev_states_ = s.distinct_states;
  return s;
}

void CampaignMonitor::EmitSample(const MetricsSample& sample) {
  if (jsonl_ != nullptr) {
    const std::string line = sample.ToJsonLine();
    std::fwrite(line.data(), 1, line.size(), jsonl_);
    std::fputc('\n', jsonl_);
    std::fflush(jsonl_);
  }
  if (options_.progress) RenderProgress(sample);
  if (callback_) callback_(sample);
  const std::lock_guard<std::mutex> lock(mutex_);
  ++samples_taken_;
  if (ring_.size() >= options_.ring_capacity) {
    ring_.erase(ring_.begin());
  }
  ring_.push_back(sample);
}

void CampaignMonitor::RenderProgress(const MetricsSample& sample) {
  std::string line = "[systest] ";
  line += std::to_string(sample.executions);
  if (options_.total_executions != 0) {
    line += '/' + std::to_string(options_.total_executions);
  }
  line += " exec (" + FormatRate(sample.exec_per_sec) + "/s)";
  line += " | states " + std::to_string(sample.distinct_states) + " (" +
          FormatRate(sample.states_per_sec) + "/s)";
  char buf[64];
  std::snprintf(buf, sizeof(buf), " | prune %.1f%%",
                sample.prune_fraction * 100.0);
  line += buf;
  line += " | faults " + std::to_string(sample.faults);
  line += " | bugs " + std::to_string(sample.bugs_found);
  if (sample.eta_seconds >= 0.0) {
    std::snprintf(buf, sizeof(buf), " | ETA %.0fs", sample.eta_seconds);
    line += buf;
  }
  for (const WorkerSample& w : sample.workers) {
    line += " | w" + std::to_string(w.worker) + ' ' +
            FormatRate(w.exec_per_sec) + "/s";
  }
  // Single-line repaint: CR, print, pad out any residue from a longer
  // previous line.
  static constexpr std::size_t kMinWidth = 100;
  if (line.size() < kMinWidth) line.append(kMinWidth - line.size(), ' ');
  std::fputc('\r', stderr);
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
  progress_painted_ = true;
}

}  // namespace systest::obs
