#include "vnext/extent_manager_machine.h"

namespace vnext {

ExtentManagerMachine::ExtentManagerMachine(ExtentManagerOptions options)
    : manager_(std::make_unique<ExtentManager>(options)),
      network_(std::make_unique<ModelNetworkEngine>(this)) {
  // Mirror the paper's Init (Fig. 5): install the modeled network engine and
  // disable the ExtMgr's internal timers so the P#-style timers drive the
  // expiration and repair loops.
  manager_->SetNetworkEngine(network_.get());
  manager_->DisableTimer();

  State("WaitingConfig")
      .On<MgrConfigEvent>(&ExtentManagerMachine::OnConfig)
      .Defer<EnToMgrEvent>()
      .Defer<systest::TimerTick>();
  State("Serving")
      .On<EnToMgrEvent>(&ExtentManagerMachine::OnEnMessage)
      .On<systest::TimerTick>(&ExtentManagerMachine::OnTimerTick);
  SetStart("WaitingConfig");
}

void ExtentManagerMachine::OnConfig(const MgrConfigEvent& config) {
  driver_ = config.driver;
  Goto("Serving");
}

void ExtentManagerMachine::OnEnMessage(const EnToMgrEvent& event) {
  // Relay messages from Extent Nodes into the real ExtMgr (Fig. 5's
  // DeliverMessage).
  manager_->ProcessMessage(*event.message);
}

void ExtentManagerMachine::OnTimerTick(const systest::TimerTick& tick) {
  switch (tick.tag) {
    case kExpirationLoopTimer:
      manager_->ProcessExpirationTick();
      break;
    case kRepairLoopTimer:
      manager_->ProcessRepairTick();
      break;
    default:
      Assert(false, "unexpected timer tag " + std::to_string(tick.tag));
  }
  Send<systest::TickAck>(tick.timer);
}

}  // namespace vnext
