// SysTest — Azure Storage vNext case study (§3.5).
//
// RepairMonitor: the liveness monitor of paper Fig. 11. It tracks the set of
// Extent Nodes truly holding a replica. When the count drops below the
// target it enters the hot `Repairing` state; when repairs bring the count
// back to the target it returns to the cold `Repaired` state. An execution
// stuck hot forever is the ExtentNodeLivenessViolation bug.
#pragma once

#include <cstddef>
#include <set>

#include "core/runtime.h"
#include "vnext/harness_events.h"

namespace vnext {

class RepairMonitor final : public systest::Monitor {
 public:
  static constexpr bool kReusableRuntime = true;

  RepairMonitor(std::size_t replica_target, std::set<NodeId> initial_replicas);

  [[nodiscard]] std::size_t ReplicaCount() const noexcept {
    return replicas_.size();
  }

 private:
  void OnReset() override { replicas_ = initial_replicas_; }

  void OnFailedWhileRepaired(const ENFailedEvent& failed);
  void OnRepairedWhileRepaired(const ExtentRepairedEvent& repaired);
  void OnFailedWhileRepairing(const ENFailedEvent& failed);
  void OnRepairedWhileRepairing(const ExtentRepairedEvent& repaired);

  std::size_t replica_target_;
  std::set<NodeId> replicas_;  // ExtentNodesWithReplica (Fig. 11)
  std::set<NodeId> initial_replicas_;  // retained for OnReset
};

}  // namespace vnext
