// SysTest — Azure Storage vNext case study (§3 of the paper).
//
// Core identifier and wire-message types of the vNext extent-management
// substrate. These types belong to the "real system" side of the case study:
// the ExtentManager and its protocol know nothing about the P#-style test
// harness (paper §3.1: "the ExtMgr is simply unaware of the P# test harness
// and behaves as if it is running in a real distributed environment").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vnext {

/// Identifier of an extent (a multi-gigabyte replicated data container).
using ExtentId = std::uint64_t;

/// Identifier of an Extent Node (EN) — the process storing extent replicas.
using NodeId = std::uint64_t;

constexpr NodeId kInvalidNode = 0;

/// Metadata record for one extent replica, as carried in EN sync reports.
struct ExtentRecord {
  ExtentId extent = 0;
  /// Monotonically growing version of the replica's contents; a replica is
  /// usable as a repair source only if its version matches the latest.
  std::uint64_t version = 0;

  friend bool operator==(const ExtentRecord&, const ExtentRecord&) = default;
};

/// Base class of all vNext wire messages exchanged between the Extent
/// Manager and Extent Nodes through a NetworkEngine.
class Message {
 public:
  enum class Type {
    kHeartbeat,      ///< EN -> ExtMgr, frequent (every 5s in production)
    kSyncReport,     ///< EN -> ExtMgr, full replica listing (every 5min)
    kRepairRequest,  ///< ExtMgr -> EN, schedule repair of an extent
  };

  explicit Message(Type type) : type_(type) {}
  Message(const Message&) = delete;
  Message& operator=(const Message&) = delete;
  virtual ~Message() = default;

  [[nodiscard]] Type GetType() const noexcept { return type_; }
  [[nodiscard]] virtual std::string Describe() const = 0;

 private:
  Type type_;
};

/// Periodic liveness signal from an EN. An ExtMgr learns about new ENs from
/// their first heartbeat and detects failure by missing heartbeats (§3).
struct HeartbeatMessage final : Message {
  explicit HeartbeatMessage(NodeId node)
      : Message(Type::kHeartbeat), node(node) {}
  NodeId node;

  [[nodiscard]] std::string Describe() const override {
    return "Heartbeat(EN" + std::to_string(node) + ")";
  }
};

/// Periodic full listing of the extents stored on an EN. "Its purpose is to
/// update the ExtMgr's possibly out-of-date view of the EN with the ground
/// truth" (§3.1).
struct SyncReportMessage final : Message {
  SyncReportMessage(NodeId node, std::vector<ExtentRecord> extents)
      : Message(Type::kSyncReport), node(node), extents(std::move(extents)) {}
  NodeId node;
  std::vector<ExtentRecord> extents;

  [[nodiscard]] std::string Describe() const override {
    return "SyncReport(EN" + std::to_string(node) + ", " +
           std::to_string(extents.size()) + " extents)";
  }
};

/// Instruction from the ExtMgr to `destination`: repair `extent` by copying
/// from the replica held at `source`.
struct RepairRequestMessage final : Message {
  RepairRequestMessage(NodeId destination, ExtentId extent, NodeId source)
      : Message(Type::kRepairRequest),
        destination(destination),
        extent(extent),
        source(source) {}
  NodeId destination;
  ExtentId extent;
  NodeId source;

  [[nodiscard]] std::string Describe() const override {
    return "RepairRequest(to EN" + std::to_string(destination) + ", extent " +
           std::to_string(extent) + ", from EN" + std::to_string(source) + ")";
  }
};

/// Network interface of vNext components (paper Fig. 7). The production
/// implementation would write to sockets; the P# test harness overrides it to
/// intercept and relay all outbound ExtMgr messages through the testing
/// engine — "a C# language feature widely used for testing" (§2).
class NetworkEngine {
 public:
  virtual ~NetworkEngine() = default;

  /// Asynchronously sends `message` to the component hosting `destination`.
  virtual void SendMessage(NodeId destination,
                           std::shared_ptr<const Message> message) = 0;
};

}  // namespace vnext
