#include "vnext/repair_monitor.h"

namespace vnext {

RepairMonitor::RepairMonitor(std::size_t replica_target,
                             std::set<NodeId> initial_replicas)
    : replica_target_(replica_target), replicas_(std::move(initial_replicas)),
      initial_replicas_(replicas_) {
  State("Repaired")
      .Cold()
      .On<ENFailedEvent>(&RepairMonitor::OnFailedWhileRepaired)
      .On<ExtentRepairedEvent>(&RepairMonitor::OnRepairedWhileRepaired);
  State("Repairing")
      .Hot()
      .On<ENFailedEvent>(&RepairMonitor::OnFailedWhileRepairing)
      .On<ExtentRepairedEvent>(&RepairMonitor::OnRepairedWhileRepairing);
  // Scenario 1 starts under-replicated (hot from the beginning); scenario 2
  // starts at the target (cold until a failure). NOTE: read the member, not
  // the constructor parameter — the parameter was moved from in the
  // initializer list.
  SetStart(replicas_.size() < replica_target_ ? "Repairing" : "Repaired");
}

void RepairMonitor::OnFailedWhileRepaired(const ENFailedEvent& failed) {
  replicas_.erase(failed.node);
  if (replicas_.size() < replica_target_) {
    Goto("Repairing");
  }
}

void RepairMonitor::OnRepairedWhileRepaired(
    const ExtentRepairedEvent& repaired) {
  replicas_.insert(repaired.node);
}

void RepairMonitor::OnFailedWhileRepairing(const ENFailedEvent& failed) {
  replicas_.erase(failed.node);
}

void RepairMonitor::OnRepairedWhileRepairing(
    const ExtentRepairedEvent& repaired) {
  replicas_.insert(repaired.node);
  if (replicas_.size() == replica_target_) {
    Goto("Repaired");
  }
}

}  // namespace vnext
