// SysTest — Azure Storage vNext case study (§3): harness events.
//
// Events exchanged between the P#-style machines of the vNext test harness
// (paper Fig. 4): the wrapped Extent Manager, the modeled Extent Nodes, the
// modeled timers, the TestingDriver and the RepairMonitor.
#pragma once

#include <memory>

#include "core/event.h"
#include "vnext/types.h"

namespace vnext {

/// Timer tags (one TimerMachine per loop, paper §3.3).
enum TimerTag : std::uint64_t {
  kExpirationLoopTimer = 1,  ///< drives ExtentManager::ProcessExpirationTick
  kRepairLoopTimer = 2,      ///< drives ExtentManager::ProcessRepairTick
  kHeartbeatTimer = 3,       ///< drives EN heartbeats
  kSyncReportTimer = 4,      ///< drives EN sync reports
};

/// EN machine -> ExtentManager machine: an inbound vNext wire message.
/// "Messages coming from ExtentNode machines do not go through the modeled
/// network engine; they are instead delivered to the ExtentManager machine"
/// (§3.1).
struct EnToMgrEvent final : systest::Event {
  explicit EnToMgrEvent(std::shared_ptr<const Message> message)
      : message(std::move(message)) {}
  std::shared_ptr<const Message> message;

  [[nodiscard]] std::string Name() const override {
    return "EnToMgr[" + message->Describe() + "]";
  }
};

/// ExtentManager machine -> TestingDriver: an outbound wire message
/// intercepted by the modeled network engine (paper Fig. 7), for the driver
/// to dispatch to the destination EN machine.
struct MgrOutboundEvent final : systest::Event {
  MgrOutboundEvent(NodeId destination, std::shared_ptr<const Message> message)
      : destination(destination), message(std::move(message)) {}
  NodeId destination;
  std::shared_ptr<const Message> message;

  [[nodiscard]] std::string Name() const override {
    return "MgrOutbound[" + message->Describe() + "]";
  }
};

/// TestingDriver -> EN machine: a repair request from the Extent Manager.
struct RepairRequestEvent final : systest::Event {
  explicit RepairRequestEvent(
      std::shared_ptr<const RepairRequestMessage> request)
      : request(std::move(request)) {}
  std::shared_ptr<const RepairRequestMessage> request;
};

/// EN -> TestingDriver -> source EN: request a copy of an extent replica
/// (the modeled extent-repair protocol, paper Fig. 8).
struct CopyRequestEvent final : systest::Event {
  CopyRequestEvent(NodeId requester, NodeId source, ExtentId extent)
      : requester(requester), source(source), extent(extent) {}
  NodeId requester;
  NodeId source;
  ExtentId extent;
};

/// Source EN -> TestingDriver -> requesting EN: the copy outcome.
struct CopyResponseEvent final : systest::Event {
  CopyResponseEvent(NodeId requester, NodeId source, ExtentRecord record,
                    bool success)
      : requester(requester), source(source), record(record),
        success(success) {}
  NodeId requester;
  NodeId source;
  ExtentRecord record;
  bool success;
};

/// Crashed EN -> TestingDriver (sent from Machine::OnCrash when the fault
/// plane kills the node): the driver launches a replacement EN, completing
/// the scenario-2 recovery loop of paper Fig. 10. The failure itself is
/// scheduler-controlled (Runtime::SetCrashable + TestConfig::max_crashes),
/// not a hand-rolled injection.
struct ENCrashedEvent final : systest::Event {
  explicit ENCrashedEvent(NodeId node) : node(node) {}
  NodeId node;
};

/// Harness -> ExtentManager machine: wiring (who is the driver).
struct MgrConfigEvent final : systest::Event {
  explicit MgrConfigEvent(systest::MachineId driver) : driver(driver) {}
  systest::MachineId driver;
};

/// TestingDriver -> EN machine: ids of the EN's modeled timers, so the EN
/// can cancel them when it fails.
struct NodeTimersEvent final : systest::Event {
  NodeTimersEvent(systest::MachineId heartbeat_timer,
                  systest::MachineId sync_timer)
      : heartbeat_timer(heartbeat_timer), sync_timer(sync_timer) {}
  systest::MachineId heartbeat_timer;
  systest::MachineId sync_timer;
};

// --- RepairMonitor notifications (paper Fig. 11) ---

/// An EN holding a replica failed.
struct ENFailedEvent final : systest::Event {
  explicit ENFailedEvent(NodeId node) : node(node) {}
  NodeId node;
};

/// An EN completed the repair of a replica.
struct ExtentRepairedEvent final : systest::Event {
  explicit ExtentRepairedEvent(NodeId node) : node(node) {}
  NodeId node;
};

}  // namespace vnext
