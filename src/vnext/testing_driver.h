// SysTest — Azure Storage vNext case study (§3.4).
//
// TestingDriver: drives the testing scenarios, relays messages between
// machines, and injects failures (paper Fig. 10). Scenario 1 launches one
// ExtentManager and N ENs with the extent under-replicated and waits for
// replication; scenario 2 starts fully replicated, fails a nondeterministically
// chosen EN at a nondeterministic time, launches a replacement, and waits for
// the extent to be repaired.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "core/runtime.h"
#include "core/timer.h"
#include "vnext/extent_manager.h"
#include "vnext/harness_events.h"

namespace vnext {

struct DriverOptions {
  ExtentManagerOptions manager;
  std::size_t num_nodes = 3;         ///< initial Extent Nodes
  std::size_t initial_replicas = 3;  ///< how many of them hold the extent
  bool inject_failure = true;        ///< scenario 2 when true, scenario 1 when false
  /// Fault plane: opt every launched EN in as a crash candidate
  /// (Runtime::SetCrashable). Replaces the driver's hand-rolled FailureEvent
  /// injection with scheduler-controlled crashes — set inject_failure=false
  /// alongside so the only failures are the ones the strategy decides.
  bool crashable_nodes = false;
  ExtentId extent = 1;
};

class TestingDriverMachine final : public systest::Machine {
 public:
  explicit TestingDriverMachine(DriverOptions options);

 private:
  void OnStart();
  void OnMgrOutbound(const MgrOutboundEvent& outbound);
  void OnCopyRequest(const CopyRequestEvent& request);
  void OnCopyResponse(const CopyResponseEvent& response);
  void OnFailureTick(const systest::TimerTick& tick);

  /// Launches a modeled EN plus its heartbeat and sync timers; returns its
  /// node id.
  NodeId LaunchNode(bool with_extent);
  [[nodiscard]] systest::MachineId MachineOf(NodeId node);

  DriverOptions options_;
  NodeId next_node_ = 1;
  std::map<NodeId, systest::MachineId> node_machines_;
  std::vector<NodeId> live_nodes_;
  systest::MachineId manager_machine_;
  systest::MachineId failure_timer_;
  bool failure_injected_ = false;
};

}  // namespace vnext
