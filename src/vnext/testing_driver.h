// SysTest — Azure Storage vNext case study (§3.4).
//
// TestingDriver: drives the testing scenarios and relays messages between
// machines (paper Fig. 10). Scenario 1 launches one ExtentManager and N ENs
// with the extent under-replicated and waits for replication; scenario 2
// starts fully replicated, lets the FAULT PLANE crash a scheduler-chosen EN
// at a scheduler-chosen point (Runtime::SetCrashable +
// TestConfig::max_crashes — the driver carries no failure injection of its
// own), launches a replacement when told of the crash, and waits for the
// extent to be repaired.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "core/runtime.h"
#include "core/timer.h"
#include "vnext/extent_manager.h"
#include "vnext/harness_events.h"

namespace vnext {

struct DriverOptions {
  ExtentManagerOptions manager;
  std::size_t num_nodes = 3;         ///< initial Extent Nodes
  std::size_t initial_replicas = 3;  ///< how many of them hold the extent
  /// Opt every launched EN in as a fault-plane crash candidate
  /// (Runtime::SetCrashable). Whether crashes actually happen is the
  /// engine's call: scenario 2 is crashable_nodes=true plus max_crashes>=1
  /// in the TestConfig (vnext::DefaultConfig budgets 1), scenario 1 is the
  /// same harness with max_crashes=0.
  bool crashable_nodes = true;
  /// Launch a fresh, empty EN when a crashed EN reports in (the scenario-2
  /// replacement launch of Fig. 10). Disable for fleets that pre-provision
  /// a spare instead (vnext-repair-under-crash).
  bool replace_crashed = true;
  ExtentId extent = 1;
};

class TestingDriverMachine final : public systest::Machine {
 public:
  /// Execution recycling: the manager, the ENs and their timers are created
  /// mid-execution (truncated by the reset); only the driver's own roster
  /// needs restoring.
  static constexpr bool kReusableRuntime = true;

  explicit TestingDriverMachine(DriverOptions options);

 private:
  void OnReset() override {
    next_node_ = 1;
    node_machines_.clear();
    live_nodes_.clear();
    manager_machine_ = {};
  }

  void OnStart();
  void OnMgrOutbound(const MgrOutboundEvent& outbound);
  void OnCopyRequest(const CopyRequestEvent& request);
  void OnCopyResponse(const CopyResponseEvent& response);
  void OnNodeCrashed(const ENCrashedEvent& crashed);

  /// Launches a modeled EN plus its heartbeat and sync timers; returns its
  /// node id.
  NodeId LaunchNode(bool with_extent);
  [[nodiscard]] systest::MachineId MachineOf(NodeId node);

  DriverOptions options_;
  NodeId next_node_ = 1;
  std::map<NodeId, systest::MachineId> node_machines_;
  std::vector<NodeId> live_nodes_;
  systest::MachineId manager_machine_;
};

}  // namespace vnext
