#include "vnext/extent_node_machine.h"

#include "vnext/repair_monitor.h"

namespace vnext {

ExtentNodeMachine::ExtentNodeMachine(NodeId node, systest::MachineId driver,
                                     systest::MachineId manager,
                                     std::optional<ExtentRecord> initial)
    : node_(node), driver_(driver), manager_(manager) {
  if (initial.has_value()) {
    extent_center_.AddOrUpdate(node_, *initial);
  }
  State("WaitingTimers")
      .On<NodeTimersEvent>(&ExtentNodeMachine::OnTimers)
      .Defer<systest::TimerTick>()
      .Defer<RepairRequestEvent>()
      .Defer<CopyRequestEvent>()
      .Defer<CopyResponseEvent>();
  State("Running")
      .On<systest::TimerTick>(&ExtentNodeMachine::OnTimerTick)
      .On<RepairRequestEvent>(&ExtentNodeMachine::OnRepairRequest)
      .On<CopyRequestEvent>(&ExtentNodeMachine::OnCopyRequest)
      .On<CopyResponseEvent>(&ExtentNodeMachine::OnCopyResponse);
  SetStart("WaitingTimers");
}

void ExtentNodeMachine::OnTimers(const NodeTimersEvent& timers) {
  heartbeat_timer_ = timers.heartbeat_timer;
  sync_timer_ = timers.sync_timer;
  Goto("Running");
}

void ExtentNodeMachine::OnTimerTick(const systest::TimerTick& tick) {
  switch (tick.tag) {
    case kHeartbeatTimer:
      Send<EnToMgrEvent>(manager_,
                         std::make_shared<const HeartbeatMessage>(node_));
      break;
    case kSyncReportTimer:
      // Prepare a ground-truth sync report from the local ExtentCenter
      // (Fig. 8's ProcessExtentNodeSync).
      Send<EnToMgrEvent>(manager_, std::make_shared<const SyncReportMessage>(
                                       node_, extent_center_.RecordsAt(node_)));
      break;
    default:
      Assert(false, "unexpected timer tag " + std::to_string(tick.tag));
  }
  Send<systest::TickAck>(tick.timer);
}

void ExtentNodeMachine::OnRepairRequest(const RepairRequestEvent& request) {
  const RepairRequestMessage& msg = *request.request;
  Assert(msg.destination == node_, "repair request routed to the wrong EN");
  if (HasReplica(msg.extent)) {
    return;  // stale request: the ExtMgr has not seen our sync report yet
  }
  // Ask the source EN for a copy of the replica (routed via the driver).
  Send<CopyRequestEvent>(driver_, node_, msg.source, msg.extent);
}

void ExtentNodeMachine::OnCopyRequest(const CopyRequestEvent& request) {
  Assert(request.source == node_, "copy request routed to the wrong EN");
  const bool found = extent_center_.HasReplicaAt(request.extent, node_);
  ExtentRecord record;
  if (found) {
    for (const ExtentRecord& r : extent_center_.RecordsAt(node_)) {
      if (r.extent == request.extent) {
        record = r;
        break;
      }
    }
  }
  Send<CopyResponseEvent>(driver_, request.requester, node_, record, found);
}

void ExtentNodeMachine::OnCopyResponse(const CopyResponseEvent& response) {
  // Extent copy response from the source replica (Fig. 8's
  // ProcessCopyResponse).
  if (!response.success || HasReplica(response.record.extent)) {
    return;
  }
  extent_center_.AddOrUpdate(node_, response.record);
  Notify<RepairMonitor, ExtentRepairedEvent>(node_);
  // The ExtMgr learns about the repaired replica lazily, via this EN's next
  // periodic sync report (§3).
}

void ExtentNodeMachine::OnCrash() {
  // Fig. 8's ProcessFailure, driven by the fault plane instead of a
  // driver-injected FailureEvent: notify the liveness monitor, stop our
  // timers, and tell the driver so it can launch a replacement EN. The
  // runtime wipes our queue and drops all future deliveries to us.
  Notify<RepairMonitor, ENFailedEvent>(node_);
  if (heartbeat_timer_.Valid()) Send<systest::CancelTimer>(heartbeat_timer_);
  if (sync_timer_.Valid()) Send<systest::CancelTimer>(sync_timer_);
  Send<ENCrashedEvent>(driver_, node_);
}

}  // namespace vnext
