// Scenario registrations for the Azure Storage vNext case study (§3): the
// stale-sync-report repair liveness bug and the fixed control.
#include "api/scenario_registry.h"
#include "vnext/harness.h"

namespace vnext {
namespace {

using systest::api::ParamMap;
using systest::api::ParamSpec;
using systest::api::Scenario;

DriverOptions OptionsFrom(const ParamMap& params) {
  DriverOptions options;
  options.num_nodes = params.GetUint("nodes", options.num_nodes);
  options.initial_replicas =
      params.GetUint("initial-replicas", options.initial_replicas);
  options.replace_crashed =
      params.GetBool("replace-crashed", options.replace_crashed);
  options.manager.replica_target =
      params.GetUint("replica-target", options.manager.replica_target);
  return options;
}

std::vector<ParamSpec> Params() {
  return {
      {"nodes", "initial extent nodes (default 3)"},
      {"initial-replicas", "nodes holding the extent at start (default 3)"},
      {"replace-crashed",
       "launch a fresh EN when one crashes (default true; crash count is "
       "TestConfig::max_crashes / --max-crashes)"},
      {"replica-target", "desired replicas per extent (default 3)"},
  };
}

Scenario Repair(const char* name, const char* description, bool fixed) {
  Scenario s;
  s.name = name;
  s.description = description;
  s.tags = {"vnext", "liveness", fixed ? "fixed" : "buggy"};
  s.params = Params();
  s.make = [fixed](const ParamMap& params) {
    DriverOptions options = OptionsFrom(params);
    options.manager.fix_stale_sync_report = fixed;
    return MakeExtentRepairHarness(options);
  };
  s.default_config = [] { return DefaultConfig(); };
  return s;
}

SYSTEST_REGISTER_SCENARIO(vnext_liveness) {
  return Repair("vnext-liveness",
                "sec. 3 vNext extent repair, ExtentNodeLivenessViolation "
                "(stale sync report)",
                /*fixed=*/false);
}

SYSTEST_REGISTER_SCENARIO(vnext_fixed) {
  return Repair("vnext-fixed",
                "sec. 3 vNext extent repair with the stale-sync-report fix "
                "(control)",
                /*fixed=*/true);
}

// Crash-recovery scenario (fault plane): the FIXED extent-repair protocol
// against a fleet with one PRE-PROVISIONED spare EN instead of the driver's
// scenario-2 replacement launch — the crash can land at ANY protocol point,
// including mid-copy on the repair source. The repair-completion liveness
// monitor judges whether repair still converges under every crash placement.
SYSTEST_REGISTER_SCENARIO(vnext_repair_under_crash) {
  Scenario s;
  s.name = "vnext-repair-under-crash";
  s.description =
      "sec. 3 vNext fixed repair protocol under scheduler-controlled EN "
      "crashes (one spare EN, no replacement launch)";
  s.tags = {"vnext", "liveness", "crash-recovery", "fixed"};
  s.params = Params();
  s.make = [](const ParamMap& params) {
    DriverOptions options = OptionsFrom(params);
    // This scenario's defaults differ from the struct's: one spare beyond
    // the replica target (so repair after a single crash is achievable and a
    // stuck repair is a finding, not a resource shortage) and no replacement
    // launch on crash. Explicit params still win.
    if (!params.Has("nodes")) options.num_nodes = 4;
    if (!params.Has("replace-crashed")) options.replace_crashed = false;
    options.manager.fix_stale_sync_report = true;
    return MakeExtentRepairHarness(options);
  };
  s.default_config = [] {
    // DefaultConfig already budgets max_crashes=1 / max_restarts=0.
    return DefaultConfig();
  };
  return s;
}

}  // namespace
}  // namespace vnext
