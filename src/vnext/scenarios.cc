// Scenario registrations for the Azure Storage vNext case study (§3): the
// stale-sync-report repair liveness bug and the fixed control.
#include "api/scenario_registry.h"
#include "vnext/harness.h"

namespace vnext {
namespace {

using systest::api::ParamMap;
using systest::api::ParamSpec;
using systest::api::Scenario;

DriverOptions OptionsFrom(const ParamMap& params) {
  DriverOptions options;
  options.num_nodes = params.GetUint("nodes", options.num_nodes);
  options.initial_replicas =
      params.GetUint("initial-replicas", options.initial_replicas);
  options.inject_failure =
      params.GetBool("inject-failure", options.inject_failure);
  options.manager.replica_target =
      params.GetUint("replica-target", options.manager.replica_target);
  return options;
}

std::vector<ParamSpec> Params() {
  return {
      {"nodes", "initial extent nodes (default 3)"},
      {"initial-replicas", "nodes holding the extent at start (default 3)"},
      {"inject-failure", "fail one EN at a nondeterministic time (default true)"},
      {"replica-target", "desired replicas per extent (default 3)"},
  };
}

Scenario Repair(const char* name, const char* description, bool fixed) {
  Scenario s;
  s.name = name;
  s.description = description;
  s.tags = {"vnext", "liveness", fixed ? "fixed" : "buggy"};
  s.params = Params();
  s.make = [fixed](const ParamMap& params) {
    DriverOptions options = OptionsFrom(params);
    options.manager.fix_stale_sync_report = fixed;
    return MakeExtentRepairHarness(options);
  };
  s.default_config = [] { return DefaultConfig(); };
  return s;
}

SYSTEST_REGISTER_SCENARIO(vnext_liveness) {
  return Repair("vnext-liveness",
                "sec. 3 vNext extent repair, ExtentNodeLivenessViolation "
                "(stale sync report)",
                /*fixed=*/false);
}

SYSTEST_REGISTER_SCENARIO(vnext_fixed) {
  return Repair("vnext-fixed",
                "sec. 3 vNext extent repair with the stale-sync-report fix "
                "(control)",
                /*fixed=*/true);
}

}  // namespace
}  // namespace vnext
