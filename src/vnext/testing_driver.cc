#include "vnext/testing_driver.h"

#include <algorithm>

#include "vnext/extent_manager_machine.h"
#include "vnext/extent_node_machine.h"

namespace vnext {

TestingDriverMachine::TestingDriverMachine(DriverOptions options)
    : options_(options) {
  State("Driving")
      .OnEntry(&TestingDriverMachine::OnStart)
      .On<MgrOutboundEvent>(&TestingDriverMachine::OnMgrOutbound)
      .On<CopyRequestEvent>(&TestingDriverMachine::OnCopyRequest)
      .On<CopyResponseEvent>(&TestingDriverMachine::OnCopyResponse)
      .On<ENCrashedEvent>(&TestingDriverMachine::OnNodeCrashed);
  SetStart("Driving");
}

NodeId TestingDriverMachine::LaunchNode(bool with_extent) {
  const NodeId node = next_node_++;
  std::optional<ExtentRecord> initial;
  if (with_extent) {
    initial = ExtentRecord{options_.extent, /*version=*/1};
  }
  const systest::MachineId machine = Create<ExtentNodeMachine>(
      "ExtentNode", node, Id(), manager_machine_, initial);
  if (options_.crashable_nodes) {
    Rt().SetCrashable(machine);
  }
  const systest::MachineId heartbeat_timer = Create<systest::TimerMachine>(
      "HeartbeatTimer", machine, /*max_rounds=*/0, kHeartbeatTimer);
  const systest::MachineId sync_timer = Create<systest::TimerMachine>(
      "SyncTimer", machine, /*max_rounds=*/0, kSyncReportTimer);
  Send<NodeTimersEvent>(machine, heartbeat_timer, sync_timer);
  node_machines_[node] = machine;
  live_nodes_.push_back(node);
  return node;
}

void TestingDriverMachine::OnStart() {
  manager_machine_ =
      Create<ExtentManagerMachine>("ExtentManager", options_.manager);
  Send<MgrConfigEvent>(manager_machine_, Id());
  // The Extent Manager's two internal loops are driven by modeled timers
  // (paper §3.3: all timing nondeterminism is delegated to the engine).
  Create<systest::TimerMachine>("ExpirationLoopTimer", manager_machine_,
                                /*max_rounds=*/0, kExpirationLoopTimer);
  Create<systest::TimerMachine>("RepairLoopTimer", manager_machine_,
                                /*max_rounds=*/0, kRepairLoopTimer);
  for (std::size_t i = 0; i < options_.num_nodes; ++i) {
    LaunchNode(/*with_extent=*/i < options_.initial_replicas);
  }
}

systest::MachineId TestingDriverMachine::MachineOf(NodeId node) {
  const auto it = node_machines_.find(node);
  Assert(it != node_machines_.end(), [&] {
    return "message routed to unknown EN " + std::to_string(node);
  });
  return it->second;
}

void TestingDriverMachine::OnMgrOutbound(const MgrOutboundEvent& outbound) {
  // Dispatch an intercepted Extent Manager message to the destination EN
  // machine (paper §3.1).
  Assert(outbound.message->GetType() == Message::Type::kRepairRequest, [&] {
    return "unexpected outbound ExtMgr message: " +
           outbound.message->Describe();
  });
  Send<RepairRequestEvent>(
      MachineOf(outbound.destination),
      std::static_pointer_cast<const RepairRequestMessage>(outbound.message));
}

void TestingDriverMachine::OnCopyRequest(const CopyRequestEvent& request) {
  Send<CopyRequestEvent>(MachineOf(request.source), request.requester,
                         request.source, request.extent);
}

void TestingDriverMachine::OnCopyResponse(const CopyResponseEvent& response) {
  Send<CopyResponseEvent>(MachineOf(response.requester), response.requester,
                          response.source, response.record, response.success);
}

void TestingDriverMachine::OnNodeCrashed(const ENCrashedEvent& crashed) {
  // The fault plane chose both the victim and the crash point; the driver
  // only models the operator response — take the node off the live list and
  // (scenario 2, §3.4) launch a fresh replacement EN.
  const auto it = std::find(live_nodes_.begin(), live_nodes_.end(),
                            crashed.node);
  if (it == live_nodes_.end()) {
    // A restarted EN crashing a second time: it was already replaced after
    // its first crash, so there is nothing left to do.
    return;
  }
  live_nodes_.erase(it);
  if (options_.replace_crashed) {
    LaunchNode(/*with_extent=*/false);
  }
}

}  // namespace vnext
