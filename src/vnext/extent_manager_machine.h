// SysTest — Azure Storage vNext case study (§3.1).
//
// The thin wrapper machine around the *real* ExtentManager (paper Fig. 5),
// plus the modeled network engine that intercepts all outbound ExtMgr
// messages and relays them through the testing engine to the TestingDriver
// (paper Fig. 7). The wrapped ExtMgr is unaware of the harness: it processes
// messages and loop ticks exactly as in production.
#pragma once

#include <memory>

#include "core/runtime.h"
#include "core/timer.h"
#include "vnext/extent_manager.h"
#include "vnext/harness_events.h"

namespace vnext {

class ExtentManagerMachine final : public systest::Machine {
 public:
  explicit ExtentManagerMachine(ExtentManagerOptions options);

  /// The wrapped real component (exposed for end-of-test assertions).
  [[nodiscard]] const ExtentManager& Manager() const noexcept { return *manager_; }

 private:
  /// Modeled vNext network engine (Fig. 7): overrides the production
  /// implementation to "intercept and relay Extent Manager messages" via the
  /// testing runtime instead of real sockets.
  class ModelNetworkEngine final : public NetworkEngine {
   public:
    explicit ModelNetworkEngine(ExtentManagerMachine* owner) : owner_(owner) {}
    void SendMessage(NodeId destination,
                     std::shared_ptr<const Message> message) override {
      owner_->Send<MgrOutboundEvent>(owner_->driver_, destination,
                                     std::move(message));
    }

   private:
    ExtentManagerMachine* owner_;
  };

  void OnConfig(const MgrConfigEvent& config);
  void OnEnMessage(const EnToMgrEvent& event);
  void OnTimerTick(const systest::TimerTick& tick);

  std::unique_ptr<ExtentManager> manager_;  // real vNext code
  std::unique_ptr<ModelNetworkEngine> network_;
  systest::MachineId driver_;
};

}  // namespace vnext
