// SysTest — Azure Storage vNext case study (§3.2).
//
// The modeled Extent Node: "a simplified version of the original EN" that
// keeps only the logic needed for testing — replica bookkeeping (reusing the
// real ExtentCenter data structure), extent repair by copying from a source
// replica, periodic heartbeats and sync reports driven by modeled timers, and
// failure handling (paper Fig. 8).
#pragma once

#include "core/runtime.h"
#include "core/timer.h"
#include "vnext/extent_center.h"
#include "vnext/harness_events.h"

namespace vnext {

class ExtentNodeMachine final : public systest::Machine {
 public:
  /// `initial` is the replica this EN starts with (std::nullopt for a
  /// freshly launched, empty EN).
  ExtentNodeMachine(NodeId node, systest::MachineId driver,
                    systest::MachineId manager,
                    std::optional<ExtentRecord> initial);

  [[nodiscard]] NodeId Node() const noexcept { return node_; }
  [[nodiscard]] bool HasReplica(ExtentId extent) const {
    return extent_center_.HasReplicaAt(extent, node_);
  }

 private:
  void OnTimers(const NodeTimersEvent& timers);
  void OnTimerTick(const systest::TimerTick& tick);
  void OnRepairRequest(const RepairRequestEvent& request);
  void OnCopyRequest(const CopyRequestEvent& request);
  void OnCopyResponse(const CopyResponseEvent& response);
  /// Fault-plane crash hook (replaces the driver-injected FailureEvent):
  /// Fig. 8's ProcessFailure, at a scheduler-chosen point.
  void OnCrash() override;

  NodeId node_;
  systest::MachineId driver_;
  systest::MachineId manager_;
  systest::MachineId heartbeat_timer_;
  systest::MachineId sync_timer_;
  /// Real vNext component reused for replica bookkeeping (§3.2).
  ExtentCenter extent_center_;
};

}  // namespace vnext
