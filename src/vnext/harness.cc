#include "vnext/harness.h"

#include "vnext/repair_monitor.h"

namespace vnext {

systest::Harness MakeExtentRepairHarness(const DriverOptions& options) {
  return [options](systest::Runtime& rt) {
    std::set<NodeId> initial;
    for (std::size_t i = 0; i < options.initial_replicas; ++i) {
      initial.insert(static_cast<NodeId>(i + 1));  // driver numbers ENs from 1
    }
    rt.RegisterMonitor<RepairMonitor>("RepairMonitor",
                                      options.manager.replica_target,
                                      std::move(initial));
    rt.CreateMachine<TestingDriverMachine>("TestingDriver", options);
  };
}

systest::TestConfig DefaultConfig(systest::StrategyName strategy) {
  systest::TestConfig config;
  config.iterations = 100'000;  // the paper's execution budget
  config.max_steps = 3'000;
  // A correct repair completes in well under 1200 consecutive-hot steps with
  // ~12 machines; a stuck repair stays hot to the bound.
  config.liveness_temperature_threshold = 1'200;
  config.strategy = strategy;
  config.strategy_budget = 2;  // the paper's PCT budget
  config.seed = 2016;
  // Scenario 2 by default: the fault plane crashes one scheduler-chosen EN
  // per execution (the ENs opt in via DriverOptions::crashable_nodes).
  // Crashes are permanent; the driver launches a replacement EN instead.
  // Scenario 1 (pure replication, no failure) is max_crashes = 0.
  config.max_crashes = 1;
  config.max_restarts = 0;
  return config;
}

}  // namespace vnext
