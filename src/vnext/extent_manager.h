// SysTest — Azure Storage vNext case study (§3).
//
// The real Extent Manager (paper Fig. 6): the system under test. It tracks
// EN liveness via heartbeats (ExtentNodeMap), learns replica placement from
// periodic EN sync reports (ExtentCenter), expires silent ENs, and schedules
// repair of extents with missing replicas.
//
// Production vNext drives the EN-expiration loop and the extent-repair loop
// with internal timers; like the paper (footnote 3: "we added the
// DisableTimer method") this implementation exposes DisableTimer() so a test
// harness can take control of both loops and drive them through
// ProcessExpirationTick()/ProcessRepairTick().
//
// THE BUG (paper §3.6, ExtentNodeLivenessViolation): when a sync report
// arrives from an EN that has already been expired and removed from
// ExtentNodeMap, the unfixed ExtMgr happily applies it to ExtentCenter,
// resurrecting replica records for a node it no longer tracks. The replica
// count climbs back to the target, so the repair loop never schedules the
// repair — while the system truly has one replica fewer. Repeating the
// process loses all replicas while the ExtMgr "would still think that all
// replicas are healthy". ExtentManagerOptions::fix_stale_sync_report guards
// the one-line fix (drop sync reports from unknown ENs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "vnext/extent_center.h"
#include "vnext/types.h"

namespace vnext {

struct ExtentManagerOptions {
  /// Desired number of replicas per extent (3 in the paper's harness).
  std::size_t replica_target = 3;
  /// An EN is expired after this many expiration-loop ticks without a
  /// heartbeat ("missing heartbeats for an extended period", §3.1). The
  /// logical clock advances only on expiration ticks, and under the modeled
  /// timers each tick spans many heartbeat rounds, so one tick already is an
  /// "extended period". (A dead node whose stale in-flight heartbeat
  /// re-registers it must re-expire before the repair loop stops choosing it
  /// as a destination; a larger value makes that self-healing very slow.)
  std::uint64_t heartbeat_expiry_ticks = 1;
  /// True enables the fix for the §3.6 liveness bug: sync reports from ENs
  /// absent from ExtentNodeMap are dropped instead of applied.
  bool fix_stale_sync_report = false;
};

/// The vNext Extent Manager. Thread-compatible: external synchronization is
/// the caller's job (the production system serializes message processing per
/// partition; the test harness serializes everything by construction).
class ExtentManager {
 public:
  explicit ExtentManager(ExtentManagerOptions options);

  ExtentManager(const ExtentManager&) = delete;
  ExtentManager& operator=(const ExtentManager&) = delete;

  /// Installs the network engine used for outbound repair traffic. The test
  /// harness installs an interception model here (paper Fig. 5/7).
  void SetNetworkEngine(NetworkEngine* engine) { network_ = engine; }

  /// Disables the internal loop timers so an external driver can pump
  /// ProcessExpirationTick / ProcessRepairTick (paper footnote 3). In this
  /// reproduction the flag only records intent — there are no real threads —
  /// but the harness asserts it was called, as the real harness must.
  void DisableTimer() { internal_timers_disabled_ = true; }
  [[nodiscard]] bool TimersDisabled() const noexcept {
    return internal_timers_disabled_;
  }

  /// Entry point for all inbound EN messages (heartbeats and sync reports).
  void ProcessMessage(const Message& message);

  /// One round of the EN expiration loop (Fig. 6, left): advances the
  /// logical clock, removes ENs whose heartbeats are stale, and deletes
  /// their extents from the ExtentCenter.
  void ProcessExpirationTick();

  /// One round of the extent repair loop (Fig. 6, right): examines all
  /// ExtentCenter records, finds extents with missing replicas, and sends
  /// repair requests to candidate ENs.
  void ProcessRepairTick();

  // --- Introspection (unit tests and harness assertions) ---

  [[nodiscard]] const ExtentCenter& Center() const noexcept { return center_; }
  [[nodiscard]] bool KnowsNode(NodeId node) const {
    return node_map_.contains(node);
  }
  [[nodiscard]] std::size_t KnownNodeCount() const noexcept {
    return node_map_.size();
  }
  [[nodiscard]] std::uint64_t LogicalClock() const noexcept { return clock_; }
  [[nodiscard]] std::uint64_t RepairsScheduled() const noexcept {
    return repairs_scheduled_;
  }

 private:
  void ProcessHeartbeat(const HeartbeatMessage& heartbeat);
  void ProcessSyncReport(const SyncReportMessage& report);

  /// Picks the destination EN for a repair of `extent`: a live EN that does
  /// not already host a replica (deterministic: lowest node id).
  [[nodiscard]] NodeId ChooseRepairDestination(ExtentId extent) const;

  ExtentManagerOptions options_;
  NetworkEngine* network_ = nullptr;
  ExtentCenter center_;
  /// ExtentNodeMap (Fig. 6): EN -> logical time of last heartbeat.
  std::map<NodeId, std::uint64_t> node_map_;
  std::uint64_t clock_ = 0;
  std::uint64_t repairs_scheduled_ = 0;
  bool internal_timers_disabled_ = false;
};

}  // namespace vnext
