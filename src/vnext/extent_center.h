// SysTest — Azure Storage vNext case study (§3).
//
// ExtentCenter: the Extent Manager's authoritative map from extents to the
// ENs hosting their replicas (paper Fig. 6), "updated upon SyncReport". The
// same data structure is reused by the modeled Extent Node for replica
// bookkeeping, mirroring the paper: "the P# test harness leverages components
// of the real vNext system whenever it is appropriate. For example,
// ExtentNode re-uses the ExtentCenter data structure" (§3.2).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <vector>

#include "vnext/types.h"

namespace vnext {

class ExtentCenter {
 public:
  /// Applies a sync report from `node`: the report lists *all* extents on the
  /// node, so any extent previously attributed to the node but absent from
  /// the report is dropped, and every listed extent is (re-)attributed.
  void ApplySyncReport(NodeId node, const std::vector<ExtentRecord>& extents);

  /// Removes every record attributing an extent to `node` (EN expiration
  /// path: "delete extents from ExtentCenter", Fig. 6).
  void RemoveNode(NodeId node);

  /// Adds or updates a single replica record (used by the EN-side
  /// bookkeeping when a repair copy completes, Fig. 8's AddOrUpdate).
  void AddOrUpdate(NodeId node, const ExtentRecord& record);

  /// Removes a single replica record.
  void Remove(NodeId node, ExtentId extent);

  [[nodiscard]] std::size_t ReplicaCount(ExtentId extent) const;
  [[nodiscard]] bool HasReplicaAt(ExtentId extent, NodeId node) const;
  [[nodiscard]] std::vector<NodeId> ReplicaLocations(ExtentId extent) const;
  [[nodiscard]] std::vector<ExtentId> KnownExtents() const;

  /// All extents whose replica count is below `target`.
  [[nodiscard]] std::vector<ExtentId> ExtentsBelow(std::size_t target) const;

  /// The records hosted on `node` (the EN side uses this to build its own
  /// sync reports, Fig. 8's GetSyncReport).
  [[nodiscard]] std::vector<ExtentRecord> RecordsAt(NodeId node) const;

  [[nodiscard]] bool Empty() const noexcept { return locations_.empty(); }

 private:
  /// extent -> (node -> replica metadata). Ordered maps keep iteration
  /// deterministic, which systematic testing requires.
  std::map<ExtentId, std::map<NodeId, ExtentRecord>> locations_;
};

}  // namespace vnext
