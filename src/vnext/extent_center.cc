#include "vnext/extent_center.h"

#include <algorithm>

namespace vnext {

void ExtentCenter::ApplySyncReport(NodeId node,
                                   const std::vector<ExtentRecord>& extents) {
  // Drop extents previously attributed to this node that the ground-truth
  // report no longer lists.
  for (auto it = locations_.begin(); it != locations_.end();) {
    auto& [extent, nodes] = *it;
    const bool listed =
        std::any_of(extents.begin(), extents.end(),
                    [&](const ExtentRecord& r) { return r.extent == extent; });
    if (!listed) {
      nodes.erase(node);
    }
    it = nodes.empty() ? locations_.erase(it) : std::next(it);
  }
  // (Re-)attribute everything the report lists.
  for (const ExtentRecord& record : extents) {
    locations_[record.extent][node] = record;
  }
}

void ExtentCenter::RemoveNode(NodeId node) {
  for (auto it = locations_.begin(); it != locations_.end();) {
    it->second.erase(node);
    it = it->second.empty() ? locations_.erase(it) : std::next(it);
  }
}

void ExtentCenter::AddOrUpdate(NodeId node, const ExtentRecord& record) {
  locations_[record.extent][node] = record;
}

void ExtentCenter::Remove(NodeId node, ExtentId extent) {
  auto it = locations_.find(extent);
  if (it == locations_.end()) return;
  it->second.erase(node);
  if (it->second.empty()) {
    locations_.erase(it);
  }
}

std::size_t ExtentCenter::ReplicaCount(ExtentId extent) const {
  auto it = locations_.find(extent);
  return it == locations_.end() ? 0 : it->second.size();
}

bool ExtentCenter::HasReplicaAt(ExtentId extent, NodeId node) const {
  auto it = locations_.find(extent);
  return it != locations_.end() && it->second.contains(node);
}

std::vector<NodeId> ExtentCenter::ReplicaLocations(ExtentId extent) const {
  std::vector<NodeId> nodes;
  if (auto it = locations_.find(extent); it != locations_.end()) {
    nodes.reserve(it->second.size());
    for (const auto& [node, record] : it->second) {
      nodes.push_back(node);
    }
  }
  return nodes;
}

std::vector<ExtentId> ExtentCenter::KnownExtents() const {
  std::vector<ExtentId> extents;
  extents.reserve(locations_.size());
  for (const auto& [extent, nodes] : locations_) {
    extents.push_back(extent);
  }
  return extents;
}

std::vector<ExtentId> ExtentCenter::ExtentsBelow(std::size_t target) const {
  std::vector<ExtentId> extents;
  for (const auto& [extent, nodes] : locations_) {
    if (nodes.size() < target) {
      extents.push_back(extent);
    }
  }
  return extents;
}

std::vector<ExtentRecord> ExtentCenter::RecordsAt(NodeId node) const {
  std::vector<ExtentRecord> records;
  for (const auto& [extent, nodes] : locations_) {
    if (auto it = nodes.find(node); it != nodes.end()) {
      records.push_back(it->second);
    }
  }
  return records;
}

}  // namespace vnext
