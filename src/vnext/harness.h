// SysTest — Azure Storage vNext case study (§3): harness assembly (Fig. 4).
#pragma once

#include "core/engine.h"
#include "vnext/testing_driver.h"

namespace vnext {

/// Builds the Fig. 4 harness: RepairMonitor + TestingDriver (which in turn
/// launches the wrapped ExtentManager, the modeled ENs and all timers).
systest::Harness MakeExtentRepairHarness(const DriverOptions& options);

/// Engine configuration tuned for this harness: executions always run to the
/// step bound (the timers are unbounded), so liveness detection uses the
/// temperature heuristic.
systest::TestConfig DefaultConfig(systest::StrategyName strategy = {});

}  // namespace vnext
