#include "vnext/extent_manager.h"

#include <cassert>

namespace vnext {

ExtentManager::ExtentManager(ExtentManagerOptions options)
    : options_(options) {}

void ExtentManager::ProcessMessage(const Message& message) {
  switch (message.GetType()) {
    case Message::Type::kHeartbeat:
      ProcessHeartbeat(static_cast<const HeartbeatMessage&>(message));
      break;
    case Message::Type::kSyncReport:
      ProcessSyncReport(static_cast<const SyncReportMessage&>(message));
      break;
    case Message::Type::kRepairRequest:
      // Repair requests are outbound-only; receiving one is a protocol error.
      assert(false && "ExtentManager received a RepairRequest");
      break;
  }
}

void ExtentManager::ProcessHeartbeat(const HeartbeatMessage& heartbeat) {
  // Known or new, the EN is (re-)registered with a fresh heartbeat time;
  // this is how newly launched ENs join the partition.
  node_map_[heartbeat.node] = clock_;
}

void ExtentManager::ProcessSyncReport(const SyncReportMessage& report) {
  if (options_.fix_stale_sync_report && !node_map_.contains(report.node)) {
    // FIX for the §3.6 liveness bug: this EN has been expired (or never
    // registered); applying its report would resurrect ExtentCenter records
    // for a node the expiration loop will never clean up again.
    return;
  }
  // UNFIXED PATH: the report is applied unconditionally — "the culprit is in
  // step (iv), where ExtMgr receives a sync report from EN0 after deleting
  // the EN" (§3.6).
  center_.ApplySyncReport(report.node, report.extents);
}

void ExtentManager::ProcessExpirationTick() {
  ++clock_;
  for (auto it = node_map_.begin(); it != node_map_.end();) {
    const auto& [node, last_heartbeat] = *it;
    if (clock_ - last_heartbeat > options_.heartbeat_expiry_ticks) {
      // Remove the expired EN from ExtentNodeMap and delete its extents
      // from ExtentCenter (Fig. 6's EN expiration loop).
      center_.RemoveNode(node);
      it = node_map_.erase(it);
    } else {
      ++it;
    }
  }
}

NodeId ExtentManager::ChooseRepairDestination(ExtentId extent) const {
  for (const auto& [node, last_heartbeat] : node_map_) {
    if (!center_.HasReplicaAt(extent, node)) {
      return node;
    }
  }
  return kInvalidNode;
}

void ExtentManager::ProcessRepairTick() {
  if (network_ == nullptr) {
    return;  // not wired up yet
  }
  // Examine all extents in the ExtentCenter and schedule repair of those
  // with missing replicas (Fig. 6's extent repair loop).
  for (const ExtentId extent : center_.ExtentsBelow(options_.replica_target)) {
    const std::vector<NodeId> sources = center_.ReplicaLocations(extent);
    if (sources.empty()) {
      continue;  // no surviving replica to copy from — data loss, not repair
    }
    const NodeId destination = ChooseRepairDestination(extent);
    if (destination == kInvalidNode) {
      continue;  // no live EN without a replica
    }
    ++repairs_scheduled_;
    network_->SendMessage(destination,
                          std::make_shared<const RepairRequestMessage>(
                              destination, extent, sources.front()));
  }
}

}  // namespace vnext
