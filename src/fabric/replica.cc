#include "fabric/replica.h"

namespace fabric {

std::string_view ToString(ReplicaRole role) noexcept {
  switch (role) {
    case ReplicaRole::kNone:
      return "None";
    case ReplicaRole::kPrimary:
      return "Primary";
    case ReplicaRole::kActiveSecondary:
      return "ActiveSecondary";
    case ReplicaRole::kIdleSecondary:
      return "IdleSecondary";
  }
  return "?";
}

ReplicaMachine::ReplicaMachine(systest::MachineId cluster,
                               ReplicaRole initial_role)
    : cluster_(cluster), role_(initial_role) {
  State("Running")
      .On<RoleEvent>(&ReplicaMachine::OnRole)
      .On<MembershipEvent>(&ReplicaMachine::OnMembership)
      .On<ForwardedOp>(&ReplicaMachine::OnForwardedOp)
      .On<BuildSecondary>(&ReplicaMachine::OnBuild)
      .On<CopyState>(&ReplicaMachine::OnCopyState)
      .On<ReplicateOp>(&ReplicaMachine::OnReplicateOp)
      .On<AuditBarrier>(&ReplicaMachine::OnAudit);
  SetStart("Running");
}

void ReplicaMachine::OnCrash() { Send<ReplicaCrashed>(cluster_, Id()); }

void ReplicaMachine::OnRole(const RoleEvent& role) { role_ = role.role; }

void ReplicaMachine::OnMembership(const MembershipEvent& membership) {
  replication_targets_ = membership.targets;
}

void ReplicaMachine::Apply(std::uint64_t op, std::int64_t delta) {
  if (state_.applied.contains(op)) {
    return;  // duplicate (resubmitted after failover): exactly-once via dedup
  }
  state_.applied.emplace(op, delta);
  state_.total += delta;
}

void ReplicaMachine::OnForwardedOp(const ForwardedOp& op) {
  Assert(role_ == ReplicaRole::kPrimary,
         "client operation forwarded to a non-primary replica");
  Apply(op.op, op.delta);
  for (const systest::MachineId target : replication_targets_) {
    Send<ReplicateOp>(target, op.op, op.delta);
  }
  Send<OpApplied>(cluster_, op.op);
}

void ReplicaMachine::OnBuild(const BuildSecondary& build) {
  Assert(role_ == ReplicaRole::kPrimary, "only the primary builds secondaries");
  // Send the full state, then include the idle secondary in the replication
  // stream so no operation falls between the copy and the promotion.
  Send<CopyState>(build.target, state_);
}

void ReplicaMachine::OnCopyState(const CopyState& copy) {
  // Duplicate and even STALE copies can legitimately arrive: a killed
  // primary may still drain its queue and emit a copy snapshotted before
  // operations this replica has already applied (the "zombie primary"). The
  // state is a grow-only op map, so merging is always safe — adopting the
  // snapshot wholesale would lose the newer operations. Only a primary must
  // never consume a copy.
  Assert(role_ == ReplicaRole::kIdleSecondary ||
             role_ == ReplicaRole::kActiveSecondary,
         [&] {
           return "state copy delivered to a " +
                  std::string(ToString(role_)) + " replica";
         });
  for (const auto& [op, delta] : copy.state.applied) {
    Apply(op, delta);
  }
  Send<CopyDone>(cluster_, Id());
}

void ReplicaMachine::OnReplicateOp(const ReplicateOp& op) {
  Assert(role_ == ReplicaRole::kActiveSecondary ||
             role_ == ReplicaRole::kIdleSecondary ||
             role_ == ReplicaRole::kPrimary,
         "replication delivered to a role-less replica");
  const bool fresh = !state_.applied.contains(op.op);
  Apply(op.op, op.delta);
  if (fresh && role_ == ReplicaRole::kPrimary) {
    // Catch-up forwarding: a replication from a dead ("zombie") primary may
    // reach the current primary after it built a fresh secondary from a
    // snapshot that predates the op. Forwarding newly-applied replications
    // to the current targets closes that gap; deduplication keeps the
    // forwarding loop-free.
    for (const systest::MachineId target : replication_targets_) {
      Send<ReplicateOp>(target, op.op, op.delta);
    }
  }
}

void ReplicaMachine::OnAudit(const AuditBarrier& audit) {
  Send<AuditReport>(audit.report_to, Id(), state_.total);
  if (role_ == ReplicaRole::kPrimary) {
    // Pass the barrier down the replication stream so the secondaries'
    // reports are ordered behind everything we replicated to them.
    for (const systest::MachineId target : replication_targets_) {
      Send<AuditBarrier>(target, audit.report_to);
    }
  }
}

}  // namespace fabric
