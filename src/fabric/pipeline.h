// SysTest — Azure Service Fabric case study (§5): CScale-like pipeline.
//
// "CScale chains multiple Fabric services, which communicate via remote
// procedure calls. To close the system, we modeled RPCs using
// PSharp.Send(...)". This module models one such chain: an upstream stage
// emits derived records to a downstream aggregator whose routing
// configuration arrives concurrently with the first records. The bug found
// in CScale was a NullReferenceException; its model analogue here is the
// aggregator dereferencing the not-yet-arrived configuration
// (FabricBugs::unguarded_pipeline_config).
#pragma once

#include <optional>

#include "core/runtime.h"
#include "fabric/events.h"

namespace fabric {

/// Downstream aggregation stage. Correct behavior: records that arrive
/// before the configuration are deferred; buggy behavior: the configuration
/// is dereferenced unconditionally.
class AggregatorMachine final : public systest::Machine {
 public:
  /// The constructor declares a DIFFERENT state graph when the bug is
  /// injected, so this type cannot share compiled declarations per type.
  static constexpr bool kShareStateDecls = false;

  AggregatorMachine(systest::MachineId driver, int expected_records,
                    FabricBugs bugs);

 private:
  void OnConfig(const PipelineConfig& config);
  void OnRecordUnconfigured(const PipelineRecord& record);
  void OnRecord(const PipelineRecord& record);

  void Account(const PipelineRecord& record);
  void MaybeFinish();

  systest::MachineId driver_;
  int expected_records_;
  FabricBugs bugs_;
  std::optional<std::int64_t> scale_;
  std::int64_t aggregate_ = 0;
  int seen_ = 0;
};

/// Upstream stage: transforms client-visible values into derived records and
/// ships them over the modeled RPC channel.
class PipelineSourceMachine final : public systest::Machine {
 public:
  PipelineSourceMachine(systest::MachineId aggregator, int records,
                        std::uint64_t value_space);

 private:
  void OnStart();

  systest::MachineId aggregator_;
  int records_;
  std::uint64_t value_space_;
};

}  // namespace fabric
