// Scenario registrations for the Azure Service Fabric case study (§5):
// failover with the promote-during-copy role bug, the CScale-like pipeline
// with the unguarded configuration dereference, and their fixed controls.
#include "api/scenario_registry.h"
#include "fabric/harness.h"

namespace fabric {
namespace {

using systest::api::ParamMap;
using systest::api::ParamSpec;
using systest::api::Scenario;

FailoverOptions FailoverFrom(const ParamMap& params) {
  FailoverOptions options;
  options.replicas = params.GetUint("replicas", options.replicas);
  options.client_ops =
      static_cast<int>(params.GetUint("client-ops", options.client_ops));
  options.value_space = params.GetUint("value-space", options.value_space);
  options.failures =
      static_cast<int>(params.GetUint("failures", options.failures));
  return options;
}

PipelineOptions PipelineFrom(const ParamMap& params) {
  PipelineOptions options;
  options.records =
      static_cast<int>(params.GetUint("records", options.records));
  options.value_space = params.GetUint("value-space", options.value_space);
  options.scale = params.GetInt("scale", options.scale);
  return options;
}

std::vector<ParamSpec> FailoverParams() {
  return {
      {"replicas", "replica count (default 3)"},
      {"client-ops", "acknowledged counter operations (default 4)"},
      {"value-space", "distinct operation values (default 3)"},
      {"failures", "primary failures injected (default 2)"},
  };
}

std::vector<ParamSpec> PipelineParams() {
  return {
      {"records", "records pushed through the pipeline (default 3)"},
      {"value-space", "distinct record values (default 3)"},
      {"scale", "aggregator scale factor (default 2)"},
  };
}

Scenario Failover(const char* name, const char* description, bool buggy) {
  Scenario s;
  s.name = name;
  s.description = description;
  s.tags = {"fabric", "safety", buggy ? "buggy" : "fixed"};
  s.params = FailoverParams();
  s.make = [buggy](const ParamMap& params) {
    FailoverOptions options = FailoverFrom(params);
    options.bugs.promote_during_copy = buggy;
    return MakeFailoverHarness(options);
  };
  s.default_config = [] { return DefaultConfig(); };
  return s;
}

Scenario Pipeline(const char* name, const char* description, bool buggy) {
  Scenario s;
  s.name = name;
  s.description = description;
  s.tags = {"fabric", "safety", buggy ? "buggy" : "fixed"};
  s.params = PipelineParams();
  s.make = [buggy](const ParamMap& params) {
    PipelineOptions options = PipelineFrom(params);
    options.bugs.unguarded_pipeline_config = buggy;
    return MakePipelineHarness(options);
  };
  s.default_config = [] { return DefaultConfig(); };
  return s;
}

SYSTEST_REGISTER_SCENARIO(fabric_failover) {
  return Failover("fabric-failover",
                  "sec. 5 Service Fabric failover, promote-during-copy role "
                  "assertion",
                  /*buggy=*/true);
}

SYSTEST_REGISTER_SCENARIO(fabric_failover_fixed) {
  return Failover("fabric-failover-fixed",
                  "sec. 5 Service Fabric failover with the promotion guard "
                  "(control)",
                  /*buggy=*/false);
}

// Production-shaped crash scenario (fault plane): a reconfiguration adds a
// node to the replica set, and the PRIMARY is crashable exactly while the
// build is in flight — the scheduler picks the crash point via the
// TestConfig::max_crashes budget (SetCrashable + budgets, no failure timer).
// With the promotion guard on this must converge under every placement; the
// "buggy" param re-introduces the sec. 5 promote-during-copy bug, which the
// crash-driven failover rediscovers.
SYSTEST_REGISTER_SCENARIO(fabric_primary_crash_during_reconfig) {
  Scenario s;
  s.name = "fabric-primary-crash-during-reconfig";
  s.description =
      "sec. 5 Service Fabric reconfiguration (node add) with the primary "
      "under scheduler-controlled crashes while the build is pending";
  s.tags = {"fabric", "safety", "crash-recovery", "fixed"};
  s.params = {
      {"replicas", "replica count (default 3)"},
      {"client-ops", "acknowledged counter operations (default 4)"},
      {"value-space", "distinct operation values (default 3)"},
      {"added-nodes", "idle secondaries built at start (default 1)"},
      {"buggy", "re-introduce the promote-during-copy bug (default false)"},
  };
  s.make = [](const ParamMap& params) {
    ReconfigOptions options;
    options.replicas = params.GetUint("replicas", options.replicas);
    options.client_ops =
        static_cast<int>(params.GetUint("client-ops", options.client_ops));
    options.value_space =
        params.GetUint("value-space", options.value_space);
    options.added_nodes =
        params.GetUint("added-nodes", options.added_nodes);
    options.bugs.promote_during_copy = params.GetBool("buggy", false);
    return MakeReconfigHarness(options);
  };
  s.default_config = [] {
    systest::TestConfig config = DefaultConfig();
    // One fault-plane crash, permanent (the cluster launches a replacement;
    // the replica process itself never comes back).
    config.max_crashes = 1;
    config.max_restarts = 0;
    return config;
  };
  return s;
}

SYSTEST_REGISTER_SCENARIO(fabric_pipeline) {
  return Pipeline("fabric-pipeline",
                  "sec. 5 CScale-like pipeline, unguarded configuration "
                  "dereference",
                  /*buggy=*/true);
}

SYSTEST_REGISTER_SCENARIO(fabric_pipeline_fixed) {
  return Pipeline("fabric-pipeline-fixed",
                  "sec. 5 CScale-like pipeline with the configuration guard "
                  "(control)",
                  /*buggy=*/false);
}

}  // namespace
}  // namespace fabric
