// SysTest — Azure Service Fabric case study (§5): harness assembly.
//
// Two scenarios, mirroring the paper:
//  * MakeFailoverHarness — a simple stateful service (counter) running on
//    the Fabric model; the driver fails the primary at nondeterministic
//    points (twice, so a failure can hit while a replacement secondary is
//    still being built); a final audit checks that every replica converged
//    to the sum of acknowledged operations. The promote-during-copy bug
//    fires the model's role assertion.
//  * MakePipelineHarness — the CScale-like chained services over modeled
//    RPC; the configuration/record race triggers the modeled
//    NullReferenceException when unguarded.
#pragma once

#include "core/engine.h"
#include "fabric/events.h"

namespace fabric {

struct FailoverOptions {
  FabricBugs bugs;
  std::size_t replicas = 3;
  int client_ops = 4;
  std::uint64_t value_space = 3;
  int failures = 2;
};

systest::Harness MakeFailoverHarness(const FailoverOptions& options);

/// Crash-during-reconfig scenario (fault plane): the cluster starts with
/// `added_nodes` fresh idle secondaries being built — a reconfiguration —
/// and hands the PRIMARY to the fault plane exactly while a build is
/// pending. The crash budget (TestConfig::max_crashes) decides whether and
/// where the primary dies inside that window; the cluster learns about it
/// only through a racing ReplicaCrashed notification. The audit runs once
/// the client is done AND the reconfiguration drained, and expects
/// replicas + added_nodes converged reports.
struct ReconfigOptions {
  FabricBugs bugs;
  std::size_t replicas = 3;
  int client_ops = 4;
  std::uint64_t value_space = 3;
  std::size_t added_nodes = 1;
};

systest::Harness MakeReconfigHarness(const ReconfigOptions& options);

struct PipelineOptions {
  FabricBugs bugs;
  int records = 3;
  std::uint64_t value_space = 3;
  std::int64_t scale = 2;
};

systest::Harness MakePipelineHarness(const PipelineOptions& options);

/// Engine configuration tuned for the Fabric harnesses.
systest::TestConfig DefaultConfig(systest::StrategyName strategy = {});

}  // namespace fabric
