#include "fabric/harness.h"

#include "core/timer.h"
#include "fabric/cluster.h"
#include "fabric/pipeline.h"
#include "fabric/replica.h"

namespace fabric {

namespace {

/// Liveness monitor: hot until the scenario's final check completes.
class ScenarioLivenessMonitor final : public systest::Monitor {
 public:
  static constexpr bool kReusableRuntime = true;  // stateless beyond control state

  ScenarioLivenessMonitor() {
    State("Running").Hot().On<NotifyScenarioDone>(&ScenarioLivenessMonitor::OnDone);
    State("Done").Cold().Ignore<NotifyScenarioDone>();
    SetStart("Running");
  }

 private:
  void OnDone() { Goto("Done"); }
};

/// Client: sends nondeterministically generated counter increments and waits
/// for each acknowledgement (paper §2.3 pattern).
class CounterClientMachine final : public systest::Machine {
 public:
  CounterClientMachine(systest::MachineId cluster, systest::MachineId driver,
                       int ops, std::uint64_t value_space)
      : cluster_(cluster), driver_(driver), ops_(ops),
        value_space_(value_space) {
    State("Driving").OnEntry(&CounterClientMachine::Run);
    SetStart("Driving");
  }

 private:
  systest::Task Run() {
    std::int64_t total = 0;
    for (int i = 0; i < ops_; ++i) {
      const std::int64_t delta =
          static_cast<std::int64_t>(NondetInt(value_space_)) + 1;
      total += delta;
      Send<ClientOp>(cluster_, Id(), static_cast<std::uint64_t>(i + 1), delta);
      for (;;) {
        auto ack = co_await Receive<OpAck>();
        if (ack->op == static_cast<std::uint64_t>(i + 1)) {
          break;  // duplicate acks for resubmitted ops are possible
        }
      }
    }
    Send<ClientDone>(driver_, total);
    Halt();
  }

  systest::MachineId cluster_;
  systest::MachineId driver_;
  int ops_;
  std::uint64_t value_space_;
};

/// Failover driver: injects primary failures at nondeterministic times via a
/// modeled timer, then audits convergence.
class FailoverDriverMachine final : public systest::Machine {
 public:
  /// Execution recycling: the cluster, client and timer are created
  /// mid-execution (truncated by the reset); only the driver's counters
  /// need restoring.
  static constexpr bool kReusableRuntime = true;

  explicit FailoverDriverMachine(FailoverOptions options) : options_(options) {
    State("Driving")
        .OnEntry(&FailoverDriverMachine::OnStart)
        .On<systest::TimerTick>(&FailoverDriverMachine::OnTick)
        .On<RepairComplete>(&FailoverDriverMachine::OnRepair)
        .On<ClientDone>(&FailoverDriverMachine::OnClientDone)
        .On<AuditReport>(&FailoverDriverMachine::OnAuditReport);
    SetStart("Driving");
  }

 private:
  void OnReset() override {
    cluster_ = {};
    failure_timer_ = {};
    failures_injected_ = 0;
    repairs_done_ = 0;
    client_done_ = false;
    audit_sent_ = false;
    audit_reports_ = 0;
    expected_total_ = 0;
  }

  void OnStart() {
    cluster_ = Create<FabricClusterMachine>("FabricCluster", options_.replicas,
                                            options_.bugs, Id());
    Create<CounterClientMachine>("Client", cluster_, Id(), options_.client_ops,
                                 options_.value_space);
    failure_timer_ = Create<systest::TimerMachine>("FailureTimer", Id(),
                                                   /*max_rounds=*/0);
  }

  void OnTick(const systest::TimerTick& tick) {
    Send<systest::TickAck>(tick.timer);
    if (failures_injected_ < options_.failures) {
      ++failures_injected_;
      Send<InjectPrimaryFailure>(cluster_);
    }
    if (failures_injected_ == options_.failures) {
      Send<systest::CancelTimer>(failure_timer_);
    }
  }

  void OnRepair(const RepairComplete&) {
    ++repairs_done_;
    MaybeAudit();
  }

  void OnClientDone(const ClientDone& done) {
    expected_total_ = done.total;
    client_done_ = true;
    MaybeAudit();
  }

  void MaybeAudit() {
    if (client_done_ && repairs_done_ == failures_injected_ &&
        failures_injected_ == options_.failures && !audit_sent_) {
      audit_sent_ = true;
      Send<AuditBarrier>(cluster_, Id());
    }
  }

  void OnAuditReport(const AuditReport& report) {
    Assert(report.total == expected_total_, [&] {
      return "replica diverged after failover: reports " +
             std::to_string(report.total) + " but the client accumulated " +
             std::to_string(expected_total_);
    });
    if (++audit_reports_ == static_cast<int>(options_.replicas)) {
      Notify<ScenarioLivenessMonitor, NotifyScenarioDone>();
      Halt();
    }
  }

  FailoverOptions options_;
  systest::MachineId cluster_;
  systest::MachineId failure_timer_;
  int failures_injected_ = 0;
  int repairs_done_ = 0;
  bool client_done_ = false;
  bool audit_sent_ = false;
  int audit_reports_ = 0;
  std::int64_t expected_total_ = 0;
};

/// Reconfig driver: no failure timer — the fault plane owns the crash (the
/// cluster makes the primary crashable while the initial builds are
/// pending). Audits once the client finished and the reconfiguration
/// drained; every replica alive at that point (original set, added nodes,
/// and any replacement launched after a crash) must report the client's
/// acknowledged total.
class ReconfigDriverMachine final : public systest::Machine {
 public:
  static constexpr bool kReusableRuntime = true;

  explicit ReconfigDriverMachine(ReconfigOptions options) : options_(options) {
    State("Driving")
        .OnEntry(&ReconfigDriverMachine::OnStart)
        .On<RepairComplete>(&ReconfigDriverMachine::OnRepair)
        .On<ReconfigDone>(&ReconfigDriverMachine::OnReconfigDone)
        .On<ClientDone>(&ReconfigDriverMachine::OnClientDone)
        .On<AuditReport>(&ReconfigDriverMachine::OnAuditReport);
    SetStart("Driving");
  }

 private:
  void OnReset() override {
    cluster_ = {};
    reconfig_done_ = options_.added_nodes == 0;
    client_done_ = false;
    audit_sent_ = false;
    audit_reports_ = 0;
    expected_total_ = 0;
  }

  void OnStart() {
    cluster_ = Create<FabricClusterMachine>(
        "FabricCluster", options_.replicas, options_.bugs, Id(),
        /*initial_builds=*/options_.added_nodes, /*crashable_primary=*/true);
    Create<CounterClientMachine>("Client", cluster_, Id(), options_.client_ops,
                                 options_.value_space);
  }

  void OnRepair(const RepairComplete&) {
    // Promotions are counted by the cluster's own ReconfigDone (a crash adds
    // a replacement build, so the count is schedule-dependent here).
  }

  void OnReconfigDone() {
    reconfig_done_ = true;
    MaybeAudit();
  }

  void OnClientDone(const ClientDone& done) {
    expected_total_ = done.total;
    client_done_ = true;
    MaybeAudit();
  }

  void MaybeAudit() {
    if (client_done_ && reconfig_done_ && !audit_sent_) {
      audit_sent_ = true;
      Send<AuditBarrier>(cluster_, Id());
    }
  }

  void OnAuditReport(const AuditReport& report) {
    Assert(report.total == expected_total_, [&] {
      return "replica diverged after reconfig: reports " +
             std::to_string(report.total) + " but the client accumulated " +
             std::to_string(expected_total_);
    });
    // Replica count is crash-invariant: every crash launches exactly one
    // replacement, so the audit always expects the original set plus the
    // added nodes.
    const int expected =
        static_cast<int>(options_.replicas + options_.added_nodes);
    if (++audit_reports_ == expected) {
      Notify<ScenarioLivenessMonitor, NotifyScenarioDone>();
      Halt();
    }
  }

  ReconfigOptions options_;
  systest::MachineId cluster_;
  // With no added nodes there is no reconfiguration to wait for (and the
  // cluster never reports one).
  bool reconfig_done_ = options_.added_nodes == 0;
  bool client_done_ = false;
  bool audit_sent_ = false;
  int audit_reports_ = 0;
  std::int64_t expected_total_ = 0;
};

/// Delivers the aggregator's configuration from its own machine so that the
/// delivery genuinely races the upstream records under the scheduler.
class ConfigDeployerMachine final : public systest::Machine {
 public:
  ConfigDeployerMachine(systest::MachineId aggregator, std::int64_t scale)
      : aggregator_(aggregator), scale_(scale) {
    State("Deploying").OnEntry(&ConfigDeployerMachine::OnStart);
    SetStart("Deploying");
  }

 private:
  void OnStart() {
    Send<PipelineConfig>(aggregator_, scale_);
    Halt();
  }

  systest::MachineId aggregator_;
  std::int64_t scale_;
};

/// Pipeline driver: deploys the aggregator, races its configuration against
/// the upstream records, and checks the final aggregate.
class PipelineDriverMachine final : public systest::Machine {
 public:
  static constexpr bool kReusableRuntime = true;  // options_ is const-after-ctor

  explicit PipelineDriverMachine(PipelineOptions options) : options_(options) {
    State("Driving")
        .OnEntry(&PipelineDriverMachine::OnStart)
        .On<PipelineResult>(&PipelineDriverMachine::OnResult);
    SetStart("Driving");
  }

 private:
  void OnStart() {
    const systest::MachineId aggregator = Create<AggregatorMachine>(
        "Aggregator", Id(), options_.records, options_.bugs);
    // The source starts emitting concurrently with the configuration
    // delivery — the race at the heart of the modeled CScale bug.
    Create<PipelineSourceMachine>("PipelineSource", aggregator,
                                  options_.records, options_.value_space);
    Create<ConfigDeployerMachine>("ConfigDeployer", aggregator,
                                  options_.scale);
  }

  void OnResult(const PipelineResult& result) {
    Assert(result.value % options_.scale == 0,
           "aggregate not scaled by the configuration");
    Notify<ScenarioLivenessMonitor, NotifyScenarioDone>();
    Halt();
  }

  PipelineOptions options_;
};

}  // namespace

systest::Harness MakeFailoverHarness(const FailoverOptions& options) {
  return [options](systest::Runtime& rt) {
    rt.RegisterMonitor<ScenarioLivenessMonitor>("ScenarioLivenessMonitor");
    rt.CreateMachine<FailoverDriverMachine>("FailoverDriver", options);
  };
}

systest::Harness MakeReconfigHarness(const ReconfigOptions& options) {
  return [options](systest::Runtime& rt) {
    rt.RegisterMonitor<ScenarioLivenessMonitor>("ScenarioLivenessMonitor");
    rt.CreateMachine<ReconfigDriverMachine>("ReconfigDriver", options);
  };
}

systest::Harness MakePipelineHarness(const PipelineOptions& options) {
  return [options](systest::Runtime& rt) {
    rt.RegisterMonitor<ScenarioLivenessMonitor>("ScenarioLivenessMonitor");
    rt.CreateMachine<PipelineDriverMachine>("PipelineDriver", options);
  };
}

systest::TestConfig DefaultConfig(systest::StrategyName strategy) {
  systest::TestConfig config;
  config.iterations = 100'000;
  config.max_steps = 5'000;
  // The scenario monitor is hot from the first step, so the threshold only
  // flags executions that fail to finish anywhere near the bound.
  config.liveness_temperature_threshold = 4'000;
  config.strategy = strategy;
  config.strategy_budget = 2;
  config.seed = 2016;
  return config;
}

}  // namespace fabric
