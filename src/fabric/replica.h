// SysTest — Azure Service Fabric case study (§5): replica machine.
//
// Hosts one instance of the counter user service. The primary applies
// forwarded client operations and replicates them; secondaries apply the
// replication stream; a fresh idle secondary first applies a full state copy
// ("build") and reports readiness for promotion. Deduplication by operation
// id makes the cluster's resubmission after failover exactly-once.
#pragma once

#include "core/runtime.h"
#include "fabric/events.h"

namespace fabric {

class ReplicaMachine final : public systest::Machine {
 public:
  ReplicaMachine(systest::MachineId cluster, ReplicaRole initial_role);

  [[nodiscard]] ReplicaRole Role() const noexcept { return role_; }
  [[nodiscard]] const ServiceState& CurrentState() const noexcept {
    return state_;
  }

 private:
  /// Fault-plane crash hook: tell the cluster this process died. The
  /// notification is an ordinary racing event — the cluster keeps routing to
  /// the dead replica until it processes it (crash-during-reconfig scenario).
  void OnCrash() override;

  void OnRole(const RoleEvent& role);
  void OnMembership(const MembershipEvent& membership);
  void OnForwardedOp(const ForwardedOp& op);
  void OnBuild(const BuildSecondary& build);
  void OnCopyState(const CopyState& copy);
  void OnReplicateOp(const ReplicateOp& op);
  void OnAudit(const AuditBarrier& audit);

  void Apply(std::uint64_t op, std::int64_t delta);

  systest::MachineId cluster_;
  ReplicaRole role_;
  ServiceState state_;
  std::vector<systest::MachineId> replication_targets_;
};

}  // namespace fabric
