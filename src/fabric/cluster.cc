#include "fabric/cluster.h"

#include "fabric/replica.h"

namespace fabric {

FabricClusterMachine::FabricClusterMachine(std::size_t replica_count,
                                           FabricBugs bugs,
                                           systest::MachineId driver,
                                           std::size_t initial_builds,
                                           bool crashable_primary)
    : replica_count_(replica_count), bugs_(bugs), driver_(driver),
      initial_builds_(initial_builds), crashable_primary_(crashable_primary) {
  State("Managing")
      .OnEntry(&FabricClusterMachine::OnStart)
      .On<ClientOp>(&FabricClusterMachine::OnClientOp)
      .On<OpApplied>(&FabricClusterMachine::OnOpApplied)
      .On<InjectPrimaryFailure>(&FabricClusterMachine::OnInjectFailure)
      .On<ReplicaCrashed>(&FabricClusterMachine::OnReplicaCrashed)
      .On<CopyDone>(&FabricClusterMachine::OnCopyDone)
      .On<AuditBarrier>(&FabricClusterMachine::OnAudit);
  SetStart("Managing");
}

void FabricClusterMachine::OnStart() {
  // One primary plus replica_count-1 active secondaries.
  for (std::size_t i = 0; i < replica_count_; ++i) {
    const ReplicaRole role =
        i == 0 ? ReplicaRole::kPrimary : ReplicaRole::kActiveSecondary;
    const systest::MachineId replica =
        Create<ReplicaMachine>("Replica", Id(), role);
    replicas_[replica] = role;
    if (role == ReplicaRole::kPrimary) {
      primary_ = replica;
    }
  }
  // The reconfiguration: fresh idle secondaries join before the first client
  // op, and the membership broadcast below reaches the primary ahead of any
  // ForwardedOp (same-sender FIFO), so every acknowledged operation is also
  // replicated to the joining nodes.
  for (std::size_t i = 0; i < initial_builds_; ++i) {
    const systest::MachineId fresh =
        Create<ReplicaMachine>("Replica", Id(), ReplicaRole::kIdleSecondary);
    replicas_[fresh] = ReplicaRole::kIdleSecondary;
    pending_builds_.insert(fresh);
  }
  BroadcastMembership();
  for (const systest::MachineId building : pending_builds_) {
    Send<BuildSecondary>(primary_, building);
  }
  UpdateCrashWindow();
}

void FabricClusterMachine::UpdateCrashWindow() {
  if (!crashable_primary_ || !primary_.Valid()) {
    return;
  }
  // The crash window IS the reconfiguration: the primary is a fault-plane
  // candidate exactly while a build is pending. Opening/closing the window
  // inside the handler that changes pending_builds_ is atomic with respect
  // to fault choice points (they sit at step boundaries), so the primary can
  // never crash after the drain of the pending set was reported.
  Rt().SetCrashable(primary_, !pending_builds_.empty());
}

void FabricClusterMachine::BroadcastMembership() {
  std::vector<systest::MachineId> targets;
  for (const auto& [replica, role] : replicas_) {
    if (role == ReplicaRole::kActiveSecondary ||
        role == ReplicaRole::kIdleSecondary) {
      targets.push_back(replica);
    }
  }
  if (primary_.Valid()) {
    Send<MembershipEvent>(primary_, std::move(targets));
  }
}

void FabricClusterMachine::OnClientOp(const ClientOp& op) {
  client_ = op.from;
  outstanding_[op.op] = op.delta;
  Assert(primary_.Valid(),
         "no primary (election happens atomically inside failure handling)");
  Send<ForwardedOp>(primary_, op.op, op.delta);
}

void FabricClusterMachine::OnOpApplied(const OpApplied& applied) {
  if (outstanding_.erase(applied.op) > 0) {
    Send<OpAck>(client_, applied.op);
  }
}

void FabricClusterMachine::OnInjectFailure(const InjectPrimaryFailure&) {
  Assert(primary_.Valid(), "failure injected with no primary");
  // Kill the primary process (P# halt semantics: its queue is dropped).
  Send(primary_, systest::MakeEvent<systest::HaltEvent>());
  FailOverFromDeadPrimary();
}

void FabricClusterMachine::OnReplicaCrashed(const ReplicaCrashed& crashed) {
  if (crashed.replica != primary_) {
    return;  // only the primary is ever a crash candidate in this harness
  }
  FailOverFromDeadPrimary();
  if (audit_pending_) {
    // The primary died with the audit barrier (possibly) still in its queue
    // — nobody has forwarded it down the replication stream. Re-forward to
    // the new primary BEHIND the rebuild and resubmission sends above, so
    // every report still covers the full acknowledged history.
    Send<AuditBarrier>(primary_, audit_report_to_);
  }
}

void FabricClusterMachine::FailOverFromDeadPrimary() {
  replicas_.erase(primary_);
  pending_builds_.erase(primary_);
  primary_ = systest::MachineId{};

  // Elect a new primary. The fixed model elects among ACTIVE secondaries
  // (only they have caught up); the buggy model may also elect an idle
  // secondary that is still waiting for its state copy (§5: "the secondary
  // was then elected to be the new primary").
  std::vector<systest::MachineId> candidates;
  for (const auto& [replica, role] : replicas_) {
    const bool eligible =
        role == ReplicaRole::kActiveSecondary ||
        (bugs_.promote_during_copy && role == ReplicaRole::kIdleSecondary);
    if (eligible) {
      candidates.push_back(replica);
    }
  }
  Assert(!candidates.empty(), "no candidate left to elect as primary");
  const systest::MachineId elected = candidates[NondetInt(candidates.size())];
  const bool elected_was_building = pending_builds_.contains(elected);
  replicas_[elected] = ReplicaRole::kPrimary;
  primary_ = elected;
  Send<RoleEvent>(elected, ReplicaRole::kPrimary);

  if (elected_was_building) {
    // §5, buggy model only: the elected replica "stopped waiting for a copy
    // of the state", and the build pipeline treats the aborted build as
    // complete — promoting what is now the PRIMARY to active secondary.
    pending_builds_.erase(elected);
    Promote(elected);  // fires the role assertion
    return;            // (unreachable: Promote asserts)
  }

  // Launch a replacement idle secondary for the dead primary.
  const systest::MachineId fresh =
      Create<ReplicaMachine>("Replica", Id(), ReplicaRole::kIdleSecondary);
  replicas_[fresh] = ReplicaRole::kIdleSecondary;
  pending_builds_.insert(fresh);
  BroadcastMembership();
  // (Re-)build every in-flight idle secondary from the new primary — the
  // copy the dead primary may have sent can no longer be trusted to be
  // followed by its replication stream.
  for (const systest::MachineId building : pending_builds_) {
    Send<BuildSecondary>(primary_, building);
  }

  // Resubmit every unacknowledged operation to the new primary; replicas
  // deduplicate by op id, so already-applied ops are acked without effect.
  for (const auto& [op, delta] : outstanding_) {
    Send<ForwardedOp>(primary_, op, delta);
  }
  // The replacement build (re-)opened the reconfiguration window: the NEW
  // primary becomes the crash candidate until the builds drain.
  UpdateCrashWindow();
}

void FabricClusterMachine::Promote(systest::MachineId replica) {
  // The §5 assertion: "only a secondary can be promoted to an active
  // secondary".
  Assert(replicas_[replica] == ReplicaRole::kIdleSecondary, [&] {
    return "only a secondary can be promoted to an active secondary (replica "
           "is " +
           std::string(ToString(replicas_[replica])) + ")";
  });
  replicas_[replica] = ReplicaRole::kActiveSecondary;
  Send<RoleEvent>(replica, ReplicaRole::kActiveSecondary);
  // One repair completion per rebuilt replica (each failure spawns exactly
  // one replacement build).
  Send<RepairComplete>(driver_);
}

void FabricClusterMachine::OnCopyDone(const CopyDone& done) {
  if (!replicas_.contains(done.replica) ||
      !pending_builds_.contains(done.replica)) {
    return;  // failed or already handled
  }
  if (!bugs_.promote_during_copy &&
      replicas_[done.replica] != ReplicaRole::kIdleSecondary) {
    // FIX for the §5 bug: a stale copy-completion for a replica that has
    // since changed role must be ignored.
    return;
  }
  pending_builds_.erase(done.replica);
  Promote(done.replica);
  UpdateCrashWindow();
  if (initial_builds_ > 0 && pending_builds_.empty() && !reconfig_reported_) {
    reconfig_reported_ = true;
    Send<ReconfigDone>(driver_);
  }
}

void FabricClusterMachine::OnAudit(const AuditBarrier& audit) {
  audit_pending_ = true;
  audit_report_to_ = audit.report_to;
  // The barrier travels THROUGH the primary's replication stream: the
  // primary reports after applying every forwarded/resubmitted operation and
  // passes the barrier to its targets behind its own replications, so each
  // secondary reports only after applying everything the primary had.
  // (Sending the barrier directly to every replica would race multi-hop
  // replication chains — a bug this harness itself caught.)
  Assert(primary_.Valid(), "audit with no primary");
  Send<AuditBarrier>(primary_, audit.report_to);
}

}  // namespace fabric
