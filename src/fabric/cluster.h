// SysTest — Azure Service Fabric case study (§5): the Fabric model.
//
// The cluster machine models the lowest Fabric API layer the paper targeted:
// it owns the replica set of one stateful service, routes client operations
// to the primary (resubmitting unacknowledged ones after a failover), elects
// a new primary when the primary fails, launches and builds a replacement
// secondary, and promotes it to active secondary once its state copy is
// applied — with the §5 assertion "only a secondary can be promoted to an
// active secondary" guarding the promotion path.
//
// FabricBugs::promote_during_copy re-introduces the bug the paper found in
// its own model: the election may pick the idle secondary that is still
// waiting for its copy, and the promotion path does not ignore the stale
// CopyDone — promoting a primary and firing the assertion.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "core/runtime.h"
#include "fabric/events.h"

namespace fabric {

class FabricClusterMachine final : public systest::Machine {
 public:
  FabricClusterMachine(std::size_t replica_count, FabricBugs bugs,
                       systest::MachineId driver);

 private:
  void OnStart();
  void OnClientOp(const ClientOp& op);
  void OnOpApplied(const OpApplied& applied);
  void OnInjectFailure(const InjectPrimaryFailure& failure);
  void OnCopyDone(const CopyDone& done);
  void OnAudit(const AuditBarrier& audit);

  void BroadcastMembership();
  void Promote(systest::MachineId replica);

  std::size_t replica_count_;
  FabricBugs bugs_;
  systest::MachineId driver_;
  systest::MachineId client_;

  std::map<systest::MachineId, ReplicaRole> replicas_;
  systest::MachineId primary_;
  /// Idle secondaries whose state copy ("build") is still in flight.
  std::set<systest::MachineId> pending_builds_;
  /// Unacknowledged client operations, resubmitted to a new primary after
  /// failover (deduplication at the replicas makes this exactly-once).
  std::map<std::uint64_t, std::int64_t> outstanding_;
};

}  // namespace fabric
