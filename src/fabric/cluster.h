// SysTest — Azure Service Fabric case study (§5): the Fabric model.
//
// The cluster machine models the lowest Fabric API layer the paper targeted:
// it owns the replica set of one stateful service, routes client operations
// to the primary (resubmitting unacknowledged ones after a failover), elects
// a new primary when the primary fails, launches and builds a replacement
// secondary, and promotes it to active secondary once its state copy is
// applied — with the §5 assertion "only a secondary can be promoted to an
// active secondary" guarding the promotion path.
//
// FabricBugs::promote_during_copy re-introduces the bug the paper found in
// its own model: the election may pick the idle secondary that is still
// waiting for its copy, and the promotion path does not ignore the stale
// CopyDone — promoting a primary and firing the assertion.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "core/runtime.h"
#include "fabric/events.h"

namespace fabric {

class FabricClusterMachine final : public systest::Machine {
 public:
  /// `initial_builds` idle secondaries are launched and built right at
  /// startup — the "reconfiguration" of the crash-during-reconfig scenario;
  /// the cluster sends ReconfigDone to the driver the first time the
  /// pending-build set drains. With `crashable_primary` the current primary
  /// is handed to the fault plane (Runtime::SetCrashable) exactly while a
  /// build is pending, so a crash budget lands inside the reconfiguration
  /// window; the cluster learns about the death asynchronously via
  /// ReplicaCrashed and runs the same failover path as an injected failure.
  FabricClusterMachine(std::size_t replica_count, FabricBugs bugs,
                       systest::MachineId driver,
                       std::size_t initial_builds = 0,
                       bool crashable_primary = false);

 private:
  void OnStart();
  void OnClientOp(const ClientOp& op);
  void OnOpApplied(const OpApplied& applied);
  void OnInjectFailure(const InjectPrimaryFailure& failure);
  void OnReplicaCrashed(const ReplicaCrashed& crashed);
  void OnCopyDone(const CopyDone& done);
  void OnAudit(const AuditBarrier& audit);

  void BroadcastMembership();
  void Promote(systest::MachineId replica);
  /// Shared failover: elect a new primary, launch + build a replacement for
  /// the dead one, resubmit unacknowledged ops. The caller has already made
  /// sure the current primary is dead (halted or crashed).
  void FailOverFromDeadPrimary();
  /// Keeps the fault plane's crash candidacy of the primary in sync with the
  /// reconfiguration window (crashable iff a build is pending).
  void UpdateCrashWindow();

  std::size_t replica_count_;
  FabricBugs bugs_;
  systest::MachineId driver_;
  std::size_t initial_builds_;
  bool crashable_primary_;
  systest::MachineId client_;

  std::map<systest::MachineId, ReplicaRole> replicas_;
  systest::MachineId primary_;
  /// Idle secondaries whose state copy ("build") is still in flight.
  std::set<systest::MachineId> pending_builds_;
  /// Unacknowledged client operations, resubmitted to a new primary after
  /// failover (deduplication at the replicas makes this exactly-once).
  std::map<std::uint64_t, std::int64_t> outstanding_;
  /// Set once the first drain of pending_builds_ was reported to the driver.
  bool reconfig_reported_ = false;
  /// An audit barrier was forwarded to the primary; if the fault plane kills
  /// the primary with the barrier still in its queue, the failover path
  /// re-forwards it to the new primary so the audit cannot get lost.
  bool audit_pending_ = false;
  systest::MachineId audit_report_to_;
};

}  // namespace fabric
