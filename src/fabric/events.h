// SysTest — Azure Service Fabric case study (§5 of the paper).
//
// Events of the P#-style Fabric model: replica roles, client operations,
// state replication, state copy ("build") of fresh secondaries, promotion,
// failure injection and the end-of-scenario audit.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/event.h"
#include "core/strategy.h"

namespace fabric {

/// Role of a replica in the replica set. A fresh replica starts as an idle
/// secondary; it becomes an active secondary only after it has "caught up"
/// by receiving a copy of the primary's state (§5).
enum class ReplicaRole : std::uint8_t {
  kNone,
  kPrimary,
  kActiveSecondary,
  kIdleSecondary,
};

std::string_view ToString(ReplicaRole role) noexcept;

/// Bugs re-introducible in the Fabric model and its user services.
struct FabricBugs {
  /// The §5 model bug: when the primary fails while a new secondary is being
  /// built, the (stale) copy-completion may arrive after that secondary was
  /// elected primary; the unguarded promotion path then promotes a PRIMARY
  /// to active secondary, firing the model's role assertion ("only a
  /// secondary can be promoted to an active secondary").
  bool promote_during_copy = false;

  /// CScale-like pipeline bug: the downstream aggregator dereferences its
  /// routing configuration without checking that it has arrived — the model
  /// analogue of the NullReferenceException found in CScale (§5).
  bool unguarded_pipeline_config = false;
};

/// Replicated state of the counter user service: the map of applied
/// operations (id -> delta) plus the derived sum. Keeping per-op deltas
/// makes the state a grow-only set, so state copies can be MERGED instead of
/// adopted — a stale copy from a "zombie" primary (killed, but still
/// draining its queue) then cannot clobber newer operations, and the
/// cluster's post-failover resubmission is exactly-once by construction.
struct ServiceState {
  std::int64_t total = 0;
  std::map<std::uint64_t, std::int64_t> applied;

  friend bool operator==(const ServiceState&, const ServiceState&) = default;
};

// --- Cluster <-> replica ---

/// Assigns a role to a replica.
struct RoleEvent final : systest::Event {
  explicit RoleEvent(ReplicaRole role) : role(role) {}
  ReplicaRole role;
};

/// Tells the primary the current set of replication targets (active
/// secondaries plus any idle secondary being built).
struct MembershipEvent final : systest::Event {
  explicit MembershipEvent(std::vector<systest::MachineId> targets)
      : targets(std::move(targets)) {}
  std::vector<systest::MachineId> targets;
};

/// Tells the primary to send a full state copy to a freshly launched idle
/// secondary (the "build").
struct BuildSecondary final : systest::Event {
  explicit BuildSecondary(systest::MachineId target) : target(target) {}
  systest::MachineId target;
};

/// Primary -> idle secondary: the full service state.
struct CopyState final : systest::Event {
  explicit CopyState(ServiceState state) : state(std::move(state)) {}
  ServiceState state;
  [[nodiscard]] std::string Name() const override {
    return "CopyState(total=" + std::to_string(state.total) + ",ops=" +
           std::to_string(state.applied.size()) + ")";
  }
};

/// Idle secondary -> cluster: the copy was applied; ready for promotion.
struct CopyDone final : systest::Event {
  explicit CopyDone(systest::MachineId replica) : replica(replica) {}
  systest::MachineId replica;
};

// --- Client path ---

/// Client -> cluster: apply `delta` under operation id `op`.
struct ClientOp final : systest::Event {
  ClientOp(systest::MachineId from, std::uint64_t op, std::int64_t delta)
      : from(from), op(op), delta(delta) {}
  systest::MachineId from;
  std::uint64_t op;
  std::int64_t delta;
};

/// Cluster -> primary: forwarded client operation.
struct ForwardedOp final : systest::Event {
  ForwardedOp(std::uint64_t op, std::int64_t delta) : op(op), delta(delta) {}
  std::uint64_t op;
  std::int64_t delta;
  [[nodiscard]] std::string Name() const override {
    return "ForwardedOp#" + std::to_string(op) + "(+" + std::to_string(delta) + ")";
  }
};

/// Primary -> cluster: the operation was applied (possibly a duplicate that
/// was deduplicated).
struct OpApplied final : systest::Event {
  explicit OpApplied(std::uint64_t op) : op(op) {}
  std::uint64_t op;
};

/// Cluster -> client: acknowledgement.
struct OpAck final : systest::Event {
  explicit OpAck(std::uint64_t op) : op(op) {}
  std::uint64_t op;
};

/// Primary -> secondaries: replicate one operation.
struct ReplicateOp final : systest::Event {
  ReplicateOp(std::uint64_t op, std::int64_t delta) : op(op), delta(delta) {}
  std::uint64_t op;
  std::int64_t delta;
  [[nodiscard]] std::string Name() const override {
    return "ReplicateOp#" + std::to_string(op) + "(+" + std::to_string(delta) + ")";
  }
};

// --- Failure and audit ---

/// Driver -> cluster: fail the current primary now.
struct InjectPrimaryFailure final : systest::Event {};

/// Crashed replica -> cluster (sent from Machine::OnCrash, i.e. by the fault
/// plane, not the driver): the replica's process died at a scheduler-chosen
/// point. Unlike InjectPrimaryFailure this notification races everything
/// else in flight — the cluster may learn about the death only after it
/// already routed traffic (or the audit barrier) into the dead machine.
struct ReplicaCrashed final : systest::Event {
  explicit ReplicaCrashed(systest::MachineId replica) : replica(replica) {}
  systest::MachineId replica;
};

/// Cluster -> driver: the reconfiguration completed — every secondary whose
/// build was pending has been promoted (sent once, on the first time the
/// pending-build set drains; only in harnesses that start with a build in
/// flight).
struct ReconfigDone final : systest::Event {};

/// Cluster -> driver: failover finished (new primary elected, replacement
/// secondary built and promoted).
struct RepairComplete final : systest::Event {};

/// Client -> driver: all operations acknowledged; `total` is the sum of all
/// acknowledged deltas.
struct ClientDone final : systest::Event {
  explicit ClientDone(std::int64_t total) : total(total) {}
  std::int64_t total;
};

/// Driver -> cluster -> primary -> all replicas: audit barrier. Each replica
/// reports its state to the driver after applying everything before the
/// barrier.
struct AuditBarrier final : systest::Event {
  explicit AuditBarrier(systest::MachineId report_to) : report_to(report_to) {}
  systest::MachineId report_to;
};

/// Replica -> driver: audit report.
struct AuditReport final : systest::Event {
  AuditReport(systest::MachineId replica, std::int64_t total)
      : replica(replica), total(total) {}
  systest::MachineId replica;
  std::int64_t total;
  [[nodiscard]] std::string Name() const override {
    return "AuditReport(replica=" + std::to_string(replica.value) +
           ",total=" + std::to_string(total) + ")";
  }
};

// --- Liveness monitor notifications ---

struct NotifyScenarioDone final : systest::Event {};

// --- CScale-like pipeline (modeled RPC, §5) ---

/// Upstream service -> aggregator: a derived record ("RPC" modeled with
/// Send, exactly as the paper closed CScale's network communication).
struct PipelineRecord final : systest::Event {
  explicit PipelineRecord(std::int64_t value) : value(value) {}
  std::int64_t value;
};

/// Deployment -> aggregator: routing configuration (arrives concurrently
/// with the first records — the race behind the CScale bug).
struct PipelineConfig final : systest::Event {
  explicit PipelineConfig(std::int64_t scale) : scale(scale) {}
  std::int64_t scale;
};

/// Aggregator -> driver: final aggregate.
struct PipelineResult final : systest::Event {
  explicit PipelineResult(std::int64_t value) : value(value) {}
  std::int64_t value;
};

}  // namespace fabric
