#include "fabric/pipeline.h"

namespace fabric {

AggregatorMachine::AggregatorMachine(systest::MachineId driver,
                                     int expected_records, FabricBugs bugs)
    : driver_(driver), expected_records_(expected_records), bugs_(bugs) {
  if (bugs_.unguarded_pipeline_config) {
    // BUG (CScale NullReferenceException analogue): a single state whose
    // record handler dereferences the configuration unconditionally.
    State("Running")
        .On<PipelineConfig>(&AggregatorMachine::OnConfig)
        .On<PipelineRecord>(&AggregatorMachine::OnRecordUnconfigured);
    SetStart("Running");
    return;
  }
  // Correct: records are deferred until the configuration has arrived.
  State("Unconfigured")
      .Defer<PipelineRecord>()
      .On<PipelineConfig>(&AggregatorMachine::OnConfig);
  State("Configured").On<PipelineRecord>(&AggregatorMachine::OnRecord);
  SetStart("Unconfigured");
}

void AggregatorMachine::OnConfig(const PipelineConfig& config) {
  scale_ = config.scale;
  if (!bugs_.unguarded_pipeline_config) {
    Goto("Configured");
  }
}

void AggregatorMachine::OnRecordUnconfigured(const PipelineRecord& record) {
  // The unguarded dereference: with no configuration present this is the
  // modeled null-reference crash.
  Assert(scale_.has_value(),
         "null dereference: aggregator consumed a record before its routing "
         "configuration arrived");
  Account(record);
}

void AggregatorMachine::OnRecord(const PipelineRecord& record) {
  Account(record);
}

void AggregatorMachine::Account(const PipelineRecord& record) {
  aggregate_ += record.value * *scale_;
  ++seen_;
  MaybeFinish();
}

void AggregatorMachine::MaybeFinish() {
  if (seen_ == expected_records_) {
    Send<PipelineResult>(driver_, aggregate_);
    Halt();
  }
}

PipelineSourceMachine::PipelineSourceMachine(systest::MachineId aggregator,
                                             int records,
                                             std::uint64_t value_space)
    : aggregator_(aggregator), records_(records), value_space_(value_space) {
  State("Emitting").OnEntry(&PipelineSourceMachine::OnStart);
  SetStart("Emitting");
}

void PipelineSourceMachine::OnStart() {
  for (int i = 0; i < records_; ++i) {
    // Derived record values are chosen through controlled nondeterminism.
    Send<PipelineRecord>(aggregator_,
                         static_cast<std::int64_t>(NondetInt(value_space_)) + 1);
  }
  Halt();
}

}  // namespace fabric
