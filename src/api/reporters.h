// SysTest public API layer.
//
// RunObserver implementations shared by the CLI, examples and CI tooling:
//  * HumanReporter — the classic systest_run output (plan, per-worker
//    breakdown, one-line summary, optional readable-trace tail).
//  * JsonReporter — one machine-readable JSON object per session, for CI
//    smoke sweeps and external dashboards.
#pragma once

#include <cstdio>
#include <string>

#include "api/session.h"

namespace systest::api {

class HumanReporter final : public RunObserver {
 public:
  /// `verbose` additionally prints the tail of the readable execution log
  /// when a bug was found (requires SessionConfig::readable_trace_on_bug).
  explicit HumanReporter(std::FILE* out = stdout, bool verbose = false)
      : out_(out), verbose_(verbose) {}

  void OnStart(const SessionStartInfo& info) override;
  void OnFinish(const SessionReport& report) override;

 private:
  std::FILE* out_;
  bool verbose_;
};

class JsonReporter final : public RunObserver {
 public:
  explicit JsonReporter(std::FILE* out = stdout) : out_(out) {}

  void OnStart(const SessionStartInfo& info) override;
  void OnFinish(const SessionReport& report) override;

  /// The JSON emitted by the most recent OnFinish (exposed for tests).
  [[nodiscard]] const std::string& Last() const noexcept { return last_; }

 private:
  std::FILE* out_;
  std::string last_;
  std::string description_;  ///< scenario description captured at OnStart
};

/// Escapes a string for inclusion in a JSON double-quoted literal.
[[nodiscard]] std::string JsonEscape(const std::string& text);

}  // namespace systest::api
