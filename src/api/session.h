// SysTest public API layer.
//
// TestSession: the one front door for systematic testing. A builder-style
// SessionConfig names a registered scenario and the exploration shape; Run()
// dispatches to the serial TestingEngine, the sharded ParallelTestingEngine,
// the strategy portfolio, or trace replay — all behind the same call:
//
//   auto report = systest::api::TestSession({.scenario = "samplerepl-safety",
//                                            .strategy = "pct",
//                                            .threads = 4}).Run();
//
// RunObserver hooks (on-start / on-iteration / on-bug / on-finish) feed both
// the human reporter and the machine-readable JSON reporter (api/reporters.h)
// and let callers collect per-execution data without touching engine
// internals. The facade adds no scheduling perturbation: a serial session
// produces byte-identical traces to driving TestingEngine directly (pinned
// by the golden-trace guard in tests/api_session_test.cc).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/scenario_registry.h"
#include "core/engine.h"
#include "core/trace.h"
#include "corpus/trace_corpus.h"
#include "explore/parallel_engine.h"
#include "obs/monitor.h"

namespace systest::api {

/// Declarative session description. Only `scenario` is required; everything
/// else defaults to the scenario's registered configuration.
struct SessionConfig {
  /// Registered scenario name (see `systest_run --list`). Required.
  std::string scenario;
  /// Strategy name override ("random", "pct", "pct(5)", "round-robin",
  /// "delay-bounded", any registered third-party name, or "portfolio" to
  /// race the built-in rotation across workers). Empty keeps the scenario's
  /// default.
  std::string strategy;
  /// 0 (default) = serial engine, except portfolio mode which fields
  /// max(6, hardware threads). 1 = serial engine. N > 1 = shard the budget
  /// across N workers.
  int threads = 0;
  /// Scenario parameters; every key must be declared by the scenario.
  ParamMap params;

  // Engine overrides: unset keeps the scenario default.
  std::optional<std::uint64_t> seed;
  std::optional<std::uint64_t> iterations;
  std::optional<std::uint64_t> max_steps;
  std::optional<int> strategy_budget;
  std::optional<double> time_budget_seconds;
  std::optional<bool> stop_on_first_bug;
  /// Stateful exploration (TestConfig::{stateful, fingerprint_payloads,
  /// max_visited}): fingerprint visited program states and prune executions
  /// that reconverge to them. Serial sessions use a private visited set;
  /// parallel/portfolio sessions share one sharded set across all workers.
  std::optional<bool> stateful;
  std::optional<bool> fingerprint_payloads;
  std::optional<std::uint64_t> max_visited;
  /// Hot-level capacity of the tiered visited set
  /// (TestConfig::max_visited_hot): reaching it compacts the exact front
  /// into a sorted run. Unset keeps the default (equal to the max_visited
  /// default, so nothing compacts unless the budget is raised).
  std::optional<std::uint64_t> max_visited_hot;
  /// Spill directory for compacted runs (TestConfig::visited_spill_dir).
  /// Empty/unset keeps runs in memory.
  std::optional<std::string> visited_spill_dir;
  /// Stateful prune-run length override (TestConfig::prune_run).
  std::optional<std::uint64_t> prune_run;
  /// Fault plane (TestConfig::{max_crashes, max_restarts,
  /// drop_probability_den, max_duplications, fault_odds_den}): scheduler-
  /// controlled crash/restart and message drop/duplication budgets. Unset
  /// keeps the scenario's defaults (off for scenarios that don't opt in).
  /// `faults` arms the plane non-destructively: if the resolved config still
  /// has no fault budgets after scenario defaults and the specific overrides
  /// below, crash/restart default to 1/1 — a scenario that ships its own
  /// fault model (or a drop-only override) is left exactly as configured.
  bool faults = false;
  std::optional<std::uint64_t> max_crashes;
  std::optional<std::uint64_t> max_restarts;
  std::optional<std::uint64_t> drop_probability_den;
  std::optional<std::uint64_t> max_duplications;
  std::optional<std::uint64_t> fault_odds_den;
  /// Network partitions (TestConfig::{max_partitions, partition_heal_den})
  /// and pre-sampled fault placement (TestConfig::fault_placement_points).
  /// `partitions` mirrors `faults`: if the resolved config still has no
  /// partition budget after scenario defaults and the overrides below,
  /// max_partitions defaults to 1 (heal odds keep the scenario/default den).
  bool partitions = false;
  std::optional<std::uint64_t> max_partitions;
  std::optional<std::uint64_t> partition_heal_den;
  std::optional<int> fault_placement_points;
  /// Produce the readable execution log on a bug (TestReport::execution_log).
  bool readable_trace_on_bug = false;

  /// Replay mode: re-run a recorded witness instead of exploring. Set the
  /// in-memory trace, or a path to a trace saved with Trace::SaveFile.
  std::optional<Trace> replay_trace;
  std::string replay_file;

  /// Parallel modes: re-run the winning trace on the calling thread and
  /// record whether it reproduced (SessionReport::replay_verified).
  bool verify_replay = true;

  // ---- Observability (README "Observability") ----
  // The metrics plane activates when any of metrics/progress/metrics_out is
  // set; replay mode never observes. Scheduling and traces are bit-for-bit
  // identical with observability on or off.

  /// Collect campaign metrics (and expose the final MetricsSnapshot via the
  /// monitor's samples / RunObserver::OnSnapshot).
  bool metrics = false;
  /// Live single-line progress display on stderr (implies metrics).
  bool progress = false;
  /// Append a JSONL time-series sample every metrics_interval_ms to this
  /// path (implies metrics). Empty = no file.
  std::string metrics_out;
  /// Sampling interval of the CampaignMonitor thread.
  std::uint64_t metrics_interval_ms = 250;
  /// Collect coverage heatmaps into TestReport::coverage (per-machine state
  /// visits, per-event-type deliveries, fault placements; implies metrics).
  bool coverage = false;

  // ---- Coverage-guided exploration (README "Coverage-guided exploration") --
  // The corpus arms when corpus_dir is set OR the strategy is "mutate"
  // (serial/parallel) — portfolio mode needs corpus_dir (or corpus=true)
  // since its strategy name stays "portfolio". Arming forces stateful
  // exploration (the interest signal is the fingerprint-miss count) and, in
  // portfolio mode, converts every third worker to the mutate strategy.
  // Replay mode never arms.

  /// Persist/load the trace corpus at this directory: entries saved by one
  /// run are reloaded by the next, so campaigns resume with their corpus.
  /// Empty = in-memory corpus only (still armed if strategy is "mutate").
  std::string corpus_dir;
  /// Arm the corpus without a directory or a "mutate" strategy override —
  /// e.g. portfolio mode with an in-memory shared corpus.
  bool corpus = false;
  /// Cap on stored corpus entries (default TraceCorpus::kDefaultMaxEntries).
  std::optional<std::uint64_t> corpus_max;
};

/// Aggregate outcome of a session, uniform across all four modes.
struct SessionReport {
  std::string scenario;
  std::string mode;  ///< "serial", "parallel", "portfolio", or "replay"
  TestReport report;
  /// Parallel modes only: per-worker breakdown and the winning worker.
  std::vector<explore::WorkerReport> workers;
  int winning_worker = -1;
  /// Parallel modes with verify_replay: the winning trace reproduced on the
  /// calling thread. Replay mode: the replayed trace reproduced a violation.
  bool replay_verified = false;
  /// Whether replay verification was attempted at all (false when
  /// SessionConfig::verify_replay was disabled) — distinguishes "not
  /// verified" from "verification failed".
  bool replay_verify_attempted = false;
  /// Parallel modes: human-readable exploration plan.
  std::string plan;
  /// Final registry aggregation (empty unless the metrics plane was active).
  /// Taken after every engine worker joined, so totals are exact.
  obs::MetricsSnapshot metrics;
  /// Monitor time-series retained in memory (empty unless metrics).
  std::vector<obs::MetricsSample> samples;
  /// Coverage-guided exploration: true when the run fed a trace corpus;
  /// `corpus` then carries its end-of-run counters (reporters surface them).
  bool corpus_on = false;
  corpus::CorpusStats corpus;

  [[nodiscard]] std::string BreakdownTable() const {
    return explore::BreakdownTable(workers);
  }
};

/// Context handed to RunObserver::OnStart once the session is resolved.
struct SessionStartInfo {
  const Scenario* scenario = nullptr;
  const TestConfig* config = nullptr;  ///< fully resolved engine config
  std::string mode;
  int threads = 1;
  std::string plan;  ///< exploration plan (parallel modes; empty otherwise)
};

/// One completed execution, streamed to RunObserver::OnIteration.
struct IterationInfo {
  int worker = -1;          ///< worker index; -1 for the serial engine
  std::uint64_t iteration;  ///< worker-local 0-based iteration
  const ExecutionResult& result;
};

/// Session lifecycle hooks. Methods are invoked on the calling thread
/// (TestSession serializes parallel workers' iteration events under a lock,
/// so observers need no synchronization of their own). Default
/// implementations do nothing — override what you need.
class RunObserver {
 public:
  virtual ~RunObserver() = default;
  virtual void OnStart(const SessionStartInfo& /*info*/) {}
  /// Per-execution stream. Only delivered when WantsIterations() returns
  /// true — the hook costs a callback (and, in parallel modes, a shared
  /// lock) per execution in the exploration inner loop, so observers that
  /// don't need it (like the shipped reporters) must not pay for it.
  virtual void OnIteration(const IterationInfo& /*info*/) {}
  [[nodiscard]] virtual bool WantsIterations() const { return false; }
  /// Telemetry stream: one call per CampaignMonitor sample, only when the
  /// session's metrics plane is active. UNLIKE the other hooks this is
  /// invoked on the MONITOR thread, concurrently with OnIteration — an
  /// observer implementing both synchronizes its own state.
  virtual void OnSnapshot(const obs::MetricsSample& /*sample*/) {}
  /// Invoked once when the session found a violation (the winning bug).
  virtual void OnBug(const TestReport& /*report*/) {}
  virtual void OnFinish(const SessionReport& /*report*/) {}
};

/// The facade. Construct with a SessionConfig, optionally attach observers,
/// call Run(). Throws std::invalid_argument for unknown scenarios or
/// strategies, undeclared parameters, and configurations rejected by
/// TestConfig::Validate().
class TestSession {
 public:
  explicit TestSession(SessionConfig config);

  /// Attaches a non-owning observer; it must outlive Run(). Returns *this
  /// for chaining.
  TestSession& AddObserver(RunObserver* observer);

  SessionReport Run();

  /// The engine configuration the session will run with (scenario defaults
  /// plus overrides), resolved without running. Exposed for tests and tools.
  [[nodiscard]] TestConfig ResolveConfig() const;

 private:
  SessionConfig config_;
  std::vector<RunObserver*> observers_;
};

}  // namespace systest::api
