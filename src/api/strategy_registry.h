// SysTest public API layer.
//
// StrategyRegistry: the single construction site for scheduling strategies,
// keyed by string name. It replaces the StrategyKind enum switch that used to
// be duplicated across the serial engine, the parallel engine and the CLI —
// and it makes strategies pluggable: a third-party strategy registered here
// (via SYSTEST_REGISTER_STRATEGY or Register()) is immediately usable from
// TestConfig::strategy, portfolio plans and `systest_run --strategy`.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/strategy.h"

namespace systest {

/// Process-wide registry of named scheduling-strategy factories. The four
/// built-ins (random, pct, round-robin, delay-bounded) are registered on
/// first use; additional strategies can self-register at static-init time.
/// Thread-safe: Create() is called concurrently by exploration workers.
class StrategyRegistry {
 public:
  /// Builds a fresh strategy instance. `budget` is the PCT priority-change /
  /// delay budget; strategies that do not use one ignore it.
  using Factory = std::function<std::unique_ptr<SchedulingStrategy>(
      std::uint64_t seed, int budget)>;

  struct Entry {
    std::string name;
    std::string description;
    Factory factory;
  };

  static StrategyRegistry& Instance();

  /// Registers a strategy factory. Throws std::logic_error on an empty name,
  /// a name containing '(' (reserved for the budget suffix), or a duplicate.
  /// Returns true so the SYSTEST_REGISTER_STRATEGY macro can bind it to a
  /// static initializer.
  bool Register(std::string name, std::string description, Factory factory);

  /// Constructs the named strategy. `spec` is either a bare registered name
  /// ("pct") or a name with a budget suffix ("pct(5)") which overrides
  /// `budget`. Throws std::invalid_argument for unknown names, listing every
  /// registered strategy in the message.
  [[nodiscard]] std::unique_ptr<SchedulingStrategy> Create(
      const std::string& spec, std::uint64_t seed, int budget) const;

  [[nodiscard]] bool Has(std::string_view name) const;

  /// All registered entries, sorted by name.
  [[nodiscard]] std::vector<Entry> All() const;

  /// Sorted names, e.g. for error messages and `--list`.
  [[nodiscard]] std::vector<std::string> Names() const;

  /// Comma-separated sorted names ("delay-bounded, pct, random, ...").
  [[nodiscard]] std::string NamesLine() const;

 private:
  StrategyRegistry();  // registers the built-ins

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace systest

/// Registers a strategy at static-initialization time:
///
///   SYSTEST_REGISTER_STRATEGY(my_strategy, "my-strategy",
///                             "what it explores",
///                             [](std::uint64_t seed, int budget) {
///                               return std::make_unique<MyStrategy>(seed);
///                             })
#define SYSTEST_REGISTER_STRATEGY(ident, name, description, factory)       \
  static const bool systest_strategy_registered_##ident =                  \
      ::systest::StrategyRegistry::Instance().Register(name, description,  \
                                                       factory)
