// The built-in `race` micro scenario: two racers and a referee asserting
// arrival order — the minimal ordering bug every exploring scheduler finds
// quickly. Lived in tools/systest_run.cc before the scenario registry; now
// it self-registers like every other scenario so the CLI, TestSession and
// CI smoke sweeps all see it.
#include "api/scenario_registry.h"
#include "core/systest.h"

namespace {

struct ArrivalEvent final : systest::Event {
  explicit ArrivalEvent(int who) : who(who) {}
  int who;
};

class Referee final : public systest::Machine {
 public:
  static constexpr bool kReusableRuntime = true;

  Referee() {
    State("Run").On<ArrivalEvent>(&Referee::OnArrival);
    SetStart("Run");
  }

 private:
  void OnReset() override { first_ = 0; }

  void OnArrival(const ArrivalEvent& arrival) {
    if (first_ == 0) {
      first_ = arrival.who;
      Assert(first_ == 1, "racer 2 arrived first");
    }
  }
  int first_ = 0;
};

class Racer final : public systest::Machine {
 public:
  static constexpr bool kReusableRuntime = true;  // const-after-ctor members

  Racer(systest::MachineId referee, int who) : referee_(referee), who_(who) {
    State("Run").OnEntry(&Racer::OnStart);
    SetStart("Run");
  }

 private:
  void OnStart() { Send<ArrivalEvent>(referee_, who_); }
  systest::MachineId referee_;
  int who_;
};

SYSTEST_REGISTER_SCENARIO(race) {
  systest::api::Scenario s;
  s.name = "race";
  s.description = "micro ordering-bug harness (two racers, one referee)";
  s.tags = {"micro", "safety", "buggy"};
  s.params = {{"racers", "racers sending to the referee (default 2)"}};
  s.make = [](const systest::api::ParamMap& params) -> systest::Harness {
    const int racers = static_cast<int>(params.GetUint("racers", 2));
    return [racers](systest::Runtime& rt) {
      auto referee = rt.CreateMachine<Referee>("Referee");
      for (int i = 1; i <= racers; ++i) {
        rt.CreateMachine<Racer>("Racer" + std::to_string(i), referee, i);
      }
    };
  };
  s.default_config = [] {
    systest::TestConfig config;
    config.iterations = 10'000;
    config.max_steps = 100;
    config.seed = 1;
    return config;
  };
  return s;
}

}  // namespace
