// SysTest public API layer.
//
// ParamMap: string-keyed scenario parameters. Scenario factories read typed
// values with per-key defaults; the CLI fills one from repeated --param k=v
// flags. Round-trips through ToString()/Parse() so parameter sets can be
// logged and replayed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace systest::api {

class ParamMap {
 public:
  ParamMap() = default;
  ParamMap(std::initializer_list<std::pair<const std::string, std::string>> kv)
      : values_(kv) {}

  void Set(std::string key, std::string value) {
    values_.insert_or_assign(std::move(key), std::move(value));
  }

  /// Parses one "key=value" assignment (the --param syntax) into the map.
  /// Throws std::invalid_argument when there is no '=' or the key is empty.
  void ParseAssign(std::string_view assign);

  /// Parses a comma-separated "k=v,k2=v2" list (the ToString format).
  static ParamMap Parse(std::string_view text);

  [[nodiscard]] bool Has(std::string_view key) const {
    return values_.find(key) != values_.end();
  }
  [[nodiscard]] bool Empty() const noexcept { return values_.empty(); }
  [[nodiscard]] std::size_t Size() const noexcept { return values_.size(); }

  /// Typed getters: return `fallback` when the key is absent; throw
  /// std::invalid_argument (naming the key) when the value does not parse.
  [[nodiscard]] std::string GetString(std::string_view key,
                                      std::string fallback = {}) const;
  [[nodiscard]] std::uint64_t GetUint(std::string_view key,
                                      std::uint64_t fallback = 0) const;
  [[nodiscard]] std::int64_t GetInt(std::string_view key,
                                    std::int64_t fallback = 0) const;
  [[nodiscard]] double GetDouble(std::string_view key,
                                 double fallback = 0) const;
  /// Accepts true/false, yes/no, on/off, 1/0 (case-insensitive).
  [[nodiscard]] bool GetBool(std::string_view key, bool fallback = false) const;

  /// "k=v,k2=v2" with keys in sorted order; Parse(ToString()) round-trips
  /// (values must not contain ',' or '=' — scenario parameters never do).
  [[nodiscard]] std::string ToString() const;

  [[nodiscard]] auto begin() const noexcept { return values_.begin(); }
  [[nodiscard]] auto end() const noexcept { return values_.end(); }

  friend bool operator==(const ParamMap&, const ParamMap&) = default;

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace systest::api
