#include "api/strategy_registry.h"

#include <stdexcept>
#include <utility>

namespace systest {

StrategyRegistry& StrategyRegistry::Instance() {
  static StrategyRegistry registry;
  return registry;
}

StrategyRegistry::StrategyRegistry() {
  // Built-ins, mirroring the paper's evaluation (§6.2): the random baseline,
  // PCT (Burckhardt et al. [4]), plus delay-bounded (Emmi et al. [11]) and
  // the deterministic round-robin baseline used by benches and tests.
  Register("random", "uniformly random scheduling and choices",
           [](std::uint64_t seed, int /*budget*/) {
             return std::make_unique<RandomStrategy>(seed);
           });
  Register("pct",
           "randomized priority-based scheduling; budget = priority change "
           "points per execution",
           [](std::uint64_t seed, int budget) {
             return std::make_unique<PctStrategy>(seed, budget);
           });
  Register("round-robin",
           "deterministic rotation over enabled machines (seed offsets the "
           "rotation)",
           [](std::uint64_t seed, int /*budget*/) {
             return std::make_unique<RoundRobinStrategy>(seed);
           });
  Register("delay-bounded",
           "round-robin order with up to budget randomly placed delays",
           [](std::uint64_t seed, int budget) {
             return std::make_unique<DelayBoundedStrategy>(seed, budget);
           });
}

bool StrategyRegistry::Register(std::string name, std::string description,
                                Factory factory) {
  if (name.empty()) {
    throw std::logic_error("StrategyRegistry: cannot register an empty name");
  }
  if (name.find('(') != std::string::npos) {
    throw std::logic_error("StrategyRegistry: strategy name '" + name +
                           "' may not contain '(' — the \"name(N)\" form is "
                           "reserved for budget overrides");
  }
  if (!factory) {
    throw std::logic_error("StrategyRegistry: strategy '" + name +
                           "' registered without a factory");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry entry{name, std::move(description), std::move(factory)};
  const auto [it, inserted] = entries_.emplace(std::move(name), std::move(entry));
  if (!inserted) {
    throw std::logic_error("StrategyRegistry: duplicate strategy name '" +
                           it->first + "'");
  }
  return true;
}

std::unique_ptr<SchedulingStrategy> StrategyRegistry::Create(
    const std::string& spec, std::uint64_t seed, int budget) const {
  std::string name = spec;
  // "pct(5)" — a budget baked into the name, as printed by Strategy::Name()
  // and the portfolio breakdown tables, overrides the configured budget.
  if (const std::size_t open = spec.find('(');
      open != std::string::npos && spec.back() == ')') {
    const std::string digits = spec.substr(open + 1, spec.size() - open - 2);
    if (!digits.empty() &&
        digits.find_first_not_of("0123456789") == std::string::npos) {
      name = spec.substr(0, open);
      try {
        budget = std::stoi(digits);
      } catch (const std::out_of_range&) {
        throw std::invalid_argument("strategy spec '" + spec +
                                    "': budget does not fit in an int");
      }
    }
  }
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    if (it != entries_.end()) factory = it->second.factory;
  }
  if (!factory) {
    throw std::invalid_argument("unknown strategy '" + spec +
                                "'; registered strategies: " + NamesLine());
  }
  return factory(seed, budget);
}

bool StrategyRegistry::Has(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(name) != entries_.end();
}

std::vector<StrategyRegistry::Entry> StrategyRegistry::All() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry);
  return out;
}

std::vector<std::string> StrategyRegistry::Names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::string StrategyRegistry::NamesLine() const {
  std::string out;
  for (const std::string& name : Names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace systest
