#include "api/reporters.h"

#include <cinttypes>

#include "core/bug.h"
#include "obs/coverage.h"

namespace systest::api {

namespace {

void PrintBugTail(std::FILE* out, const TestReport& report) {
  if (report.execution_log.empty()) return;
  const std::string& log = report.execution_log;
  const std::size_t from = log.size() > 2'000 ? log.size() - 2'000 : 0;
  std::fprintf(out, "\nreadable trace (tail):\n%s\n", log.substr(from).c_str());
}

}  // namespace

void HumanReporter::OnStart(const SessionStartInfo& info) {
  if (info.scenario != nullptr) {
    std::fprintf(out_, "scenario %s: %s\n", info.scenario->name.c_str(),
                 info.scenario->description.c_str());
  }
  if (!info.plan.empty()) {
    std::fprintf(out_, "exploration plan (%d workers):\n%s", info.threads,
                 info.plan.c_str());
  }
}

void HumanReporter::OnFinish(const SessionReport& report) {
  if (!report.workers.empty()) {
    std::fprintf(out_, "\n%s\n", report.BreakdownTable().c_str());
  }
  std::fprintf(out_, "%s\n", report.report.Summary().c_str());
  if (report.report.bug_found && report.winning_worker >= 0) {
    std::fprintf(out_, "winning worker: w%d (%s); main-thread replay %s\n",
                 report.winning_worker, report.report.strategy_name.c_str(),
                 !report.replay_verify_attempted
                     ? "skipped (verify_replay=false)"
                     : report.replay_verified ? "REPRODUCED the violation"
                                              : "did not reproduce (!)");
  }
  if (report.mode == "replay" && !report.replay_verified) {
    if (report.report.bug_kind == systest::BugKind::kReplayDivergence) {
      std::fprintf(out_,
                   "replay DIVERGED (wrong scenario or parameters?)\n");
    } else {
      std::fprintf(out_, "replay did NOT reproduce a violation\n");
    }
  }
  if (report.report.stateful) {
    std::fprintf(out_,
                 "stateful: %llu distinct states, %llu/%llu executions "
                 "pruned, fingerprint hit-rate %.1f%%\n",
                 static_cast<unsigned long long>(report.report.distinct_states),
                 static_cast<unsigned long long>(
                     report.report.pruned_executions),
                 static_cast<unsigned long long>(report.report.executions),
                 report.report.FingerprintHitRate() * 100.0);
    const VisitedStats& v = report.report.visited;
    if (v.compactions > 0 || v.runs > 0) {
      // Tiered-set maintenance line: only interesting once the hot level has
      // compacted at least once (the default config never does).
      std::fprintf(out_,
                   "visited set: %llu hot + %llu in %llu runs "
                   "(%llu compactions, %llu merges, %llu spilled runs, "
                   "%llu bytes on disk)\n",
                   static_cast<unsigned long long>(v.hot_entries),
                   static_cast<unsigned long long>(v.run_entries),
                   static_cast<unsigned long long>(v.runs),
                   static_cast<unsigned long long>(v.compactions),
                   static_cast<unsigned long long>(v.merges),
                   static_cast<unsigned long long>(v.spilled_runs),
                   static_cast<unsigned long long>(v.spilled_bytes));
    }
    if (report.report.VisitedSetSaturated()) {
      // The TOTAL distinct-state budget — hot level plus compacted runs —
      // is exhausted, so novel states now pass through uncounted and the
      // reported hit rate goes dishonest. (Hot-level compactions alone are
      // routine and never trigger this note.)
      std::fprintf(out_,
                   "note: visited-set budget exhausted (%llu distinct states "
                   "recorded, max_visited=%llu) — novel states are no longer "
                   "recorded. Raise --max-visited (the tiered back level "
                   "scales to hundreds of millions; add --visited-spill-dir "
                   "to keep runs on disk).\n",
                   static_cast<unsigned long long>(
                       report.report.distinct_states),
                   static_cast<unsigned long long>(
                       report.report.visited_budget));
    }
  }
  if (report.corpus_on) {
    std::fprintf(out_,
                 "corpus: %llu entries (%llu added, %llu loaded, %llu "
                 "duplicates, %llu evicted, %llu sampled)\n",
                 static_cast<unsigned long long>(report.corpus.entries),
                 static_cast<unsigned long long>(report.corpus.added),
                 static_cast<unsigned long long>(report.corpus.loaded),
                 static_cast<unsigned long long>(report.corpus.duplicates),
                 static_cast<unsigned long long>(report.corpus.evicted),
                 static_cast<unsigned long long>(report.corpus.sampled));
  }
  if (report.report.faults) {
    const Runtime::FaultStats& f = report.report.injected_faults;
    std::fprintf(out_,
                 "faults: %llu crashes, %llu restarts, %llu drops, %llu "
                 "duplications, %llu partitions, %llu heals injected\n",
                 static_cast<unsigned long long>(f.crashes),
                 static_cast<unsigned long long>(f.restarts),
                 static_cast<unsigned long long>(f.drops),
                 static_cast<unsigned long long>(f.duplications),
                 static_cast<unsigned long long>(f.partitions),
                 static_cast<unsigned long long>(f.heals));
  }
  if (report.report.bug_found &&
      report.report.bug_trace.HasFaultDecisions()) {
    // The failure schedule that produced the first bug, straight from its
    // witness trace — replaying the trace re-applies exactly these faults.
    std::fprintf(out_, "first-bug fault schedule: %s\n",
                 report.report.bug_trace.DescribeFaults().c_str());
  }
  if (report.report.coverage != nullptr && !report.report.coverage->Empty()) {
    std::fprintf(out_, "\n%s", report.report.coverage->Render().c_str());
  }
  if (verbose_ && report.report.bug_found) PrintBugTail(out_, report.report);
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonReporter::OnStart(const SessionStartInfo& info) {
  description_ =
      info.scenario != nullptr ? info.scenario->description : std::string();
}

void JsonReporter::OnFinish(const SessionReport& report) {
  const TestReport& r = report.report;
  std::string json = "{";
  auto field = [&json](const char* key, const std::string& value, bool quote) {
    if (json.size() > 1) json += ',';
    json += '"';
    json += key;
    json += "\":";
    if (quote) {
      json += '"';
      json += JsonEscape(value);
      json += '"';
    } else {
      json += value;
    }
  };
  field("scenario", report.scenario, true);
  // Escaped like every other string field: scenario descriptions are
  // free-form prose and may embed quotes/backslashes.
  if (!description_.empty()) field("description", description_, true);
  field("mode", report.mode, true);
  field("strategy", r.strategy_name, true);
  field("executions", std::to_string(r.executions), false);
  field("total_steps", std::to_string(r.total_steps), false);
  field("seconds", std::to_string(r.total_seconds), false);
  field("bug_found", r.bug_found ? "true" : "false", false);
  if (r.stateful) {
    field("stateful", "true", false);
    field("distinct_states", std::to_string(r.distinct_states), false);
    field("pruned_executions", std::to_string(r.pruned_executions), false);
    field("fingerprint_hits", std::to_string(r.fingerprint_hits), false);
    field("fingerprint_misses", std::to_string(r.fingerprint_misses), false);
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.4f", r.FingerprintHitRate());
    field("fingerprint_hit_rate", rate, false);
    // CI-detectable saturation warning: true only when the TOTAL
    // distinct-state budget (hot + back-level runs) is exhausted — hot
    // compactions alone never set it. Machine-readable counterpart of
    // HumanReporter's note.
    field("visited_set_saturated", r.VisitedSetSaturated() ? "true" : "false",
          false);
    field("visited_budget", std::to_string(r.visited_budget), false);
    // Tiered visited-set telemetry (core/fingerprint.h VisitedStats): level
    // occupancy plus compaction/spill traffic. CI's compaction smoke greps
    // these to assert a small hot cap actually compacted.
    field("visited_hot", std::to_string(r.visited.hot_entries), false);
    field("visited_run_entries", std::to_string(r.visited.run_entries),
          false);
    field("visited_runs", std::to_string(r.visited.runs), false);
    field("visited_compactions", std::to_string(r.visited.compactions),
          false);
    field("visited_merges", std::to_string(r.visited.merges), false);
    field("visited_spilled_runs", std::to_string(r.visited.spilled_runs),
          false);
    field("visited_spilled_bytes", std::to_string(r.visited.spilled_bytes),
          false);
    field("visited_bloom_fp", std::to_string(r.visited.bloom_false_positives),
          false);
  }
  if (report.corpus_on) {
    // Flat corpus_* fields: CI greps these to assert the corpus was written
    // and reloaded across runs.
    field("corpus", "true", false);
    field("corpus_entries", std::to_string(report.corpus.entries), false);
    field("corpus_added", std::to_string(report.corpus.added), false);
    field("corpus_loaded", std::to_string(report.corpus.loaded), false);
    field("corpus_duplicates", std::to_string(report.corpus.duplicates),
          false);
    field("corpus_evicted", std::to_string(report.corpus.evicted), false);
    field("corpus_sampled", std::to_string(report.corpus.sampled), false);
  }
  if (r.faults) {
    field("faults", "true", false);
    field("injected_crashes", std::to_string(r.injected_faults.crashes),
          false);
    field("injected_restarts", std::to_string(r.injected_faults.restarts),
          false);
    field("injected_drops", std::to_string(r.injected_faults.drops), false);
    field("injected_duplications",
          std::to_string(r.injected_faults.duplications), false);
    field("injected_partitions", std::to_string(r.injected_faults.partitions),
          false);
    field("injected_heals", std::to_string(r.injected_faults.heals), false);
  }
  if (r.bug_found) {
    field("bug_kind", std::string(ToString(r.bug_kind)), true);
    field("bug_message", r.bug_message, true);
    field("bug_iteration", std::to_string(r.bug_iteration), false);
    field("seconds_to_bug", std::to_string(r.seconds_to_bug), false);
    field("ndc", std::to_string(r.ndc), false);
    field("bug_steps", std::to_string(r.bug_steps), false);
    if (r.bug_trace.HasFaultDecisions()) {
      field("bug_fault_schedule", r.bug_trace.DescribeFaults(), true);
    }
  }
  if (!report.workers.empty()) {
    field("winning_worker", std::to_string(report.winning_worker), false);
    field("replay_verified", report.replay_verified ? "true" : "false", false);
    json += ",\"workers\":[";
    bool first = true;
    for (const explore::WorkerReport& w : report.workers) {
      if (!first) json += ',';
      first = false;
      char wall[32];
      std::snprintf(wall, sizeof(wall), "%.6f", w.seconds);
      json += "{\"worker\":" + std::to_string(w.assignment.worker) +
              ",\"strategy\":\"" + JsonEscape(w.strategy_name) +
              "\",\"seed\":" + std::to_string(w.assignment.seed) +
              ",\"iterations\":" + std::to_string(w.assignment.iterations) +
              ",\"executions\":" + std::to_string(w.executions) +
              ",\"steps\":" + std::to_string(w.steps) +
              ",\"seconds\":" + wall +
              ",\"bug_found\":" + (w.bug_found ? "true" : "false") +
              ",\"won\":" + (w.won ? "true" : "false") +
              (r.stateful ? ",\"pruned\":" + std::to_string(w.pruned_executions)
                          : std::string()) +
              (r.faults ? ",\"injected_faults\":" +
                              std::to_string(w.injected_faults.Total())
                        : std::string()) +
              "}";
    }
    json += ']';
  }
  if (report.mode == "replay") {
    field("replay_verified", report.replay_verified ? "true" : "false", false);
  }
  if (r.coverage != nullptr && !r.coverage->Empty()) {
    json += ",\"coverage\":" + r.coverage->ToJson();
  }
  json += '}';
  last_ = std::move(json);
  std::fprintf(out_, "%s\n", last_.c_str());
}

}  // namespace systest::api
