#include "api/scenario_registry.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace systest::api {

bool Scenario::HasTag(std::string_view tag) const {
  return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

ScenarioRegistry& ScenarioRegistry::Instance() {
  static ScenarioRegistry registry;
  return registry;
}

bool ScenarioRegistry::Register(Scenario scenario) {
  if (scenario.name.empty()) {
    throw std::logic_error("ScenarioRegistry: cannot register an empty name");
  }
  if (!scenario.make) {
    throw std::logic_error("ScenarioRegistry: scenario '" + scenario.name +
                           "' registered without a harness factory");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string name = scenario.name;
  const auto [it, inserted] =
      scenarios_.emplace(std::move(name), std::move(scenario));
  if (!inserted) {
    throw std::logic_error("ScenarioRegistry: duplicate scenario name '" +
                           it->first + "'");
  }
  return true;
}

const Scenario* ScenarioRegistry::Find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

const Scenario& ScenarioRegistry::Get(std::string_view name) const {
  const Scenario* scenario = Find(name);
  if (scenario == nullptr) {
    throw std::invalid_argument("unknown scenario '" + std::string(name) +
                                "'; registered scenarios: " + NamesLine());
  }
  return *scenario;
}

std::vector<const Scenario*> ScenarioRegistry::All() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) out.push_back(&scenario);
  return out;
}

std::vector<const Scenario*> ScenarioRegistry::WithTag(
    std::string_view tag) const {
  std::vector<const Scenario*> out;
  for (const Scenario* scenario : All()) {
    if (scenario->HasTag(tag)) out.push_back(scenario);
  }
  return out;
}

std::vector<std::string> ScenarioRegistry::Names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) out.push_back(name);
  return out;
}

std::string ScenarioRegistry::NamesLine() const {
  std::string out;
  for (const std::string& name : Names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace systest::api
