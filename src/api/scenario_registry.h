// SysTest public API layer.
//
// ScenarioRegistry: the process-wide catalog of named test scenarios — the
// paper's "write a harness once, then throw every scheduler and budget at
// it" workflow (§2) turned into a declarative registry. Each domain
// (samplerepl, vnext, mtable, fabric, chaintable, plus the race
// micro-harness) self-registers its scenarios at static-initialization time
// via SYSTEST_REGISTER_SCENARIO, carrying a name, a description, tags, the
// declared parameters, a harness factory over a ParamMap, and the
// per-scenario default TestConfig. Everything downstream — TestSession, the
// systest_run CLI, CI's smoke sweep — discovers scenarios here instead of
// hardcoding harness tables behind per-domain #includes.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/param_map.h"
#include "core/engine.h"

namespace systest::api {

/// One declared scenario parameter, for validation and `--list` help.
struct ParamSpec {
  std::string name;
  std::string help;  ///< e.g. "writers per table (default 2)"
};

/// A registered scenario: everything needed to build and explore a harness.
struct Scenario {
  std::string name;         ///< unique, e.g. "samplerepl-safety"
  std::string description;  ///< one line for --list
  /// Free-form labels for filtering: by convention the domain name plus
  /// "safety"/"liveness" for the property class and "buggy"/"fixed" for
  /// whether the seeded defect is present.
  std::vector<std::string> tags;
  /// Parameters the factory understands. TestSession rejects any provided
  /// key that is not declared here, so typos fail fast.
  std::vector<ParamSpec> params;
  /// Builds the harness. Called once per session; the returned callable
  /// populates a fresh Runtime on every testing iteration and must be safe
  /// to invoke from concurrent exploration workers.
  std::function<Harness(const ParamMap&)> make;
  /// Per-scenario default engine configuration (budget, step bound, seed,
  /// liveness threshold). TestSession applies its overrides on top.
  std::function<TestConfig()> default_config;

  [[nodiscard]] bool HasTag(std::string_view tag) const;
};

/// Process-wide scenario catalog. Registration happens at static-init time
/// (single-threaded); lookups are mutex-guarded and return pointers that
/// stay valid for the process lifetime.
class ScenarioRegistry {
 public:
  static ScenarioRegistry& Instance();

  /// Registers a scenario. Throws std::logic_error on an empty name, a
  /// missing factory, or a duplicate name. Returns true so the macro can
  /// bind it to a static initializer.
  bool Register(Scenario scenario);

  /// Nullptr when unknown.
  [[nodiscard]] const Scenario* Find(std::string_view name) const;

  /// Throws std::invalid_argument for unknown names, listing every
  /// registered scenario in the message.
  [[nodiscard]] const Scenario& Get(std::string_view name) const;

  /// All scenarios, sorted by name.
  [[nodiscard]] std::vector<const Scenario*> All() const;

  /// Scenarios carrying `tag`, sorted by name.
  [[nodiscard]] std::vector<const Scenario*> WithTag(std::string_view tag) const;

  [[nodiscard]] std::vector<std::string> Names() const;

  /// Comma-separated sorted names, for error messages.
  [[nodiscard]] std::string NamesLine() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Scenario, std::less<>> scenarios_;
};

}  // namespace systest::api

/// Registers a scenario at static-initialization time. Usage:
///
///   SYSTEST_REGISTER_SCENARIO(my_scenario) {
///     systest::api::Scenario s;
///     s.name = "my-scenario";
///     s.description = "...";
///     s.tags = {"mydomain", "safety", "buggy"};
///     s.params = {{"ops", "operations per writer (default 3)"}};
///     s.make = [](const systest::api::ParamMap& p) { return MakeHarness(p); };
///     s.default_config = [] { return DefaultConfig("random"); };
///     return s;
///   }
///
/// The block is an ordinary function body returning the Scenario; the macro
/// runs it once before main() and hands the result to the registry.
#define SYSTEST_REGISTER_SCENARIO(ident)                         \
  static ::systest::api::Scenario SystestScenarioBuild_##ident(); \
  static const bool systest_scenario_registered_##ident =        \
      ::systest::api::ScenarioRegistry::Instance().Register(     \
          SystestScenarioBuild_##ident());                       \
  static ::systest::api::Scenario SystestScenarioBuild_##ident()
