#include "api/param_map.h"

#include <cctype>
#include <stdexcept>

namespace systest::api {

namespace {

[[noreturn]] void BadValue(std::string_view key, const std::string& value,
                           const char* expected) {
  throw std::invalid_argument("param '" + std::string(key) + "': value '" +
                              value + "' is not " + expected);
}

std::string Lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

void ParamMap::ParseAssign(std::string_view assign) {
  const std::size_t eq = assign.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    throw std::invalid_argument("malformed parameter '" + std::string(assign) +
                                "' (expected key=value)");
  }
  Set(std::string(assign.substr(0, eq)), std::string(assign.substr(eq + 1)));
}

ParamMap ParamMap::Parse(std::string_view text) {
  ParamMap map;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    if (comma > pos) map.ParseAssign(text.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return map;
}

std::string ParamMap::GetString(std::string_view key,
                                std::string fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::move(fallback) : it->second;
}

std::uint64_t ParamMap::GetUint(std::string_view key,
                                std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    // std::stoull would silently wrap "-1" to 18446744073709551615; a
    // negative count is always a caller mistake, so reject it up front.
    if (it->second.find('-') != std::string::npos) {
      throw std::invalid_argument(it->second);
    }
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::exception&) {
    BadValue(key, it->second, "an unsigned integer");
  }
}

std::int64_t ParamMap::GetInt(std::string_view key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::exception&) {
    BadValue(key, it->second, "an integer");
  }
}

double ParamMap::GetDouble(std::string_view key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::exception&) {
    BadValue(key, it->second, "a number");
  }
}

bool ParamMap::GetBool(std::string_view key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string value = Lower(it->second);
  if (value == "true" || value == "yes" || value == "on" || value == "1") {
    return true;
  }
  if (value == "false" || value == "no" || value == "off" || value == "0") {
    return false;
  }
  BadValue(key, it->second, "a boolean (true/false, yes/no, on/off, 1/0)");
}

std::string ParamMap::ToString() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

}  // namespace systest::api
