#include "api/session.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include <memory>

#include "api/strategy_registry.h"
#include "core/bug.h"
#include "obs/campaign.h"
#include "obs/metrics.h"
#include "obs/monitor.h"

namespace systest::api {

namespace {

/// Portfolio runs without an explicit --threads field enough workers for the
/// whole built-in rotation even on small machines (the workers are
/// compute-bound but independent, so oversubscription just time-slices).
int PortfolioThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::max(6u, hw));
}

void ValidateParams(const Scenario& scenario, const ParamMap& params) {
  for (const auto& [key, value] : params) {
    const bool declared =
        std::any_of(scenario.params.begin(), scenario.params.end(),
                    [&](const ParamSpec& spec) { return spec.name == key; });
    if (!declared) {
      std::string known;
      for (const ParamSpec& spec : scenario.params) {
        if (!known.empty()) known += ", ";
        known += spec.name;
      }
      throw std::invalid_argument(
          "scenario '" + scenario.name + "' has no parameter '" + key +
          "'; declared parameters: " + (known.empty() ? "(none)" : known));
    }
  }
}

}  // namespace

TestSession::TestSession(SessionConfig config) : config_(std::move(config)) {}

TestSession& TestSession::AddObserver(RunObserver* observer) {
  if (observer != nullptr) observers_.push_back(observer);
  return *this;
}

TestConfig TestSession::ResolveConfig() const {
  const Scenario& scenario = ScenarioRegistry::Instance().Get(config_.scenario);
  TestConfig tc =
      scenario.default_config ? scenario.default_config() : TestConfig{};
  const bool portfolio = config_.strategy == "portfolio";
  if (!config_.strategy.empty() && !portfolio) tc.strategy = config_.strategy;
  if (config_.seed) tc.seed = *config_.seed;
  if (config_.iterations) tc.iterations = *config_.iterations;
  if (config_.max_steps && *config_.max_steps != tc.max_steps) {
    // Scenarios pin their liveness temperature threshold against their own
    // default step bound (e.g. vnext: hot for 1200 of 3000 steps = 40%).
    // When the caller overrides max_steps, keep that hot-step RATIO —
    // keeping the absolute threshold would silently weaken (or outright
    // invalidate) liveness detection at smaller bounds.
    if (tc.liveness_temperature_threshold > 0 && tc.max_steps > 0) {
      tc.liveness_temperature_threshold = std::max<std::uint64_t>(
          1, tc.liveness_temperature_threshold * *config_.max_steps /
                 tc.max_steps);
    }
    tc.max_steps = *config_.max_steps;
  }
  if (config_.strategy_budget) tc.strategy_budget = *config_.strategy_budget;
  if (config_.time_budget_seconds) {
    tc.time_budget_seconds = *config_.time_budget_seconds;
  }
  if (config_.stateful) tc.stateful = *config_.stateful;
  if (config_.fingerprint_payloads) {
    tc.fingerprint_payloads = *config_.fingerprint_payloads;
  }
  if (config_.max_visited) tc.max_visited = *config_.max_visited;
  if (config_.max_visited_hot) tc.max_visited_hot = *config_.max_visited_hot;
  if (config_.visited_spill_dir) {
    tc.visited_spill_dir = *config_.visited_spill_dir;
  }
  if (config_.prune_run) tc.prune_run = *config_.prune_run;
  if (config_.max_crashes) tc.max_crashes = *config_.max_crashes;
  if (config_.max_restarts) tc.max_restarts = *config_.max_restarts;
  if (config_.drop_probability_den) {
    tc.drop_probability_den = *config_.drop_probability_den;
  }
  if (config_.max_duplications) {
    tc.max_duplications = *config_.max_duplications;
  }
  if (config_.fault_odds_den) tc.fault_odds_den = *config_.fault_odds_den;
  if (config_.max_partitions) tc.max_partitions = *config_.max_partitions;
  if (config_.partition_heal_den) {
    tc.partition_heal_den = *config_.partition_heal_den;
  }
  if (config_.fault_placement_points) {
    tc.fault_placement_points = *config_.fault_placement_points;
  }
  if (config_.partitions && tc.max_partitions == 0) {
    // Arm-with-defaults, partition flavor: one partition per execution
    // unless the scenario or an override already budgets them.
    tc.max_partitions = 1;
  }
  if (config_.faults && tc.max_crashes == 0 && tc.drop_probability_den == 0 &&
      tc.max_duplications == 0) {
    // Arm-with-defaults: only when neither the scenario nor a specific
    // override produced any fault budget. Partition budgets are judged
    // separately above, so `faults` + `partitions` arms both planes.
    tc.max_crashes = 1;
    tc.max_restarts = 1;
  }
  if (config_.stop_on_first_bug) tc.stop_on_first_bug = *config_.stop_on_first_bug;
  if (config_.readable_trace_on_bug) tc.readable_trace_on_bug = true;
  const bool replay =
      config_.replay_trace.has_value() || !config_.replay_file.empty();
  const bool mutate = tc.strategy.str() == "mutate" ||
                      tc.strategy.str().rfind("mutate(", 0) == 0;
  if (!replay && (config_.corpus || !config_.corpus_dir.empty() ||
                  (mutate && !portfolio))) {
    // Arm the coverage-guided loop. Stateful is forced on: the corpus's
    // interest signal IS the fingerprint-miss count, so a non-stateful
    // corpus run could never feed (or meaningfully weight) anything.
    tc.corpus_mutation = true;
    tc.stateful = true;
  }
  return tc;
}

SessionReport TestSession::Run() {
  const Scenario& scenario = ScenarioRegistry::Instance().Get(config_.scenario);
  ValidateParams(scenario, config_.params);

  const TestConfig tc = ResolveConfig();
  tc.Validate();
  const bool portfolio = config_.strategy == "portfolio";
  if (!portfolio) {
    // Fail fast on unknown strategy names (and malformed "(N)" budgets)
    // before any exploration work starts.
    (void)StrategyRegistry::Instance().Create(tc.strategy, tc.seed,
                                              tc.strategy_budget);
  }

  const Harness harness = scenario.make(config_.params);
  std::vector<RunObserver*> iteration_observers;
  for (RunObserver* observer : observers_) {
    if (observer->WantsIterations()) iteration_observers.push_back(observer);
  }
  const bool replay =
      config_.replay_trace.has_value() || !config_.replay_file.empty();
  int threads = config_.threads;
  if (portfolio && threads <= 0) threads = PortfolioThreads();
  const bool parallel = !replay && (portfolio || threads > 1);

  SessionReport out;
  out.scenario = scenario.name;
  out.mode = replay      ? "replay"
             : portfolio ? "portfolio"
             : parallel  ? "parallel"
                         : "serial";

  SessionStartInfo start;
  start.scenario = &scenario;
  start.config = &tc;
  start.mode = out.mode;
  start.threads = parallel ? threads : 1;

  // Metrics plane: any of the observability switches arms it; replay mode
  // never observes (a replay is one deterministic execution, not a
  // campaign). The registry/metrics/monitor trio lives for this Run() only.
  const bool metrics_on =
      !replay && (config_.metrics || config_.progress ||
                  !config_.metrics_out.empty() || config_.coverage);
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::CampaignMetrics> metrics;
  std::unique_ptr<obs::CampaignMonitor> monitor;
  if (metrics_on) {
    registry = std::make_unique<obs::MetricsRegistry>();
    metrics = std::make_unique<obs::CampaignMetrics>(*registry);
  }
  // Builds and starts the sampling monitor once the worker count is known
  // (the parallel engine resolves it).
  auto start_monitor = [&](std::size_t workers) {
    if (!metrics_on) return;
    obs::MonitorOptions mopts;
    mopts.interval_ms = config_.metrics_interval_ms;
    mopts.jsonl_path = config_.metrics_out;
    mopts.progress = config_.progress;
    mopts.total_executions = tc.iterations;
    mopts.workers = workers;
    monitor = std::make_unique<obs::CampaignMonitor>(*metrics, mopts);
    if (!observers_.empty()) {
      monitor->SetSampleCallback([this](const obs::MetricsSample& sample) {
        for (RunObserver* observer : observers_) observer->OnSnapshot(sample);
      });
    }
    monitor->Start();
  };

  // Coverage-guided exploration: the corpus lives for this Run(); with a
  // corpus_dir it is pre-seeded from disk and persisted back after the
  // engines finish. The scoped active-corpus handle is how the registry's
  // "mutate" factory (fixed (seed, budget) signature) reaches it.
  std::unique_ptr<corpus::TraceCorpus> corpus_store;
  if (tc.corpus_mutation) {
    corpus_store = std::make_unique<corpus::TraceCorpus>(
        config_.corpus_max.value_or(corpus::TraceCorpus::kDefaultMaxEntries));
    if (!config_.corpus_dir.empty()) {
      corpus_store->LoadDir(config_.corpus_dir);
    }
  }
  const corpus::ScopedActiveCorpus active_corpus(corpus_store.get());

  if (replay) {
    const Trace trace = config_.replay_trace
                            ? *config_.replay_trace
                            : Trace::LoadFile(config_.replay_file);
    TestingEngine engine(tc, harness);
    for (RunObserver* observer : observers_) observer->OnStart(start);
    out.report = engine.Replay(trace);
    out.replay_verify_attempted = true;
    out.replay_verified = out.report.bug_found &&
                          out.report.bug_kind != BugKind::kReplayDivergence;
  } else if (parallel) {
    explore::ParallelOptions options;
    options.threads = threads;
    options.portfolio = portfolio;
    options.verify_replay = config_.verify_replay;
    options.metrics = metrics.get();
    options.coverage = config_.coverage;
    options.corpus = corpus_store.get();
    std::mutex observer_mutex;
    if (!iteration_observers.empty()) {
      options.on_iteration = [&](int worker, std::uint64_t iteration,
                                 const ExecutionResult& result) {
        const std::lock_guard<std::mutex> lock(observer_mutex);
        const IterationInfo info{worker, iteration, result};
        for (RunObserver* observer : iteration_observers) {
          observer->OnIteration(info);
        }
      };
    }
    explore::ParallelTestingEngine engine(tc, harness, options);
    start.threads = engine.Threads();
    start.plan = engine.Plan().Describe();
    out.plan = start.plan;
    for (RunObserver* observer : observers_) observer->OnStart(start);
    start_monitor(static_cast<std::size_t>(engine.Threads()));
    explore::ParallelTestReport preport = engine.Run();
    out.report = std::move(preport.aggregate);
    out.workers = std::move(preport.workers);
    out.winning_worker = preport.winning_worker;
    out.replay_verified = preport.replay_verified;
    out.replay_verify_attempted =
        config_.verify_replay && out.report.bug_found;
  } else {
    TestingEngine engine(tc, harness);
    engine.SetObservability(metrics.get(), config_.coverage);
    engine.SetCorpus(corpus_store.get());
    if (!iteration_observers.empty()) {
      engine.SetIterationCallback(
          [&iteration_observers](std::uint64_t iteration,
                                 const ExecutionResult& result) {
            const IterationInfo info{/*worker=*/-1, iteration, result};
            for (RunObserver* observer : iteration_observers) {
              observer->OnIteration(info);
            }
          });
    }
    for (RunObserver* observer : observers_) observer->OnStart(start);
    start_monitor(/*workers=*/1);
    out.report = engine.Run();
  }

  if (monitor != nullptr) {
    // Engines (and their workers) are done: the monitor's closing sample and
    // the snapshot below are exact, and both happen before any OnBug /
    // OnFinish reporting so reporters can consume them.
    monitor->Stop();
    out.samples = monitor->Samples();
  }
  if (registry != nullptr) {
    out.metrics = registry->Snapshot();
  }
  if (corpus_store != nullptr) {
    if (!config_.corpus_dir.empty()) {
      corpus_store->SaveDir(config_.corpus_dir);
    }
    out.corpus_on = true;
    out.corpus = corpus_store->Stats();
  }

  if (out.report.bug_found) {
    for (RunObserver* observer : observers_) observer->OnBug(out.report);
  }
  for (RunObserver* observer : observers_) observer->OnFinish(out);
  return out;
}

}  // namespace systest::api
