// SysTest exploration subsystem.
//
// ParallelTestingEngine shards a TestConfig budget across N worker threads
// (an ExplorationPlan), each owning a PRIVATE Runtime and strategy instance —
// executions themselves stay serialized, exactly as the paper's methodology
// requires; only independent executions run concurrently, which is sound
// because each iteration's schedule is fully determined by its derived seed.
// Workers race to the first violation: a lock-free first-bug-wins claim stops
// the fleet, and the winning trace is re-replayed on the calling thread to
// guarantee the witness reproduces outside the worker that found it.
//
// Requirements on the harness: it must be safe to invoke concurrently from
// multiple threads (the standard pattern — a pure factory that only touches
// the Runtime it is handed — satisfies this; harnesses that write to shared
// globals do not).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "explore/exploration_plan.h"

namespace systest::explore {

struct ParallelOptions {
  /// Worker threads. 0 = std::thread::hardware_concurrency() (min 1).
  int threads = 0;
  /// Race the strategy portfolio (ExplorationPlan::Portfolio) instead of
  /// sharding the single configured strategy.
  bool portfolio = false;
  /// Re-run the winning trace on the calling thread after the workers join
  /// and record whether it reproduced (ParallelTestReport::replay_verified).
  bool verify_replay = true;
  /// Optional per-execution hook, invoked from WORKER threads after every
  /// execution with (worker index, worker-local 0-based iteration, result).
  /// Must be thread-safe; keep it cheap — it runs inside the exploration
  /// inner loop. It cannot perturb scheduling (executions stay serialized
  /// and fully seed-determined).
  std::function<void(int worker, std::uint64_t iteration,
                     const ExecutionResult& result)>
      on_iteration;
  /// Campaign observability (obs/campaign.h): when non-null, every worker
  /// flushes each execution into these shared sharded instruments (one TLS
  /// shard per worker thread — workers never contend on a counter line).
  obs::CampaignMetrics* metrics = nullptr;
  /// With metrics: also collect per-worker coverage heatmaps, merged into
  /// aggregate.coverage (and kept per worker in WorkerReport::coverage).
  bool coverage = false;
  /// Coverage-guided exploration (corpus/trace_corpus.h): the shared trace
  /// corpus, borrowed for the run. Every worker feeds newly-interesting
  /// traces back in (stateful runs only — the interest signal is the
  /// fingerprint-miss count), and "mutate" workers sample it. The corpus is
  /// striped like the shared fingerprint set, so workers contend only on
  /// shard collisions.
  corpus::TraceCorpus* corpus = nullptr;
};

/// Per-worker slice of the merged report — the per-strategy breakdown.
struct WorkerReport {
  WorkerAssignment assignment;
  std::string strategy_name;
  std::uint64_t executions = 0;
  std::uint64_t steps = 0;
  bool bug_found = false;      ///< this worker hit a violation
  bool won = false;            ///< ... and claimed the first-bug-wins race
  double seconds = 0.0;        ///< worker wall time
  // Stateful runs: this worker's share of the shared visited set's traffic.
  std::uint64_t pruned_executions = 0;
  std::uint64_t fingerprint_hits = 0;
  std::uint64_t fingerprint_misses = 0;
  /// Fault runs: faults this worker injected (summed over its executions).
  Runtime::FaultStats injected_faults;
  /// This worker's coverage slice (nullptr unless ParallelOptions::coverage).
  /// aggregate.coverage is exactly the Merge of these, pinned by tests.
  std::shared_ptr<const obs::CoverageReport> coverage;
};

struct ParallelTestReport {
  /// Merged totals (executions, steps, seconds summed over workers; wall
  /// time in total_seconds) plus the winning bug, if any. bug_iteration is
  /// the winning WORKER's local 1-based iteration; combined with the
  /// worker's assignment seed it identifies the exact derived seed, so
  /// `aggregate.bug_trace` replays the violation anywhere.
  TestReport aggregate;
  std::vector<WorkerReport> workers;
  int winning_worker = -1;
  /// Set when ParallelOptions::verify_replay confirmed the winning trace on
  /// the calling thread.
  bool replay_verified = false;

  /// Formatted per-worker breakdown table.
  [[nodiscard]] std::string BreakdownTable() const;
};

/// Formats the per-worker breakdown table (shared with api::TestSession
/// reports, which carry the same WorkerReport rows).
[[nodiscard]] std::string BreakdownTable(const std::vector<WorkerReport>& workers);

/// Parallel counterpart of TestingEngine. One engine per Run() call; the
/// engine itself is single-use from the calling thread's perspective but
/// spawns plan-many workers internally.
class ParallelTestingEngine {
 public:
  ParallelTestingEngine(TestConfig config, Harness harness,
                        ParallelOptions options = {});

  /// Runs the plan to completion (budget exhausted, time budget hit, or
  /// first bug when config.stop_on_first_bug).
  ParallelTestReport Run();

  [[nodiscard]] const ExplorationPlan& Plan() const noexcept { return plan_; }
  [[nodiscard]] int Threads() const noexcept { return threads_; }

 private:
  TestConfig config_;
  Harness harness_;
  ParallelOptions options_;
  int threads_;
  ExplorationPlan plan_;
};

}  // namespace systest::explore
