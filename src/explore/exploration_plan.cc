#include "explore/exploration_plan.h"

#include <algorithm>

#include "api/strategy_registry.h"

namespace systest::explore {

namespace {

/// The strategy rotation raced in portfolio mode. Worker w runs entry
/// w % size; worker 0 therefore always keeps the paper's random baseline.
struct PortfolioEntry {
  const char* strategy;
  int budget;
};

constexpr PortfolioEntry kPortfolio[] = {
    {"random", 0},       {"pct", 2}, {"delay-bounded", 2},
    {"pct", 5},          {"delay-bounded", 5}, {"pct", 10},
};

/// Evenly partitions config.iterations into `workers` contiguous slices of
/// the derived-seed line starting at config.seed.
std::vector<WorkerAssignment> PartitionBudget(const TestConfig& config,
                                              int workers) {
  workers = std::max(1, workers);
  const std::uint64_t total = config.iterations;
  const std::uint64_t base = total / static_cast<std::uint64_t>(workers);
  const std::uint64_t remainder = total % static_cast<std::uint64_t>(workers);

  std::vector<WorkerAssignment> assignments;
  assignments.reserve(static_cast<std::size_t>(workers));
  std::uint64_t offset = 0;
  for (int w = 0; w < workers; ++w) {
    WorkerAssignment a;
    a.worker = w;
    a.strategy = config.strategy;
    a.strategy_budget = config.strategy_budget;
    a.seed = config.seed + offset;
    a.iterations = base + (static_cast<std::uint64_t>(w) < remainder ? 1 : 0);
    a.max_crashes = config.max_crashes;
    a.max_restarts = config.max_restarts;
    a.drop_probability_den = config.drop_probability_den;
    a.max_duplications = config.max_duplications;
    a.max_partitions = config.max_partitions;
    a.partition_heal_den = config.partition_heal_den;
    a.fault_placement_points = config.fault_placement_points;
    offset += a.iterations;
    assignments.push_back(a);
  }
  return assignments;
}

}  // namespace

std::string WorkerAssignment::Describe() const {
  // Use the strategy's own display name so plan descriptions can never
  // drift from the names workers report.
  std::string out = "w" + std::to_string(worker) + " " +
                    StrategyRegistry::Instance()
                        .Create(strategy, seed, strategy_budget)
                        ->Name() +
                    " seeds=[" + std::to_string(seed) + "," +
                    std::to_string(seed + iterations) + ")";
  if (FaultsEnabled()) {
    out += max_partitions > 0 ? " +faults +partitions" : " +faults";
  }
  return out;
}

ExplorationPlan ExplorationPlan::Shard(const TestConfig& config, int workers) {
  ExplorationPlan plan;
  plan.workers_ = PartitionBudget(config, workers);
  return plan;
}

ExplorationPlan ExplorationPlan::Portfolio(const TestConfig& config,
                                           int workers) {
  ExplorationPlan plan;
  plan.workers_ = PartitionBudget(config, workers);
  constexpr std::size_t rotation = std::size(kPortfolio);
  const bool faults = config.FaultsEnabled();
  for (WorkerAssignment& a : plan.workers_) {
    const PortfolioEntry& entry =
        kPortfolio[static_cast<std::size_t>(a.worker) % rotation];
    a.strategy = entry.strategy;
    // Budget 0 means "keep the configured budget" only for strategies that
    // use one; random ignores it either way.
    a.strategy_budget = entry.budget > 0 ? entry.budget : config.strategy_budget;
    if (faults && a.worker % 2 == 1) {
      // With faults configured, odd workers race FAULT-FREE: half the fleet
      // hunts pure-ordering bugs at full schedule depth while the other half
      // explores failure interleavings — a bug of either class wins the
      // first-bug race.
      a.max_crashes = 0;
      a.max_restarts = 0;
      a.drop_probability_den = 0;
      a.max_duplications = 0;
      a.max_partitions = 0;
      a.fault_placement_points = 0;
    } else if (faults && config.max_partitions > 0 && a.worker % 4 == 2) {
      // When the config budgets partitions, every other faulted worker goes
      // PARTITION-HEAVY: crash/drop/dup budgets zeroed so its whole fault
      // budget drives partition-and-heal interleavings, the failure class
      // the other faulted workers dilute across four fault kinds.
      a.max_crashes = 0;
      a.max_restarts = 0;
      a.drop_probability_den = 0;
      a.max_duplications = 0;
    }
    if (config.corpus_mutation && a.worker % 3 == 2) {
      // Corpus-fed run: every third worker mutates the shared corpus instead
      // of searching blind — guided workers race the rotation above and are
      // seeded by what the blind workers (and each other) feed back. Worker
      // 0 keeps the random baseline, and the flag lives in the config, so
      // the plan stays a pure function of (config, workers).
      a.strategy = "mutate";
      a.strategy_budget = config.strategy_budget;
    }
  }
  return plan;
}

std::string ExplorationPlan::Describe() const {
  std::string out;
  for (const WorkerAssignment& a : workers_) {
    out += a.Describe();
    out += '\n';
  }
  return out;
}

}  // namespace systest::explore
