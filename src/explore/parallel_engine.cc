#include "explore/parallel_engine.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <system_error>
#include <thread>
#include <utility>

#include "api/strategy_registry.h"
#include "corpus/trace_corpus.h"
#include "explore/sharded_fingerprint_set.h"
#include "obs/campaign.h"

namespace systest::explore {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Winning bug payload. Each slot is written only by the worker that claimed
/// the first-bug-wins race, and read only after the workers joined.
struct WorkerBug {
  ExecutionResult result;
  std::uint64_t iteration = 0;  ///< worker-local, 0-based
  double seconds = 0.0;         ///< from the run's start
};

}  // namespace

std::string BreakdownTable(const std::vector<WorkerReport>& workers) {
  std::string out =
      "  worker  strategy            seeds                 executions      "
      "steps  bug\n";
  char line[160];
  for (const WorkerReport& w : workers) {
    const std::string seeds =
        "[" + std::to_string(w.assignment.seed) + "," +
        std::to_string(w.assignment.seed + w.assignment.iterations) + ")";
    std::snprintf(line, sizeof(line),
                  "  w%-5d  %-18s  %-20s  %10llu  %9llu  %s",
                  w.assignment.worker, w.strategy_name.c_str(), seeds.c_str(),
                  static_cast<unsigned long long>(w.executions),
                  static_cast<unsigned long long>(w.steps),
                  w.won ? "WINNER" : (w.bug_found ? "yes" : "-"));
    out += line;
    if (w.assignment.FaultsEnabled()) {
      std::snprintf(line, sizeof(line), "  faults=%llu",
                    static_cast<unsigned long long>(w.injected_faults.Total()));
      out += line;
    }
    out += '\n';
  }
  return out;
}

std::string ParallelTestReport::BreakdownTable() const {
  return explore::BreakdownTable(workers);
}

ParallelTestingEngine::ParallelTestingEngine(TestConfig config,
                                             Harness harness,
                                             ParallelOptions options)
    : config_(std::move(config)),
      harness_(std::move(harness)),
      options_(options),
      threads_(ResolveThreads(options.threads)),
      plan_(options.portfolio ? ExplorationPlan::Portfolio(config_, threads_)
                              : ExplorationPlan::Shard(config_, threads_)) {}

ParallelTestReport ParallelTestingEngine::Run() {
  ParallelTestReport report;
  const std::vector<WorkerAssignment>& assignments = plan_.Workers();
  const int n = static_cast<int>(assignments.size());
  report.workers.resize(static_cast<std::size_t>(n));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> executions{0};  // lock-free progress counters
  std::atomic<std::uint64_t> steps{0};
  std::atomic<int> winner{-1};
  std::vector<WorkerBug> bugs(static_cast<std::size_t>(n));

  // Stateful exploration: ONE visited set for the whole fleet, so a state
  // any worker discovered prunes every other worker's reconverging
  // schedules (sharded + striped-locked; see sharded_fingerprint_set.h).
  std::unique_ptr<ShardedFingerprintSet> visited;
  if (config_.stateful) {
    TieredOptions visited_options;
    visited_options.max_entries = static_cast<std::size_t>(config_.max_visited);
    visited_options.hot_entries =
        static_cast<std::size_t>(config_.max_visited_hot);
    visited_options.spill_dir = config_.visited_spill_dir;
    if (!visited_options.spill_dir.empty()) {
      // Creation failure is non-fatal: runs then stay in memory.
      std::error_code ec;
      std::filesystem::create_directories(visited_options.spill_dir, ec);
    }
    visited = std::make_unique<ShardedFingerprintSet>(visited_options);
  }

  const auto start = Clock::now();

  auto worker_fn = [&](int w) {
    const WorkerAssignment& assignment = assignments[static_cast<std::size_t>(w)];
    WorkerReport& wr = report.workers[static_cast<std::size_t>(w)];
    wr.assignment = assignment;

    // Each worker owns a private strategy seeded from its assignment, and
    // every Runtime it builds is thread-local: workers share nothing but the
    // atomics above (and, under stateful, the sharded visited set). All
    // seeding flows through the strategy.
    const auto strategy = StrategyRegistry::Instance().Create(
        assignment.strategy, assignment.seed, assignment.strategy_budget);
    wr.strategy_name = strategy->Name();

    // Plan shards carry their own fault budgets (portfolio races fault-free
    // workers against fault-heavy ones), so each worker explores under the
    // budgets of ITS assignment, not the fleet config's.
    TestConfig worker_config = config_;
    worker_config.max_crashes = assignment.max_crashes;
    worker_config.max_restarts = assignment.max_restarts;
    worker_config.drop_probability_den = assignment.drop_probability_den;
    worker_config.max_duplications = assignment.max_duplications;
    worker_config.max_partitions = assignment.max_partitions;
    worker_config.partition_heal_den = assignment.partition_heal_den;
    worker_config.fault_placement_points = assignment.fault_placement_points;

    // Per-worker observability handle on the worker's own stack: the probe
    // and coverage accumulator are private (lock-free), only the flush into
    // the shared sharded instruments crosses threads.
    std::unique_ptr<obs::WorkerObs> worker_obs;
    if (options_.metrics != nullptr) {
      worker_obs = std::make_unique<obs::WorkerObs>(
          *options_.metrics, static_cast<std::size_t>(w), options_.coverage);
    }

    // Thread-affine recycler: one sealed Runtime (and one event arena) per
    // worker for its whole assignment when the harness opted in. Declared
    // after strategy / worker_config / worker_obs — it borrows all three.
    ExecutionRunner runner(worker_config, harness_, *strategy,
                           worker_obs.get());

    const auto worker_start = Clock::now();
    for (std::uint64_t i = 0; i < assignment.iterations; ++i) {
      if (stop.load(std::memory_order_relaxed)) break;
      if (config_.time_budget_seconds > 0 &&
          SecondsSince(start) >= config_.time_budget_seconds) {
        break;
      }
      ExecutionResult result = runner.RunOne(i, visited.get());
      ++wr.executions;
      wr.steps += result.steps;
      if (config_.stateful) {
        wr.fingerprint_hits += result.fingerprint_hits;
        wr.fingerprint_misses += result.fingerprint_misses;
        if (result.pruned) ++wr.pruned_executions;
      }
      if (worker_config.FaultsEnabled()) {
        wr.injected_faults += result.faults;
      }
      if (options_.corpus != nullptr && config_.stateful &&
          (result.fingerprint_misses > 0 || result.bug_found)) {
        // Every worker feeds the shared corpus — including blind portfolio
        // workers, whose discoveries seed the mutate workers racing them.
        // Before the first-bug CAS below moves the trace out.
        options_.corpus->Add(
            result.trace, result.fingerprint_misses,
            worker_obs != nullptr ? worker_obs->LastNewStateCells() : 0);
      }
      executions.fetch_add(1, std::memory_order_relaxed);
      steps.fetch_add(result.steps, std::memory_order_relaxed);
      if (options_.on_iteration) options_.on_iteration(w, i, result);
      if (result.bug_found) {
        wr.bug_found = true;
        int expected = -1;
        if (winner.compare_exchange_strong(expected, w,
                                           std::memory_order_acq_rel)) {
          wr.won = true;
          WorkerBug& slot = bugs[static_cast<std::size_t>(w)];
          slot.result = std::move(result);
          slot.iteration = i;
          slot.seconds = SecondsSince(start);
          if (config_.stop_on_first_bug) {
            stop.store(true, std::memory_order_release);
          }
        }
        if (config_.stop_on_first_bug) break;
      }
    }
    wr.seconds = SecondsSince(worker_start);
    if (worker_obs != nullptr && options_.coverage) {
      wr.coverage =
          std::make_shared<obs::CoverageReport>(worker_obs->TakeCoverage());
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) threads.emplace_back(worker_fn, w);
  for (std::thread& t : threads) t.join();

  TestReport& agg = report.aggregate;
  agg.executions = executions.load(std::memory_order_relaxed);
  agg.total_steps = steps.load(std::memory_order_relaxed);
  agg.total_seconds = SecondsSince(start);
  if (visited) {
    agg.stateful = true;
    agg.distinct_states = visited->Size();
    agg.visited_budget = config_.max_visited;
    agg.visited = visited->Stats();
    for (const WorkerReport& w : report.workers) {
      agg.pruned_executions += w.pruned_executions;
      agg.fingerprint_hits += w.fingerprint_hits;
      agg.fingerprint_misses += w.fingerprint_misses;
    }
  }
  if (config_.FaultsEnabled()) {
    agg.faults = true;
    for (const WorkerReport& w : report.workers) {
      agg.injected_faults += w.injected_faults;
    }
  }
  agg.strategy_name =
      (options_.portfolio ? std::string("portfolio") : config_.strategy.str()) +
      " x" + std::to_string(n);
  if (options_.coverage) {
    // The fleet heatmap is exactly the sum of the per-worker reports (Merge
    // is commutative/associative over named machines and events).
    auto merged = std::make_shared<obs::CoverageReport>();
    for (const WorkerReport& w : report.workers) {
      if (w.coverage != nullptr) merged->Merge(*w.coverage);
    }
    agg.coverage = std::move(merged);
  }

  const int won = winner.load(std::memory_order_acquire);
  report.winning_worker = won;
  if (won >= 0) {
    WorkerBug& bug = bugs[static_cast<std::size_t>(won)];
    agg.bug_found = true;
    agg.bug_kind = bug.result.bug_kind;
    agg.bug_message = bug.result.bug_message;
    agg.bug_iteration = bug.iteration + 1;  // winner-local numbering
    agg.seconds_to_bug = bug.seconds;
    agg.ndc = bug.result.trace.Size();
    agg.bug_steps = bug.result.steps;
    agg.bug_trace = std::move(bug.result.trace);
    agg.strategy_name =
        report.workers[static_cast<std::size_t>(won)].strategy_name;

    if (options_.verify_replay) {
      // The trace must witness the bug anywhere, not just inside the worker
      // that recorded it: replay it on THIS thread through the plain serial
      // engine before handing it to the caller.
      TestingEngine replayer(config_, harness_);
      const TestReport replayed = replayer.Replay(agg.bug_trace);
      report.replay_verified =
          replayed.bug_found && replayed.bug_kind == agg.bug_kind;
      if (config_.readable_trace_on_bug) {
        agg.execution_log = replayed.execution_log;
      }
    }
  }
  return report;
}

}  // namespace systest::explore
