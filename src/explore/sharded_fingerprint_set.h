// SysTest exploration subsystem.
//
// ShardedFingerprintSet: the concurrent VisitedSet shared by parallel
// exploration workers. The 64-bit fingerprints are already well-mixed
// (FNV-1a), so the low bits pick one of 64 independently locked shards —
// workers only contend when they land on the same shard at the same instant,
// which keeps the per-step Insert cheap enough to sit inside the exploration
// inner loop. Sharing one set across the portfolio is the point: a state any
// worker has visited prunes every other worker's schedules that reconverge
// to it, so the fleet stops racing toward duplicate states.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <unordered_set>

#include "core/fingerprint.h"

namespace systest::explore {

class ShardedFingerprintSet final : public VisitedSet {
 public:
  /// `max_entries` is the global cap (TestConfig::max_visited), enforced by
  /// a shared relaxed-atomic count so the sharded set has the SAME cap
  /// semantics as the serial FingerprintSet (a full set freezes: known
  /// states still hit, unseen states pass through uncounted). The check and
  /// the insert are not one atomic step, so concurrent workers can overshoot
  /// the cap by at most one entry each — an approximation, not a leak.
  explicit ShardedFingerprintSet(std::size_t max_entries)
      : max_entries_(max_entries) {}

  bool Insert(Fingerprint fp) override {
    Shard& shard = shards_[ShardOf(fp)];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (count_.load(std::memory_order_relaxed) >= max_entries_) {
      return shard.set.find(fp) == shard.set.end();
    }
    const bool inserted = shard.set.insert(fp).second;
    if (inserted) count_.fetch_add(1, std::memory_order_relaxed);
    return inserted;
  }

  [[nodiscard]] std::size_t Size() const override {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 64;

  static std::size_t ShardOf(Fingerprint fp) noexcept {
    return static_cast<std::size_t>(fp & (kShards - 1));
  }

  struct alignas(64) Shard {  // own cache line: no false sharing across locks
    mutable std::mutex mutex;
    std::unordered_set<Fingerprint> set;
  };

  std::size_t max_entries_;
  std::atomic<std::size_t> count_{0};
  Shard shards_[kShards];
};

}  // namespace systest::explore
