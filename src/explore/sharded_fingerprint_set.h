// SysTest exploration subsystem.
//
// ShardedFingerprintSet: the concurrent VisitedSet shared by parallel
// exploration workers. The 64-bit fingerprints are already well-mixed
// (FNV-1a), so the low bits pick one of 64 independently locked shards —
// workers only contend when they land on the same shard at the same instant,
// which keeps the per-step Insert cheap enough to sit inside the exploration
// inner loop. Sharing one set across the portfolio is the point: a state any
// worker has visited prunes every other worker's schedules that reconverge
// to it, so the fleet stops racing toward duplicate states.
//
// Each shard is a TieredFingerprintSet (exact hot front + compacting sorted
// runs — see core/fingerprint.h), so shards compact independently: one
// shard's compaction holds only its own lock while the other 63 keep
// serving probes. The hot budget splits evenly across shards; the TOTAL
// distinct-state budget stays global, enforced by a shared relaxed-atomic
// count (per-shard caps would freeze hot shards early while cold shards
// still had room).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>

#include "core/fingerprint.h"

namespace systest::explore {

class ShardedFingerprintSet final : public VisitedSet {
 public:
  /// `max_entries` is the global cap (TestConfig::max_visited), enforced by
  /// a shared relaxed-atomic count so the sharded set has the SAME cap
  /// semantics as the serial set (a full set freezes: known states still
  /// hit, unseen states pass through uncounted). The check and the insert
  /// are not one atomic step, so concurrent workers can overshoot the cap
  /// by at most one entry each — an approximation, not a leak.
  explicit ShardedFingerprintSet(std::size_t max_entries)
      : ShardedFingerprintSet({max_entries, max_entries, std::string{}}) {}

  /// Tiered configuration (TestConfig::{max_visited, max_visited_hot,
  /// visited_spill_dir}). The hot budget is divided across the 64 shards;
  /// each shard's own max_entries is left effectively unlimited because the
  /// global atomic enforces the real budget.
  explicit ShardedFingerprintSet(const TieredOptions& options)
      : max_entries_(options.max_entries) {
    TieredOptions per_shard;
    per_shard.max_entries = ~std::size_t{0};  // global atomic is the cap
    per_shard.hot_entries =
        options.hot_entries / kShards > 0 ? options.hot_entries / kShards : 1;
    per_shard.spill_dir = options.spill_dir;
    for (Shard& shard : shards_) {
      shard.set = std::make_unique<TieredFingerprintSet>(per_shard);
    }
  }

  bool Insert(Fingerprint fp) override {
    Shard& shard = shards_[ShardOf(fp)];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (count_.load(std::memory_order_relaxed) >= max_entries_) {
      return !shard.set->Contains(fp);
    }
    const bool inserted = shard.set->Insert(fp);
    if (inserted) count_.fetch_add(1, std::memory_order_relaxed);
    return inserted;
  }

  [[nodiscard]] std::size_t Size() const override {
    return count_.load(std::memory_order_relaxed);
  }

  /// Sums level telemetry across all shards, taking each shard lock in
  /// turn. Not a consistent global snapshot (shards keep moving), which is
  /// fine for the obs gauges this feeds — call it off the hot path.
  [[nodiscard]] VisitedStats Stats() const override {
    VisitedStats total;
    for (const Shard& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.set->Stats();
    }
    return total;
  }

 private:
  static constexpr std::size_t kShards = 64;

  static std::size_t ShardOf(Fingerprint fp) noexcept {
    return static_cast<std::size_t>(fp & (kShards - 1));
  }

  struct alignas(64) Shard {  // own cache line: no false sharing across locks
    mutable std::mutex mutex;
    std::unique_ptr<TieredFingerprintSet> set;
  };

  std::size_t max_entries_;
  std::atomic<std::size_t> count_{0};
  Shard shards_[kShards];
};

}  // namespace systest::explore
