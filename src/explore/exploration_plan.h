// SysTest exploration subsystem.
//
// An ExplorationPlan decomposes a TestConfig iteration budget into
// per-worker slices with disjoint, deterministic seed ranges. Every strategy
// derives its per-iteration randomness from SplitMix64(seed + iteration), so
// assigning worker w the base seed `config.seed + offset_w` together with
// `slice_w` iterations makes the workers explore pairwise-disjoint schedule
// spaces — the union over all workers is exactly the schedule space the
// serial TestingEngine would explore with the same total budget, which keeps
// parallel runs reproducible and free of duplicated work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/strategy.h"

namespace systest::explore {

/// One worker's slice of the exploration budget.
struct WorkerAssignment {
  int worker = 0;
  StrategyName strategy;  ///< registered strategy name (default "random")
  int strategy_budget = 2;
  std::uint64_t seed = 0;        ///< base seed of this worker's range
  std::uint64_t iterations = 0;  ///< slice size; seeds cover [seed, seed+iterations)

  // Fault-plane budgets this worker explores with (per execution). Shard
  // copies the config's budgets to every worker; Portfolio additionally
  // races fault-free workers against fault-heavy ones when the config has
  // faults enabled, so the fleet covers both pure-ordering schedules and
  // failure interleavings in one run.
  std::uint64_t max_crashes = 0;
  std::uint64_t max_restarts = 0;
  std::uint64_t drop_probability_den = 0;
  std::uint64_t max_duplications = 0;
  std::uint64_t max_partitions = 0;
  std::uint64_t partition_heal_den = 4;
  int fault_placement_points = 0;

  [[nodiscard]] bool FaultsEnabled() const noexcept {
    return max_crashes > 0 || drop_probability_den > 0 ||
           max_duplications > 0 || max_partitions > 0;
  }

  /// e.g. "w3 pct(5) seeds=[2032,2048) +faults" or "... +partitions".
  [[nodiscard]] std::string Describe() const;
};

/// Deterministic decomposition of a budget across workers. Construction is
/// pure: the same (config, workers) always yields the same plan.
class ExplorationPlan {
 public:
  /// Shards config.iterations as evenly as possible across `workers`
  /// threads, every worker running config.strategy/config.strategy_budget on
  /// its own disjoint seed range.
  static ExplorationPlan Shard(const TestConfig& config, int workers);

  /// Portfolio mode: workers race complementary strategies on disjoint seed
  /// ranges — uniform random plus PCT at several priority-change budgets
  /// (Burckhardt et al., the paper's citation [4]; §6.2 used budget 2) and
  /// delay-bounded scheduling at several delay budgets (Emmi et al.,
  /// citation [11]). First bug wins.
  static ExplorationPlan Portfolio(const TestConfig& config, int workers);

  [[nodiscard]] const std::vector<WorkerAssignment>& Workers() const noexcept {
    return workers_;
  }
  [[nodiscard]] std::size_t WorkerCount() const noexcept {
    return workers_.size();
  }

  /// Multi-line human-readable description of every assignment.
  [[nodiscard]] std::string Describe() const;

 private:
  std::vector<WorkerAssignment> workers_;
};

}  // namespace systest::explore
