// SysTest systematic-testing framework.
//
// TieredFingerprintSet implementation: compaction, k-way run merge, blocked
// bloom construction, and the optional mmap spill path. See fingerprint.h
// for the design narrative.
#include "src/core/fingerprint.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace systest {
namespace detail {

void BlockedBloom::Build(const Fingerprint* data, std::size_t n) {
  words_.clear();
  block_bits_ = 0;
  if (n == 0) return;
  // ~12 bits/entry rounded up to whole 512-bit blocks, at least one block.
  std::size_t blocks = (n * 12 + 511) / 512;
  int bits = 0;
  while ((std::size_t{1} << bits) < blocks) ++bits;
  blocks = std::size_t{1} << bits;
  block_bits_ = bits;
  words_.assign(blocks * 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Fingerprint fp = data[i];
    const std::uint64_t h1 = fp * 0xc2b2ae3d27d4eb4full;
    std::uint64_t* block = words_.data() + (BlockIndex(h1) << 3);
    std::uint64_t h2 = fp * 0x165667b19e3779f9ull;
    for (int k = 0; k < kProbes; ++k) {
      const unsigned bit = static_cast<unsigned>(h2 & 511u);
      h2 >>= 9;
      block[bit >> 6] |= 1ull << (bit & 63u);
    }
  }
}

namespace {

/// Writes `entries` as raw little-endian u64s into a fresh file under `dir`
/// and maps it back read-only. Returns the mapping (or nullptr on any
/// failure — callers fall back to keeping the run in memory).
void* SpillToFile(const std::vector<Fingerprint>& entries,
                  const std::string& dir, std::string& path_out,
                  std::size_t& bytes_out) {
  static std::atomic<std::uint64_t> spill_seq{0};
  char name[64];
  std::snprintf(name, sizeof(name), "/run-%d-%llu.fps",
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(
                    spill_seq.fetch_add(1, std::memory_order_relaxed)));
  const std::string path = dir + name;
  const std::size_t bytes = entries.size() * sizeof(Fingerprint);
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd < 0) return nullptr;
  const char* p = reinterpret_cast<const char*>(entries.data());
  std::size_t off = 0;
  while (off < bytes) {
    const ssize_t n = ::write(fd, p + off, bytes - off);
    if (n <= 0) {
      ::close(fd);
      ::unlink(path.c_str());
      return nullptr;
    }
    off += static_cast<std::size_t>(n);
  }
  void* map = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    ::unlink(path.c_str());
    return nullptr;
  }
  path_out = path;
  bytes_out = bytes;
  return map;
}

}  // namespace

SortedRun::SortedRun(std::vector<Fingerprint> entries,
                     const std::string& spill_dir,
                     std::uint64_t& spilled_bytes)
    : mem_(std::move(entries)) {
  size_ = mem_.size();
  bloom_.Build(mem_.data(), size_);
  if (!spill_dir.empty() && size_ > 0) {
    std::size_t bytes = 0;
    void* map = SpillToFile(mem_, spill_dir, path_, bytes);
    if (map != nullptr) {
      map_ = map;
      map_bytes_ = bytes;
      data_ = static_cast<const Fingerprint*>(map);
      spilled_bytes += bytes;
      mem_.clear();
      mem_.shrink_to_fit();
      return;
    }
  }
  data_ = mem_.data();
}

SortedRun::~SortedRun() {
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    ::unlink(path_.c_str());
  }
}

bool SortedRun::Contains(Fingerprint fp) const noexcept {
  return std::binary_search(data_, data_ + size_, fp);
}

}  // namespace detail

TieredFingerprintSet::TieredFingerprintSet(const TieredOptions& options)
    : options_(options) {
  if (options_.hot_entries == 0) options_.hot_entries = 1;
}

TieredFingerprintSet::~TieredFingerprintSet() = default;

bool TieredFingerprintSet::ProbeRuns(Fingerprint fp) {
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    const detail::SortedRun& run = **it;
    if (!run.MayContain(fp)) continue;
    ++stats_.run_probes;
    if (run.Contains(fp)) {
      ++stats_.bloom_true_positives;
      return true;
    }
    ++stats_.bloom_false_positives;
  }
  return false;
}

bool TieredFingerprintSet::Insert(Fingerprint fp) {
  if (hot_.Contains(fp)) {
    ++stats_.hot_hits;
    return false;
  }
  if (ProbeRuns(fp)) return false;
  // Novel. Frozen semantics mirror FingerprintSet: at the total budget the
  // state is reported novel but not recorded.
  if (total_entries_ >= options_.max_entries) return true;
  hot_.Insert(fp);
  ++total_entries_;
  if (hot_.Size() >= options_.hot_entries) Compact();
  return true;
}

bool TieredFingerprintSet::Contains(Fingerprint fp) const noexcept {
  if (hot_.Contains(fp)) return true;
  for (const auto& run : runs_) {
    if (run->MayContain(fp) && run->Contains(fp)) return true;
  }
  return false;
}

void TieredFingerprintSet::Compact() {
  std::vector<Fingerprint> entries;
  entries.reserve(hot_.Size());
  hot_.AppendTo(entries);
  hot_.Clear();
  std::sort(entries.begin(), entries.end());
  // Hot entries were checked against every run on insert, so runs stay
  // mutually disjoint and no dedup across runs is needed here.
  run_entries_ += entries.size();
  runs_.push_back(std::make_unique<detail::SortedRun>(
      std::move(entries), options_.spill_dir, stats_.spilled_bytes));
  ++stats_.compactions;

  if (runs_.size() >= kMaxRuns) {
    // Full k-way merge of all runs into one. Runs are disjoint, so this is
    // a pure merge of sorted sequences; a simple repeated two-way merge is
    // fine at k=8 and keeps the code obvious.
    std::vector<Fingerprint> merged;
    merged.reserve(run_entries_);
    for (const auto& run : runs_) {
      const std::size_t old = merged.size();
      merged.insert(merged.end(), run->Data(), run->Data() + run->Size());
      std::inplace_merge(merged.begin(),
                         merged.begin() + static_cast<std::ptrdiff_t>(old),
                         merged.end());
    }
    runs_.clear();
    runs_.push_back(std::make_unique<detail::SortedRun>(
        std::move(merged), options_.spill_dir, stats_.spilled_bytes));
    ++stats_.merges;
  }
}

VisitedStats TieredFingerprintSet::Stats() const {
  VisitedStats out = stats_;
  out.hot_entries = hot_.Size();
  out.run_entries = run_entries_;
  out.runs = runs_.size();
  for (const auto& run : runs_) {
    if (run->Spilled()) ++out.spilled_runs;
  }
  return out;
}

}  // namespace systest
