// SysTest systematic-testing framework.
//
// Deterministic pseudo-random number generation. Every source of randomness
// in the testing engine flows through one of these generators so that an
// execution is fully determined by (seed, iteration). We intentionally do not
// use std::mt19937 et al. because their exact output is awkward to keep
// stable across standard-library implementations, and trace replay depends on
// bit-exact reproducibility.
#pragma once

#include <cstdint>

namespace systest {

/// SplitMix64: used to derive per-iteration seeds from a base seed.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
constexpr std::uint64_t SplitMix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256**: the workhorse generator used by scheduling strategies.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept { Reseed(seed); }

  constexpr void Reseed(std::uint64_t seed) noexcept {
    // Seed the full 256-bit state from SplitMix64, as recommended by the
    // xoshiro authors; guarantees a non-zero state.
    for (auto& word : state_) word = SplitMix64(seed);
  }

  constexpr std::uint64_t Next() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). `bound` must be > 0. Uses Lemire-style
  /// rejection-free multiply-shift reduction; the tiny modulo bias is
  /// irrelevant for schedule exploration and keeps replay simple.
  constexpr std::uint64_t NextBelow(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  constexpr bool NextBool() noexcept { return (Next() >> 63) != 0; }

  /// Uniform double in [0, 1).
  constexpr double NextDouble() noexcept {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace systest
