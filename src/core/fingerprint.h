// SysTest systematic-testing framework.
//
// Execution fingerprinting — the state-space-caching half of stateful
// exploration. A Fingerprint is a 64-bit digest of the serialized system's
// current program state: for every live machine its dense StateId, its
// queued event-type ids (the queue head order the scheduler actually sees),
// its receive-wait set, and optionally a domain payload contributed through
// Machine::FingerprintPayload. The Runtime maintains the digest
// INCREMENTALLY: each machine's contribution is hashed separately and
// XOR-combined into the world fingerprint, so a scheduling step only rehashes
// the machines it actually touched (the stepped machine plus event targets),
// not the world.
//
// Fingerprints are process-local: machine contributions hash interned
// EventTypeIds, whose values depend on first-use order within a process run.
// They must never be serialized; everything durable (traces, replay) stays
// fingerprint-free.
//
// Visited-set implementations, smallest to largest:
//   - FingerprintSet: the original capped flat set (kept for tests and as
//     the semantic reference — the tiered set must answer identically).
//   - TieredFingerprintSet: two levels. An exact bounded HOT level (open
//     addressing over raw 64-bit fingerprints) absorbs all inserts; when it
//     fills, its contents COMPACT into an immutable sorted run fronted by a
//     blocked bloom filter, and the hot level starts over. Runs merge k-way
//     as they accumulate and can spill to mmap-able files on disk, so
//     hundreds of millions of fingerprints fit without the honest hit rate
//     collapsing at the old flat cap. Because entries are already 64-bit
//     fingerprints, back-level membership stays EXACT: a bloom negative
//     skips the run, a bloom positive binary-searches it — the filter only
//     saves probes, it never changes an answer, so pruning soundness is
//     identical to the flat set (pinned by tests/core_visited_tiered_test.cc).
//   - explore::ShardedFingerprintSet: 64 independently locked shards, each a
//     TieredFingerprintSet, for parallel workers (explore/).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace systest {

/// 64-bit digest of a program state (or of one machine's contribution).
using Fingerprint = std::uint64_t;

/// Incremental FNV-1a 64 over 64-bit words. Also the extension point handed
/// to Machine::FingerprintPayload, so domain harnesses mix their semantic
/// state (counters, table contents, ...) into the default structural view.
class StateHasher {
 public:
  StateHasher& Mix(std::uint64_t value) noexcept {
    // FNV-1a, one byte at a time over the little-endian word: keeps the
    // avalanche of the byte-wise reference function without materializing a
    // buffer.
    for (int shift = 0; shift < 64; shift += 8) {
      hash_ ^= (value >> shift) & 0xffu;
      hash_ *= kPrime;
    }
    return *this;
  }

  [[nodiscard]] Fingerprint Digest() const noexcept { return hash_; }

 private:
  static constexpr std::uint64_t kOffset = 1469598103934665603ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t hash_ = kOffset;
};

/// Consecutive already-visited states after which an execution is pruned
/// (see VisitedSet): long enough that an execution crossing known territory
/// can still diverge back out of it, short enough that executions which
/// reconverged for good stop burning budget.
inline constexpr std::uint64_t kFingerprintPruneRun = 8;

/// Internal telemetry of a visited set (obs "visited.*" instruments and the
/// TestReport "visited" block). The flat set reports all-zero; the tiered
/// set counts its level traffic.
struct VisitedStats {
  // Probe traffic (cumulative).
  std::uint64_t hot_hits = 0;        ///< probes answered by the hot level
  std::uint64_t run_probes = 0;      ///< binary searches (bloom positives)
  std::uint64_t bloom_true_positives = 0;   ///< run probe found the state
  std::uint64_t bloom_false_positives = 0;  ///< run probe missed (bloom lied)
  // Maintenance (cumulative).
  std::uint64_t compactions = 0;     ///< hot level flushed into a new run
  std::uint64_t merges = 0;          ///< k-way run merges
  std::uint64_t spilled_bytes = 0;   ///< run bytes written to the spill dir
  // Occupancy (snapshot at the time Stats() was taken).
  std::uint64_t hot_entries = 0;     ///< fingerprints in the hot level
  std::uint64_t run_entries = 0;     ///< fingerprints across back-level runs
  std::uint64_t runs = 0;            ///< live back-level runs
  std::uint64_t spilled_runs = 0;    ///< runs currently living on disk

  VisitedStats& operator+=(const VisitedStats& other) noexcept {
    hot_hits += other.hot_hits;
    run_probes += other.run_probes;
    bloom_true_positives += other.bloom_true_positives;
    bloom_false_positives += other.bloom_false_positives;
    compactions += other.compactions;
    merges += other.merges;
    spilled_bytes += other.spilled_bytes;
    hot_entries += other.hot_entries;
    run_entries += other.run_entries;
    runs += other.runs;
    spilled_runs += other.spilled_runs;
    return *this;
  }
};

/// Engine-side interface over "the set of program states any execution has
/// visited". The serial TestingEngine owns a TieredFingerprintSet; parallel
/// exploration workers share a ShardedFingerprintSet (explore/). One virtual
/// call per scheduling step, paid only when TestConfig::stateful is on.
class VisitedSet {
 public:
  virtual ~VisitedSet() = default;

  /// Records `fp` as visited. Returns true when the state is novel (a miss
  /// in cache terms), false when it was already present (a hit).
  virtual bool Insert(Fingerprint fp) = 0;

  /// Distinct states recorded so far (all levels).
  [[nodiscard]] virtual std::size_t Size() const = 0;

  /// Level/maintenance telemetry. Flat sets report zeros.
  [[nodiscard]] virtual VisitedStats Stats() const { return {}; }
};

/// Single-threaded visited set with a hard entry cap (TestConfig::max_visited)
/// so stateful runs have bounded memory. Once full, the set is frozen:
/// lookups still report known states as hits, but unseen states are reported
/// novel without being recorded — pruning degrades gracefully instead of
/// growing without bound or (worse) pruning executions on states it never
/// actually saw. Superseded by TieredFingerprintSet in the engines; kept as
/// the semantic reference the tiered set is tested against.
class FingerprintSet final : public VisitedSet {
 public:
  explicit FingerprintSet(std::size_t max_entries) : max_entries_(max_entries) {}

  bool Insert(Fingerprint fp) override {
    if (set_.size() >= max_entries_) {
      return set_.find(fp) == set_.end();
    }
    return set_.insert(fp).second;
  }

  [[nodiscard]] std::size_t Size() const override { return set_.size(); }

 private:
  std::size_t max_entries_;
  std::unordered_set<Fingerprint> set_;
};

namespace detail {

/// The hot level: open-addressing (linear probe) set of raw 64-bit
/// fingerprints, power-of-two table, 0 reserved as the empty slot (a real
/// zero fingerprint is tracked in a side flag). The table grows by doubling
/// up to the configured hot capacity's load ceiling, then the owner compacts
/// it away — Clear() keeps the allocation, so steady-state compaction cycles
/// allocate nothing.
class HotFingerprintTable {
 public:
  HotFingerprintTable() { Rehash(kInitialCapacity); }

  [[nodiscard]] bool Contains(Fingerprint fp) const noexcept {
    if (fp == 0) return has_zero_;
    std::size_t i = IndexOf(fp);
    while (true) {
      const Fingerprint slot = slots_[i];
      if (slot == fp) return true;
      if (slot == 0) return false;
      i = (i + 1) & mask_;
    }
  }

  /// Pre-condition: !Contains(fp).
  void Insert(Fingerprint fp) {
    if (fp == 0) {
      has_zero_ = true;
      ++size_;
      return;
    }
    if ((size_ + 1) * 8 >= (mask_ + 1) * 7) Rehash((mask_ + 1) * 2);
    std::size_t i = IndexOf(fp);
    while (slots_[i] != 0) i = (i + 1) & mask_;
    slots_[i] = fp;
    ++size_;
  }

  [[nodiscard]] std::size_t Size() const noexcept { return size_; }

  /// Empties the table, keeping its capacity for the next fill cycle.
  void Clear() noexcept {
    std::fill(slots_.begin(), slots_.end(), 0);
    has_zero_ = false;
    size_ = 0;
  }

  /// Drains the contents into `out` (appended, unsorted).
  void AppendTo(std::vector<Fingerprint>& out) const {
    if (has_zero_) out.push_back(0);
    for (const Fingerprint slot : slots_) {
      if (slot != 0) out.push_back(slot);
    }
  }

 private:
  static constexpr std::size_t kInitialCapacity = 1024;

  /// Fingerprints arrive well mixed, but the sharded wrapper consumes their
  /// LOW bits for shard selection, so the index comes from the high bits of
  /// a multiplicative remix — shard-mates don't all collide into one probe
  /// chain.
  [[nodiscard]] std::size_t IndexOf(Fingerprint fp) const noexcept {
    return static_cast<std::size_t>((fp * 0x9e3779b97f4a7c15ull) >> shift_) &
           mask_;
  }

  void Rehash(std::size_t capacity) {
    std::vector<Fingerprint> old = std::move(slots_);
    slots_.assign(capacity, 0);
    mask_ = capacity - 1;
    shift_ = 32;  // take index bits from the middle-high word
    for (const Fingerprint fp : old) {
      if (fp == 0) continue;
      std::size_t i = IndexOf(fp);
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = fp;
    }
  }

  std::vector<Fingerprint> slots_;
  std::size_t mask_ = 0;
  int shift_ = 32;
  std::size_t size_ = 0;
  bool has_zero_ = false;
};

/// Blocked bloom filter over one immutable run: 64-byte (cache-line) blocks,
/// 7 bits per key inside one block, sized at ~12 bits/entry for a ~0.5%
/// false-positive rate. A probe touches exactly one cache line, so the
/// common back-level MISS costs one filter lookup per run instead of a
/// binary search into (possibly disk-resident) run data.
class BlockedBloom {
 public:
  void Build(const Fingerprint* data, std::size_t n);
  [[nodiscard]] bool MayContain(Fingerprint fp) const noexcept {
    if (words_.empty()) return false;
    const std::uint64_t h1 = fp * 0xc2b2ae3d27d4eb4full;
    const std::uint64_t* block = words_.data() + (BlockIndex(h1) << 3);
    std::uint64_t h2 = fp * 0x165667b19e3779f9ull;
    for (int k = 0; k < kProbes; ++k) {
      const unsigned bit = static_cast<unsigned>(h2 & 511u);
      h2 >>= 9;
      if ((block[bit >> 6] & (1ull << (bit & 63u))) == 0) return false;
    }
    return true;
  }

 private:
  static constexpr int kProbes = 7;

  /// Top block_bits_ bits of the remix hash. Split into two shifts because
  /// block_bits_ may be 0 (one block) and a single >> 64 would be UB.
  [[nodiscard]] std::uint64_t BlockIndex(std::uint64_t h1) const noexcept {
    return (h1 >> 1) >> (63 - block_bits_);
  }

  std::vector<std::uint64_t> words_;  ///< 8 words (one cache line) per block
  int block_bits_ = 0;                ///< log2(block count)
};

/// One immutable sorted run of fingerprints, optionally spilled to a file in
/// the owner's spill directory and mapped back read-only. Membership is a
/// bloom check then a binary search — exact either way.
class SortedRun {
 public:
  /// Takes ownership of `entries` (sorted, deduplicated). With a non-empty
  /// `spill_dir` the run is written to a fresh file there and mmap-ed; on
  /// any I/O failure it silently stays in memory (correctness first, disk
  /// residency best-effort). `spilled_bytes` is bumped by the file size on
  /// a successful spill.
  SortedRun(std::vector<Fingerprint> entries, const std::string& spill_dir,
            std::uint64_t& spilled_bytes);
  ~SortedRun();
  SortedRun(const SortedRun&) = delete;
  SortedRun& operator=(const SortedRun&) = delete;

  [[nodiscard]] bool MayContain(Fingerprint fp) const noexcept {
    return bloom_.MayContain(fp);
  }
  [[nodiscard]] bool Contains(Fingerprint fp) const noexcept;
  [[nodiscard]] std::size_t Size() const noexcept { return size_; }
  [[nodiscard]] const Fingerprint* Data() const noexcept { return data_; }
  [[nodiscard]] bool Spilled() const noexcept { return map_ != nullptr; }
  [[nodiscard]] const std::string& Path() const noexcept { return path_; }

 private:
  std::vector<Fingerprint> mem_;      ///< empty once spilled
  const Fingerprint* data_ = nullptr;
  std::size_t size_ = 0;
  BlockedBloom bloom_;
  void* map_ = nullptr;               ///< mmap base when spilled
  std::size_t map_bytes_ = 0;
  std::string path_;                  ///< spill file (unlinked on destruction)
};

}  // namespace detail

/// Configuration of a TieredFingerprintSet (TestConfig::{max_visited,
/// max_visited_hot, visited_spill_dir}).
struct TieredOptions {
  /// Total distinct-state budget across BOTH levels. Beyond it the set
  /// freezes exactly like the flat set: known states still hit, unseen
  /// states are reported novel without being recorded.
  std::size_t max_entries = 1u << 20;
  /// Hot-level capacity: when the exact in-memory front reaches this many
  /// entries it compacts into a sorted run. With hot >= max_entries the set
  /// never compacts and behaves exactly like the flat FingerprintSet.
  std::size_t hot_entries = 1u << 20;
  /// Non-empty: compacted/merged runs are written here as raw little-endian
  /// 64-bit files and mapped back read-only, so the back level's memory
  /// footprint is the bloom filters (~1.5 bytes/entry), not the runs.
  std::string spill_dir;
};

/// The two-level visited set (see file header). Single-threaded; parallel
/// workers get one per shard via explore::ShardedFingerprintSet.
class TieredFingerprintSet final : public VisitedSet {
 public:
  explicit TieredFingerprintSet(const TieredOptions& options);
  ~TieredFingerprintSet() override;

  bool Insert(Fingerprint fp) override;
  [[nodiscard]] std::size_t Size() const override { return total_entries_; }
  [[nodiscard]] VisitedStats Stats() const override;

  /// Pure membership (no stats traffic, no insertion) — test/debug helper.
  [[nodiscard]] bool Contains(Fingerprint fp) const noexcept;

  /// Back-level runs merge k-way whenever this many accumulate.
  static constexpr std::size_t kMaxRuns = 8;

 private:
  [[nodiscard]] bool ProbeRuns(Fingerprint fp);
  void Compact();

  TieredOptions options_;
  detail::HotFingerprintTable hot_;
  std::vector<std::unique_ptr<detail::SortedRun>> runs_;
  std::size_t total_entries_ = 0;  ///< hot + runs (the value Size() reports)
  std::size_t run_entries_ = 0;
  VisitedStats stats_;
};

}  // namespace systest
