// SysTest systematic-testing framework.
//
// Execution fingerprinting — the state-space-caching half of stateful
// exploration. A Fingerprint is a 64-bit digest of the serialized system's
// current program state: for every live machine its dense StateId, its
// queued event-type ids (the queue head order the scheduler actually sees),
// its receive-wait set, and optionally a domain payload contributed through
// Machine::FingerprintPayload. The Runtime maintains the digest
// INCREMENTALLY: each machine's contribution is hashed separately and
// XOR-combined into the world fingerprint, so a scheduling step only rehashes
// the machines it actually touched (the stepped machine plus event targets),
// not the world.
//
// Fingerprints are process-local: machine contributions hash interned
// EventTypeIds, whose values depend on first-use order within a process run.
// They must never be serialized; everything durable (traces, replay) stays
// fingerprint-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>

namespace systest {

/// 64-bit digest of a program state (or of one machine's contribution).
using Fingerprint = std::uint64_t;

/// Incremental FNV-1a 64 over 64-bit words. Also the extension point handed
/// to Machine::FingerprintPayload, so domain harnesses mix their semantic
/// state (counters, table contents, ...) into the default structural view.
class StateHasher {
 public:
  StateHasher& Mix(std::uint64_t value) noexcept {
    // FNV-1a, one byte at a time over the little-endian word: keeps the
    // avalanche of the byte-wise reference function without materializing a
    // buffer.
    for (int shift = 0; shift < 64; shift += 8) {
      hash_ ^= (value >> shift) & 0xffu;
      hash_ *= kPrime;
    }
    return *this;
  }

  [[nodiscard]] Fingerprint Digest() const noexcept { return hash_; }

 private:
  static constexpr std::uint64_t kOffset = 1469598103934665603ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t hash_ = kOffset;
};

/// Consecutive already-visited states after which an execution is pruned
/// (see VisitedSet): long enough that an execution crossing known territory
/// can still diverge back out of it, short enough that executions which
/// reconverged for good stop burning budget.
inline constexpr std::uint64_t kFingerprintPruneRun = 8;

/// Engine-side interface over "the set of program states any execution has
/// visited". The serial TestingEngine owns a FingerprintSet; parallel
/// exploration workers share a ShardedFingerprintSet (explore/). One virtual
/// call per scheduling step, paid only when TestConfig::stateful is on.
class VisitedSet {
 public:
  virtual ~VisitedSet() = default;

  /// Records `fp` as visited. Returns true when the state is novel (a miss
  /// in cache terms), false when it was already present (a hit).
  virtual bool Insert(Fingerprint fp) = 0;

  /// Distinct states recorded so far.
  [[nodiscard]] virtual std::size_t Size() const = 0;
};

/// Single-threaded visited set with a hard entry cap (TestConfig::max_visited)
/// so stateful runs have bounded memory. Once full, the set is frozen:
/// lookups still report known states as hits, but unseen states are reported
/// novel without being recorded — pruning degrades gracefully instead of
/// growing without bound or (worse) pruning executions on states it never
/// actually saw.
class FingerprintSet final : public VisitedSet {
 public:
  explicit FingerprintSet(std::size_t max_entries) : max_entries_(max_entries) {}

  bool Insert(Fingerprint fp) override {
    if (set_.size() >= max_entries_) {
      return set_.find(fp) == set_.end();
    }
    return set_.insert(fp).second;
  }

  [[nodiscard]] std::size_t Size() const override { return set_.size(); }

 private:
  std::size_t max_entries_;
  std::unordered_set<Fingerprint> set_;
};

}  // namespace systest
