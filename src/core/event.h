// SysTest systematic-testing framework.
//
// Events are the only way machines communicate (the paper's P# events model
// messages, failures and timeouts, §2.1). An event is an immutable value;
// ownership is transferred into the target machine's queue as a
// std::unique_ptr<const Event>. Dispatch is by a process-wide interned
// EventTypeId — a dense integer assigned to each event type on first use —
// so the per-dispatch handler/goto/defer/ignore lookups in the runtime are
// flat array indexing instead of type_index hashing. User events remain
// ordinary structs deriving from systest::Event — no codegen, no manual
// registration step (MakeEvent stamps the id; anything else is interned
// lazily on first dispatch).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <typeindex>
#include <typeinfo>
#include <unordered_map>
#include <vector>

namespace systest {

/// Dense process-wide id of an event type (or, via MonitorTypeIdOf, of a
/// monitor type). 0 is the "not yet interned" sentinel; real ids start at 1.
using EventTypeId = std::uint32_t;

inline constexpr EventTypeId kInvalidEventTypeId = 0;

namespace detail {

/// Thread-safe type_index -> dense id intern table. Ids are assigned in
/// first-come order, so their VALUES are process-run specific — they must
/// never be serialized; everything semantic (traces, replay) is id-value
/// independent.
class TypeInternTable {
 public:
  EventTypeId GetOrRegister(std::type_index type);
  [[nodiscard]] std::size_t Count() const;

  /// Short (namespace-stripped, demangled) name of an interned id; "?" for
  /// ids this table never issued. Reverse lookup for observability — per-
  /// event-type metrics and coverage heatmaps key on it.
  [[nodiscard]] std::string NameOf(EventTypeId id) const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::type_index, EventTypeId> ids_;
  std::vector<std::string> names_;  ///< index = id - 1
};

/// The process-wide event-type intern table.
TypeInternTable& EventTypeTable();

/// Separate id space for monitor types (used by Runtime's dense monitor
/// lookup).
TypeInternTable& MonitorTypeTable();

struct EventTypeStamp;

}  // namespace detail

class Event;

namespace detail {

/// Per-type copy used by the fault plane to duplicate a delivery. Returns a
/// fresh most-derived copy of `ev`; never called for a type that did not
/// register one.
using EventCloneFn = std::unique_ptr<const Event> (*)(const Event& ev);

/// Registers/queries the clone function of an interned event type. The
/// registry is a lock-free dense array indexed by EventTypeId; registration
/// happens as a side effect of EventTypeIdOf<E>'s one-time interning, so any
/// type that ever flowed through MakeEvent/Send/On<E> is covered.
void RegisterEventClone(EventTypeId id, EventCloneFn fn);
[[nodiscard]] EventCloneFn CloneFnFor(EventTypeId id) noexcept;

/// Copies `ev` via its registered clone function (nullptr when the type
/// never registered one — e.g. a type with a non-copyable member, which the
/// fault plane then simply never duplicates).
[[nodiscard]] std::unique_ptr<const Event> CloneEvent(const Event& ev);

template <typename E>
EventTypeId InternEventType();

}  // namespace detail

/// Interned id of event type E. First call registers E (and, for copyable
/// types, its duplication clone); later calls are a guarded static read.
template <typename E>
EventTypeId EventTypeIdOf() {
  static const EventTypeId id = detail::InternEventType<E>();
  return id;
}

/// Interned id of monitor type M (its own id space, see MonitorTypeTable).
template <typename M>
EventTypeId MonitorTypeIdOf() {
  static const EventTypeId id =
      detail::MonitorTypeTable().GetOrRegister(std::type_index(typeid(M)));
  return id;
}

/// Base class for all events exchanged between machines (and notifications
/// delivered to monitors).
class Event {
 public:
  Event() = default;
  Event& operator=(const Event&) = delete;
  Event(Event&&) = delete;
  Event& operator=(Event&&) = delete;
  virtual ~Event() = default;

  /// Dynamic type of the most-derived event (kept for diagnostics and any
  /// code that wants the type_index; dispatch uses TypeId()).
  [[nodiscard]] std::type_index Type() const {
    return std::type_index(typeid(*this));
  }

  /// Interned dense id of the most-derived event type. Events built through
  /// MakeEvent / Machine::Send are pre-stamped, making this a plain field
  /// read on the dispatch hot path; events constructed by hand fall back to
  /// one interning lookup, cached on the instance.
  [[nodiscard]] EventTypeId TypeId() const {
    const EventTypeId id = cached_type_id_;
    if (id != kInvalidEventTypeId) {
      return id;
    }
    return InternTypeId();
  }

  /// Demangled name of the most-derived event type (for traces and errors).
  /// Virtual so events can enrich the readable trace with payload details —
  /// the paper notes that "out of the box, P# traces include only machine-
  /// and event-level information, but it is easy to add application-specific
  /// information, and we did so in all of our case studies" (§6.2).
  [[nodiscard]] virtual std::string Name() const;

  /// Pooled allocation: every scheduling step allocates and frees at least
  /// one event, so events recycle through a thread-local, size-binned free
  /// list — steady-state send/dispatch does no malloc. Thread-local means no
  /// synchronization and no cross-thread sharing (each parallel-exploration
  /// worker owns its pool; it is released at thread exit). Over-aligned
  /// event types fall through to the aligned global operator new
  /// automatically, since only these two forms are overridden.
  static void* operator new(std::size_t size);
  static void operator delete(void* ptr, std::size_t size) noexcept;

 protected:
  /// Copyable by derived event types only — the fault plane's duplication
  /// clone copies the most-derived event through a per-type registered
  /// function (see RegisterEventClone). Public copying stays unavailable so
  /// an Event can never be sliced through the base.
  Event(const Event&) = default;

 private:
  friend struct detail::EventTypeStamp;

  EventTypeId InternTypeId() const;

  /// Lazily interned; mutable because stamping happens on const instances
  /// (events are only ever touched by one runtime thread at a time).
  mutable EventTypeId cached_type_id_ = kInvalidEventTypeId;
};

namespace detail {

/// Grants MakeEvent/Notify access to pre-stamp the interned id.
struct EventTypeStamp {
  static void Set(const Event& event, EventTypeId id) noexcept {
    event.cached_type_id_ = id;
  }
};

template <typename E>
EventTypeId InternEventType() {
  const EventTypeId id =
      EventTypeTable().GetOrRegister(std::type_index(typeid(E)));
  if constexpr (std::is_copy_constructible_v<E>) {
    RegisterEventClone(id, [](const Event& ev) -> std::unique_ptr<const Event> {
      auto copy = std::make_unique<E>(static_cast<const E&>(ev));
      EventTypeStamp::Set(*copy, ev.TypeId());
      return copy;
    });
  }
  return id;
}

}  // namespace detail

/// Short name of an interned event type id (see TypeInternTable::NameOf).
[[nodiscard]] std::string EventTypeName(EventTypeId id);

/// Demangles a typeid name on GCC/Clang; returns the raw name elsewhere.
std::string DemangleTypeName(const char* mangled);

/// Short name: namespace qualifiers stripped from a demangled type name.
std::string ShortTypeName(const std::type_info& info);

/// Built-in event that halts the receiving machine (P# halt semantics: the
/// machine stops processing and silently drops all further events).
struct HaltEvent final : Event {};

/// Convenience factory: make a unique_ptr<const Event> from an event type,
/// pre-stamped with its interned type id.
template <typename E, typename... Args>
std::unique_ptr<const Event> MakeEvent(Args&&... args) {
  std::unique_ptr<E> event = std::make_unique<E>(std::forward<Args>(args)...);
  detail::EventTypeStamp::Set(*event, EventTypeIdOf<E>());
  return event;
}

}  // namespace systest
