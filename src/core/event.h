// SysTest systematic-testing framework.
//
// Events are the only way machines communicate (the paper's P# events model
// messages, failures and timeouts, §2.1). An event is an immutable value;
// ownership is transferred into the target machine's queue as a
// std::unique_ptr<const Event>. Dispatch is by std::type_index, so user
// events are ordinary structs deriving from systest::Event — no codegen, no
// registration step.
#pragma once

#include <memory>
#include <string>
#include <typeindex>
#include <typeinfo>

namespace systest {

/// Base class for all events exchanged between machines (and notifications
/// delivered to monitors).
class Event {
 public:
  Event() = default;
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  Event(Event&&) = delete;
  Event& operator=(Event&&) = delete;
  virtual ~Event() = default;

  /// Dynamic type of the most-derived event, used for handler dispatch.
  [[nodiscard]] std::type_index Type() const { return std::type_index(typeid(*this)); }

  /// Demangled name of the most-derived event type (for traces and errors).
  /// Virtual so events can enrich the readable trace with payload details —
  /// the paper notes that "out of the box, P# traces include only machine-
  /// and event-level information, but it is easy to add application-specific
  /// information, and we did so in all of our case studies" (§6.2).
  [[nodiscard]] virtual std::string Name() const;
};

/// Demangles a typeid name on GCC/Clang; returns the raw name elsewhere.
std::string DemangleTypeName(const char* mangled);

/// Short name: namespace qualifiers stripped from a demangled type name.
std::string ShortTypeName(const std::type_info& info);

/// Built-in event that halts the receiving machine (P# halt semantics: the
/// machine stops processing and silently drops all further events).
struct HaltEvent final : Event {};

/// Convenience factory: make a unique_ptr<const Event> from an event type.
template <typename E, typename... Args>
std::unique_ptr<const Event> MakeEvent(Args&&... args) {
  return std::make_unique<const E>(std::forward<Args>(args)...);
}

}  // namespace systest
