#include "core/trace.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace systest {

std::string Trace::ToString() const {
  std::string out;
  out.reserve(decisions_.size() * 4);
  for (const Decision& d : decisions_) {
    if (!out.empty()) out.push_back(';');
    switch (d.kind) {
      case Decision::Kind::kSchedule:
        out.push_back('s');
        out += std::to_string(d.value);
        break;
      case Decision::Kind::kBool:
        out.push_back('b');
        out += std::to_string(d.value);
        break;
      case Decision::Kind::kInt:
        out.push_back('i');
        out += std::to_string(d.value);
        out.push_back('/');
        out += std::to_string(d.bound);
        break;
    }
  }
  return out;
}

namespace {

std::uint64_t ParseNumber(std::string_view text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::invalid_argument("Trace::Parse: bad number: " +
                                std::string(text));
  }
  return value;
}

}  // namespace

Trace Trace::Parse(const std::string& text) {
  Trace trace;
  std::string_view rest(text);
  while (!rest.empty()) {
    const auto semi = rest.find(';');
    std::string_view token = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    if (token.empty()) {
      throw std::invalid_argument("Trace::Parse: empty token");
    }
    const char tag = token.front();
    token.remove_prefix(1);
    switch (tag) {
      case 's':
        trace.RecordSchedule(ParseNumber(token));
        break;
      case 'b':
        trace.RecordBool(ParseNumber(token) != 0);
        break;
      case 'i': {
        const auto slash = token.find('/');
        if (slash == std::string_view::npos) {
          throw std::invalid_argument("Trace::Parse: kInt missing bound");
        }
        trace.RecordInt(ParseNumber(token.substr(0, slash)),
                        ParseNumber(token.substr(slash + 1)));
        break;
      }
      default:
        throw std::invalid_argument(std::string("Trace::Parse: bad tag: ") +
                                    tag);
    }
  }
  return trace;
}

namespace {
constexpr std::string_view kTraceMagic = "systest-trace";
constexpr std::string_view kTraceVersion = "v1";
}  // namespace

std::string Trace::Serialize() const {
  std::string out;
  out += kTraceMagic;
  out += ' ';
  out += kTraceVersion;
  out += ' ';
  out += std::to_string(decisions_.size());
  out += '\n';
  out += ToString();
  out += '\n';
  return out;
}

Trace Trace::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string magic, version, count_text;
  if (!(in >> magic >> version >> count_text) || magic != kTraceMagic) {
    throw std::invalid_argument("Trace::Deserialize: missing header");
  }
  if (version != kTraceVersion) {
    throw std::invalid_argument("Trace::Deserialize: unsupported version " +
                                version);
  }
  const std::uint64_t count = ParseNumber(count_text);
  std::string line;
  std::getline(in, line);  // consume the rest of the header line
  std::getline(in, line);  // the decision line (empty for an empty trace)
  Trace trace = Parse(line);
  if (trace.Size() != count) {
    throw std::invalid_argument(
        "Trace::Deserialize: decision count mismatch (header says " +
        count_text + ", parsed " + std::to_string(trace.Size()) + ")");
  }
  return trace;
}

void Trace::SaveFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("Trace::SaveFile: cannot open " + path);
  }
  out << Serialize();
  if (!out.flush()) {
    throw std::runtime_error("Trace::SaveFile: write failed for " + path);
  }
}

Trace Trace::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("Trace::LoadFile: cannot open " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return Deserialize(contents.str());
}

}  // namespace systest
