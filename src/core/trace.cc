#include "core/trace.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace systest {

namespace {

/// Format tag of a value/bound decision kind ('i', 'c', 'r', 'd', 'u', 'p',
/// 'h').
char PairTagOf(Decision::Kind kind) {
  switch (kind) {
    case Decision::Kind::kInt: return 'i';
    case Decision::Kind::kCrash: return 'c';
    case Decision::Kind::kRestart: return 'r';
    case Decision::Kind::kDrop: return 'd';
    case Decision::Kind::kDuplicate: return 'u';
    case Decision::Kind::kPartition: return 'p';
    case Decision::Kind::kHeal: return 'h';
    case Decision::Kind::kSchedule:
    case Decision::Kind::kBool: break;
  }
  return '?';
}

}  // namespace

std::string Trace::ToString() const {
  std::string out;
  out.reserve(decisions_.size() * 4);
  for (const Decision& d : decisions_) {
    if (!out.empty()) out.push_back(';');
    switch (d.kind) {
      case Decision::Kind::kSchedule:
        out.push_back('s');
        out += std::to_string(d.value);
        break;
      case Decision::Kind::kBool:
        out.push_back('b');
        out += std::to_string(d.value);
        break;
      case Decision::Kind::kInt:
      case Decision::Kind::kCrash:
      case Decision::Kind::kRestart:
      case Decision::Kind::kDrop:
      case Decision::Kind::kDuplicate:
      case Decision::Kind::kPartition:
      case Decision::Kind::kHeal:
        out.push_back(PairTagOf(d.kind));
        out += std::to_string(d.value);
        out.push_back('/');
        out += std::to_string(d.bound);
        break;
    }
  }
  return out;
}

bool Trace::HasFaultDecisions() const noexcept {
  for (const Decision& d : decisions_) {
    if (d.IsFault()) return true;
  }
  return false;
}

bool Trace::HasPartitionDecisions() const noexcept {
  for (const Decision& d : decisions_) {
    if (d.IsPartition()) return true;
  }
  return false;
}

std::string Trace::DescribeFaults() const {
  std::string out;
  for (const Decision& d : decisions_) {
    if (!d.IsFault()) continue;
    if (!out.empty()) out += "; ";
    switch (d.kind) {
      case Decision::Kind::kCrash:
        out += "crash m" + std::to_string(d.value) + "@s" +
               std::to_string(d.bound);
        break;
      case Decision::Kind::kRestart:
        out += "restart m" + std::to_string(d.value) + "@s" +
               std::to_string(d.bound);
        break;
      case Decision::Kind::kDrop:
        out += "drop #" + std::to_string(d.value) + "->m" +
               std::to_string(d.bound);
        break;
      case Decision::Kind::kDuplicate:
        out += "dup #" + std::to_string(d.value) + "->m" +
               std::to_string(d.bound);
        break;
      case Decision::Kind::kPartition:
        out += "part m" + std::to_string(d.value) + "@s" +
               std::to_string(d.bound);
        break;
      case Decision::Kind::kHeal:
        out += "heal m" + std::to_string(d.value) + "@s" +
               std::to_string(d.bound);
        break;
      default:
        break;
    }
  }
  return out;
}

namespace {

std::uint64_t ParseNumber(std::string_view text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::invalid_argument("Trace::Parse: bad number: " +
                                std::string(text));
  }
  return value;
}

}  // namespace

Trace Trace::Parse(const std::string& text) {
  Trace trace;
  std::string_view rest(text);
  while (!rest.empty()) {
    const auto semi = rest.find(';');
    std::string_view token = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    if (token.empty()) {
      throw std::invalid_argument("Trace::Parse: empty token");
    }
    const char tag = token.front();
    token.remove_prefix(1);
    switch (tag) {
      case 's':
        trace.RecordSchedule(ParseNumber(token));
        break;
      case 'b':
        trace.RecordBool(ParseNumber(token) != 0);
        break;
      case 'i':
      case 'c':
      case 'r':
      case 'd':
      case 'u':
      case 'p':
      case 'h': {
        const auto slash = token.find('/');
        if (slash == std::string_view::npos) {
          throw std::invalid_argument(
              std::string("Trace::Parse: tag '") + tag + "' missing '/'");
        }
        const std::uint64_t value = ParseNumber(token.substr(0, slash));
        const std::uint64_t bound = ParseNumber(token.substr(slash + 1));
        switch (tag) {
          case 'i': trace.RecordInt(value, bound); break;
          case 'c': trace.RecordCrash(value, bound); break;
          case 'r': trace.RecordRestart(value, bound); break;
          case 'd': trace.RecordDrop(value, bound); break;
          case 'u': trace.RecordDuplicate(value, bound); break;
          case 'p': trace.RecordPartition(value, bound); break;
          case 'h': trace.RecordHeal(value, bound); break;
        }
        break;
      }
      default:
        throw std::invalid_argument(std::string("Trace::Parse: bad tag: ") +
                                    tag);
    }
  }
  return trace;
}

namespace {
constexpr std::string_view kTraceMagic = "systest-trace";
// v1: schedule/bool/int decisions only (every pre-fault-plane file). v2:
// fault decisions (c/r/d/u tags) may appear. v3: partition decisions (p/h
// tags) may appear. The writer picks the LOWEST version that can represent
// the trace, so fault-free traces remain byte-identical to what v1 writers
// produced and partition-free fault traces to what v2 writers produced.
constexpr std::string_view kTraceVersionV1 = "v1";
constexpr std::string_view kTraceVersionV2 = "v2";
constexpr std::string_view kTraceVersionV3 = "v3";
}  // namespace

std::string Trace::Serialize() const {
  std::string out;
  out += kTraceMagic;
  out += ' ';
  out += HasPartitionDecisions() ? kTraceVersionV3
         : HasFaultDecisions()   ? kTraceVersionV2
                                 : kTraceVersionV1;
  out += ' ';
  out += std::to_string(decisions_.size());
  out += '\n';
  out += ToString();
  out += '\n';
  return out;
}

Trace Trace::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string magic, version, count_text;
  if (!(in >> magic >> version >> count_text) || magic != kTraceMagic) {
    throw std::invalid_argument("Trace::Deserialize: missing header");
  }
  if (version != kTraceVersionV1 && version != kTraceVersionV2 &&
      version != kTraceVersionV3) {
    throw std::invalid_argument("Trace::Deserialize: unsupported version " +
                                version);
  }
  const std::uint64_t count = ParseNumber(count_text);
  std::string line;
  std::getline(in, line);  // consume the rest of the header line
  std::getline(in, line);  // the decision line (empty for an empty trace)
  Trace trace = Parse(line);
  if (trace.Size() != count) {
    throw std::invalid_argument(
        "Trace::Deserialize: decision count mismatch (header says " +
        count_text + ", parsed " + std::to_string(trace.Size()) + ")");
  }
  if (version == kTraceVersionV1 && trace.HasFaultDecisions()) {
    throw std::invalid_argument(
        "Trace::Deserialize: v1 header but fault decisions present (no v1 "
        "writer ever produced these; the file is corrupt)");
  }
  if (version != kTraceVersionV3 && trace.HasPartitionDecisions()) {
    throw std::invalid_argument(
        "Trace::Deserialize: " + version +
        " header but partition decisions present (no " + version +
        " writer ever produced these; the file is corrupt)");
  }
  return trace;
}

void Trace::SaveFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("Trace::SaveFile: cannot open " + path);
  }
  out << Serialize();
  if (!out.flush()) {
    throw std::runtime_error("Trace::SaveFile: write failed for " + path);
  }
}

Trace Trace::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("Trace::LoadFile: cannot open " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return Deserialize(contents.str());
}

}  // namespace systest
