// SysTest systematic-testing framework.
//
// The TestingEngine is the paper's "systematic testing engine" (§2): it
// repeatedly executes a harness from start to completion, each time exploring
// a potentially different set of nondeterministic choices, until it reaches a
// user-supplied bound (number of executions or time) or hits a safety or
// liveness violation. On a bug it produces a TestReport carrying the full
// decision trace, which can be replayed to reproduce the bug deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/bug.h"
#include "core/runtime.h"
#include "core/strategy.h"
#include "core/trace.h"

namespace systest {

/// A harness closes the system under test: it populates a fresh Runtime with
/// the wrapped real components, the modeled environment and the monitors
/// (the paper's three modeling artifacts, §1).
using Harness = std::function<void(Runtime&)>;

/// Engine configuration. Defaults mirror the paper's setup where applicable
/// (the evaluation used 100,000-execution budgets and a PCT budget of 2
/// priority change points).
struct TestConfig {
  std::uint64_t iterations = 10'000;
  std::uint64_t max_steps = 10'000;
  std::uint64_t seed = 0;
  /// Strategy name resolved through StrategyRegistry ("random", "pct",
  /// "round-robin", "delay-bounded", or any registered third-party name; a
  /// "(N)" suffix overrides strategy_budget). Implicitly assignable from the
  /// deprecated StrategyKind enum.
  StrategyName strategy;
  int strategy_budget = 2;  ///< PCT priority change points / delay budget
  std::uint64_t liveness_temperature_threshold = 0;  ///< 0 = max_steps / 2
  bool report_deadlock = true;
  bool stop_on_first_bug = true;
  double time_budget_seconds = 0;  ///< 0 = unlimited
  /// When true, the buggy execution is re-run under replay with verbose
  /// logging to produce a human-readable trace in TestReport::execution_log.
  bool readable_trace_on_bug = false;

  /// Fails fast on configurations that would silently explore nothing:
  /// throws std::invalid_argument for zero iterations, zero max_steps, an
  /// empty strategy name, a negative time budget, or a liveness temperature
  /// threshold above the step bound. TestSession calls this before running.
  void Validate() const;
};

/// Outcome of a testing run.
struct TestReport {
  bool bug_found = false;
  BugKind bug_kind = BugKind::kSafety;
  std::string bug_message;
  std::uint64_t bug_iteration = 0;     ///< 1-based iteration that found the bug
  double seconds_to_bug = 0.0;
  std::uint64_t ndc = 0;               ///< nondet. choices in the buggy execution
  std::uint64_t bug_steps = 0;         ///< scheduling steps in the buggy execution
  Trace bug_trace;                     ///< replayable witness
  std::string execution_log;           ///< readable trace (optional)
  std::uint64_t executions = 0;        ///< executions actually performed
  std::uint64_t total_steps = 0;
  double total_seconds = 0.0;
  std::string strategy_name;

  /// One-line summary suitable for bench output.
  [[nodiscard]] std::string Summary() const;
};

/// Outcome of one serialized execution. Shared currency between the serial
/// TestingEngine and the parallel engines in src/explore/.
struct ExecutionResult {
  bool bug_found = false;
  BugKind bug_kind = BugKind::kSafety;
  std::string bug_message;
  std::uint64_t steps = 0;        ///< scheduling steps performed
  bool hit_step_bound = false;    ///< true when max_steps was reached
  /// Full decision trace of the execution (moved out of the Runtime, so
  /// always populated). On a bug it is the replayable witness.
  Trace trace;
};

/// Per-execution hook: (0-based iteration, completed result). Invoked after
/// every execution, bug or not, before the engine consumes the result.
using IterationCallback =
    std::function<void(std::uint64_t iteration, const ExecutionResult& result)>;

/// Builds the per-execution RuntimeOptions implied by `config`.
RuntimeOptions MakeRuntimeOptions(const TestConfig& config, bool logging);

/// Steps `runtime` (already populated via `harness`) to quiescence or the
/// step bound, running the end-of-execution property checks. Returns true if
/// the step bound was hit. Throws BugFound on a violation.
bool StepToCompletion(Runtime& runtime, const Harness& harness,
                      std::uint64_t max_steps);

/// Runs exactly one execution of `harness` for the given 0-based `iteration`:
/// prepares `strategy`, builds a fresh Runtime, steps it to completion and
/// converts any BugFound into the returned result. This is the unit of work
/// that both TestingEngine::Run and ParallelTestingEngine workers schedule.
ExecutionResult RunOneExecution(const TestConfig& config,
                                const Harness& harness,
                                SchedulingStrategy& strategy,
                                std::uint64_t iteration);

/// Systematic testing engine. Thread-compatible; one engine per thread.
class TestingEngine {
 public:
  TestingEngine(TestConfig config, Harness harness);

  /// Runs up to config.iterations executions (or until the time budget or the
  /// first bug, per config). Returns the aggregate report.
  TestReport Run();

  /// Replays a recorded trace once, with readable logging enabled, and
  /// returns the resulting report (bug_found reflects whether the violation
  /// reproduced).
  TestReport Replay(const Trace& trace);

  [[nodiscard]] const TestConfig& Config() const noexcept { return config_; }

  /// Installs an optional per-execution observer hook (see IterationCallback).
  /// The callback runs outside the serialized execution, so it cannot perturb
  /// scheduling decisions.
  void SetIterationCallback(IterationCallback callback) {
    on_iteration_ = std::move(callback);
  }

 private:
  TestConfig config_;
  Harness harness_;
  IterationCallback on_iteration_;
};

}  // namespace systest
