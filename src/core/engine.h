// SysTest systematic-testing framework.
//
// The TestingEngine is the paper's "systematic testing engine" (§2): it
// repeatedly executes a harness from start to completion, each time exploring
// a potentially different set of nondeterministic choices, until it reaches a
// user-supplied bound (number of executions or time) or hits a safety or
// liveness violation. On a bug it produces a TestReport carrying the full
// decision trace, which can be replayed to reproduce the bug deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/bug.h"
#include "core/fingerprint.h"
#include "core/runtime.h"
#include "core/strategy.h"
#include "core/trace.h"

namespace systest {

namespace obs {
class CampaignMetrics;   // obs/campaign.h
struct WorkerObs;        // obs/campaign.h
struct CoverageReport;   // obs/coverage.h
}  // namespace obs

namespace corpus {
class TraceCorpus;       // corpus/trace_corpus.h
}  // namespace corpus

/// A harness closes the system under test: it populates a fresh Runtime with
/// the wrapped real components, the modeled environment and the monitors
/// (the paper's three modeling artifacts, §1).
using Harness = std::function<void(Runtime&)>;

/// Engine configuration. Defaults mirror the paper's setup where applicable
/// (the evaluation used 100,000-execution budgets and a PCT budget of 2
/// priority change points).
struct TestConfig {
  std::uint64_t iterations = 10'000;
  std::uint64_t max_steps = 10'000;
  std::uint64_t seed = 0;
  /// Strategy name resolved through StrategyRegistry ("random", "pct",
  /// "round-robin", "delay-bounded", or any registered third-party name; a
  /// "(N)" suffix overrides strategy_budget). Implicitly assignable from the
  /// deprecated StrategyKind enum.
  StrategyName strategy;
  int strategy_budget = 2;  ///< PCT priority change points / delay budget
  std::uint64_t liveness_temperature_threshold = 0;  ///< 0 = max_steps / 2
  bool report_deadlock = true;
  bool stop_on_first_bug = true;
  double time_budget_seconds = 0;  ///< 0 = unlimited
  /// When true, the buggy execution is re-run under replay with verbose
  /// logging to produce a human-readable trace in TestReport::execution_log.
  bool readable_trace_on_bug = false;

  /// Stateful exploration (core/fingerprint.h): fingerprint every visited
  /// program state and early-terminate executions that stay in
  /// already-visited territory for kFingerprintPruneRun consecutive steps.
  /// Opt-in: with the default false, scheduling, traces and reports are
  /// bit-for-bit what they always were. Pruned executions skip the
  /// end-of-execution quiescence/liveness checks (their continuations were
  /// covered by the execution that first explored those states), so safety
  /// bugs keep firing mid-step but stateful runs trade some
  /// liveness/deadlock sensitivity for budget.
  bool stateful = false;
  /// With stateful: mix Machine::FingerprintPayload into each contribution,
  /// separating states that differ only in domain data (default view is
  /// state id + queued event types).
  bool fingerprint_payloads = false;
  /// With stateful: TOTAL budget of distinct fingerprints tracked across
  /// both levels of the tiered visited set (memory/disk bound). Once the
  /// budget is exhausted the set freezes — known states still prune, unseen
  /// states pass through uncounted. (Parallel runs enforce it approximately:
  /// the sharded set's count is maintained without a global lock, so a race
  /// can overshoot by at most one entry per worker.)
  std::uint64_t max_visited = 1u << 20;
  /// With stateful: capacity of the exact in-memory HOT level. When the hot
  /// level fills, its fingerprints compact into an immutable sorted run
  /// behind a bloom filter (core/fingerprint.h) and the hot level restarts.
  /// The default equals the max_visited default, so out of the box nothing
  /// ever compacts and behavior is identical to the historical flat set;
  /// raising max_visited into the hundreds of millions while keeping
  /// max_visited_hot modest is the intended big-state-space configuration.
  std::uint64_t max_visited_hot = 1u << 20;
  /// With stateful: when non-empty, compacted runs are written to this
  /// directory as raw 64-bit files and mapped back read-only, so the back
  /// level's RAM footprint is its bloom filters (~1.5 bytes/state) rather
  /// than the full runs. Files are private to the run and unlinked when the
  /// set is destroyed. Empty = runs stay in memory.
  std::string visited_spill_dir;
  /// With stateful: consecutive already-visited states after which an
  /// execution is pruned. The default is the tuning kFingerprintPruneRun
  /// shipped with; harnesses with long forced prefixes (deterministic setup
  /// cascades every execution replays) raise it so executions are not
  /// pruned before reaching fresh territory.
  std::uint64_t prune_run = kFingerprintPruneRun;
  /// With stateful: record each execution's per-step fingerprint sequence
  /// into ExecutionResult::fingerprint_trail. Test/debug instrumentation —
  /// off by default so production stateful runs pay nothing for trails.
  bool record_fingerprint_trail = false;

  // ---- Fault plane (README "Fault injection") ----
  // Scheduler-controlled machine crash/restart and per-delivery message
  // drop/duplication, decided by the active strategy at first-class choice
  // points and recorded in the trace (format v2), so failure schedules are
  // explored, budgeted and replayable exactly like scheduling decisions.
  // All defaults off: fault-free runs are bit-for-bit unchanged.

  /// Per-execution crash budget (machines opted in via
  /// Runtime::SetCrashable). 0 disables crashes.
  std::uint64_t max_crashes = 0;
  /// Per-execution restart budget for crashed machines. 0 disables restarts
  /// (crashes are then permanent for the execution).
  std::uint64_t max_restarts = 0;
  /// Per-delivery drop odds denominator: each machine-to-machine delivery
  /// is dropped with probability 1/den. 0 disables drops.
  std::uint64_t drop_probability_den = 0;
  /// Per-execution duplication budget (a delivery enqueued twice). 0
  /// disables duplication.
  std::uint64_t max_duplications = 0;
  /// Per-execution partition budget: the strategy may isolate a machine
  /// opted in via Runtime::SetPartitionable (deliveries between it and any
  /// other machine vanish) and heal it as a separate choice point. Recorded
  /// as trace v3 decisions; 0 disables partitions.
  std::uint64_t max_partitions = 0;
  /// Per-step heal odds denominator while a partition is installed. 0
  /// disables heals (partitions last the rest of the execution).
  std::uint64_t partition_heal_den = 4;
  /// Odds denominator for the budgeted rolls: while budget remains, a crash,
  /// restart or partition fires with probability 1/den per step and a
  /// duplication with 1/den per delivery. Shapes WHEN faults land, not how
  /// many.
  std::uint64_t fault_odds_den = 16;
  /// PCT-style pre-sampled fault placement: when > 0, each iteration
  /// samples this many fault points uniformly from the step budget up front
  /// (mirroring PCT's priority change points) and destructive faults
  /// (crash, partition) fire only at those points instead of geometric
  /// per-step odds — fault depth becomes bounded and systematic. Honored by
  /// the built-in random/PCT/delay-bounded strategies; others keep the
  /// geometric default. 0 = geometric placement.
  int fault_placement_points = 0;

  /// Coverage-guided exploration (corpus/trace_corpus.h): marks this run as
  /// corpus-fed. Portfolio plans convert some workers to the "mutate"
  /// strategy when set; requires stateful, because the corpus's interest
  /// signal IS the fingerprint-miss count. Arming is normally done by
  /// TestSession when a corpus dir or the mutate strategy is requested.
  bool corpus_mutation = false;

  /// Whether this config turns the fault plane on.
  [[nodiscard]] bool FaultsEnabled() const noexcept {
    return max_crashes > 0 || drop_probability_den > 0 ||
           max_duplications > 0 || max_partitions > 0;
  }

  /// Fails fast on configurations that would silently explore nothing:
  /// throws std::invalid_argument for zero iterations, zero max_steps, an
  /// empty strategy name, a negative time budget, a liveness temperature
  /// threshold above the step bound, fingerprint_payloads without stateful,
  /// stateful with max_visited == 0, max_visited_hot == 0 or prune_run == 0,
  /// a visited_spill_dir without stateful, restarts without
  /// crashes, a drop denominator of 1 (every message dropped), a heal
  /// denominator of 1 (every partition healed on the next step), fault
  /// odds below 2, or pre-sampled fault placement with no fault budgets.
  /// TestSession calls this before running.
  void Validate() const;
};

/// Outcome of a testing run.
struct TestReport {
  bool bug_found = false;
  BugKind bug_kind = BugKind::kSafety;
  std::string bug_message;
  std::uint64_t bug_iteration = 0;     ///< 1-based iteration that found the bug
  double seconds_to_bug = 0.0;
  std::uint64_t ndc = 0;               ///< nondet. choices in the buggy execution
  std::uint64_t bug_steps = 0;         ///< scheduling steps in the buggy execution
  Trace bug_trace;                     ///< replayable witness
  std::string execution_log;           ///< readable trace (optional)
  std::uint64_t executions = 0;        ///< executions actually performed
  std::uint64_t total_steps = 0;
  double total_seconds = 0.0;
  std::string strategy_name;

  // Stateful-exploration aggregates (meaningful when `stateful`).
  bool stateful = false;               ///< run used fingerprint dedup
  std::uint64_t distinct_states = 0;   ///< visited-set size (both levels)
  std::uint64_t pruned_executions = 0; ///< executions early-terminated
  std::uint64_t fingerprint_hits = 0;  ///< states seen that were known
  std::uint64_t fingerprint_misses = 0;///< states seen that were novel
  std::uint64_t visited_budget = 0;    ///< config max_visited (0 = stateless)
  /// Tiered visited-set telemetry: level occupancy and compaction/spill/
  /// bloom traffic (core/fingerprint.h). All-zero for stateless runs.
  VisitedStats visited;

  // Fault-plane aggregates (meaningful when `faults`): injected-fault
  // totals summed over every execution of the run.
  bool faults = false;                 ///< run had fault injection enabled
  Runtime::FaultStats injected_faults;

  /// Merged coverage heatmap (obs/coverage.h). nullptr unless the run
  /// collected coverage; shared so parallel aggregates and per-worker
  /// reports can alias without copying.
  std::shared_ptr<const obs::CoverageReport> coverage;

  /// A stateful campaign has saturated its visited set when the TOTAL
  /// distinct-state budget — hot level plus back-level runs — is exhausted:
  /// from then on novel states pass through uncounted and the reported hit
  /// rate goes dishonest. Hot-level compactions are NOT saturation; they
  /// are routine maintenance of the tiered set. Machine-detectable
  /// (JsonReporter emits it) so CI can flag under-provisioned budgets.
  [[nodiscard]] bool VisitedSetSaturated() const noexcept {
    return stateful && !bug_found && visited_budget > 0 &&
           distinct_states >= visited_budget;
  }

  /// Fraction of observed states that were already visited (0 when the run
  /// was not stateful or observed nothing).
  [[nodiscard]] double FingerprintHitRate() const noexcept {
    const std::uint64_t total = fingerprint_hits + fingerprint_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(fingerprint_hits) /
                            static_cast<double>(total);
  }

  /// One-line summary suitable for bench output.
  [[nodiscard]] std::string Summary() const;
};

/// Outcome of one serialized execution. Shared currency between the serial
/// TestingEngine and the parallel engines in src/explore/.
struct ExecutionResult {
  bool bug_found = false;
  BugKind bug_kind = BugKind::kSafety;
  std::string bug_message;
  std::uint64_t steps = 0;        ///< scheduling steps performed
  bool hit_step_bound = false;    ///< true when max_steps was reached
  /// Full decision trace of the execution (moved out of the Runtime, so
  /// always populated). On a bug it is the replayable witness.
  Trace trace;

  // Per-execution fingerprint stats (stateful runs only).
  bool pruned = false;                  ///< early-terminated on known states
  std::uint64_t fingerprint_hits = 0;   ///< already-visited states touched
  std::uint64_t fingerprint_misses = 0; ///< novel states discovered

  /// Faults injected into this execution (all-zero for fault-free runs).
  Runtime::FaultStats faults;
  /// Post-step fingerprint sequence (moved out of the Runtime; empty unless
  /// TestConfig::record_fingerprint_trail). Deterministic for a given seed —
  /// prunes only truncate it.
  std::vector<Fingerprint> fingerprint_trail;
};

/// Per-execution hook: (0-based iteration, completed result). Invoked after
/// every execution, bug or not, before the engine consumes the result.
using IterationCallback =
    std::function<void(std::uint64_t iteration, const ExecutionResult& result)>;

/// Builds the per-execution RuntimeOptions implied by `config`.
RuntimeOptions MakeRuntimeOptions(const TestConfig& config, bool logging);

/// Steps `runtime` (already populated via `harness`) to quiescence or the
/// step bound, running the end-of-execution property checks. Returns true if
/// the step bound was hit. Throws BugFound on a violation.
bool StepToCompletion(Runtime& runtime, const Harness& harness,
                      std::uint64_t max_steps);

/// Runs exactly one execution of `harness` for the given 0-based `iteration`:
/// prepares `strategy`, builds a fresh Runtime, steps it to completion and
/// converts any BugFound into the returned result. This is the unit of work
/// that both TestingEngine::Run and ParallelTestingEngine workers schedule.
/// With config.stateful and a non-null `visited`, every post-step fingerprint
/// is checked against the set and the execution is pruned after
/// kFingerprintPruneRun consecutive known states (the serial engine passes
/// its private FingerprintSet; explore workers share a sharded set).
/// A non-null `obs` attaches its ExecutionProbe to the runtime and flushes
/// the finished execution into the campaign instruments (obs/campaign.h);
/// scheduling is bit-for-bit identical either way.
ExecutionResult RunOneExecution(const TestConfig& config,
                                const Harness& harness,
                                SchedulingStrategy& strategy,
                                std::uint64_t iteration,
                                VisitedSet* visited = nullptr,
                                obs::WorkerObs* obs = nullptr);

/// Thread-affine execution recycler (ROADMAP "Raw speed: reuse everything
/// across executions"): the stateful replacement for calling RunOneExecution
/// in a loop. The first RunOne builds the Runtime and runs the harness as
/// usual, then tries Runtime::SealForReuse. If every harness machine/monitor
/// opted in (kReusableRuntime), the SAME Runtime serves every later
/// execution via ResetForNextExecution, with events bump-allocated from an
/// execution-scoped arena that rewinds between executions — no
/// construction, no per-event frees, no trace reallocation. Otherwise the
/// runner silently falls back to a fresh Runtime per execution on the
/// thread-local event pool, bit-for-bit the pre-existing path. Results are
/// identical either way: golden traces, fingerprints and RNG streams do not
/// depend on which path ran (tests/core_recycle_test.cc pins this).
///
/// One runner per thread; it borrows config/harness/strategy/obs, which
/// must outlive it. Replay never recycles (TestingEngine::Replay builds its
/// own Runtime), so witness reproduction is untouched.
class ExecutionRunner {
 public:
  ExecutionRunner(const TestConfig& config, const Harness& harness,
                  SchedulingStrategy& strategy, obs::WorkerObs* obs);
  ~ExecutionRunner();
  ExecutionRunner(const ExecutionRunner&) = delete;
  ExecutionRunner& operator=(const ExecutionRunner&) = delete;

  /// Runs one execution for the 0-based `iteration` — drop-in for
  /// RunOneExecution with this runner's bound config/harness/strategy/obs.
  ExecutionResult RunOne(std::uint64_t iteration, VisitedSet* visited);

  /// Whether the runner is currently recycling one sealed Runtime (false
  /// until the first RunOne, and permanently false after a fallback).
  [[nodiscard]] bool Recycling() const noexcept {
    return mode_ == Mode::kRecycling;
  }

 private:
  enum class Mode : std::uint8_t {
    kProbing,    ///< first execution: build, run, try to seal
    kRecycling,  ///< sealed: reset-and-reuse with the arena armed
    kFresh,      ///< opted out: fresh Runtime per execution, pool path
  };

  /// harness (optional) + seal attempt (optional) + step loop + result
  /// assembly, exactly mirroring RunOneExecution's order.
  void RunBody(Runtime& runtime, bool run_harness, bool try_seal,
               ExecutionResult& result, VisitedSet* visited);
  /// Destroys the recycled Runtime while its arena is armed (arena-backed
  /// event deletes must no-op), freeing the heap-backed setup prototypes
  /// after disarming, then rewinds the arena.
  void DropRecycledRuntime();

  const TestConfig& config_;
  const Harness& harness_;
  SchedulingStrategy& strategy_;
  obs::WorkerObs* obs_;
  RuntimeOptions options_;  ///< built once; probe wired at construction
  std::unique_ptr<detail::EventArena> arena_;
  std::unique_ptr<Runtime> runtime_;  ///< the recycled Runtime (kRecycling)
  Mode mode_ = Mode::kProbing;
};

/// Systematic testing engine. Thread-compatible; one engine per thread.
class TestingEngine {
 public:
  TestingEngine(TestConfig config, Harness harness);

  /// Runs up to config.iterations executions (or until the time budget or the
  /// first bug, per config). Returns the aggregate report.
  TestReport Run();

  /// Replays a recorded trace once, with readable logging enabled, and
  /// returns the resulting report (bug_found reflects whether the violation
  /// reproduced).
  TestReport Replay(const Trace& trace);

  [[nodiscard]] const TestConfig& Config() const noexcept { return config_; }

  /// Installs an optional per-execution observer hook (see IterationCallback).
  /// The callback runs outside the serialized execution, so it cannot perturb
  /// scheduling decisions.
  void SetIterationCallback(IterationCallback callback) {
    on_iteration_ = std::move(callback);
  }

  /// Attaches campaign observability: with a non-null `metrics` every
  /// execution flushes into its instruments; `coverage` additionally
  /// collects the state-visit/delivery/fault heatmaps into
  /// TestReport::coverage. Replay() never observes.
  void SetObservability(obs::CampaignMetrics* metrics, bool coverage) {
    metrics_ = metrics;
    coverage_ = coverage;
  }

  /// Attaches a trace corpus (borrowed): every stateful execution that
  /// discovered at least one new state (or found a bug) feeds its trace
  /// back in, closing the coverage-guided loop. Replay() never feeds.
  void SetCorpus(corpus::TraceCorpus* corpus) { corpus_ = corpus; }

 private:
  TestConfig config_;
  Harness harness_;
  IterationCallback on_iteration_;
  obs::CampaignMetrics* metrics_ = nullptr;
  bool coverage_ = false;
  corpus::TraceCorpus* corpus_ = nullptr;
};

}  // namespace systest
