// SysTest systematic-testing framework.
//
// Machine/monitor state declarations, in two forms:
//
//  * Builder form (StateDecl / MonitorStateDecl): what State(...) fluent
//    declarations in a constructor accumulate — flexible maps keyed by
//    interned EventTypeId.
//  * Compiled form (MachineDecl / MonitorDecl): an immutable, process-wide
//    per-TYPE artifact built once, on the first Attach of each machine type.
//    States get dense StateIds; handler/goto lookups become flat vector
//    indexing; defer/ignore sets become bitsets. Every later instance of the
//    type skips declaration building entirely (its constructor's State()
//    calls no-op behind a thread-local flag) and just points at the shared
//    decl.
//
// The sharing contract: a machine type's constructor must declare the SAME
// states, handlers and defers for every instance — per-instance variation
// belongs in member data or in SetStart (which stays per-instance precisely
// because harness monitors pick their start state from constructor
// arguments). Every machine in this repo and every P#-style machine we know
// of already satisfies this; the declarations are structural, like a class
// definition.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <new>
#include <set>
#include <string>
#include <type_traits>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/event.h"
#include "core/task.h"

namespace systest {

class Machine;
class Monitor;

namespace detail {

/// Minimal fixed-size callable: stores a trivially-copyable capture of at
/// most 16 bytes (the builder lambdas capture exactly one member-function
/// pointer) and dispatches through one function pointer — cheaper to invoke
/// than std::function on the per-dispatch hot path, and trivially copyable
/// so compiled declarations stay flat.
template <typename Sig>
class InlineFn;

template <typename R, typename... Args>
class InlineFn<R(Args...)> {
 public:
  InlineFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineFn> &&
             sizeof(std::decay_t<F>) <= 16 &&
             std::is_trivially_copyable_v<std::decay_t<F>> &&
             std::is_trivially_destructible_v<std::decay_t<F>>)
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in callable
    using Fn = std::decay_t<F>;
    new (storage_) Fn(std::forward<F>(f));
    invoke_ = [](const void* storage, Args... args) -> R {
      return (*static_cast<const Fn*>(storage))(args...);
    };
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }
  R operator()(Args... args) const { return invoke_(storage_, args...); }

 private:
  alignas(void*) unsigned char storage_[16] = {};
  R (*invoke_)(const void*, Args...) = nullptr;
};

/// Type-erased handler: either a synchronous action or a coroutine. The
/// event pointer is null for entry actions.
struct Handler {
  InlineFn<void(Machine&, const Event*)> sync;
  InlineFn<Task(Machine&, const Event*)> coro;

  [[nodiscard]] bool Valid() const noexcept {
    return static_cast<bool>(sync) || static_cast<bool>(coro);
  }
};

/// Builder form of one machine state (see file comment).
struct StateDecl {
  std::string name;
  Handler entry;
  InlineFn<void(Machine&)> exit;
  std::unordered_map<EventTypeId, Handler> handlers;
  std::unordered_map<EventTypeId, std::string> gotos;
  std::set<EventTypeId> defers;
  std::set<EventTypeId> ignores;
  bool hot = false;   // liveness: progress required while in this state
  bool cold = false;  // liveness: progress happened
};

/// Builder form of one monitor state: always-synchronous handlers.
struct MonitorStateDecl {
  std::string name;
  InlineFn<void(Monitor&)> entry;
  std::unordered_map<EventTypeId, InlineFn<void(Monitor&, const Event&)>>
      handlers;
  std::set<EventTypeId> ignores;
  bool hot = false;
  bool cold = false;
};

/// Dense per-type state id: index into MachineDecl::states (assigned in
/// state-name order, so it is deterministic for a given declaration).
using StateId = std::uint32_t;

inline constexpr std::int32_t kNoEntry = -1;
/// OnGoto target that names a state the machine never declared. The error is
/// raised when (and only when) the goto fires, matching the lazy-lookup
/// semantics declarations had before compilation existed.
inline constexpr std::int32_t kDanglingGoto = -2;
/// Dispatch-table encoding of "OnGoto to StateId s": kGotoBase - s. (Values
/// >= 0 are handler indices; kNoEntry means unhandled.)
inline constexpr std::int32_t kGotoBase = -3;

[[nodiscard]] constexpr std::int32_t EncodeGoto(StateId target) noexcept {
  return kGotoBase - static_cast<std::int32_t>(target);
}
[[nodiscard]] constexpr StateId DecodeGoto(std::int32_t entry) noexcept {
  return static_cast<StateId>(kGotoBase - entry);
}

/// Bitset over interned event ids; ids outside the allocated range are
/// simply "not contained", so sets stay as small as the largest id they
/// actually hold.
class EventIdSet {
 public:
  void Insert(EventTypeId id) {
    const std::size_t word = id >> 6;
    if (word >= bits_.size()) {
      bits_.resize(word + 1, 0);
    }
    bits_[word] |= std::uint64_t{1} << (id & 63);
  }

  [[nodiscard]] bool Contains(EventTypeId id) const noexcept {
    const std::size_t word = id >> 6;
    return word < bits_.size() &&
           ((bits_[word] >> (id & 63)) & std::uint64_t{1}) != 0;
  }

  [[nodiscard]] bool Empty() const noexcept { return bits_.empty(); }

  [[nodiscard]] std::size_t Count() const noexcept {
    std::size_t count = 0;
    for (const std::uint64_t word : bits_) {
      count += static_cast<std::size_t>(__builtin_popcountll(word));
    }
    return count;
  }

 private:
  std::vector<std::uint64_t> bits_;
};

/// Compiled form of one machine state: one flat dispatch table indexed by
/// EventTypeId. An entry is a handler index (>= 0), kNoEntry, kDanglingGoto
/// or an EncodeGoto'd target state — a declared OnGoto shadows a handler for
/// the same event, as it always has.
struct CompiledState {
  std::string name;
  Handler entry;
  InlineFn<void(Machine&)> exit;
  std::vector<Handler> handlers;        ///< dense, ascending event id
  std::vector<std::int32_t> dispatch;   ///< event id -> encoded action
  /// Every OnGoto registration's declared target name (also the dangling
  /// ones), for goto logging/errors and Runtime::GetStats.
  std::unordered_map<EventTypeId, std::string> goto_names;
  EventIdSet defers;
  EventIdSet ignores;
  bool hot = false;
  bool cold = false;

  [[nodiscard]] std::int32_t DispatchOf(EventTypeId id) const noexcept {
    return id < dispatch.size() ? dispatch[id] : kNoEntry;
  }
};

/// Immutable per-machine-TYPE declaration, shared by every instance of the
/// type across all Runtimes (and threads) in the process.
struct MachineDecl {
  std::vector<CompiledState> states;  ///< StateId-indexed
  std::unordered_map<std::string, StateId> by_name;
  std::type_index type{typeid(void)};  ///< for diagnostics and tests

  /// Linear scan: state counts are tiny (2-6), so comparing names directly
  /// (length check first) beats hashing the string on the Goto/Transition
  /// hot path. by_name stays for compile-time duplicate detection.
  [[nodiscard]] const CompiledState* FindState(
      const std::string& name) const {
    for (const CompiledState& state : states) {
      if (state.name == name) {
        return &state;
      }
    }
    return nullptr;
  }
};

/// Compiled form of one monitor state.
struct CompiledMonitorState {
  std::string name;
  InlineFn<void(Monitor&)> entry;
  std::vector<InlineFn<void(Monitor&, const Event&)>> handlers;
  std::vector<std::int32_t> handler_index;
  EventIdSet ignores;
  bool hot = false;
  bool cold = false;

  [[nodiscard]] std::int32_t HandlerIndexOf(EventTypeId id) const noexcept {
    return id < handler_index.size() ? handler_index[id] : kNoEntry;
  }
};

/// Immutable per-monitor-TYPE declaration.
struct MonitorDecl {
  std::vector<CompiledMonitorState> states;
  std::unordered_map<std::string, StateId> by_name;
  std::type_index type{typeid(void)};

  [[nodiscard]] const CompiledMonitorState* FindState(
      const std::string& name) const {
    for (const CompiledMonitorState& state : states) {
      if (state.name == name) {
        return &state;
      }
    }
    return nullptr;
  }
};

/// Process-wide registry of compiled declarations, one per machine/monitor
/// type. Find is how CreateMachine/RegisterMonitor decide whether a new
/// instance may skip declaration building; GetOrCompile publishes the first
/// instance's builder states (first writer wins — concurrent compiles of the
/// same type produce identical decls, so the race is benign).
class DeclRegistry {
 public:
  [[nodiscard]] static const MachineDecl* FindMachineDecl(
      std::type_index type);
  static const MachineDecl* GetOrCompileMachineDecl(
      std::type_index type, std::map<std::string, StateDecl>&& states);

  [[nodiscard]] static const MonitorDecl* FindMonitorDecl(
      std::type_index type);
  static const MonitorDecl* GetOrCompileMonitorDecl(
      std::type_index type, std::map<std::string, MonitorStateDecl>&& states);

  /// Number of machine types compiled so far (test observability).
  [[nodiscard]] static std::size_t MachineDeclCount();
};

/// Per-instance compile paths for types that opt out of sharing (see
/// SharesStateDecls): the caller owns the result instead of the registry.
std::unique_ptr<const MachineDecl> CompileMachineDeclUnshared(
    std::type_index type, std::map<std::string, StateDecl>&& states);
std::unique_ptr<const MonitorDecl> CompileMonitorDeclUnshared(
    std::type_index type, std::map<std::string, MonitorStateDecl>&& states);

/// Whether machine/monitor type M participates in per-type decl sharing.
/// Defaults to true — the correct choice for every machine whose constructor
/// declares the same states for all instances. A type whose declarations
/// legitimately differ per instance (e.g. a bug-injection flag that swaps
/// the state graph, like fabric's AggregatorMachine) opts out by declaring
///   static constexpr bool kShareStateDecls = false;
/// and then pays the per-instance declaration build, exactly as before.
template <typename M, typename = void>
struct SharesStateDecls : std::true_type {};
template <typename M>
struct SharesStateDecls<M, std::void_t<decltype(M::kShareStateDecls)>>
    : std::bool_constant<M::kShareStateDecls> {};

/// Whether machine/monitor type M supports Runtime execution recycling
/// (Runtime::ResetForNextExecution). Opt-IN — the inverse polarity of
/// SharesStateDecls — because reuse is only sound for a type whose author
/// has audited its members: everything that changes during an execution
/// must be restored by Machine::ResetForReuse's built-in wipe plus the
/// type's OnReset() hook. A type declares
///   static constexpr bool kReusableRuntime = true;
/// to participate; a Runtime is recyclable only if EVERY machine and
/// monitor created at harness time declared it (mid-execution machines are
/// simply truncated at reset). Unmarked types silently keep the
/// build-per-execution path, exactly as before.
template <typename M, typename = void>
struct ReusableRuntime : std::false_type {};
template <typename M>
struct ReusableRuntime<M, std::void_t<decltype(M::kReusableRuntime)>>
    : std::bool_constant<M::kReusableRuntime> {};

/// Debug-build tripwire for the sharing contract: verifies that a later
/// instance's freshly built declarations structurally match the shared
/// compiled decl (state names, handler/goto/defer/ignore registrations,
/// entry/exit/hot/cold), throwing BugFound{kHarnessError} on drift — the
/// failure mode of a type that varies its declarations per instance without
/// declaring kShareStateDecls = false. Release builds skip declaration
/// building entirely, so this only runs (and only costs) in !NDEBUG.
void VerifyDeclMatches(const MachineDecl& decl,
                       const std::map<std::string, StateDecl>& states,
                       const char* type_name);
void VerifyMonitorDeclMatches(
    const MonitorDecl& decl,
    const std::map<std::string, MonitorStateDecl>& states,
    const char* type_name);

/// True while a machine/monitor constructor is running for a type whose decl
/// is already compiled: State() then returns inert builders and the
/// constructor pays nothing for declarations.
[[nodiscard]] bool SkipDeclBuild() noexcept;

/// RAII setter for the skip flag (exception-safe across throwing
/// constructors; restores the previous value, so nesting is harmless).
class ScopedDeclSkip {
 public:
  ScopedDeclSkip() noexcept;
  ~ScopedDeclSkip();
  ScopedDeclSkip(const ScopedDeclSkip&) = delete;
  ScopedDeclSkip& operator=(const ScopedDeclSkip&) = delete;

 private:
  bool previous_;
};

}  // namespace detail
}  // namespace systest
