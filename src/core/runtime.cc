#include "core/runtime.h"

#include <algorithm>

#include "core/event_arena.h"
#include "obs/probe.h"

namespace systest {

// ===========================================================================
// Machine

namespace {
const std::string kNoState = "<no-state>";
// Interned once at static init so the per-dispatch halt check is a plain
// integer compare with no static-local guard.
const EventTypeId kHaltTypeId = EventTypeIdOf<HaltEvent>();
}  // namespace

const std::string& Machine::CurrentStateName() const {
  return current_state_ ? current_state_->name : kNoState;
}

StateBuilder Machine::State(std::string name) {
  if (detail::SkipDeclBuild()) {
    // This machine type's declarations are already compiled and shared; the
    // constructor's fluent declaration chain becomes a no-op.
    return StateBuilder(nullptr);
  }
  auto [it, inserted] = builder_states_.try_emplace(name);
  if (inserted) {
    it->second.name = std::move(name);
  }
  return StateBuilder(&it->second);
}

void Machine::ThrowUnattached() const {
  throw BugFound(BugKind::kHarnessError,
                 "machine '" + debug_name_ +
                     "' used the runtime API before being attached "
                     "(Create/Send belong in entry actions, not constructors)");
}

void Machine::RaiseEvent(std::unique_ptr<const Event> ev) {
  if (pending_raise_) {
    throw BugFound(BugKind::kHarnessError,
                   "machine '" + debug_name_ + "' raised two events in one action");
  }
  pending_raise_ = std::move(ev);
}

void Machine::Goto(std::string state) {
  if (pending_goto_) {
    throw BugFound(BugKind::kHarnessError,
                   "machine '" + debug_name_ + "' called Goto twice in one action");
  }
  pending_goto_ = std::move(state);
}

bool Machine::NondetBool() { return Rt().ChooseBool(); }

Fingerprint Machine::ComputeStateFingerprint(bool payloads) const {
  StateHasher hasher;
  hasher.Mix(id_.value);
  // The crashed bit keeps a crashed machine distinct from a merely idle one
  // (fault-free runs hash 0 there, leaving their digests untouched). The
  // restart COUNT is deliberately not mixed: a restarted machine that
  // reconverged to a previously seen state/queue/member view IS the same
  // program state — remaining fault budgets are hashed at the world level.
  hasher.Mix((crashed_ ? 4u : 0u) | (halted_ ? 2u : 0u) |
             (started_ ? 1u : 0u));
  // Dense state id; halted/pre-start machines have no current state.
  hasher.Mix(current_state_ != nullptr ? CurrentStateId()
                                       : ~std::uint64_t{0});
  hasher.Mix(waiting_types_.size());
  for (const EventTypeId type : waiting_types_) {
    hasher.Mix(type);
  }
  queue_.HashTypesInto(hasher);
  if (payloads) {
    FingerprintPayload(hasher);
  }
  return hasher.Digest();
}

std::uint64_t Machine::NondetInt(std::uint64_t bound) {
  return Rt().ChooseInt(bound);
}

void Machine::FailAssert(const std::string& message) {
  Rt().FailAssert("machine '" + debug_name_ + "': " + message);
}

const detail::CompiledState& Machine::FindState(const std::string& name) const {
  const detail::CompiledState* state = decl_->FindState(name);
  if (state == nullptr) {
    throw BugFound(BugKind::kHarnessError,
                   "machine '" + debug_name_ + "' has no state '" + name + "'");
  }
  return *state;
}

void Machine::BeginReceive(std::initializer_list<EventTypeId> types) {
  waiting_types_.assign(types);
}

bool Machine::TryFulfillReceive() {
  std::size_t index = 0;
  for (const auto& ev : queue_) {
    const EventTypeId type = ev->TypeId();
    if (std::find(waiting_types_.begin(), waiting_types_.end(), type) !=
        waiting_types_.end()) {
      received_ = queue_.RemoveAt(index);
      waiting_types_.clear();
      return true;
    }
    ++index;
  }
  return false;
}

std::unique_ptr<const Event> Machine::TakeReceived() {
  assert(received_);
  return std::move(received_);
}

bool Machine::HasMatchingQueuedEvent() const {
  for (const auto& ev : queue_) {
    const EventTypeId type = ev->TypeId();
    if (std::find(waiting_types_.begin(), waiting_types_.end(), type) !=
        waiting_types_.end()) {
      return true;
    }
  }
  return false;
}

bool Machine::IsEnabledSlow() const {
  if (root_task_.Valid()) {
    // Suspended in Receive: enabled iff a matching event is queued.
    return HasMatchingQueuedEvent();
  }
  // Deferrable state: enabled iff some queued event is processable (handler,
  // goto, ignore-drop, halt or unhandled — everything except a deferred
  // event constitutes a step).
  for (const auto& ev : queue_) {
    if (current_state_->defers.Contains(ev->TypeId())) {
      continue;
    }
    return true;
  }
  return false;
}

void Machine::RunStep() {
  if (!started_) {
    started_ = true;
    if (logging_) [[unlikely]] {
      runtime_->LogLine("start   ", debug_name_, " -> ", start_state_);
    }
    Transition(start_state_);
    RunCascade();
    return;
  }
  if (root_task_.Valid()) {
    // Resume the coroutine blocked in Receive with the matching event.
    const bool fulfilled = TryFulfillReceive();
    if (!fulfilled) {
      runtime_->FailAssert("internal: scheduled non-fulfillable receive");
    }
    if (logging_) [[unlikely]] {
      runtime_->LogLine("resume  ", debug_name_, " <- ", received_->Name());
    }
    resume_point_.resume();
    RunCascade();
    return;
  }
  // Dequeue the first processable event.
  while (!queue_.Empty()) {
    std::unique_ptr<const Event> ev;
    if (current_state_ == nullptr || current_state_->defers.Empty()) {
      // No deferrable events in this state: take the front directly.
      ev = queue_.PopFront();
    } else {
      std::size_t index = 0;
      const std::size_t size = queue_.Size();
      const auto* events = queue_.begin();
      while (index < size &&
             current_state_->defers.Contains(events[index]->TypeId())) {
        ++index;
      }
      if (index == size) return;  // only deferred events remain
      ev = queue_.RemoveAt(index);
    }
    if (current_state_ != nullptr &&
        current_state_->ignores.Contains(ev->TypeId())) {
      if (logging_) [[unlikely]] {
        runtime_->LogLine("ignore  ", debug_name_, " x ", ev->Name());
      }
      continue;  // dropped; look for another processable event in this step
    }
    DispatchEvent(std::move(ev), /*raised=*/false);
    RunCascade();
    return;
  }
}

void Machine::DispatchEvent(std::unique_ptr<const Event> ev, bool raised) {
  runtime_->CountCascadeAction();
  const EventTypeId type_id = ev->TypeId();
  if (type_id == kHaltTypeId) {
    DoHalt();
    return;
  }
  if (current_state_ == nullptr) {
    throw BugFound(BugKind::kHarnessError,
                   "machine '" + debug_name_ + "' dispatching without a state");
  }
  const std::int32_t action = current_state_->DispatchOf(type_id);
  if (action >= 0) {
    if (logging_) [[unlikely]] {
      runtime_->LogLine("handle  ", debug_name_, " <- ", ev->Name(), " [",
                        current_state_->name, "]");
    }
    current_event_ = std::move(ev);
    InvokeHandler(current_state_->handlers[static_cast<std::size_t>(action)],
                  current_event_.get());
    return;
  }
  if (action == detail::kNoEntry) {
    throw BugFound(BugKind::kUnhandledEvent,
                   "machine '" + debug_name_ + "' in state '" +
                       current_state_->name + "' cannot handle " +
                       (raised ? "raised " : "") + "event " + ev->Name());
  }
  // Declared OnGoto (possibly to a state that was never declared).
  const std::string& target_name =
      action == detail::kDanglingGoto
          ? current_state_->goto_names.at(type_id)
          : decl_->states[detail::DecodeGoto(action)].name;
  if (logging_) [[unlikely]] {
    runtime_->LogLine("goto    ", debug_name_, " -- ", ev->Name(), " --> ",
                      target_name);
  }
  current_event_ = std::move(ev);
  if (action == detail::kDanglingGoto) {
    Transition(target_name);  // throws the has-no-state harness error
  } else {
    TransitionToState(decl_->states[detail::DecodeGoto(action)]);
  }
}

void Machine::InvokeHandler(const detail::Handler& handler, const Event* event) {
  if (handler.sync) {
    handler.sync(*this, event);
    return;
  }
  root_task_ = handler.coro(*this, event);
  resume_point_ = root_task_.RawHandle();
  resume_point_.resume();
}

void Machine::Transition(const std::string& target) {
  // The exit action runs before the target name is even resolved, so a Goto
  // to an undeclared state still performs the exit's side effects before the
  // harness error — the order string-based transitions have always had.
  if (current_state_ != nullptr && current_state_->exit) {
    current_state_->exit(*this);
  }
  EnterState(FindState(target));
}

void Machine::TransitionToState(const detail::CompiledState& next) {
  if (current_state_ != nullptr && current_state_->exit) {
    current_state_->exit(*this);
  }
  EnterState(next);
}

void Machine::EnterState(const detail::CompiledState& next) {
  current_state_ = &next;
  ++transitions_taken_;
  if (!state_visits_.empty()) [[unlikely]] {
    // Coverage collection (sized at attach only when a coverage probe is on).
    ++state_visits_[CurrentStateId()];
  }
  if (next.entry.Valid()) {
    InvokeHandler(next.entry, nullptr);
  }
}

void Machine::RunCascade() {
  for (;;) {
    if (root_task_.Valid() && !root_task_.Done()) {
      // Suspended in Receive: yield back to the scheduler. The machine must
      // actually be waiting; any other suspension is a framework-misuse bug.
      if (!IsWaitingInReceive()) {
        runtime_->FailAssert("machine '" + debug_name_ +
                             "' suspended outside Receive (co_await of a "
                             "foreign awaitable?)");
      }
      return;
    }
    if (root_task_.Valid()) {
      root_task_.RethrowIfFailed();
      root_task_ = Task();
      resume_point_ = {};
    }
    if (pending_halt_) {
      DoHalt();
      return;
    }
    if (pending_raise_ && pending_goto_) {
      throw BugFound(BugKind::kHarnessError,
                     "machine '" + debug_name_ +
                         "' both raised an event and called Goto in one action");
    }
    if (pending_raise_) {
      std::unique_ptr<const Event> ev = std::move(pending_raise_);
      if (logging_) [[unlikely]] {
        runtime_->LogLine("raise   ", debug_name_, " ^ ", ev->Name());
      }
      DispatchEvent(std::move(ev), /*raised=*/true);
      continue;
    }
    if (pending_goto_) {
      std::string target = std::move(*pending_goto_);
      pending_goto_.reset();
      if (logging_) [[unlikely]] {
        runtime_->LogLine("goto    ", debug_name_, " --> ", target);
      }
      runtime_->CountCascadeAction();
      Transition(target);
      continue;
    }
    current_event_.reset();
    return;
  }
}

void Machine::DoHalt() {
  halted_ = true;
  pending_halt_ = false;
  pending_raise_.reset();
  pending_goto_.reset();
  queue_.Clear();
  waiting_types_.clear();
  root_task_ = Task();
  resume_point_ = {};
  current_event_.reset();
  if (logging_) [[unlikely]] {
    runtime_->LogLine("halt    ", debug_name_);
  }
}

void Machine::DoCrash() {
  // The hook runs first, on the pre-wipe state: it decides what the crash
  // destroys (volatile members) and may Notify monitors that the node died.
  OnCrash();
  crashed_ = true;
  pending_halt_ = false;
  pending_raise_.reset();
  pending_goto_.reset();
  queue_.Clear();
  waiting_types_.clear();
  root_task_ = Task();
  resume_point_ = {};
  current_event_.reset();
  current_state_ = nullptr;
  started_ = false;
  if (logging_) [[unlikely]] {
    runtime_->LogLine("crash   ", debug_name_);
  }
}

void Machine::ResetForReuse() {
  // The DoCrash wipe, generalized to EVERY flag and counter an execution can
  // have touched — including state a BugFound unwind may have left half-set
  // (pending raise/goto, a suspended coroutine, a fulfilled receive).
  queue_.Clear();
  current_event_.reset();
  received_.reset();
  waiting_types_.clear();
  root_task_ = Task();  // destroys a suspended coroutine frame, if any
  resume_point_ = {};
  pending_raise_.reset();
  pending_goto_.reset();
  pending_halt_ = false;
  started_ = false;
  halted_ = false;
  crashed_ = false;
  partitioned_ = false;
  current_state_ = nullptr;
  enabled_cache_ = false;
  enabled_dirty_ = true;
  fp_dirty_ = false;
  restart_count_ = 0;
  transitions_taken_ = 0;
  std::fill(state_visits_.begin(), state_visits_.end(), 0);
  // crashable_/partitionable_ are restored by the runtime from the sealed
  // baseline (it maintains the world-level opt-in counters).
  OnReset();
}

void Machine::DoRestart() {
  crashed_ = false;
  ++restart_count_;
  // started_ is false since the crash, so the machine is enabled again and
  // will run its start state's entry when next scheduled — exactly like a
  // freshly created machine, except members hold the durable state OnCrash
  // preserved.
  OnRestart();
  if (logging_) [[unlikely]] {
    runtime_->LogLine("restart ", debug_name_, " -> ", start_state_);
  }
}

// ===========================================================================
// Monitor

bool Monitor::IsHot() const {
  return current_state_ != nullptr && current_state_->hot;
}

const std::string& Monitor::CurrentStateName() const {
  return current_state_ ? current_state_->name : kNoState;
}

MonitorStateBuilder Monitor::State(std::string name) {
  if (detail::SkipDeclBuild()) {
    return MonitorStateBuilder(nullptr);
  }
  auto [it, inserted] = builder_states_.try_emplace(name);
  if (inserted) {
    it->second.name = std::move(name);
  }
  return MonitorStateBuilder(&it->second);
}

Runtime& Monitor::Rt() {
  if (runtime_ == nullptr) {
    throw BugFound(BugKind::kHarnessError,
                   "monitor '" + debug_name_ + "' used before attachment");
  }
  return *runtime_;
}

const detail::CompiledMonitorState& Monitor::FindState(
    const std::string& name) const {
  const detail::CompiledMonitorState* state = decl_->FindState(name);
  if (state == nullptr) {
    throw BugFound(BugKind::kHarnessError,
                   "monitor '" + debug_name_ + "' has no state '" + name + "'");
  }
  return *state;
}

void Monitor::Goto(const std::string& state) {
  const detail::CompiledMonitorState& next = FindState(state);
  current_state_ = &next;
  ++transitions_taken_;
  if (runtime_ != nullptr && runtime_->LoggingEnabled()) {
    runtime_->LogLine("monitor ", debug_name_, " --> ", state,
                      next.hot ? " [hot]" : next.cold ? " [cold]" : "");
  }
  if (next.entry) {
    next.entry(*this);
  }
}

void Monitor::FailAssert(const std::string& message) {
  Rt().FailAssert("monitor '" + debug_name_ + "': " + message);
}

void Monitor::Start() { Goto(start_state_); }

void Monitor::ResetForReuse() {
  current_state_ = nullptr;
  hot_steps_ = 0;
  transitions_taken_ = 0;
  OnReset();
}

void Monitor::HandleNotification(const Event& event) {
  if (current_state_ == nullptr) {
    throw BugFound(BugKind::kHarnessError,
                   "monitor '" + debug_name_ + "' notified before start");
  }
  const EventTypeId type_id = event.TypeId();
  if (current_state_->ignores.Contains(type_id)) {
    return;
  }
  const std::int32_t handler = current_state_->HandlerIndexOf(type_id);
  if (handler == detail::kNoEntry) {
    throw BugFound(BugKind::kHarnessError,
                   "monitor '" + debug_name_ + "' in state '" +
                       current_state_->name + "' cannot handle notification " +
                       event.Name());
  }
  current_state_->handlers[static_cast<std::size_t>(handler)](*this, event);
}

// ===========================================================================
// Runtime

Runtime::Runtime(SchedulingStrategy& strategy, RuntimeOptions options)
    : strategy_(strategy),
      options_(options),
      strategy_builtin_(strategy.Builtin()),
      fault_mode_(options_.FaultInjectionEnabled() || options_.replay_faults),
      probe_(options_.probe) {
  // One up-front allocation instead of log2(steps) regrows per execution;
  // capped so huge step bounds don't preallocate tens of megabytes.
  trace_.Reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(options_.max_steps, 4096)));
  enabled_scratch_.reserve(16);
}

Runtime::~Runtime() = default;

MachineId Runtime::Attach(std::unique_ptr<Machine> machine,
                          std::string debug_name) {
  machine->runtime_ = this;
  machine->logging_ = options_.logging;
  machine->id_ = MachineId{machines_.size() + 1};
  machine->debug_name_ = std::move(debug_name);
  machine->debug_name_ += '(';
  machine->debug_name_ += std::to_string(machine->id_.value);
  machine->debug_name_ += ')';
  if (machine->start_state_.empty()) {
    throw BugFound(BugKind::kHarnessError,
                   "machine '" + machine->debug_name_ +
                       "' declared no start state (call SetStart)");
  }
  if (machine->decl_ == nullptr) {
    if (machine->share_decls_) {
      // First instance of this machine type anywhere in the process: compile
      // and publish its declarations. Later instances skip declaration
      // building entirely (see CreateMachine).
      machine->decl_ = detail::DeclRegistry::GetOrCompileMachineDecl(
          std::type_index(typeid(*machine)),
          std::move(machine->builder_states_));
    } else {
      machine->owned_decl_ = detail::CompileMachineDeclUnshared(
          std::type_index(typeid(*machine)),
          std::move(machine->builder_states_));
      machine->decl_ = machine->owned_decl_.get();
    }
    machine->builder_states_.clear();
  }
  if (probe_ != nullptr && probe_->coverage) [[unlikely]] {
    // Coverage heatmaps: a dense StateId-indexed visit array per machine.
    // Sized here (decl_ is resolved by now); EnterState only counts when
    // non-empty, so coverage-off runs never touch it.
    machine->state_visits_.assign(machine->decl_->states.size(), 0);
  }
  machines_.push_back(std::move(machine));
  const MachineId id = machines_.back()->id_;
  if (options_.stateful) {
    // The contribution is NOT hashed here but at the next fingerprint
    // refresh — after harness setup (or the creating step) has finished
    // initializing the machine, so post-Create mutations like SetPeer are
    // visible to FingerprintPayload.
    fp_contrib_.push_back(0);
    MarkFingerprintDirty(*machines_.back());
  }
  if (LoggingEnabled()) {
    LogLine("create  ", machines_.back()->debug_name_);
  }
  return id;
}

void Runtime::AttachMonitor(std::unique_ptr<Monitor> monitor,
                            std::string debug_name,
                            EventTypeId monitor_type_id) {
  monitor->runtime_ = this;
  monitor->debug_name_ = std::move(debug_name);
  if (monitor->start_state_.empty()) {
    throw BugFound(BugKind::kHarnessError,
                   "monitor '" + monitor->debug_name_ +
                       "' declared no start state (call SetStart)");
  }
  if (monitor->decl_ == nullptr) {
    if (monitor->share_decls_) {
      monitor->decl_ = detail::DeclRegistry::GetOrCompileMonitorDecl(
          std::type_index(typeid(*monitor)),
          std::move(monitor->builder_states_));
    } else {
      monitor->owned_decl_ = detail::CompileMonitorDeclUnshared(
          std::type_index(typeid(*monitor)),
          std::move(monitor->builder_states_));
      monitor->decl_ = monitor->owned_decl_.get();
    }
    monitor->builder_states_.clear();
  }
  Monitor* raw = monitor.get();
  monitors_.push_back(std::move(monitor));
  if (monitors_by_id_.size() <= monitor_type_id) {
    monitors_by_id_.resize(monitor_type_id + 1, nullptr);
  }
  if (monitors_by_id_[monitor_type_id] == nullptr) {
    // First registration of the type wins, matching the map-emplace
    // semantics notifications and FindMonitor have always had.
    monitors_by_id_[monitor_type_id] = raw;
  }
  raw->Start();
}

const Machine* Runtime::FindMachine(MachineId id) const {
  if (!id.Valid() || id.value > machines_.size()) return nullptr;
  return machines_[id.value - 1].get();
}

Machine* Runtime::FindMachine(MachineId id) {
  if (!id.Valid() || id.value > machines_.size()) return nullptr;
  return machines_[id.value - 1].get();
}

void Runtime::DeliverEvent(MachineId target, std::unique_ptr<const Event> ev,
                           const Machine* sender) {
  Machine* machine = FindMachine(target);
  if (machine == nullptr) {
    throw BugFound(BugKind::kHarnessError,
                   std::string("send to unknown machine id ") +
                       std::to_string(target.value) + " from '" +
                       (sender ? sender->DebugName() : "<harness>") + "'");
  }
  if (machine->halted_ || machine->crashed_) {
    // Events to halted machines are silently dropped (P# semantics); crashed
    // machines behave the same until a restart.
    return;
  }
  if (fault_mode_ && sender != nullptr && sender != machine) [[unlikely]] {
    // Partition check FIRST, before the delivery-fault choice point: a
    // delivery suppressed by an installed partition never consumes a
    // delivery ordinal or a strategy draw. The partition schedule derives
    // identically from the trace in record and replay, so both modes skip
    // the same deliveries and the ordinal streams stay aligned.
    if (sender->partitioned_ || machine->partitioned_) {
      if (LoggingEnabled()) {
        LogLine("part    ", sender->DebugName(), " x ", machine->DebugName(),
                " : ", ev->Name());
      }
      return;  // dropped by the partition
    }
    // Message-fault choice point. Only machine-to-machine traffic between
    // DISTINCT machines is eligible: harness setup sends are wiring, and
    // self-sends are a machine's internal control flow, not the network.
    if (ApplyDeliveryFault(*machine, *ev)) {
      return;  // dropped
    }
  }
  if (LoggingEnabled()) {
    LogLine("send    ", sender ? sender->DebugName() : "<harness>", " -> ",
            machine->DebugName(), " : ", ev->Name());
  }
  // No branch hint: when a probe is armed this is taken on EVERY delivery,
  // and when it isn't the null check predicts perfectly on its own.
  if (probe_ != nullptr) {
    probe_->CountDelivery(ev->TypeId());
  }
  machine->queue_.PushBack(std::move(ev));
  machine->MarkEnabledDirty();
  if (options_.stateful) {
    MarkFingerprintDirty(*machine);
  }
}

void Runtime::SetCrashable(MachineId id, bool crashable) {
  Machine* machine = FindMachine(id);
  if (machine == nullptr) {
    throw BugFound(BugKind::kHarnessError,
                   "SetCrashable on unknown machine id " +
                       std::to_string(id.value));
  }
  if (machine->crashable_ != crashable) {
    machine->crashable_ = crashable;
    crashable_machines_ += crashable ? 1 : -1;
  }
}

void Runtime::SetPartitionable(MachineId id, bool partitionable) {
  Machine* machine = FindMachine(id);
  if (machine == nullptr) {
    throw BugFound(BugKind::kHarnessError,
                   "SetPartitionable on unknown machine id " +
                       std::to_string(id.value));
  }
  if (machine->partitionable_ != partitionable) {
    machine->partitionable_ = partitionable;
    partitionable_machines_ += partitionable ? 1 : -1;
  }
}

void Runtime::SendEvent(MachineId target, std::unique_ptr<const Event> ev) {
  DeliverEvent(target, std::move(ev), nullptr);
}

void Runtime::NotifyMonitorById(EventTypeId monitor_type_id,
                                const Event& event) {
  Monitor* monitor = monitor_type_id < monitors_by_id_.size()
                         ? monitors_by_id_[monitor_type_id]
                         : nullptr;
  if (monitor == nullptr) {
    return;  // monitor not registered in this harness: notification is a no-op
  }
  if (LoggingEnabled()) {
    LogLine("notify  ", monitor->DebugName(), " <- ", event.Name());
  }
  monitor->HandleNotification(event);
}

void Runtime::FailAssert(const std::string& message) {
  throw BugFound(BugKind::kSafety, message);
}

bool Runtime::ChooseBool() {
  const bool value = strategy_.NextBool();
  trace_.RecordBool(value);
  return value;
}

std::uint64_t Runtime::ChooseInt(std::uint64_t bound) {
  if (bound == 0) {
    throw BugFound(BugKind::kHarnessError, "NondetInt with bound 0");
  }
  const std::uint64_t value = strategy_.NextInt(bound);
  trace_.RecordInt(value, bound);
  return value;
}

bool Runtime::Step() {
  if (fault_mode_) [[unlikely]] {
    // Fault choice point (crash/restart/partition/heal) at the step
    // boundary, BEFORE the enabled scan: a crash shrinks the enabled set,
    // a restart can revive a quiescent world.
    MaybeInjectFault();
  }
  enabled_scratch_.clear();
  for (const auto& machine : machines_) {
    if (machine->CachedEnabled()) {
      enabled_scratch_.push_back(machine->id_);  // id order == sorted
    }
  }
  if (enabled_scratch_.empty()) {
    return false;
  }
  // No branch hint — see DeliverEvent: armed probes take this every step.
  if (probe_ != nullptr) {
    probe_->CountEnabled(enabled_scratch_.size());
  }
  // The scheduling call dominates the step loop for the paper's two main
  // strategies; both classes are final, so the tagged casts below compile to
  // direct calls instead of vtable dispatch. kOther (replay, round-robin,
  // third-party registrations) keeps the virtual path.
  MachineId chosen;
  switch (strategy_builtin_) {
    case BuiltinStrategy::kRandom:
      chosen = static_cast<RandomStrategy&>(strategy_).Next(enabled_scratch_,
                                                            steps_);
      break;
    case BuiltinStrategy::kPct:
      chosen =
          static_cast<PctStrategy&>(strategy_).Next(enabled_scratch_, steps_);
      break;
    case BuiltinStrategy::kOther:
      chosen = strategy_.Next(enabled_scratch_, steps_);
      break;
  }
  trace_.RecordSchedule(chosen.value);
  ++steps_;
  cascade_actions_ = 0;
  Machine* machine = FindMachine(chosen);
  machine->RunStep();
  // Everything about the stepped machine may have changed (queue, state,
  // receive status, halt); senders were marked dirty by DeliverEvent.
  machine->MarkEnabledDirty();
  if (options_.stateful) {
    MarkFingerprintDirty(*machine);
    RefreshFingerprint();
    if (options_.record_fingerprint_trail) {
      fp_trail_.push_back(world_fp_ ^ SharedStateFingerprint());
    }
  }
  if (!monitors_.empty()) {
    UpdateMonitorTemperatures();
  }
  return true;
}

void Runtime::MaybeInjectFault() {
  FaultContext ctx;
  ctx.step = steps_;
  ctx.odds_den = options_.fault_odds_den;
  ctx.heal_den = options_.partition_heal_den;
  if (!options_.replay_faults) {
    // Exploration: offer the strategy only what the budgets still allow.
    // Candidate collection is skipped entirely when no machine qualifies, so
    // scenarios with no SetCrashable/SetPartitionable opt-ins never pay for
    // (or perturb RNG with) fault rolls.
    if (fault_stats_.crashes < options_.max_crashes &&
        crashable_machines_ > 0) {
      crash_scratch_.clear();
      for (const auto& machine : machines_) {
        if (machine->crashable_ && !machine->crashed_ && !machine->halted_) {
          crash_scratch_.push_back(machine->id_);
        }
      }
      ctx.crashable = crash_scratch_;
    }
    if (fault_stats_.restarts < options_.max_restarts &&
        crashed_machines_ > 0) {
      restart_scratch_.clear();
      for (const auto& machine : machines_) {
        if (machine->crashed_) {
          restart_scratch_.push_back(machine->id_);
        }
      }
      ctx.restartable = restart_scratch_;
    }
    if (fault_stats_.partitions < options_.max_partitions &&
        partitionable_machines_ > 0) {
      partition_scratch_.clear();
      for (const auto& machine : machines_) {
        if (machine->partitionable_ && !machine->partitioned_ &&
            !machine->crashed_ && !machine->halted_) {
          partition_scratch_.push_back(machine->id_);
        }
      }
      ctx.partitionable = partition_scratch_;
    }
    if (options_.partition_heal_den > 0 && partitioned_machines_ > 0) {
      heal_scratch_.clear();
      for (const auto& machine : machines_) {
        if (machine->partitioned_) {
          heal_scratch_.push_back(machine->id_);
        }
      }
      ctx.healable = heal_scratch_;
    }
    if (ctx.crashable.empty() && ctx.restartable.empty() &&
        ctx.partitionable.empty() && ctx.healable.empty()) {
      return;
    }
  }
  const FaultDecision decision = strategy_.NextFault(ctx);
  switch (decision.kind) {
    case FaultDecision::Kind::kNone:
      return;
    case FaultDecision::Kind::kCrash:
      ApplyCrash(decision.machine);
      return;
    case FaultDecision::Kind::kRestart:
      ApplyRestart(decision.machine);
      return;
    case FaultDecision::Kind::kPartition:
      ApplyPartition(decision.machine);
      return;
    case FaultDecision::Kind::kHeal:
      ApplyHeal(decision.machine);
      return;
  }
}

void Runtime::ApplyCrash(MachineId id) {
  Machine* machine = FindMachine(id);
  if (machine == nullptr || machine->crashed_ || machine->halted_) {
    // Under replay the trace disagrees with the world it is replayed
    // against; during exploration the built-in default can't get here (its
    // candidates are pre-filtered), so the fault came from a custom
    // NextFault override that ignored ctx.crashable — a strategy bug, not a
    // replay problem.
    const std::string what = "crash of machine " + std::to_string(id.value) +
                             " which is unknown, halted or already crashed";
    if (options_.replay_faults) {
      throw BugFound(BugKind::kReplayDivergence, "replay: " + what);
    }
    throw BugFound(BugKind::kHarnessError,
                   "strategy '" + strategy_.Name() + "' chose a " + what +
                       " (NextFault must pick from ctx.crashable)");
  }
  // Record before applying: OnCrash may Notify a monitor that immediately
  // fails the execution, and the witness trace must still contain the crash
  // that caused it.
  trace_.RecordCrash(id.value, steps_);
  ++fault_stats_.crashes;
  if (probe_ != nullptr) [[unlikely]] {
    probe_->CountFault(obs::FaultKind::kCrash, steps_, options_.max_steps);
  }
  ++crashed_machines_;
  machine->DoCrash();
  machine->MarkEnabledDirty();
  if (options_.stateful) {
    MarkFingerprintDirty(*machine);
  }
}

void Runtime::ApplyRestart(MachineId id) {
  Machine* machine = FindMachine(id);
  if (machine == nullptr || !machine->crashed_) {
    const std::string what = "restart of machine " + std::to_string(id.value) +
                             " which is not crashed";
    if (options_.replay_faults) {
      throw BugFound(BugKind::kReplayDivergence, "replay: " + what);
    }
    throw BugFound(BugKind::kHarnessError,
                   "strategy '" + strategy_.Name() + "' chose a " + what +
                       " (NextFault must pick from ctx.restartable)");
  }
  trace_.RecordRestart(id.value, steps_);
  ++fault_stats_.restarts;
  if (probe_ != nullptr) [[unlikely]] {
    probe_->CountFault(obs::FaultKind::kRestart, steps_, options_.max_steps);
  }
  --crashed_machines_;
  machine->DoRestart();
  machine->MarkEnabledDirty();
  if (options_.stateful) {
    MarkFingerprintDirty(*machine);
  }
}

void Runtime::ApplyPartition(MachineId id) {
  Machine* machine = FindMachine(id);
  if (machine == nullptr || machine->partitioned_ || machine->crashed_ ||
      machine->halted_) {
    const std::string what =
        "partition of machine " + std::to_string(id.value) +
        " which is unknown, halted, crashed or already partitioned";
    if (options_.replay_faults) {
      throw BugFound(BugKind::kReplayDivergence, "replay: " + what);
    }
    throw BugFound(BugKind::kHarnessError,
                   "strategy '" + strategy_.Name() + "' chose a " + what +
                       " (NextFault must pick from ctx.partitionable)");
  }
  trace_.RecordPartition(id.value, steps_);
  ++fault_stats_.partitions;
  if (probe_ != nullptr) [[unlikely]] {
    probe_->CountFault(obs::FaultKind::kPartition, steps_, options_.max_steps);
  }
  ++partitioned_machines_;
  // No per-machine fingerprint invalidation: the active partition set is
  // world state, hashed on every read by SharedStateFingerprint.
  machine->partitioned_ = true;
  if (LoggingEnabled()) {
    LogLine("part    ", machine->DebugName(), " isolated");
  }
}

void Runtime::ApplyHeal(MachineId id) {
  Machine* machine = FindMachine(id);
  if (machine == nullptr || !machine->partitioned_) {
    const std::string what = "heal of machine " + std::to_string(id.value) +
                             " which is not partitioned";
    if (options_.replay_faults) {
      throw BugFound(BugKind::kReplayDivergence, "replay: " + what);
    }
    throw BugFound(BugKind::kHarnessError,
                   "strategy '" + strategy_.Name() + "' chose a " + what +
                       " (NextFault must pick from ctx.healable)");
  }
  trace_.RecordHeal(id.value, steps_);
  ++fault_stats_.heals;
  if (probe_ != nullptr) [[unlikely]] {
    probe_->CountFault(obs::FaultKind::kHeal, steps_, options_.max_steps);
  }
  --partitioned_machines_;
  machine->partitioned_ = false;
  if (LoggingEnabled()) {
    LogLine("heal    ", machine->DebugName(), " reconnected");
  }
}

bool Runtime::ApplyDeliveryFault(Machine& target, const Event& ev) {
  // The ordinal advances for EVERY eligible delivery while the fault plane
  // is active, fault or not — it is the coordinate recorded decisions key
  // on, so recording and replay must count identically.
  const std::uint64_t ordinal = delivery_seq_++;
  DeliveryFaultContext ctx;
  ctx.ordinal = ordinal;
  ctx.target = target.id_;
  if (!options_.replay_faults) {
    ctx.drop_allowed = options_.drop_probability_den > 0;
    ctx.drop_den = options_.drop_probability_den;
    ctx.duplicate_allowed =
        fault_stats_.duplications < options_.max_duplications &&
        detail::CloneFnFor(ev.TypeId()) != nullptr;
    ctx.dup_den = options_.fault_odds_den;
    if (!ctx.drop_allowed && !ctx.duplicate_allowed) {
      return false;
    }
  }
  switch (strategy_.NextDeliveryFault(ctx)) {
    case DeliveryFault::kNone:
      return false;
    case DeliveryFault::kDrop:
      trace_.RecordDrop(ordinal, target.id_.value);
      ++fault_stats_.drops;
      if (probe_ != nullptr) [[unlikely]] {
        probe_->CountFault(obs::FaultKind::kDrop, steps_, options_.max_steps);
      }
      if (LoggingEnabled()) {
        LogLine("drop    ", " -> ", target.DebugName(), " : ", ev.Name());
      }
      return true;
    case DeliveryFault::kDuplicate: {
      std::unique_ptr<const Event> clone = detail::CloneEvent(ev);
      if (clone == nullptr) {
        // Replay: the recording process could clone this type, so the
        // replayed build diverged. Exploration: a custom NextDeliveryFault
        // override forced a duplication the runtime never offered.
        if (options_.replay_faults) {
          throw BugFound(BugKind::kReplayDivergence,
                         "replay: duplication of event " + ev.Name() +
                             " with no registered clone");
        }
        throw BugFound(BugKind::kHarnessError,
                       "strategy '" + strategy_.Name() +
                           "' duplicated uncloneable event " + ev.Name() +
                           " (honor ctx.duplicate_allowed)");
      }
      trace_.RecordDuplicate(ordinal, target.id_.value);
      ++fault_stats_.duplications;
      if (probe_ != nullptr) [[unlikely]] {
        probe_->CountFault(obs::FaultKind::kDuplicate, steps_,
                           options_.max_steps);
        // The clone is an extra enqueue the normal delivery path never sees.
        probe_->CountDelivery(ev.TypeId());
      }
      if (LoggingEnabled()) {
        LogLine("dup     ", " -> ", target.DebugName(), " : ", ev.Name());
      }
      // The clone goes in here; the caller enqueues the original right
      // after, so the queue ends up with two adjacent identical events.
      target.queue_.PushBack(std::move(clone));
      return false;
    }
  }
  return false;
}

void Runtime::MarkFingerprintDirty(Machine& machine) {
  if (!machine.fp_dirty_) {
    machine.fp_dirty_ = true;
    fp_dirty_ids_.push_back(machine.id_.value);
  }
}

void Runtime::RefreshFingerprint() {
  for (const std::uint64_t id : fp_dirty_ids_) {
    Machine& machine = *machines_[id - 1];
    machine.fp_dirty_ = false;
    const Fingerprint fresh =
        machine.ComputeStateFingerprint(options_.fingerprint_payloads);
    world_fp_ ^= fp_contrib_[id - 1] ^ fresh;
    fp_contrib_[id - 1] = fresh;
  }
  fp_dirty_ids_.clear();
}

Fingerprint Runtime::SharedStateFingerprint() const {
  Fingerprint fp = 0;
  if (options_.fingerprint_payloads && !fp_probes_.empty()) {
    // Shared-state probes cannot be tracked per-machine, so they rehash on
    // every read (opt-in, and the probed state is small by construction).
    StateHasher hasher;
    for (const auto& probe : fp_probes_) {
      probe(hasher);
    }
    fp ^= hasher.Digest();
  }
  if (fault_mode_) {
    // Remaining fault budgets are explorer state that changes which
    // continuations exist from a program state: a world revisited with fewer
    // crashes left is NOT the world whose continuations were already
    // explored, so it must not prune against it. (Drops are probability-
    // gated, not budgeted — past drops change no future capability. Heals
    // are odds-gated too, but the heal COUNT still matters through the
    // partition budget asymmetry: consumed installs are hashed, and the
    // active-partition set below distinguishes healed from still-isolated.)
    StateHasher hasher;
    hasher.Mix(fault_stats_.crashes);
    hasher.Mix(fault_stats_.restarts);
    hasher.Mix(fault_stats_.duplications);
    hasher.Mix(fault_stats_.partitions);
    // The active partition set is connectivity state no machine contribution
    // sees (an isolated machine's own state/queue can match a connected
    // one's exactly while its future deliveries all vanish), so it must
    // distinguish the fingerprints. Mixed in id order for determinism.
    if (partitioned_machines_ > 0) {
      hasher.Mix(partitioned_machines_);
      for (const auto& machine : machines_) {
        if (machine->partitioned_) {
          hasher.Mix(machine->id_.value);
        }
      }
    }
    fp ^= hasher.Digest();
  }
  return fp;
}

Fingerprint Runtime::ExecutionFingerprint() {
  RefreshFingerprint();
  return world_fp_ ^ SharedStateFingerprint();
}

Fingerprint Runtime::RecomputeExecutionFingerprint() const {
  Fingerprint world = 0;
  for (const auto& machine : machines_) {
    world ^= machine->ComputeStateFingerprint(options_.fingerprint_payloads);
  }
  return world ^ SharedStateFingerprint();
}

void Runtime::UpdateMonitorTemperatures() {
  for (const auto& monitor : monitors_) {
    if (monitor->IsHot()) {
      ++monitor->hot_steps_;
    } else {
      monitor->hot_steps_ = 0;
    }
  }
}

void Runtime::ThrowCascadeOverflow() const {
  throw BugFound(BugKind::kHarnessError,
                 "handler cascade exceeded " +
                     std::to_string(options_.max_cascade_actions) +
                     " actions in one step (raise/goto loop?)");
}

void Runtime::CheckTermination(bool hit_bound) {
  if (!hit_bound) {
    // Quiescence: nothing is in flight, so a hot monitor can never cool down
    // — a definite liveness violation.
    for (const auto& monitor : monitors_) {
      if (monitor->IsHot()) {
        throw BugFound(BugKind::kLiveness,
                       "monitor '" + monitor->DebugName() +
                           "' is hot (state '" + monitor->CurrentStateName() +
                           "') at quiescence: required progress can never happen");
      }
    }
    if (options_.report_deadlock) {
      for (const auto& machine : machines_) {
        if (!machine->Halted() && machine->IsWaitingInReceive()) {
          throw BugFound(BugKind::kDeadlock,
                         "machine '" + machine->DebugName() +
                             "' blocked in Receive at quiescence");
        }
      }
    }
    return;
  }
  // Bound reached: treat the execution as "infinite" (§2.5) and flag any
  // monitor that has been continuously hot past the temperature threshold.
  const std::uint64_t threshold = options_.liveness_temperature_threshold != 0
                                      ? options_.liveness_temperature_threshold
                                      : options_.max_steps / 2;
  for (const auto& monitor : monitors_) {
    if (monitor->IsHot() && monitor->hot_steps_ >= threshold) {
      throw BugFound(
          BugKind::kLiveness,
          "monitor '" + monitor->DebugName() + "' stayed hot (state '" +
              monitor->CurrentStateName() + "') for " +
              std::to_string(monitor->hot_steps_) +
              " consecutive steps of a bounded-infinite execution");
    }
  }
}

bool Runtime::SealForReuse() {
  if (sealed_) {
    return true;
  }
  if (steps_ != 0 || !trace_.Empty()) {
    return false;  // stepping (or a nondet choice) already happened
  }
  for (const auto& machine : machines_) {
    if (!machine->reusable_) {
      return false;
    }
  }
  for (const auto& monitor : monitors_) {
    if (!monitor->reusable_) {
      return false;
    }
  }
  // The prototypes must survive every arena epoch of the recycled runtime's
  // lifetime, so they are cloned with the arena disarmed (heap/pool-backed,
  // real deletes). The pause outlives `setup` so the partial clones of a
  // failure return are really freed, not arena-no-op'd.
  const detail::ScopedEventArenaPause pause;
  std::vector<SetupEvent> setup;
  for (const auto& machine : machines_) {
    for (const auto& ev : machine->queue_) {
      std::unique_ptr<const Event> clone = detail::CloneEvent(*ev);
      if (clone == nullptr) {
        return false;  // uncloneable setup event: stay on the fresh path
      }
      setup.push_back(SetupEvent{machine->id_, std::move(clone)});
    }
  }
  setup_events_ = std::move(setup);
  sealed_machines_ = machines_.size();
  sealed_monitors_ = monitors_.size();
  sealed_fp_probes_ = fp_probes_.size();
  sealed_monitors_by_id_ = monitors_by_id_;
  sealed_crashable_.resize(machines_.size());
  sealed_partitionable_.resize(machines_.size());
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    sealed_crashable_[i] = machines_[i]->crashable_ ? 1 : 0;
    sealed_partitionable_[i] = machines_[i]->partitionable_ ? 1 : 0;
  }
  sealed_ = true;
  return true;
}

void Runtime::ResetForNextExecution(detail::EventArena* arena) {
  assert(sealed_);
  // Machines/monitors/probes created mid-execution are dropped; ids restart
  // at the sealed count, so the next execution assigns identical ids to
  // identical Create calls.
  machines_.resize(sealed_machines_);
  monitors_.resize(sealed_monitors_);
  fp_probes_.resize(sealed_fp_probes_);
  monitors_by_id_ = sealed_monitors_by_id_;
  crashable_machines_ = 0;
  partitionable_machines_ = 0;
  crashed_machines_ = 0;
  partitioned_machines_ = 0;
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    Machine& machine = *machines_[i];
    machine.ResetForReuse();
    machine.crashable_ = sealed_crashable_[i] != 0;
    machine.partitionable_ = sealed_partitionable_[i] != 0;
    crashable_machines_ += machine.crashable_ ? 1 : 0;
    partitionable_machines_ += machine.partitionable_ ? 1 : 0;
  }
  steps_ = 0;
  cascade_actions_ = 0;
  delivery_seq_ = 0;
  fault_stats_ = {};
  log_.clear();
  trace_.Clear();
  // TakeTrace moved the decision storage away with the trace, so re-reserve
  // exactly what the constructor did.
  trace_.Reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(options_.max_steps, 4096)));
  fp_trail_.clear();
  if (options_.stateful) {
    fp_contrib_.assign(machines_.size(), 0);
    world_fp_ = 0;
    fp_dirty_ids_.clear();
    for (const auto& machine : machines_) {
      MarkFingerprintDirty(*machine);
    }
  }
  // Rewind the event epoch BEFORE re-delivering the setup prototypes: their
  // clones must come out of the NEW epoch. Every event pointer the old epoch
  // backed (queues, current events, coroutine-held events) was dropped by
  // the wipes above, so nothing dangles.
  if (arena != nullptr) {
    arena->ResetEpoch();
  }
  for (const auto& monitor : monitors_) {
    monitor->ResetForReuse();
    monitor->Start();
  }
  // Re-deliver the sealed setup events, reproducing the harness's
  // DeliverEvent side effects (probe delivery counts, fingerprint marks)
  // bit-for-bit. sender == nullptr, so the fault plane never sees them —
  // exactly like the original Runtime::SendEvent calls.
  for (const auto& setup : setup_events_) {
    DeliverEvent(setup.target, detail::CloneEvent(*setup.prototype), nullptr);
  }
}

std::vector<std::unique_ptr<const Event>>
Runtime::TakeSetupPrototypes() noexcept {
  std::vector<std::unique_ptr<const Event>> prototypes;
  prototypes.reserve(setup_events_.size());
  for (SetupEvent& setup : setup_events_) {
    prototypes.push_back(std::move(setup.prototype));
  }
  setup_events_.clear();
  sealed_ = false;
  return prototypes;
}

Runtime::Stats Runtime::GetStats() const {
  Stats stats;
  stats.machines = machines_.size();
  stats.monitors = monitors_.size();
  for (const auto& machine : machines_) {
    stats.states += machine->decl_->states.size();
    stats.transitions_taken += machine->transitions_taken_;
    for (const detail::CompiledState& state : machine->decl_->states) {
      stats.action_handlers += state.handlers.size();
      if (state.entry.Valid()) ++stats.action_handlers;
      if (state.exit) ++stats.action_handlers;
      stats.declared_transitions += state.goto_names.size();
    }
  }
  for (const auto& monitor : monitors_) {
    stats.states += monitor->decl_->states.size();
    stats.transitions_taken += monitor->transitions_taken_;
    for (const detail::CompiledMonitorState& state : monitor->decl_->states) {
      stats.action_handlers += state.handlers.size();
      if (state.entry) ++stats.action_handlers;
    }
  }
  return stats;
}

}  // namespace systest
