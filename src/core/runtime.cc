#include "core/runtime.h"

#include <algorithm>

namespace systest {

// ===========================================================================
// Machine

namespace {
const std::string kNoState = "<no-state>";
}  // namespace

const std::string& Machine::CurrentStateName() const {
  return current_state_ ? current_state_->name : kNoState;
}

StateBuilder Machine::State(std::string name) {
  auto [it, inserted] = states_.try_emplace(name);
  if (inserted) {
    it->second.name = std::move(name);
  }
  return StateBuilder(&it->second);
}

Runtime& Machine::Rt() {
  if (runtime_ == nullptr) {
    throw BugFound(BugKind::kHarnessError,
                   "machine '" + debug_name_ +
                       "' used the runtime API before being attached "
                       "(Create/Send belong in entry actions, not constructors)");
  }
  return *runtime_;
}

void Machine::Send(MachineId target, std::unique_ptr<const Event> ev) {
  Rt().DeliverEvent(target, std::move(ev), this);
}

void Machine::RaiseEvent(std::unique_ptr<const Event> ev) {
  if (pending_raise_) {
    throw BugFound(BugKind::kHarnessError,
                   "machine '" + debug_name_ + "' raised two events in one action");
  }
  pending_raise_ = std::move(ev);
}

void Machine::Goto(std::string state) {
  if (pending_goto_) {
    throw BugFound(BugKind::kHarnessError,
                   "machine '" + debug_name_ + "' called Goto twice in one action");
  }
  pending_goto_ = std::move(state);
}

bool Machine::NondetBool() { return Rt().ChooseBool(); }

std::uint64_t Machine::NondetInt(std::uint64_t bound) {
  return Rt().ChooseInt(bound);
}

void Machine::Assert(bool cond, const std::string& message) {
  Rt().Assert(cond, "machine '" + debug_name_ + "': " + message);
}

detail::StateDecl& Machine::FindState(const std::string& name) {
  auto it = states_.find(name);
  if (it == states_.end()) {
    throw BugFound(BugKind::kHarnessError,
                   "machine '" + debug_name_ + "' has no state '" + name + "'");
  }
  return it->second;
}

void Machine::BeginReceive(std::vector<std::type_index> types) {
  waiting_types_ = std::move(types);
}

bool Machine::TryFulfillReceive() {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const std::type_index type = (*it)->Type();
    if (std::find(waiting_types_.begin(), waiting_types_.end(), type) !=
        waiting_types_.end()) {
      received_ = std::move(*it);
      queue_.erase(it);
      waiting_types_.clear();
      return true;
    }
  }
  return false;
}

std::unique_ptr<const Event> Machine::TakeReceived() {
  assert(received_);
  return std::move(received_);
}

bool Machine::HasMatchingQueuedEvent() const {
  for (const auto& ev : queue_) {
    const std::type_index type = ev->Type();
    if (std::find(waiting_types_.begin(), waiting_types_.end(), type) !=
        waiting_types_.end()) {
      return true;
    }
  }
  return false;
}

bool Machine::IsEnabled() const {
  if (halted_) return false;
  if (!started_) return true;
  if (root_task_.Valid()) {
    // Suspended in Receive: enabled iff a matching event is queued.
    return HasMatchingQueuedEvent();
  }
  // Idle: enabled iff some queued event is processable in the current state
  // (handler, goto, ignore-drop, halt or unhandled — everything except a
  // deferred event constitutes a step).
  for (const auto& ev : queue_) {
    if (current_state_ != nullptr &&
        current_state_->defers.contains(ev->Type())) {
      continue;
    }
    return true;
  }
  return false;
}

void Machine::RunStep() {
  if (!started_) {
    started_ = true;
    if (runtime_->LoggingEnabled()) {
      runtime_->LogLine("start   " + debug_name_ + " -> " + start_state_);
    }
    Transition(start_state_);
    RunCascade();
    return;
  }
  if (root_task_.Valid()) {
    // Resume the coroutine blocked in Receive with the matching event.
    const bool fulfilled = TryFulfillReceive();
    runtime_->Assert(fulfilled, "internal: scheduled non-fulfillable receive");
    if (runtime_->LoggingEnabled()) {
      runtime_->LogLine("resume  " + debug_name_ + " <- " + received_->Name());
    }
    resume_point_.resume();
    RunCascade();
    return;
  }
  // Dequeue the first processable event.
  while (!queue_.empty()) {
    auto it = queue_.begin();
    while (it != queue_.end() && current_state_ != nullptr &&
           current_state_->defers.contains((*it)->Type())) {
      ++it;
    }
    if (it == queue_.end()) return;  // only deferred events remain
    std::unique_ptr<const Event> ev = std::move(*it);
    queue_.erase(it);
    if (current_state_ != nullptr &&
        current_state_->ignores.contains(ev->Type())) {
      if (runtime_->LoggingEnabled()) {
        runtime_->LogLine("ignore  " + debug_name_ + " x " + ev->Name());
      }
      continue;  // dropped; look for another processable event in this step
    }
    DispatchEvent(std::move(ev), /*raised=*/false);
    RunCascade();
    return;
  }
}

void Machine::DispatchEvent(std::unique_ptr<const Event> ev, bool raised) {
  runtime_->CountCascadeAction();
  if (ev->Type() == std::type_index(typeid(HaltEvent))) {
    DoHalt();
    return;
  }
  if (current_state_ == nullptr) {
    throw BugFound(BugKind::kHarnessError,
                   "machine '" + debug_name_ + "' dispatching without a state");
  }
  if (auto git = current_state_->gotos.find(ev->Type());
      git != current_state_->gotos.end()) {
    if (runtime_->LoggingEnabled()) {
      runtime_->LogLine("goto    " + debug_name_ + " -- " + ev->Name() +
                        " --> " + git->second);
    }
    current_event_ = std::move(ev);
    Transition(git->second);
    return;
  }
  auto hit = current_state_->handlers.find(ev->Type());
  if (hit == current_state_->handlers.end()) {
    throw BugFound(BugKind::kUnhandledEvent,
                   "machine '" + debug_name_ + "' in state '" +
                       current_state_->name + "' cannot handle " +
                       (raised ? "raised " : "") + "event " + ev->Name());
  }
  if (runtime_->LoggingEnabled()) {
    runtime_->LogLine("handle  " + debug_name_ + " <- " + ev->Name() + " [" +
                      current_state_->name + "]");
  }
  current_event_ = std::move(ev);
  InvokeHandler(hit->second, current_event_.get());
}

void Machine::InvokeHandler(const detail::Handler& handler, const Event* event) {
  if (handler.sync) {
    handler.sync(*this, event);
    return;
  }
  root_task_ = handler.coro(*this, event);
  resume_point_ = root_task_.RawHandle();
  resume_point_.resume();
}

void Machine::Transition(const std::string& target) {
  if (current_state_ != nullptr && current_state_->exit) {
    current_state_->exit(*this);
  }
  detail::StateDecl& next = FindState(target);
  current_state_ = &next;
  ++transitions_taken_;
  if (next.entry.Valid()) {
    InvokeHandler(next.entry, nullptr);
  }
}

void Machine::RunCascade() {
  for (;;) {
    if (root_task_.Valid() && !root_task_.Done()) {
      // Suspended in Receive: yield back to the scheduler. The machine must
      // actually be waiting; any other suspension is a framework-misuse bug.
      runtime_->Assert(IsWaitingInReceive(),
                       "machine '" + debug_name_ +
                           "' suspended outside Receive (co_await of a "
                           "foreign awaitable?)");
      return;
    }
    if (root_task_.Valid()) {
      root_task_.RethrowIfFailed();
      root_task_ = Task();
      resume_point_ = {};
    }
    if (pending_halt_) {
      DoHalt();
      return;
    }
    if (pending_raise_ && pending_goto_) {
      throw BugFound(BugKind::kHarnessError,
                     "machine '" + debug_name_ +
                         "' both raised an event and called Goto in one action");
    }
    if (pending_raise_) {
      std::unique_ptr<const Event> ev = std::move(pending_raise_);
      if (runtime_->LoggingEnabled()) {
        runtime_->LogLine("raise   " + debug_name_ + " ^ " + ev->Name());
      }
      DispatchEvent(std::move(ev), /*raised=*/true);
      continue;
    }
    if (pending_goto_) {
      std::string target = std::move(*pending_goto_);
      pending_goto_.reset();
      if (runtime_->LoggingEnabled()) {
        runtime_->LogLine("goto    " + debug_name_ + " --> " + target);
      }
      runtime_->CountCascadeAction();
      Transition(target);
      continue;
    }
    current_event_.reset();
    return;
  }
}

void Machine::DoHalt() {
  halted_ = true;
  pending_halt_ = false;
  pending_raise_.reset();
  pending_goto_.reset();
  queue_.clear();
  waiting_types_.clear();
  root_task_ = Task();
  resume_point_ = {};
  current_event_.reset();
  if (runtime_->LoggingEnabled()) {
    runtime_->LogLine("halt    " + debug_name_);
  }
}

// ===========================================================================
// Monitor

bool Monitor::IsHot() const {
  return current_state_ != nullptr && current_state_->hot;
}

const std::string& Monitor::CurrentStateName() const {
  return current_state_ ? current_state_->name : kNoState;
}

MonitorStateBuilder Monitor::State(std::string name) {
  auto [it, inserted] = states_.try_emplace(name);
  if (inserted) {
    it->second.name = std::move(name);
  }
  return MonitorStateBuilder(&it->second);
}

Runtime& Monitor::Rt() {
  if (runtime_ == nullptr) {
    throw BugFound(BugKind::kHarnessError,
                   "monitor '" + debug_name_ + "' used before attachment");
  }
  return *runtime_;
}

detail::MonitorStateDecl& Monitor::FindState(const std::string& name) {
  auto it = states_.find(name);
  if (it == states_.end()) {
    throw BugFound(BugKind::kHarnessError,
                   "monitor '" + debug_name_ + "' has no state '" + name + "'");
  }
  return it->second;
}

void Monitor::Goto(const std::string& state) {
  detail::MonitorStateDecl& next = FindState(state);
  current_state_ = &next;
  ++transitions_taken_;
  if (runtime_ != nullptr && runtime_->LoggingEnabled()) {
    runtime_->LogLine("monitor " + debug_name_ + " --> " + state +
                      (next.hot ? " [hot]" : next.cold ? " [cold]" : ""));
  }
  if (next.entry) {
    next.entry(*this);
  }
}

void Monitor::Assert(bool cond, const std::string& message) {
  Rt().Assert(cond, "monitor '" + debug_name_ + "': " + message);
}

void Monitor::Start() { Goto(start_state_); }

void Monitor::HandleNotification(const Event& event) {
  if (current_state_ == nullptr) {
    throw BugFound(BugKind::kHarnessError,
                   "monitor '" + debug_name_ + "' notified before start");
  }
  if (current_state_->ignores.contains(event.Type())) {
    return;
  }
  auto it = current_state_->handlers.find(event.Type());
  if (it == current_state_->handlers.end()) {
    throw BugFound(BugKind::kHarnessError,
                   "monitor '" + debug_name_ + "' in state '" +
                       current_state_->name + "' cannot handle notification " +
                       event.Name());
  }
  it->second(*this, event);
}

// ===========================================================================
// Runtime

Runtime::Runtime(SchedulingStrategy& strategy, RuntimeOptions options)
    : strategy_(strategy), options_(options) {}

Runtime::~Runtime() = default;

MachineId Runtime::Attach(std::unique_ptr<Machine> machine,
                          std::string debug_name) {
  machine->runtime_ = this;
  machine->id_ = MachineId{machines_.size() + 1};
  machine->debug_name_ =
      debug_name + "(" + std::to_string(machine->id_.value) + ")";
  if (machine->start_state_.empty()) {
    throw BugFound(BugKind::kHarnessError,
                   "machine '" + machine->debug_name_ +
                       "' declared no start state (call SetStart)");
  }
  machines_.push_back(std::move(machine));
  const MachineId id = machines_.back()->id_;
  if (LoggingEnabled()) {
    LogLine("create  " + machines_.back()->debug_name_);
  }
  return id;
}

void Runtime::AttachMonitor(std::unique_ptr<Monitor> monitor,
                            std::string debug_name) {
  monitor->runtime_ = this;
  monitor->debug_name_ = std::move(debug_name);
  if (monitor->start_state_.empty()) {
    throw BugFound(BugKind::kHarnessError,
                   "monitor '" + monitor->debug_name_ +
                       "' declared no start state (call SetStart)");
  }
  Monitor* raw = monitor.get();
  monitors_.push_back(std::move(monitor));
  monitor_by_type_.emplace(std::type_index(typeid(*raw)), raw);
  raw->Start();
}

const Machine* Runtime::FindMachine(MachineId id) const {
  if (!id.Valid() || id.value > machines_.size()) return nullptr;
  return machines_[id.value - 1].get();
}

Machine* Runtime::FindMachine(MachineId id) {
  if (!id.Valid() || id.value > machines_.size()) return nullptr;
  return machines_[id.value - 1].get();
}

void Runtime::DeliverEvent(MachineId target, std::unique_ptr<const Event> ev,
                           const Machine* sender) {
  Machine* machine = FindMachine(target);
  if (machine == nullptr) {
    throw BugFound(BugKind::kHarnessError,
                   std::string("send to unknown machine id ") +
                       std::to_string(target.value) + " from '" +
                       (sender ? sender->DebugName() : "<harness>") + "'");
  }
  if (machine->halted_) {
    return;  // events to halted machines are silently dropped (P# semantics)
  }
  if (LoggingEnabled()) {
    LogLine("send    " + (sender ? sender->DebugName() : "<harness>") +
            " -> " + machine->DebugName() + " : " + ev->Name());
  }
  machine->queue_.push_back(std::move(ev));
}

void Runtime::SendEvent(MachineId target, std::unique_ptr<const Event> ev) {
  DeliverEvent(target, std::move(ev), nullptr);
}

void Runtime::NotifyMonitorByType(std::type_index type, const Event& event) {
  auto it = monitor_by_type_.find(type);
  if (it == monitor_by_type_.end()) {
    return;  // monitor not registered in this harness: notification is a no-op
  }
  if (LoggingEnabled()) {
    LogLine("notify  " + it->second->DebugName() + " <- " + event.Name());
  }
  it->second->HandleNotification(event);
}

void Runtime::Assert(bool cond, const std::string& message) {
  if (!cond) {
    throw BugFound(BugKind::kSafety, message);
  }
}

bool Runtime::ChooseBool() {
  const bool value = strategy_.NextBool();
  trace_.RecordBool(value);
  return value;
}

std::uint64_t Runtime::ChooseInt(std::uint64_t bound) {
  if (bound == 0) {
    throw BugFound(BugKind::kHarnessError, "NondetInt with bound 0");
  }
  const std::uint64_t value = strategy_.NextInt(bound);
  trace_.RecordInt(value, bound);
  return value;
}

std::vector<MachineId> Runtime::EnabledMachines() const {
  std::vector<MachineId> enabled;
  enabled.reserve(machines_.size());
  for (const auto& machine : machines_) {
    if (machine->IsEnabled()) {
      enabled.push_back(machine->id_);
    }
  }
  return enabled;  // sorted: machines_ is in id order
}

bool Runtime::Step() {
  const std::vector<MachineId> enabled = EnabledMachines();
  if (enabled.empty()) {
    return false;
  }
  const MachineId chosen = strategy_.Next(enabled, steps_);
  trace_.RecordSchedule(chosen.value);
  ++steps_;
  cascade_actions_ = 0;
  Machine* machine = FindMachine(chosen);
  machine->RunStep();
  UpdateMonitorTemperatures();
  return true;
}

void Runtime::UpdateMonitorTemperatures() {
  for (const auto& monitor : monitors_) {
    if (monitor->IsHot()) {
      ++monitor->hot_steps_;
    } else {
      monitor->hot_steps_ = 0;
    }
  }
}

void Runtime::CountCascadeAction() {
  if (++cascade_actions_ > options_.max_cascade_actions) {
    throw BugFound(BugKind::kHarnessError,
                   "handler cascade exceeded " +
                       std::to_string(options_.max_cascade_actions) +
                       " actions in one step (raise/goto loop?)");
  }
}

void Runtime::CheckTermination(bool hit_bound) {
  if (!hit_bound) {
    // Quiescence: nothing is in flight, so a hot monitor can never cool down
    // — a definite liveness violation.
    for (const auto& monitor : monitors_) {
      if (monitor->IsHot()) {
        throw BugFound(BugKind::kLiveness,
                       "monitor '" + monitor->DebugName() +
                           "' is hot (state '" + monitor->CurrentStateName() +
                           "') at quiescence: required progress can never happen");
      }
    }
    if (options_.report_deadlock) {
      for (const auto& machine : machines_) {
        if (!machine->Halted() && machine->IsWaitingInReceive()) {
          throw BugFound(BugKind::kDeadlock,
                         "machine '" + machine->DebugName() +
                             "' blocked in Receive at quiescence");
        }
      }
    }
    return;
  }
  // Bound reached: treat the execution as "infinite" (§2.5) and flag any
  // monitor that has been continuously hot past the temperature threshold.
  const std::uint64_t threshold = options_.liveness_temperature_threshold != 0
                                      ? options_.liveness_temperature_threshold
                                      : options_.max_steps / 2;
  for (const auto& monitor : monitors_) {
    if (monitor->IsHot() && monitor->hot_steps_ >= threshold) {
      throw BugFound(
          BugKind::kLiveness,
          "monitor '" + monitor->DebugName() + "' stayed hot (state '" +
              monitor->CurrentStateName() + "') for " +
              std::to_string(monitor->hot_steps_) +
              " consecutive steps of a bounded-infinite execution");
    }
  }
}

Runtime::Stats Runtime::GetStats() const {
  Stats stats;
  stats.machines = machines_.size();
  stats.monitors = monitors_.size();
  for (const auto& machine : machines_) {
    stats.states += machine->states_.size();
    stats.transitions_taken += machine->transitions_taken_;
    for (const auto& [name, decl] : machine->states_) {
      stats.action_handlers += decl.handlers.size();
      if (decl.entry.Valid()) ++stats.action_handlers;
      if (decl.exit) ++stats.action_handlers;
      stats.declared_transitions += decl.gotos.size();
    }
  }
  for (const auto& monitor : monitors_) {
    stats.states += monitor->states_.size();
    stats.transitions_taken += monitor->transitions_taken_;
    for (const auto& [name, decl] : monitor->states_) {
      stats.action_handlers += decl.handlers.size();
      if (decl.entry) ++stats.action_handlers;
    }
  }
  return stats;
}

void Runtime::LogLine(const std::string& line) {
  log_ += "[" + std::to_string(steps_) + "] " + line + "\n";
}

}  // namespace systest
