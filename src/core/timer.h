// SysTest systematic-testing framework.
//
// Modeled timer (paper §3.3, Fig. 9): "System correctness should not hinge on
// the frequency of any individual timer", so all timing nondeterminism is
// delegated to the testing engine. Each loop round the timer makes a
// controlled nondeterministic choice whether to deliver a TimerTick to its
// target; the scheduler is free to interleave those ticks arbitrarily with
// the rest of the system's events.
//
// Flow control: the timer keeps at most ONE un-acknowledged tick in flight —
// after firing it waits for the target's TickAck before looping again. This
// models the fact that a periodic loop does not re-enter itself, and keeps
// event queues bounded during long executions (a free-running timer would
// flood its target faster than the scheduler drains it). Targets therefore
// MUST reply with TickAck to the machine in TimerTick::timer when they handle
// a tick.
#pragma once

#include <cstdint>

#include "core/event.h"
#include "core/runtime.h"

namespace systest {

/// Delivered to the timer's target when the timer fires. `tag` identifies
/// which of the target's timers fired (a machine may own several, e.g. the
/// Extent Manager's EN-expiration loop and extent-repair loop in §3);
/// `timer` is where the TickAck must be sent.
struct TimerTick final : Event {
  explicit TimerTick(std::uint64_t tag, MachineId timer)
      : tag(tag), timer(timer) {}
  std::uint64_t tag;
  MachineId timer;
};

/// Target -> timer: the tick was processed; the timer may fire again.
struct TickAck final : Event {};

/// Self-event driving the timer loop (Fig. 9's RepeatedEvent).
struct RepeatedEvent final : Event {};

/// Stops the timer (e.g. when its target machine fails).
struct CancelTimer final : Event {};

/// Nondeterministic timer machine. `max_rounds` bounds the number of loop
/// rounds so that executions can reach quiescence; pass 0 for an unbounded
/// timer (executions then always run to the engine's step bound, which is the
/// paper's "bounded infinite execution" regime for liveness checking).
class TimerMachine final : public Machine {
 public:
  static constexpr bool kReusableRuntime = true;

  TimerMachine(MachineId target, std::uint64_t max_rounds,
               std::uint64_t tag = 0);

 private:
  void OnReset() override {
    rounds_left_ = initial_rounds_;
    consecutive_skips_ = 0;
  }

  void OnStart();
  void OnRound();
  void OnAck();
  void OnCancel();

  MachineId target_;
  std::uint64_t initial_rounds_;
  std::uint64_t rounds_left_;
  bool unbounded_;
  std::uint64_t tag_;
  /// Fairness: liveness checking is only sound under fair schedules (§2.5:
  /// "a liveness violation is witnessed by an infinite execution in which
  /// all concurrently executing machines are fairly scheduled"). A timer
  /// whose nondeterministic choice says "don't fire" unboundedly often is an
  /// unfair schedule that would make correct systems look stuck, so after
  /// kMaxConsecutiveSkips skipped rounds the timer fires regardless.
  static constexpr int kMaxConsecutiveSkips = 3;
  int consecutive_skips_ = 0;
};

}  // namespace systest
