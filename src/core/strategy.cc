#include "core/strategy.h"

#include <algorithm>

#include "api/strategy_registry.h"
#include "core/bug.h"

namespace systest {

// ---------------------------------------------------------------------------
// SchedulingStrategy fault-choice defaults

void SchedulingStrategy::SampleFaultPlacement(std::uint64_t max_steps) {
  if (placement_points_ <= 0) return;
  placement_armed_ = true;
  fault_points_.clear();
  fault_points_.reserve(static_cast<std::size_t>(placement_points_));
  for (int i = 0; i < placement_points_; ++i) {
    fault_points_.push_back(NextInt(std::max<std::uint64_t>(1, max_steps)));
  }
  std::sort(fault_points_.begin(), fault_points_.end());
}

FaultDecision SchedulingStrategy::NextFault(const FaultContext& ctx) {
  // Destructive faults (crash, partition) come from one of two placement
  // models; recovery actions (restart, heal) always roll per-step odds.
  if (placement_armed_) {
    // Pre-sampled placement: a destructive fault fires only when a sampled
    // point is due. The point is consumed only once a candidate exists —
    // a point landing before any machine opted in (or while every candidate
    // is crashed) waits for the first eligible step instead of evaporating.
    if (!fault_points_.empty() && ctx.step >= fault_points_.front()) {
      const bool can_crash = !ctx.crashable.empty();
      const bool can_partition = !ctx.partitionable.empty();
      if (can_crash || can_partition) {
        fault_points_.erase(fault_points_.begin());
        const bool crash =
            can_crash && (!can_partition || NextInt(2) == 0);
        if (crash) {
          return {FaultDecision::Kind::kCrash,
                  ctx.crashable[NextInt(ctx.crashable.size())]};
        }
        return {FaultDecision::Kind::kPartition,
                ctx.partitionable[NextInt(ctx.partitionable.size())]};
      }
    }
  } else {
    // Geometric placement from the strategy's own choice source: at each
    // eligible step the fault fires with probability 1/odds_den, then a
    // second draw picks the victim uniformly. Consuming NextInt keeps the
    // decision inside the strategy's deterministic seed-derived stream, so
    // the same seed places the same faults. Empty spans roll nothing, so a
    // config without partitions draws exactly what it drew before they
    // existed.
    if (!ctx.crashable.empty() && NextInt(ctx.odds_den) == 0) {
      return {FaultDecision::Kind::kCrash,
              ctx.crashable[NextInt(ctx.crashable.size())]};
    }
    if (!ctx.partitionable.empty() && NextInt(ctx.odds_den) == 0) {
      return {FaultDecision::Kind::kPartition,
              ctx.partitionable[NextInt(ctx.partitionable.size())]};
    }
  }
  if (!ctx.restartable.empty() && NextInt(ctx.odds_den) == 0) {
    return {FaultDecision::Kind::kRestart,
            ctx.restartable[NextInt(ctx.restartable.size())]};
  }
  if (!ctx.healable.empty() && NextInt(ctx.heal_den) == 0) {
    return {FaultDecision::Kind::kHeal,
            ctx.healable[NextInt(ctx.healable.size())]};
  }
  return {};
}

DeliveryFault SchedulingStrategy::NextDeliveryFault(
    const DeliveryFaultContext& ctx) {
  if (ctx.drop_allowed && NextInt(ctx.drop_den) == 0) {
    return DeliveryFault::kDrop;
  }
  if (ctx.duplicate_allowed && NextInt(ctx.dup_den) == 0) {
    return DeliveryFault::kDuplicate;
  }
  return DeliveryFault::kNone;
}

// ---------------------------------------------------------------------------
// RandomStrategy

void RandomStrategy::PrepareIteration(std::uint64_t iteration,
                                      std::uint64_t max_steps) {
  std::uint64_t state = base_seed_ + iteration;
  rng_.Reseed(SplitMix64(state));
  SampleFaultPlacement(max_steps);
}

// ---------------------------------------------------------------------------
// PctStrategy

void PctStrategy::PrepareIteration(std::uint64_t iteration,
                                   std::uint64_t max_steps) {
  std::uint64_t state = base_seed_ + iteration;
  rng_.Reseed(SplitMix64(state));
  priorities_.clear();
  low_water_ = 1'000'000'000ULL;
  change_points_.clear();
  change_points_.reserve(static_cast<std::size_t>(depth_));
  for (int i = 0; i < depth_; ++i) {
    change_points_.push_back(rng_.NextBelow(std::max<std::uint64_t>(1, max_steps)));
  }
  std::sort(change_points_.begin(), change_points_.end());
  SampleFaultPlacement(max_steps);
}

std::uint64_t PctStrategy::PriorityOf(MachineId id) {
  if (priorities_.size() <= id.value) {
    priorities_.resize(id.value + 1, 0);
  }
  if (priorities_[id.value] == 0) {
    // Random priority strictly above the demotion low-water mark.
    priorities_[id.value] = low_water_ + 1 + rng_.NextBelow(1'000'000'000ULL);
  }
  return priorities_[id.value];
}

MachineId PctStrategy::Next(std::span<const MachineId> enabled,
                            std::uint64_t step) {
  while (true) {
    MachineId best = enabled.front();
    std::uint64_t best_priority = PriorityOf(best);
    for (const MachineId id : enabled.subspan(1)) {
      const std::uint64_t p = PriorityOf(id);
      if (p > best_priority) {
        best = id;
        best_priority = p;
      }
    }
    // At each change point, demote the machine that would run now below
    // every other machine, forcing a different interleaving prefix. Only
    // points due at this step are consumed: re-selection happens at the SAME
    // step, so a change point placed at step+1 still fires on the next call.
    // (Duplicate sampled points at this step each demote the re-selected
    // leader in turn.)
    if (!change_points_.empty() && step >= change_points_.front()) {
      change_points_.erase(change_points_.begin());
      priorities_[best.value] = --low_water_;
      continue;
    }
    return best;
  }
}

// ---------------------------------------------------------------------------
// RoundRobinStrategy

void RoundRobinStrategy::PrepareIteration(std::uint64_t iteration,
                                          std::uint64_t /*max_steps*/) {
  cursor_ = base_ + iteration;  // rotate the starting machine across iterations
  counter_ = 0;
}

MachineId RoundRobinStrategy::Next(std::span<const MachineId> enabled,
                                   std::uint64_t /*step*/) {
  return enabled[cursor_++ % enabled.size()];
}

// ---------------------------------------------------------------------------
// DelayBoundedStrategy

void DelayBoundedStrategy::PrepareIteration(std::uint64_t iteration,
                                            std::uint64_t max_steps) {
  std::uint64_t state = base_seed_ + iteration;
  rng_.Reseed(SplitMix64(state));
  cursor_ = 0;
  delay_points_.clear();
  delay_points_.reserve(static_cast<std::size_t>(delay_budget_));
  for (int i = 0; i < delay_budget_; ++i) {
    delay_points_.push_back(rng_.NextBelow(std::max<std::uint64_t>(1, max_steps)));
  }
  std::sort(delay_points_.begin(), delay_points_.end());
  SampleFaultPlacement(max_steps);
}

MachineId DelayBoundedStrategy::Next(std::span<const MachineId> enabled,
                                     std::uint64_t step) {
  // Drain ALL delay points due at or before this step: with a small
  // max_steps the sampled points can collide, and consuming only one per
  // call would silently burn the rest of the budget on the same step.
  while (!delay_points_.empty() && step >= delay_points_.front()) {
    delay_points_.erase(delay_points_.begin());
    ++cursor_;  // consume one delay: skip the machine that would run
  }
  return enabled[cursor_ % enabled.size()];
}

// ---------------------------------------------------------------------------
// ReplayStrategy

void ReplayStrategy::PrepareIteration(std::uint64_t /*iteration*/,
                                      std::uint64_t /*max_steps*/) {
  cursor_ = 0;
}

const Decision& ReplayStrategy::Take(Decision::Kind expected) {
  if (cursor_ >= trace_.Size()) {
    throw BugFound(BugKind::kReplayDivergence,
                   "replay: trace exhausted before execution finished");
  }
  const Decision& d = trace_.Decisions()[cursor_++];
  if (d.kind != expected) {
    throw BugFound(BugKind::kReplayDivergence,
                   "replay: decision kind mismatch at index " +
                       std::to_string(cursor_ - 1));
  }
  return d;
}

MachineId ReplayStrategy::Next(std::span<const MachineId> enabled,
                               std::uint64_t /*step*/) {
  const Decision& d = Take(Decision::Kind::kSchedule);
  const MachineId id{d.value};
  if (!std::binary_search(enabled.begin(), enabled.end(), id)) {
    throw BugFound(BugKind::kReplayDivergence,
                   "replay: machine " + std::to_string(d.value) +
                       " not enabled at replayed scheduling point");
  }
  return id;
}

bool ReplayStrategy::NextBool() {
  return Take(Decision::Kind::kBool).value != 0;
}

std::uint64_t ReplayStrategy::NextInt(std::uint64_t bound) {
  const Decision& d = Take(Decision::Kind::kInt);
  if (d.bound != bound || d.value >= bound) {
    throw BugFound(BugKind::kReplayDivergence,
                   "replay: integer choice bound mismatch");
  }
  return d.value;
}

FaultDecision ReplayStrategy::NextFault(const FaultContext& ctx) {
  // Peek, don't take: a fault decision was only recorded when a fault
  // actually fired, so at most step boundaries the next decision is the
  // upcoming schedule/bool/int. The recorded step disambiguates a fault
  // recorded for a LATER boundary from one due now.
  if (cursor_ < trace_.Size()) {
    const Decision& d = trace_.Decisions()[cursor_];
    if (d.kind == Decision::Kind::kCrash && d.bound == ctx.step) {
      ++cursor_;
      return {FaultDecision::Kind::kCrash, MachineId{d.value}};
    }
    if (d.kind == Decision::Kind::kRestart && d.bound == ctx.step) {
      ++cursor_;
      return {FaultDecision::Kind::kRestart, MachineId{d.value}};
    }
    if (d.kind == Decision::Kind::kPartition && d.bound == ctx.step) {
      ++cursor_;
      return {FaultDecision::Kind::kPartition, MachineId{d.value}};
    }
    if (d.kind == Decision::Kind::kHeal && d.bound == ctx.step) {
      ++cursor_;
      return {FaultDecision::Kind::kHeal, MachineId{d.value}};
    }
  }
  return {};
}

DeliveryFault ReplayStrategy::NextDeliveryFault(
    const DeliveryFaultContext& ctx) {
  if (cursor_ < trace_.Size()) {
    const Decision& d = trace_.Decisions()[cursor_];
    if (d.kind == Decision::Kind::kDrop && d.value == ctx.ordinal) {
      ++cursor_;
      return DeliveryFault::kDrop;
    }
    if (d.kind == Decision::Kind::kDuplicate && d.value == ctx.ordinal) {
      ++cursor_;
      return DeliveryFault::kDuplicate;
    }
  }
  return DeliveryFault::kNone;
}

// ---------------------------------------------------------------------------
// Factory

std::string_view ToString(StrategyKind kind) noexcept {
  switch (kind) {
    case StrategyKind::kRandom:
      return "random";
    case StrategyKind::kPct:
      return "pct";
    case StrategyKind::kRoundRobin:
      return "round-robin";
    case StrategyKind::kDelayBounded:
      return "delay-bounded";
  }
  return "unknown";
}

std::unique_ptr<SchedulingStrategy> MakeStrategy(StrategyKind kind,
                                                 std::uint64_t seed,
                                                 int budget) {
  // Deprecated shim: the registry is the single construction site now.
  return StrategyRegistry::Instance().Create(std::string(ToString(kind)), seed,
                                             budget);
}

}  // namespace systest
