// SysTest systematic-testing framework — umbrella header.
//
// SysTest is a C++20 reproduction of the methodology of Deligiannis et al.,
// "Uncovering Bugs in Distributed Storage Systems during Testing (not in
// Production!)" (FAST 2016): model the nondeterministic environment of a
// distributed system as state machines, wrap the real component under test,
// specify safety and liveness properties as monitors, and let a systematic
// testing engine explore interleavings, failures and timeouts until it finds
// a replayable violation.
#pragma once

#include "core/bug.h"          // IWYU pragma: export
#include "core/decl.h"         // IWYU pragma: export
#include "core/engine.h"       // IWYU pragma: export
#include "core/event.h"        // IWYU pragma: export
#include "core/fingerprint.h"  // IWYU pragma: export
#include "core/rng.h"          // IWYU pragma: export
#include "core/runtime.h"      // IWYU pragma: export
#include "core/strategy.h"     // IWYU pragma: export
#include "core/task.h"         // IWYU pragma: export
#include "core/trace.h"        // IWYU pragma: export
