// SysTest — execution-scoped event arena (ROADMAP "Raw speed: reuse
// everything across executions", part (a): arena-style bulk event
// reclamation).
//
// When a Runtime is recycled across executions (see
// Runtime::ResetForNextExecution), every Event allocated during one
// execution is dead by the time the next one starts — the queues are wiped,
// the trace holds only indices, nothing retains event pointers across the
// reset. That lifetime pattern is exactly an arena epoch: allocate by
// bumping a pointer, make `delete` a no-op, and reclaim EVERYTHING at once
// by rewinding the arena when the execution ends. This removes the
// per-event free-list push/pop (and the size-class binning) from the
// hottest path in the framework — Receive-heavy harnesses allocate and
// free an event per delivered message.
//
// The arena is thread-affine and armed per execution via
// ScopedEventArenaArm: while armed, Event::operator new bump-allocates from
// the arena and Event::operator delete does nothing. While NOT armed, the
// existing thread-local size-class pool (event.cc) serves allocations
// unchanged, so one-shot runtimes and tests see the exact pre-existing
// behaviour.
//
// Two sharp edges this design must respect (both bit us in review before a
// line was written):
//  * Oversized allocations NEVER fall back to ::operator new while armed —
//    the matching delete would no-op and leak. They get a dedicated chunk
//    inside the arena instead, reclaimed by the same epoch rewind.
//  * Objects that must SURVIVE epochs (the sealed setup-event prototypes a
//    recycled Runtime re-delivers every execution) are allocated under
//    ScopedEventArenaPause, which routes them to the heap/pool path and
//    makes their eventual delete real.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace systest::detail {

/// Per-thread event allocation telemetry (obs-plane counters; see
/// obs/campaign.h names::kEventPool*/kEventArena*). Trivially destructible
/// so the thread_local teardown order cannot bite.
struct EventAllocStats {
  std::uint64_t pool_hits = 0;        ///< free-list pops (pool path)
  std::uint64_t pool_misses = 0;      ///< ::operator new (pool path)
  std::uint64_t arena_allocations = 0;
  std::uint64_t arena_bytes_high_water = 0;  ///< max epoch footprint seen
};

/// Accessor for the calling thread's counters (mutable: the obs plane
/// snapshots and diffs them per execution).
[[nodiscard]] EventAllocStats& ThreadEventAllocStats() noexcept;

/// Chunked bump allocator for Event storage. One arena serves one
/// recycled Runtime (one per ExecutionRunner / worker thread); epochs are
/// executions. Chunks are retained across epochs, so a steady-state
/// execution allocates nothing from the OS at all.
class EventArena {
 public:
  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  /// Bump-allocates `size` bytes, 16-byte aligned. Oversized requests
  /// (> kChunkSize) get a dedicated chunk — never a ::operator new
  /// fallback, because deletes no-op while this arena is armed.
  [[nodiscard]] void* Allocate(std::size_t size);

  /// Rewinds the bump pointers to the start of every chunk, reclaiming
  /// every allocation of the ending epoch in O(chunks). Chunk memory is
  /// kept for the next epoch; dedicated oversize chunks are released.
  void ResetEpoch() noexcept;

  [[nodiscard]] std::size_t EpochBytes() const noexcept {
    return epoch_bytes_;
  }

 private:
  static constexpr std::size_t kChunkSize = 64 * 1024;
  static constexpr std::size_t kAlign = 16;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::vector<Chunk> chunks_;
  std::vector<Chunk> oversize_;   ///< dedicated chunks, freed each epoch
  std::size_t current_ = 0;       ///< index of the chunk being bumped
  std::size_t offset_ = 0;        ///< bump offset within chunks_[current_]
  std::size_t epoch_bytes_ = 0;   ///< bytes handed out this epoch
};

/// The arena (if any) armed on the calling thread. Event::operator new
/// checks this first; Event::operator delete no-ops while it is non-null.
[[nodiscard]] EventArena* ArmedEventArena() noexcept;

/// Arms `arena` (which may be nullptr — the explicit "pool path" state)
/// for the scope's duration, restoring whatever was armed before. One
/// scope wraps one execution in ExecutionRunner::RunOne, so interleaved
/// fresh-runtime executions on the same thread are unaffected.
class ScopedEventArenaArm {
 public:
  explicit ScopedEventArenaArm(EventArena* arena) noexcept;
  ~ScopedEventArenaArm();
  ScopedEventArenaArm(const ScopedEventArenaArm&) = delete;
  ScopedEventArenaArm& operator=(const ScopedEventArenaArm&) = delete;

 private:
  EventArena* previous_;
};

/// Temporarily disarms the arena so allocations inside the scope go to the
/// heap/pool and their deletes are real. Runtime::SealForReuse clones the
/// setup-event prototypes under this scope — they must survive every
/// ResetEpoch for the recycled Runtime's lifetime.
class ScopedEventArenaPause {
 public:
  ScopedEventArenaPause() noexcept;
  ~ScopedEventArenaPause();
  ScopedEventArenaPause(const ScopedEventArenaPause&) = delete;
  ScopedEventArenaPause& operator=(const ScopedEventArenaPause&) = delete;

 private:
  EventArena* previous_;
};

}  // namespace systest::detail
