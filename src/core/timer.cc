#include "core/timer.h"

namespace systest {

TimerMachine::TimerMachine(MachineId target, std::uint64_t max_rounds,
                           std::uint64_t tag)
    : target_(target),
      initial_rounds_(max_rounds),
      rounds_left_(max_rounds),
      unbounded_(max_rounds == 0),
      tag_(tag) {
  State("Running")
      .OnEntry(&TimerMachine::OnStart)
      .On<RepeatedEvent>(&TimerMachine::OnRound)
      .Ignore<TickAck>()  // late ack from a round that was already cancelled
      .On<CancelTimer>(&TimerMachine::OnCancel);
  State("WaitingAck")
      .On<TickAck>(&TimerMachine::OnAck)
      .Defer<RepeatedEvent>()
      .On<CancelTimer>(&TimerMachine::OnCancel);
  SetStart("Running");
}

void TimerMachine::OnStart() { Send<RepeatedEvent>(Id()); }

void TimerMachine::OnRound() {
  if (!unbounded_) {
    if (rounds_left_ == 0) {
      Halt();
      return;
    }
    --rounds_left_;
  }
  // Nondeterministic choice controlled by the testing engine (Fig. 9), with
  // a fairness cap on consecutive skips (see kMaxConsecutiveSkips).
  if (NondetBool() || consecutive_skips_ >= kMaxConsecutiveSkips) {
    consecutive_skips_ = 0;
    Send<TimerTick>(target_, tag_, Id());
    // One tick in flight: wait for the target to acknowledge before looping.
    Goto("WaitingAck");
  } else {
    ++consecutive_skips_;
    Send<RepeatedEvent>(Id());
  }
}

void TimerMachine::OnAck() {
  Send<RepeatedEvent>(Id());
  Goto("Running");
}

void TimerMachine::OnCancel() { Halt(); }

}  // namespace systest
