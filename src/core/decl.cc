#include "core/decl.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "core/bug.h"

namespace systest::detail {

namespace {

thread_local bool g_skip_decl_build = false;

/// Guards both decl maps. Taken once per machine/monitor construction (Find)
/// and once per type ever (GetOrCompile); never on the scheduling hot path.
std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

std::unordered_map<std::type_index, std::unique_ptr<MachineDecl>>&
MachineDecls() {
  static std::unordered_map<std::type_index, std::unique_ptr<MachineDecl>>
      decls;
  return decls;
}

std::unordered_map<std::type_index, std::unique_ptr<MonitorDecl>>&
MonitorDecls() {
  static std::unordered_map<std::type_index, std::unique_ptr<MonitorDecl>>
      decls;
  return decls;
}

/// Builds the flat event-id tables shared by machine and monitor compiles.
template <typename HandlerT>
void BuildHandlerTables(std::unordered_map<EventTypeId, HandlerT>&& handlers,
                        std::vector<HandlerT>& dense,
                        std::vector<std::int32_t>& index) {
  std::vector<EventTypeId> ids;
  ids.reserve(handlers.size());
  for (const auto& [id, handler] : handlers) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  if (!ids.empty()) {
    index.assign(ids.back() + 1, kNoEntry);
  }
  dense.reserve(ids.size());
  for (const EventTypeId id : ids) {
    index[id] = static_cast<std::int32_t>(dense.size());
    dense.push_back(std::move(handlers.at(id)));
  }
}

std::unique_ptr<MachineDecl> Compile(
    std::type_index type, std::map<std::string, StateDecl>&& states) {
  auto decl = std::make_unique<MachineDecl>();
  decl->type = type;
  decl->states.reserve(states.size());
  for (auto& [name, state] : states) {
    decl->by_name.emplace(name, static_cast<StateId>(decl->states.size()));
    CompiledState compiled;
    compiled.name = name;
    compiled.entry = std::move(state.entry);
    compiled.exit = std::move(state.exit);
    compiled.hot = state.hot;
    compiled.cold = state.cold;
    BuildHandlerTables(std::move(state.handlers), compiled.handlers,
                       compiled.dispatch);
    for (const EventTypeId id : state.defers) {
      compiled.defers.Insert(id);
    }
    for (const EventTypeId id : state.ignores) {
      compiled.ignores.Insert(id);
    }
    decl->states.push_back(std::move(compiled));
  }
  // Second pass: resolve OnGoto targets to StateIds now that every state has
  // one, overwriting any handler entry for the same event (a declared goto
  // has always shadowed a handler). Targets that name no declared state stay
  // kDanglingGoto and fail at fire time, exactly as the string lookup used
  // to.
  auto state_it = states.begin();
  for (CompiledState& compiled : decl->states) {
    StateDecl& builder = state_it->second;
    ++state_it;
    if (builder.gotos.empty()) {
      continue;
    }
    EventTypeId max_id = 0;
    for (const auto& [id, target] : builder.gotos) {
      max_id = std::max(max_id, id);
    }
    if (compiled.dispatch.size() <= max_id) {
      compiled.dispatch.resize(max_id + 1, kNoEntry);
    }
    for (auto& [id, target] : builder.gotos) {
      const auto target_it = decl->by_name.find(target);
      compiled.dispatch[id] = target_it == decl->by_name.end()
                                  ? kDanglingGoto
                                  : EncodeGoto(target_it->second);
      compiled.goto_names.emplace(id, std::move(target));
    }
  }
  return decl;
}

std::unique_ptr<MonitorDecl> CompileMonitor(
    std::type_index type, std::map<std::string, MonitorStateDecl>&& states) {
  auto decl = std::make_unique<MonitorDecl>();
  decl->type = type;
  decl->states.reserve(states.size());
  for (auto& [name, state] : states) {
    decl->by_name.emplace(name, static_cast<StateId>(decl->states.size()));
    CompiledMonitorState compiled;
    compiled.name = name;
    compiled.entry = std::move(state.entry);
    compiled.hot = state.hot;
    compiled.cold = state.cold;
    BuildHandlerTables(std::move(state.handlers), compiled.handlers,
                       compiled.handler_index);
    for (const EventTypeId id : state.ignores) {
      compiled.ignores.Insert(id);
    }
    decl->states.push_back(std::move(compiled));
  }
  return decl;
}

}  // namespace

const MachineDecl* DeclRegistry::FindMachineDecl(std::type_index type) {
  const std::lock_guard<std::mutex> lock(RegistryMutex());
  const auto it = MachineDecls().find(type);
  return it == MachineDecls().end() ? nullptr : it->second.get();
}

const MachineDecl* DeclRegistry::GetOrCompileMachineDecl(
    std::type_index type, std::map<std::string, StateDecl>&& states) {
  const std::lock_guard<std::mutex> lock(RegistryMutex());
  const auto it = MachineDecls().find(type);
  if (it != MachineDecls().end()) {
    return it->second.get();  // lost a benign first-instance race
  }
  return MachineDecls()
      .emplace(type, Compile(type, std::move(states)))
      .first->second.get();
}

const MonitorDecl* DeclRegistry::FindMonitorDecl(std::type_index type) {
  const std::lock_guard<std::mutex> lock(RegistryMutex());
  const auto it = MonitorDecls().find(type);
  return it == MonitorDecls().end() ? nullptr : it->second.get();
}

const MonitorDecl* DeclRegistry::GetOrCompileMonitorDecl(
    std::type_index type, std::map<std::string, MonitorStateDecl>&& states) {
  const std::lock_guard<std::mutex> lock(RegistryMutex());
  const auto it = MonitorDecls().find(type);
  if (it != MonitorDecls().end()) {
    return it->second.get();
  }
  return MonitorDecls()
      .emplace(type, CompileMonitor(type, std::move(states)))
      .first->second.get();
}

namespace {

[[noreturn]] void ThrowDeclDrift(const char* type_name, const std::string& what) {
  throw BugFound(
      BugKind::kHarnessError,
      std::string("machine/monitor type '") + type_name +
          "' declared different states than the first instance of its type (" +
          what +
          "); per-instance state graphs must opt out of declaration sharing "
          "with `static constexpr bool kShareStateDecls = false;`");
}

void CheckSetMatches(const EventIdSet& compiled, const std::set<EventTypeId>& built,
                     const char* type_name, const char* kind) {
  if (compiled.Count() != built.size()) {
    ThrowDeclDrift(type_name, std::string(kind) + " count differs");
  }
  for (const EventTypeId id : built) {
    if (!compiled.Contains(id)) {
      ThrowDeclDrift(type_name, std::string(kind) + " registrations differ");
    }
  }
}

}  // namespace

void VerifyDeclMatches(const MachineDecl& decl,
                       const std::map<std::string, StateDecl>& states,
                       const char* type_name) {
  if (decl.states.size() != states.size()) {
    ThrowDeclDrift(type_name, "state count differs");
  }
  for (const auto& [name, built] : states) {
    const CompiledState* compiled = decl.FindState(name);
    if (compiled == nullptr) {
      ThrowDeclDrift(type_name, "state '" + name + "' not in the shared decl");
    }
    if (compiled->handlers.size() != built.handlers.size()) {
      ThrowDeclDrift(type_name, "handler count differs in state '" + name + "'");
    }
    for (const auto& [id, handler] : built.handlers) {
      // A handler is visible either directly in the dispatch table or
      // shadowed there by a goto for the same event.
      if (compiled->DispatchOf(id) < 0 && !compiled->goto_names.contains(id)) {
        ThrowDeclDrift(type_name, "handlers differ in state '" + name + "'");
      }
    }
    if (compiled->goto_names.size() != built.gotos.size()) {
      ThrowDeclDrift(type_name, "goto count differs in state '" + name + "'");
    }
    for (const auto& [id, target] : built.gotos) {
      const auto it = compiled->goto_names.find(id);
      if (it == compiled->goto_names.end() || it->second != target) {
        ThrowDeclDrift(type_name, "gotos differ in state '" + name + "'");
      }
    }
    CheckSetMatches(compiled->defers, built.defers, type_name, "defer");
    CheckSetMatches(compiled->ignores, built.ignores, type_name, "ignore");
    if (compiled->entry.Valid() != built.entry.Valid() ||
        static_cast<bool>(compiled->exit) != static_cast<bool>(built.exit) ||
        compiled->hot != built.hot || compiled->cold != built.cold) {
      ThrowDeclDrift(type_name,
                     "entry/exit/hot/cold differ in state '" + name + "'");
    }
  }
}

void VerifyMonitorDeclMatches(
    const MonitorDecl& decl,
    const std::map<std::string, MonitorStateDecl>& states,
    const char* type_name) {
  if (decl.states.size() != states.size()) {
    ThrowDeclDrift(type_name, "state count differs");
  }
  for (const auto& [name, built] : states) {
    const CompiledMonitorState* compiled = decl.FindState(name);
    if (compiled == nullptr) {
      ThrowDeclDrift(type_name, "state '" + name + "' not in the shared decl");
    }
    if (compiled->handlers.size() != built.handlers.size()) {
      ThrowDeclDrift(type_name, "handler count differs in state '" + name + "'");
    }
    for (const auto& [id, handler] : built.handlers) {
      if (compiled->HandlerIndexOf(id) < 0) {
        ThrowDeclDrift(type_name, "handlers differ in state '" + name + "'");
      }
    }
    CheckSetMatches(compiled->ignores, built.ignores, type_name, "ignore");
    if (static_cast<bool>(compiled->entry) != static_cast<bool>(built.entry) ||
        compiled->hot != built.hot || compiled->cold != built.cold) {
      ThrowDeclDrift(type_name,
                     "entry/hot/cold differ in state '" + name + "'");
    }
  }
}

std::unique_ptr<const MachineDecl> CompileMachineDeclUnshared(
    std::type_index type, std::map<std::string, StateDecl>&& states) {
  return Compile(type, std::move(states));
}

std::unique_ptr<const MonitorDecl> CompileMonitorDeclUnshared(
    std::type_index type, std::map<std::string, MonitorStateDecl>&& states) {
  return CompileMonitor(type, std::move(states));
}

std::size_t DeclRegistry::MachineDeclCount() {
  const std::lock_guard<std::mutex> lock(RegistryMutex());
  return MachineDecls().size();
}

bool SkipDeclBuild() noexcept { return g_skip_decl_build; }

ScopedDeclSkip::ScopedDeclSkip() noexcept : previous_(g_skip_decl_build) {
  g_skip_decl_build = true;
}

ScopedDeclSkip::~ScopedDeclSkip() { g_skip_decl_build = previous_; }

}  // namespace systest::detail
