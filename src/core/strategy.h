// SysTest systematic-testing framework.
//
// Scheduling strategies. The paper evaluates two (§6.2): a random scheduler,
// and a randomized priority-based scheduler (after Burckhardt et al.'s PCT,
// their citation [4]) configured with a budget of priority change points per
// execution. We implement both, plus round-robin (deterministic baseline),
// delay-bounded scheduling (Emmi et al., the paper's citation [11]) for
// ablation benches, and a replay strategy that re-executes a recorded trace.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/trace.h"

namespace systest {

/// Strong identifier for a machine instance. Ids are assigned sequentially
/// from 1 in creation order within an execution, which makes them stable
/// across iterations and replayable.
struct MachineId {
  std::uint64_t value{0};

  [[nodiscard]] bool Valid() const noexcept { return value != 0; }
  friend auto operator<=>(const MachineId&, const MachineId&) = default;
};

/// Concrete-type tag carried by the strategy base class so Runtime::Step can
/// special-case the dominant built-ins: the tagged final classes are called
/// through a static_cast instead of the vtable (the registry is the single
/// construction site for engines, but the tag is stamped in the constructors
/// so directly built strategies — benches, golden tests — devirtualize too).
/// kOther keeps the plain virtual path; a wrong tag would be a correctness
/// bug, which is why only the built-ins' own constructors set it.
enum class BuiltinStrategy : std::uint8_t { kOther = 0, kRandom, kPct };

/// Outcome of the per-step fault choice point (the fault plane's
/// step-boundary fault action): crash/restart a machine, or install/heal a
/// network partition isolating one machine from the rest.
struct FaultDecision {
  enum class Kind : std::uint8_t { kNone, kCrash, kRestart, kPartition, kHeal };
  Kind kind = Kind::kNone;
  MachineId machine{};
};

/// Context for SchedulingStrategy::NextFault. The runtime populates the
/// candidate spans only while the corresponding budget remains, so an empty
/// span means "this fault kind is not available here". Under replay all
/// spans are empty — the ReplayStrategy reads the decision from the trace.
struct FaultContext {
  std::span<const MachineId> crashable;      ///< crash candidates (sorted)
  std::span<const MachineId> restartable;    ///< restart candidates (sorted)
  std::span<const MachineId> partitionable;  ///< partition candidates (sorted)
  std::span<const MachineId> healable;       ///< isolated machines (sorted)
  std::uint64_t step = 0;       ///< 0-based step this boundary precedes
  std::uint64_t odds_den = 16;  ///< suggested per-step fault odds (1/den)
  std::uint64_t heal_den = 4;   ///< suggested per-step heal odds (1/den)
};

/// Outcome of the per-delivery message-fault choice point.
enum class DeliveryFault : std::uint8_t { kNone, kDrop, kDuplicate };

/// Context for SchedulingStrategy::NextDeliveryFault. `ordinal` is the
/// 0-based index of this machine-to-machine delivery within the execution —
/// the stable coordinate fault decisions are recorded against, so replay can
/// re-apply them without any fault configuration.
struct DeliveryFaultContext {
  std::uint64_t ordinal = 0;
  MachineId target{};
  bool drop_allowed = false;       ///< drop_probability_den is configured
  bool duplicate_allowed = false;  ///< budget remains and the event is clonable
  std::uint64_t drop_den = 0;      ///< per-delivery drop odds (1/den)
  std::uint64_t dup_den = 0;       ///< per-delivery duplication odds (1/den)
};

/// Interface consulted by the runtime at every scheduling point.
class SchedulingStrategy {
 public:
  virtual ~SchedulingStrategy() = default;

  /// Which built-in (if any) this instance is — see BuiltinStrategy.
  [[nodiscard]] BuiltinStrategy Builtin() const noexcept { return builtin_; }

  /// Called before each execution. `iteration` is 0-based; `max_steps` is the
  /// engine's per-execution step bound (needed by PCT/delay-bounded to place
  /// change points).
  virtual void PrepareIteration(std::uint64_t iteration,
                                std::uint64_t max_steps) = 0;

  /// Picks the machine to run next. `enabled` is non-empty and sorted by id.
  /// `step` is the 0-based index of this scheduling point.
  virtual MachineId Next(std::span<const MachineId> enabled,
                         std::uint64_t step) = 0;

  /// Value for a controlled boolean choice (PSharp.Nondet()).
  virtual bool NextBool() = 0;

  /// Value in [0, bound) for a controlled integer choice. bound >= 1.
  virtual std::uint64_t NextInt(std::uint64_t bound) = 0;

  /// Step-boundary fault choice point (crash/restart/partition/heal),
  /// consulted once per scheduling step while the fault plane is active and
  /// budget remains. The default derives the decision from the strategy's
  /// own choice source (NextInt), so EVERY strategy — random, PCT,
  /// delay-bounded, round-robin, third-party — explores failure
  /// interleavings without any code of its own. With pre-sampled placement
  /// armed (SetFaultPlacementPoints + a PrepareIteration that calls
  /// SampleFaultPlacement), destructive faults (crash, partition) fire only
  /// at the sampled points instead of geometric per-step odds.
  /// ReplayStrategy overrides it to read the recorded failure schedule from
  /// the trace.
  virtual FaultDecision NextFault(const FaultContext& ctx);

  /// Message-fault choice point, consulted once per machine-to-machine
  /// delivery while the fault plane is active. Same override contract as
  /// NextFault.
  virtual DeliveryFault NextDeliveryFault(const DeliveryFaultContext& ctx);

  [[nodiscard]] virtual std::string Name() const = 0;

  /// Steps (from the start of the execution) during which the stateful
  /// engine must NOT count consecutive known states toward pruning. Default
  /// 0: pruning behaves exactly as before for every existing strategy.
  /// Corpus-guided strategies (corpus/mutation_strategy.h) return the length
  /// of the trace prefix they are deliberately replaying — the prefix walks
  /// through already-visited states by construction, and pruning it would
  /// kill the execution before its mutation ever diverged. Read by the
  /// engine AFTER PrepareIteration (the prefix is chosen there).
  [[nodiscard]] virtual std::uint64_t PruneHoldoffSteps() const noexcept {
    return 0;
  }

  /// Pre-sampled fault placement (PCT-style, TestConfig::
  /// fault_placement_points): when count > 0, the default NextFault stops
  /// rolling geometric per-step odds for DESTRUCTIVE faults (crash,
  /// partition) and fires them only at `count` points sampled uniformly
  /// from the step budget each iteration — mirroring PCT's priority change
  /// points, so fault depth is bounded and systematically explorable.
  /// Recovery actions (restart, heal) keep their per-step odds. The
  /// built-in random/PCT/delay-bounded strategies honor this by calling
  /// SampleFaultPlacement from PrepareIteration; a strategy that never
  /// samples stays on the geometric default.
  void SetFaultPlacementPoints(int count) noexcept {
    placement_points_ = count;
  }
  [[nodiscard]] int FaultPlacementPoints() const noexcept {
    return placement_points_;
  }

  /// Remaining (sorted) pre-sampled fault points for the current iteration.
  /// Exposed so tests can pin where placed faults fire for a given seed.
  [[nodiscard]] std::span<const std::uint64_t> PlacedFaultPoints()
      const noexcept {
    return fault_points_;
  }

 protected:
  /// For built-in constructors only: the tag promises the dynamic type.
  void TagBuiltin(BuiltinStrategy builtin) noexcept { builtin_ = builtin; }

  /// Samples the configured number of placement points uniformly from
  /// [0, max_steps), sorted ascending, using the strategy's own choice
  /// stream (NextInt) — the same seed places the same faults. Call from
  /// PrepareIteration AFTER reseeding. No-op (and no draws) when placement
  /// is not configured, so default-off runs stay bit-identical.
  void SampleFaultPlacement(std::uint64_t max_steps);

 private:
  BuiltinStrategy builtin_ = BuiltinStrategy::kOther;
  int placement_points_ = 0;
  bool placement_armed_ = false;  ///< a PrepareIteration sampled at least once
  std::vector<std::uint64_t> fault_points_;
};

/// Uniformly random scheduling and choices.
class RandomStrategy final : public SchedulingStrategy {
 public:
  explicit RandomStrategy(std::uint64_t seed) : base_seed_(seed), rng_(seed) {
    TagBuiltin(BuiltinStrategy::kRandom);
  }

  void PrepareIteration(std::uint64_t iteration, std::uint64_t max_steps) override;
  /// In-class so Runtime::Step's devirtualized call (BuiltinStrategy tag +
  /// final class) inlines the whole pick into the step loop.
  MachineId Next(std::span<const MachineId> enabled,
                 std::uint64_t /*step*/) override {
    return enabled[rng_.NextBelow(enabled.size())];
  }
  bool NextBool() override { return rng_.NextBool(); }
  std::uint64_t NextInt(std::uint64_t bound) override {
    return rng_.NextBelow(bound);
  }
  [[nodiscard]] std::string Name() const override { return "random"; }

 private:
  std::uint64_t base_seed_;
  Xoshiro256 rng_;
};

/// Randomized priority-based scheduling (PCT-style). Each machine receives a
/// random priority on first appearance; the highest-priority enabled machine
/// always runs. At `depth` randomly chosen steps the currently running
/// highest-priority machine is demoted below all others. The paper used a
/// budget of 2 priority change points (§6.2).
class PctStrategy final : public SchedulingStrategy {
 public:
  PctStrategy(std::uint64_t seed, int depth)
      : base_seed_(seed), depth_(depth), rng_(seed) {
    TagBuiltin(BuiltinStrategy::kPct);
  }

  void PrepareIteration(std::uint64_t iteration, std::uint64_t max_steps) override;
  MachineId Next(std::span<const MachineId> enabled, std::uint64_t step) override;
  bool NextBool() override { return rng_.NextBool(); }
  std::uint64_t NextInt(std::uint64_t bound) override {
    return rng_.NextBelow(bound);
  }
  [[nodiscard]] std::string Name() const override {
    return "pct(" + std::to_string(depth_) + ")";
  }

  /// Remaining (sorted) demotion steps for the current iteration. Exposed so
  /// tests can pin down where demotions fire for a given seed.
  [[nodiscard]] std::span<const std::uint64_t> ChangePoints() const noexcept {
    return change_points_;
  }

 private:
  std::uint64_t PriorityOf(MachineId id);

  std::uint64_t base_seed_;
  int depth_;
  Xoshiro256 rng_;
  std::vector<std::uint64_t> change_points_;
  std::vector<std::uint64_t> priorities_;  // indexed by machine id
  std::uint64_t low_water_{0};             // decreases on each demotion
};

/// Deterministic round-robin over enabled machines; boolean choices alternate
/// and integer choices cycle. Useful as a fully deterministic baseline in
/// unit tests and ablations.
class RoundRobinStrategy final : public SchedulingStrategy {
 public:
  /// `seed` offsets the rotation start (cursor = seed + iteration), so
  /// sharded workers holding disjoint seed ranges cover exactly the rotation
  /// positions the serial engine would with the same total budget.
  explicit RoundRobinStrategy(std::uint64_t seed = 0) : base_(seed) {}

  void PrepareIteration(std::uint64_t iteration, std::uint64_t max_steps) override;
  MachineId Next(std::span<const MachineId> enabled, std::uint64_t step) override;
  bool NextBool() override { return (counter_++ % 2) == 0; }
  std::uint64_t NextInt(std::uint64_t bound) override {
    return counter_++ % bound;
  }
  [[nodiscard]] std::string Name() const override { return "round-robin"; }

 private:
  std::uint64_t base_{0};
  std::uint64_t cursor_{0};
  std::uint64_t counter_{0};
};

/// Delay-bounded scheduling: round-robin order, but up to `delay_budget`
/// randomly placed scheduling points skip the default machine.
class DelayBoundedStrategy final : public SchedulingStrategy {
 public:
  DelayBoundedStrategy(std::uint64_t seed, int delay_budget)
      : base_seed_(seed), delay_budget_(delay_budget), rng_(seed) {}

  void PrepareIteration(std::uint64_t iteration, std::uint64_t max_steps) override;
  MachineId Next(std::span<const MachineId> enabled, std::uint64_t step) override;
  bool NextBool() override { return rng_.NextBool(); }
  std::uint64_t NextInt(std::uint64_t bound) override {
    return rng_.NextBelow(bound);
  }
  [[nodiscard]] std::string Name() const override {
    return "delay-bounded(" + std::to_string(delay_budget_) + ")";
  }

 private:
  std::uint64_t base_seed_;
  int delay_budget_;
  Xoshiro256 rng_;
  std::vector<std::uint64_t> delay_points_;
  std::uint64_t cursor_{0};
};

/// Replays a recorded trace decision-for-decision. Any divergence (a decision
/// of the wrong kind, a scheduled machine that is not enabled, or running out
/// of decisions) throws BugFound{kReplayDivergence}.
class ReplayStrategy final : public SchedulingStrategy {
 public:
  explicit ReplayStrategy(Trace trace) : trace_(std::move(trace)) {}

  void PrepareIteration(std::uint64_t iteration, std::uint64_t max_steps) override;
  MachineId Next(std::span<const MachineId> enabled, std::uint64_t step) override;
  bool NextBool() override;
  std::uint64_t NextInt(std::uint64_t bound) override;
  /// Trace-driven fault application: if the next recorded decision is a
  /// crash/restart/partition/heal whose step matches ctx.step, consume and
  /// return it; otherwise no fault fired here. Budgets and candidate lists
  /// are ignored — the trace alone defines the failure schedule, which is
  /// what lets `--replay` reproduce fault-found bugs without any --faults
  /// flags.
  FaultDecision NextFault(const FaultContext& ctx) override;
  /// Same, keyed on the recorded delivery ordinal.
  DeliveryFault NextDeliveryFault(const DeliveryFaultContext& ctx) override;
  [[nodiscard]] std::string Name() const override { return "replay"; }

  /// True once every recorded decision has been consumed.
  [[nodiscard]] bool Exhausted() const noexcept {
    return cursor_ >= trace_.Size();
  }

 private:
  const Decision& Take(Decision::Kind expected);

  Trace trace_;
  std::size_t cursor_{0};
};

/// DEPRECATED transition shim. Strategies are now identified by string name
/// and constructed through systest::StrategyRegistry (api/strategy_registry.h);
/// the enum survives only so pre-registry call sites keep compiling. It will
/// be removed once downstream code has migrated.
enum class StrategyKind { kRandom, kPct, kRoundRobin, kDelayBounded };

std::string_view ToString(StrategyKind kind) noexcept;

/// String name of a scheduling strategy, resolved through StrategyRegistry
/// when an engine starts. Accepts an optional budget suffix ("pct(5)") that
/// overrides TestConfig::strategy_budget. Implicitly converts from the
/// deprecated StrategyKind so old call sites keep compiling.
class StrategyName {
 public:
  StrategyName() = default;
  StrategyName(std::string name) : name_(std::move(name)) {}
  StrategyName(std::string_view name) : name_(name) {}
  StrategyName(const char* name) : name_(name) {}
  StrategyName(StrategyKind kind) : name_(ToString(kind)) {}  // deprecated

  [[nodiscard]] const std::string& str() const noexcept { return name_; }
  [[nodiscard]] const char* c_str() const noexcept { return name_.c_str(); }
  [[nodiscard]] bool empty() const noexcept { return name_.empty(); }
  operator const std::string&() const noexcept { return name_; }

  friend bool operator==(const StrategyName&, const StrategyName&) = default;
  friend auto operator<=>(const StrategyName&, const StrategyName&) = default;

 private:
  std::string name_ = "random";
};

/// DEPRECATED transition shim: forwards to
/// StrategyRegistry::Instance().Create(ToString(kind), seed, budget).
std::unique_ptr<SchedulingStrategy> MakeStrategy(StrategyKind kind,
                                                 std::uint64_t seed,
                                                 int budget);

}  // namespace systest
