// SysTest systematic-testing framework.
//
// A Trace is the complete record of the nondeterministic choices made during
// one serialized execution: which machine was scheduled at each step, and the
// value of every controlled nondeterministic choice (NondetBool/NondetInt).
// Replaying a trace with ReplayStrategy reproduces the execution exactly —
// this is the paper's "a bug is ... witnessed by a full system trace" and the
// basis of its replay/debug loop (§1, §2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace systest {

/// One recorded nondeterministic decision.
struct Decision {
  enum class Kind : std::uint8_t {
    kSchedule,  ///< value = id of the machine chosen to run this step
    kBool,      ///< value = 0 or 1
    kInt,       ///< value = chosen integer; bound records the choice range
  };

  Kind kind{Kind::kSchedule};
  std::uint64_t value{0};
  std::uint64_t bound{0};  ///< for kInt: the exclusive upper bound requested

  friend bool operator==(const Decision&, const Decision&) = default;
};

/// Append-only record of decisions for a single execution.
class Trace {
 public:
  void Clear() { decisions_.clear(); }

  /// Pre-sizes decision storage (the runtime reserves from its step bound so
  /// the per-execution hot path never regrows the vector).
  void Reserve(std::size_t capacity) { decisions_.reserve(capacity); }

  void RecordSchedule(std::uint64_t machine_id) {
    decisions_.push_back({Decision::Kind::kSchedule, machine_id, 0});
  }
  void RecordBool(bool value) {
    decisions_.push_back({Decision::Kind::kBool, value ? 1u : 0u, 2});
  }
  void RecordInt(std::uint64_t value, std::uint64_t bound) {
    decisions_.push_back({Decision::Kind::kInt, value, bound});
  }

  [[nodiscard]] std::size_t Size() const noexcept { return decisions_.size(); }
  [[nodiscard]] bool Empty() const noexcept { return decisions_.empty(); }
  [[nodiscard]] const std::vector<Decision>& Decisions() const noexcept {
    return decisions_;
  }

  /// Compact single-line text form, e.g. "s3;b1;i2/5;s1". Round-trips with
  /// Parse; used to persist repro traces alongside bug reports.
  [[nodiscard]] std::string ToString() const;

  /// Parses the ToString form. Throws std::invalid_argument on malformed
  /// input.
  static Trace Parse(const std::string& text);

  /// Durable serialization: a versioned header line ("systest-trace v1 <n>")
  /// followed by the compact ToString decision line. Round-trips with
  /// Deserialize; this is the on-disk format written by
  /// `systest_run --trace-out` and consumed by `--replay`.
  [[nodiscard]] std::string Serialize() const;

  /// Parses the Serialize form, validating version and decision count.
  /// Throws std::invalid_argument on malformed input.
  static Trace Deserialize(const std::string& text);

  /// File wrappers over Serialize/Deserialize. Throw std::runtime_error on
  /// I/O failure (and std::invalid_argument on a malformed file).
  void SaveFile(const std::string& path) const;
  static Trace LoadFile(const std::string& path);

  friend bool operator==(const Trace&, const Trace&) = default;

 private:
  std::vector<Decision> decisions_;
};

}  // namespace systest
