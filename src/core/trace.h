// SysTest systematic-testing framework.
//
// A Trace is the complete record of the nondeterministic choices made during
// one serialized execution: which machine was scheduled at each step, the
// value of every controlled nondeterministic choice (NondetBool/NondetInt),
// and — when the fault plane is active — every injected fault (machine
// crash/restart at a step boundary, message drop/duplication at a delivery).
// Replaying a trace with ReplayStrategy reproduces the execution exactly —
// this is the paper's "a bug is ... witnessed by a full system trace" and the
// basis of its replay/debug loop (§1, §2). Fault decisions are
// self-describing (each carries the step or delivery ordinal it fired at),
// so replay derives the complete failure schedule from the trace alone — no
// fault configuration is needed to reproduce a fault-found bug.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace systest {

/// One recorded nondeterministic decision.
struct Decision {
  enum class Kind : std::uint8_t {
    kSchedule,   ///< value = id of the machine chosen to run this step
    kBool,       ///< value = 0 or 1
    kInt,        ///< value = chosen integer; bound records the choice range
    // Fault-plane decisions (trace format v2). Only ever recorded when a
    // fault actually fired, so fault-free traces contain none and stay in
    // format v1.
    kCrash,      ///< value = crashed machine id; bound = step it fired at
    kRestart,    ///< value = restarted machine id; bound = step it fired at
    kDrop,       ///< value = delivery ordinal dropped; bound = target id
    kDuplicate,  ///< value = delivery ordinal duplicated; bound = target id
    // Partition decisions (trace format v3). A partition isolates ONE
    // machine from every other machine (group = {machine} vs rest); several
    // concurrent partitions compose by isolating several machines. Only
    // recorded when a partition actually fired, so partition-free traces
    // stay in v1/v2.
    kPartition,  ///< value = isolated machine id; bound = step it fired at
    kHeal,       ///< value = healed machine id; bound = step it fired at
  };

  Kind kind{Kind::kSchedule};
  std::uint64_t value{0};
  std::uint64_t bound{0};  ///< for kInt: the exclusive upper bound requested

  [[nodiscard]] bool IsFault() const noexcept {
    return kind == Kind::kCrash || kind == Kind::kRestart ||
           kind == Kind::kDrop || kind == Kind::kDuplicate ||
           kind == Kind::kPartition || kind == Kind::kHeal;
  }

  [[nodiscard]] bool IsPartition() const noexcept {
    return kind == Kind::kPartition || kind == Kind::kHeal;
  }

  friend bool operator==(const Decision&, const Decision&) = default;
};

/// Append-only record of decisions for a single execution.
class Trace {
 public:
  void Clear() { decisions_.clear(); }

  /// Pre-sizes decision storage (the runtime reserves from its step bound so
  /// the per-execution hot path never regrows the vector).
  void Reserve(std::size_t capacity) { decisions_.reserve(capacity); }

  void RecordSchedule(std::uint64_t machine_id) {
    decisions_.push_back({Decision::Kind::kSchedule, machine_id, 0});
  }
  void RecordBool(bool value) {
    decisions_.push_back({Decision::Kind::kBool, value ? 1u : 0u, 2});
  }
  void RecordInt(std::uint64_t value, std::uint64_t bound) {
    decisions_.push_back({Decision::Kind::kInt, value, bound});
  }
  void RecordCrash(std::uint64_t machine_id, std::uint64_t step) {
    decisions_.push_back({Decision::Kind::kCrash, machine_id, step});
  }
  void RecordRestart(std::uint64_t machine_id, std::uint64_t step) {
    decisions_.push_back({Decision::Kind::kRestart, machine_id, step});
  }
  void RecordDrop(std::uint64_t delivery_ordinal, std::uint64_t target_id) {
    decisions_.push_back({Decision::Kind::kDrop, delivery_ordinal, target_id});
  }
  void RecordDuplicate(std::uint64_t delivery_ordinal,
                       std::uint64_t target_id) {
    decisions_.push_back(
        {Decision::Kind::kDuplicate, delivery_ordinal, target_id});
  }
  void RecordPartition(std::uint64_t machine_id, std::uint64_t step) {
    decisions_.push_back({Decision::Kind::kPartition, machine_id, step});
  }
  void RecordHeal(std::uint64_t machine_id, std::uint64_t step) {
    decisions_.push_back({Decision::Kind::kHeal, machine_id, step});
  }

  [[nodiscard]] std::size_t Size() const noexcept { return decisions_.size(); }
  [[nodiscard]] bool Empty() const noexcept { return decisions_.empty(); }
  [[nodiscard]] const std::vector<Decision>& Decisions() const noexcept {
    return decisions_;
  }

  /// True when the trace records at least one injected fault (the condition
  /// under which Serialize emits format v2 or higher).
  [[nodiscard]] bool HasFaultDecisions() const noexcept;

  /// True when the trace records at least one partition install/heal (the
  /// condition under which Serialize emits format v3).
  [[nodiscard]] bool HasPartitionDecisions() const noexcept;

  /// Human-readable one-line failure schedule, e.g.
  /// "crash m3@s12; restart m3@s40; drop #7->m2; dup #9->m2; part m4@s15;
  /// heal m4@s33". Empty when the trace contains no fault decisions.
  [[nodiscard]] std::string DescribeFaults() const;

  /// Compact single-line text form, e.g. "s3;b1;i2/5;s1" (fault decisions
  /// appear as "c<machine>/<step>", "r<machine>/<step>", "d<ordinal>/<target>",
  /// "u<ordinal>/<target>", "p<machine>/<step>" and "h<machine>/<step>").
  /// Round-trips with Parse; used to persist repro traces alongside bug
  /// reports.
  [[nodiscard]] std::string ToString() const;

  /// Parses the ToString form. Throws std::invalid_argument on malformed
  /// input.
  static Trace Parse(const std::string& text);

  /// Durable serialization: a versioned header line ("systest-trace v1 <n>",
  /// "systest-trace v2 <n>" when the trace records injected faults, or
  /// "systest-trace v3 <n>" when it records partitions) followed by the
  /// compact ToString decision line. The writer picks the LOWEST version
  /// that can represent the trace: fault-free traces stay in v1
  /// byte-for-byte and partition-free fault traces stay in v2, so files
  /// written by older writers and fault-off runs today are
  /// indistinguishable. Round-trips with Deserialize; this is the on-disk
  /// format written by `systest_run --trace-out` and consumed by `--replay`.
  [[nodiscard]] std::string Serialize() const;

  /// Parses the Serialize form (v1, v2, or v3), validating version and
  /// decision count. Throws std::invalid_argument on malformed input.
  static Trace Deserialize(const std::string& text);

  /// File wrappers over Serialize/Deserialize. Throw std::runtime_error on
  /// I/O failure (and std::invalid_argument on a malformed file).
  void SaveFile(const std::string& path) const;
  static Trace LoadFile(const std::string& path);

  friend bool operator==(const Trace&, const Trace&) = default;

 private:
  std::vector<Decision> decisions_;
};

}  // namespace systest
