// SysTest systematic-testing framework.
//
// Machine, Monitor and Runtime — the C++ rendering of the P# programming
// model (§2.1 of the paper): programs are state machines that communicate
// asynchronously by exchanging events; each machine has an event queue and
// one or more states; states register actions for incoming events; sends are
// non-blocking. During testing the runtime *serializes* the system: a single
// scheduling step picks one enabled machine and runs it until it yields
// (handler completion, or suspension in a Receive). Every scheduling decision
// and every controlled nondeterministic choice is recorded in a Trace, which
// makes executions fully replayable.
#pragma once

#include <cassert>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/bug.h"
#include "core/event.h"
#include "core/strategy.h"
#include "core/task.h"
#include "core/trace.h"

namespace systest {

class Machine;
class Monitor;
class Runtime;

namespace detail {

/// Type-erased handler: either a synchronous action or a coroutine. The
/// event pointer is null for entry actions.
struct Handler {
  std::function<void(Machine&, const Event*)> sync;
  std::function<Task(Machine&, const Event*)> coro;

  [[nodiscard]] bool Valid() const noexcept {
    return static_cast<bool>(sync) || static_cast<bool>(coro);
  }
};

/// Declaration of one machine (or monitor) state.
struct StateDecl {
  std::string name;
  Handler entry;
  std::function<void(Machine&)> exit;
  std::unordered_map<std::type_index, Handler> handlers;
  std::unordered_map<std::type_index, std::string> gotos;
  std::set<std::type_index> defers;
  std::set<std::type_index> ignores;
  bool hot = false;   // liveness: progress required while in this state
  bool cold = false;  // liveness: progress happened
};

/// Monitor handler: always synchronous.
struct MonitorStateDecl {
  std::string name;
  std::function<void(Monitor&)> entry;
  std::unordered_map<std::type_index, std::function<void(Monitor&, const Event&)>>
      handlers;
  std::set<std::type_index> ignores;
  bool hot = false;
  bool cold = false;
};

}  // namespace detail

/// Fluent builder used in machine constructors to declare a state's behavior.
class StateBuilder {
 public:
  explicit StateBuilder(detail::StateDecl* decl) : decl_(decl) {}

  /// Registers a synchronous action for event E: void M::Fn(const E&).
  template <typename E, typename M>
  StateBuilder& On(void (M::*fn)(const E&)) {
    decl_->handlers[typeid(E)].sync = [fn](Machine& m, const Event* e) {
      (static_cast<M&>(m).*fn)(static_cast<const E&>(*e));
    };
    return *this;
  }

  /// Registers a synchronous action that ignores the payload: void M::Fn().
  template <typename E, typename M>
  StateBuilder& On(void (M::*fn)()) {
    decl_->handlers[typeid(E)].sync = [fn](Machine& m, const Event*) {
      (static_cast<M&>(m).*fn)();
    };
    return *this;
  }

  /// Registers a coroutine action for event E: Task M::Fn(const E&). The
  /// event stays alive until the coroutine completes.
  template <typename E, typename M>
  StateBuilder& On(Task (M::*fn)(const E&)) {
    decl_->handlers[typeid(E)].coro = [fn](Machine& m, const Event* e) {
      return (static_cast<M&>(m).*fn)(static_cast<const E&>(*e));
    };
    return *this;
  }

  /// Registers a coroutine action ignoring the payload: Task M::Fn().
  template <typename E, typename M>
  StateBuilder& On(Task (M::*fn)()) {
    decl_->handlers[typeid(E)].coro = [fn](Machine& m, const Event*) {
      return (static_cast<M&>(m).*fn)();
    };
    return *this;
  }

  /// On event E, transition directly to `target` (exit/entry actions run).
  template <typename E>
  StateBuilder& OnGoto(std::string target) {
    decl_->gotos[typeid(E)] = std::move(target);
    return *this;
  }

  /// Defer E in this state: it stays queued until a state handles it.
  template <typename E>
  StateBuilder& Defer() {
    decl_->defers.insert(typeid(E));
    return *this;
  }

  /// Ignore (drop) E in this state.
  template <typename E>
  StateBuilder& Ignore() {
    decl_->ignores.insert(typeid(E));
    return *this;
  }

  /// Entry action, synchronous: void M::Fn().
  template <typename M>
  StateBuilder& OnEntry(void (M::*fn)()) {
    decl_->entry.sync = [fn](Machine& m, const Event*) {
      (static_cast<M&>(m).*fn)();
    };
    return *this;
  }

  /// Entry action, coroutine: Task M::Fn().
  template <typename M>
  StateBuilder& OnEntry(Task (M::*fn)()) {
    decl_->entry.coro = [fn](Machine& m, const Event*) {
      return (static_cast<M&>(m).*fn)();
    };
    return *this;
  }

  /// Exit action (always synchronous; P# exit actions cannot block).
  template <typename M>
  StateBuilder& OnExit(void (M::*fn)()) {
    decl_->exit = [fn](Machine& m) { (static_cast<M&>(m).*fn)(); };
    return *this;
  }

 private:
  detail::StateDecl* decl_;
};

template <typename E>
class ReceiveAwaiter;
template <typename... Es>
class ReceiveAnyAwaiter;

/// Base class for P#-style machines. Subclasses declare their states in the
/// constructor with State(...)/SetStart(...) and interact with the world
/// exclusively through the protected runtime API (Send, Raise, Goto, Create,
/// NondetBool/Int, Receive, Halt, Assert, Notify).
class Machine {
 public:
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  virtual ~Machine() = default;

  [[nodiscard]] MachineId Id() const noexcept { return id_; }
  [[nodiscard]] const std::string& DebugName() const noexcept { return debug_name_; }
  [[nodiscard]] bool Halted() const noexcept { return halted_; }
  [[nodiscard]] const std::string& CurrentStateName() const;
  [[nodiscard]] std::size_t QueueLength() const noexcept { return queue_.size(); }

 protected:
  Machine() = default;

  // ---- Declaration API (constructor only) ----

  /// Creates or retrieves the state `name` for further declaration.
  StateBuilder State(std::string name);

  /// Sets the state entered when the machine starts.
  void SetStart(std::string name) { start_state_ = std::move(name); }

  // ---- Runtime API (handlers only) ----

  /// The runtime this machine is attached to.
  [[nodiscard]] Runtime& Rt();

  /// Non-blocking send: enqueues `ev` into `target`'s queue.
  void Send(MachineId target, std::unique_ptr<const Event> ev);

  template <typename E, typename... Args>
  void Send(MachineId target, Args&&... args) {
    Send(target, MakeEvent<E>(std::forward<Args>(args)...));
  }

  /// Raises an event on this machine: handled before any queued event, in
  /// the (possibly new) current state, as part of the same atomic step.
  template <typename E, typename... Args>
  void Raise(Args&&... args) {
    RaiseEvent(MakeEvent<E>(std::forward<Args>(args)...));
  }
  void RaiseEvent(std::unique_ptr<const Event> ev);

  /// Transitions to `state` after the current action completes.
  void Goto(std::string state);

  /// Halts this machine after the current action completes; all queued and
  /// future events are silently dropped (P# halt semantics).
  void Halt() { pending_halt_ = true; }

  /// Controlled nondeterministic choices (PSharp.Nondet()).
  bool NondetBool();
  std::uint64_t NondetInt(std::uint64_t bound);

  /// Creates a machine of type M; it starts concurrently.
  template <typename M, typename... Args>
  MachineId Create(std::string debug_name, Args&&... args);

  /// Notifies monitor type MonitorT with event E (monitors run synchronously).
  template <typename MonitorT, typename E, typename... Args>
  void Notify(Args&&... args);

  /// Fails the execution with a safety violation if `cond` is false.
  void Assert(bool cond, const std::string& message);

  /// Awaitable: blocks the current coroutine handler until an event of type
  /// E is available in the queue, then dequeues and returns it. Non-matching
  /// events stay queued (P# receive semantics).
  template <typename E>
  [[nodiscard]] ReceiveAwaiter<E> Receive();

  /// Awaitable: waits for the first event whose type is one of Es...
  template <typename... Es>
  [[nodiscard]] ReceiveAnyAwaiter<Es...> ReceiveAny();

 private:
  friend class Runtime;
  template <typename E>
  friend class ReceiveAwaiter;
  template <typename... Es>
  friend class ReceiveAnyAwaiter;

  // Receive plumbing (used by the awaiters).
  void BeginReceive(std::vector<std::type_index> types);
  bool TryFulfillReceive();
  void SetResumePoint(std::coroutine_handle<> h) { resume_point_ = h; }
  std::unique_ptr<const Event> TakeReceived();

  // Step execution (used by the runtime).
  [[nodiscard]] bool IsEnabled() const;
  [[nodiscard]] bool IsWaitingInReceive() const noexcept {
    return !waiting_types_.empty();
  }
  void RunStep();
  void RunCascade();
  void InvokeHandler(const detail::Handler& handler, const Event* event);
  void DispatchEvent(std::unique_ptr<const Event> ev, bool raised);
  void Transition(const std::string& target);
  void DoHalt();
  detail::StateDecl& FindState(const std::string& name);
  [[nodiscard]] bool HasMatchingQueuedEvent() const;

  Runtime* runtime_ = nullptr;
  MachineId id_{};
  std::string debug_name_;

  std::map<std::string, detail::StateDecl> states_;
  std::string start_state_;
  detail::StateDecl* current_state_ = nullptr;

  std::deque<std::unique_ptr<const Event>> queue_;
  std::unique_ptr<const Event> current_event_;  // alive while handler runs
  std::unique_ptr<const Event> received_;       // fulfilled Receive result
  std::vector<std::type_index> waiting_types_;  // non-empty while in Receive
  std::coroutine_handle<> resume_point_{};
  Task root_task_;

  std::unique_ptr<const Event> pending_raise_;
  std::optional<std::string> pending_goto_;
  bool pending_halt_ = false;
  bool started_ = false;
  bool halted_ = false;

  std::uint64_t transitions_taken_ = 0;
};

/// Awaitable returned by Machine::Receive<E>().
template <typename E>
class [[nodiscard]] ReceiveAwaiter {
 public:
  explicit ReceiveAwaiter(Machine* machine) : machine_(machine) {}

  bool await_ready() {
    machine_->BeginReceive({std::type_index(typeid(E))});
    return machine_->TryFulfillReceive();
  }
  void await_suspend(std::coroutine_handle<> h) { machine_->SetResumePoint(h); }
  std::unique_ptr<const E> await_resume() {
    std::unique_ptr<const Event> ev = machine_->TakeReceived();
    return std::unique_ptr<const E>(static_cast<const E*>(ev.release()));
  }

 private:
  Machine* machine_;
};

/// Awaitable returned by Machine::ReceiveAny<Es...>(). Yields the base Event;
/// callers discriminate with Event::Type().
template <typename... Es>
class [[nodiscard]] ReceiveAnyAwaiter {
 public:
  explicit ReceiveAnyAwaiter(Machine* machine) : machine_(machine) {}

  bool await_ready() {
    machine_->BeginReceive({std::type_index(typeid(Es))...});
    return machine_->TryFulfillReceive();
  }
  void await_suspend(std::coroutine_handle<> h) { machine_->SetResumePoint(h); }
  std::unique_ptr<const Event> await_resume() { return machine_->TakeReceived(); }

 private:
  Machine* machine_;
};

template <typename E>
ReceiveAwaiter<E> Machine::Receive() {
  return ReceiveAwaiter<E>(this);
}

template <typename... Es>
ReceiveAnyAwaiter<Es...> Machine::ReceiveAny() {
  return ReceiveAnyAwaiter<Es...>(this);
}

/// Fluent builder for monitor states (synchronous handlers only; hot/cold
/// attributes drive liveness checking).
class MonitorStateBuilder {
 public:
  explicit MonitorStateBuilder(detail::MonitorStateDecl* decl) : decl_(decl) {}

  template <typename E, typename M>
  MonitorStateBuilder& On(void (M::*fn)(const E&)) {
    decl_->handlers[typeid(E)] = [fn](Monitor& m, const Event& e) {
      (static_cast<M&>(m).*fn)(static_cast<const E&>(e));
    };
    return *this;
  }

  template <typename E, typename M>
  MonitorStateBuilder& On(void (M::*fn)()) {
    decl_->handlers[typeid(E)] = [fn](Monitor& m, const Event&) {
      (static_cast<M&>(m).*fn)();
    };
    return *this;
  }

  template <typename E>
  MonitorStateBuilder& Ignore() {
    decl_->ignores.insert(typeid(E));
    return *this;
  }

  template <typename M>
  MonitorStateBuilder& OnEntry(void (M::*fn)()) {
    decl_->entry = [fn](Monitor& m) { (static_cast<M&>(m).*fn)(); };
    return *this;
  }

  /// Marks this state hot: the system owes progress while the monitor is
  /// here (§2.5). An execution that stays hot past the liveness temperature
  /// threshold is reported as a liveness violation.
  MonitorStateBuilder& Hot() {
    decl_->hot = true;
    return *this;
  }

  /// Marks this state cold: progress has happened.
  MonitorStateBuilder& Cold() {
    decl_->cold = true;
    return *this;
  }

 private:
  detail::MonitorStateDecl* decl_;
};

/// Base class for safety and liveness monitors (§2.4, §2.5): a monitor can
/// receive notifications but never send; it maintains the history relevant to
/// the property being specified and flags violations via Assert, or via
/// staying in a hot state forever (liveness).
class Monitor {
 public:
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;
  virtual ~Monitor() = default;

  [[nodiscard]] bool IsHot() const;
  [[nodiscard]] const std::string& CurrentStateName() const;
  [[nodiscard]] const std::string& DebugName() const noexcept { return debug_name_; }
  [[nodiscard]] std::uint64_t ConsecutiveHotSteps() const noexcept {
    return hot_steps_;
  }

 protected:
  Monitor() = default;

  MonitorStateBuilder State(std::string name);
  void SetStart(std::string name) { start_state_ = std::move(name); }

  /// Immediate transition (the paper's `jumpto`): runs the target's entry.
  void Goto(const std::string& state);

  /// Safety assertion over the monitor's private state.
  void Assert(bool cond, const std::string& message);

  [[nodiscard]] Runtime& Rt();

 private:
  friend class Runtime;

  void Start();
  void HandleNotification(const Event& event);
  detail::MonitorStateDecl& FindState(const std::string& name);

  Runtime* runtime_ = nullptr;
  std::string debug_name_;
  std::map<std::string, detail::MonitorStateDecl> states_;
  std::string start_state_;
  detail::MonitorStateDecl* current_state_ = nullptr;
  std::uint64_t hot_steps_ = 0;
  std::uint64_t transitions_taken_ = 0;
};

/// Options controlling one serialized execution.
struct RuntimeOptions {
  std::uint64_t max_steps = 10'000;
  /// Consecutive hot steps after which a bound-terminated execution is
  /// declared a liveness violation. 0 means max_steps / 2.
  std::uint64_t liveness_temperature_threshold = 0;
  bool report_deadlock = true;
  /// Cap on handler cascade length within one step (guards against a
  /// raise/goto loop that would otherwise never yield).
  std::uint64_t max_cascade_actions = 100'000;
  bool logging = false;
};

/// One serialized execution of a machine program. The TestingEngine creates a
/// fresh Runtime per iteration; harnesses populate it with machines and
/// monitors and the engine then steps it to quiescence or the step bound.
class Runtime {
 public:
  Runtime(SchedulingStrategy& strategy, RuntimeOptions options = {});
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;
  ~Runtime();

  // ---- Harness API ----

  /// Creates a machine; it becomes enabled and will run its start state's
  /// entry action when first scheduled.
  template <typename M, typename... Args>
  MachineId CreateMachine(std::string debug_name, Args&&... args) {
    auto machine = std::make_unique<M>(std::forward<Args>(args)...);
    return Attach(std::move(machine), std::move(debug_name));
  }

  /// Registers a monitor; its start state is entered immediately.
  template <typename M, typename... Args>
  M& RegisterMonitor(std::string debug_name, Args&&... args) {
    auto monitor = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *monitor;
    AttachMonitor(std::move(monitor), std::move(debug_name));
    return ref;
  }

  /// Sends an event from outside any machine (harness setup).
  void SendEvent(MachineId target, std::unique_ptr<const Event> ev);

  template <typename E, typename... Args>
  void SendEvent(MachineId target, Args&&... args) {
    SendEvent(target, MakeEvent<E>(std::forward<Args>(args)...));
  }

  /// Looks up the registered monitor of type M (for end-of-test inspection).
  template <typename M>
  [[nodiscard]] M* FindMonitor() const {
    auto it = monitor_by_type_.find(std::type_index(typeid(M)));
    return it == monitor_by_type_.end() ? nullptr : static_cast<M*>(it->second);
  }

  [[nodiscard]] const Machine* FindMachine(MachineId id) const;
  [[nodiscard]] Machine* FindMachine(MachineId id);

  // ---- Engine API ----

  /// Executes one scheduling step. Returns false on quiescence (no machine
  /// enabled). Throws BugFound on a violation.
  bool Step();

  /// End-of-execution property checks (§2.5 liveness heuristic): call with
  /// hit_bound=true when the step bound was reached, false on quiescence.
  void CheckTermination(bool hit_bound);

  [[nodiscard]] std::uint64_t Steps() const noexcept { return steps_; }
  [[nodiscard]] const Trace& GetTrace() const noexcept { return trace_; }
  [[nodiscard]] const RuntimeOptions& Options() const noexcept { return options_; }

  // ---- Introspection ----

  struct Stats {
    std::size_t machines = 0;
    std::size_t monitors = 0;
    std::size_t states = 0;
    std::size_t action_handlers = 0;
    std::size_t declared_transitions = 0;  // OnGoto registrations
    std::uint64_t transitions_taken = 0;
  };
  [[nodiscard]] Stats GetStats() const;

  [[nodiscard]] std::size_t MachineCount() const noexcept {
    return machines_.size();
  }
  [[nodiscard]] const std::string& Log() const noexcept { return log_; }

  // ---- Internal API used by Machine / Monitor ----

  void Assert(bool cond, const std::string& message);
  [[nodiscard]] bool ChooseBool();
  [[nodiscard]] std::uint64_t ChooseInt(std::uint64_t bound);
  void DeliverEvent(MachineId target, std::unique_ptr<const Event> ev,
                    const Machine* sender);
  MachineId Attach(std::unique_ptr<Machine> machine, std::string debug_name);
  void AttachMonitor(std::unique_ptr<Monitor> monitor, std::string debug_name);
  void NotifyMonitorByType(std::type_index type, const Event& event);
  void LogLine(const std::string& line);
  [[nodiscard]] bool LoggingEnabled() const noexcept { return options_.logging; }
  void CountCascadeAction();

 private:
  [[nodiscard]] std::vector<MachineId> EnabledMachines() const;
  void UpdateMonitorTemperatures();

  SchedulingStrategy& strategy_;
  RuntimeOptions options_;
  std::vector<std::unique_ptr<Machine>> machines_;  // index = id - 1
  std::vector<std::unique_ptr<Monitor>> monitors_;
  std::unordered_map<std::type_index, Monitor*> monitor_by_type_;
  Trace trace_;
  std::uint64_t steps_ = 0;
  std::uint64_t cascade_actions_ = 0;
  std::string log_;
};

// ---- Machine template members that need Runtime's definition ----

template <typename M, typename... Args>
MachineId Machine::Create(std::string debug_name, Args&&... args) {
  return Rt().CreateMachine<M>(std::move(debug_name),
                               std::forward<Args>(args)...);
}

template <typename MonitorT, typename E, typename... Args>
void Machine::Notify(Args&&... args) {
  const E event(std::forward<Args>(args)...);
  Rt().NotifyMonitorByType(std::type_index(typeid(MonitorT)), event);
}

}  // namespace systest
